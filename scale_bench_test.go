package depscope

// Scale benchmarks: the columnar graph engine's memory story and the
// memory-budgeted 1M-site end-to-end run. docs/bench.sh's "scale" suite
// records both into BENCH_scale.json; the suite's awk gate fails unless the
// compact representation holds at least 4x fewer bytes per site than the
// pointer graph at the paper's 100K scale.
//
// bytes_per_site is measured as retained live heap: GC, read HeapAlloc,
// build the graph from the shared measurement results, GC again, read
// again. Strings are shared with the measurement results on both sides (the
// pointer graph aliases them, the columnar one interns them into the
// process-wide dictionary, populated by the warm-up build), so the delta
// isolates what each representation itself adds.

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"depscope/internal/analysis"
	"depscope/internal/ecosystem"
	"depscope/internal/measure"
	"depscope/internal/membudget"
)

const scaleBenchSites = 100000

var (
	scaleOnce sync.Once
	scaleRes  *measure.Results
	scaleErr  error
)

// scaleFixture measures a 100K-site 2020 world once and shares the results
// across benchmark arms, so each arm times only its graph construction.
func scaleFixture(b *testing.B) *measure.Results {
	b.Helper()
	scaleOnce.Do(func() {
		u, err := ecosystem.Generate(ecosystem.Options{Scale: scaleBenchSites, Seed: 1})
		if err != nil {
			scaleErr = err
			return
		}
		w := ecosystem.Materialize(u, ecosystem.Y2020)
		scaleRes, scaleErr = measure.Run(context.Background(), w.Sites, measure.Config{
			Resolver: w.NewResolver(),
			Certs:    w.Certs,
			Pages:    w,
			CDNMap:   measure.CDNMap(w.CNAMEToCDN),
		})
	})
	if scaleErr != nil {
		b.Fatal(scaleErr)
	}
	return scaleRes
}

// retainedBytes builds a graph and returns it with the live-heap delta it
// retains. The pre/post GC pair discards construction garbage, so the delta
// is the representation's resident footprint, not its allocation churn.
func retainedBytes(build func() any) (any, uint64) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	v := build()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc <= before.HeapAlloc {
		return v, 0
	}
	return v, after.HeapAlloc - before.HeapAlloc
}

// BenchmarkGraphBytes prices the two graph representations against each
// other at 100K sites: ns/op is construction time, bytes_per_site is the
// retained footprint per site. The compact arm's ≥4x advantage is the
// tentpole acceptance gate, enforced by docs/bench.sh scale.
func BenchmarkGraphBytes(b *testing.B) {
	res := scaleFixture(b)
	nSites := float64(len(res.Sites))

	// Warm-up builds: populate the interner's global dictionary and touch
	// both construction paths once, so neither arm's first iteration pays
	// one-time process-wide costs.
	analysis.BuildGraph(res)
	analysis.BuildCompactGraph(res)

	b.Run("pointer-100K", func(b *testing.B) {
		var perSite float64
		for i := 0; i < b.N; i++ {
			g, bytes := retainedBytes(func() any { return analysis.BuildGraph(res) })
			perSite = float64(bytes) / nSites
			runtime.KeepAlive(g)
		}
		b.ReportMetric(perSite, "bytes_per_site")
	})
	b.Run("compact-100K", func(b *testing.B) {
		var perSite float64
		for i := 0; i < b.N; i++ {
			cg, bytes := retainedBytes(func() any { return analysis.BuildCompactGraph(res) })
			perSite = float64(bytes) / nSites
			runtime.KeepAlive(cg)
		}
		b.ReportMetric(perSite, "bytes_per_site")
	})
}

// BenchmarkMeasureRun1M is the first-class 1M-site run: the full compact
// pipeline — generate, stream-materialize, measure in batches, build the
// columnar graph — under an 8GiB live-heap budget. One iteration is a
// complete run; docs/bench.sh scale records it with -benchtime 1x (the
// single-iteration allowlist in its low-iteration warning). bytes_per_site
// here is the columnar graph's own accounting at 1M sites.
func BenchmarkMeasureRun1M(b *testing.B) {
	if testing.Short() {
		b.Skip("1M-site arm")
	}
	var perSite float64
	for i := 0; i < b.N; i++ {
		run, err := analysis.Execute(context.Background(), analysis.Options{
			Scale:     1000000,
			Seed:      1,
			MemBudget: 8 * membudget.GiB,
			Snapshots: []ecosystem.Snapshot{ecosystem.Y2020},
		})
		if err != nil {
			b.Fatal(err)
		}
		cg := run.Y2020.Compact
		if cg == nil || cg.NSites() == 0 {
			b.Fatal("1M run produced no compact graph")
		}
		perSite = float64(cg.Bytes()) / float64(cg.NSites())
	}
	b.ReportMetric(perSite, "bytes_per_site")
}
