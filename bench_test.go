package depscope

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (DESIGN.md §4 maps them), plus ablation benchmarks for the
// design choices the reproduction calls out: the combined classification
// heuristic vs the TLD/SOA strawmen, transitive vs direct impact, and the
// in-process resolver path vs the real UDP wire path.
//
// The world is generated and measured once per scale and shared across
// benchmarks; each benchmark then times its experiment runner, so the
// b.N numbers isolate analysis cost from world construction.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"depscope/internal/analysis"
	"depscope/internal/casestudy"
	"depscope/internal/core"
	"depscope/internal/dnsserver"
	"depscope/internal/ecosystem"
	"depscope/internal/measure"
	"depscope/internal/resolver"
)

// benchScale keeps full-pipeline construction around a second; the CLI runs
// the same code at the paper's 100K.
const benchScale = 10000

var (
	benchOnce sync.Once
	benchRun  *analysis.Run
	benchErr  error
)

func benchFixture(b *testing.B) *analysis.Run {
	b.Helper()
	benchOnce.Do(func() {
		benchRun, benchErr = analysis.Execute(context.Background(), analysis.Options{
			Scale: benchScale,
			Seed:  2020,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRun
}

// BenchmarkEndToEndPipeline measures the full generate+materialize+measure
// cycle for both snapshots at a reduced scale.
func BenchmarkEndToEndPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Execute(context.Background(), analysis.Options{Scale: 2000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Tables ----

func BenchmarkTable1DatasetSummary(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := analysis.Table1(run)
		if t.CharacterizedDNS == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2ComparisonSummary(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := analysis.Table2(run)
		if t.CharacterizedDNS == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3DNSTrends(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := analysis.Table3(run)
		if rows[3].PvtToSingle == 0 {
			b.Fatal("empty trends")
		}
	}
}

func BenchmarkTable4CDNTrends(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Table4(run)
	}
}

func BenchmarkTable5CATrends(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := analysis.Table5(run)
		if rows[3].StapleToNo == 0 {
			b.Fatal("empty trends")
		}
	}
}

func BenchmarkTable6InterService(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := analysis.Table6(run)
		if rows[1].Third == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable7CADNSTrends(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := analysis.Table7(run)
		if t.Total == 0 {
			b.Fatal("empty trends")
		}
	}
}

func BenchmarkTable8CACDNTrends(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Table8(run)
	}
}

func BenchmarkTable9CDNDNSTrends(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Table9(run)
	}
}

func BenchmarkTable10Hospitals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := casestudy.Hospitals(context.Background(), 6)
		if err != nil {
			b.Fatal(err)
		}
		if rep.DNSThird == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTable11SmartHome(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := casestudy.SmartHome(context.Background(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if rep.DNSCritical == 0 {
			b.Fatal("empty report")
		}
	}
}

// ---- Figures ----

func BenchmarkFigure2DNSDependency(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := analysis.Figure2(run)
		if f[3].Total == 0 {
			b.Fatal("empty bands")
		}
	}
}

func BenchmarkFigure3CDNDependency(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Figure3(run)
	}
}

func BenchmarkFigure4CADependency(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Figure4(run)
	}
}

func BenchmarkFigure5ProviderConcentration(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, svc := range []core.Service{core.DNS, core.CDN, core.CA} {
			if rows := analysis.Figure5(run, svc, 5); len(rows) == 0 {
				b.Fatal("no providers")
			}
		}
	}
}

// BenchmarkTopProvidersBatch prices the metrics engine's two cold-fill
// strategies against each other and against the raw recursion, on the
// measured 2020 snapshot: every arm answers C_p and I_p for every declared
// provider, starting cold. The "batch" arm forces the SCC+bitset
// propagation (the whole 854-name universe up front); the "perprovider" arm
// walks the recursive sets with no engine at all, the shape every Figure 5
// render used to pay; the "auto" arm leaves the crossover heuristic in
// charge — this snapshot sits below batchCrossoverNames, so auto must track
// the lazy per-name walks, not the batch fill (the 100K-scale counterpart
// in internal/core proves the opposite choice).
func BenchmarkTopProvidersBatch(b *testing.B) {
	run := benchFixture(b)
	g := run.Y2020.Graph
	opts := core.AllIndirect()
	var names []string
	for name := range g.Providers {
		names = append(names, name)
	}
	queryAll := func(b *testing.B, e *core.MetricsEngine) {
		for _, name := range names {
			if e.Concentration(name, opts)+e.Impact(name, opts) < 0 {
				b.Fatal("impossible")
			}
		}
	}
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := core.NewMetricsEngine(g, 0)
			e.SetStrategy(core.StrategyBatch)
			queryAll(b, e)
		}
	})
	b.Run("auto", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			queryAll(b, core.NewMetricsEngine(g, 0))
		}
	})
	b.Run("perprovider", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, name := range names {
				if len(g.ConcentrationSet(name, opts))+len(g.ImpactSet(name, opts)) < 0 {
					b.Fatal("impossible")
				}
			}
		}
	})
}

func BenchmarkFigure6ConcentrationCDF(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, svc := range []core.Service{core.DNS, core.CDN, core.CA} {
			s := analysis.Figure6(run, svc)
			if s[1].Distinct == 0 {
				b.Fatal("no providers")
			}
		}
	}
}

func BenchmarkFigure7CADNSAmplification(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := analysis.Figure7(run, 5); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFigure8CACDNAmplification(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Figure8(run, 5)
	}
}

func BenchmarkFigure9CDNDNSAmplification(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.Figure9(run, 5)
	}
}

func BenchmarkCriticalDepsPerSite(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := analysis.CriticalDeps(run, 4)
		if h.IndirectAtLeast[1] == 0 {
			b.Fatal("empty histogram")
		}
	}
}

func BenchmarkHiddenDependencies(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.HiddenDependencies(run)
	}
}

// ---- Validation / ablation benchmarks ----

// BenchmarkValidationAccuracy times the §3.1 heuristic-comparison
// experiment: the combined classifier against the TLD and SOA strawmen over
// a 100-site sample.
func BenchmarkValidationAccuracy(b *testing.B) {
	run := benchFixture(b)
	sd := run.Y2020
	bl := measure.NewBaselines(measure.Config{
		Resolver: sd.World.NewResolver(),
		Certs:    sd.World.Certs,
		Pages:    sd.World,
		CDNMap:   measure.CDNMap(sd.World.CNAMEToCDN),
	})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 100; s++ {
			sr := &sd.Results.Sites[s]
			for _, pair := range sr.DNS.Pairs {
				bl.TLD(sr.Site, pair.Host)
				if _, err := bl.SOA(ctx, sr.Site, pair.Host); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkAblationImpactDirectVsTransitive quantifies the cost of the
// paper's transitive impact formula against the one-hop approximation.
func BenchmarkAblationImpactDirectVsTransitive(b *testing.B) {
	run := benchFixture(b)
	g := run.Y2020.Graph
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Impact("dnsmadeeasy.com", core.DirectOnly())
		}
	})
	b.Run("transitive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Impact("dnsmadeeasy.com", core.AllIndirect())
		}
	})
}

// BenchmarkAblationResolverPath compares the in-process zone path against
// the real UDP wire path for the same NS lookup.
func BenchmarkAblationResolverPath(b *testing.B) {
	run := benchFixture(b)
	world := run.Y2020.World
	site := world.Sites[0]
	ctx := context.Background()

	b.Run("zonedirect", func(b *testing.B) {
		r := world.NewResolver()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.FlushCache()
			if _, err := r.NS(ctx, site); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("udp", func(b *testing.B) {
		srv := dnsserver.New(world.Zones, dnsserver.Config{})
		addr, err := srv.Start()
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		r := resolver.New(resolver.NewUDPTransport(addr))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.FlushCache()
			if _, err := r.NS(ctx, site); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMeasureOnly isolates the measurement pipeline over a prebuilt
// world (the paper's crawl+classify stage).
func BenchmarkMeasureOnly(b *testing.B) {
	u, err := ecosystem.Generate(ecosystem.Options{Scale: 2000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	w := ecosystem.Materialize(u, ecosystem.Y2020)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := measure.Run(context.Background(), w.Sites, measure.Config{
			Resolver: w.NewResolver(),
			Certs:    w.Certs,
			Pages:    w,
			CDNMap:   measure.CDNMap(w.CNAMEToCDN),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// sanity check that the fixture is reusable from a plain test too.
func TestBenchFixture(t *testing.T) {
	benchOnce.Do(func() {
		benchRun, benchErr = analysis.Execute(context.Background(), analysis.Options{
			Scale: benchScale,
			Seed:  2020,
		})
	})
	if benchErr != nil {
		t.Fatal(benchErr)
	}
	if got := len(benchRun.Y2020.Results.Sites); got != benchScale {
		t.Fatalf("fixture sites = %d, want %d", got, benchScale)
	}
	fmt.Println("bench fixture ready:", benchScale, "sites")
}

// BenchmarkAblationHeuristicVariants times the rule-ablation re-runs of the
// DNS classifier (four full pipeline passes).
func BenchmarkAblationHeuristicVariants(b *testing.B) {
	run := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := analysis.HeuristicAblation(context.Background(), run)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("bad ablation")
		}
	}
}
