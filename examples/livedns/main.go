// Livedns: the full real-protocol path — materialize a world, serve it over
// UDP/TCP DNS with internal/dnsserver, resolve through the wire with the
// stub resolver, and fetch a certificate from a live TLS handshake. This is
// the same measurement the bulk pipeline performs in-process, demonstrated
// over actual sockets.
package main

import (
	"context"
	"fmt"
	"log"

	"depscope/internal/certs"
	"depscope/internal/dnsmsg"
	"depscope/internal/dnsserver"
	"depscope/internal/ecosystem"
	"depscope/internal/resolver"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// Materialize a small world and serve its zones on a loopback port.
	u, err := ecosystem.Generate(ecosystem.Options{Scale: 500, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	world := ecosystem.Materialize(u, ecosystem.Y2020)
	srv := dnsserver.New(world.Zones, dnsserver.Config{Addr: "127.0.0.1:0"})
	addr, err := srv.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("authoritative DNS for %d zones on udp+tcp %s\n\n", world.Zones.ZoneCount(), addr)

	// Resolve a site the way the paper's dig-based pipeline does — over the
	// wire.
	r := resolver.New(resolver.NewUDPTransport(addr))
	site := world.Sites[0]
	ns, err := r.NS(ctx, site)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dig NS %s:\n", site)
	for _, h := range ns {
		fmt.Printf("  %s\n", h)
	}
	soa, ok, err := r.SOA(ctx, site)
	if err != nil || !ok {
		log.Fatalf("SOA lookup failed: %v", err)
	}
	fmt.Printf("dig SOA %s: master %s admin %s\n", site, soa.MName, soa.RName)
	chain, err := r.CNAMEChain(ctx, "www."+site)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dig CNAME www.%s: %v\n\n", site, chain)

	// And the TLS half: serve a real certificate carrying OCSP/CDP URLs and
	// a stapled response, then extract the measurement view from the
	// handshake — the paper's OpenSSL step.
	ca, err := certs.NewTestCA("DigiCert SHA2 Secure Server CA", "digicert.com")
	if err != nil {
		log.Fatal(err)
	}
	leaf, err := ca.Issue(certs.LeafSpec{
		Subject:     site,
		SANs:        []string{site, "*." + site},
		OCSPServers: []string{"http://ocsp.digicert.com"},
		CDPs:        []string{"http://crl.digicert.com/ca.crl"},
	})
	if err != nil {
		log.Fatal(err)
	}
	tlsSrv, tlsAddr, err := certs.StartTLSServer(leaf, []byte("stapled-ocsp-response"))
	if err != nil {
		log.Fatal(err)
	}
	defer tlsSrv.Close()
	cert, err := certs.FetchTLS(ctx, tlsAddr, site, ca.Pool())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TLS fetch of %s via %s:\n", site, tlsAddr)
	fmt.Printf("  issuer:   %s (%s)\n", cert.IssuerCA, cert.IssuerOrgDomain)
	fmt.Printf("  OCSP:     %v\n", cert.OCSPServers)
	fmt.Printf("  CDP:      %v\n", cert.CRLDistributionPoints)
	fmt.Printf("  stapled:  %v\n", cert.Stapled)

	// Round-trip one raw wire message for good measure.
	q := dnsmsg.NewQuery(1, site, dnsmsg.TypeNS)
	wire, _ := q.Pack()
	fmt.Printf("\nraw query packet: %d bytes on the wire, %d queries served\n", len(wire), srv.Queries())
}
