// Quickstart: generate a small synthetic Internet, run the measurement
// pipeline, and print the headline dependency statistics — the minimal
// end-to-end use of the library.
package main

import (
	"context"
	"fmt"
	"log"

	"depscope/internal/analysis"
	"depscope/internal/core"
)

func main() {
	log.SetFlags(0)

	// 1. Generate, materialize and measure both snapshots at a small scale.
	run, err := analysis.Execute(context.Background(), analysis.Options{
		Scale: 5000,
		Seed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Headline numbers (the paper's abstract): how many sites critically
	// depend on a third party for DNS, CDN or CA?
	f2 := analysis.Figure2(run)
	fmt.Printf("third-party DNS use:        %.1f%% of characterized sites\n", 100*f2[3].ThirdParty())
	fmt.Printf("critical DNS dependency:    %.1f%%\n", 100*f2[3].Critical())

	f4 := analysis.Figure4(run)
	fmt.Printf("HTTPS adoption:             %.1f%% of sites\n", 100*f4[3].HTTPSFrac)
	fmt.Printf("third-party CA use:         %.1f%% of HTTPS sites\n", 100*f4[3].ThirdCAFrac)

	// 3. Who are the single points of failure?
	fmt.Println("\ntop DNS providers (concentration / impact):")
	for _, p := range analysis.Figure5(run, core.DNS, 3) {
		fmt.Printf("  %-20s %5.1f%% / %5.1f%%\n", p.Name, 100*p.Concentration, 100*p.Impact)
	}

	// 4. The hidden amplification: DNSMadeEasy looks tiny until the CA->DNS
	// edges are considered (the paper's DigiCert chain).
	for _, row := range analysis.Figure7(run, 5) {
		if row.Name == "dnsmadeeasy.com" {
			fmt.Printf("\nDNSMadeEasy impact: %.1f%% direct -> %.1f%% via CA dependencies (%.0fx)\n",
				100*row.DirectImpact, 100*row.IndirectImpact,
				row.IndirectImpact/row.DirectImpact)
		}
	}
}
