// Dynincident: replay the October 2016 Mirai-Dyn outage (§2) against the
// 2016 snapshot. The incident took down Dyn's authoritative DNS; every site
// critically using Dyn went dark, and — the paper's key point — so did the
// customers of CDNs like Fastly that themselves ran on Dyn.
package main

import (
	"context"
	"fmt"
	"log"

	"depscope/internal/analysis"
	"depscope/internal/core"
	"depscope/internal/ecosystem"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()
	run, err := analysis.Execute(ctx, analysis.Options{
		Scale:     8000,
		Seed:      2016,
		Snapshots: []ecosystem.Snapshot{ecosystem.Y2016},
	})
	if err != nil {
		log.Fatal(err)
	}
	g := run.Y2016.Graph
	const dyn = "dynect.net"

	fmt.Println("=== October 21, 2016: Dyn goes down ===")
	direct := g.ImpactSet(dyn, core.DirectOnly())
	full := g.ImpactSet(dyn, core.AllIndirect())
	fmt.Printf("sites dark via their own Dyn dependency:  %d\n", len(direct))
	fmt.Printf("sites dark including provider chains:     %d\n", len(full))

	// Who are the intermediaries? Providers critically running on Dyn.
	fmt.Println("\nproviders that fell with Dyn:")
	for name, p := range g.Providers {
		for svc, d := range p.Deps {
			if !d.Class.Critical() {
				continue
			}
			for _, dep := range d.Providers {
				if dep == dyn {
					fmt.Printf("  %-24s (%s of %d sites)\n", name, svc,
						g.Concentration(name, core.DirectOnly()))
				}
			}
		}
	}

	// Collateral victims: dark only because of the chain.
	collateral := 0
	var sample []string
	for site := range full {
		if !direct[site] {
			collateral++
			if len(sample) < 5 {
				sample = append(sample, site)
			}
		}
	}
	fmt.Printf("\ncollateral victims (the Pinterest effect): %d sites, e.g. %v\n", collateral, sample)

	// Sites that used Dyn but stayed up thanks to redundancy — the lesson
	// the paper wants everyone to learn.
	res := run.Y2016.Results
	survived := 0
	for i := range res.Sites {
		sr := &res.Sites[i]
		if sr.DNS.Class.Redundant() {
			for _, p := range sr.DNS.Providers {
				if p == dyn {
					survived++
				}
			}
		}
	}
	fmt.Printf("Dyn customers that stayed up (redundant DNS): %d\n", survived)
}
