// Evolution: the paper's "have we learned from the Mirai-Dyn incident?"
// question — compare the 2016 and 2020 snapshots and print what changed:
// critical-dependency trends, provider concentration, and Dyn's footprint.
package main

import (
	"context"
	"fmt"
	"log"

	"depscope/internal/analysis"
	"depscope/internal/core"
)

func main() {
	log.SetFlags(0)
	run, err := analysis.Execute(context.Background(), analysis.Options{
		Scale: 8000,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== website -> DNS trends (Table 3) ===")
	rows := analysis.Table3(run)
	for _, r := range rows {
		fmt.Printf("%-8s  pvt->3rd %5.1f%%  3rd->pvt %5.1f%%  critical delta %+5.1f%%\n",
			r.Label, r.PvtToSingle, r.SingleToPvt, r.CriticalDelta)
	}

	fmt.Println("\n=== provider concentration (Figure 6) ===")
	for _, svc := range []core.Service{core.DNS, core.CDN, core.CA} {
		s := analysis.Figure6(run, svc)
		fmt.Printf("%-4s 2016: %4d providers for 80%% coverage | 2020: %4d\n",
			svc, s[0].ProvidersFor80, s[1].ProvidersFor80)
	}

	// Dyn itself: the paper observes its concentration shrank from 2% to
	// 0.6% after the incident, while its top-100 customers keep it mostly
	// as part of redundant setups.
	fmt.Println("\n=== Dyn's footprint ===")
	for _, sd := range []*analysis.SnapshotData{run.Y2016, run.Y2020} {
		c := sd.Graph.Concentration("dynect.net", core.DirectOnly())
		i := sd.Graph.Impact("dynect.net", core.DirectOnly())
		fmt.Printf("%s: used by %d sites, critical for %d\n", sd.Snapshot, c, i)
	}

	fmt.Println("\n=== verdict ===")
	d := analysis.Table3(run)[3].CriticalDelta
	if d > 0 {
		fmt.Printf("critical DNS dependency grew %.1f points since the Dyn incident -\n", d)
		fmt.Println("the ecosystem at large has not acted on the lesson (paper Obs 2).")
	} else {
		fmt.Println("critical DNS dependency shrank - the lesson was learned.")
	}
	_ = rows
}
