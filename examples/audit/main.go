// Audit: the "dependency audit service" the paper's §8.3 envisions — given
// one website, walk its complete dependency structure (direct and hidden)
// and report which provider outages would take it down.
//
// Usage: audit [site]  (default: the highest-ranked critically-dependent
// site of the generated world)
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"depscope/internal/analysis"
	"depscope/internal/core"
	"depscope/internal/ecosystem"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()
	run, err := analysis.Execute(ctx, analysis.Options{
		Scale:     3000,
		Seed:      7,
		Snapshots: []ecosystem.Snapshot{ecosystem.Y2020},
	})
	if err != nil {
		log.Fatal(err)
	}
	sd := run.Y2020

	site := ""
	if len(os.Args) > 1 {
		site = os.Args[1]
	} else {
		// Pick the first site with a critical DNS dependency and a CDN.
		for i := range sd.Results.Sites {
			sr := &sd.Results.Sites[i]
			if sr.DNS.Class.Critical() && sr.CDN.UsesCDN && sr.CA.HTTPS {
				site = sr.Site
				break
			}
		}
	}
	node := sd.Graph.Site(site)
	if node == nil {
		log.Fatalf("site %q not in the generated world", site)
	}

	fmt.Printf("dependency audit for %s (rank %d)\n\n", site, node.Rank)

	// Raw measurement evidence, as a dig-based audit would show it.
	r := sd.World.NewResolver()
	ns, err := r.NS(ctx, site)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nameservers:")
	for _, h := range ns {
		soa, _, _ := r.SOA(ctx, h)
		fmt.Printf("  %-40s (authority master %s)\n", h, soa.MName)
	}
	if cert := sd.World.Certs.Get(site); cert != nil {
		fmt.Printf("certificate: issued by %s, stapling=%v\n", cert.IssuerCA, cert.Stapled)
		for _, u := range cert.RevocationURLs() {
			fmt.Printf("  revocation endpoint %s\n", u)
		}
	}
	if page := sd.World.Page(site); page != nil {
		fmt.Println("landing-page resource hosts:")
		for _, h := range page.Hosts() {
			chain, err := r.CNAMEChain(ctx, h)
			if err != nil {
				continue
			}
			fmt.Printf("  %s", h)
			for _, c := range chain[1:] {
				fmt.Printf(" -> %s", c)
			}
			fmt.Println()
		}
	}

	// Measured dependency classes.
	fmt.Println("\nmeasured dependencies:")
	for _, svc := range []core.Service{core.DNS, core.CDN, core.CA} {
		d, ok := node.Deps[svc]
		if !ok || d.Class == core.ClassNone {
			fmt.Printf("  %-4s not used / not applicable\n", svc)
			continue
		}
		fmt.Printf("  %-4s %-14s %v\n", svc, d.Class, d.Providers)
	}

	// Which single provider outages take the site down? Walk every provider
	// and test membership in its transitive impact set.
	fmt.Println("\nsingle points of failure (provider outage -> site down):")
	found := 0
	for _, svc := range []core.Service{core.DNS, core.CDN, core.CA} {
		for _, st := range sd.Graph.TopProviders(svc, core.AllIndirect(), true, 0) {
			if st.Impact == 0 {
				continue
			}
			if sd.Graph.ImpactSet(st.Name, core.AllIndirect())[site] {
				fmt.Printf("  %-28s (%s provider, total impact %d sites)\n", st.Name, svc, st.Impact)
				found++
			}
		}
	}
	if found == 0 {
		fmt.Println("  none - the site is redundantly provisioned everywhere")
	}
}
