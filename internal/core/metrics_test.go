package core

import (
	"reflect"
	"testing"
)

// TestMetricsEngineMatchesSetsOnPaperGraph pins the engine to the recursive
// set formulas on the canonical paper examples, across traversal views. The
// paper graph is far below the crossover, so the batch path is forced — the
// equivalence being tested is batch-vs-recursion, not recursion-vs-itself.
func TestMetricsEngineMatchesSetsOnPaperGraph(t *testing.T) {
	g := paperGraph()
	g.Metrics().SetStrategy(StrategyBatch)
	optsList := []TraversalOpts{
		DirectOnly(), AllIndirect(),
		{ViaProviders: []Service{CA}},
		{ViaProviders: []Service{CDN}},
	}
	names := []string{
		"Dyn", "UltraDNS", "Fastly", "MaxCDN", "AWS DNS",
		"Symantec", "Verisign DNS",
	}
	for _, opts := range optsList {
		for _, name := range names {
			if got, want := g.Concentration(name, opts), len(g.ConcentrationSet(name, opts)); got != want {
				t.Errorf("C(%s, %v) = %d, want %d", name, opts, got, want)
			}
			if got, want := g.Impact(name, opts), len(g.ImpactSet(name, opts)); got != want {
				t.Errorf("I(%s, %v) = %d, want %d", name, opts, got, want)
			}
		}
	}
}

// TestMetricsEngineUnknownProvider mirrors the recursion: a name the graph
// has never seen has empty sets, so zero counts.
func TestMetricsEngineUnknownProvider(t *testing.T) {
	g := paperGraph()
	if got := g.Concentration("no-such-provider", AllIndirect()); got != 0 {
		t.Errorf("C(unknown) = %d, want 0", got)
	}
	if got := g.Impact("no-such-provider", DirectOnly()); got != 0 {
		t.Errorf("I(unknown) = %d, want 0", got)
	}
}

// TestMetricsEngineWorkersClamped: a negative worker count must not stall or
// change results — it clamps to GOMAXPROCS like the measurement pipeline.
func TestMetricsEngineWorkersClamped(t *testing.T) {
	g := paperGraph()
	e := NewMetricsEngine(g, -7)
	if got := e.Impact("Dyn", AllIndirect()); got != 2 {
		t.Errorf("I(Dyn) with negative workers = %d, want 2", got)
	}
	g2 := paperGraph()
	g2.SetMetricsWorkers(-3)
	if got := g2.Impact("Dyn", AllIndirect()); got != 2 {
		t.Errorf("I(Dyn) via SetMetricsWorkers(-3) = %d, want 2", got)
	}
}

// TestMetricsEngineCycleChain drives a deep critical chain (cycle-free) and
// a terminal 2-cycle through the iterative SCC path: every chain member's
// impact must include the one site hanging off the chain head.
func TestMetricsEngineCycleChain(t *testing.T) {
	const depth = 5000
	providers := make([]*Provider, 0, depth+2)
	for i := 0; i < depth; i++ {
		p := &Provider{Name: "L" + itoa(i), Service: Service(i % 3), Deps: map[Service]Dep{}}
		if i > 0 {
			p.Deps[DNS] = Dep{Class: ClassSingleThird, Providers: []string{"L" + itoa(i-1)}}
		}
		providers = append(providers, p)
	}
	// Terminal 2-cycle feeding the chain root.
	providers[0].Deps[DNS] = Dep{Class: ClassSingleThird, Providers: []string{"X"}}
	providers = append(providers,
		&Provider{Name: "X", Service: DNS, Deps: map[Service]Dep{
			CDN: {Class: ClassSingleThird, Providers: []string{"Y"}},
		}},
		&Provider{Name: "Y", Service: CDN, Deps: map[Service]Dep{
			DNS: {Class: ClassSingleThird, Providers: []string{"X"}},
		}},
	)
	sites := []*Site{{Name: "w.com", Rank: 1, Deps: map[Service]Dep{
		CDN: {Class: ClassSingleThird, Providers: []string{"L" + itoa(depth-1)}},
	}}}
	g := NewGraph(sites, providers)
	for _, name := range []string{"L0", "L" + itoa(depth/2), "X", "Y"} {
		if got := g.Impact(name, AllIndirect()); got != 1 {
			t.Errorf("I(%s) = %d, want 1", name, got)
		}
	}
	if got := g.Impact("L"+itoa(depth-1), DirectOnly()); got != 1 {
		t.Errorf("direct I(chain head) = %d, want 1", got)
	}
}

// TestMetricsEngineCountsShared verifies the cache: two Counts calls for the
// same traversal return the same maps, and different traversals differ.
func TestMetricsEngineCountsShared(t *testing.T) {
	g := paperGraph()
	c1, i1 := g.Metrics().Counts(AllIndirect())
	c2, i2 := g.Metrics().Counts(AllIndirect())
	if &c1 == nil || !sameMap(c1, c2) || !sameMap(i1, i2) {
		t.Error("repeated Counts did not return the cached maps")
	}
	cd, _ := g.Metrics().Counts(DirectOnly())
	if cd["Dyn"] != 3 || c1["Dyn"] != 4 {
		t.Errorf("direct C(Dyn) = %d, indirect = %d; want 3 and 4", cd["Dyn"], c1["Dyn"])
	}
}

func sameMap(a, b map[string]int) bool {
	return len(a) == len(b) && reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
}

// TestTopProvidersBatchedEqualsRecursive checks the full ranking path on the
// paper graph (byte-identical slices, both ranking modes).
func TestTopProvidersBatchedEqualsRecursive(t *testing.T) {
	g := paperGraph()
	g.Metrics().SetStrategy(StrategyBatch)
	for _, svc := range Services {
		for _, byImpact := range []bool{false, true} {
			batch := g.TopProviders(svc, AllIndirect(), byImpact, 0)
			ref := g.topProvidersRecursive(svc, AllIndirect(), byImpact, 0)
			if !reflect.DeepEqual(batch, ref) {
				t.Errorf("svc %s byImpact %v: batch %+v != ref %+v", svc, byImpact, batch, ref)
			}
		}
	}
}

// TestMetricsStrategiesAgree drives both fill strategies over the same
// synthetic snapshot-shaped graph and requires identical counts for every
// name under every traversal view — the invariant that makes the crossover
// heuristic a pure performance choice.
func TestMetricsStrategiesAgree(t *testing.T) {
	g := metricsBenchGraph(2000, 300)
	optsList := []TraversalOpts{
		DirectOnly(), AllIndirect(), {ViaProviders: []Service{DNS}},
	}
	for _, opts := range optsList {
		batch := NewMetricsEngine(g, 0)
		batch.SetStrategy(StrategyBatch)
		rec := NewMetricsEngine(g, 0)
		rec.SetStrategy(StrategyRecursive)
		// Per-name queries first, so the lazy memo path itself is exercised
		// before Counts promotes the entry to complete maps.
		for _, name := range []string{"prov0", "prov7", "prov299", "absent"} {
			if got, want := rec.Concentration(name, opts), batch.Concentration(name, opts); got != want {
				t.Errorf("opts %v: lazy C(%s) = %d, batch = %d", opts, name, got, want)
			}
			if got, want := rec.Impact(name, opts), batch.Impact(name, opts); got != want {
				t.Errorf("opts %v: lazy I(%s) = %d, batch = %d", opts, name, got, want)
			}
		}
		bc, bi := batch.Counts(opts)
		rc, ri := rec.Counts(opts)
		if !reflect.DeepEqual(bc, rc) {
			t.Errorf("opts %v: concentration maps differ (batch %d names, recursive %d)", opts, len(bc), len(rc))
		}
		if !reflect.DeepEqual(bi, ri) {
			t.Errorf("opts %v: impact maps differ (batch %d names, recursive %d)", opts, len(bi), len(ri))
		}
		// After promotion, per-name queries must read the complete maps.
		if got := rec.Concentration("prov0", opts); got != rc["prov0"] {
			t.Errorf("opts %v: post-promotion C(prov0) = %d, want %d", opts, got, rc["prov0"])
		}
	}
}

// TestMetricsStrategyCrossover pins the auto heuristic: recursion below the
// calibrated universe size, batch at and above it, and explicit overrides in
// both directions.
func TestMetricsStrategyCrossover(t *testing.T) {
	e := NewMetricsEngine(paperGraph(), 0)
	if got := e.strategyFor(batchCrossoverNames - 1); got != StrategyRecursive {
		t.Errorf("strategyFor(%d) = %v, want StrategyRecursive", batchCrossoverNames-1, got)
	}
	if got := e.strategyFor(batchCrossoverNames); got != StrategyBatch {
		t.Errorf("strategyFor(%d) = %v, want StrategyBatch", batchCrossoverNames, got)
	}
	e.SetStrategy(StrategyBatch)
	if got := e.strategyFor(1); got != StrategyBatch {
		t.Errorf("forced batch: strategyFor(1) = %v", got)
	}
	e.SetStrategy(StrategyRecursive)
	if got := e.strategyFor(batchCrossoverNames * 10); got != StrategyRecursive {
		t.Errorf("forced recursive: strategyFor(%d) = %v", batchCrossoverNames*10, got)
	}
}

// ---------------------------------------------------------------- benchmark

// metricsBenchGraph builds a deterministic graph shaped like the measured
// snapshots: nProviders providers with a skewed popularity distribution,
// provider→provider chains, and nSites sites with 1–2 dependencies each.
func metricsBenchGraph(nSites, nProviders int) *Graph {
	providers := make([]*Provider, 0, nProviders)
	for i := 0; i < nProviders; i++ {
		p := &Provider{Name: "prov" + itoa(i), Service: Service(i % 3), Deps: map[Service]Dep{}}
		// Every provider rides another one closer to the head: a dependency
		// tree of depth log2(nProviders), the multi-hop shape the Dyn
		// incident chain and the follow-up chain-of-trust studies measure.
		if i > 0 {
			p.Deps[DNS] = Dep{Class: ClassSingleThird, Providers: []string{"prov" + itoa(i/2)}}
		}
		providers = append(providers, p)
	}
	sites := make([]*Site, 0, nSites)
	for i := 0; i < nSites; i++ {
		// Zipf-ish assignment: low provider ids get most sites.
		p1 := "prov" + itoa(i%((i%97)+3))
		s := &Site{Name: "site" + itoa(i), Rank: i + 1, Deps: map[Service]Dep{
			DNS: {Class: ClassSingleThird, Providers: []string{p1}},
		}}
		if i%2 == 0 {
			p2 := "prov" + itoa((i*7)%nProviders)
			s.Deps[CDN] = Dep{Class: ClassMultiThird, Providers: []string{p2}}
		}
		sites = append(sites, s)
	}
	return NewGraph(sites, providers)
}

// BenchmarkTopProvidersBatch100K proves the batched engine's win at the
// paper's full scale: 100K sites, 1000 providers, full transitive traversal.
// The "batch" arm prices one cold engine pass over every provider; the
// "recursive" arm is the seed shape — one recursive walk per provider. The
// "auto" arm leaves the crossover heuristic in charge: at this scale it must
// track the batch arm, not the recursive one.
func BenchmarkTopProvidersBatch100K(b *testing.B) {
	g := metricsBenchGraph(100000, 1000)
	opts := AllIndirect()
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := NewMetricsEngine(g, 0)
			e.SetStrategy(StrategyBatch)
			conc, _ := e.Counts(opts)
			if conc["prov0"] == 0 {
				b.Fatal("empty counts")
			}
		}
	})
	b.Run("auto", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := NewMetricsEngine(g, 0)
			conc, _ := e.Counts(opts)
			if conc["prov0"] == 0 {
				b.Fatal("empty counts")
			}
		}
	})
	b.Run("recursive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, svc := range Services {
				if stats := g.topProvidersRecursive(svc, opts, false, 0); len(stats) == 0 {
					b.Fatal("no providers")
				}
			}
		}
	})
}
