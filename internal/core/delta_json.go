package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// The delta wire format. One codec serves every consumer — the depserver's
// POST /v1/delta body, depscope -timeline stream files and checkpoint
// tooling — so a delta authored for one tool replays in all of them:
//
//	{"ops": [
//	  {"op": "swap", "name": "example.com", "service": "dns",
//	   "from": "Dyn", "to": "AWS DNS"},
//	  {"op": "site-dep", "name": "example.com", "service": "cdn",
//	   "dep": {"class": "multi-third", "providers": ["Cloudflare", "Fastly"]}},
//	  {"op": "site-add", "site": {"name": "new.example", "rank": 101,
//	   "deps": {"dns": {"class": "single-third", "providers": ["Dyn"]}}}},
//	  {"op": "site-remove", "name": "old.example"},
//	  {"op": "provider-set", "provider": {"name": "Fastly", "service": "cdn",
//	   "deps": {"dns": {"class": "single-third", "providers": ["Dyn"]}}}},
//	  {"op": "provider-remove", "name": "Fastly"}
//	]}
//
// Decoding rejects unknown fields everywhere — a typoed key fails loudly
// instead of silently dropping half an edit.

type wireDelta struct {
	Ops []wireOp `json:"ops"`
}

type wireOp struct {
	Op       string        `json:"op"`
	Name     string        `json:"name,omitempty"`
	Site     *wireSite     `json:"site,omitempty"`
	Service  string        `json:"service,omitempty"`
	Dep      *wireDep      `json:"dep,omitempty"`
	From     string        `json:"from,omitempty"`
	To       string        `json:"to,omitempty"`
	Provider *wireProvider `json:"provider,omitempty"`
}

type wireSite struct {
	Name         string              `json:"name"`
	Rank         int                 `json:"rank,omitempty"`
	Deps         map[string]wireDep  `json:"deps,omitempty"`
	PrivateInfra map[string][]string `json:"private_infra,omitempty"`
	Chains       []ChainEdge         `json:"chains,omitempty"`
}

type wireDep struct {
	Class     string   `json:"class"`
	Providers []string `json:"providers,omitempty"`
}

type wireProvider struct {
	Name    string             `json:"name"`
	Service string             `json:"service"`
	Deps    map[string]wireDep `json:"deps,omitempty"`
}

// ParseService maps a lower-case wire service name onto Service.
func ParseService(s string) (Service, error) {
	switch strings.ToLower(s) {
	case "dns":
		return DNS, nil
	case "cdn":
		return CDN, nil
	case "ca":
		return CA, nil
	case "resource":
		return Resource, nil
	}
	return 0, fmt.Errorf("unknown service %q (want dns, cdn, ca or resource)", s)
}

// ParseDepClass maps a wire class name (the DepClass.String values) onto
// DepClass.
func ParseDepClass(s string) (DepClass, error) {
	for _, c := range []DepClass{ClassNone, ClassPrivate, ClassSingleThird,
		ClassMultiThird, ClassPrivatePlusThird, ClassUnknown} {
		if s == c.String() {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown dependency class %q", s)
}

// ParseDelta decodes the wire format, rejecting unknown fields and unknown
// op/service/class names.
func ParseDelta(r io.Reader) (Delta, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var w wireDelta
	if err := dec.Decode(&w); err != nil {
		return Delta{}, fmt.Errorf("decode delta: %w", err)
	}
	if err := checkTrailing(dec); err != nil {
		return Delta{}, err
	}
	return w.toDelta()
}

// UnmarshalJSON decodes the wire format (unknown fields rejected).
func (d *Delta) UnmarshalJSON(b []byte) error {
	nd, err := ParseDelta(bytes.NewReader(b))
	if err != nil {
		return err
	}
	*d = nd
	return nil
}

// MarshalJSON encodes the wire format.
func (d Delta) MarshalJSON() ([]byte, error) {
	w := wireDelta{Ops: make([]wireOp, 0, len(d.Ops))}
	for i := range d.Ops {
		w.Ops = append(w.Ops, toWireOp(&d.Ops[i]))
	}
	return json.Marshal(w)
}

func checkTrailing(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("decode delta: trailing data after delta object")
	}
	return nil
}

func (w wireDelta) toDelta() (Delta, error) {
	d := Delta{Ops: make([]Op, 0, len(w.Ops))}
	for i, wo := range w.Ops {
		op, err := wo.toOp()
		if err != nil {
			return Delta{}, fmt.Errorf("delta op %d: %w", i, err)
		}
		d.Ops = append(d.Ops, op)
	}
	return d, nil
}

func (wo wireOp) toOp() (Op, error) {
	var op Op
	switch wo.Op {
	case "site-add":
		op.Kind = OpSiteAdd
		if wo.Site == nil {
			return op, fmt.Errorf("site-add needs a site payload")
		}
		s, err := wo.Site.toSite()
		if err != nil {
			return op, err
		}
		op.Site = s
	case "site-remove":
		op.Kind = OpSiteRemove
		op.Name = wo.Name
	case "site-dep":
		op.Kind = OpSiteDep
		op.Name = wo.Name
		svc, err := ParseService(wo.Service)
		if err != nil {
			return op, err
		}
		op.Service = svc
		if wo.Dep != nil {
			dep, err := wo.Dep.toDep()
			if err != nil {
				return op, err
			}
			op.Dep = dep
		}
	case "swap":
		op.Kind = OpSwap
		op.Name = wo.Name
		svc, err := ParseService(wo.Service)
		if err != nil {
			return op, err
		}
		op.Service = svc
		op.From, op.To = wo.From, wo.To
	case "provider-set":
		op.Kind = OpProviderSet
		if wo.Provider == nil {
			return op, fmt.Errorf("provider-set needs a provider payload")
		}
		p, err := wo.Provider.toProvider()
		if err != nil {
			return op, err
		}
		op.Provider = p
	case "provider-remove":
		op.Kind = OpProviderRemove
		op.Name = wo.Name
	default:
		return op, fmt.Errorf("unknown op %q", wo.Op)
	}
	return op, nil
}

func (ws *wireSite) toSite() (*Site, error) {
	s := &Site{Name: ws.Name, Rank: ws.Rank}
	if len(ws.Deps) > 0 {
		s.Deps = make(map[Service]Dep, len(ws.Deps))
		for svcName, wd := range ws.Deps {
			svc, err := ParseService(svcName)
			if err != nil {
				return nil, err
			}
			dep, err := wd.toDep()
			if err != nil {
				return nil, err
			}
			s.Deps[svc] = dep
		}
	}
	if len(ws.PrivateInfra) > 0 {
		s.PrivateInfra = make(map[Service][]string, len(ws.PrivateInfra))
		for svcName, infra := range ws.PrivateInfra {
			svc, err := ParseService(svcName)
			if err != nil {
				return nil, err
			}
			s.PrivateInfra[svc] = infra
		}
	}
	for i, e := range ws.Chains {
		if e.Provider == "" || e.Depth < 1 {
			return nil, fmt.Errorf("chain edge %d: needs a provider and depth >= 1", i)
		}
	}
	s.Chains = ws.Chains
	return s, nil
}

func (wp *wireProvider) toProvider() (*Provider, error) {
	svc, err := ParseService(wp.Service)
	if err != nil {
		return nil, err
	}
	p := &Provider{Name: wp.Name, Service: svc, Deps: map[Service]Dep{}}
	for svcName, wd := range wp.Deps {
		dsvc, err := ParseService(svcName)
		if err != nil {
			return nil, err
		}
		dep, err := wd.toDep()
		if err != nil {
			return nil, err
		}
		p.Deps[dsvc] = dep
	}
	return p, nil
}

func (wd wireDep) toDep() (Dep, error) {
	c, err := ParseDepClass(wd.Class)
	if err != nil {
		return Dep{}, err
	}
	return Dep{Class: c, Providers: wd.Providers}, nil
}

func toWireOp(op *Op) wireOp {
	wo := wireOp{Op: op.Kind.String(), Name: op.Name}
	switch op.Kind {
	case OpSiteAdd:
		wo.Name = ""
		if op.Site != nil {
			wo.Site = toWireSite(op.Site)
		}
	case OpSiteDep:
		wo.Service = strings.ToLower(op.Service.String())
		if op.Dep.Class != ClassNone || len(op.Dep.Providers) > 0 {
			wo.Dep = &wireDep{Class: op.Dep.Class.String(), Providers: op.Dep.Providers}
		}
	case OpSwap:
		wo.Service = strings.ToLower(op.Service.String())
		wo.From, wo.To = op.From, op.To
	case OpProviderSet:
		wo.Name = ""
		if op.Provider != nil {
			wo.Provider = &wireProvider{
				Name:    op.Provider.Name,
				Service: strings.ToLower(op.Provider.Service.String()),
				Deps:    toWireDeps(op.Provider.Deps),
			}
		}
	}
	return wo
}

func toWireSite(s *Site) *wireSite {
	ws := &wireSite{Name: s.Name, Rank: s.Rank, Deps: toWireDeps(s.Deps)}
	if len(s.PrivateInfra) > 0 {
		ws.PrivateInfra = make(map[string][]string, len(s.PrivateInfra))
		for svc, infra := range s.PrivateInfra {
			ws.PrivateInfra[strings.ToLower(svc.String())] = infra
		}
	}
	ws.Chains = s.Chains
	return ws
}

func toWireDeps(deps map[Service]Dep) map[string]wireDep {
	if len(deps) == 0 {
		return nil
	}
	out := make(map[string]wireDep, len(deps))
	for svc, d := range deps {
		out[strings.ToLower(svc.String())] = wireDep{Class: d.Class.String(), Providers: d.Providers}
	}
	return out
}
