package core

import "testing"

// BenchmarkDeltaApply prices a single-site delta (the paper's
// diversification move: one site swapping its managed-DNS provider)
// against the batch alternative — rebuilding the graph and re-running a
// from-scratch metrics fill — at 2K and the paper's full 100K scale. Both
// arms end with complete counts for the full indirect traversal, so they
// deliver the same queryable state. docs/bench.sh's delta suite records
// the results in BENCH_delta.json and checks the 100K delta arm beats the
// rebuild arm by >= 10x.
func BenchmarkDeltaApply(b *testing.B) {
	for _, tc := range []struct {
		name          string
		nSites, nProv int
	}{
		{"2K", 2000, 200},
		{"100K", 100000, 1000},
	} {
		g := metricsBenchGraph(tc.nSites, tc.nProv)
		provs := providerList(g)
		opts := AllIndirect()
		g.Metrics().Counts(opts) // primed: the served-snapshot steady state
		delta := Delta{Ops: []Op{{
			Kind:    OpSwap,
			Name:    "site42",
			Service: DNS,
			From:    g.Site("site42").Deps[DNS].Providers[0],
			To:      "prov" + itoa(tc.nProv-1),
		}}}

		b.Run("delta/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ng, stats, err := g.Apply(delta)
				if err != nil {
					b.Fatal(err)
				}
				if stats.Rebuilt {
					b.Fatal("delta arm fell back to a rebuild")
				}
				conc, _ := ng.Metrics().Counts(opts)
				if conc["prov0"] == 0 {
					b.Fatal("empty counts")
				}
			}
		})
		b.Run("rebuild/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ng := NewGraph(g.Sites, provs)
				conc, _ := ng.Metrics().Counts(opts)
				if conc["prov0"] == 0 {
					b.Fatal("empty counts")
				}
			}
		})
	}
}
