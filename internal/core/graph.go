// Package core implements the paper's analytical contribution: the
// dependency graph over websites and third-party providers, and the
// actionable metrics of §2.2 — critical dependency, provider concentration
// C_p and provider impact I_p, both computed transitively over inter-service
// dependencies with the recursive set-union formulas (including the \{p}
// exclusion that guards against cycles).
package core

import (
	"fmt"
	"sort"
	"sync"
)

// Service is an infrastructure service type.
type Service int

// The services under study.
const (
	DNS Service = iota
	CDN
	CA
	// Resource is the fourth dependency type: transitive web-resource
	// providers ("The Chain of Implicit Trust"). A site's resource chain —
	// page → third-party script → that vendor's own CDN and DNS — puts the
	// vendor on the critical path without any DNS/CDN/CA arrangement naming
	// it. Chain edges live in Site.Chains; vendor nodes are ordinary
	// Providers with Service == Resource and their own Deps.
	Resource
)

// Services lists the paper's three directly-measured service types. Rankings,
// CDFs and the evolution tables iterate this list, so the original report
// surfaces never see chain data.
var Services = []Service{DNS, CDN, CA}

// AllServices additionally includes the transitive Resource kind — the list
// traversal plumbing (cache keys, index construction) iterates.
var AllServices = []Service{DNS, CDN, CA, Resource}

// String names the service.
func (s Service) String() string {
	switch s {
	case DNS:
		return "DNS"
	case CDN:
		return "CDN"
	case CA:
		return "CA"
	case Resource:
		return "Resource"
	}
	return fmt.Sprintf("Service(%d)", int(s))
}

// DepClass is the measured dependency arrangement of an actor for one
// service.
type DepClass int

// Dependency classes. Unknown marks actors the measurement could not
// characterize; they are excluded from analysis (paper §3.1).
const (
	ClassNone DepClass = iota
	ClassPrivate
	ClassSingleThird
	ClassMultiThird
	ClassPrivatePlusThird
	ClassUnknown
)

// String names the class.
func (c DepClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassPrivate:
		return "private"
	case ClassSingleThird:
		return "single-third"
	case ClassMultiThird:
		return "multi-third"
	case ClassPrivatePlusThird:
		return "private+third"
	case ClassUnknown:
		return "unknown"
	}
	return fmt.Sprintf("DepClass(%d)", int(c))
}

// Critical reports whether the class is a critical dependency.
func (c DepClass) Critical() bool { return c == ClassSingleThird }

// UsesThird reports whether any third party is involved.
func (c DepClass) UsesThird() bool {
	return c == ClassSingleThird || c == ClassMultiThird || c == ClassPrivatePlusThird
}

// Redundant reports whether the actor is redundantly provisioned while
// using third parties.
func (c DepClass) Redundant() bool {
	return c == ClassMultiThird || c == ClassPrivatePlusThird
}

// Dep is one actor's measured arrangement for one service.
type Dep struct {
	Class     DepClass
	Providers []string
}

// Site is a website node.
type Site struct {
	Name string
	Rank int
	// Deps maps service → arrangement. A missing service means the site
	// does not consume it (no HTTPS → no CA entry, no CDN use → no CDN
	// entry); ClassUnknown means unmeasurable.
	Deps map[Service]Dep
	// PrivateInfra names provider nodes that are the site's own
	// infrastructure (a private CDN or CA with its own domain). The site
	// depends on them critically by construction, so their third-party
	// dependencies are hidden dependencies of the site — the paper's
	// twitter.com (private CDN on third-party DNS) and godaddy.com (private
	// CA on third-party DNS) cases.
	PrivateInfra map[Service][]string
	// Chains are the site's transitive resource-inclusion edges: one entry
	// per implicitly-trusted vendor the page loads an object from, annotated
	// with the minimum inclusion depth it was reached at (1 = referenced by
	// the page itself, 2 = loaded by a depth-1 resource, ...). Each edge is a
	// critical dependency by construction — the vendor serves an object the
	// page executes — so losing the vendor takes the inclusion down. Empty
	// when the run was measured without -chains.
	Chains []ChainEdge
}

// ChainEdge is one site → vendor resource-inclusion edge.
type ChainEdge struct {
	// Provider is the vendor's provider-node name (its registrable domain).
	Provider string `json:"provider"`
	// Depth is the minimum inclusion depth the vendor was reached at (>= 1).
	Depth int `json:"depth"`
}

// Provider is a provider node with its own (inter-service) dependencies.
type Provider struct {
	Name    string
	Service Service
	Deps    map[Service]Dep
}

// Graph is the full dependency graph of one snapshot.
type Graph struct {
	Sites     []*Site
	Providers map[string]*Provider

	// siteIndex is built lazily on first Site() lookup: at the paper's 100K
	// scale the name→node map costs more to materialize than everything else
	// a graph delta touches, and most derived graphs are only ever queried
	// through the metrics engine.
	siteOnce  sync.Once
	siteIndex map[string]*Site
	// usersOf[service][provider] caches direct site users.
	usersOf map[Service]map[string][]*Site
	// criticalUsersOf likewise for critical users only.
	criticalUsersOf map[Service]map[string][]*Site
	// providerUsersOf[provider] lists providers directly using it.
	providerUsersOf map[string][]*Provider
	// privateUsersOf[provider] lists sites owning that private
	// infrastructure node (always a critical dependency).
	privateUsersOf map[string][]*Site

	// The batched metrics engine (metrics.go) is created lazily and caches
	// per-traversal results; the graph is immutable after NewGraph, so the
	// cache never invalidates.
	metricsMu      sync.Mutex
	metricsWorkers int
	metrics        *MetricsEngine

	// Cached outage simulators (simulate.go), one per traversal key, built
	// on the metrics engine's view of the graph.
	simMu sync.Mutex
	sims  map[uint8]*OutageSim
}

// NewGraph builds a graph and its indexes.
func NewGraph(sites []*Site, providers []*Provider) *Graph {
	g := &Graph{
		Sites:           sites,
		Providers:       make(map[string]*Provider, len(providers)),
		usersOf:         make(map[Service]map[string][]*Site),
		criticalUsersOf: make(map[Service]map[string][]*Site),
		providerUsersOf: make(map[string][]*Provider),
		privateUsersOf:  make(map[string][]*Site),
	}
	for _, svc := range AllServices {
		g.usersOf[svc] = make(map[string][]*Site)
		g.criticalUsersOf[svc] = make(map[string][]*Site)
	}
	for _, p := range providers {
		g.Providers[p.Name] = p
	}
	for _, s := range sites {
		for svc, d := range s.Deps {
			if !d.Class.UsesThird() {
				continue
			}
			for _, pname := range d.Providers {
				g.usersOf[svc][pname] = append(g.usersOf[svc][pname], s)
				if d.Class.Critical() {
					g.criticalUsersOf[svc][pname] = append(g.criticalUsersOf[svc][pname], s)
				}
			}
		}
		// A site is critically dependent on its own private infrastructure,
		// so transitive impact flows through those provider nodes — but they
		// are kept out of the public third-party indexes so concentration
		// rankings and CDFs only see real third parties.
		for _, infra := range s.PrivateInfra {
			for _, pname := range infra {
				g.privateUsersOf[pname] = append(g.privateUsersOf[pname], s)
			}
		}
		// Resource-chain edges index under the Resource service, each one a
		// critical dependency (the vendor serves an object the page runs).
		// Multiple edges to the same vendor at different depths collapse to
		// one index entry per site.
		indexChainEdges(g.usersOf[Resource], g.criticalUsersOf[Resource], s)
	}
	for _, p := range providers {
		for _, d := range p.Deps {
			if !d.Class.UsesThird() {
				continue
			}
			for _, dep := range d.Providers {
				g.providerUsersOf[dep] = append(g.providerUsersOf[dep], p)
			}
		}
	}
	return g
}

// indexChainEdges records s's chain edges into the Resource user indexes,
// de-duplicating multiple edges to the same vendor — NewGraph and the delta
// path share it so a delta-built graph indexes identically.
func indexChainEdges(users, critical map[string][]*Site, s *Site) {
	if len(s.Chains) == 0 {
		return
	}
	var seen map[string]bool
	if len(s.Chains) > 1 {
		seen = make(map[string]bool, len(s.Chains))
	}
	for _, e := range s.Chains {
		if seen != nil {
			if seen[e.Provider] {
				continue
			}
			seen[e.Provider] = true
		}
		users[e.Provider] = append(users[e.Provider], s)
		critical[e.Provider] = append(critical[e.Provider], s)
	}
}

// Site returns a site node by name, or nil. The index is built on first
// use; duplicate names resolve to the later node, matching the historical
// eager index.
func (g *Graph) Site(name string) *Site {
	g.siteOnce.Do(g.buildSiteIndex)
	return g.siteIndex[name]
}

func (g *Graph) buildSiteIndex() {
	m := make(map[string]*Site, len(g.Sites))
	for _, s := range g.Sites {
		m[s.Name] = s
	}
	g.siteIndex = m
}

// TraversalOpts selects which inter-service edges participate in the
// transitive concentration/impact computation. The zero value traverses
// website edges only (direct dependencies).
type TraversalOpts struct {
	// ViaProviders enables traversing dependencies of providers of these
	// service types (e.g. only CA for the Fig 7 CA→DNS analysis); nil means
	// no provider edges.
	ViaProviders []Service
}

// AllIndirect traverses every inter-service edge between the three directly
// measured services. Resource vendors stay opaque: a provider's C_p/I_p under
// AllIndirect never grows through a chain edge, so every pre-chain metric is
// reproduced exactly.
func AllIndirect() TraversalOpts {
	return TraversalOpts{ViaProviders: []Service{DNS, CDN, CA}}
}

// AllImplicit additionally traverses through Resource vendor nodes: a DNS
// provider serving a vendor's zone picks up every site including that
// vendor's script — the implicit C_p/I_p of the chain analysis.
func AllImplicit() TraversalOpts {
	return TraversalOpts{ViaProviders: []Service{DNS, CDN, CA, Resource}}
}

// DirectOnly traverses no provider edges.
func DirectOnly() TraversalOpts { return TraversalOpts{} }

func (o TraversalOpts) allows(svc Service) bool {
	for _, s := range o.ViaProviders {
		if s == svc {
			return true
		}
	}
	return false
}

// ConcentrationSet returns the set of websites directly or indirectly
// dependent on provider p (§2.2 C_p), traversing provider edges per opts.
func (g *Graph) ConcentrationSet(p string, opts TraversalOpts) map[string]bool {
	out := make(map[string]bool)
	g.gather(p, opts, false, out, map[string]bool{p: true})
	return out
}

// ImpactSet returns the set of websites critically dependent on p directly
// or transitively (§2.2 I_p).
func (g *Graph) ImpactSet(p string, opts TraversalOpts) map[string]bool {
	out := make(map[string]bool)
	g.gather(p, opts, true, out, map[string]bool{p: true})
	return out
}

// gather unions D^p_w (or E^p_w) with the recursion over providers using p.
// visited implements the \{p} exclusion of the formulas, generalized to the
// whole recursion path so provider cycles terminate.
func (g *Graph) gather(p string, opts TraversalOpts, critical bool, out map[string]bool, visited map[string]bool) {
	users := g.usersOf
	if critical {
		users = g.criticalUsersOf
	}
	for _, svcUsers := range users {
		for _, s := range svcUsers[p] {
			out[s.Name] = true
		}
	}
	for _, s := range g.privateUsersOf[p] {
		out[s.Name] = true
	}
	for _, k := range g.providerUsersOf[p] {
		if visited[k.Name] || !opts.allows(k.Service) {
			continue
		}
		// Does k depend on p in the required (critical) way?
		usesP := false
		for _, d := range k.Deps {
			if !d.Class.UsesThird() || (critical && !d.Class.Critical()) {
				continue
			}
			for _, dep := range d.Providers {
				if dep == p {
					usesP = true
				}
			}
		}
		if !usesP {
			continue
		}
		visited[k.Name] = true
		g.gather(k.Name, opts, critical, out, visited)
	}
}

// Concentration returns |C_p|, served by the batched metrics engine: the
// first query for a traversal computes counts for every provider at once and
// later queries are map lookups. It always equals len(ConcentrationSet).
func (g *Graph) Concentration(p string, opts TraversalOpts) int {
	return g.Metrics().Concentration(p, opts)
}

// Impact returns |I_p|, served by the batched metrics engine. It always
// equals len(ImpactSet).
func (g *Graph) Impact(p string, opts TraversalOpts) int {
	return g.Metrics().Impact(p, opts)
}

// ProviderStat pairs a provider with its concentration and impact.
type ProviderStat struct {
	Name          string
	Service       Service
	Concentration int
	Impact        int
}

// TopProviders ranks the providers of svc by the chosen metric under opts,
// descending; n <= 0 returns all. Metrics come from the engine's per-name
// queries: at snapshot scale those are lookups into one cached batch
// propagation, and on small graphs the engine's lazy strategy instead pays
// one memoized recursive walk per ranked name — either way far cheaper than
// the seed's unconditional walk per provider per render.
func (g *Graph) TopProviders(svc Service, opts TraversalOpts, byImpact bool, n int) []ProviderStat {
	m := g.Metrics()
	return g.topProviders(svc, byImpact, n, func(pname string) (int, int) {
		return m.Concentration(pname, opts), m.Impact(pname, opts)
	})
}

// topProvidersRecursive is the seed per-provider implementation, retained as
// the reference that equivalence tests and benchmarks hold the batched
// engine against.
func (g *Graph) topProvidersRecursive(svc Service, opts TraversalOpts, byImpact bool, n int) []ProviderStat {
	return g.topProviders(svc, byImpact, n, func(pname string) (int, int) {
		return len(g.ConcentrationSet(pname, opts)), len(g.ImpactSet(pname, opts))
	})
}

// topProviders collects, filters and ranks provider stats with metrics
// supplied by the given lookup.
func (g *Graph) topProviders(svc Service, byImpact bool, n int, metrics func(string) (conc, imp int)) []ProviderStat {
	var stats []ProviderStat
	seen := make(map[string]bool)
	collect := func(pname string) {
		if seen[pname] {
			return
		}
		seen[pname] = true
		if p, ok := g.Providers[pname]; ok && p.Service != svc {
			return
		}
		// Pure private-infrastructure nodes (a site's own CDN or PKI
		// domain) are not third-party providers; keep them out of the
		// ranking even though impact flows through them.
		if len(g.privateUsersOf[pname]) > 0 && !g.hasPublicUsers(pname) {
			return
		}
		conc, imp := metrics(pname)
		stats = append(stats, ProviderStat{
			Name:          pname,
			Service:       svc,
			Concentration: conc,
			Impact:        imp,
		})
	}
	for pname := range g.usersOf[svc] {
		collect(pname)
	}
	for pname, p := range g.Providers {
		if p.Service == svc {
			collect(pname)
		}
	}
	sort.Slice(stats, func(i, j int) bool {
		a, b := stats[i], stats[j]
		ka, kb := a.Concentration, b.Concentration
		if byImpact {
			ka, kb = a.Impact, b.Impact
		}
		if ka != kb {
			return ka > kb
		}
		return a.Name < b.Name
	})
	if n > 0 && len(stats) > n {
		stats = stats[:n]
	}
	return stats
}

// hasPublicUsers reports whether any site uses pname as a third party.
func (g *Graph) hasPublicUsers(pname string) bool {
	for _, svcUsers := range g.usersOf {
		if len(svcUsers[pname]) > 0 {
			return true
		}
	}
	return false
}

// CriticalDepsPerSite returns, for each site, the number of distinct
// providers it critically depends on. With indirect true, a provider's own
// critical dependencies are charged to the sites critically depending on it
// (§8.1: 25% of sites have ≥3 critical dependencies vs 9.6% direct).
func (g *Graph) CriticalDepsPerSite(indirect bool) map[string]int {
	out := make(map[string]int, len(g.Sites))
	for _, s := range g.Sites {
		set := make(map[string]bool)
		for _, d := range s.Deps {
			if !d.Class.Critical() {
				continue
			}
			for _, pname := range d.Providers {
				g.expandCritical(pname, indirect, set, map[string]bool{})
			}
		}
		out[s.Name] = len(set)
	}
	return out
}

func (g *Graph) expandCritical(p string, indirect bool, set, visited map[string]bool) {
	if visited[p] {
		return
	}
	visited[p] = true
	set[p] = true
	if !indirect {
		return
	}
	if prov, ok := g.Providers[p]; ok {
		for _, d := range prov.Deps {
			if !d.Class.Critical() {
				continue
			}
			for _, dep := range d.Providers {
				g.expandCritical(dep, indirect, set, visited)
			}
		}
	}
}
