package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// providerList flattens a graph's provider map for NewGraph.
func providerList(g *Graph) []*Provider {
	out := make([]*Provider, 0, len(g.Providers))
	for _, p := range g.Providers {
		out = append(out, p)
	}
	return out
}

// fromScratch rebuilds the same node structure through NewGraph — the
// reference every delta-built graph is held against.
func fromScratch(g *Graph) *Graph {
	return NewGraph(append([]*Site(nil), g.Sites...), providerList(g))
}

// countsAgree compares two count maps as total functions (a missing name
// counts zero): a delta-carried universe may retain zero-count names a
// from-scratch engine never allocates, which is observably identical.
func countsAgree(t *testing.T, label string, got, want map[string]int) bool {
	t.Helper()
	for name, w := range want {
		if g := got[name]; g != w {
			t.Logf("%s: %s = %d, want %d", label, name, g, w)
			return false
		}
	}
	for name, g := range got {
		if w, ok := want[name]; !ok && g != 0 {
			t.Logf("%s: %s = %d, want absent/0", label, name, g)
			return false
		} else if ok && g != w {
			t.Logf("%s: %s = %d, want %d", label, name, g, w)
			return false
		}
	}
	return true
}

// randomDelta builds a valid delta of 1-3 ops against g. Ops target
// distinct sites so sequential application cannot invalidate a later op.
func randomDelta(rng *rand.Rand, g *Graph, step int) Delta {
	provNames := make([]string, 0, len(g.Providers))
	for name := range g.Providers {
		provNames = append(provNames, name)
	}
	// Deterministic order: map iteration must not leak into the delta.
	sortStrings(provNames)
	pickProv := func() string {
		if len(provNames) == 0 || rng.Intn(6) == 0 {
			return "Pnew" + itoa(rng.Intn(4))
		}
		return provNames[rng.Intn(len(provNames))]
	}
	classes := []DepClass{ClassPrivate, ClassSingleThird, ClassMultiThird, ClassPrivatePlusThird, ClassUnknown}
	randomDep := func() Dep {
		class := classes[rng.Intn(len(classes))]
		d := Dep{Class: class}
		if class.UsesThird() {
			d.Providers = []string{pickProv()}
			if class != ClassSingleThird && rng.Intn(2) == 0 {
				if second := pickProv(); second != d.Providers[0] {
					d.Providers = append(d.Providers, second)
				}
			}
		}
		return d
	}

	usedSites := map[string]bool{}
	removedProvs := map[string]bool{}
	pickSite := func() *Site {
		for tries := 0; tries < 10; tries++ {
			s := g.Sites[rng.Intn(len(g.Sites))]
			if !usedSites[s.Name] {
				usedSites[s.Name] = true
				return s
			}
		}
		return nil
	}

	var d Delta
	nOps := 1 + rng.Intn(3)
	for i := 0; i < nOps; i++ {
		switch kind := rng.Intn(6); {
		case kind == 0 && len(g.Sites) > 0: // site-dep
			s := pickSite()
			if s == nil {
				continue
			}
			op := Op{Kind: OpSiteDep, Name: s.Name, Service: Service(rng.Intn(3))}
			if rng.Intn(5) != 0 {
				op.Dep = randomDep()
			} // else: zero Dep deletes the arrangement
			d.Ops = append(d.Ops, op)
		case kind == 1 && len(g.Sites) > 0: // swap
			s := pickSite()
			if s == nil {
				continue
			}
			var swapped bool
			for svc, dep := range s.Deps {
				if !dep.Class.UsesThird() || len(dep.Providers) == 0 {
					continue
				}
				d.Ops = append(d.Ops, Op{
					Kind:    OpSwap,
					Name:    s.Name,
					Service: svc,
					From:    dep.Providers[rng.Intn(len(dep.Providers))],
					To:      pickProv(),
				})
				swapped = true
				break
			}
			if !swapped {
				usedSites[s.Name] = false
			}
		case kind == 2: // site-add
			name := "added" + itoa(step) + "x" + itoa(i)
			if g.Site(name) != nil {
				continue
			}
			s := &Site{Name: name, Rank: len(g.Sites) + i + 1, Deps: map[Service]Dep{}}
			for _, svc := range Services {
				if rng.Intn(2) == 0 {
					s.Deps[svc] = randomDep()
				}
			}
			if rng.Intn(3) == 0 {
				s.PrivateInfra = map[Service][]string{Service(rng.Intn(3)): {pickProv()}}
			}
			d.Ops = append(d.Ops, Op{Kind: OpSiteAdd, Site: s})
		case kind == 3 && len(g.Sites) > 1: // site-remove
			if s := pickSite(); s != nil {
				d.Ops = append(d.Ops, Op{Kind: OpSiteRemove, Name: s.Name})
			}
		case kind == 4: // provider-set (structural)
			p := &Provider{Name: pickProv(), Service: Service(rng.Intn(3)), Deps: map[Service]Dep{}}
			if rng.Intn(2) == 0 {
				if dep := randomDep(); dep.Class.UsesThird() {
					p.Deps[Service(rng.Intn(3))] = dep
				}
			}
			delete(removedProvs, p.Name)
			d.Ops = append(d.Ops, Op{Kind: OpProviderSet, Provider: p})
		case kind == 5 && len(provNames) > 0: // provider-remove (structural)
			name := provNames[rng.Intn(len(provNames))]
			if removedProvs[name] {
				continue
			}
			removedProvs[name] = true
			d.Ops = append(d.Ops, Op{Kind: OpProviderRemove, Name: name})
		}
	}
	return d
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// deltaStreamAgrees drives one randomized delta stream under the given
// engine strategy and checks, after every step, that the carried engine's
// counts are identical to a from-scratch engine over the same structure —
// both through per-name queries (the memo/patch path) and complete Counts
// maps (the promotion/batch path) — and that the predecessor graph still
// answers its old counts (immutability).
func deltaStreamAgrees(t *testing.T, seed int64, strat Strategy) bool {
	optsList := []TraversalOpts{DirectOnly(), AllIndirect(), {ViaProviders: []Service{CA}}}
	rng := rand.New(rand.NewSource(seed))
	cur := randomGraph(seed)
	cur.Metrics().SetStrategy(strat)
	// Prime the cache so Apply has state to carry: complete maps for two
	// keys, per-name memos only for the third.
	for _, opts := range optsList[:2] {
		cur.Metrics().Counts(opts)
	}
	for name := range cur.Providers {
		cur.Metrics().Concentration(name, optsList[2])
		cur.Metrics().Impact(name, optsList[2])
	}

	for step := 0; step < 5; step++ {
		d := randomDelta(rng, cur, step)
		prevConc, prevImp := cur.Metrics().Counts(AllIndirect())
		prevSites := len(cur.Sites)

		ng, stats, err := cur.Apply(d)
		if err != nil {
			t.Logf("seed %d step %d: apply: %v", seed, step, err)
			return false
		}
		if len(d.Ops) == 0 {
			continue
		}
		if stats.Ops != len(d.Ops) {
			t.Logf("seed %d step %d: stats.Ops = %d, want %d", seed, step, stats.Ops, len(d.Ops))
			return false
		}
		ref := fromScratch(ng)
		for _, opts := range optsList {
			label := "seed " + itoa(int(seed&0xffff)) + " step " + itoa(step)
			// Per-name queries first: on lazy entries this exercises the
			// carried memos before Counts promotes the entry.
			for name := range ref.Providers {
				if ng.Concentration(name, opts) != len(ref.ConcentrationSet(name, opts)) {
					t.Logf("%s: per-name C(%s) diverged", label, name)
					return false
				}
				if ng.Impact(name, opts) != len(ref.ImpactSet(name, opts)) {
					t.Logf("%s: per-name I(%s) diverged", label, name)
					return false
				}
			}
			gotC, gotI := ng.Metrics().Counts(opts)
			wantC, wantI := ref.Metrics().Counts(opts)
			if !countsAgree(t, label+" conc", gotC, wantC) || !countsAgree(t, label+" imp", gotI, wantI) {
				return false
			}
		}
		// The predecessor graph must be untouched: same sites, same counts.
		if len(cur.Sites) != prevSites {
			t.Logf("seed %d step %d: predecessor mutated", seed, step)
			return false
		}
		curConc, curImp := cur.Metrics().Counts(AllIndirect())
		if !reflect.DeepEqual(curConc, prevConc) || !reflect.DeepEqual(curImp, prevImp) {
			t.Logf("seed %d step %d: predecessor counts changed", seed, step)
			return false
		}
		cur = ng
	}
	return true
}

// Property: delta-maintained counts equal from-scratch counts after every
// step of a randomized delta stream, under every engine strategy.
func TestPropertyDeltaStreamMatchesFromScratch(t *testing.T) {
	for _, tc := range []struct {
		name  string
		strat Strategy
	}{
		{"auto", StrategyAuto},
		{"batch", StrategyBatch},
		{"recursive", StrategyRecursive},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := func(seed int64) bool { return deltaStreamAgrees(t, seed, tc.strat) }
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: past the dirtiness threshold Apply falls back to a fresh
// engine and is still exactly equivalent.
func TestPropertyDeltaFallbackEquivalent(t *testing.T) {
	old := deltaDirtyLimit
	deltaDirtyLimit = func(int) int { return 0 } // force the fallback
	defer func() { deltaDirtyLimit = old }()

	f := func(seed int64) bool {
		cur := randomGraph(seed)
		cur.Metrics().SetStrategy(StrategyBatch)
		cur.Metrics().Counts(AllIndirect())
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		d := randomDelta(rng, cur, 0)
		ng, stats, err := cur.Apply(d)
		if err != nil {
			return false
		}
		if stats.DirtyNames > 0 && !stats.Rebuilt {
			t.Logf("seed %d: expected fallback rebuild (dirty=%d)", seed, stats.DirtyNames)
			return false
		}
		ref := fromScratch(ng)
		gotC, gotI := ng.Metrics().Counts(AllIndirect())
		wantC, wantI := ref.Metrics().Counts(AllIndirect())
		return countsAgree(t, "conc", gotC, wantC) && countsAgree(t, "imp", gotI, wantI)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func twoSiteGraph() *Graph {
	sites := []*Site{
		{Name: "a.com", Rank: 1, Deps: map[Service]Dep{
			DNS: {Class: ClassSingleThird, Providers: []string{"dyn"}},
		}},
		{Name: "b.com", Rank: 2, Deps: map[Service]Dep{
			DNS: {Class: ClassMultiThird, Providers: []string{"dyn", "ns1"}},
		}},
	}
	providers := []*Provider{
		{Name: "dyn", Service: DNS, Deps: map[Service]Dep{}},
		{Name: "ns1", Service: DNS, Deps: map[Service]Dep{}},
	}
	return NewGraph(sites, providers)
}

func TestApplySwapMovesCounts(t *testing.T) {
	g := twoSiteGraph()
	if got := g.Impact("dyn", AllIndirect()); got != 1 {
		t.Fatalf("pre-delta I(dyn) = %d, want 1", got)
	}
	ng, stats, err := g.Apply(Delta{Ops: []Op{
		{Kind: OpSwap, Name: "a.com", Service: DNS, From: "dyn", To: "ns1"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DirtyNames == 0 {
		t.Error("swap should dirty at least the two providers")
	}
	if got := ng.Impact("dyn", AllIndirect()); got != 0 {
		t.Errorf("post-delta I(dyn) = %d, want 0", got)
	}
	if got := ng.Impact("ns1", AllIndirect()); got != 1 {
		t.Errorf("post-delta I(ns1) = %d, want 1", got)
	}
	if got := ng.Concentration("dyn", AllIndirect()); got != 1 {
		t.Errorf("post-delta C(dyn) = %d, want 1 (b.com still multi on dyn)", got)
	}
	// The old graph is untouched.
	if got := g.Impact("dyn", AllIndirect()); got != 1 {
		t.Errorf("old graph I(dyn) = %d, want 1", got)
	}
	if g.Site("a.com").Deps[DNS].Providers[0] != "dyn" {
		t.Error("old site node mutated")
	}
	// Untouched nodes are shared, touched ones are not.
	if ng.Site("b.com") != g.Site("b.com") {
		t.Error("untouched site not shared")
	}
	if ng.Site("a.com") == g.Site("a.com") {
		t.Error("edited site should be a fresh node")
	}
}

func TestApplyValidation(t *testing.T) {
	g := twoSiteGraph()
	cases := []struct {
		name string
		d    Delta
		want string
	}{
		{"unknown site", Delta{Ops: []Op{{Kind: OpSiteRemove, Name: "nope.com"}}}, "unknown site"},
		{"swap unknown provider", Delta{Ops: []Op{{Kind: OpSwap, Name: "a.com", Service: DNS, From: "ns1", To: "x"}}}, "does not use"},
		{"swap empty to", Delta{Ops: []Op{{Kind: OpSwap, Name: "a.com", Service: DNS, From: "dyn"}}}, "non-empty replacement"},
		{"swap missing service", Delta{Ops: []Op{{Kind: OpSwap, Name: "a.com", Service: CDN, From: "dyn", To: "x"}}}, "no CDN arrangement"},
		{"dup site", Delta{Ops: []Op{{Kind: OpSiteAdd, Site: &Site{Name: "a.com"}}}}, "already exists"},
		{"class without providers", Delta{Ops: []Op{{Kind: OpSiteDep, Name: "a.com", Service: DNS, Dep: Dep{Class: ClassSingleThird}}}}, "requires providers"},
		{"unknown provider", Delta{Ops: []Op{{Kind: OpProviderRemove, Name: "nope"}}}, "unknown provider"},
		{"nil payload", Delta{Ops: []Op{{Kind: OpSiteAdd}}}, "payload missing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ng, _, err := g.Apply(tc.d)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
			if ng != nil {
				t.Error("failed apply must not return a graph")
			}
		})
	}
	// The original survives every failed apply.
	if got := g.Impact("dyn", AllIndirect()); got != 1 {
		t.Errorf("original graph damaged by failed applies: I(dyn) = %d", got)
	}
}

func TestApplyEmptyDeltaReturnsReceiver(t *testing.T) {
	g := twoSiteGraph()
	ng, stats, err := g.Apply(Delta{})
	if err != nil || ng != g || stats.Ops != 0 {
		t.Fatalf("empty delta: ng == g %v, stats %+v, err %v", ng == g, stats, err)
	}
}

func TestApplySiteAddRemoveRoundtrip(t *testing.T) {
	g := twoSiteGraph()
	g.Metrics().SetStrategy(StrategyBatch)
	g.Metrics().Counts(AllIndirect())
	add := Delta{Ops: []Op{{Kind: OpSiteAdd, Site: &Site{
		Name: "c.com", Rank: 3,
		Deps: map[Service]Dep{DNS: {Class: ClassSingleThird, Providers: []string{"dyn"}}},
	}}}}
	g2, _, err := g.Apply(add)
	if err != nil {
		t.Fatal(err)
	}
	if got := g2.Impact("dyn", AllIndirect()); got != 2 {
		t.Fatalf("after add I(dyn) = %d, want 2", got)
	}
	g3, _, err := g2.Apply(Delta{Ops: []Op{{Kind: OpSiteRemove, Name: "c.com"}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g3.Impact("dyn", AllIndirect()); got != 1 {
		t.Fatalf("after remove I(dyn) = %d, want 1", got)
	}
	if g3.Site("c.com") != nil || len(g3.Sites) != 2 {
		t.Error("removed site still present")
	}
}

func TestDeltaJSONRoundtrip(t *testing.T) {
	d := Delta{Ops: []Op{
		{Kind: OpSwap, Name: "a.com", Service: DNS, From: "dyn", To: "ns1"},
		{Kind: OpSiteDep, Name: "b.com", Service: CDN, Dep: Dep{Class: ClassMultiThird, Providers: []string{"cdn1", "cdn2"}}},
		{Kind: OpSiteDep, Name: "b.com", Service: CA}, // zero Dep: delete
		{Kind: OpSiteAdd, Site: &Site{
			Name: "c.com", Rank: 3,
			Deps:         map[Service]Dep{DNS: {Class: ClassSingleThird, Providers: []string{"dyn"}}},
			PrivateInfra: map[Service][]string{CDN: {"c-cdn.com"}},
		}},
		{Kind: OpProviderSet, Provider: &Provider{Name: "cdn1", Service: CDN,
			Deps: map[Service]Dep{DNS: {Class: ClassSingleThird, Providers: []string{"ns1"}}}}},
		{Kind: OpProviderRemove, Name: "cdn2"},
		{Kind: OpSiteRemove, Name: "a.com"},
	}}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDelta(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("roundtrip parse: %v\n%s", err, b)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("roundtrip mismatch:\nin:  %+v\nout: %+v\nwire: %s", d, back, b)
	}
}

func TestParseDeltaRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"unknown field", `{"ops":[{"op":"swap","name":"a","service":"dns","form":"x","to":"y"}]}`, "unknown field"},
		{"unknown op", `{"ops":[{"op":"merge"}]}`, "unknown op"},
		{"unknown service", `{"ops":[{"op":"swap","name":"a","service":"smtp","from":"x","to":"y"}]}`, "unknown service"},
		{"unknown class", `{"ops":[{"op":"site-dep","name":"a","service":"dns","dep":{"class":"quad-third"}}]}`, "unknown dependency class"},
		{"trailing data", `{"ops":[]}{"ops":[]}`, "trailing data"},
		{"truncated", `{"ops":[{"op":"swap"`, "decode delta"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDelta(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}
