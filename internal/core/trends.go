package core

// Evolution analysis: site-level transition tables between two snapshots
// (the paper's Tables 3–5) and provider-level transitions (Tables 7–9).

// TrendRow is one band column of a website-trend table, in percent of the
// band's comparison population.
type TrendRow struct {
	Label string
	// DNS/CDN mode transitions.
	PvtToSingle   float64
	SingleToPvt   float64
	RedToNoRed    float64
	NoRedToRed    float64
	CriticalDelta float64
}

// SiteClasses maps site name → measured class for one service in one
// snapshot; sites absent from the map did not consume the service.
type SiteClasses map[string]DepClass

// ModeTrends computes the Table 3/4-style per-band transition rates between
// two snapshots. ranks maps site → 2016 rank (the comparison uses the 2016
// list per §3); scale is the list length. Only sites present and
// characterized in both snapshots count.
func ModeTrends(old, new SiteClasses, ranks map[string]int, scale int) [4]TrendRow {
	labels := bandLabels(scale)
	var rows [4]TrendRow
	var totals [4]int
	type delta struct {
		pvtToSingle, singleToPvt, redToNoRed, noRedToRed, critOld, critNew [4]int
	}
	var d delta
	for site, oc := range old {
		nc, ok := new[site]
		if !ok || oc == ClassUnknown || nc == ClassUnknown || oc == ClassNone || nc == ClassNone {
			continue
		}
		rank, ok := ranks[site]
		if !ok {
			continue
		}
		b := bandOf(rank, scale)
		for i := b; i < 4; i++ {
			totals[i]++
			if oc == ClassPrivate && nc == ClassSingleThird {
				d.pvtToSingle[i]++
			}
			if oc == ClassSingleThird && nc == ClassPrivate {
				d.singleToPvt[i]++
			}
			if oc.Redundant() && nc == ClassSingleThird {
				d.redToNoRed[i]++
			}
			if oc == ClassSingleThird && nc.Redundant() {
				d.noRedToRed[i]++
			}
			if oc.Critical() {
				d.critOld[i]++
			}
			if nc.Critical() {
				d.critNew[i]++
			}
		}
	}
	for i := range rows {
		rows[i].Label = labels[i]
		if totals[i] == 0 {
			continue
		}
		f := 100.0 / float64(totals[i])
		rows[i].PvtToSingle = float64(d.pvtToSingle[i]) * f
		rows[i].SingleToPvt = float64(d.singleToPvt[i]) * f
		rows[i].RedToNoRed = float64(d.redToNoRed[i]) * f
		rows[i].NoRedToRed = float64(d.noRedToRed[i]) * f
		rows[i].CriticalDelta = float64(d.critNew[i]-d.critOld[i]) * f
	}
	return rows
}

// StaplingTrendRow is one band of the Table 5 stapling-transition table.
type StaplingTrendRow struct {
	Label         string
	StapleToNo    float64
	NoToStaple    float64
	CriticalDelta float64
}

// StaplingTrends computes Table 5: transitions among sites supporting HTTPS
// in both snapshots, in percent. stapledOld/New report stapling; membership
// in the maps means the site supported HTTPS in that snapshot.
func StaplingTrends(stapledOld, stapledNew map[string]bool, ranks map[string]int, scale int) [4]StaplingTrendRow {
	labels := bandLabels(scale)
	var rows [4]StaplingTrendRow
	var totals, toNo, toYes [4]int
	for site, so := range stapledOld {
		sn, ok := stapledNew[site]
		if !ok {
			continue
		}
		rank, ok := ranks[site]
		if !ok {
			continue
		}
		b := bandOf(rank, scale)
		for i := b; i < 4; i++ {
			totals[i]++
			if so && !sn {
				toNo[i]++
			}
			if !so && sn {
				toYes[i]++
			}
		}
	}
	for i := range rows {
		rows[i].Label = labels[i]
		if totals[i] == 0 {
			continue
		}
		f := 100.0 / float64(totals[i])
		rows[i].StapleToNo = float64(toNo[i]) * f
		rows[i].NoToStaple = float64(toYes[i]) * f
		// Losing the staple makes a site critical; gaining it removes the
		// criticality (for third-party-CA sites).
		rows[i].CriticalDelta = float64(toNo[i]-toYes[i]) * f
	}
	return rows
}

// ProviderTrend tallies the Tables 7–9 provider-level transitions between
// snapshots for one dependency type (e.g. CA→DNS).
type ProviderTrend struct {
	PvtToSingle   int
	SingleToPvt   int
	RedToNoRed    int
	NoRedToRed    int
	NoneToThird   int
	ThirdToNone   int
	CriticalDelta int
	Total         int
}

// ProviderTrends compares provider dependency classes across snapshots.
// Only providers present in both maps count.
func ProviderTrends(old, new map[string]DepClass) ProviderTrend {
	var t ProviderTrend
	for name, oc := range old {
		nc, ok := new[name]
		if !ok {
			continue
		}
		t.Total++
		if oc == ClassPrivate && nc == ClassSingleThird {
			t.PvtToSingle++
		}
		if oc == ClassSingleThird && nc == ClassPrivate {
			t.SingleToPvt++
		}
		if oc.Redundant() && nc == ClassSingleThird {
			t.RedToNoRed++
		}
		if oc == ClassSingleThird && nc.Redundant() {
			t.NoRedToRed++
		}
		if oc == ClassNone && nc.UsesThird() {
			t.NoneToThird++
		}
		if oc.UsesThird() && nc == ClassNone {
			t.ThirdToNone++
		}
		if nc.Critical() {
			t.CriticalDelta++
		}
		if oc.Critical() {
			t.CriticalDelta--
		}
	}
	return t
}
