package core_test

import (
	"fmt"

	"depscope/internal/core"
)

// ExampleGraph_Impact reconstructs the Mirai-Dyn incident chain of the
// paper's §2: twitter used Dyn directly, pinterest fell through Fastly.
func ExampleGraph_Impact() {
	sites := []*core.Site{
		{Name: "twitter.com", Rank: 1, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"Dyn"}},
		}},
		{Name: "pinterest.com", Rank: 2, Deps: map[core.Service]core.Dep{
			core.CDN: {Class: core.ClassSingleThird, Providers: []string{"Fastly"}},
		}},
		{Name: "spotify.com", Rank: 3, Deps: map[core.Service]core.Dep{
			// Redundant: Dyn plus a private deployment.
			core.DNS: {Class: core.ClassPrivatePlusThird, Providers: []string{"Dyn"}},
		}},
	}
	providers := []*core.Provider{
		{Name: "Fastly", Service: core.CDN, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"Dyn"}},
		}},
	}
	g := core.NewGraph(sites, providers)

	fmt.Println("direct impact:    ", g.Impact("Dyn", core.DirectOnly()))
	fmt.Println("transitive impact:", g.Impact("Dyn", core.AllIndirect()))
	fmt.Println("concentration:    ", g.Concentration("Dyn", core.AllIndirect()))
	// Output:
	// direct impact:     1
	// transitive impact: 2
	// concentration:     3
}

// ExampleGraph_RobustnessOf computes the §8.3 defense metric for a site
// with one safe and one critical service.
func ExampleGraph_RobustnessOf() {
	g := core.NewGraph([]*core.Site{
		{Name: "shop.example", Rank: 1, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassMultiThird, Providers: []string{"A", "B"}},
			core.CDN: {Class: core.ClassSingleThird, Providers: []string{"C"}},
		}},
	}, nil)
	r, _ := g.RobustnessOf("shop.example")
	fmt.Printf("score %.1f, critical providers %v\n", r.Score, r.CriticalProviders)
	// Output:
	// score 0.5, critical providers [C]
}

// ExampleGraph_MitigationPlan asks the constructive question: which sites
// should add a second provider to shrink aggregate impact the most?
func ExampleGraph_MitigationPlan() {
	g := core.NewGraph([]*core.Site{
		{Name: "twitter.com", Rank: 1, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"Dyn"}},
		}},
		{Name: "pinterest.com", Rank: 2, Deps: map[core.Service]core.Dep{
			core.CDN: {Class: core.ClassSingleThird, Providers: []string{"Fastly"}},
		}},
	}, []*core.Provider{
		{Name: "Fastly", Service: core.CDN, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"Dyn"}},
		}},
	})
	plan := g.MitigationPlan(1, core.AllIndirect())
	o := plan.Options[0]
	fmt.Printf("add a second %s to %s: impact %d -> %d\n",
		o.Service, o.Site, plan.Before, plan.After)
	// Output: add a second CDN to pinterest.com: impact 3 -> 1
}
