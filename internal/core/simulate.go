package core

import "sort"

// This file implements the what-if outage simulator underneath
// internal/incident. Where the metrics engine answers "how many sites does
// provider p ultimately serve?" (C_p, I_p), the simulator answers the
// question the Mirai-Dyn incident poses: given a *set* of failed providers,
// possibly partially degraded, what state does every website end up in?
//
// The simulator is built from the metrics engine's precomputed view — the
// provider id universe and the reverse dependency edges that feed its SCC
// condensation — so both answer over the identical structure. That makes the
// headline consistency property hold by construction: with one failed
// provider at full severity, the set of down sites equals I_p membership and
// the set of affected (down or degraded) sites equals C_p membership. The
// property tests in simulate_test.go and internal/incident assert exactly
// that.
//
// Failure propagates along a worklist over the reverse edges, honoring the
// same TraversalOpts service filter as the C_p/I_p recursion: a provider is
// woken only through edges whose dependent's service the traversal allows.
// Provider and site health follow the paper's redundancy semantics:
//
//   - a critical arrangement (single third party, or the actor's own private
//     infrastructure node) is as unhealthy as its unhealthiest provider:
//     down provider → service lost, degraded provider → service degraded;
//   - a redundant arrangement (multi-third, private+third) degrades when any
//     of its providers is unhealthy but never loses the service — the paper
//     treats redundancy as absolute. The opt-in JointFailures mode (after
//     Kashaf et al.'s "Fragile Web") lets a multi-third arrangement fail
//     when ALL of its third parties are down; private+third always keeps
//     the private fallback.
//
// A site is down when any consumed service is lost, degraded when any is
// impaired, unaffected otherwise. Its resilience score generalizes the §8.3
// defense metric to outage states: 1 minus the mean penalty over consumed
// services (lost = 1, degraded = ½, healthy = 0).

// ProviderState is a provider's health during a simulated outage. Order
// matters: states only ever escalate (up → degraded → down).
type ProviderState uint8

// Provider health states.
const (
	ProviderUp ProviderState = iota
	ProviderDegraded
	ProviderDown
)

// String names the state.
func (s ProviderState) String() string {
	switch s {
	case ProviderUp:
		return "up"
	case ProviderDegraded:
		return "degraded"
	case ProviderDown:
		return "down"
	}
	return "invalid"
}

// SiteOutcome classifies one website at the end of a simulated outage.
type SiteOutcome uint8

// Site outcomes, in escalation order.
const (
	// SiteUnaffected: no consumed service touched by the outage.
	SiteUnaffected SiteOutcome = iota
	// SiteDegraded: some consumed service impaired (a redundant arrangement
	// lost capacity, or a partially degraded provider serves it) but none
	// fully lost.
	SiteDegraded
	// SiteDown: at least one consumed service fully lost — the outage
	// reaches the site through a critical dependency chain.
	SiteDown
)

// String names the outcome.
func (o SiteOutcome) String() string {
	switch o {
	case SiteUnaffected:
		return "unaffected"
	case SiteDegraded:
		return "degraded"
	case SiteDown:
		return "down"
	}
	return "invalid"
}

// OutageOpts tunes one simulation run.
type OutageOpts struct {
	// Severity in (0,1) models a partial outage: targets only degrade
	// instead of going dark, so nothing downstream can do worse than
	// degrade. 0 or 1 both mean a full outage.
	Severity float64
	// JointFailures enables redundancy exhaustion, beyond the paper's
	// semantics: a multi-third arrangement whose providers are all down
	// loses the service. Off, redundancy is absolute (the paper's model,
	// and the mode whose single-provider runs reproduce I_p exactly).
	JointFailures bool
}

// OutageResult is the full outcome of one simulation run.
type OutageResult struct {
	// Outcomes is indexed like Graph.Sites.
	Outcomes []SiteOutcome
	// Resilience per site: 1 - mean penalty over consumed services
	// (lost = 1, degraded = 0.5). A site consuming nothing scores 1.
	Resilience []float64
	// Direct marks sites with a dependency arrangement listing a target —
	// the direct victims, versus collateral reached through chains.
	Direct []bool

	Down, Degraded, Unaffected int

	// LostByService / DegradedByService count sites whose arrangement for
	// that service was lost (resp. impaired but not lost).
	LostByService     map[Service]int
	DegradedByService map[Service]int

	// DownProviders / DegradedProviders list every provider in that state
	// after the cascade, targets included, sorted.
	DownProviders     []string
	DegradedProviders []string
}

// simArr is one actor's dependency arrangement for one service, resolved to
// provider ids: the unit the cascade and the site sweep evaluate.
type simArr struct {
	svc     Service
	class   DepClass
	private bool // a PrivateInfra pseudo-arrangement: critical by construction
	provs   []int32
}

// OutageSim is the reusable simulator for one (Graph, TraversalOpts) pair.
// Construction resolves every dependency arrangement to metric-engine ids
// once; each Run is then pure integer work. Obtain one via Graph.OutageSim.
// An OutageSim is safe for concurrent Runs.
type OutageSim struct {
	g   *Graph
	e   *MetricsEngine
	via uint8

	provArrs [][]simArr // per provider id: the provider's own arrangements
	siteArrs [][]simArr // per site index: third-party + private arrangements
	consumed []int      // per site: number of consumed services (resilience denominator)
}

// OutageSim returns the graph's shared simulator for opts, building it on
// first use. Like metrics-engine entries, simulators are cached per
// traversal key — the graph is immutable after NewGraph, so entries never
// invalidate.
func (g *Graph) OutageSim(opts TraversalOpts) *OutageSim {
	key := viaBits(opts)
	g.simMu.Lock()
	defer g.simMu.Unlock()
	if g.sims == nil {
		g.sims = make(map[uint8]*OutageSim)
	}
	s, ok := g.sims[key]
	if !ok {
		s = newOutageSim(g, key)
		g.sims[key] = s
	}
	return s
}

func newOutageSim(g *Graph, via uint8) *OutageSim {
	// Reuse the metrics engine's provider universe and reverse edges; the
	// engine is built lazily exactly once per graph.
	e := g.Metrics()
	e.initOnce.Do(e.init)
	s := &OutageSim{g: g, e: e, via: via}

	idsOf := func(names []string) []int32 {
		out := make([]int32, 0, len(names))
		for _, n := range names {
			if id, ok := e.ids[n]; ok {
				out = append(out, int32(id))
			}
		}
		return out
	}

	s.provArrs = make([][]simArr, len(e.names))
	for name, p := range g.Providers {
		id := e.ids[name]
		for svc, d := range p.Deps {
			if !d.Class.UsesThird() {
				continue
			}
			s.provArrs[id] = append(s.provArrs[id], simArr{svc: svc, class: d.Class, provs: idsOf(d.Providers)})
		}
	}

	s.siteArrs = make([][]simArr, len(g.Sites))
	s.consumed = make([]int, len(g.Sites))
	for i, site := range g.Sites {
		seen := make(map[Service]bool, len(site.Deps))
		for svc, d := range site.Deps {
			if d.Class == ClassNone || d.Class == ClassUnknown {
				continue
			}
			seen[svc] = true
			if d.Class.UsesThird() {
				s.siteArrs[i] = append(s.siteArrs[i], simArr{svc: svc, class: d.Class, provs: idsOf(d.Providers)})
			}
		}
		for svc, names := range site.PrivateInfra {
			if len(names) == 0 {
				continue
			}
			seen[svc] = true
			s.siteArrs[i] = append(s.siteArrs[i], simArr{svc: svc, class: ClassPrivate, private: true, provs: idsOf(names)})
		}
		// Chain edges: one critical pseudo-arrangement per distinct vendor,
		// mirroring indexChainEdges — a down vendor takes the site down, no
		// redundancy. Included under every traversal key (gather unions a
		// provider's chain users unconditionally too); the via filter only
		// decides whether the cascade may *continue* through vendor nodes.
		if len(site.Chains) > 0 {
			seen[Resource] = true
			chainSeen := make(map[string]bool, len(site.Chains))
			for _, ce := range site.Chains {
				if chainSeen[ce.Provider] {
					continue
				}
				chainSeen[ce.Provider] = true
				s.siteArrs[i] = append(s.siteArrs[i], simArr{svc: Resource, class: ClassSingleThird, provs: idsOf([]string{ce.Provider})})
			}
		}
		s.consumed[i] = len(seen)
	}
	return s
}

// HasProvider reports whether name exists in the simulator's provider
// universe (any name the metrics engine can score, including leaf DNS
// providers and private-infrastructure nodes).
func (s *OutageSim) HasProvider(name string) bool {
	_, ok := s.e.ids[name]
	return ok
}

// arrState evaluates one arrangement against the current provider states.
func arrState(a simArr, st []ProviderState, joint bool) ProviderState {
	worst, all := ProviderUp, len(a.provs) > 0
	for _, p := range a.provs {
		ps := st[p]
		if ps > worst {
			worst = ps
		}
		if ps != ProviderDown {
			all = false
		}
	}
	if worst == ProviderUp {
		return ProviderUp
	}
	switch {
	case a.private || a.class.Critical():
		// Critical arrangement: as unhealthy as its unhealthiest provider.
		return worst
	case a.class == ClassMultiThird && joint && all:
		// Redundancy exhausted: every third party of the arrangement is down.
		return ProviderDown
	default:
		// Redundant arrangement: impaired, never lost.
		return ProviderDegraded
	}
}

// providerState evaluates a provider node's own health from its
// arrangements: losing any consumed service takes the provider down (a CDN
// whose sole DNS provider is dark cannot serve), an impaired service
// degrades it.
func (s *OutageSim) providerState(id int32, st []ProviderState, joint bool) ProviderState {
	worst := ProviderUp
	for _, a := range s.provArrs[id] {
		if as := arrState(a, st, joint); as > worst {
			worst = as
			if worst == ProviderDown {
				break
			}
		}
	}
	return worst
}

// Run simulates the outage of targets under o and classifies every site.
// Target names absent from the graph are ignored (they exist nowhere, so
// nothing depends on them); callers wanting strict validation check
// HasProvider first.
func (s *OutageSim) Run(targets []string, o OutageOpts) *OutageResult {
	n := len(s.e.names)
	state := make([]ProviderState, n)
	targetState := ProviderDown
	if o.Severity > 0 && o.Severity < 1 {
		targetState = ProviderDegraded
	}
	isTarget := make(map[int32]bool, len(targets))
	var queue []int32
	for _, t := range targets {
		id, ok := s.e.ids[t]
		if !ok {
			continue
		}
		isTarget[int32(id)] = true
		if state[id] < targetState {
			state[id] = targetState
			queue = append(queue, int32(id))
		}
	}

	// Worklist cascade over the metrics engine's reverse edges. States only
	// escalate and each escalation re-enqueues, so the fixpoint handles
	// provider cycles and converges after at most 2n wakes.
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ed := range s.e.edges[p] {
			// The same service filter the C_p/I_p recursion applies when
			// deciding whether to traverse into a dependent provider.
			if s.via&(1<<uint(ed.svc)) == 0 {
				continue
			}
			k := ed.to
			if state[k] == ProviderDown {
				continue
			}
			if ns := s.providerState(k, state, o.JointFailures); ns > state[k] {
				state[k] = ns
				queue = append(queue, k)
			}
		}
	}

	res := &OutageResult{
		Outcomes:          make([]SiteOutcome, len(s.g.Sites)),
		Resilience:        make([]float64, len(s.g.Sites)),
		Direct:            make([]bool, len(s.g.Sites)),
		LostByService:     make(map[Service]int),
		DegradedByService: make(map[Service]int),
	}
	for i := range s.g.Sites {
		// Per-service status: the worst arrangement state of each consumed
		// service decides whether that service is lost or just impaired.
		var svcState [numServices]ProviderState
		var svcSeen [numServices]bool
		direct := false
		for _, a := range s.siteArrs[i] {
			as := arrState(a, state, o.JointFailures)
			if int(a.svc) < len(svcState) {
				svcSeen[a.svc] = true
				if as > svcState[a.svc] {
					svcState[a.svc] = as
				}
			}
			if !direct {
				for _, p := range a.provs {
					if isTarget[p] {
						direct = true
						break
					}
				}
			}
		}
		res.Direct[i] = direct
		outcome := SiteUnaffected
		penalty := 0.0
		for svc := range svcState {
			if !svcSeen[svc] {
				continue
			}
			switch svcState[svc] {
			case ProviderDown:
				res.LostByService[Service(svc)]++
				penalty += 1
				outcome = SiteDown
			case ProviderDegraded:
				res.DegradedByService[Service(svc)]++
				penalty += 0.5
				if outcome < SiteDegraded {
					outcome = SiteDegraded
				}
			}
		}
		res.Outcomes[i] = outcome
		if s.consumed[i] > 0 {
			res.Resilience[i] = 1 - penalty/float64(s.consumed[i])
		} else {
			res.Resilience[i] = 1
		}
		switch outcome {
		case SiteDown:
			res.Down++
		case SiteDegraded:
			res.Degraded++
		default:
			res.Unaffected++
		}
	}

	for id, st := range state {
		switch st {
		case ProviderDown:
			res.DownProviders = append(res.DownProviders, s.e.names[id])
		case ProviderDegraded:
			res.DegradedProviders = append(res.DegradedProviders, s.e.names[id])
		}
	}
	sort.Strings(res.DownProviders)
	sort.Strings(res.DegradedProviders)
	return res
}

// numServices sizes the per-site service-status scratch arrays; Service
// values are the canonical 0..len(AllServices)-1 range.
const numServices = 4

// ProviderID resolves a provider name to its simulator id — the currency of
// RunCounts target lists. Sampling loops resolve names once up front and
// then work in pure integers.
func (s *OutageSim) ProviderID(name string) (int32, bool) {
	id, ok := s.e.ids[name]
	return int32(id), ok
}

// ProviderNameOf is the inverse of ProviderID.
func (s *OutageSim) ProviderNameOf(id int32) string {
	return s.e.names[id]
}

// SimScratch holds the reusable per-run state of RunCounts so a sampling
// loop running thousands of simulations allocates nothing after the first.
// A SimScratch must not be shared between concurrent RunCounts calls; give
// each worker its own.
type SimScratch struct {
	state []ProviderState
	queue []int32
}

// RunCounts simulates the outage of the given provider ids under o and
// returns only the aggregate outcome counts. It is the Monte-Carlo inner
// loop: the same cascade and site classification as Run, minus every
// allocation Run spends on the full report (outcome slices, resilience
// scores, provider name lists). Unknown ids are the caller's bug; obtain
// ids via ProviderID.
func (s *OutageSim) RunCounts(targets []int32, o OutageOpts, sc *SimScratch) (down, degraded int) {
	n := len(s.e.names)
	if cap(sc.state) < n {
		sc.state = make([]ProviderState, n)
	}
	state := sc.state[:n]
	for i := range state {
		state[i] = ProviderUp
	}
	targetState := ProviderDown
	if o.Severity > 0 && o.Severity < 1 {
		targetState = ProviderDegraded
	}
	queue := sc.queue[:0]
	for _, id := range targets {
		if state[id] < targetState {
			state[id] = targetState
			queue = append(queue, id)
		}
	}
	if len(queue) == 0 {
		sc.queue = queue
		return 0, 0
	}

	// The same worklist fixpoint as Run: states only escalate, so the
	// cascade converges through provider cycles.
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ed := range s.e.edges[p] {
			if s.via&(1<<uint(ed.svc)) == 0 {
				continue
			}
			k := ed.to
			if state[k] == ProviderDown {
				continue
			}
			if ns := s.providerState(k, state, o.JointFailures); ns > state[k] {
				state[k] = ns
				queue = append(queue, k)
			}
		}
	}
	sc.queue = queue

	for i := range s.g.Sites {
		worst := ProviderUp
		for _, a := range s.siteArrs[i] {
			if as := arrState(a, state, o.JointFailures); as > worst {
				worst = as
				if worst == ProviderDown {
					break
				}
			}
		}
		switch worst {
		case ProviderDown:
			down++
		case ProviderDegraded:
			degraded++
		}
	}
	return down, degraded
}

// ProviderNames returns every provider name the metrics engine (and thus
// the simulator) knows: declared providers, names sites use as third
// parties, private-infrastructure nodes and depended-upon names. Sorted.
func (g *Graph) ProviderNames() []string {
	e := g.Metrics()
	e.initOnce.Do(e.init)
	out := append([]string(nil), e.names...)
	sort.Strings(out)
	return out
}

// ProvidersOfService returns the third-party provider names of svc — the
// same candidate set TopProviders ranks: names sites use for svc plus
// declared provider nodes of svc, excluding pure private-infrastructure
// nodes. Sorted.
func (g *Graph) ProvidersOfService(svc Service) []string {
	seen := make(map[string]bool)
	collect := func(pname string) {
		if seen[pname] {
			return
		}
		seen[pname] = true
	}
	for pname := range g.usersOf[svc] {
		if p, ok := g.Providers[pname]; ok && p.Service != svc {
			continue
		}
		collect(pname)
	}
	for pname, p := range g.Providers {
		if p.Service != svc {
			continue
		}
		if len(g.privateUsersOf[pname]) > 0 && !g.hasPublicUsers(pname) {
			continue
		}
		collect(pname)
	}
	out := make([]string, 0, len(seen))
	for pname := range seen {
		out = append(out, pname)
	}
	sort.Strings(out)
	return out
}
