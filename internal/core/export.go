package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// DOT export of the dependency graph (the paper's Figure 5 visualisations
// are force layouts of exactly this structure). To keep renderings usable,
// WriteDOT emits the provider-to-provider skeleton plus the site→provider
// edges of at most maxSites sites (0 = all).

// WriteDOT writes a Graphviz digraph of the dependency graph. Sites render
// as boxes, providers as ellipses colored per service; critical edges are
// solid, redundant edges dashed.
func (g *Graph) WriteDOT(w io.Writer, maxSites int) error {
	var b strings.Builder
	b.WriteString("digraph dependencies {\n")
	b.WriteString("  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n")

	colors := map[Service]string{DNS: "#1f77b4", CDN: "#2ca02c", CA: "#d62728"}

	providers := make([]string, 0, len(g.Providers))
	for name := range g.Providers {
		providers = append(providers, name)
	}
	sort.Strings(providers)
	seen := map[string]bool{}
	declProvider := func(name string, svc Service) {
		if seen[name] {
			return
		}
		seen[name] = true
		fmt.Fprintf(&b, "  %q [shape=ellipse color=%q label=\"%s\\n(%s)\"];\n",
			name, colors[svc], name, svc)
	}
	for _, name := range providers {
		declProvider(name, g.Providers[name].Service)
	}
	// Leaf providers referenced only by edges (e.g. DNS providers).
	for svc, users := range g.usersOf {
		for name := range users {
			declProvider(name, svc)
		}
	}

	edge := func(from, to string, critical bool, svc Service) {
		style := "dashed"
		if critical {
			style = "solid"
		}
		fmt.Fprintf(&b, "  %q -> %q [style=%s color=%q];\n", from, to, style, colors[svc])
	}

	n := 0
	for _, s := range g.Sites {
		interesting := false
		for _, d := range s.Deps {
			if d.Class.UsesThird() {
				interesting = true
			}
		}
		if !interesting {
			continue
		}
		if maxSites > 0 && n >= maxSites {
			break
		}
		n++
		fmt.Fprintf(&b, "  %q [shape=box];\n", s.Name)
		for svc, d := range s.Deps {
			if !d.Class.UsesThird() {
				continue
			}
			for _, p := range d.Providers {
				edge(s.Name, p, d.Class.Critical(), svc)
			}
		}
	}
	for _, name := range providers {
		p := g.Providers[name]
		for svc, d := range p.Deps {
			if !d.Class.UsesThird() {
				continue
			}
			for _, dep := range d.Providers {
				declProvider(dep, svc)
				edge(p.Name, dep, d.Class.Critical(), svc)
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Robustness is the §8.3 "defense metric": a summary of how exposed one
// website is to third-party failures.
type Robustness struct {
	Site string
	// Score in [0,1]: 1 = no critical dependency anywhere in the transitive
	// closure, 0 = critically dependent at every consumed service.
	Score float64
	// CriticalProviders lists every provider whose single failure denies
	// the site a service (transitively).
	CriticalProviders []string
	// RedundantServices / CriticalServices partition the consumed services.
	RedundantServices []Service
	CriticalServices  []Service
	// SharedFate is the largest transitive impact among the site's critical
	// providers: how many other sites fall together with this one.
	SharedFate int
}

// RobustnessOf computes the defense metric for one site. Each consumed
// service contributes equally; a service is safe when the site is private
// or redundant AND none of its (transitively expanded) critical providers
// fail together — i.e. the critical-provider set of that service is empty.
func (g *Graph) RobustnessOf(site string) (Robustness, error) {
	s := g.Site(site)
	if s == nil {
		return Robustness{}, fmt.Errorf("core: unknown site %q", site)
	}
	out := Robustness{Site: site}

	consumed := 0
	safe := 0
	criticalSet := map[string]bool{}
	for _, svc := range Services {
		d, ok := s.Deps[svc]
		if !ok || d.Class == ClassNone || d.Class == ClassUnknown {
			continue
		}
		consumed++
		svcCritical := map[string]bool{}
		if d.Class.Critical() {
			for _, p := range d.Providers {
				g.expandCritical(p, true, svcCritical, map[string]bool{})
			}
		}
		// Private infrastructure with its own critical chain also pins the
		// service.
		for _, p := range s.PrivateInfra[svc] {
			if prov, ok := g.Providers[p]; ok {
				for _, pd := range prov.Deps {
					if pd.Class.Critical() {
						for _, dep := range pd.Providers {
							g.expandCritical(dep, true, svcCritical, map[string]bool{})
						}
					}
				}
			}
		}
		if len(svcCritical) == 0 {
			safe++
			out.RedundantServices = append(out.RedundantServices, svc)
		} else {
			out.CriticalServices = append(out.CriticalServices, svc)
			for p := range svcCritical {
				criticalSet[p] = true
			}
		}
	}
	if consumed > 0 {
		out.Score = float64(safe) / float64(consumed)
	} else {
		out.Score = 1
	}
	for p := range criticalSet {
		out.CriticalProviders = append(out.CriticalProviders, p)
	}
	sort.Strings(out.CriticalProviders)
	for _, p := range out.CriticalProviders {
		if n := g.Impact(p, AllIndirect()); n > out.SharedFate {
			out.SharedFate = n
		}
	}
	return out, nil
}

// RobustnessDistribution buckets all sites by score (0, (0,0.5], (0.5,1),
// 1) — the fleet-level view a "neutral audit service" (§8.2) would expose.
type RobustnessDistribution struct {
	Zero, Low, High, Full int
}

// RobustnessAll computes the distribution across all sites.
func (g *Graph) RobustnessAll() RobustnessDistribution {
	var d RobustnessDistribution
	for _, s := range g.Sites {
		r, err := g.RobustnessOf(s.Name)
		if err != nil {
			continue
		}
		switch {
		case r.Score == 0:
			d.Zero++
		case r.Score <= 0.5:
			d.Low++
		case r.Score < 1:
			d.High++
		default:
			d.Full++
		}
	}
	return d
}
