package core

import (
	"maps"
	"slices"
	"sort"
)

// This file carries a MetricsEngine across a graph delta. The batch engine's
// expensive artifacts — the provider universe, the per-name direct-user
// rows, the SCC condensation and the per-component dependent-site bitsets —
// are all keyed by structure a small delta barely touches, so instead of
// rebuilding them the new graph's engine patches copies:
//
//   - the universe and site-id space are append-only (removed names keep
//     their ids with empty rows), so retained bitsets stay comparable;
//   - direct-user rows are recomputed only for dirty names;
//   - for each cached traversal, only the components that can reach a dirty
//     name's component through the condensation (i.e. the SCCs/levels the
//     touched nodes feed) are re-unioned, in ascending (sinks-first)
//     component order, reusing every other component's published set.
//
// Structural deltas (provider-to-provider edge changes) invalidate the
// condensation and fall back to a fresh engine, as does a dirty set past
// deltaDirtyLimit — at that point a full init()+propagate is cheaper than
// patching, which is exactly what the fresh engine's first query runs.

// deltaDirtyLimit is the dirtiness threshold: once more than this share of
// the universe is dirty, ApplyDelta falls back to a from-scratch engine.
// A var so tests can force either path.
var deltaDirtyLimit = func(universe int) int { return universe / 2 }

// ApplyDelta derives the metrics engine for ng — a graph produced by
// applying a delta with effect eff to this engine's graph — reusing as much
// cached state as the delta leaves valid. It returns the new engine and the
// number of cached traversal entries carried over incrementally; zero means
// the new engine starts cold (still correct: its first query recomputes).
// The receiver keeps serving the old graph unchanged.
func (e *MetricsEngine) ApplyDelta(ng *Graph, eff *DeltaEffect) (*MetricsEngine, int) {
	ne := NewMetricsEngine(ng, 0)
	e.mu.Lock()
	ne.workers = e.workers
	ne.strategy = e.strategy
	entries := make(map[uint8]*metricsEntry, len(e.cache))
	for k, ent := range e.cache {
		if ent.ready.Load() {
			entries[k] = ent
		}
	}
	e.mu.Unlock()
	if eff.Structural || len(entries) == 0 {
		return ne, 0
	}

	// The universe carries forward append-only. Any name the delta touched
	// that the old engine never saw (a brand-new provider identity) gets a
	// fresh id; names that dropped out of the graph keep theirs with empty
	// rows and a zero count — harmless, and it keeps every retained array
	// index-stable.
	names, ids := e.names, e.ids
	var added []string
	for name := range eff.Dirty {
		if _, ok := ids[name]; !ok {
			added = append(added, name)
		}
	}
	if len(added) > 0 {
		sort.Strings(added)
		ids = maps.Clone(ids)
		names = slices.Clone(names)
		for _, name := range added {
			ids[name] = len(names)
			names = append(names, name)
		}
	}
	if len(eff.Dirty) > deltaDirtyLimit(len(names)) {
		return ne, 0
	}
	ne.names, ne.ids = names, ids
	ne.namesOnce.Do(func() {})

	dirtyIDs := make([]int, 0, len(eff.Dirty))
	for name := range eff.Dirty {
		dirtyIDs = append(dirtyIDs, ids[name])
	}
	sort.Ints(dirtyIDs)
	touchedIDs := make([]int, 0, len(eff.Touched))
	for name := range eff.Touched {
		touchedIDs = append(touchedIDs, ids[name])
	}
	sort.Ints(touchedIDs)

	if e.initDone.Load() {
		e.patchInit(ne, eff, touchedIDs)
	}

	carried := 0
	for key, ent := range entries {
		nent := e.patchEntry(ne, ent, key, eff, dirtyIDs)
		if nent == nil {
			continue
		}
		ne.cache[key] = nent
		carried++
	}
	return ne, carried
}

// patchInit carries the batch-layer init() state: stable site ids (extended
// for added sites), reverse edges (valid verbatim — the delta was not
// structural) and direct-user rows recomputed for touched names only: the
// wider dirty closure re-unions existing rows but never changes them.
func (e *MetricsEngine) patchInit(ne *MetricsEngine, eff *DeltaEffect, touchedIDs []int) {
	ne.siteID = e.siteID
	ne.nSiteIDs = e.nSiteIDs
	if len(eff.AddedSites) > 0 {
		ne.siteID = maps.Clone(e.siteID)
		for _, s := range eff.AddedSites {
			if _, ok := ne.siteID[s.Name]; !ok {
				ne.siteID[s.Name] = int32(ne.nSiteIDs)
				ne.nSiteIDs++
			}
		}
	}

	n := len(ne.names)
	ne.baseAll = growRows(e.baseAll, n)
	ne.baseCrit = growRows(e.baseCrit, n)
	ne.edges = growRows(e.edges, n)
	for _, u := range touchedIDs {
		ne.baseAll[u], ne.baseCrit[u] = siteBaseRows(ne.g, ne.names[u], ne.siteID)
	}
	ne.initOnce.Do(func() {})
	ne.initDone.Store(true)
}

// growRows clones a row slice's spine to n slots; rows stay shared.
func growRows[T any](in [][]T, n int) [][]T {
	out := make([][]T, n)
	copy(out, in)
	return out
}

// patchEntry carries one cached traversal result onto the new engine, or
// returns nil when the entry is better recomputed on demand.
func (e *MetricsEngine) patchEntry(ne *MetricsEngine, ent *metricsEntry, key uint8, eff *DeltaEffect, dirtyIDs []int) *metricsEntry {
	nent := &metricsEntry{}
	if ent.lazy.Load() {
		// Lazy entry: drop dirty memos, keep the rest. Dropped and
		// never-walked names recompute on first query against ng.
		ent.mu.Lock()
		nent.lconc = cloneWithout(ent.lconc, eff.Dirty)
		nent.limp = cloneWithout(ent.limp, eff.Dirty)
		ent.mu.Unlock()
		nent.lazy.Store(true)
		nent.once.Do(func() {})
		nent.ready.Store(true)
		return nent
	}
	if ent.stateConc != nil && ent.stateImp != nil && e.initDone.Load() {
		// Batch entry with retained propagation state: re-union only the
		// dirty components.
		var ok bool
		nent.conc, nent.stateConc, ok = ne.repropagate(ent.conc, ent.stateConc, false, dirtyIDs)
		if !ok {
			return nil
		}
		nent.imp, nent.stateImp, ok = ne.repropagate(ent.imp, ent.stateImp, true, dirtyIDs)
		if !ok {
			return nil
		}
		nent.once.Do(func() {})
		nent.ready.Store(true)
		return nent
	}
	// Complete maps without state (promoted from lazy): patch by reference
	// walks on the new graph — these entries only exist on small universes
	// where a walk is cheap.
	nent.conc = patchByWalk(ent.conc, ne, dirtyIDs, false, key)
	nent.imp = patchByWalk(ent.imp, ne, dirtyIDs, true, key)
	nent.once.Do(func() {})
	nent.ready.Store(true)
	return nent
}

func cloneWithout(in map[string]int, drop map[string]bool) map[string]int {
	out := make(map[string]int, len(in))
	for k, v := range in {
		if !drop[k] {
			out[k] = v
		}
	}
	return out
}

// patchByWalk clones a complete count map and recomputes dirty names with
// the reference recursive set walks.
func patchByWalk(in map[string]int, ne *MetricsEngine, dirtyIDs []int, critical bool, key uint8) map[string]int {
	opts := optsForBits(key)
	out := maps.Clone(in)
	if out == nil {
		out = make(map[string]int, len(dirtyIDs))
	}
	for _, u := range dirtyIDs {
		name := ne.names[u]
		if critical {
			out[name] = len(ne.g.ImpactSet(name, opts))
		} else {
			out[name] = len(ne.g.ConcentrationSet(name, opts))
		}
	}
	return out
}

// optsForBits reverses viaBits for the patch walks.
func optsForBits(key uint8) TraversalOpts {
	var opts TraversalOpts
	for _, svc := range AllServices {
		if key&(1<<uint(svc)) != 0 {
			opts.ViaProviders = append(opts.ViaProviders, svc)
		}
	}
	return opts
}

// repropagate patches one metric's retained propagation state for the new
// engine: dirty names map to dirty components, new names become isolated
// singleton components (nothing can depend on them — the delta was not
// structural), and dirty components are re-unioned in ascending component
// order so recomputed successors are always final before their
// predecessors read them. Untouched components keep their published sets.
func (ne *MetricsEngine) repropagate(oldMap map[string]int, st *propState, critical bool, dirtyIDs []int) (map[string]int, *propState, bool) {
	nOld := len(st.comp)
	n := len(ne.names)
	base := ne.baseAll
	if critical {
		base = ne.baseCrit
	}

	comp := make([]int32, n)
	copy(comp, st.comp)
	ncomp := len(st.members)
	members := growRows(st.members, ncomp+(n-nOld))
	succ := growRows(st.succ, ncomp+(n-nOld))
	hasBase := make([]bool, ncomp+(n-nOld))
	copy(hasBase, st.hasBase)
	sets := make([]bitset, ncomp+(n-nOld))
	copy(sets, st.sets)
	counts := make([]int, ncomp+(n-nOld))
	copy(counts, st.counts)

	dirtyComp := make(map[int32]bool, len(dirtyIDs))
	for _, u := range dirtyIDs {
		if u < nOld {
			dirtyComp[st.comp[u]] = true
			continue
		}
		c := int32(ncomp)
		ncomp++
		comp[u] = c
		members[c] = []int32{int32(u)}
		dirtyComp[c] = true
	}
	members = members[:ncomp]
	succ = succ[:ncomp]
	hasBase = hasBase[:ncomp]
	sets = sets[:ncomp]
	counts = counts[:ncomp]

	// Mark every component that can reach a dirty one through the
	// condensation (its set unions theirs). Successor ids are always
	// smaller, so one ascending sweep over all components settles
	// reachability transitively.
	for c := int32(0); c < int32(ncomp); c++ {
		if dirtyComp[c] {
			continue
		}
		for _, sc := range succ[c] {
			if dirtyComp[sc] {
				dirtyComp[c] = true
				break
			}
		}
	}
	if len(dirtyComp) > deltaDirtyLimit(ncomp) {
		return nil, nil, false
	}

	order := make([]int32, 0, len(dirtyComp))
	for c := range dirtyComp {
		order = append(order, c)
	}
	slices.Sort(order)
	for _, c := range order {
		hb := false
		for _, u := range members[c] {
			if len(base[u]) > 0 {
				hb = true
				break
			}
		}
		hasBase[c] = hb
		ss := succ[c]
		if !hb && len(ss) == 1 {
			sets[c] = sets[ss[0]]
			counts[c] = counts[ss[0]]
			continue
		}
		bs := newBitset(ne.nSiteIDs)
		for _, u := range members[c] {
			for _, id := range base[u] {
				bs.set(int(id))
			}
		}
		for _, sc := range ss {
			bs.unionWith(sets[sc])
		}
		sets[c] = bs
		counts[c] = bs.count()
	}

	out := maps.Clone(oldMap)
	if out == nil {
		out = make(map[string]int, n)
	}
	for c := range dirtyComp {
		for _, u := range members[c] {
			out[ne.names[u]] = counts[c]
		}
	}
	return out, &propState{
		comp:    comp,
		members: members,
		succ:    succ,
		hasBase: hasBase,
		sets:    sets,
		counts:  counts,
	}, true
}
