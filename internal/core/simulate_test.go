package core

import (
	"testing"
	"testing/quick"
)

// Property: with one target at full severity and default semantics, the
// simulator reproduces the §2.2 sets exactly — down sites equal ImpactSet
// membership and affected (down or degraded) sites equal ConcentrationSet
// membership, for every provider and traversal.
func TestPropertySimulateMatchesMetricSets(t *testing.T) {
	optsList := []TraversalOpts{DirectOnly(), AllIndirect(), {ViaProviders: []Service{CA}}}
	f := func(seed int64) bool {
		g := randomGraph(seed)
		for _, opts := range optsList {
			sim := g.OutageSim(opts)
			for _, name := range g.ProviderNames() {
				res := sim.Run([]string{name}, OutageOpts{})
				imp := g.ImpactSet(name, opts)
				conc := g.ConcentrationSet(name, opts)
				down, affected := 0, 0
				for i, s := range g.Sites {
					isDown := res.Outcomes[i] == SiteDown
					isAffected := res.Outcomes[i] != SiteUnaffected
					if isDown {
						down++
					}
					if isAffected {
						affected++
					}
					if isDown != imp[s.Name] {
						t.Logf("seed %d %v %s: site %s down=%v impact=%v",
							seed, opts.ViaProviders, name, s.Name, isDown, imp[s.Name])
						return false
					}
					if isAffected != conc[s.Name] {
						t.Logf("seed %d %v %s: site %s affected=%v concentration=%v",
							seed, opts.ViaProviders, name, s.Name, isAffected, conc[s.Name])
						return false
					}
				}
				if down != res.Down || affected != res.Down+res.Degraded {
					return false
				}
				if res.Down+res.Degraded+res.Unaffected != len(g.Sites) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a multi-target run's down set is the union of the single-target
// impact sets (default semantics make down-propagation per-provider), and
// resilience scores stay in [0,1] with unaffected sites at exactly 1.
func TestPropertySimulateMultiTargetUnion(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed)
		names := g.ProviderNames()
		if len(names) < 2 {
			return true
		}
		targets := []string{names[0], names[len(names)/2], names[len(names)-1]}
		sim := g.OutageSim(AllIndirect())
		res := sim.Run(targets, OutageOpts{})
		union := make(map[string]bool)
		for _, tgt := range targets {
			for s := range g.ImpactSet(tgt, AllIndirect()) {
				union[s] = true
			}
		}
		for i, s := range g.Sites {
			if (res.Outcomes[i] == SiteDown) != union[s.Name] {
				return false
			}
			if r := res.Resilience[i]; r < 0 || r > 1 {
				return false
			}
			if res.Outcomes[i] == SiteUnaffected && res.Resilience[i] != 1 {
				return false
			}
			if res.Outcomes[i] == SiteDown && res.Resilience[i] == 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// jointGraph is the redundancy-exhaustion fixture: s1 is redundantly on CDNs
// A and B, s2 is critically on CDN X which is itself redundantly on DNS
// providers dA and dB, and s3 keeps a private fallback next to A.
func jointGraph() *Graph {
	sites := []*Site{
		{Name: "s1", Rank: 1, Deps: map[Service]Dep{
			CDN: {Class: ClassMultiThird, Providers: []string{"A", "B"}},
		}},
		{Name: "s2", Rank: 2, Deps: map[Service]Dep{
			CDN: {Class: ClassSingleThird, Providers: []string{"X"}},
		}},
		{Name: "s3", Rank: 3, Deps: map[Service]Dep{
			CDN: {Class: ClassPrivatePlusThird, Providers: []string{"A"}},
		}},
	}
	providers := []*Provider{
		{Name: "A", Service: CDN, Deps: map[Service]Dep{}},
		{Name: "B", Service: CDN, Deps: map[Service]Dep{}},
		{Name: "X", Service: CDN, Deps: map[Service]Dep{
			DNS: {Class: ClassMultiThird, Providers: []string{"dA", "dB"}},
		}},
	}
	return NewGraph(sites, providers)
}

func outcomeOf(g *Graph, res *OutageResult, name string) SiteOutcome {
	for i, s := range g.Sites {
		if s.Name == name {
			return res.Outcomes[i]
		}
	}
	return SiteUnaffected
}

func TestSimulateJointFailures(t *testing.T) {
	g := jointGraph()
	sim := g.OutageSim(AllIndirect())

	// Default semantics: redundancy is absolute. Both of s1's CDNs down
	// still only degrades it.
	res := sim.Run([]string{"A", "B"}, OutageOpts{})
	if got := outcomeOf(g, res, "s1"); got != SiteDegraded {
		t.Errorf("default A+B: s1 = %v, want degraded", got)
	}

	// Joint failures: the multi-third arrangement is exhausted.
	res = sim.Run([]string{"A", "B"}, OutageOpts{JointFailures: true})
	if got := outcomeOf(g, res, "s1"); got != SiteDown {
		t.Errorf("joint A+B: s1 = %v, want down", got)
	}
	// The private+third site keeps its fallback even under joint failures.
	if got := outcomeOf(g, res, "s3"); got != SiteDegraded {
		t.Errorf("joint A+B: s3 = %v, want degraded", got)
	}
	// One of two down does not exhaust the arrangement.
	res = sim.Run([]string{"A"}, OutageOpts{JointFailures: true})
	if got := outcomeOf(g, res, "s1"); got != SiteDegraded {
		t.Errorf("joint A: s1 = %v, want degraded", got)
	}

	// Exhaustion cascades: both of X's DNS providers down takes X down
	// under joint semantics, and s2 with it; under default semantics X (and
	// s2) only degrade.
	res = sim.Run([]string{"dA", "dB"}, OutageOpts{JointFailures: true})
	if got := outcomeOf(g, res, "s2"); got != SiteDown {
		t.Errorf("joint dA+dB: s2 = %v, want down", got)
	}
	found := false
	for _, p := range res.DownProviders {
		if p == "X" {
			found = true
		}
	}
	if !found {
		t.Errorf("joint dA+dB: X not in down providers %v", res.DownProviders)
	}
	res = sim.Run([]string{"dA", "dB"}, OutageOpts{})
	if got := outcomeOf(g, res, "s2"); got != SiteDegraded {
		t.Errorf("default dA+dB: s2 = %v, want degraded", got)
	}
}

func TestSimulateSeverity(t *testing.T) {
	g := jointGraph()
	sim := g.OutageSim(AllIndirect())
	// A partial outage degrades, never kills: even the critically dependent
	// site survives in degraded state.
	res := sim.Run([]string{"X"}, OutageOpts{Severity: 0.4})
	if res.Down != 0 {
		t.Fatalf("severity 0.4: %d sites down, want 0", res.Down)
	}
	if got := outcomeOf(g, res, "s2"); got != SiteDegraded {
		t.Errorf("severity 0.4: s2 = %v, want degraded", got)
	}
	full := sim.Run([]string{"X"}, OutageOpts{Severity: 1})
	if got := outcomeOf(g, full, "s2"); got != SiteDown {
		t.Errorf("severity 1: s2 = %v, want down", got)
	}
	// Direct victims are flagged; collateral is not.
	if !full.Direct[1] {
		t.Errorf("s2 should be a direct victim of X")
	}
	if full.Direct[0] {
		t.Errorf("s1 is not a direct victim of X")
	}
}

// Regression: degenerate inputs — empty graphs and zero-site graphs — yield
// empty metric results and outcome-free simulations instead of allocating
// zero-width bitset views (or panicking).
func TestMetricsAndSimulateEmptyGraph(t *testing.T) {
	empty := NewGraph(nil, nil)
	if n := empty.Concentration("anything", AllIndirect()); n != 0 {
		t.Errorf("empty graph concentration = %d, want 0", n)
	}
	if n := empty.Impact("anything", AllIndirect()); n != 0 {
		t.Errorf("empty graph impact = %d, want 0", n)
	}
	conc, imp := empty.Metrics().Counts(AllIndirect())
	if len(conc) != 0 || len(imp) != 0 {
		t.Errorf("empty graph counts: %d conc, %d imp entries, want 0", len(conc), len(imp))
	}
	if res := empty.OutageSim(AllIndirect()).Run([]string{"anything"}, OutageOpts{}); len(res.Outcomes) != 0 || res.Down != 0 {
		t.Errorf("empty graph simulation produced outcomes: %+v", res)
	}

	// Providers but no sites: the provider universe is non-empty, every
	// count is still zero.
	noSites := NewGraph(nil, []*Provider{{
		Name: "X", Service: CDN,
		Deps: map[Service]Dep{DNS: {Class: ClassSingleThird, Providers: []string{"d"}}},
	}})
	if n := noSites.Concentration("d", AllIndirect()); n != 0 {
		t.Errorf("zero-site graph concentration = %d, want 0", n)
	}
	if n := noSites.Impact("X", AllIndirect()); n != 0 {
		t.Errorf("zero-site graph impact = %d, want 0", n)
	}
	res := noSites.OutageSim(AllIndirect()).Run([]string{"d"}, OutageOpts{})
	if len(res.Outcomes) != 0 {
		t.Errorf("zero-site simulation produced site outcomes")
	}
	// The provider cascade still runs: X depends critically on d.
	if len(res.DownProviders) != 2 {
		t.Errorf("down providers = %v, want [X d]", res.DownProviders)
	}
}

func TestProvidersOfService(t *testing.T) {
	g := jointGraph()
	got := g.ProvidersOfService(CDN)
	want := []string{"A", "B", "X"}
	if len(got) != len(want) {
		t.Fatalf("ProvidersOfService(CDN) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ProvidersOfService(CDN) = %v, want %v", got, want)
		}
	}
	// dA/dB are leaf DNS names: discovered through provider deps only, so
	// they are not providers *of a service used by sites* here.
	if dns := g.ProvidersOfService(DNS); len(dns) != 0 {
		t.Errorf("ProvidersOfService(DNS) = %v, want empty (leaf names only)", dns)
	}
	// But the full provider universe knows them.
	names := g.ProviderNames()
	has := func(n string) bool {
		for _, v := range names {
			if v == n {
				return true
			}
		}
		return false
	}
	for _, n := range []string{"A", "B", "X", "dA", "dB"} {
		if !has(n) {
			t.Errorf("ProviderNames missing %s: %v", n, names)
		}
	}
}
