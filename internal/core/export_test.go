package core

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := paperGraph()
	var sb strings.Builder
	if err := g.WriteDOT(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph dependencies",
		`"twitter.com" [shape=box]`,
		`"twitter.com" -> "Dyn"`,
		`"Fastly" -> "Dyn"`,
		`"Symantec" -> "Verisign DNS"`,
		"style=solid",  // critical edges
		"style=dashed", // redundant edges
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q\n%s", want, out)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("DOT not closed")
	}
}

func TestWriteDOTMaxSites(t *testing.T) {
	g := paperGraph()
	var sb strings.Builder
	if err := g.WriteDOT(&sb, 1); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "shape=box"); n != 1 {
		t.Errorf("maxSites=1 rendered %d site boxes", n)
	}
}

func TestRobustnessOf(t *testing.T) {
	g := paperGraph()

	// twitter: single service (DNS), critical on Dyn -> score 0.
	r, err := g.RobustnessOf("twitter.com")
	if err != nil {
		t.Fatal(err)
	}
	if r.Score != 0 {
		t.Errorf("twitter score = %v", r.Score)
	}
	if len(r.CriticalProviders) != 1 || r.CriticalProviders[0] != "Dyn" {
		t.Errorf("twitter critical providers = %v", r.CriticalProviders)
	}
	// Dyn's transitive impact is twitter+pinterest.
	if r.SharedFate != 2 {
		t.Errorf("twitter shared fate = %d, want 2", r.SharedFate)
	}

	// spotify: DNS redundant -> score 1, no critical providers.
	r, err = g.RobustnessOf("spotify.com")
	if err != nil {
		t.Fatal(err)
	}
	if r.Score != 1 || len(r.CriticalProviders) != 0 {
		t.Errorf("spotify robustness = %+v", r)
	}

	// pinterest: DNS private (safe), CDN critical on Fastly which is
	// critical on Dyn -> critical providers {Fastly, Dyn}, score 0.5.
	r, err = g.RobustnessOf("pinterest.com")
	if err != nil {
		t.Fatal(err)
	}
	if r.Score != 0.5 {
		t.Errorf("pinterest score = %v", r.Score)
	}
	if len(r.CriticalProviders) != 2 {
		t.Errorf("pinterest critical providers = %v", r.CriticalProviders)
	}

	// netflix: DNS redundant (safe), CA critical on Symantec -> Verisign.
	r, err = g.RobustnessOf("netflix.com")
	if err != nil {
		t.Fatal(err)
	}
	if r.Score != 0.5 {
		t.Errorf("netflix score = %v", r.Score)
	}
	has := func(p string) bool {
		for _, c := range r.CriticalProviders {
			if c == p {
				return true
			}
		}
		return false
	}
	if !has("Symantec") || !has("Verisign DNS") {
		t.Errorf("netflix critical providers = %v", r.CriticalProviders)
	}

	if _, err := g.RobustnessOf("nonexistent.com"); err == nil {
		t.Error("unknown site accepted")
	}
}

func TestRobustnessAll(t *testing.T) {
	g := paperGraph()
	d := g.RobustnessAll()
	// twitter and academia score 0; pinterest and netflix 0.5; spotify 1.
	if d.Zero != 2 || d.Low != 2 || d.Full != 1 || d.High != 0 {
		t.Errorf("distribution = %+v", d)
	}
}
