package core

import (
	"fmt"
	"sort"
	"sync"

	"depscope/internal/intern"
)

// This file implements the columnar graph backend. Graph is a pointer-and-
// map structure — map[string]*Provider, per-site Deps maps, string-keyed
// user indexes — which is the right shape for the report renderers but the
// wrong one at 1M sites: the resident set is dominated by map headers,
// string headers and per-site allocations, every one a pointer the GC must
// scan. CompactGraph stores the same graph as struct-of-arrays: every
// site/provider name is a dense uint32 into the process-wide intern.Dict,
// and all per-site variable-length data (dependency provider lists, private
// infrastructure, chain edges) lives in CSR-style offset+value arrays. Site
// row indexes double as the metrics engine's bitset indexes, so the batch
// propagation runs over the compact form directly — Metrics() materializes
// a MetricsEngine from the arrays without ever building a Graph.
//
// The pointer Graph remains the interchange form for renderers and
// experiments; Inflate() reconstructs it exactly (the analysis layer pins
// report bytes equal between the two paths). The compact form is what a
// 1M-site run holds while measuring, and what bytes/site accounting is
// reported over.

// classAbsent marks "site has no dependency entry for this service" in the
// per-service class column — distinct from ClassNone, which is a real
// measured class.
const classAbsent = 0xFF

// nSiteServices is the number of directly-measured per-site services
// (DNS/CDN/CA); chain edges are stored separately.
const nSiteServices = 3

// CompactGraph is the columnar form of one snapshot's dependency graph.
// Immutable after CompactBuilder.Build.
type CompactGraph struct {
	dict *intern.Dict

	// Site columns; the row index is the site's bitset index.
	siteNames []uint32 // dict ids
	siteRanks []int32

	// Per-service dependency columns: class byte (classAbsent = no entry)
	// plus a CSR of provider dict ids.
	siteClass [nSiteServices][]uint8
	depOff    [nSiteServices][]uint32
	depIDs    [nSiteServices][]uint32

	// Private-infrastructure CSR: (service, provider id) pairs per site,
	// already resolved against the provider maps at Build time.
	privOff []uint32
	privSvc []uint8
	privIDs []uint32

	// Chain-edge CSR: (vendor id, min depth) pairs per site, in measured
	// order (duplicates per vendor preserved, as on Site.Chains).
	chainOff   []uint32
	chainIDs   []uint32
	chainDepth []int32

	// Declared provider columns.
	provNames []uint32
	provSvc   []uint8
	// Provider inter-service dependencies, one class byte + CSR per
	// depended-on service (providers depend on DNS/CDN today; all four
	// slots exist so the layout never needs a migration).
	provClass  [4][]uint8
	provDepOff [4][]uint32
	provDepIDs [4][]uint32

	// Derived indexes for TopProviders filtering, built once on demand:
	// which names have public third-party users (bitmask per service,
	// Resource included) and which are private-infrastructure targets.
	idxOnce     sync.Once
	publicUsers map[uint32]uint8
	privUsed    map[uint32]bool
	provIdx     map[uint32]int

	metricsMu      sync.Mutex
	metricsWorkers int
	metrics        *MetricsEngine
}

// NSites returns the number of site rows.
func (cg *CompactGraph) NSites() int { return len(cg.siteNames) }

// NProviders returns the number of declared provider nodes.
func (cg *CompactGraph) NProviders() int { return len(cg.provNames) }

// SiteName returns site row i's name.
func (cg *CompactGraph) SiteName(i int) string { return cg.dict.Name(cg.siteNames[i]) }

// SiteRank returns site row i's rank.
func (cg *CompactGraph) SiteRank(i int) int { return int(cg.siteRanks[i]) }

// SiteClass returns site row i's dependency class for svc and whether the
// site has an entry for that service at all.
func (cg *CompactGraph) SiteClass(svc Service, i int) (DepClass, bool) {
	if int(svc) >= nSiteServices {
		return ClassNone, false
	}
	c := cg.siteClass[svc][i]
	if c == classAbsent {
		return ClassNone, false
	}
	return DepClass(c), true
}

// ClassCounts tallies sites per dependency class for svc, counting only
// sites that have an entry for the service — the same population the
// pointer graph's Deps maps define.
func (cg *CompactGraph) ClassCounts(svc Service) map[DepClass]int {
	out := make(map[DepClass]int)
	if int(svc) >= nSiteServices {
		return out
	}
	for _, c := range cg.siteClass[svc] {
		if c != classAbsent {
			out[DepClass(c)]++
		}
	}
	return out
}

// SetMetricsWorkers bounds the metrics engine's concurrency (< 1 means
// GOMAXPROCS), mirroring Graph.SetMetricsWorkers.
func (cg *CompactGraph) SetMetricsWorkers(n int) {
	cg.metricsMu.Lock()
	cg.metricsWorkers = n
	eng := cg.metrics
	cg.metricsMu.Unlock()
	if eng != nil {
		eng.SetWorkers(n)
	}
}

// Metrics returns the graph's batched metrics engine, built directly over
// the columnar arrays on first use: site rows are the bitset indexes, so
// the engine's init() never runs — names, bases and edges are materialized
// here and the SCC/propagation machinery consumes them as-is. The engine is
// pinned to StrategyBatch: the lazy recursive strategy walks the pointer
// graph, which a compact-built engine does not have.
func (cg *CompactGraph) Metrics() *MetricsEngine {
	cg.metricsMu.Lock()
	defer cg.metricsMu.Unlock()
	if cg.metrics == nil {
		cg.metrics = cg.buildEngine(cg.metricsWorkers)
	}
	return cg.metrics
}

// Concentration returns |C_p| under opts, from the batched engine.
func (cg *CompactGraph) Concentration(p string, opts TraversalOpts) int {
	return cg.Metrics().Concentration(p, opts)
}

// Impact returns |I_p| under opts, from the batched engine.
func (cg *CompactGraph) Impact(p string, opts TraversalOpts) int {
	return cg.Metrics().Impact(p, opts)
}

// buildEngine materializes a MetricsEngine whose universe, direct-user site
// rows and reverse dependency edges come straight from the columns. The
// resulting counts are property-tested equal to a pointer-graph engine over
// Inflate()'s output.
func (cg *CompactGraph) buildEngine(workers int) *MetricsEngine {
	e := &MetricsEngine{workers: workers, cache: make(map[uint8]*metricsEntry)}

	// Universe: declared providers, third-party dependency targets, chain
	// vendors, private-infrastructure nodes, provider dependency targets —
	// the same membership rule as initNames (insertion order differs, which
	// only permutes internal ids, never counts).
	e.ids = make(map[string]int)
	add := func(id uint32) int {
		name := cg.dict.Name(id)
		u, ok := e.ids[name]
		if !ok {
			u = len(e.names)
			e.ids[name] = u
			e.names = append(e.names, name)
		}
		return u
	}
	for _, id := range cg.provNames {
		add(id)
	}
	for svc := 0; svc < nSiteServices; svc++ {
		for i, c := range cg.siteClass[svc] {
			if c == classAbsent || !DepClass(c).UsesThird() {
				continue
			}
			for _, id := range cg.depIDs[svc][cg.depOff[svc][i]:cg.depOff[svc][i+1]] {
				add(id)
			}
		}
	}
	for _, id := range cg.chainIDs {
		add(id)
	}
	for _, id := range cg.privIDs {
		add(id)
	}
	for svc := 0; svc < 4; svc++ {
		for p := range cg.provNames {
			c := cg.provClass[svc][p]
			if c == classAbsent || !DepClass(c).UsesThird() {
				continue
			}
			for _, id := range cg.provDepIDs[svc][cg.provDepOff[svc][p]:cg.provDepOff[svc][p+1]] {
				add(id)
			}
		}
	}

	// Direct-user site rows. Appending the same row twice is harmless (the
	// propagation sets bits), so no per-site dedup is needed.
	n := len(e.names)
	e.nSiteIDs = len(cg.siteNames)
	e.baseAll = make([][]int32, n)
	e.baseCrit = make([][]int32, n)
	for svc := 0; svc < nSiteServices; svc++ {
		for i, c := range cg.siteClass[svc] {
			cls := DepClass(c)
			if c == classAbsent || !cls.UsesThird() {
				continue
			}
			for _, id := range cg.depIDs[svc][cg.depOff[svc][i]:cg.depOff[svc][i+1]] {
				u := e.ids[cg.dict.Name(id)]
				e.baseAll[u] = append(e.baseAll[u], int32(i))
				if cls.Critical() {
					e.baseCrit[u] = append(e.baseCrit[u], int32(i))
				}
			}
		}
	}
	for i := 0; i < len(cg.siteNames); i++ {
		// Chain edges: every edge is critical by construction.
		for k := cg.chainOff[i]; k < cg.chainOff[i+1]; k++ {
			u := e.ids[cg.dict.Name(cg.chainIDs[k])]
			e.baseAll[u] = append(e.baseAll[u], int32(i))
			e.baseCrit[u] = append(e.baseCrit[u], int32(i))
		}
		// Private infrastructure: always a critical dependency of the owner.
		for k := cg.privOff[i]; k < cg.privOff[i+1]; k++ {
			u := e.ids[cg.dict.Name(cg.privIDs[k])]
			e.baseAll[u] = append(e.baseAll[u], int32(i))
			e.baseCrit[u] = append(e.baseCrit[u], int32(i))
		}
	}

	// Reverse dependency edges: for each declared provider k depending on
	// target t, an edge t → k carrying k's service and whether any of k's
	// dependencies on t is critical — the same (target, dependent) dedup
	// with critical-OR the pointer engine applies.
	e.edges = make([][]metricEdge, n)
	type edgeKey struct{ t, k int }
	seen := make(map[edgeKey]int)
	for p := range cg.provNames {
		kid := int32(e.ids[cg.dict.Name(cg.provNames[p])])
		ksvc := Service(cg.provSvc[p])
		for svc := 0; svc < 4; svc++ {
			c := cg.provClass[svc][p]
			cls := DepClass(c)
			if c == classAbsent || !cls.UsesThird() {
				continue
			}
			for _, id := range cg.provDepIDs[svc][cg.provDepOff[svc][p]:cg.provDepOff[svc][p+1]] {
				t := e.ids[cg.dict.Name(id)]
				key := edgeKey{t, p}
				if j, ok := seen[key]; ok {
					if cls.Critical() {
						e.edges[t][j].critical = true
					}
					continue
				}
				seen[key] = len(e.edges[t])
				e.edges[t] = append(e.edges[t], metricEdge{to: kid, svc: ksvc, critical: cls.Critical()})
			}
		}
	}

	// The engine is born initialized: consume both onces so entry() goes
	// straight to propagation, and pin the batch strategy — the lazy path
	// needs a pointer graph this engine deliberately lacks.
	e.namesOnce.Do(func() {})
	e.initOnce.Do(func() {})
	e.initDone.Store(true)
	e.strategy = StrategyBatch
	return e
}

// buildIndexes derives the TopProviders filter indexes from the columns.
func (cg *CompactGraph) buildIndexes() {
	cg.publicUsers = make(map[uint32]uint8)
	cg.privUsed = make(map[uint32]bool)
	cg.provIdx = make(map[uint32]int, len(cg.provNames))
	for p, id := range cg.provNames {
		cg.provIdx[id] = p
	}
	for svc := 0; svc < nSiteServices; svc++ {
		for i, c := range cg.siteClass[svc] {
			if c == classAbsent || !DepClass(c).UsesThird() {
				continue
			}
			for _, id := range cg.depIDs[svc][cg.depOff[svc][i]:cg.depOff[svc][i+1]] {
				cg.publicUsers[id] |= 1 << uint(svc)
			}
		}
	}
	for _, id := range cg.chainIDs {
		cg.publicUsers[id] |= 1 << uint(Resource)
	}
	for _, id := range cg.privIDs {
		cg.privUsed[id] = true
	}
}

// TopProviders ranks the providers of svc by the chosen metric under opts,
// descending; n <= 0 returns all. It applies the same candidate collection
// and filtering as Graph.TopProviders: names used as a third party for svc
// plus declared providers of svc; a declared provider of a different
// service is excluded, as is a pure private-infrastructure node (private
// owners but no public users under any service).
func (cg *CompactGraph) TopProviders(svc Service, opts TraversalOpts, byImpact bool, n int) []ProviderStat {
	cg.idxOnce.Do(cg.buildIndexes)
	eng := cg.Metrics()
	var stats []ProviderStat
	seen := make(map[uint32]bool)
	collect := func(id uint32) {
		if seen[id] {
			return
		}
		seen[id] = true
		if p, ok := cg.provIdx[id]; ok && Service(cg.provSvc[p]) != svc {
			return
		}
		if cg.privUsed[id] && cg.publicUsers[id] == 0 {
			return
		}
		name := cg.dict.Name(id)
		stats = append(stats, ProviderStat{
			Name:          name,
			Service:       svc,
			Concentration: eng.Concentration(name, opts),
			Impact:        eng.Impact(name, opts),
		})
	}
	bit := uint8(1) << uint(svc)
	for id, mask := range cg.publicUsers {
		if mask&bit != 0 {
			collect(id)
		}
	}
	for p, id := range cg.provNames {
		if Service(cg.provSvc[p]) == svc {
			collect(id)
		}
	}
	sort.Slice(stats, func(i, j int) bool {
		a, b := stats[i], stats[j]
		ka, kb := a.Concentration, b.Concentration
		if byImpact {
			ka, kb = a.Impact, b.Impact
		}
		if ka != kb {
			return ka > kb
		}
		return a.Name < b.Name
	})
	if n > 0 && len(stats) > n {
		stats = stats[:n]
	}
	return stats
}

// Bytes returns the graph's columnar resident size: the sum of all column
// array footprints. Name string storage lives in the shared process-wide
// intern.Dict (one copy per distinct name, shared across snapshots and with
// the measurement layer) and is deliberately excluded — the benchmarks that
// compare representations measure retained heap deltas, which charge both
// forms their true shares.
func (cg *CompactGraph) Bytes() uint64 {
	b := uint64(cap(cg.siteNames))*4 + uint64(cap(cg.siteRanks))*4
	for svc := 0; svc < nSiteServices; svc++ {
		b += uint64(cap(cg.siteClass[svc]))
		b += uint64(cap(cg.depOff[svc]))*4 + uint64(cap(cg.depIDs[svc]))*4
	}
	b += uint64(cap(cg.privOff))*4 + uint64(cap(cg.privSvc)) + uint64(cap(cg.privIDs))*4
	b += uint64(cap(cg.chainOff))*4 + uint64(cap(cg.chainIDs))*4 + uint64(cap(cg.chainDepth))*4
	b += uint64(cap(cg.provNames))*4 + uint64(cap(cg.provSvc))
	for svc := 0; svc < 4; svc++ {
		b += uint64(cap(cg.provClass[svc]))
		b += uint64(cap(cg.provDepOff[svc]))*4 + uint64(cap(cg.provDepIDs[svc]))*4
	}
	return b
}

// Inflate reconstructs the pointer Graph. The output matches what
// analysis.BuildGraph would have produced from the same measurement
// results node-for-node — the analysis layer pins report bytes equal — so
// every renderer and experiment downstream of a compact run works
// unchanged.
func (cg *CompactGraph) Inflate() *Graph {
	sites := make([]*Site, len(cg.siteNames))
	for i := range cg.siteNames {
		s := &Site{
			Name: cg.dict.Name(cg.siteNames[i]),
			Rank: int(cg.siteRanks[i]),
			Deps: make(map[Service]Dep),
		}
		for svc := 0; svc < nSiteServices; svc++ {
			c := cg.siteClass[svc][i]
			if c == classAbsent {
				continue
			}
			var provs []string
			if lo, hi := cg.depOff[svc][i], cg.depOff[svc][i+1]; hi > lo {
				provs = make([]string, 0, hi-lo)
				for _, id := range cg.depIDs[svc][lo:hi] {
					provs = append(provs, cg.dict.Name(id))
				}
			}
			s.Deps[Service(svc)] = Dep{Class: DepClass(c), Providers: provs}
		}
		if lo, hi := cg.privOff[i], cg.privOff[i+1]; hi > lo {
			s.PrivateInfra = make(map[Service][]string)
			for k := lo; k < hi; k++ {
				svc := Service(cg.privSvc[k])
				s.PrivateInfra[svc] = append(s.PrivateInfra[svc], cg.dict.Name(cg.privIDs[k]))
			}
		}
		if lo, hi := cg.chainOff[i], cg.chainOff[i+1]; hi > lo {
			s.Chains = make([]ChainEdge, 0, hi-lo)
			for k := lo; k < hi; k++ {
				s.Chains = append(s.Chains, ChainEdge{
					Provider: cg.dict.Name(cg.chainIDs[k]),
					Depth:    int(cg.chainDepth[k]),
				})
			}
		}
		sites[i] = s
	}

	providers := make([]*Provider, len(cg.provNames))
	for p := range cg.provNames {
		node := &Provider{
			Name:    cg.dict.Name(cg.provNames[p]),
			Service: Service(cg.provSvc[p]),
			Deps:    make(map[Service]Dep),
		}
		for svc := 0; svc < 4; svc++ {
			c := cg.provClass[svc][p]
			if c == classAbsent {
				continue
			}
			var provs []string
			if lo, hi := cg.provDepOff[svc][p], cg.provDepOff[svc][p+1]; hi > lo {
				provs = make([]string, 0, hi-lo)
				for _, id := range cg.provDepIDs[svc][lo:hi] {
					provs = append(provs, cg.dict.Name(id))
				}
			}
			node.Deps[Service(svc)] = Dep{Class: DepClass(c), Providers: provs}
		}
		providers[p] = node
	}
	return NewGraph(sites, providers)
}

// CompactBuilder accumulates site rows (in rank order, typically one
// streaming batch at a time) and finalizes a CompactGraph once the
// measurement's cross-site maps are complete. Not safe for concurrent use;
// the streaming pipeline feeds it from one goroutine.
type CompactBuilder struct {
	g *CompactGraph

	// Private-infrastructure *candidates* per site: whether a candidate
	// becomes a node is only known once the inter-service passes finish, so
	// Build resolves them against an existence predicate.
	candOff []uint32
	candSvc []uint8
	candIDs []uint32

	open  bool // a site row is open
	built bool
}

// NewCompactBuilder creates an empty builder over the process-wide name
// table.
func NewCompactBuilder() *CompactBuilder {
	return &CompactBuilder{g: &CompactGraph{dict: intern.GlobalDict()}}
}

// closeRow finalizes the open site row's CSR offsets.
func (b *CompactBuilder) closeRow() {
	if !b.open {
		return
	}
	g := b.g
	for svc := 0; svc < nSiteServices; svc++ {
		g.depOff[svc] = append(g.depOff[svc], uint32(len(g.depIDs[svc])))
	}
	g.chainOff = append(g.chainOff, uint32(len(g.chainIDs)))
	b.candOff = append(b.candOff, uint32(len(b.candIDs)))
	b.open = false
}

// AddSite opens a new site row; subsequent SetDep/AddPrivateCandidate/
// AddChain calls apply to it until the next AddSite or Build.
func (b *CompactBuilder) AddSite(name string, rank int) {
	if b.built {
		panic("core: CompactBuilder used after Build")
	}
	b.closeRow()
	g := b.g
	if len(g.siteNames) == 0 {
		// First row: seed the offset-0 sentinel of every CSR.
		for svc := 0; svc < nSiteServices; svc++ {
			g.depOff[svc] = append(g.depOff[svc], 0)
		}
		g.chainOff = append(g.chainOff, 0)
		b.candOff = append(b.candOff, 0)
	}
	g.siteNames = append(g.siteNames, g.dict.ID(name))
	g.siteRanks = append(g.siteRanks, int32(rank))
	for svc := 0; svc < nSiteServices; svc++ {
		g.siteClass[svc] = append(g.siteClass[svc], classAbsent)
	}
	b.open = true
}

// SetDep records the open site's dependency entry for svc.
func (b *CompactBuilder) SetDep(svc Service, class DepClass, providers []string) {
	if !b.open {
		panic("core: SetDep before AddSite")
	}
	if int(svc) >= nSiteServices {
		panic("core: SetDep for non-site service " + svc.String())
	}
	g := b.g
	row := len(g.siteNames) - 1
	if g.siteClass[svc][row] != classAbsent {
		panic("core: duplicate SetDep for " + svc.String())
	}
	g.siteClass[svc][row] = uint8(class)
	for _, p := range providers {
		g.depIDs[svc] = append(g.depIDs[svc], g.dict.ID(p))
	}
}

// AddPrivateCandidate records a private-infrastructure candidate for the
// open site; Build keeps it only if the measurement resolved the named node
// (the same condition BuildGraph applies via the results maps).
func (b *CompactBuilder) AddPrivateCandidate(svc Service, name string) {
	if !b.open {
		panic("core: AddPrivateCandidate before AddSite")
	}
	b.candSvc = append(b.candSvc, uint8(svc))
	b.candIDs = append(b.candIDs, b.g.dict.ID(name))
}

// AddChain records one chain edge (vendor, min depth) for the open site.
func (b *CompactBuilder) AddChain(provider string, depth int) {
	if !b.open {
		panic("core: AddChain before AddSite")
	}
	g := b.g
	g.chainIDs = append(g.chainIDs, g.dict.ID(provider))
	g.chainDepth = append(g.chainDepth, int32(depth))
}

// Build finalizes the graph: declared provider nodes are laid out into the
// provider columns, and each site's private-infrastructure candidates are
// resolved through exists (service, name) — candidates for nodes the
// measurement never materialized are dropped, exactly as BuildGraph drops
// them by consulting the results maps. The builder is unusable afterwards.
func (b *CompactBuilder) Build(providers []*Provider, exists func(Service, string) bool) *CompactGraph {
	if b.built {
		panic("core: CompactBuilder.Build called twice")
	}
	b.closeRow()
	b.built = true
	g := b.g
	if len(g.siteNames) == 0 {
		// No rows were ever opened; seed empty CSRs so slicing stays valid.
		for svc := 0; svc < nSiteServices; svc++ {
			g.depOff[svc] = []uint32{0}
		}
		g.chainOff = []uint32{0}
		b.candOff = []uint32{0}
	}

	// Resolve private-infrastructure candidates into the final CSR.
	g.privOff = make([]uint32, 1, len(g.siteNames)+1)
	for i := 0; i < len(g.siteNames); i++ {
		for k := b.candOff[i]; k < b.candOff[i+1]; k++ {
			svc := Service(b.candSvc[k])
			name := g.dict.Name(b.candIDs[k])
			if !exists(svc, name) {
				continue
			}
			g.privSvc = append(g.privSvc, b.candSvc[k])
			g.privIDs = append(g.privIDs, b.candIDs[k])
		}
		g.privOff = append(g.privOff, uint32(len(g.privIDs)))
	}
	b.candOff, b.candSvc, b.candIDs = nil, nil, nil

	// Provider columns.
	for svc := 0; svc < 4; svc++ {
		g.provClass[svc] = make([]uint8, 0, len(providers))
		g.provDepOff[svc] = append(g.provDepOff[svc], 0)
	}
	seen := make(map[string]bool, len(providers))
	for _, p := range providers {
		if seen[p.Name] {
			panic(fmt.Sprintf("core: duplicate provider %q in CompactBuilder.Build", p.Name))
		}
		seen[p.Name] = true
		g.provNames = append(g.provNames, g.dict.ID(p.Name))
		g.provSvc = append(g.provSvc, uint8(p.Service))
		for svc := 0; svc < 4; svc++ {
			d, ok := p.Deps[Service(svc)]
			if !ok {
				g.provClass[svc] = append(g.provClass[svc], classAbsent)
			} else {
				g.provClass[svc] = append(g.provClass[svc], uint8(d.Class))
				for _, dep := range d.Providers {
					g.provDepIDs[svc] = append(g.provDepIDs[svc], g.dict.ID(dep))
				}
			}
			g.provDepOff[svc] = append(g.provDepOff[svc], uint32(len(g.provDepIDs[svc])))
		}
	}
	return g
}
