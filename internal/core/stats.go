package core

import "sort"

// BandStats aggregates site dependency classes for one service over a rank
// band (the paper's Figures 2–4 series).
type BandStats struct {
	Band  int
	Label string
	// Total is the number of sites consuming the service in the band
	// (characterized sites for DNS, CDN users for CDN, HTTPS sites for CA).
	Total int
	// Unknown counts uncharacterized sites (excluded from Total).
	Unknown int
	// Counts per class.
	Private, Single, Multi, Mixed int
}

// ThirdParty returns the fraction of sites using any third party.
func (b BandStats) ThirdParty() float64 {
	return frac(b.Single+b.Multi+b.Mixed, b.Total)
}

// Critical returns the fraction critically dependent.
func (b BandStats) Critical() float64 { return frac(b.Single, b.Total) }

// MultiThird returns the fraction using multiple third parties.
func (b BandStats) MultiThird() float64 { return frac(b.Multi, b.Total) }

// MixedFrac returns the fraction using private plus third party.
func (b BandStats) MixedFrac() float64 { return frac(b.Mixed, b.Total) }

// PrivateFrac returns the fraction using a private deployment only.
func (b BandStats) PrivateFrac() float64 { return frac(b.Private, b.Total) }

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// bandOf mirrors the generator's banding: band 0 holds ranks ≤ scale/1000.
func bandOf(rank, scale int) int {
	switch {
	case rank*1000 <= scale:
		return 0
	case rank*100 <= scale:
		return 1
	case rank*10 <= scale:
		return 2
	default:
		return 3
	}
}

// bandLabels produces "k=100"-style labels.
func bandLabels(scale int) [4]string {
	divs := [4]int{1000, 100, 10, 1}
	var out [4]string
	for i, d := range divs {
		k := scale / d
		if k >= 1000 {
			out[i] = "k=" + itoa(k/1000) + "K"
		} else {
			out[i] = "k=" + itoa(k)
		}
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// ServiceBands computes cumulative band statistics for a service: band i
// covers ranks 1..scale/10^(3-i), matching the paper's "top-k" series where
// each k includes all more-popular sites.
func ServiceBands(g *Graph, svc Service, scale int) [4]BandStats {
	labels := bandLabels(scale)
	var out [4]BandStats
	for i := range out {
		out[i] = BandStats{Band: i, Label: labels[i]}
	}
	for _, s := range g.Sites {
		d, ok := s.Deps[svc]
		if !ok || d.Class == ClassNone {
			continue
		}
		b := bandOf(s.Rank, scale)
		// Cumulative: a rank in band b contributes to bands b..3.
		for i := b; i < 4; i++ {
			if d.Class == ClassUnknown {
				out[i].Unknown++
				continue
			}
			out[i].Total++
			switch d.Class {
			case ClassPrivate:
				out[i].Private++
			case ClassSingleThird:
				out[i].Single++
			case ClassMultiThird:
				out[i].Multi++
			case ClassPrivatePlusThird:
				out[i].Mixed++
			}
		}
	}
	return out
}

// CDFPoint is one step of the provider-concentration CDF (Fig 6).
type CDFPoint struct {
	Providers int     // number of top providers considered
	Coverage  float64 // fraction of service-consuming sites covered
}

// ConcentrationCDF sorts providers of svc by direct site coverage and
// returns the cumulative distinct-site coverage curve, normalized by the
// number of sites using any third-party provider of svc.
func ConcentrationCDF(g *Graph, svc Service) []CDFPoint {
	type pc struct {
		name  string
		users []*Site
	}
	var list []pc
	for name, users := range g.usersOf[svc] {
		list = append(list, pc{name, users})
	}
	sort.Slice(list, func(i, j int) bool {
		if len(list[i].users) != len(list[j].users) {
			return len(list[i].users) > len(list[j].users)
		}
		return list[i].name < list[j].name
	})
	all := make(map[string]bool)
	for _, p := range list {
		for _, s := range p.users {
			all[s.Name] = true
		}
	}
	denom := len(all)
	covered := make(map[string]bool)
	out := make([]CDFPoint, 0, len(list))
	for i, p := range list {
		for _, s := range p.users {
			covered[s.Name] = true
		}
		out = append(out, CDFPoint{Providers: i + 1, Coverage: frac(len(covered), denom)})
	}
	return out
}

// ProvidersForCoverage returns how many top providers are needed to cover
// the given fraction of third-party-using sites (Fig 6: "54 providers serve
// 80% of the websites in 2020 vs 2705 in 2016"). Returns 0 when the curve
// never reaches the target.
func ProvidersForCoverage(cdf []CDFPoint, target float64) int {
	for _, p := range cdf {
		if p.Coverage >= target {
			return p.Providers
		}
	}
	return 0
}

// DistinctProviders counts providers with at least one direct site user.
func DistinctProviders(g *Graph, svc Service) int {
	return len(g.usersOf[svc])
}
