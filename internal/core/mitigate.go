package core

import (
	"container/heap"
	"math/bits"
	"sort"
)

// This file implements the greedy mitigation optimizer: the constructive
// answer to the paper's "have we learned?" question. Where C_p/I_p rank
// providers by how much of the web they can take down, the optimizer ranks
// *defenses*: which K sites should add a second provider to one of their
// single-third-party arrangements to shrink the aggregate impact
//
//	Σ_p |I_p|
//
// the most. The objective decomposes per site: a site w is a member of I_p
// exactly when one of w's critical chains — a single-third arrangement, or
// a private-infrastructure node, followed through providers' own critical
// dependencies — reaches p. So w contributes |union of its chains' provider
// closures| to the aggregate, and converting one single-third arrangement
// to multi-third removes exactly the closure bits no other chain of w also
// covers. Contributions are independent across sites, so a greedy sweep
// over (site, service) candidates with per-site re-evaluation is exact for
// the sites it picks; the lazy-re-evaluation heap keeps it near-linear.
//
// Closures are provider-id bitsets on the metrics engine's universe — the
// same ids and critical edges the batch C_p/I_p propagation walks, so the
// optimizer's "before" totals agree with the engine by construction (the
// property tests in mitigate_test.go pin both that and the "after" totals
// against graph surgery).

// MitigationOption is one ranked recommendation: add a second provider to
// this site's arrangement for this service.
type MitigationOption struct {
	// Site and Rank identify the website.
	Site string `json:"site"`
	Rank int    `json:"rank"`
	// Service is the single-third arrangement to make redundant.
	Service string `json:"service"`
	// Provider is the current sole provider of that arrangement.
	Provider string `json:"provider"`
	// Gain is the aggregate-impact reduction this option alone contributes:
	// the number of (provider, site) impact pairs it removes.
	Gain int `json:"gain"`
	// Cumulative is the running reduction up to and including this option.
	Cumulative int `json:"cumulative"`
}

// ProviderImpactDelta is one provider's impact before and after the plan.
type ProviderImpactDelta struct {
	Name   string `json:"name"`
	Before int    `json:"before"`
	After  int    `json:"after"`
}

// MitigationPlan is the optimizer's output: up to K options, ranked by
// marginal gain, with the aggregate and per-provider before/after deltas.
type MitigationPlan struct {
	K int `json:"k"`
	// Candidates counts the (site, service) single-third arrangements the
	// optimizer considered.
	Candidates int `json:"candidates"`
	// Before and After are the aggregate impact Σ_p |I_p| over every
	// provider of the universe, before and after applying every option.
	Before int `json:"aggregate_impact_before"`
	After  int `json:"aggregate_impact_after"`
	// Options are the picks in greedy order. Fewer than K are returned when
	// the remaining candidates have zero marginal gain.
	Options []MitigationOption `json:"options"`
	// ProviderDeltas lists the providers whose |I_p| the plan shrinks most
	// (up to 10), largest absolute reduction first.
	ProviderDeltas []ProviderImpactDelta `json:"provider_deltas,omitempty"`
}

// Reduction is the total aggregate-impact reduction of the plan.
func (p *MitigationPlan) Reduction() int { return p.Before - p.After }

// critChain is one critical dependency chain root of a site: the provider
// ids of one single-third arrangement or private-infrastructure entry,
// resolved to the closure of providers the chain makes the site critically
// dependent on.
type critChain struct {
	svc       Service
	provider  string // sole provider name (mitigable chains only)
	mitigable bool   // single-third arrangement, not private infra
	closure   bitset
	removed   bool
}

// mitigationState is the per-site greedy bookkeeping.
type mitigationState struct {
	site   *Site
	chains []critChain
}

// unionOthers unions the closures of every live chain except skip.
func (ms *mitigationState) unionOthers(skip int, nbits int) bitset {
	u := newBitset(nbits)
	for i := range ms.chains {
		if i == skip || ms.chains[i].removed {
			continue
		}
		u.unionWith(ms.chains[i].closure)
	}
	return u
}

// gainOf computes the current marginal gain of chain ci: the closure bits no
// other live chain of the site covers.
func (ms *mitigationState) gainOf(ci int, nbits int) int {
	others := ms.unionOthers(ci, nbits)
	gain := 0
	for w, word := range ms.chains[ci].closure {
		gain += bits.OnesCount64(word &^ others[w])
	}
	return gain
}

// mitigationCand is one heap entry. Entries are never updated in place:
// a re-evaluation pushes a fresh entry with a newer stamp and stale entries
// are discarded on pop.
type mitigationCand struct {
	gain  int
	site  int // index into states
	chain int
	stamp int
}

type candHeap []mitigationCand

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	if h[i].site != h[j].site {
		return h[i].site < h[j].site
	}
	return h[i].chain < h[j].chain
}
func (h candHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(mitigationCand)) }
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// MitigationPlan greedily selects up to k (site, service) single-third
// arrangements whose conversion to a redundant arrangement shrinks the
// aggregate impact Σ_p |I_p| the most under opts. Deterministic: ties break
// by site rank, then service order.
func (g *Graph) MitigationPlan(k int, opts TraversalOpts) *MitigationPlan {
	e := g.Metrics()
	e.namesOnce.Do(e.initNames)
	nbits := len(e.names)
	plan := &MitigationPlan{K: k}
	if k <= 0 || nbits == 0 {
		return plan
	}

	// Forward critical adjacency: provider id → the provider ids it
	// critically depends on. The closure gate matches gather(): descending
	// out of a provider requires the traversal to allow that provider's own
	// service type.
	critDeps := make([][]int32, nbits)
	allowed := make([]bool, nbits)
	for name, p := range g.Providers {
		id := e.ids[name]
		allowed[id] = opts.allows(p.Service)
		for _, d := range p.Deps {
			if !d.Class.Critical() {
				continue
			}
			for _, dep := range d.Providers {
				if did, ok := e.ids[dep]; ok {
					critDeps[id] = append(critDeps[id], int32(did))
				}
			}
		}
	}

	// closure(root) = {root} ∪ (allowed[root] ? closures of its critical
	// deps, recursively). Memoized per root; the DFS handles cycles with a
	// per-root visited set, mirroring the \{p} exclusion of the formulas.
	closures := make(map[int32]bitset)
	var closureOf func(root int32) bitset
	closureOf = func(root int32) bitset {
		if bs, ok := closures[root]; ok {
			return bs
		}
		bs := newBitset(nbits)
		visited := make([]bool, nbits)
		stack := []int32{root}
		visited[root] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			bs.set(int(v))
			// Reaching a provider puts it in the closure unconditionally;
			// continuing *through* it requires the traversal to allow its
			// service type — the same gate gather() applies per chain node.
			if !allowed[v] {
				continue
			}
			for _, d := range critDeps[v] {
				if !visited[d] {
					visited[d] = true
					stack = append(stack, d)
				}
			}
		}
		closures[root] = bs
		return bs
	}

	// Per-site critical chains. Only single-third arrangements are
	// mitigable; private-infrastructure chains participate in the overlap
	// union but are never candidates (the site owns that node — adding a
	// third party would not remove the critical dependency on it).
	var states []mitigationState
	for _, s := range g.Sites {
		var ms mitigationState
		ms.site = s
		for _, svc := range Services {
			if d, ok := s.Deps[svc]; ok && d.Class.Critical() && len(d.Providers) > 0 {
				cl := newBitset(nbits)
				for _, pname := range d.Providers {
					if id, idOK := e.ids[pname]; idOK {
						cl.unionWith(closureOf(int32(id)))
					}
				}
				ms.chains = append(ms.chains, critChain{
					svc:       svc,
					provider:  d.Providers[0],
					mitigable: len(d.Providers) == 1,
					closure:   cl,
				})
			}
			for _, pname := range s.PrivateInfra[svc] {
				if id, idOK := e.ids[pname]; idOK {
					ms.chains = append(ms.chains, critChain{
						svc:     svc,
						closure: closureOf(int32(id)),
					})
				}
			}
		}
		if len(ms.chains) > 0 {
			states = append(states, ms)
		}
	}

	// The aggregate objective decomposes per site: Σ_p |I_p| equals the sum
	// over sites of |union of chain closures| — each (p, w) impact pair is
	// counted exactly once on each side.
	before := 0
	for i := range states {
		u := states[i].unionOthers(-1, nbits)
		before += u.count()
	}
	plan.Before = before

	// Seed the heap with every mitigable chain's initial gain.
	stamps := make(map[[2]int]int)
	var h candHeap
	for si := range states {
		for ci := range states[si].chains {
			if !states[si].chains[ci].mitigable {
				continue
			}
			plan.Candidates++
			h = append(h, mitigationCand{
				gain:  states[si].gainOf(ci, nbits),
				site:  si,
				chain: ci,
			})
		}
	}
	heap.Init(&h)

	// reduction[p] counts the sites the plan removes from I_p.
	reduction := make([]int, nbits)
	cumulative := 0
	for len(plan.Options) < k && h.Len() > 0 {
		c := heap.Pop(&h).(mitigationCand)
		key := [2]int{c.site, c.chain}
		if c.stamp != stamps[key] {
			continue // stale: a sibling pick re-evaluated this candidate
		}
		ms := &states[c.site]
		if ms.chains[c.chain].removed {
			continue
		}
		cur := ms.gainOf(c.chain, nbits)
		if cur != c.gain {
			// Gains only move when a same-site sibling was picked; push the
			// corrected entry and let the heap re-rank it.
			stamps[key]++
			heap.Push(&h, mitigationCand{gain: cur, site: c.site, chain: c.chain, stamp: stamps[key]})
			continue
		}
		if cur == 0 {
			break // every remaining candidate is fully shadowed
		}

		// Accept: record which providers lose this site.
		others := ms.unionOthers(c.chain, nbits)
		ch := &ms.chains[c.chain]
		for w, word := range ch.closure {
			for rem := word &^ others[w]; rem != 0; rem &= rem - 1 {
				reduction[w*64+bits.TrailingZeros64(rem)]++
			}
		}
		ch.removed = true
		cumulative += cur
		plan.Options = append(plan.Options, MitigationOption{
			Site:       ms.site.Name,
			Rank:       ms.site.Rank,
			Service:    ch.svc.String(),
			Provider:   ch.provider,
			Gain:       cur,
			Cumulative: cumulative,
		})
		// Re-evaluate the site's surviving candidates: their gains can only
		// have grown now that this chain no longer shadows them.
		for ci := range ms.chains {
			if ci == c.chain || ms.chains[ci].removed || !ms.chains[ci].mitigable {
				continue
			}
			k2 := [2]int{c.site, ci}
			stamps[k2]++
			heap.Push(&h, mitigationCand{gain: ms.gainOf(ci, nbits), site: c.site, chain: ci, stamp: stamps[k2]})
		}
	}
	plan.After = plan.Before - cumulative

	// Per-provider deltas, against the engine's own impact counts so the
	// "before" column matches every other report surface.
	type red struct {
		id int
		n  int
	}
	var reds []red
	for id, n := range reduction {
		if n > 0 {
			reds = append(reds, red{id, n})
		}
	}
	sort.Slice(reds, func(i, j int) bool {
		if reds[i].n != reds[j].n {
			return reds[i].n > reds[j].n
		}
		return e.names[reds[i].id] < e.names[reds[j].id]
	})
	if len(reds) > 10 {
		reds = reds[:10]
	}
	for _, r := range reds {
		name := e.names[r.id]
		impBefore := e.Impact(name, opts)
		plan.ProviderDeltas = append(plan.ProviderDeltas, ProviderImpactDelta{
			Name:   name,
			Before: impBefore,
			After:  impBefore - r.n,
		})
	}
	return plan
}
