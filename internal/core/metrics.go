package core

import (
	"math/bits"
	"runtime"
	"sync"

	"depscope/internal/conc"
)

// This file implements the batched provider-metrics engine. The per-provider
// formulas of §2.2 are recursive set unions over the provider-dependency
// graph; computing them one provider at a time re-walks the same user lists
// for every query, which is the wrong asymptotic shape once every table and
// figure runner asks for all providers of a snapshot. The engine instead
// computes C_p and I_p for *every* provider in one pass:
//
//  1. condense the (traversal-filtered) provider graph into strongly
//     connected components — mutually dependent providers share one
//     dependent-site set by definition;
//  2. propagate site bitsets through the condensation DAG sinks-first, with
//     copy-on-write sharing for pass-through components;
//  3. fan the per-level component work across a worker pool.
//
// Results are cached per traversal key. Graphs are immutable after NewGraph
// (nothing in the package mutates Sites, Providers or the indexes), so cache
// entries never need invalidation.

// MetricsEngine computes provider concentration |C_p| and impact |I_p| for
// all providers of a Graph in one batched pass and caches the result per
// TraversalOpts. The zero Workers value (or any value < 1) means GOMAXPROCS.
// A MetricsEngine is safe for concurrent use.
type MetricsEngine struct {
	g *Graph

	initOnce sync.Once
	names    []string       // provider id → name (every name a query can hit)
	ids      map[string]int // provider name → id
	edges    [][]metricEdge // edges[p] = providers depending on p
	// Direct-user site ids per provider, resolved once so propagation is
	// pure integer work shared by every traversal key and both metrics.
	baseAll  [][]int32 // third-party users of any class + private owners
	baseCrit [][]int32 // critical users + private owners

	mu      sync.Mutex
	workers int
	cache   map[uint8]*metricsEntry
}

// metricEdge is one "provider `to` depends on the edge's source" link,
// annotated with the depending provider's service (the traversal filter of
// TraversalOpts applies to it) and whether any of its dependencies on the
// source is critical.
type metricEdge struct {
	to       int32
	svc      Service
	critical bool
}

// metricsEntry is one cached (TraversalOpts) result; once guards the compute
// so concurrent first queries do the work exactly once.
type metricsEntry struct {
	once sync.Once
	conc map[string]int
	imp  map[string]int
}

// NewMetricsEngine builds an engine over g with its own cache. Most callers
// should use Graph.Metrics(), which shares one engine (and thus one cache)
// per graph; a fresh engine is only useful to measure cold-cache cost.
func NewMetricsEngine(g *Graph, workers int) *MetricsEngine {
	return &MetricsEngine{g: g, workers: workers, cache: make(map[uint8]*metricsEntry)}
}

// SetWorkers bounds the propagation concurrency; values < 1 mean GOMAXPROCS.
func (e *MetricsEngine) SetWorkers(n int) {
	e.mu.Lock()
	e.workers = n
	e.mu.Unlock()
}

func (e *MetricsEngine) workerCount() int {
	e.mu.Lock()
	w := e.workers
	e.mu.Unlock()
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// Concentration returns |C_p| under opts.
func (e *MetricsEngine) Concentration(p string, opts TraversalOpts) int {
	return e.entry(opts).conc[p]
}

// Impact returns |I_p| under opts.
func (e *MetricsEngine) Impact(p string, opts TraversalOpts) int {
	return e.entry(opts).imp[p]
}

// Counts returns |C_p| and |I_p| for every provider under opts. The maps are
// shared cache state; callers must not mutate them.
func (e *MetricsEngine) Counts(opts TraversalOpts) (conc, imp map[string]int) {
	ent := e.entry(opts)
	return ent.conc, ent.imp
}

// viaBits folds TraversalOpts into the cache key. Only the canonical
// services participate in traversal; provider Service values outside
// Services never carry edges (NewGraph cannot produce them).
func viaBits(opts TraversalOpts) uint8 {
	var b uint8
	for _, svc := range Services {
		if opts.allows(svc) {
			b |= 1 << uint(svc)
		}
	}
	return b
}

func (e *MetricsEngine) entry(opts TraversalOpts) *metricsEntry {
	key := viaBits(opts)
	e.mu.Lock()
	ent, ok := e.cache[key]
	if !ok {
		ent = &metricsEntry{}
		e.cache[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		e.initOnce.Do(e.init)
		ent.conc = e.propagate(key, false)
		ent.imp = e.propagate(key, true)
	})
	return ent
}

// init builds the provider universe and the reverse dependency edges shared
// by every traversal key. The universe covers every name a query can return
// a non-zero count for: declared providers, third-party user indexes,
// private-infrastructure nodes and depended-upon names.
func (e *MetricsEngine) init() {
	g := e.g
	e.ids = make(map[string]int)
	add := func(name string) {
		if _, ok := e.ids[name]; !ok {
			e.ids[name] = len(e.names)
			e.names = append(e.names, name)
		}
	}
	for name := range g.Providers {
		add(name)
	}
	for _, svcUsers := range g.usersOf {
		for name := range svcUsers {
			add(name)
		}
	}
	for name := range g.privateUsersOf {
		add(name)
	}
	for name := range g.providerUsersOf {
		add(name)
	}

	siteID := make(map[string]int32, len(g.Sites))
	for i, s := range g.Sites {
		if _, ok := siteID[s.Name]; !ok {
			siteID[s.Name] = int32(i)
		}
	}
	e.baseAll = make([][]int32, len(e.names))
	e.baseCrit = make([][]int32, len(e.names))
	for u, name := range e.names {
		for _, svcUsers := range g.usersOf {
			for _, s := range svcUsers[name] {
				e.baseAll[u] = append(e.baseAll[u], siteID[s.Name])
			}
		}
		for _, svcUsers := range g.criticalUsersOf {
			for _, s := range svcUsers[name] {
				e.baseCrit[u] = append(e.baseCrit[u], siteID[s.Name])
			}
		}
		for _, s := range g.privateUsersOf[name] {
			id := siteID[s.Name]
			e.baseAll[u] = append(e.baseAll[u], id)
			e.baseCrit[u] = append(e.baseCrit[u], id)
		}
	}

	e.edges = make([][]metricEdge, len(e.names))
	for pname, users := range g.providerUsersOf {
		pid := e.ids[pname]
		idx := make(map[string]int, len(users))
		for _, k := range users {
			crit := providerDependsCritically(k, pname)
			if j, ok := idx[k.Name]; ok {
				if crit {
					e.edges[pid][j].critical = true
				}
				continue
			}
			idx[k.Name] = len(e.edges[pid])
			e.edges[pid] = append(e.edges[pid], metricEdge{
				to:       int32(e.ids[k.Name]),
				svc:      k.Service,
				critical: crit,
			})
		}
	}
}

// providerDependsCritically reports whether k lists pname in a critical
// dependency — the edge filter the impact recursion applies.
func providerDependsCritically(k *Provider, pname string) bool {
	for _, d := range k.Deps {
		if !d.Class.Critical() {
			continue
		}
		for _, dep := range d.Providers {
			if dep == pname {
				return true
			}
		}
	}
	return false
}

// propagate computes one metric (concentration, or impact when critical) for
// every provider: SCC condensation of the filtered edges, then a sinks-first
// sweep unioning site bitsets up the DAG, parallel within each depth level.
func (e *MetricsEngine) propagate(via uint8, critical bool) map[string]int {
	n := len(e.names)
	// Degenerate inputs: with no providers or no sites every count is zero.
	// Return an empty map (lookups yield 0) instead of condensing an empty
	// graph and allocating a zero-width bitset view per component.
	if n == 0 || len(e.g.Sites) == 0 {
		return map[string]int{}
	}
	base := e.baseAll
	if critical {
		base = e.baseCrit
	}

	// Filtered adjacency for this traversal view.
	adj := make([][]int32, n)
	for u := 0; u < n; u++ {
		for _, ed := range e.edges[u] {
			if via&(1<<uint(ed.svc)) == 0 || (critical && !ed.critical) {
				continue
			}
			adj[u] = append(adj[u], ed.to)
		}
	}

	comp, ncomp := tarjanSCC(n, adj)
	members := make([][]int32, ncomp)
	for u := 0; u < n; u++ {
		members[comp[u]] = append(members[comp[u]], int32(u))
	}

	// Condensed successor lists. Components come out of Tarjan sinks-first:
	// every edge leaves a component toward a smaller component id, so a
	// simple ascending sweep sees successors before their predecessors.
	succ := make([][]int32, ncomp)
	mark := make([]int32, ncomp)
	for i := range mark {
		mark[i] = -1
	}
	for c := int32(0); c < int32(ncomp); c++ {
		for _, u := range members[c] {
			for _, v := range adj[u] {
				cv := comp[v]
				if cv != c && mark[cv] != c {
					mark[cv] = c
					succ[c] = append(succ[c], cv)
				}
			}
		}
	}

	// Does the component contribute any direct users of its own? Needed up
	// front so pass-through components can alias instead of copy.
	hasBase := make([]bool, ncomp)
	for u := 0; u < n; u++ {
		if len(base[u]) > 0 {
			hasBase[comp[u]] = true
		}
	}

	// Depth levels over the DAG: a component is ready once every successor's
	// set exists, so all components of one level union independently.
	level := make([]int32, ncomp)
	maxLevel := int32(0)
	for c := 0; c < ncomp; c++ {
		lv := int32(0)
		for _, sc := range succ[c] {
			if level[sc]+1 > lv {
				lv = level[sc] + 1
			}
		}
		level[c] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	byLevel := make([][]int32, maxLevel+1)
	for c := 0; c < ncomp; c++ {
		byLevel[level[c]] = append(byLevel[level[c]], int32(c))
	}

	nSites := len(e.g.Sites)
	sets := make([]bitset, ncomp)
	counts := make([]int, ncomp)
	workers := e.workerCount()
	process := func(c int32) {
		ss := succ[c]
		if !hasBase[c] && len(ss) == 1 {
			// Copy-on-write: a pure pass-through component's set IS its
			// successor's set. Sets are never mutated after their level
			// completes, so sharing the slice is safe.
			sets[c] = sets[ss[0]]
			counts[c] = counts[ss[0]]
			return
		}
		bs := newBitset(nSites)
		for _, u := range members[c] {
			for _, id := range base[u] {
				bs.set(int(id))
			}
		}
		for _, sc := range ss {
			bs.unionWith(sets[sc])
		}
		sets[c] = bs
		counts[c] = bs.count()
	}
	for _, comps := range byLevel {
		cs := comps
		conc.Do(len(cs), workers, func(i int) { process(cs[i]) })
	}

	out := make(map[string]int, n)
	for u := 0; u < n; u++ {
		out[e.names[u]] = counts[comp[u]]
	}
	return out
}

// tarjanSCC condenses the directed graph into strongly connected components,
// iteratively (provider chains can be deep at scale). Components are emitted
// sinks-first: for every edge u→v across components, comp[v] < comp[u].
func tarjanSCC(n int, adj [][]int32) (comp []int32, ncomp int) {
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp = make([]int32, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack  []int32
		next   int32
		frames []sccFrame
	)
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames = append(frames[:0], sccFrame{v: int32(start)})
		index[start], low[start] = next, next
		next++
		stack = append(stack, int32(start))
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, sccFrame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = int32(ncomp)
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}

type sccFrame struct {
	v  int32
	ei int
}

// bitset is a fixed-width set over site indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i/64] |= 1 << uint(i%64) }

func (b bitset) unionWith(o bitset) {
	for i, w := range o {
		b[i] |= w
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Metrics returns the graph's shared batched metrics engine, creating it on
// first use. All Concentration/Impact/TopProviders calls on the graph route
// through it, so the eleven table/figure runners share one cache.
func (g *Graph) Metrics() *MetricsEngine {
	g.metricsMu.Lock()
	defer g.metricsMu.Unlock()
	if g.metrics == nil {
		g.metrics = NewMetricsEngine(g, g.metricsWorkers)
	}
	return g.metrics
}

// SetMetricsWorkers bounds the metrics engine's concurrency (values < 1 mean
// GOMAXPROCS), wiring the analysis layer's Workers knob through to the
// engine.
func (g *Graph) SetMetricsWorkers(n int) {
	g.metricsMu.Lock()
	g.metricsWorkers = n
	eng := g.metrics
	g.metricsMu.Unlock()
	if eng != nil {
		eng.SetWorkers(n)
	}
}
