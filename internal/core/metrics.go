package core

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"depscope/internal/conc"
)

// This file implements the batched provider-metrics engine. The per-provider
// formulas of §2.2 are recursive set unions over the provider-dependency
// graph; computing them one provider at a time re-walks the same user lists
// for every query, which is the wrong asymptotic shape once every table and
// figure runner asks for all providers of a snapshot. The engine instead
// computes C_p and I_p for *every* provider in one pass:
//
//  1. condense the (traversal-filtered) provider graph into strongly
//     connected components — mutually dependent providers share one
//     dependent-site set by definition;
//  2. propagate site bitsets through the condensation DAG sinks-first, with
//     copy-on-write sharing for pass-through components;
//  3. fan the per-level component work across a worker pool.
//
// Results are cached per traversal key. Graphs are immutable after NewGraph
// (nothing in the package mutates Sites, Providers or the indexes), so cache
// entries never need invalidation.
//
// The batch pass wins at snapshot scale, but its fixed costs (condensation,
// per-component bitsets over every site) lose to the plain recursion on small
// provider universes — the measured 10K-site fixture resolves to under a
// thousand provider names, and ranking workloads there only ever query the
// ~500 of them that are real third parties. entry() therefore picks a
// strategy per traversal key: at or above batchCrossoverNames universe names
// it runs the batch propagation up front; below it, the entry stays lazy and
// each queried name pays one recursive set walk, memoized — a ranking pass
// costs walks for exactly the names it ranks instead of a propagation over
// the whole universe. A lazy entry is promoted to complete maps only if a
// caller asks for Counts (which needs every name).

// Strategy selects how a cold metrics cache entry is computed.
type Strategy int

const (
	// StrategyAuto picks per traversal key: batch propagation at or above
	// batchCrossoverNames universe names, lazy per-name recursion below.
	StrategyAuto Strategy = iota
	// StrategyBatch forces SCC condensation + bitset propagation.
	StrategyBatch
	// StrategyRecursive forces lazy, memoized per-name recursive set walks.
	StrategyRecursive
)

// batchCrossoverNames is the universe size at which batch propagation starts
// beating per-name recursion. Calibrated on the committed benchmarks: on the
// 10K-site fixture (854 universe names, ~500 ranked) the recursive ranking
// pass beats the batch fill by ~30% (BENCH_metrics.json), while the
// 100K-site/1000-provider graph fills ~5x faster batched.
const batchCrossoverNames = 1000

// MetricsEngine computes provider concentration |C_p| and impact |I_p| for
// all providers of a Graph in one batched pass and caches the result per
// TraversalOpts. The zero Workers value (or any value < 1) means GOMAXPROCS.
// A MetricsEngine is safe for concurrent use.
type MetricsEngine struct {
	g *Graph

	// namesOnce builds just the universe (names, ids) — all the lazy
	// recursive strategy ever needs; initOnce additionally resolves the
	// bases and edges the batch propagation and the outage simulator use.
	namesOnce sync.Once
	initOnce  sync.Once
	initDone  atomic.Bool    // set once init() finished (queried by ApplyDelta)
	names     []string       // provider id → name (every name a query can hit)
	ids       map[string]int // provider name → id
	edges     [][]metricEdge // edges[p] = providers depending on p
	// Direct-user site ids per provider, resolved once so propagation is
	// pure integer work shared by every traversal key and both metrics.
	baseAll  [][]int32 // third-party users of any class + private owners
	baseCrit [][]int32 // critical users + private owners
	// siteID assigns each site name a stable bitset index. Unlike the
	// Sites slice, ids are never reused or shifted: an engine carried
	// across deltas (ApplyDelta) keeps ids for removed sites and appends
	// fresh ones for additions, so retained bitsets stay comparable.
	siteID   map[string]int32
	nSiteIDs int // bitset width: ids handed out so far

	mu       sync.Mutex
	workers  int
	strategy Strategy
	cache    map[uint8]*metricsEntry
}

// metricEdge is one "provider `to` depends on the edge's source" link,
// annotated with the depending provider's service (the traversal filter of
// TraversalOpts applies to it) and whether any of its dependencies on the
// source is critical.
type metricEdge struct {
	to       int32
	svc      Service
	critical bool
}

// metricsEntry is one cached (TraversalOpts) result; once guards the
// strategy decision (and, for batch, the propagation) so concurrent first
// queries do the setup exactly once.
//
// A batch entry is immutable after once: conc and imp hold complete maps and
// reads are lock-free. A lazy (recursive-strategy) entry memoizes per-name
// walks in lconc/limp under mu until Counts needs every name, at which point
// full.Do computes complete maps, publishes them into conc/imp and clears
// lazy — after the promotion reads are lock-free again. The memo maps stay
// distinct from the published ones so a straggler still on the lazy path
// never writes into a map lock-free readers hold.
type metricsEntry struct {
	once sync.Once
	lazy atomic.Bool
	full sync.Once

	mu    sync.Mutex // guards lconc/limp while lazy is true
	lconc map[string]int
	limp  map[string]int

	conc map[string]int // complete; immutable once published
	imp  map[string]int

	// ready flips after once's body completes, so ApplyDelta can tell a
	// fully built entry from one whose first fill is still in flight (the
	// fields above are unsafe to read until then).
	ready atomic.Bool

	// Batch fills retain their propagation state (condensation, per-
	// component site bitsets) so a later ApplyDelta can recompute only the
	// components reachable from touched names instead of re-propagating
	// the whole DAG. nil for lazy and promoted-from-lazy entries.
	stateConc *propState
	stateImp  *propState
}

// propState is the retained output of one propagate() pass: the filtered
// condensation and the per-component dependent-site sets. Immutable after
// publication; ApplyDelta patches a copy (sharing untouched bitsets).
type propState struct {
	comp    []int32   // name id → component
	members [][]int32 // component → member name ids
	succ    [][]int32 // component → successor components (always smaller ids)
	hasBase []bool    // component contributes direct users of its own
	sets    []bitset  // component → dependent-site bitset
	counts  []int     // component → popcount of sets
}

// NewMetricsEngine builds an engine over g with its own cache. Most callers
// should use Graph.Metrics(), which shares one engine (and thus one cache)
// per graph; a fresh engine is only useful to measure cold-cache cost.
func NewMetricsEngine(g *Graph, workers int) *MetricsEngine {
	return &MetricsEngine{g: g, workers: workers, cache: make(map[uint8]*metricsEntry)}
}

// SetWorkers bounds the propagation concurrency; values < 1 mean GOMAXPROCS.
func (e *MetricsEngine) SetWorkers(n int) {
	e.mu.Lock()
	e.workers = n
	e.mu.Unlock()
}

// SetStrategy overrides the automatic batch/recursive crossover. It affects
// cache entries not yet computed; already-filled traversal keys keep their
// results (both strategies produce identical counts, so this only matters
// for benchmarks pricing a particular fill path).
func (e *MetricsEngine) SetStrategy(s Strategy) {
	e.mu.Lock()
	e.strategy = s
	e.mu.Unlock()
}

// strategyFor resolves the fill strategy for a universe of n names.
func (e *MetricsEngine) strategyFor(n int) Strategy {
	e.mu.Lock()
	s := e.strategy
	e.mu.Unlock()
	if s != StrategyAuto {
		return s
	}
	if n >= batchCrossoverNames {
		return StrategyBatch
	}
	return StrategyRecursive
}

func (e *MetricsEngine) workerCount() int {
	e.mu.Lock()
	w := e.workers
	e.mu.Unlock()
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// Concentration returns |C_p| under opts. On a lazy entry the first query
// for p pays one recursive set walk; every later query is a map lookup.
func (e *MetricsEngine) Concentration(p string, opts TraversalOpts) int {
	ent := e.entry(opts)
	if !ent.lazy.Load() {
		return ent.conc[p]
	}
	return ent.lazyLookup(p, func() int { return len(e.g.ConcentrationSet(p, opts)) }, true)
}

// Impact returns |I_p| under opts, lazily like Concentration.
func (e *MetricsEngine) Impact(p string, opts TraversalOpts) int {
	ent := e.entry(opts)
	if !ent.lazy.Load() {
		return ent.imp[p]
	}
	return ent.lazyLookup(p, func() int { return len(e.g.ImpactSet(p, opts)) }, false)
}

// lazyLookup memoizes one per-name metric on a lazy entry. The walk runs
// outside the lock: concurrent first queries for the same name may duplicate
// the walk, but both compute the same deterministic value.
func (ent *metricsEntry) lazyLookup(p string, walk func() int, isConc bool) int {
	m := ent.limp
	if isConc {
		m = ent.lconc
	}
	ent.mu.Lock()
	v, ok := m[p]
	ent.mu.Unlock()
	if ok {
		return v
	}
	v = walk()
	ent.mu.Lock()
	m[p] = v
	ent.mu.Unlock()
	return v
}

// Counts returns |C_p| and |I_p| for every provider under opts. The maps are
// shared cache state; callers must not mutate them. On a lazy entry the
// first Counts call promotes it: complete maps are computed once and served
// from then on.
func (e *MetricsEngine) Counts(opts TraversalOpts) (conc, imp map[string]int) {
	ent := e.entry(opts)
	if ent.lazy.Load() {
		ent.full.Do(func() {
			ent.conc, ent.imp = e.recursiveFill(opts)
			ent.lazy.Store(false)
		})
	}
	return ent.conc, ent.imp
}

// viaBits folds TraversalOpts into the cache key. Only the canonical
// services (Resource included) participate in traversal; provider Service
// values outside AllServices never carry edges (NewGraph cannot produce
// them).
func viaBits(opts TraversalOpts) uint8 {
	var b uint8
	for _, svc := range AllServices {
		if opts.allows(svc) {
			b |= 1 << uint(svc)
		}
	}
	return b
}

func (e *MetricsEngine) entry(opts TraversalOpts) *metricsEntry {
	key := viaBits(opts)
	e.mu.Lock()
	ent, ok := e.cache[key]
	if !ok {
		ent = &metricsEntry{}
		e.cache[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		e.namesOnce.Do(e.initNames)
		if e.strategyFor(len(e.names)) == StrategyRecursive {
			ent.lconc = make(map[string]int)
			ent.limp = make(map[string]int)
			ent.lazy.Store(true)
		} else {
			e.initOnce.Do(e.init)
			ent.conc, ent.stateConc = e.propagate(key, false)
			ent.imp, ent.stateImp = e.propagate(key, true)
		}
		ent.ready.Store(true)
	})
	return ent
}

// recursiveFill computes both metrics for every universe name by running the
// reference recursive set walks, one name per worker-pool task. It backs the
// Counts promotion of a lazy entry — the only consumer that needs complete
// maps rather than the handful of names a ranking queries.
func (e *MetricsEngine) recursiveFill(opts TraversalOpts) (concM, impM map[string]int) {
	n := len(e.names)
	concCounts := make([]int, n)
	impCounts := make([]int, n)
	conc.Do(n, e.workerCount(), func(i int) {
		name := e.names[i]
		concCounts[i] = len(e.g.ConcentrationSet(name, opts))
		impCounts[i] = len(e.g.ImpactSet(name, opts))
	})
	concM = make(map[string]int, n)
	impM = make(map[string]int, n)
	for i, name := range e.names {
		concM[name] = concCounts[i]
		impM[name] = impCounts[i]
	}
	return concM, impM
}

// initNames builds the provider universe: every name a query can return a
// non-zero count for — declared providers, third-party user indexes,
// private-infrastructure nodes and depended-upon names.
func (e *MetricsEngine) initNames() {
	g := e.g
	e.ids = make(map[string]int)
	add := func(name string) {
		if _, ok := e.ids[name]; !ok {
			e.ids[name] = len(e.names)
			e.names = append(e.names, name)
		}
	}
	for name := range g.Providers {
		add(name)
	}
	for _, svcUsers := range g.usersOf {
		for name := range svcUsers {
			add(name)
		}
	}
	for name := range g.privateUsersOf {
		add(name)
	}
	for name := range g.providerUsersOf {
		add(name)
	}
}

// init resolves the per-name direct-user site lists and the reverse
// dependency edges shared by every traversal key — the state the batch
// propagation and the outage simulator walk.
func (e *MetricsEngine) init() {
	e.namesOnce.Do(e.initNames)
	g := e.g

	e.siteID = make(map[string]int32, len(g.Sites))
	for i, s := range g.Sites {
		if _, ok := e.siteID[s.Name]; !ok {
			e.siteID[s.Name] = int32(i)
		}
	}
	e.nSiteIDs = len(g.Sites)
	e.baseAll = make([][]int32, len(e.names))
	e.baseCrit = make([][]int32, len(e.names))
	for u, name := range e.names {
		e.baseAll[u], e.baseCrit[u] = siteBaseRows(g, name, e.siteID)
	}

	e.edges = make([][]metricEdge, len(e.names))
	for pname, users := range g.providerUsersOf {
		pid := e.ids[pname]
		idx := make(map[string]int, len(users))
		for _, k := range users {
			crit := providerDependsCritically(k, pname)
			if j, ok := idx[k.Name]; ok {
				if crit {
					e.edges[pid][j].critical = true
				}
				continue
			}
			idx[k.Name] = len(e.edges[pid])
			e.edges[pid] = append(e.edges[pid], metricEdge{
				to:       int32(e.ids[k.Name]),
				svc:      k.Service,
				critical: crit,
			})
		}
	}
	e.initDone.Store(true)
}

// siteBaseRows resolves one name's direct-user site id lists — the init()
// inner loop, shared with the ApplyDelta patch path so both produce
// identical rows for a given graph.
func siteBaseRows(g *Graph, name string, siteID map[string]int32) (all, crit []int32) {
	for _, svcUsers := range g.usersOf {
		for _, s := range svcUsers[name] {
			all = append(all, siteID[s.Name])
		}
	}
	for _, svcUsers := range g.criticalUsersOf {
		for _, s := range svcUsers[name] {
			crit = append(crit, siteID[s.Name])
		}
	}
	for _, s := range g.privateUsersOf[name] {
		id := siteID[s.Name]
		all = append(all, id)
		crit = append(crit, id)
	}
	return all, crit
}

// providerDependsCritically reports whether k lists pname in a critical
// dependency — the edge filter the impact recursion applies.
func providerDependsCritically(k *Provider, pname string) bool {
	for _, d := range k.Deps {
		if !d.Class.Critical() {
			continue
		}
		for _, dep := range d.Providers {
			if dep == pname {
				return true
			}
		}
	}
	return false
}

// propagate computes one metric (concentration, or impact when critical) for
// every provider: SCC condensation of the filtered edges, then a sinks-first
// sweep unioning site bitsets up the DAG, parallel within each depth level.
// Alongside the count map it returns the propagation state it built, which
// the entry retains so ApplyDelta can patch instead of re-propagating.
func (e *MetricsEngine) propagate(via uint8, critical bool) (map[string]int, *propState) {
	n := len(e.names)
	// Degenerate inputs: with no providers or no sites every count is zero.
	// Return an empty map (lookups yield 0) instead of condensing an empty
	// graph and allocating a zero-width bitset view per component.
	if n == 0 || e.nSiteIDs == 0 {
		return map[string]int{}, nil
	}
	base := e.baseAll
	if critical {
		base = e.baseCrit
	}

	// Filtered adjacency for this traversal view.
	adj := make([][]int32, n)
	for u := 0; u < n; u++ {
		for _, ed := range e.edges[u] {
			if via&(1<<uint(ed.svc)) == 0 || (critical && !ed.critical) {
				continue
			}
			adj[u] = append(adj[u], ed.to)
		}
	}

	comp, ncomp := tarjanSCC(n, adj)
	members := make([][]int32, ncomp)
	for u := 0; u < n; u++ {
		members[comp[u]] = append(members[comp[u]], int32(u))
	}

	// Condensed successor lists. Components come out of Tarjan sinks-first:
	// every edge leaves a component toward a smaller component id, so a
	// simple ascending sweep sees successors before their predecessors.
	succ := make([][]int32, ncomp)
	mark := make([]int32, ncomp)
	for i := range mark {
		mark[i] = -1
	}
	for c := int32(0); c < int32(ncomp); c++ {
		for _, u := range members[c] {
			for _, v := range adj[u] {
				cv := comp[v]
				if cv != c && mark[cv] != c {
					mark[cv] = c
					succ[c] = append(succ[c], cv)
				}
			}
		}
	}

	// Does the component contribute any direct users of its own? Needed up
	// front so pass-through components can alias instead of copy.
	hasBase := make([]bool, ncomp)
	for u := 0; u < n; u++ {
		if len(base[u]) > 0 {
			hasBase[comp[u]] = true
		}
	}

	// Depth levels over the DAG: a component is ready once every successor's
	// set exists, so all components of one level union independently.
	level := make([]int32, ncomp)
	maxLevel := int32(0)
	for c := 0; c < ncomp; c++ {
		lv := int32(0)
		for _, sc := range succ[c] {
			if level[sc]+1 > lv {
				lv = level[sc] + 1
			}
		}
		level[c] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	byLevel := make([][]int32, maxLevel+1)
	for c := 0; c < ncomp; c++ {
		byLevel[level[c]] = append(byLevel[level[c]], int32(c))
	}

	nSites := e.nSiteIDs
	sets := make([]bitset, ncomp)
	counts := make([]int, ncomp)
	workers := e.workerCount()
	process := func(c int32) {
		ss := succ[c]
		if !hasBase[c] && len(ss) == 1 {
			// Copy-on-write: a pure pass-through component's set IS its
			// successor's set. Sets are never mutated after their level
			// completes, so sharing the slice is safe.
			sets[c] = sets[ss[0]]
			counts[c] = counts[ss[0]]
			return
		}
		bs := newBitset(nSites)
		for _, u := range members[c] {
			for _, id := range base[u] {
				bs.set(int(id))
			}
		}
		for _, sc := range ss {
			bs.unionWith(sets[sc])
		}
		sets[c] = bs
		counts[c] = bs.count()
	}
	for _, comps := range byLevel {
		cs := comps
		conc.Do(len(cs), workers, func(i int) { process(cs[i]) })
	}

	out := make(map[string]int, n)
	for u := 0; u < n; u++ {
		out[e.names[u]] = counts[comp[u]]
	}
	return out, &propState{
		comp:    comp,
		members: members,
		succ:    succ,
		hasBase: hasBase,
		sets:    sets,
		counts:  counts,
	}
}

// tarjanSCC condenses the directed graph into strongly connected components,
// iteratively (provider chains can be deep at scale). Components are emitted
// sinks-first: for every edge u→v across components, comp[v] < comp[u].
func tarjanSCC(n int, adj [][]int32) (comp []int32, ncomp int) {
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp = make([]int32, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack  []int32
		next   int32
		frames []sccFrame
	)
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames = append(frames[:0], sccFrame{v: int32(start)})
		index[start], low[start] = next, next
		next++
		stack = append(stack, int32(start))
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, sccFrame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = int32(ncomp)
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}

type sccFrame struct {
	v  int32
	ei int
}

// bitset is a fixed-width set over site indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i/64] |= 1 << uint(i%64) }

func (b bitset) unionWith(o bitset) {
	for i, w := range o {
		b[i] |= w
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Metrics returns the graph's shared batched metrics engine, creating it on
// first use. All Concentration/Impact/TopProviders calls on the graph route
// through it, so the eleven table/figure runners share one cache.
func (g *Graph) Metrics() *MetricsEngine {
	g.metricsMu.Lock()
	defer g.metricsMu.Unlock()
	if g.metrics == nil {
		g.metrics = NewMetricsEngine(g, g.metricsWorkers)
	}
	return g.metrics
}

// SetMetricsWorkers bounds the metrics engine's concurrency (values < 1 mean
// GOMAXPROCS), wiring the analysis layer's Workers knob through to the
// engine.
func (g *Graph) SetMetricsWorkers(n int) {
	g.metricsMu.Lock()
	g.metricsWorkers = n
	eng := g.metrics
	g.metricsMu.Unlock()
	if eng != nil {
		eng.SetWorkers(n)
	}
}
