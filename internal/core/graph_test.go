package core

import (
	"testing"
)

// paperGraph builds the canonical examples from the paper:
//   - twitter uses Dyn directly (critical);
//   - pinterest uses Fastly (critical), Fastly critically uses Dyn for DNS
//     (the 2016 incident chain);
//   - spotify uses Dyn and a private DNS (mixed, not critical);
//   - netflix uses Symantec CA which uses Verisign DNS (critical);
//   - academia uses MaxCDN which uses AWS DNS.
func paperGraph() *Graph {
	sites := []*Site{
		{Name: "twitter.com", Rank: 1, Deps: map[Service]Dep{
			DNS: {Class: ClassSingleThird, Providers: []string{"Dyn"}},
		}},
		{Name: "pinterest.com", Rank: 2, Deps: map[Service]Dep{
			DNS: {Class: ClassPrivate},
			CDN: {Class: ClassSingleThird, Providers: []string{"Fastly"}},
		}},
		{Name: "spotify.com", Rank: 3, Deps: map[Service]Dep{
			DNS: {Class: ClassPrivatePlusThird, Providers: []string{"Dyn"}},
		}},
		{Name: "netflix.com", Rank: 4, Deps: map[Service]Dep{
			DNS: {Class: ClassMultiThird, Providers: []string{"Dyn", "UltraDNS"}},
			CA:  {Class: ClassSingleThird, Providers: []string{"Symantec"}},
		}},
		{Name: "academia.edu", Rank: 5, Deps: map[Service]Dep{
			CDN: {Class: ClassSingleThird, Providers: []string{"MaxCDN"}},
		}},
	}
	providers := []*Provider{
		{Name: "Dyn", Service: DNS, Deps: map[Service]Dep{}},
		{Name: "UltraDNS", Service: DNS, Deps: map[Service]Dep{}},
		{Name: "Fastly", Service: CDN, Deps: map[Service]Dep{
			DNS: {Class: ClassSingleThird, Providers: []string{"Dyn"}},
		}},
		{Name: "MaxCDN", Service: CDN, Deps: map[Service]Dep{
			DNS: {Class: ClassSingleThird, Providers: []string{"AWS DNS"}},
		}},
		{Name: "AWS DNS", Service: DNS, Deps: map[Service]Dep{}},
		{Name: "Symantec", Service: CA, Deps: map[Service]Dep{
			DNS: {Class: ClassSingleThird, Providers: []string{"Verisign DNS"}},
		}},
		{Name: "Verisign DNS", Service: DNS, Deps: map[Service]Dep{}},
	}
	return NewGraph(sites, providers)
}

func TestDirectConcentrationAndImpact(t *testing.T) {
	g := paperGraph()
	// Direct: twitter (critical), spotify (mixed), netflix (multi) use Dyn.
	if c := g.Concentration("Dyn", DirectOnly()); c != 3 {
		t.Errorf("direct C(Dyn) = %d, want 3", c)
	}
	if i := g.Impact("Dyn", DirectOnly()); i != 1 {
		t.Errorf("direct I(Dyn) = %d, want 1 (twitter only)", i)
	}
}

func TestIndirectImpactViaCDN(t *testing.T) {
	g := paperGraph()
	// The Dyn incident chain: pinterest is critically dependent on Fastly,
	// which is critically dependent on Dyn.
	set := g.ImpactSet("Dyn", AllIndirect())
	if !set["twitter.com"] || !set["pinterest.com"] {
		t.Errorf("I(Dyn) with indirection = %v, want twitter+pinterest", set)
	}
	if set["spotify.com"] || set["netflix.com"] {
		t.Errorf("redundant sites must not be in I(Dyn): %v", set)
	}
	// Concentration additionally counts the redundant users.
	cset := g.ConcentrationSet("Dyn", AllIndirect())
	for _, w := range []string{"twitter.com", "pinterest.com", "spotify.com", "netflix.com"} {
		if !cset[w] {
			t.Errorf("C(Dyn) missing %s: %v", w, cset)
		}
	}
}

func TestIndirectImpactViaCA(t *testing.T) {
	g := paperGraph()
	set := g.ImpactSet("Verisign DNS", AllIndirect())
	if !set["netflix.com"] || len(set) != 1 {
		t.Errorf("I(Verisign DNS) = %v, want netflix only", set)
	}
	// With CA edges disabled, Verisign has no impact.
	if i := g.Impact("Verisign DNS", TraversalOpts{ViaProviders: []Service{CDN}}); i != 0 {
		t.Errorf("I(Verisign DNS) without CA edges = %d, want 0", i)
	}
}

func TestTraversalFilter(t *testing.T) {
	g := paperGraph()
	// AWS DNS impact flows only through MaxCDN (a CDN).
	if i := g.Impact("AWS DNS", TraversalOpts{ViaProviders: []Service{CDN}}); i != 1 {
		t.Errorf("I(AWS DNS) via CDN = %d, want 1 (academia)", i)
	}
	if i := g.Impact("AWS DNS", TraversalOpts{ViaProviders: []Service{CA}}); i != 0 {
		t.Errorf("I(AWS DNS) via CA = %d, want 0", i)
	}
}

func TestCycleTermination(t *testing.T) {
	// Two providers depending on each other must not loop.
	sites := []*Site{{Name: "w.com", Rank: 1, Deps: map[Service]Dep{
		CDN: {Class: ClassSingleThird, Providers: []string{"P1"}},
	}}}
	providers := []*Provider{
		{Name: "P1", Service: CDN, Deps: map[Service]Dep{
			DNS: {Class: ClassSingleThird, Providers: []string{"P2"}},
		}},
		{Name: "P2", Service: DNS, Deps: map[Service]Dep{
			CDN: {Class: ClassSingleThird, Providers: []string{"P1"}},
		}},
	}
	g := NewGraph(sites, providers)
	if i := g.Impact("P2", AllIndirect()); i != 1 {
		t.Errorf("I(P2) = %d, want 1", i)
	}
	if i := g.Impact("P1", AllIndirect()); i != 1 {
		t.Errorf("I(P1) = %d, want 1", i)
	}
}

func TestTopProviders(t *testing.T) {
	g := paperGraph()
	top := g.TopProviders(DNS, DirectOnly(), false, 2)
	if len(top) != 2 || top[0].Name != "Dyn" {
		t.Fatalf("top DNS providers = %+v", top)
	}
	if top[0].Concentration != 3 || top[0].Impact != 1 {
		t.Errorf("Dyn stats = %+v", top[0])
	}
	// Ranking by transitive impact promotes providers with heavy CA/CDN use.
	topI := g.TopProviders(DNS, AllIndirect(), true, 3)
	if topI[0].Name != "Dyn" || topI[0].Impact != 2 {
		t.Errorf("indirect top = %+v", topI)
	}
}

func TestCriticalDepsPerSite(t *testing.T) {
	g := paperGraph()
	direct := g.CriticalDepsPerSite(false)
	if direct["pinterest.com"] != 1 {
		t.Errorf("direct critical deps of pinterest = %d, want 1", direct["pinterest.com"])
	}
	indirect := g.CriticalDepsPerSite(true)
	if indirect["pinterest.com"] != 2 { // Fastly + Dyn
		t.Errorf("indirect critical deps of pinterest = %d, want 2", indirect["pinterest.com"])
	}
	if indirect["netflix.com"] != 2 { // Symantec + Verisign (DNS is redundant)
		t.Errorf("indirect critical deps of netflix = %d, want 2", indirect["netflix.com"])
	}
	if indirect["spotify.com"] != 0 {
		t.Errorf("spotify has redundancy, deps = %d", indirect["spotify.com"])
	}
}

func TestServiceBandsCumulative(t *testing.T) {
	var sites []*Site
	// 1000 sites: ranks 1..1000; all have DNS; first one private, rest single.
	for i := 1; i <= 1000; i++ {
		class := ClassSingleThird
		if i == 1 {
			class = ClassPrivate
		}
		sites = append(sites, &Site{Name: itoa(i), Rank: i, Deps: map[Service]Dep{
			DNS: {Class: class, Providers: []string{"P"}},
		}})
	}
	g := NewGraph(sites, []*Provider{{Name: "P", Service: DNS}})
	bands := ServiceBands(g, DNS, 1000)
	if bands[0].Total != 1 || bands[0].Private != 1 {
		t.Errorf("band0 = %+v", bands[0])
	}
	if bands[3].Total != 1000 || bands[3].Single != 999 {
		t.Errorf("band3 = %+v", bands[3])
	}
	if got := bands[3].Critical(); got < 0.99 {
		t.Errorf("band3 critical = %f", got)
	}
	if bands[1].Label != "k=10" || bands[3].Label != "k=1K" {
		t.Errorf("labels = %q %q", bands[1].Label, bands[3].Label)
	}
}

func TestConcentrationCDF(t *testing.T) {
	var sites []*Site
	for i := 1; i <= 100; i++ {
		p := "Small" + itoa(i)
		if i <= 80 {
			p = "Big"
		}
		sites = append(sites, &Site{Name: itoa(i), Rank: i, Deps: map[Service]Dep{
			DNS: {Class: ClassSingleThird, Providers: []string{p}},
		}})
	}
	g := NewGraph(sites, nil)
	cdf := ConcentrationCDF(g, DNS)
	if len(cdf) != 21 {
		t.Fatalf("cdf length = %d, want 21", len(cdf))
	}
	if cdf[0].Coverage != 0.8 {
		t.Errorf("first provider coverage = %f, want 0.8", cdf[0].Coverage)
	}
	if got := ProvidersForCoverage(cdf, 0.8); got != 1 {
		t.Errorf("ProvidersForCoverage(0.8) = %d, want 1", got)
	}
	if got := ProvidersForCoverage(cdf, 1.0); got != 21 {
		t.Errorf("ProvidersForCoverage(1.0) = %d, want 21", got)
	}
	if got := ProvidersForCoverage(nil, 0.5); got != 0 {
		t.Errorf("empty cdf = %d, want 0", got)
	}
	if got := DistinctProviders(g, DNS); got != 21 {
		t.Errorf("DistinctProviders = %d", got)
	}
}

func TestModeTrends(t *testing.T) {
	old := SiteClasses{
		"a.com": ClassPrivate, "b.com": ClassSingleThird,
		"c.com": ClassMultiThird, "d.com": ClassSingleThird,
		"e.com": ClassSingleThird, "f.com": ClassUnknown,
	}
	new := SiteClasses{
		"a.com": ClassSingleThird, "b.com": ClassPrivate,
		"c.com": ClassSingleThird, "d.com": ClassPrivatePlusThird,
		"e.com": ClassSingleThird, "f.com": ClassSingleThird,
	}
	ranks := map[string]int{"a.com": 1, "b.com": 2, "c.com": 3, "d.com": 4, "e.com": 5}
	rows := ModeTrends(old, new, ranks, 5)
	last := rows[3]
	if last.PvtToSingle != 20 || last.SingleToPvt != 20 ||
		last.RedToNoRed != 20 || last.NoRedToRed != 20 {
		t.Errorf("trend row = %+v", last)
	}
	// critical: old 3 (b,d,e), new 3 (a,c,e) → delta 0.
	if last.CriticalDelta != 0 {
		t.Errorf("critical delta = %f, want 0", last.CriticalDelta)
	}
}

func TestStaplingTrends(t *testing.T) {
	old := map[string]bool{"a.com": true, "b.com": false, "c.com": false, "d.com": true}
	new := map[string]bool{"a.com": false, "b.com": true, "c.com": false, "d.com": true}
	ranks := map[string]int{"a.com": 1, "b.com": 2, "c.com": 3, "d.com": 4}
	rows := StaplingTrends(old, new, ranks, 4)
	last := rows[3]
	if last.StapleToNo != 25 || last.NoToStaple != 25 || last.CriticalDelta != 0 {
		t.Errorf("stapling row = %+v", last)
	}
}

func TestProviderTrends(t *testing.T) {
	old := map[string]DepClass{
		"CA1": ClassPrivate, "CA2": ClassSingleThird, "CA3": ClassMultiThird,
		"CA4": ClassSingleThird, "CA5": ClassNone, "CA6": ClassSingleThird,
		"Gone": ClassSingleThird,
	}
	new := map[string]DepClass{
		"CA1": ClassSingleThird, "CA2": ClassPrivate, "CA3": ClassSingleThird,
		"CA4": ClassMultiThird, "CA5": ClassSingleThird, "CA6": ClassSingleThird,
	}
	tr := ProviderTrends(old, new)
	if tr.Total != 6 {
		t.Errorf("total = %d", tr.Total)
	}
	if tr.PvtToSingle != 1 || tr.SingleToPvt != 1 || tr.RedToNoRed != 1 ||
		tr.NoRedToRed != 1 || tr.NoneToThird != 1 {
		t.Errorf("trend = %+v", tr)
	}
	// old critical: CA2, CA4, CA6 = 3; new critical: CA1, CA3, CA5, CA6 = 4.
	if tr.CriticalDelta != 1 {
		t.Errorf("critical delta = %d, want 1", tr.CriticalDelta)
	}
}

func TestDepClassPredicates(t *testing.T) {
	if !ClassSingleThird.Critical() || ClassMultiThird.Critical() {
		t.Error("Critical wrong")
	}
	if !ClassPrivatePlusThird.Redundant() || ClassSingleThird.Redundant() {
		t.Error("Redundant wrong")
	}
	if ClassPrivate.UsesThird() || !ClassMultiThird.UsesThird() {
		t.Error("UsesThird wrong")
	}
	for _, c := range []DepClass{ClassNone, ClassPrivate, ClassSingleThird, ClassMultiThird, ClassPrivatePlusThird, ClassUnknown} {
		if c.String() == "" {
			t.Error("empty String()")
		}
	}
	for _, s := range Services {
		if s.String() == "" {
			t.Error("empty service name")
		}
	}
}

func BenchmarkImpactTransitive(b *testing.B) {
	// A star of 200 providers each with 500 critical sites, all providers
	// critically on one root DNS provider.
	var sites []*Site
	providers := []*Provider{{Name: "Root", Service: DNS}}
	for p := 0; p < 200; p++ {
		pname := "CDN" + itoa(p)
		providers = append(providers, &Provider{
			Name: pname, Service: CDN,
			Deps: map[Service]Dep{DNS: {Class: ClassSingleThird, Providers: []string{"Root"}}},
		})
		for s := 0; s < 500; s++ {
			sites = append(sites, &Site{
				Name: pname + "-" + itoa(s), Rank: len(sites) + 1,
				Deps: map[Service]Dep{CDN: {Class: ClassSingleThird, Providers: []string{pname}}},
			})
		}
	}
	g := NewGraph(sites, providers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.Impact("Root", AllIndirect()); got != 100000 {
			b.Fatalf("impact = %d", got)
		}
	}
}
