package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomGraphSpec generates a random but well-formed graph: sites with
// random per-service arrangements (including absent services, private
// infrastructure and chain edges) and providers with random inter-service
// dependencies, including cycles. Returns equivalent pointer and compact
// representations built from the same draw.
func randomGraphSpec(t *testing.T, rng *rand.Rand, nSites, nProviders int) (*Graph, *CompactGraph) {
	t.Helper()
	provNames := make([]string, nProviders)
	for i := range provNames {
		provNames[i] = fmt.Sprintf("prov-%02d", i)
	}
	privNames := []string{"own-cdn-a", "own-cdn-b", "own-pki-a"}
	vendorNames := []string{"vendor-x.net", "vendor-y.net", "vendor-z.net"}
	classes := []DepClass{ClassNone, ClassPrivate, ClassSingleThird, ClassMultiThird, ClassPrivatePlusThird, ClassUnknown}

	pick := func(pool []string, n int) []string {
		out := make([]string, 0, n)
		for len(out) < n {
			c := pool[rng.Intn(len(pool))]
			dup := false
			for _, o := range out {
				if o == c {
					dup = true
				}
			}
			if !dup {
				out = append(out, c)
			}
		}
		return out
	}

	b := NewCompactBuilder()
	sites := make([]*Site, nSites)
	// Some private candidates should fail the existence check, as they do
	// when the inter-service pass cannot resolve a node.
	exists := func(_ Service, name string) bool { return name != "own-cdn-b" }
	for i := range sites {
		name := fmt.Sprintf("site-%03d.com", i)
		s := &Site{Name: name, Rank: i + 1, Deps: make(map[Service]Dep)}
		b.AddSite(name, i+1)
		for _, svc := range Services {
			if svc != DNS && rng.Intn(3) == 0 {
				continue // service absent (DNS is always measured)
			}
			cls := classes[rng.Intn(len(classes))]
			var provs []string
			if cls.UsesThird() {
				n := 1
				if cls == ClassMultiThird || cls == ClassPrivatePlusThird {
					n = 2
				}
				provs = pick(provNames, n)
			}
			s.Deps[svc] = Dep{Class: cls, Providers: provs}
			b.SetDep(svc, cls, provs)
		}
		if rng.Intn(4) == 0 {
			cand := privNames[rng.Intn(len(privNames))]
			svc := Services[rng.Intn(2)+1] // CDN or CA
			if exists(svc, cand) {
				if s.PrivateInfra == nil {
					s.PrivateInfra = make(map[Service][]string)
				}
				s.PrivateInfra[svc] = append(s.PrivateInfra[svc], cand)
			}
			b.AddPrivateCandidate(svc, cand)
		}
		if rng.Intn(3) == 0 {
			for _, v := range pick(vendorNames, 1+rng.Intn(2)) {
				d := 1 + rng.Intn(3)
				s.Chains = append(s.Chains, ChainEdge{Provider: v, Depth: d})
				b.AddChain(v, d)
			}
		}
		sites[i] = s
	}

	// Providers: random service, random deps on other providers (cycles
	// allowed and likely), plus vendor nodes with their own DNS deps.
	var providers []*Provider
	for i, name := range provNames {
		p := &Provider{Name: name, Service: Service(rng.Intn(3)), Deps: make(map[Service]Dep)}
		if rng.Intn(2) == 0 {
			cls := classes[rng.Intn(len(classes))]
			var deps []string
			if cls.UsesThird() {
				deps = pick(provNames, 1+rng.Intn(2))
				if deps[0] == name && len(provNames) > 1 {
					deps[0] = provNames[(i+1)%len(provNames)]
				}
			}
			p.Deps[DNS] = Dep{Class: cls, Providers: deps}
		}
		if rng.Intn(3) == 0 {
			cls := []DepClass{ClassSingleThird, ClassMultiThird}[rng.Intn(2)]
			p.Deps[CDN] = Dep{Class: cls, Providers: pick(provNames, 1)}
		}
		providers = append(providers, p)
	}
	for _, v := range vendorNames {
		providers = append(providers, &Provider{
			Name:    v,
			Service: Resource,
			Deps:    map[Service]Dep{DNS: {Class: ClassSingleThird, Providers: pick(provNames, 1)}},
		})
	}

	return NewGraph(sites, providers), b.Build(providers, exists)
}

// traversalVariants are the opts the report surfaces actually query.
func traversalVariants() []TraversalOpts {
	return []TraversalOpts{
		DirectOnly(),
		AllIndirect(),
		AllImplicit(),
		{ViaProviders: []Service{DNS}},
		{ViaProviders: []Service{CA}},
		{ViaProviders: []Service{CDN, CA}},
	}
}

// universeNames is the union of every name either representation can score.
func universeNames(g *Graph, cg *CompactGraph) []string {
	seen := make(map[string]bool)
	var names []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for name := range g.Providers {
		add(name)
	}
	for _, svcUsers := range g.usersOf {
		for name := range svcUsers {
			add(name)
		}
	}
	for name := range g.privateUsersOf {
		add(name)
	}
	for name := range g.providerUsersOf {
		add(name)
	}
	add("never-seen-provider") // zero on both sides
	return names
}

// TestCompactGraphMetricsEqualRandom is the tentpole property test: on
// random graphs, the compact engine's C_p/I_p equal the pointer graph's for
// every name under every traversal, as do site-class counts, TopProviders
// rankings, and the fully-inflated round trip.
func TestCompactGraphMetricsEqualRandom(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nSites := 20 + rng.Intn(60)
		nProviders := 4 + rng.Intn(10)
		g, cg := randomGraphSpec(t, rng, nSites, nProviders)

		if cg.NSites() != len(g.Sites) {
			t.Fatalf("seed %d: NSites = %d, want %d", seed, cg.NSites(), len(g.Sites))
		}
		for _, opts := range traversalVariants() {
			for _, name := range universeNames(g, cg) {
				wantC := len(g.ConcentrationSet(name, opts))
				wantI := len(g.ImpactSet(name, opts))
				if got := cg.Concentration(name, opts); got != wantC {
					t.Fatalf("seed %d via %v: C(%s) = %d, want %d", seed, opts.ViaProviders, name, got, wantC)
				}
				if got := cg.Impact(name, opts); got != wantI {
					t.Fatalf("seed %d via %v: I(%s) = %d, want %d", seed, opts.ViaProviders, name, got, wantI)
				}
			}
		}

		for _, svc := range Services {
			want := make(map[DepClass]int)
			for _, s := range g.Sites {
				if d, ok := s.Deps[svc]; ok {
					want[d.Class]++
				}
			}
			got := cg.ClassCounts(svc)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: ClassCounts(%s) = %v, want %v", seed, svc, got, want)
			}
		}

		for _, svc := range AllServices {
			for _, byImpact := range []bool{false, true} {
				want := g.topProvidersRecursive(svc, AllIndirect(), byImpact, 10)
				got := cg.TopProviders(svc, AllIndirect(), byImpact, 10)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: TopProviders(%s, byImpact=%v)\n got %v\nwant %v",
						seed, svc, byImpact, got, want)
				}
			}
		}

		// Round trip: the inflated pointer graph must match the original
		// node-for-node.
		inf := cg.Inflate()
		if len(inf.Sites) != len(g.Sites) {
			t.Fatalf("seed %d: inflate site count %d != %d", seed, len(inf.Sites), len(g.Sites))
		}
		for i, want := range g.Sites {
			got := inf.Sites[i]
			if got.Name != want.Name || got.Rank != want.Rank {
				t.Fatalf("seed %d site %d: identity mismatch %s/%d vs %s/%d",
					seed, i, got.Name, got.Rank, want.Name, want.Rank)
			}
			if !reflect.DeepEqual(got.Deps, want.Deps) {
				t.Fatalf("seed %d site %s: Deps %v != %v", seed, want.Name, got.Deps, want.Deps)
			}
			if !reflect.DeepEqual(got.PrivateInfra, want.PrivateInfra) {
				t.Fatalf("seed %d site %s: PrivateInfra %v != %v", seed, want.Name, got.PrivateInfra, want.PrivateInfra)
			}
			if !reflect.DeepEqual(got.Chains, want.Chains) {
				t.Fatalf("seed %d site %s: Chains %v != %v", seed, want.Name, got.Chains, want.Chains)
			}
		}
		if len(inf.Providers) != len(g.Providers) {
			t.Fatalf("seed %d: inflate provider count %d != %d", seed, len(inf.Providers), len(g.Providers))
		}
		for name, want := range g.Providers {
			got := inf.Providers[name]
			if got == nil || got.Service != want.Service || !reflect.DeepEqual(got.Deps, want.Deps) {
				t.Fatalf("seed %d provider %s: %+v != %+v", seed, name, got, want)
			}
		}
	}
}

// TestCompactGraphEmpty: a zero-row build must not panic anywhere.
func TestCompactGraphEmpty(t *testing.T) {
	cg := NewCompactBuilder().Build(nil, func(Service, string) bool { return false })
	if cg.NSites() != 0 || cg.NProviders() != 0 {
		t.Fatalf("empty graph: %d sites, %d providers", cg.NSites(), cg.NProviders())
	}
	if got := cg.Concentration("anything", AllIndirect()); got != 0 {
		t.Fatalf("empty graph concentration = %d", got)
	}
	if tp := cg.TopProviders(DNS, AllIndirect(), false, 5); len(tp) != 0 {
		t.Fatalf("empty graph TopProviders = %v", tp)
	}
	g := cg.Inflate()
	if len(g.Sites) != 0 || len(g.Providers) != 0 {
		t.Fatal("empty inflate not empty")
	}
}

// TestCompactGraphBytes: the columnar accounting must be far below the
// pointer representation's per-site footprint even before string sharing.
func TestCompactGraphBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	_, cg := randomGraphSpec(t, rng, 200, 8)
	b := cg.Bytes()
	if b == 0 {
		t.Fatal("Bytes() = 0")
	}
	perSite := float64(b) / float64(cg.NSites())
	// Each site carries a few uint32 ids + class bytes; anything beyond a
	// couple hundred bytes/site means the layout regressed to per-site
	// allocations.
	if perSite > 512 {
		t.Fatalf("bytes/site = %.1f, want <= 512", perSite)
	}
}

// TestCompactBuilderPanics: misuse fails loudly.
func TestCompactBuilderPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("SetDep before AddSite", func() {
		NewCompactBuilder().SetDep(DNS, ClassPrivate, nil)
	})
	mustPanic("AddChain before AddSite", func() {
		NewCompactBuilder().AddChain("v", 1)
	})
	mustPanic("SetDep Resource", func() {
		b := NewCompactBuilder()
		b.AddSite("a.com", 1)
		b.SetDep(Resource, ClassSingleThird, []string{"v"})
	})
	mustPanic("double Build", func() {
		b := NewCompactBuilder()
		b.Build(nil, func(Service, string) bool { return true })
		b.Build(nil, func(Service, string) bool { return true })
	})
}
