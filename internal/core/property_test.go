package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomGraph builds a random but structurally valid dependency graph:
// sites over three services with arbitrary classes, providers with random
// inter-service dependencies (possibly cyclic), and occasional private
// infrastructure nodes so the hidden-dependency path is exercised too.
func randomGraph(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	nProviders := 3 + rng.Intn(10)
	providerNames := make([]string, nProviders)
	var providers []*Provider
	for i := range providerNames {
		providerNames[i] = "P" + itoa(i)
	}
	for i, name := range providerNames {
		p := &Provider{
			Name:    name,
			Service: Service(rng.Intn(3)),
			Deps:    map[Service]Dep{},
		}
		if rng.Intn(3) == 0 && nProviders > 1 {
			// Depend on another provider (cycles allowed).
			other := providerNames[rng.Intn(nProviders)]
			if other != name {
				class := ClassSingleThird
				if rng.Intn(3) == 0 {
					class = ClassMultiThird
				}
				p.Deps[Service(rng.Intn(3))] = Dep{Class: class, Providers: []string{other}}
			}
		}
		providers = append(providers, p)
		_ = i
	}
	nSites := 5 + rng.Intn(40)
	var sites []*Site
	classes := []DepClass{ClassPrivate, ClassSingleThird, ClassMultiThird, ClassPrivatePlusThird, ClassUnknown}
	for i := 0; i < nSites; i++ {
		s := &Site{Name: "s" + itoa(i), Rank: i + 1, Deps: map[Service]Dep{}}
		for _, svc := range Services {
			if rng.Intn(2) == 0 {
				continue
			}
			class := classes[rng.Intn(len(classes))]
			var deps []string
			if class.UsesThird() {
				deps = []string{providerNames[rng.Intn(nProviders)]}
				if class == ClassMultiThird && nProviders > 1 {
					second := providerNames[rng.Intn(nProviders)]
					if second != deps[0] {
						deps = append(deps, second)
					}
				}
			}
			s.Deps[svc] = Dep{Class: class, Providers: deps}
		}
		if rng.Intn(4) == 0 {
			svc := Service(rng.Intn(3))
			s.PrivateInfra = map[Service][]string{
				svc: {providerNames[rng.Intn(nProviders)]},
			}
		}
		sites = append(sites, s)
	}
	return NewGraph(sites, providers)
}

// Property: for every provider and traversal, ImpactSet ⊆ ConcentrationSet
// (critical dependency implies dependency).
func TestPropertyImpactSubsetOfConcentration(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed)
		for name := range g.Providers {
			for _, opts := range []TraversalOpts{DirectOnly(), AllIndirect(), {ViaProviders: []Service{CA}}} {
				imp := g.ImpactSet(name, opts)
				conc := g.ConcentrationSet(name, opts)
				for site := range imp {
					if !conc[site] {
						t.Logf("provider %s: %s in impact but not concentration", name, site)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: widening the traversal never shrinks the sets.
func TestPropertyTraversalMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed)
		for name := range g.Providers {
			dImp := g.Impact(name, DirectOnly())
			aImp := g.Impact(name, AllIndirect())
			if aImp < dImp {
				return false
			}
			dC := g.Concentration(name, DirectOnly())
			aC := g.Concentration(name, AllIndirect())
			if aC < dC {
				return false
			}
			// Partial traversal is between the two.
			for _, svc := range Services {
				p := g.Impact(name, TraversalOpts{ViaProviders: []Service{svc}})
				if p < dImp || p > aImp {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: direct concentration equals the count of distinct sites listing
// the provider in a third-party dep or owning it as private infrastructure.
func TestPropertyDirectConcentrationMatchesManualCount(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed)
		for name := range g.Providers {
			manual := map[string]bool{}
			for _, s := range g.Sites {
				for _, d := range s.Deps {
					if !d.Class.UsesThird() {
						continue
					}
					for _, p := range d.Providers {
						if p == name {
							manual[s.Name] = true
						}
					}
				}
				for _, infra := range s.PrivateInfra {
					for _, p := range infra {
						if p == name {
							manual[s.Name] = true
						}
					}
				}
			}
			if g.Concentration(name, DirectOnly()) != len(manual) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the batched metrics engine agrees exactly with the seed
// per-provider recursion — counts match the recursive set sizes for every
// provider and traversal, and TopProviders returns byte-identical
// ProviderStat slices to the recursive reference implementation.
func TestPropertyBatchedEngineMatchesRecursive(t *testing.T) {
	optsList := []TraversalOpts{
		DirectOnly(),
		AllIndirect(),
		{ViaProviders: []Service{CA}},
		{ViaProviders: []Service{DNS, CDN}},
	}
	f := func(seed int64) bool {
		g := randomGraph(seed)
		for _, opts := range optsList {
			for name := range g.Providers {
				if g.Concentration(name, opts) != len(g.ConcentrationSet(name, opts)) {
					t.Logf("seed %d: C(%s) mismatch", seed, name)
					return false
				}
				if g.Impact(name, opts) != len(g.ImpactSet(name, opts)) {
					t.Logf("seed %d: I(%s) mismatch", seed, name)
					return false
				}
			}
			for _, svc := range Services {
				for _, byImpact := range []bool{false, true} {
					batch := g.TopProviders(svc, opts, byImpact, 0)
					ref := g.topProvidersRecursive(svc, opts, byImpact, 0)
					if !reflect.DeepEqual(batch, ref) {
						t.Logf("seed %d svc %s byImpact %v:\nbatch: %+v\nref:   %+v",
							seed, svc, byImpact, batch, ref)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: every site's robustness score is in [0,1], and sites with a
// score of 1 have no critical providers.
func TestPropertyRobustnessBounds(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed)
		for _, s := range g.Sites {
			r, err := g.RobustnessOf(s.Name)
			if err != nil {
				return false
			}
			if r.Score < 0 || r.Score > 1 {
				return false
			}
			if r.Score == 1 && len(r.CriticalProviders) != 0 {
				return false
			}
			if len(r.CriticalProviders) > 0 && r.SharedFate == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the concentration CDF is monotonically non-decreasing and ends
// at 1 when any third-party user exists.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed)
		for _, svc := range Services {
			cdf := ConcentrationCDF(g, svc)
			prev := 0.0
			for _, p := range cdf {
				if p.Coverage < prev {
					return false
				}
				prev = p.Coverage
			}
			if len(cdf) > 0 && cdf[len(cdf)-1].Coverage != 1.0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
