package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestParseServiceResource: the delta wire format accepts the fourth service.
func TestParseServiceResource(t *testing.T) {
	svc, err := ParseService("resource")
	if err != nil {
		t.Fatal(err)
	}
	if svc != Resource {
		t.Fatalf("ParseService(resource) = %v", svc)
	}
}

// TestDeltaChainRoundtrip: chain edges and Resource providers survive the
// delta codec unchanged.
func TestDeltaChainRoundtrip(t *testing.T) {
	d := Delta{Ops: []Op{
		{Kind: OpSiteAdd, Site: &Site{
			Name: "c.com", Rank: 3,
			Deps:   map[Service]Dep{DNS: {Class: ClassSingleThird, Providers: []string{"dyn"}}},
			Chains: []ChainEdge{{Provider: "vendor.net", Depth: 2}, {Provider: "cdn-lib.io", Depth: 3}},
		}},
		{Kind: OpProviderSet, Provider: &Provider{Name: "vendor.net", Service: Resource,
			Deps: map[Service]Dep{DNS: {Class: ClassSingleThird, Providers: []string{"ns1"}}}}},
	}}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseDelta(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("roundtrip parse: %v\n%s", err, b)
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("roundtrip mismatch:\nin:  %+v\nout: %+v\nwire: %s", d, back, b)
	}
}

// TestParseDeltaRejectsBadChainEdge: malformed chain edges fail at decode
// time, before any graph is touched.
func TestParseDeltaRejectsBadChainEdge(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty provider", `{"ops":[{"op":"site-add","site":{"name":"c.com","rank":3,"chains":[{"provider":"","depth":2}]}}]}`},
		{"zero depth", `{"ops":[{"op":"site-add","site":{"name":"c.com","rank":3,"chains":[{"provider":"v.net","depth":0}]}}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDelta(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), "chain edge") {
				t.Fatalf("err = %v, want chain-edge rejection", err)
			}
		})
	}
}

// TestApplyChainSiteAdd: delta-adding a site with a chain edge updates the
// implicit traversal incrementally — the vendor's implicit impact grows, the
// direct (paper-semantics) numbers do not move.
func TestApplyChainSiteAdd(t *testing.T) {
	sites := []*Site{
		{Name: "a.com", Rank: 1, Deps: map[Service]Dep{
			DNS: {Class: ClassSingleThird, Providers: []string{"dyn"}},
		}},
	}
	providers := []*Provider{
		{Name: "dyn", Service: DNS, Deps: map[Service]Dep{}},
		{Name: "vendor.net", Service: Resource, Deps: map[Service]Dep{
			DNS: {Class: ClassSingleThird, Providers: []string{"dyn"}},
		}},
	}
	g := NewGraph(sites, providers)
	if got := g.Impact("vendor.net", AllImplicit()); got != 0 {
		t.Fatalf("pre-delta implicit I(vendor.net) = %d, want 0", got)
	}

	ng, _, err := g.Apply(Delta{Ops: []Op{{Kind: OpSiteAdd, Site: &Site{
		Name: "c.com", Rank: 2,
		Deps:   map[Service]Dep{DNS: {Class: ClassSingleThird, Providers: []string{"ns1"}}},
		Chains: []ChainEdge{{Provider: "vendor.net", Depth: 2}},
	}}, {Kind: OpProviderSet, Provider: &Provider{Name: "ns1", Service: DNS, Deps: map[Service]Dep{}}}}})
	if err != nil {
		t.Fatal(err)
	}
	// The chained site is a user of the vendor under any traversal (chain
	// edges are direct user edges in the Resource index)...
	if got := ng.Impact("vendor.net", AllImplicit()); got != 1 {
		t.Errorf("implicit I(vendor.net) = %d, want 1", got)
	}
	// ...but the cascade only continues THROUGH the vendor under the
	// implicit traversal: dyn picks up c.com implicitly, never directly.
	if got := ng.Impact("dyn", AllImplicit()); got != 2 {
		t.Errorf("implicit I(dyn) = %d, want 2 (a.com direct + c.com via vendor)", got)
	}
	if got := ng.Impact("dyn", AllIndirect()); got != 1 {
		t.Errorf("direct I(dyn) = %d, want 1 (AllIndirect must not cross vendor nodes)", got)
	}

	// Removing the chained site rolls the implicit numbers back.
	ng2, _, err := ng.Apply(Delta{Ops: []Op{{Kind: OpSiteRemove, Name: "c.com"}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := ng2.Impact("vendor.net", AllImplicit()); got != 0 {
		t.Errorf("after remove implicit I(vendor.net) = %d, want 0", got)
	}
}
