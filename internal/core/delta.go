package core

import (
	"fmt"
	"maps"
	"slices"
)

// This file implements graph deltas: small structural edits — a site added
// or removed, a dependency added, dropped or re-provisioned, a provider
// swapped — applied to an existing immutable Graph to produce a new
// immutable Graph. The paper's central question (have sites diversified
// between 2016 and 2020?) is a question about deltas between universes, and
// the ROADMAP's continuous-evolution timelines need many snapshots, not two.
//
// Apply never mutates the receiver. The new graph shares every untouched
// Site and Provider node with the old one; indexes are cloned at the map
// level and patched copy-on-write at the slice level, so both graphs stay
// independently valid (and independently cacheable) after the call. The
// metrics engine is carried across the delta when possible — see
// MetricsEngine.ApplyDelta in delta_metrics.go — so applying a single-site
// delta does not pay for a from-scratch condensation and propagation.

// OpKind identifies one delta operation.
type OpKind uint8

// Delta operation kinds.
const (
	// OpSiteAdd appends a new site node (Op.Site).
	OpSiteAdd OpKind = iota
	// OpSiteRemove removes the site named Op.Name.
	OpSiteRemove
	// OpSiteDep replaces the Op.Service arrangement of site Op.Name with
	// Op.Dep — covering dependency addition, removal (a zero Dep deletes the
	// service entry) and redundancy changes (single-third → multi-third).
	OpSiteDep
	// OpSwap replaces provider Op.From with Op.To in site Op.Name's
	// Op.Service arrangement — the paper's diversification move (e.g.
	// swapping Dyn for a different managed-DNS operator after the incident).
	OpSwap
	// OpProviderSet adds or replaces the provider node Op.Provider.
	OpProviderSet
	// OpProviderRemove deletes the provider node named Op.Name. Sites and
	// providers still referencing the name keep their edges; the name simply
	// loses its own outgoing dependencies.
	OpProviderRemove
)

// String names the op kind, matching the JSON wire encoding.
func (k OpKind) String() string {
	switch k {
	case OpSiteAdd:
		return "site-add"
	case OpSiteRemove:
		return "site-remove"
	case OpSiteDep:
		return "site-dep"
	case OpSwap:
		return "swap"
	case OpProviderSet:
		return "provider-set"
	case OpProviderRemove:
		return "provider-remove"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one delta operation. Which fields are meaningful depends on Kind;
// see the OpKind constants.
type Op struct {
	Kind OpKind
	// Name is the target site name (OpSiteRemove, OpSiteDep, OpSwap) or
	// provider name (OpProviderRemove).
	Name string
	// Site is the node payload of OpSiteAdd. Apply takes ownership: the
	// caller must not mutate it afterwards.
	Site *Site
	// Service selects the arrangement OpSiteDep/OpSwap edits.
	Service Service
	// Dep is the new arrangement for OpSiteDep; the zero value deletes the
	// service entry.
	Dep Dep
	// From and To are the swapped provider identities for OpSwap.
	From, To string
	// Provider is the node payload of OpProviderSet (owned by Apply).
	Provider *Provider
}

// Delta is an ordered list of operations applied atomically: either every
// op validates and a new graph is returned, or the original graph is left
// untouched and an error pinpoints the failing op.
type Delta struct {
	Ops []Op
}

// ApplyStats reports what a Delta touched, so callers (the serving layer,
// the timeline replayer) can record telemetry without core importing it.
type ApplyStats struct {
	// Ops is the number of operations applied.
	Ops int
	// SitesAdded / SitesRemoved count site-universe changes.
	SitesAdded, SitesRemoved int
	// DirtyNames is the number of provider names whose C_p/I_p counts may
	// have changed (touched names plus their transitive dependency closure).
	DirtyNames int
	// Structural reports that provider-to-provider edges changed, which
	// invalidates the cached condensation.
	Structural bool
	// Rebuilt reports that the metrics engine state could not be carried
	// across the delta (structural change, dirtiness past the threshold, or
	// no cached engine) and the next metrics query pays a from-scratch fill.
	Rebuilt bool
	// PatchedEntries counts cached traversal results carried incrementally.
	PatchedEntries int
}

// DeltaEffect summarizes a delta's touched surface. Graph.Apply computes
// it; MetricsEngine.ApplyDelta consumes it to decide what to recompute.
type DeltaEffect struct {
	// Touched holds the provider names whose direct-user lists an op
	// actually edited — only these need their base rows re-derived.
	Touched map[string]bool
	// Dirty holds every provider name whose concentration or impact count
	// may differ on the new graph: the touched names plus everything those
	// names transitively depend on (set inclusion flows from a dependant
	// into every provider it uses, so a base change at p dirties p and all
	// providers p's chain rests on). Touched ⊆ Dirty.
	Dirty map[string]bool
	// AddedSites are site nodes new to the universe, in application order.
	AddedSites []*Site
	// RemovedSites counts removed site nodes.
	RemovedSites int
	// Structural is true when provider nodes (and thus provider-to-provider
	// edges) changed: the condensation must be rebuilt from scratch.
	Structural bool
}

// Apply produces a new graph with d applied. The receiver is never
// mutated: untouched nodes are shared, indexes are patched copy-on-write,
// and the receiver's cached metrics engine (if any) is carried forward
// incrementally. An empty delta returns the receiver itself.
func (g *Graph) Apply(d Delta) (*Graph, ApplyStats, error) {
	stats := ApplyStats{Ops: len(d.Ops)}
	if len(d.Ops) == 0 {
		return g, stats, nil
	}
	ng := &Graph{
		Sites:           slices.Clone(g.Sites),
		Providers:       maps.Clone(g.Providers),
		usersOf:         cloneUserIndex(g.usersOf),
		criticalUsersOf: cloneUserIndex(g.criticalUsersOf),
		providerUsersOf: maps.Clone(g.providerUsersOf),
		privateUsersOf:  maps.Clone(g.privateUsersOf),
		metricsWorkers:  g.metricsWorkers,
	}
	// ng's own site index stays unbuilt (it is lazily derived from ng.Sites
	// on first query); op lookups go through the base graph's index plus an
	// overlay of the nodes this delta has already replaced, so a single-site
	// delta never pays for cloning a 100K-entry map.
	cx := &applyCtx{base: g, ng: ng, touched: make(map[string]*Site)}
	eff := &DeltaEffect{Touched: make(map[string]bool)}
	for i := range d.Ops {
		if err := cx.applyOp(&d.Ops[i], eff); err != nil {
			return nil, stats, fmt.Errorf("delta op %d (%s): %w", i, d.Ops[i].Kind, err)
		}
	}
	eff.Dirty = maps.Clone(eff.Touched)
	ng.dirtyClosure(eff.Dirty)
	stats.SitesAdded = len(eff.AddedSites)
	stats.SitesRemoved = eff.RemovedSites
	stats.DirtyNames = len(eff.Dirty)
	stats.Structural = eff.Structural

	g.metricsMu.Lock()
	old := g.metrics
	g.metricsMu.Unlock()
	if old == nil {
		// Nothing cached to carry; the new graph builds its engine lazily.
		stats.Rebuilt = true
		return ng, stats, nil
	}
	eng, patched := old.ApplyDelta(ng, eff)
	ng.metrics = eng
	stats.Rebuilt = patched == 0
	stats.PatchedEntries = patched
	return ng, stats, nil
}

// cloneUserIndex clones the two-level service→provider→sites index at the
// map level; the site slices stay shared until an op patches them.
func cloneUserIndex(in map[Service]map[string][]*Site) map[Service]map[string][]*Site {
	out := make(map[Service]map[string][]*Site, len(in))
	for svc, m := range in {
		out[svc] = maps.Clone(m)
	}
	return out
}

// applyCtx threads one Apply call's working state: the base graph, whose
// already-built site index serves name lookups, and an overlay of the site
// nodes this delta has replaced (nil recording a removal) so later ops in
// the same delta see earlier edits.
type applyCtx struct {
	base    *Graph
	ng      *Graph
	touched map[string]*Site
}

// site resolves a site name against the overlay first, then the base index.
func (cx *applyCtx) site(name string) *Site {
	if s, ok := cx.touched[name]; ok {
		return s
	}
	return cx.base.Site(name)
}

// applyOp applies one op to cx.ng (which owns its top-level indexes but
// still shares slices with the original graph), recording the touched
// surface.
func (cx *applyCtx) applyOp(op *Op, eff *DeltaEffect) error {
	ng := cx.ng
	switch op.Kind {
	case OpSiteAdd:
		s := op.Site
		if s == nil || s.Name == "" {
			return fmt.Errorf("site payload missing or unnamed")
		}
		if cx.site(s.Name) != nil {
			return fmt.Errorf("site %q already exists", s.Name)
		}
		ng.Sites = append(ng.Sites, s)
		cx.touched[s.Name] = s
		ng.indexSite(s)
		markSiteDirty(eff.Touched, s)
		eff.AddedSites = append(eff.AddedSites, s)
		return nil

	case OpSiteRemove:
		s := cx.site(op.Name)
		if s == nil {
			return fmt.Errorf("unknown site %q", op.Name)
		}
		ng.unindexSite(s)
		cx.touched[op.Name] = nil
		i := slices.Index(ng.Sites, s)
		if i >= 0 {
			ng.Sites = slices.Delete(ng.Sites, i, i+1)
		}
		markSiteDirty(eff.Touched, s)
		eff.RemovedSites++
		return nil

	case OpSiteDep:
		return cx.replaceSiteDep(op.Name, op.Service, op.Dep, eff)

	case OpSwap:
		s := cx.site(op.Name)
		if s == nil {
			return fmt.Errorf("unknown site %q", op.Name)
		}
		if op.To == "" {
			return fmt.Errorf("swap on %q needs a non-empty replacement provider", op.Name)
		}
		d, ok := s.Deps[op.Service]
		if !ok {
			return fmt.Errorf("site %q has no %s arrangement", op.Name, op.Service)
		}
		if !slices.Contains(d.Providers, op.From) {
			return fmt.Errorf("site %q does not use %q for %s", op.Name, op.From, op.Service)
		}
		nd := Dep{Class: d.Class, Providers: make([]string, 0, len(d.Providers))}
		for _, p := range d.Providers {
			if p == op.From {
				p = op.To
			}
			if !slices.Contains(nd.Providers, p) {
				nd.Providers = append(nd.Providers, p)
			}
		}
		return cx.replaceSiteDep(op.Name, op.Service, nd, eff)

	case OpProviderSet:
		p := op.Provider
		if p == nil || p.Name == "" {
			return fmt.Errorf("provider payload missing or unnamed")
		}
		if old := ng.Providers[p.Name]; old != nil {
			ng.unindexProvider(old)
			markProviderDirty(eff.Touched, old)
		}
		ng.Providers[p.Name] = p
		ng.indexProvider(p)
		markProviderDirty(eff.Touched, p)
		eff.Touched[p.Name] = true
		eff.Structural = true
		return nil

	case OpProviderRemove:
		p := ng.Providers[op.Name]
		if p == nil {
			return fmt.Errorf("unknown provider %q", op.Name)
		}
		ng.unindexProvider(p)
		delete(ng.Providers, op.Name)
		markProviderDirty(eff.Touched, p)
		eff.Touched[op.Name] = true
		eff.Structural = true
		return nil
	}
	return fmt.Errorf("unknown op kind %d", op.Kind)
}

// replaceSiteDep swaps in a copy of the site with svc's arrangement set to
// d (or deleted for the zero Dep), re-pointing every index entry at the
// copy so neither graph sees a half-edited node.
func (cx *applyCtx) replaceSiteDep(name string, svc Service, d Dep, eff *DeltaEffect) error {
	ng := cx.ng
	s := cx.site(name)
	if s == nil {
		return fmt.Errorf("unknown site %q", name)
	}
	if d.Class.UsesThird() && len(d.Providers) == 0 {
		return fmt.Errorf("site %q: class %s requires providers", name, d.Class)
	}
	if old, ok := s.Deps[svc]; ok {
		markDepDirty(eff.Touched, old)
	}
	markDepDirty(eff.Touched, d)

	ns := &Site{
		Name:         s.Name,
		Rank:         s.Rank,
		Deps:         maps.Clone(s.Deps),
		PrivateInfra: s.PrivateInfra,
		Chains:       s.Chains,
	}
	if ns.Deps == nil {
		ns.Deps = make(map[Service]Dep, 1)
	}
	zero := d.Class == ClassNone && len(d.Providers) == 0
	if zero {
		delete(ns.Deps, svc)
	} else {
		ns.Deps[svc] = d
	}

	ng.unindexSite(s)
	if i := slices.Index(ng.Sites, s); i >= 0 {
		ng.Sites[i] = ns
	}
	cx.touched[name] = ns
	ng.indexSite(ns)
	return nil
}

// indexSite mirrors NewGraph's per-site indexing with copy-on-append slices.
func (ng *Graph) indexSite(s *Site) {
	for svc, d := range s.Deps {
		if !d.Class.UsesThird() {
			continue
		}
		for _, pname := range d.Providers {
			ng.usersOf[svc][pname] = appendCopy(ng.usersOf[svc][pname], s)
			if d.Class.Critical() {
				ng.criticalUsersOf[svc][pname] = appendCopy(ng.criticalUsersOf[svc][pname], s)
			}
		}
	}
	for _, infra := range s.PrivateInfra {
		for _, pname := range infra {
			ng.privateUsersOf[pname] = appendCopy(ng.privateUsersOf[pname], s)
		}
	}
	forEachChainProvider(s, func(pname string) {
		ng.usersOf[Resource][pname] = appendCopy(ng.usersOf[Resource][pname], s)
		ng.criticalUsersOf[Resource][pname] = appendCopy(ng.criticalUsersOf[Resource][pname], s)
	})
}

// forEachChainProvider visits each distinct chain-edge provider of s once,
// matching NewGraph's indexChainEdges dedup so delta-built indexes stay
// identical to from-scratch ones.
func forEachChainProvider(s *Site, fn func(string)) {
	if len(s.Chains) == 0 {
		return
	}
	var seen map[string]bool
	if len(s.Chains) > 1 {
		seen = make(map[string]bool, len(s.Chains))
	}
	for _, e := range s.Chains {
		if seen != nil {
			if seen[e.Provider] {
				continue
			}
			seen[e.Provider] = true
		}
		fn(e.Provider)
	}
}

// unindexSite removes every index entry pointing at s (by node identity).
func (ng *Graph) unindexSite(s *Site) {
	for svc, d := range s.Deps {
		if !d.Class.UsesThird() {
			continue
		}
		for _, pname := range d.Providers {
			setOrDelete(ng.usersOf[svc], pname, removeNode(ng.usersOf[svc][pname], s))
			if d.Class.Critical() {
				setOrDelete(ng.criticalUsersOf[svc], pname, removeNode(ng.criticalUsersOf[svc][pname], s))
			}
		}
	}
	for _, infra := range s.PrivateInfra {
		for _, pname := range infra {
			setOrDelete(ng.privateUsersOf, pname, removeNode(ng.privateUsersOf[pname], s))
		}
	}
	forEachChainProvider(s, func(pname string) {
		setOrDelete(ng.usersOf[Resource], pname, removeNode(ng.usersOf[Resource][pname], s))
		setOrDelete(ng.criticalUsersOf[Resource], pname, removeNode(ng.criticalUsersOf[Resource][pname], s))
	})
}

// indexProvider mirrors NewGraph's provider-edge indexing.
func (ng *Graph) indexProvider(p *Provider) {
	for _, d := range p.Deps {
		if !d.Class.UsesThird() {
			continue
		}
		for _, dep := range d.Providers {
			ng.providerUsersOf[dep] = appendCopy(ng.providerUsersOf[dep], p)
		}
	}
}

func (ng *Graph) unindexProvider(p *Provider) {
	for _, d := range p.Deps {
		if !d.Class.UsesThird() {
			continue
		}
		for _, dep := range d.Providers {
			setOrDelete(ng.providerUsersOf, dep, removeNode(ng.providerUsersOf[dep], p))
		}
	}
}

// appendCopy appends v to a freshly allocated copy of in — never into a
// slice the original graph may share.
func appendCopy[T any](in []T, v T) []T {
	out := make([]T, len(in)+1)
	copy(out, in)
	out[len(in)] = v
	return out
}

// removeNode filters every occurrence of v (by identity) out of a fresh
// copy of in; it returns in unchanged when v is absent.
func removeNode[T comparable](in []T, v T) []T {
	if !slices.Contains(in, v) {
		return in
	}
	out := make([]T, 0, len(in)-1)
	for _, x := range in {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// setOrDelete stores a patched slice back into the index, dropping the key
// entirely when the list is empty (NewGraph never creates empty entries, so
// this keeps the delta-built universe identical to a from-scratch one).
func setOrDelete[T any](m map[string][]T, key string, v []T) {
	if len(v) == 0 {
		delete(m, key)
		return
	}
	m[key] = v
}

// markSiteDirty seeds the touched set with every provider name a site's
// arrangements and private infrastructure reference.
func markSiteDirty(dirty map[string]bool, s *Site) {
	for _, d := range s.Deps {
		markDepDirty(dirty, d)
	}
	for _, infra := range s.PrivateInfra {
		for _, pname := range infra {
			dirty[pname] = true
		}
	}
	for _, e := range s.Chains {
		dirty[e.Provider] = true
	}
}

// markProviderDirty seeds the touched set with a provider node's dependency
// targets (the names whose sets gained or lost this provider's users).
func markProviderDirty(dirty map[string]bool, p *Provider) {
	for _, d := range p.Deps {
		markDepDirty(dirty, d)
	}
}

func markDepDirty(dirty map[string]bool, d Dep) {
	if !d.Class.UsesThird() {
		return
	}
	for _, pname := range d.Providers {
		dirty[pname] = true
	}
}

// dirtyClosure extends the seed set downstream: set(p) includes set(k) for
// every k depending on p, so when base(k) changes, every provider k's chain
// rests on changes too. Walking each seed's dependencies in the new graph
// (a superset of any traversal-filtered view, so one closure is safe for
// every cache key) marks exactly those names.
func (ng *Graph) dirtyClosure(dirty map[string]bool) {
	stack := make([]string, 0, len(dirty))
	for name := range dirty {
		stack = append(stack, name)
	}
	for len(stack) > 0 {
		name := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		p := ng.Providers[name]
		if p == nil {
			continue
		}
		for _, d := range p.Deps {
			if !d.Class.UsesThird() {
				continue
			}
			for _, t := range d.Providers {
				if !dirty[t] {
					dirty[t] = true
					stack = append(stack, t)
				}
			}
		}
	}
}
