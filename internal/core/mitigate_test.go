package core

import (
	"reflect"
	"testing"
)

// mitigationFixture builds a small graph with hand-checkable closures:
//
//	s1: DNS single dynect                        → contributes {dynect}
//	s2: DNS multi {dynect,awsdns}, CDN single fastly (fastly→DNS dynect)
//	                                             → contributes {fastly,dynect}
//	s3: DNS single awsdns, CA single digicert (digicert→DNS awsdns)
//	                                             → contributes {awsdns,digicert}
//	s4: private CDN cdn.s4 (cdn.s4→DNS dynect)   → contributes {cdn.s4,dynect}
//
// Aggregate before = 1+2+2+2 = 7. Called fresh per use so surgery tests can
// mutate their copy.
func mitigationFixture() *Graph {
	sites := []*Site{
		{Name: "s1", Rank: 1, Deps: map[Service]Dep{
			DNS: {Class: ClassSingleThird, Providers: []string{"dynect.net"}},
		}},
		{Name: "s2", Rank: 2, Deps: map[Service]Dep{
			DNS: {Class: ClassMultiThird, Providers: []string{"dynect.net", "awsdns.net"}},
			CDN: {Class: ClassSingleThird, Providers: []string{"fastly.net"}},
		}},
		{Name: "s3", Rank: 3, Deps: map[Service]Dep{
			DNS: {Class: ClassSingleThird, Providers: []string{"awsdns.net"}},
			CA:  {Class: ClassSingleThird, Providers: []string{"digicert.com"}},
		}},
		{Name: "s4", Rank: 4,
			Deps: map[Service]Dep{
				DNS: {Class: ClassPrivate},
			},
			PrivateInfra: map[Service][]string{
				CDN: {"cdn.s4.com"},
			}},
	}
	providers := []*Provider{
		{Name: "fastly.net", Service: CDN, Deps: map[Service]Dep{
			DNS: {Class: ClassSingleThird, Providers: []string{"dynect.net"}},
		}},
		{Name: "cdn.s4.com", Service: CDN, Deps: map[Service]Dep{
			DNS: {Class: ClassSingleThird, Providers: []string{"dynect.net"}},
		}},
		{Name: "digicert.com", Service: CA, Deps: map[Service]Dep{
			DNS: {Class: ClassSingleThird, Providers: []string{"awsdns.net"}},
		}},
	}
	return NewGraph(sites, providers)
}

func TestMitigationPlanSmall(t *testing.T) {
	g := mitigationFixture()
	plan := g.MitigationPlan(10, AllIndirect())

	if plan.Before != 7 {
		t.Fatalf("before = %d, want 7", plan.Before)
	}
	if plan.Candidates != 4 {
		t.Fatalf("candidates = %d, want 4 (s1 DNS, s2 CDN, s3 DNS, s3 CA)", plan.Candidates)
	}
	// Greedy order: s2 CDN removes {fastly,dynect} (gain 2); then s1 DNS and
	// s3 CA tie at gain 1 and break by site order; after s3 CA is picked,
	// s3 DNS's awsdns is no longer shadowed (gain 1). s4's private chain is
	// not mitigable, so its {cdn.s4,dynect} contribution stays.
	want := []MitigationOption{
		{Site: "s2", Rank: 2, Service: "CDN", Provider: "fastly.net", Gain: 2, Cumulative: 2},
		{Site: "s1", Rank: 1, Service: "DNS", Provider: "dynect.net", Gain: 1, Cumulative: 3},
		{Site: "s3", Rank: 3, Service: "CA", Provider: "digicert.com", Gain: 1, Cumulative: 4},
		{Site: "s3", Rank: 3, Service: "DNS", Provider: "awsdns.net", Gain: 1, Cumulative: 5},
	}
	if !reflect.DeepEqual(plan.Options, want) {
		t.Fatalf("options = %+v\nwant %+v", plan.Options, want)
	}
	if plan.After != 2 || plan.Reduction() != 5 {
		t.Fatalf("after = %d (reduction %d), want after 2, reduction 5", plan.After, plan.Reduction())
	}

	// Per-provider deltas: dynect loses s1 and s2 but keeps s4 (private);
	// the rest drop to zero.
	wantDeltas := []ProviderImpactDelta{
		{Name: "dynect.net", Before: 3, After: 1},
		{Name: "awsdns.net", Before: 1, After: 0},
		{Name: "digicert.com", Before: 1, After: 0},
		{Name: "fastly.net", Before: 1, After: 0},
	}
	if !reflect.DeepEqual(plan.ProviderDeltas, wantDeltas) {
		t.Fatalf("deltas = %+v\nwant %+v", plan.ProviderDeltas, wantDeltas)
	}

	// A tighter budget truncates the same greedy sequence.
	k2 := g.MitigationPlan(2, AllIndirect())
	if !reflect.DeepEqual(k2.Options, want[:2]) || k2.After != 4 {
		t.Fatalf("k=2 options = %+v, after = %d", k2.Options, k2.After)
	}
}

// TestMitigationBeforeMatchesEngine pins the objective decomposition: the
// optimizer's "before" total must equal Σ_p |I_p| from the metrics engine,
// for every traversal, across random graphs.
func TestMitigationBeforeMatchesEngine(t *testing.T) {
	traversals := []TraversalOpts{
		AllIndirect(),
		DirectOnly(),
		{ViaProviders: []Service{DNS}},
		{ViaProviders: []Service{CDN, CA}},
	}
	for seed := int64(0); seed < 40; seed++ {
		g := randomGraph(seed)
		for _, opts := range traversals {
			plan := g.MitigationPlan(1, opts)
			_, imp := g.Metrics().Counts(opts)
			sum := 0
			for _, n := range imp {
				sum += n
			}
			if plan.Before != sum {
				t.Fatalf("seed %d opts %+v: plan before = %d, engine Σ|I_p| = %d",
					seed, opts, plan.Before, sum)
			}
		}
	}
}

// applyPlan performs the graph surgery a mitigation plan prescribes: each
// chosen arrangement gains a fresh backup provider and becomes multi-third
// (no longer critical).
func applyPlan(g *Graph, plan *MitigationPlan) *Graph {
	byName := make(map[string]*Site, len(g.Sites))
	sites := make([]*Site, len(g.Sites))
	for i, s := range g.Sites {
		cp := *s
		cp.Deps = make(map[Service]Dep, len(s.Deps))
		for svc, d := range s.Deps {
			cp.Deps[svc] = d
		}
		sites[i] = &cp
		byName[cp.Name] = &cp
	}
	var providers []*Provider
	for _, p := range g.Providers {
		providers = append(providers, p)
	}
	for i, o := range plan.Options {
		var svc Service
		for _, s := range Services {
			if s.String() == o.Service {
				svc = s
			}
		}
		site := byName[o.Site]
		d := site.Deps[svc]
		d.Class = ClassMultiThird
		d.Providers = append(append([]string(nil), d.Providers...), "backup"+itoa(i)+".example")
		site.Deps[svc] = d
	}
	return NewGraph(sites, providers)
}

// TestMitigationAfterMatchesSurgery verifies the predicted "after" total the
// hard way: actually apply every option to a copy of the graph, rebuild it,
// and recompute Σ_p |I_p| with the engine.
func TestMitigationAfterMatchesSurgery(t *testing.T) {
	opts := AllIndirect()
	for seed := int64(0); seed < 40; seed++ {
		g := randomGraph(seed)
		for _, k := range []int{1, 3, 1000} {
			plan := g.MitigationPlan(k, opts)
			_, imp := applyPlan(g, plan).Metrics().Counts(opts)
			sum := 0
			for _, n := range imp {
				sum += n
			}
			if sum != plan.After {
				t.Fatalf("seed %d k=%d: surgery Σ|I_p| = %d, plan predicted after = %d (before %d, options %+v)",
					seed, k, sum, plan.After, plan.Before, plan.Options)
			}
		}
	}
}

// TestMitigationDeterministic pins that repeated runs produce identical
// plans (the heap tie-breaks are total).
func TestMitigationDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := randomGraph(seed).MitigationPlan(5, AllIndirect())
		b := randomGraph(seed).MitigationPlan(5, AllIndirect())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: plans differ:\n%+v\n%+v", seed, a, b)
		}
	}
}

func TestMitigationDegenerate(t *testing.T) {
	g := mitigationFixture()
	if p := g.MitigationPlan(0, AllIndirect()); len(p.Options) != 0 || p.Before != 0 {
		t.Fatalf("k=0 plan should be empty, got %+v", p)
	}
	empty := NewGraph(nil, nil)
	if p := empty.MitigationPlan(5, AllIndirect()); len(p.Options) != 0 {
		t.Fatalf("empty-graph plan should have no options, got %+v", p)
	}
}
