package telemetry

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promSample matches one Prometheus text-format sample line: a metric name,
// an optional {le="..."} label set (the only label this exporter emits), and
// a float value.
var promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([^"]+)"\})? ([0-9eE+.infNa-]+)$`)

// TestMetricsEndpointParsesAsPrometheusText serves a populated registry via
// the /metrics handler over httptest and verifies the body is well-formed
// text exposition: every line is a comment or a valid sample, TYPE headers
// precede their samples, histogram buckets are cumulative and consistent
// with _count, and +Inf buckets are present.
func TestMetricsEndpointParsesAsPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_requests_total", "requests served").Add(42)
	r.Gauge("demo_inflight", "in flight").Set(3)
	h := r.Histogram("demo_latency_seconds", "latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5} {
		h.Observe(v)
	}
	sp := r.StartSpan("demo.span")
	sp.End()

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	types := map[string]string{}    // metric name -> declared TYPE
	samples := map[string]float64{} // full sample key -> value
	var bucketLines []string
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			fields := strings.Fields(line)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("malformed comment line %q", line)
			}
			if fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line %q", line)
		}
		name, le, valStr := m[1], m[3], m[4]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := types[base]; !ok {
			if _, ok := types[name]; !ok {
				t.Errorf("sample %q has no preceding TYPE header", line)
			}
		}
		key := name
		if le != "" {
			key += "{le=" + le + "}"
			bucketLines = append(bucketLines, line)
		}
		samples[key] = val
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if got := samples["demo_requests_total"]; got != 42 {
		t.Errorf("demo_requests_total = %g, want 42", got)
	}
	if got := samples["demo_inflight"]; got != 3 {
		t.Errorf("demo_inflight = %g, want 3", got)
	}
	if types["demo_latency_seconds"] != "histogram" {
		t.Errorf("demo_latency_seconds TYPE = %q, want histogram", types["demo_latency_seconds"])
	}
	// Cumulative bucket chain: 1, 2, 3, and +Inf == _count == 4.
	for key, want := range map[string]float64{
		"demo_latency_seconds_bucket{le=0.001}": 1,
		"demo_latency_seconds_bucket{le=0.01}":  2,
		"demo_latency_seconds_bucket{le=0.1}":   3,
		"demo_latency_seconds_bucket{le=+Inf}":  4,
		"demo_latency_seconds_count":            4,
	} {
		if got := samples[key]; got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
	if sum := samples["demo_latency_seconds_sum"]; sum < 0.55 || sum > 0.56 {
		t.Errorf("demo_latency_seconds_sum = %g, want ~0.5555", sum)
	}
	// The span's histogram appears under its sanitized name.
	if _, ok := types["demo_span_seconds"]; !ok {
		t.Error("span histogram demo_span_seconds missing from exposition")
	}
	// Every histogram must end its bucket chain with +Inf.
	infSeen := map[string]bool{}
	for _, line := range bucketLines {
		if strings.Contains(line, `le="+Inf"`) {
			infSeen[line[:strings.Index(line, "_bucket")]] = true
		}
	}
	for name, typ := range types {
		if typ == "histogram" && !infSeen[name] {
			t.Errorf("histogram %s has no +Inf bucket", name)
		}
	}
}
