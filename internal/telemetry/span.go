package telemetry

import "time"

// Span times one operation. Start it with Registry.StartSpan (or the
// package-level Start/StartSpan against Default) and call End exactly once;
// End records the duration into the span's histogram and, when the registry
// has tracing enabled, appends a SpanEvent to the trace ring.
type Span struct {
	reg   *Registry
	name  string
	hist  *HistogramMetric
	start time.Time
}

// StartSpan begins a span. The duration histogram it feeds is named after
// the span — Sanitize(name) + "_seconds" — so "measure.dns" spans populate
// the "measure_dns_seconds" histogram.
func (r *Registry) StartSpan(name string) *Span {
	return &Span{
		reg:   r,
		name:  name,
		hist:  r.Histogram(Sanitize(name)+"_seconds", "duration of "+name+" spans", nil),
		start: time.Now(),
	}
}

// Name returns the span's (unsanitized) name.
func (s *Span) Name() string { return s.name }

// End stops the span, records its duration, and returns it. End must be
// called exactly once.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	s.hist.ObserveDuration(d)
	if s.reg.traceOn.Load() {
		s.reg.recordSpan(SpanEvent{Name: s.name, Start: s.start, Duration: d})
	}
	return d
}

// SpanEvent is one completed span kept in the trace ring.
type SpanEvent struct {
	Name     string
	Start    time.Time
	Duration time.Duration
}

// EnableTrace switches on the per-run trace ring, keeping the most recent
// capacity completed spans. capacity <= 0 disables tracing (the default:
// the ring costs a mutex per span, so it stays off unless asked for).
func (r *Registry) EnableTrace(capacity int) {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if capacity <= 0 {
		r.traceOn.Store(false)
		r.trace, r.traceLen, r.traceAt = nil, 0, 0
		return
	}
	r.trace = make([]SpanEvent, capacity)
	r.traceLen, r.traceAt = 0, 0
	r.traceOn.Store(true)
}

func (r *Registry) recordSpan(ev SpanEvent) {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if len(r.trace) == 0 {
		return
	}
	r.trace[r.traceAt] = ev
	r.traceAt = (r.traceAt + 1) % len(r.trace)
	if r.traceLen < len(r.trace) {
		r.traceLen++
	}
}

// TraceEvents returns a copy of the trace ring, oldest span first. Empty
// unless EnableTrace was called.
func (r *Registry) TraceEvents() []SpanEvent {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if r.traceLen == 0 {
		return nil
	}
	out := make([]SpanEvent, 0, r.traceLen)
	start := r.traceAt - r.traceLen
	if start < 0 {
		start += len(r.trace)
	}
	for i := 0; i < r.traceLen; i++ {
		out = append(out, r.trace[(start+i)%len(r.trace)])
	}
	return out
}
