// Package telemetry is the measurement runtime's observability layer: a
// dependency-free registry of named counters, gauges and fixed-bucket
// histograms, plus a lightweight span API for timing pipeline stages.
//
// The hot path is lock-free: counters and gauges are single atomic adds,
// histogram observation is a binary search over immutable bucket bounds
// followed by two atomic adds and a CAS-loop sum update. Registration
// (GetOrCreate by name) takes a registry lock only on first use; every
// instrumented package caches its metric handles in package variables, so
// steady-state instrumentation never touches the registry map.
//
// Reading is snapshot-on-read: Registry.Snapshot copies every metric into
// plain values, so a scrape or an end-of-run report observes a consistent,
// immutable view while the pipeline keeps mutating the live metrics.
//
// The package deliberately never feeds back into measurement results:
// instrumented code records what happened but never branches on a metric
// value, so telemetry cannot perturb the deterministic pipeline output (the
// measure pinning test runs with telemetry enabled and stays byte-identical).
//
// Three consumers share the one Default registry:
//
//   - cmd/depserver -http serves it as Prometheus text ([Handler], /metrics),
//     expvar JSON and pprof;
//   - cmd/depscope -telemetry prints it as a sorted end-of-run table
//     ([Snapshot.WriteTable]);
//   - library users receive it programmatically as measure.Results.Telemetry.
//
// Metric names follow the Prometheus convention (snake_case, _total suffix
// for counters, _seconds suffix and base-unit seconds for histograms). Span
// names are dotted ("measure.dns"); the histogram a span feeds is the
// sanitized name plus "_seconds" ("measure_dns_seconds"). The full catalog
// is documented in docs/observability.md.
package telemetry

import "context"

// Default is the process-wide registry used by the package-level helpers
// and by all instrumented packages (conc, measure, resolver, dnsserver,
// analysis). Tests that need isolation create their own via NewRegistry.
var Default = NewRegistry()

// Counter returns the named counter from the Default registry, creating it
// on first use.
func Counter(name, help string) *CounterMetric { return Default.Counter(name, help) }

// Gauge returns the named gauge from the Default registry, creating it on
// first use.
func Gauge(name, help string) *GaugeMetric { return Default.Gauge(name, help) }

// Histogram returns the named histogram from the Default registry, creating
// it on first use. A nil bounds slice means DefBuckets.
func Histogram(name, help string, bounds []float64) *HistogramMetric {
	return Default.Histogram(name, help, bounds)
}

// StartSpan begins a span on the Default registry. The returned span's End
// records its duration into the histogram named after the span (sanitized,
// "_seconds" suffix) and, when tracing is enabled, into the trace ring.
func StartSpan(name string) *Span { return Default.StartSpan(name) }

// Start begins a span on the Default registry and stores it in the returned
// context, so deeper frames can annotate or consult it via FromContext. The
// span must still be ended by the caller:
//
//	ctx, sp := telemetry.Start(ctx, "measure.dns")
//	defer sp.End()
func Start(ctx context.Context, name string) (context.Context, *Span) {
	sp := Default.StartSpan(name)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

type spanKey struct{}

// FromContext returns the innermost span stored by Start, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
