package telemetry_test

import (
	"fmt"
	"os"

	"depscope/internal/telemetry"
)

// Example shows the full lifecycle: register metrics in package variables
// (the hot path then never touches the registry map), record, and read a
// consistent snapshot. Production code uses the shared telemetry.Default
// registry; an isolated one keeps this example deterministic.
func Example() {
	reg := telemetry.NewRegistry()

	queries := reg.Counter("resolver_queries_total", "DNS lookups issued")
	inflight := reg.Gauge("conc_inflight_tasks", "tasks currently running")
	latency := reg.Histogram("lookup_seconds", "lookup latency", []float64{0.001, 0.1})

	inflight.Add(1)
	for i := 0; i < 3; i++ {
		queries.Inc()
		latency.Observe(0.0004)
	}
	inflight.Add(-1)

	s := reg.Snapshot()
	fmt.Println("metrics:", s.MetricNames())
	fmt.Println("queries:", s.Counters[0].Value)
	fmt.Println("p50 under 1ms:", s.Histograms[0].Quantile(0.5) < 0.001)
	// Output:
	// metrics: [conc_inflight_tasks lookup_seconds resolver_queries_total]
	// queries: 3
	// p50 under 1ms: true
}

// ExampleStart times a region of code with the span API. The span feeds the
// histogram named after it ("stage.demo" -> "stage_demo_seconds"), which the
// Prometheus endpoint and the -telemetry table then expose.
func ExampleStart() {
	sp := telemetry.StartSpan("stage.demo")
	// ... the work being timed ...
	sp.End()

	for _, h := range telemetry.Default.Snapshot().Histograms {
		if h.Name == "stage_demo_seconds" {
			fmt.Println(h.Name, "observations:", h.Count)
		}
	}
	// Output:
	// stage_demo_seconds observations: 1
}

// ExampleRegistry_WritePrometheus renders the text exposition format served
// by depserver's /metrics endpoint.
func ExampleRegistry_WritePrometheus() {
	reg := telemetry.NewRegistry()
	reg.Counter("dnsserver_udp_queries_total", "queries served over UDP").Add(7)
	reg.WritePrometheus(os.Stdout)
	// Output:
	// # HELP dnsserver_udp_queries_total queries served over UDP
	// # TYPE dnsserver_udp_queries_total counter
	// dnsserver_udp_queries_total 7
}
