package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default histogram bounds, in seconds: a latency ladder
// from 1µs to 10s tuned for the pipeline's range (in-process lookups are
// microseconds, full passes are hundreds of milliseconds). Values above the
// last bound land in the implicit +Inf bucket.
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry (or use the package-level Default).
type Registry struct {
	metrics sync.Map   // sanitized name -> metric (lock-free hot-path lookup)
	mu      sync.Mutex // serializes first-use registration

	traceOn  atomic.Bool
	traceMu  sync.Mutex
	trace    []SpanEvent // ring buffer, valid entries in [0, traceLen)
	traceLen int
	traceAt  int // next write position
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// metric is the common interface of the three metric kinds.
type metric interface {
	kind() string
}

// Sanitize maps an arbitrary name onto the Prometheus metric-name alphabet
// [a-zA-Z0-9_:]: every other rune becomes '_', and a leading digit gets a
// '_' prefix. Span names like "measure.dns" sanitize to "measure_dns".
func Sanitize(name string) string {
	ok := func(i int, r rune) bool {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			return true
		case r >= '0' && r <= '9':
			return i > 0
		}
		return false
	}
	clean := true
	for i, r := range name {
		if !ok(i, r) {
			clean = false
			break
		}
	}
	if clean && name != "" {
		return name
	}
	out := make([]rune, 0, len(name)+1)
	for i, r := range name {
		if ok(i, r) {
			out = append(out, r)
		} else if i == 0 && r >= '0' && r <= '9' {
			out = append(out, '_', r)
		} else {
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		out = []rune{'_'}
	}
	return string(out)
}

// register returns the metric stored under name, creating it with make on
// first use. A name registered as one kind and fetched as another is a
// programming error and panics.
func (r *Registry) register(name string, make func() metric) metric {
	name = Sanitize(name)
	if m, ok := r.metrics.Load(name); ok {
		return m.(metric)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics.Load(name); ok {
		return m.(metric)
	}
	m := make()
	r.metrics.Store(name, m)
	return m
}

// ---- Counter ----

// CounterMetric is a monotonically increasing atomic counter.
type CounterMetric struct {
	name, helpText string
	v              atomic.Int64
}

func (*CounterMetric) kind() string { return "counter" }

// Name returns the sanitized metric name.
func (c *CounterMetric) Name() string { return c.name }

// Add increments the counter by n (n < 0 is a programming error and ignored).
func (c *CounterMetric) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *CounterMetric) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *CounterMetric) Value() int64 { return c.v.Load() }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *CounterMetric {
	m := r.register(name, func() metric {
		return &CounterMetric{name: Sanitize(name), helpText: help}
	})
	c, ok := m.(*CounterMetric)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as a %s, not a counter", name, m.kind()))
	}
	return c
}

// ---- Gauge ----

// GaugeMetric is an atomic instantaneous value (e.g. tasks in flight).
type GaugeMetric struct {
	name, helpText string
	v              atomic.Int64
}

func (*GaugeMetric) kind() string { return "gauge" }

// Name returns the sanitized metric name.
func (g *GaugeMetric) Name() string { return g.name }

// Set stores v.
func (g *GaugeMetric) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative deltas decrement).
func (g *GaugeMetric) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *GaugeMetric) Value() int64 { return g.v.Load() }

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *GaugeMetric {
	m := r.register(name, func() metric {
		return &GaugeMetric{name: Sanitize(name), helpText: help}
	})
	g, ok := m.(*GaugeMetric)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as a %s, not a gauge", name, m.kind()))
	}
	return g
}

// ---- Histogram ----

// HistogramMetric is a fixed-bucket histogram. Observation is lock-free:
// a binary search over the immutable bounds, two atomic increments, and a
// CAS loop folding the value into the running sum.
type HistogramMetric struct {
	name, helpText string
	bounds         []float64 // ascending upper bounds; +Inf implicit last
	counts         []atomic.Int64
	count          atomic.Int64
	sumBits        atomic.Uint64 // math.Float64bits of the running sum
}

func (*HistogramMetric) kind() string { return "histogram" }

// Name returns the sanitized metric name.
func (h *HistogramMetric) Name() string { return h.name }

// Observe records v. Bucket semantics follow Prometheus: v lands in the
// first bucket whose upper bound is >= v (bounds are inclusive), values
// beyond the last bound land in +Inf.
func (h *HistogramMetric) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds, the histogram base unit.
func (h *HistogramMetric) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations so far.
func (h *HistogramMetric) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *HistogramMetric) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Histogram returns the named histogram, creating it on first use. bounds
// are ascending upper bounds in the metric's base unit (seconds for
// durations); nil means DefBuckets. The bounds of an already-registered
// histogram win — they are fixed at first registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *HistogramMetric {
	m := r.register(name, func() metric {
		if bounds == nil {
			bounds = DefBuckets
		}
		b := append([]float64(nil), bounds...)
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending at %v", name, b[i]))
			}
		}
		return &HistogramMetric{
			name:     Sanitize(name),
			helpText: help,
			bounds:   b,
			counts:   make([]atomic.Int64, len(b)+1),
		}
	})
	h, ok := m.(*HistogramMetric)
	if !ok {
		panic(fmt.Sprintf("telemetry: %q already registered as a %s, not a histogram", name, m.kind()))
	}
	return h
}
