package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
)

func inf() float64 { return math.Inf(1) }

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4), hand-rolled: HELP/TYPE headers, one sample line
// per counter and gauge, and the standard _bucket{le="..."}/_sum/_count
// expansion for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	for _, c := range s.Counters {
		if err := writeHeader(w, c.Name, c.Help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := writeHeader(w, g.Name, g.Help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := writeHeader(w, h.Name, h.Help, "histogram"); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.Name, le, b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", h.Name, strconv.FormatFloat(h.Sum, 'g', -1, 64)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", h.Name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, kind string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
	return err
}

// Handler serves the registry as a Prometheus /metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
