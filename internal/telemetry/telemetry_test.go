package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters hammers one counter, one gauge and one histogram
// from many goroutines; totals must be exact (run under -race by make
// verify, which also proves the hot path is data-race-free).
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_inflight", "in flight")
	h := r.Histogram("test_latency_seconds", "latency", nil)

	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	want := float64(workers*perWorker) * 0.001
	if got := h.Sum(); math.Abs(got-want) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an observation equal
// to a bound lands in that bound's bucket (inclusive upper bounds), one just
// above lands in the next, and values beyond the last bound go to +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_bounds", "bounds", []float64{1, 2, 5})

	for _, v := range []float64{0.5, 1, 1.0001, 2, 4.9, 5, 5.0001, 100} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("got %d histograms, want 1", len(s.Histograms))
	}
	hv := s.Histograms[0]
	// Cumulative: <=1: {0.5, 1} = 2; <=2: +{1.0001, 2} = 4; <=5: +{4.9, 5} = 6; +Inf: 8.
	wantCum := []int64{2, 4, 6, 8}
	if len(hv.Buckets) != len(wantCum) {
		t.Fatalf("got %d buckets, want %d", len(hv.Buckets), len(wantCum))
	}
	for i, want := range wantCum {
		if hv.Buckets[i].Count != want {
			t.Errorf("bucket %d (le=%g): count %d, want %d", i, hv.Buckets[i].UpperBound, hv.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(hv.Buckets[3].UpperBound, 1) {
		t.Errorf("last bucket bound = %g, want +Inf", hv.Buckets[3].UpperBound)
	}
	if hv.Count != 8 {
		t.Errorf("count = %d, want 8", hv.Count)
	}
}

// TestSnapshotIsolation: a snapshot is a frozen copy — metrics mutated
// afterwards must not show through, and two snapshots are independent.
func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t")
	h := r.Histogram("test_seconds", "t", []float64{1})
	c.Add(5)
	h.Observe(0.5)

	before := r.Snapshot()
	c.Add(100)
	h.Observe(0.5)
	h.Observe(2)

	if got := before.Counters[0].Value; got != 5 {
		t.Errorf("snapshot counter mutated: %d, want 5", got)
	}
	if got := before.Histograms[0].Count; got != 1 {
		t.Errorf("snapshot histogram mutated: count %d, want 1", got)
	}
	after := r.Snapshot()
	if got := after.Counters[0].Value; got != 105 {
		t.Errorf("live counter = %d, want 105", got)
	}
	if got := after.Histograms[0].Count; got != 3 {
		t.Errorf("live histogram count = %d, want 3", got)
	}
	// Mutating the first snapshot's slices must not leak into the second.
	before.Counters[0].Value = -1
	if after.Counters[0].Value != 105 {
		t.Error("snapshots share backing storage")
	}
}

func TestRegisterIdempotentAndKindChecked(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_name", "first")
	b := r.Counter("same_name", "second help ignored")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge under a counter name did not panic")
		}
	}()
	r.Gauge("same_name", "conflict")
}

func TestSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"measure.dns":       "measure_dns",
		"ok_name_total":     "ok_name_total",
		"9starts_with_num":  "_9starts_with_num",
		"weird name/chars!": "weird_name_chars_",
		"":                  "_",
	} {
		if got := Sanitize(in); got != want {
			t.Errorf("Sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSpanRecordsHistogramAndTrace(t *testing.T) {
	r := NewRegistry()
	r.EnableTrace(2)
	for i := 0; i < 3; i++ {
		sp := r.StartSpan("measure.dns")
		time.Sleep(time.Millisecond)
		if d := sp.End(); d <= 0 {
			t.Fatalf("span duration = %v", d)
		}
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 || s.Histograms[0].Name != "measure_dns_seconds" {
		t.Fatalf("span histogram missing: %+v", s.Histograms)
	}
	if s.Histograms[0].Count != 3 {
		t.Errorf("span histogram count = %d, want 3", s.Histograms[0].Count)
	}
	// The ring holds only the most recent 2 of the 3 spans.
	evs := r.TraceEvents()
	if len(evs) != 2 {
		t.Fatalf("trace ring holds %d events, want 2", len(evs))
	}
	for _, ev := range evs {
		if ev.Name != "measure.dns" || ev.Duration <= 0 {
			t.Errorf("bad trace event %+v", ev)
		}
	}
	if !evs[0].Start.Before(evs[1].Start) {
		t.Error("trace events not oldest-first")
	}
}

func TestQuantileEstimate(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "q", []float64{1, 2, 4})
	// 10 observations uniform in (0,1]; p50 interpolates inside that bucket.
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	hv := r.Snapshot().Histograms[0]
	if p50 := hv.Quantile(0.5); p50 <= 0 || p50 > 1 {
		t.Errorf("p50 = %g, want within (0, 1]", p50)
	}
	if p100 := hv.Quantile(1); p100 != 1 {
		t.Errorf("p100 = %g, want 1 (upper bound of only populated bucket)", p100)
	}
	if empty := (HistogramValue{}).Quantile(0.5); empty != 0 {
		t.Errorf("empty quantile = %g, want 0", empty)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.00042)
		}
	})
}

func BenchmarkSpan(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < b.N; i++ {
		r.StartSpan("bench.span").End()
	}
}
