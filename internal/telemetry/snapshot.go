package telemetry

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Snapshot is a consistent point-in-time copy of a registry: plain values,
// safe to hold, marshal, or compare while the live metrics keep moving.
// Each metric kind is sorted by name.
type Snapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
}

// CounterValue is one counter's frozen state.
type CounterValue struct {
	Name, Help string
	Value      int64
}

// GaugeValue is one gauge's frozen state.
type GaugeValue struct {
	Name, Help string
	Value      int64
}

// HistogramValue is one histogram's frozen state. Buckets carry cumulative
// counts in Prometheus "le" semantics: Buckets[i].Count is the number of
// observations <= Buckets[i].UpperBound, and the last bucket is +Inf (its
// count equals Count).
type HistogramValue struct {
	Name, Help string
	Buckets    []Bucket
	Count      int64
	Sum        float64
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	UpperBound float64 // +Inf on the last bucket
	Count      int64   // observations <= UpperBound
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the cumulative
// buckets by linear interpolation inside the target bucket, the standard
// fixed-bucket estimator. Returns 0 on an empty histogram; a quantile that
// lands in the +Inf bucket reports the last finite bound.
func (h HistogramValue) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	for i, b := range h.Buckets {
		if float64(b.Count) < rank {
			continue
		}
		if i == len(h.Buckets)-1 {
			// +Inf bucket: no finite upper bound to interpolate toward.
			if len(h.Buckets) >= 2 {
				return h.Buckets[len(h.Buckets)-2].UpperBound
			}
			return 0
		}
		lo, loCount := 0.0, int64(0)
		if i > 0 {
			lo, loCount = h.Buckets[i-1].UpperBound, h.Buckets[i-1].Count
		}
		width := float64(b.Count - loCount)
		if width == 0 {
			return b.UpperBound
		}
		return lo + (b.UpperBound-lo)*(rank-float64(loCount))/width
	}
	return h.Buckets[len(h.Buckets)-1].UpperBound
}

// Mean is Sum/Count, 0 when empty.
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot copies every registered metric into a Snapshot. The copy is
// per-metric atomic (each value is read once); the set as a whole is as
// consistent as a lock-free registry allows, which is all any scraper gets.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	r.metrics.Range(func(_, v any) bool {
		switch m := v.(type) {
		case *CounterMetric:
			s.Counters = append(s.Counters, CounterValue{Name: m.name, Help: m.helpText, Value: m.Value()})
		case *GaugeMetric:
			s.Gauges = append(s.Gauges, GaugeValue{Name: m.name, Help: m.helpText, Value: m.Value()})
		case *HistogramMetric:
			hv := HistogramValue{Name: m.name, Help: m.helpText, Sum: m.Sum()}
			cum := int64(0)
			for i := range m.counts {
				cum += m.counts[i].Load()
				bound := inf()
				if i < len(m.bounds) {
					bound = m.bounds[i]
				}
				hv.Buckets = append(hv.Buckets, Bucket{UpperBound: bound, Count: cum})
			}
			hv.Count = cum
			s.Histograms = append(s.Histograms, hv)
		}
		return true
	})
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// MetricNames returns every metric name in the snapshot, sorted.
func (s Snapshot) MetricNames() []string {
	var names []string
	for _, c := range s.Counters {
		names = append(names, c.Name)
	}
	for _, g := range s.Gauges {
		names = append(names, g.Name)
	}
	for _, h := range s.Histograms {
		names = append(names, h.Name)
	}
	sort.Strings(names)
	return names
}

// WriteTable renders the snapshot as a human-readable, name-sorted table —
// the backend of depscope -telemetry. Histogram rows summarize count, mean
// and estimated p50/p99 (durations formatted as such).
func (s Snapshot) WriteTable(w io.Writer) {
	for _, c := range s.Counters {
		fmt.Fprintf(w, "counter    %-42s %12d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(w, "gauge      %-42s %12d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(w, "histogram  %-42s %12d  mean %-10s p50 %-10s p99 %-10s\n",
			h.Name, h.Count, fmtSeconds(h.Mean()), fmtSeconds(h.Quantile(0.5)), fmtSeconds(h.Quantile(0.99)))
	}
}

// fmtSeconds renders a value in seconds as a duration string ("1.2ms").
func fmtSeconds(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}
