package membudget

import (
	"errors"
	"runtime"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"0", 0},
		{"123456", 123456},
		{"1KiB", 1 << 10},
		{"8GiB", 8 << 30},
		{"8gb", 8 << 30},
		{"512MiB", 512 << 20},
		{"2g", 2 << 30},
		{"1.5GiB", 3 << 29},
		{"1TiB", 1 << 40},
		{"64b", 64},
		{" 16 MiB ", 16 << 20},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "x", "GiB", "-1", "-1GiB", "1XB"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error", bad)
		}
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		in   uint64
		want string
	}{
		{512, "512B"},
		{2 << 10, "2.0KiB"},
		{8 << 30, "8.0GiB"},
		{3 << 29, "1.5GiB"},
	}
	for _, c := range cases {
		if got := Format(c.in); got != c.want {
			t.Errorf("Format(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestCheckUnlimited: a zero limit never fails but still tracks the peak.
func TestCheckUnlimited(t *testing.T) {
	a := New(0)
	if err := a.Check("phase"); err != nil {
		t.Fatalf("unlimited Check: %v", err)
	}
	if a.Peak() == 0 {
		t.Fatal("unlimited Check recorded no peak")
	}
}

func TestCheckUnderLimit(t *testing.T) {
	a := New(1 << 50) // far above any test heap
	if err := a.Check("phase"); err != nil {
		t.Fatalf("under-limit Check: %v", err)
	}
}

// TestCheckOverLimit uses the readMemStats seam to simulate a heap that stays
// over budget through the forced collection, and asserts the error shape.
func TestCheckOverLimit(t *testing.T) {
	a := New(100)
	a.readMemStats = func(ms *runtime.MemStats) { ms.HeapAlloc = 250 }
	err := a.Check("measure batch 3")
	if err == nil {
		t.Fatal("over-limit Check: want error")
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %T: %v", err, err)
	}
	if be.Phase != "measure batch 3" || be.Limit != 100 || be.HeapAlloc != 250 {
		t.Fatalf("BudgetError fields: %+v", be)
	}
	if !strings.Contains(err.Error(), "memory budget exceeded") {
		t.Fatalf("error message not greppable: %q", err.Error())
	}
	if a.Peak() != 250 {
		t.Fatalf("Peak = %d, want 250", a.Peak())
	}
}

// TestCheckRecoversAfterGC: the first sample is over, the post-GC sample is
// under — Check must succeed (the overshoot was batch garbage).
func TestCheckRecoversAfterGC(t *testing.T) {
	a := New(100)
	calls := 0
	a.readMemStats = func(ms *runtime.MemStats) {
		calls++
		if calls == 1 {
			ms.HeapAlloc = 250
		} else {
			ms.HeapAlloc = 50
		}
	}
	if err := a.Check("resolve batch 0"); err != nil {
		t.Fatalf("recovering Check: %v", err)
	}
	if calls != 2 {
		t.Fatalf("readMemStats calls = %d, want 2", calls)
	}
}
