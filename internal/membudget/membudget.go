// Package membudget implements a soft memory-budget accountant for
// large-scale runs. The streaming materialization path checks the budget at
// batch boundaries: if the live heap exceeds the configured limit even after
// a collection, the run fails fast with a clear, actionable error instead of
// grinding into swap or dying on an opaque OOM kill minutes later. The
// budget is deliberately soft — Go gives no way to cap the heap of one
// computation — but batch-boundary checks bound the overshoot to roughly one
// batch of materialized state.
package membudget

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
)

// Unit multipliers accepted by Parse. Both IEC ("GiB") and the colloquial
// SI-looking forms ("GB", "G") resolve to binary multiples: a user asking
// for -mem-budget 8GB means the machine's 8 gigabytes, not 7.45 of them.
const (
	KiB uint64 = 1 << 10
	MiB uint64 = 1 << 20
	GiB uint64 = 1 << 30
	TiB uint64 = 1 << 40
)

// Parse converts a human byte-size string ("8GiB", "512MiB", "2g",
// "1048576") to bytes. A bare number is bytes. Parsing is case-insensitive;
// fractional values ("1.5GiB") are accepted.
func Parse(s string) (uint64, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	if t == "" {
		return 0, fmt.Errorf("membudget: empty size")
	}
	mult := uint64(1)
	for _, u := range []struct {
		suffix string
		mult   uint64
	}{
		{"kib", KiB}, {"mib", MiB}, {"gib", GiB}, {"tib", TiB},
		{"kb", KiB}, {"mb", MiB}, {"gb", GiB}, {"tb", TiB},
		{"k", KiB}, {"m", MiB}, {"g", GiB}, {"t", TiB},
		{"b", 1},
	} {
		if strings.HasSuffix(t, u.suffix) {
			mult = u.mult
			t = strings.TrimSpace(strings.TrimSuffix(t, u.suffix))
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("membudget: invalid size %q", s)
	}
	return uint64(v * float64(mult)), nil
}

// Format renders bytes with the largest unit that keeps a short mantissa.
func Format(b uint64) string {
	switch {
	case b >= TiB:
		return fmt.Sprintf("%.1fTiB", float64(b)/float64(TiB))
	case b >= GiB:
		return fmt.Sprintf("%.1fGiB", float64(b)/float64(GiB))
	case b >= MiB:
		return fmt.Sprintf("%.1fMiB", float64(b)/float64(MiB))
	case b >= KiB:
		return fmt.Sprintf("%.1fKiB", float64(b)/float64(KiB))
	}
	return fmt.Sprintf("%dB", b)
}

// BudgetError reports a budget check that failed even after a collection.
type BudgetError struct {
	// Phase names the pipeline stage whose batch boundary tripped the check.
	Phase string
	// HeapAlloc is the live heap observed after the forced collection.
	HeapAlloc uint64
	// Limit is the configured budget.
	Limit uint64
}

// Error renders the greppable failure line the scale-smoke target asserts on.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("membudget: memory budget exceeded during %s: live heap %s over the %s budget "+
		"(raise -mem-budget, lower -scale, or shrink the batch size)",
		e.Phase, Format(e.HeapAlloc), Format(e.Limit))
}

// Accountant tracks live heap against a soft limit. The zero limit means
// unlimited: Check never fails and only records the peak. An Accountant is
// meant to be polled from one goroutine at batch boundaries; it is not
// synchronized.
type Accountant struct {
	limit uint64
	peak  uint64
	// readMemStats is a test seam; production always uses runtime.ReadMemStats.
	readMemStats func(*runtime.MemStats)
}

// New creates an accountant over a soft limit in bytes; 0 means unlimited.
func New(limit uint64) *Accountant {
	return &Accountant{limit: limit, readMemStats: runtime.ReadMemStats}
}

// Limit returns the configured budget (0 = unlimited).
func (a *Accountant) Limit() uint64 { return a.limit }

// Peak returns the largest live heap any Check observed.
func (a *Accountant) Peak() uint64 { return a.peak }

// Check samples the live heap. Over the limit it forces one collection —
// most batch overshoot is garbage from the batch just released — and fails
// with a *BudgetError only if the heap is still over afterwards. phase names
// the stage for the error message.
func (a *Accountant) Check(phase string) error {
	var ms runtime.MemStats
	a.readMemStats(&ms)
	if ms.HeapAlloc > a.peak {
		a.peak = ms.HeapAlloc
	}
	if a.limit == 0 || ms.HeapAlloc <= a.limit {
		return nil
	}
	runtime.GC()
	a.readMemStats(&ms)
	if ms.HeapAlloc > a.peak {
		a.peak = ms.HeapAlloc
	}
	if ms.HeapAlloc <= a.limit {
		return nil
	}
	return &BudgetError{Phase: phase, HeapAlloc: ms.HeapAlloc, Limit: a.limit}
}
