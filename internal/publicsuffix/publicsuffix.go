// Package publicsuffix implements public-suffix-list matching and
// registrable-domain (eTLD+1) extraction.
//
// The paper's classification heuristics repeatedly compare the "TLD" of two
// hostnames; per its references ([38], [65]) the comparison is really over
// registrable domains as defined by the Mozilla Public Suffix List, e.g. the
// registrable domain of www.example.co.uk is example.co.uk, not uk. This
// package embeds the subset of the PSL needed by the synthetic ecosystem plus
// the common real-world suffixes, and supports the PSL wildcard (*.ck) and
// exception (!www.ck) rule forms so it behaves like a full implementation.
package publicsuffix

import (
	"strings"

	"depscope/internal/intern"
)

// List is a compiled set of public-suffix rules.
type List struct {
	normal    map[string]bool
	wildcard  map[string]bool // key is the base: "*.ck" is stored as "ck"
	exception map[string]bool
}

// defaultRules is the embedded rule set. It covers every suffix that the
// synthetic ecosystem generator can emit, the common gTLDs/ccTLDs seen in the
// paper's provider names, and representative wildcard/exception rules so the
// matcher is exercised on all PSL rule forms.
var defaultRules = []string{
	// Generic TLDs.
	"com", "net", "org", "io", "co", "dev", "app", "edu", "gov", "mil",
	"info", "biz", "cloud", "online", "site", "store", "tech", "xyz",
	"health", "hospital", "systems", "services", "agency", "goog", "page",
	// Country TLDs.
	"us", "uk", "de", "fr", "jp", "cn", "ru", "br", "in", "au", "ca", "nl",
	"it", "es", "se", "no", "ch", "at", "be", "pl", "kr", "tw", "mx", "ir",
	"tv", "me", "cc", "ws", "to", "ly", "gg", "fm", "ai",
	// Multi-label public suffixes.
	"co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk",
	"com.au", "net.au", "org.au", "edu.au", "gov.au",
	"co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp",
	"com.br", "net.br", "org.br", "gov.br",
	"com.cn", "net.cn", "org.cn", "gov.cn", "edu.cn",
	"co.in", "net.in", "org.in", "gen.in", "firm.in",
	"co.kr", "ne.kr", "or.kr", "re.kr",
	"com.mx", "org.mx", "gob.mx",
	"com.tw", "org.tw", "gov.tw",
	"co.nz", "net.nz", "org.nz", "govt.nz",
	"com.sg", "edu.sg", "gov.sg",
	"co.za", "org.za", "gov.za",
	"com.tr", "org.tr", "gov.tr",
	"com.ua", "net.ua", "org.ua", "gov.ua",
	// Infrastructure / provider-style public suffixes (sites hosted directly
	// under a provider suffix are their own registrable domains, as on the
	// real PSL).
	"github.io", "gitlab.io", "netlify.app", "herokuapp.com",
	"azurewebsites.net", "blogspot.com", "appspot.com", "web.app",
	"firebaseapp.com", "s3.amazonaws.com", "elasticbeanstalk.com",
	// Wildcard and exception rules (PSL rule-form coverage).
	"*.ck", "!www.ck",
	"*.bd", "*.er", "*.fk",
	"*.kawasaki.jp", "!city.kawasaki.jp",
}

var defaultList = NewList(defaultRules)

// NewList compiles a list of PSL-style rules ("com", "co.uk", "*.ck",
// "!www.ck") into a matcher implementing the canonical PSL algorithm:
// exception rules beat wildcard rules, and among the rest the longest
// matching rule wins; with no match the implicit "*" rule applies.
func NewList(rules []string) *List {
	l := &List{
		normal:    make(map[string]bool, len(rules)),
		wildcard:  make(map[string]bool),
		exception: make(map[string]bool),
	}
	for _, r := range rules {
		r = strings.ToLower(strings.TrimSpace(r))
		switch {
		case r == "":
		case strings.HasPrefix(r, "!"):
			l.exception[r[1:]] = true
		case strings.HasPrefix(r, "*."):
			l.wildcard[r[2:]] = true
		default:
			l.normal[r] = true
		}
	}
	return l
}

// Default returns the embedded default list.
func Default() *List { return defaultList }

// PublicSuffix returns the public suffix of domain and whether any explicit
// rule matched (false means the implicit "*" rule was used, i.e. the last
// label alone is the suffix).
func (l *List) PublicSuffix(domain string) (suffix string, explicit bool) {
	domain = Normalize(domain)
	if domain == "" {
		return "", false
	}
	labels := strings.Split(domain, ".")
	// Scan candidate suffixes from longest to shortest; the first match is
	// the longest matching rule.
	for i := 0; i < len(labels); i++ {
		cand := strings.Join(labels[i:], ".")
		if l.exception[cand] {
			// The suffix for an exception rule is the rule minus its
			// leftmost label: "!www.ck" makes "ck" the suffix of www.ck.
			if idx := strings.IndexByte(cand, '.'); idx >= 0 {
				return cand[idx+1:], true
			}
			return cand, true
		}
		if i > 0 && l.wildcard[cand] {
			// "*.ck" puts the suffix one label to the left of "ck".
			return strings.Join(labels[i-1:], "."), true
		}
		if l.normal[cand] {
			return cand, true
		}
	}
	return labels[len(labels)-1], false
}

// RegistrableDomain returns the eTLD+1 of domain: the public suffix plus one
// label. It returns "" if the domain is itself a public suffix or empty.
func (l *List) RegistrableDomain(domain string) string {
	domain = Normalize(domain)
	if domain == "" {
		return ""
	}
	suffix, _ := l.PublicSuffix(domain)
	if domain == suffix {
		return ""
	}
	rest := strings.TrimSuffix(domain, "."+suffix)
	if rest == domain {
		// Suffix did not align on a label boundary; treat domain as opaque.
		return ""
	}
	labels := strings.Split(rest, ".")
	return labels[len(labels)-1] + "." + suffix
}

// rdMemo caches the default list's eTLD+1 extraction. The pipeline calls
// tld(x) for every NS host, SAN entry, and CNAME link of every site, but the
// universe of distinct inputs is the (small) set of hostnames in a run — the
// split/join work in the generic algorithm dominated the measurement pass's
// allocation profile before memoization.
var rdMemo = intern.NewMemo(func(domain string) string {
	return defaultList.RegistrableDomain(domain)
})

// RegistrableDomain extracts the eTLD+1 using the default list. This is the
// paper's tld(x) primitive. Results are memoized per distinct input and
// interned process-wide.
func RegistrableDomain(domain string) string {
	return rdMemo.Get(domain)
}

// PublicSuffix returns the public suffix of domain using the default list.
func PublicSuffix(domain string) string {
	s, _ := defaultList.PublicSuffix(domain)
	return s
}

// SameRegistrableDomain reports whether two hostnames share an eTLD+1. Hosts
// that are themselves bare public suffixes never match.
func SameRegistrableDomain(a, b string) bool {
	ra, rb := RegistrableDomain(a), RegistrableDomain(b)
	return ra != "" && ra == rb
}

// Normalize lowercases a hostname and strips the trailing dot of a
// fully-qualified DNS name, the leading "*." of a wildcard SAN entry and
// surrounding whitespace.
func Normalize(host string) string {
	host = strings.ToLower(strings.TrimSpace(host))
	host = strings.TrimSuffix(host, ".")
	host = strings.TrimPrefix(host, "*.")
	return host
}
