package publicsuffix

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPublicSuffix(t *testing.T) {
	tests := []struct {
		domain, suffix string
		explicit       bool
	}{
		{"example.com", "com", true},
		{"www.example.com", "com", true},
		{"example.co.uk", "co.uk", true},
		{"www.example.co.uk", "co.uk", true},
		{"foo.github.io", "github.io", true},
		{"github.io", "github.io", true},
		{"com", "com", true},
		{"unknowntld-site.zz", "zz", false},
		{"a.b.unknowntld-site.zz", "zz", false},
		// Wildcard rule *.ck: any label under ck is a public suffix.
		{"foo.ck", "foo.ck", true},
		{"bar.foo.ck", "foo.ck", true},
		// Exception rule !www.ck: www.ck's suffix is just ck.
		{"www.ck", "ck", true},
		{"sub.www.ck", "ck", true},
		// Trailing dots and case are normalized.
		{"Example.COM.", "com", true},
	}
	for _, tt := range tests {
		got, explicit := Default().PublicSuffix(tt.domain)
		if got != tt.suffix || explicit != tt.explicit {
			t.Errorf("PublicSuffix(%q) = (%q, %v), want (%q, %v)",
				tt.domain, got, explicit, tt.suffix, tt.explicit)
		}
	}
}

func TestRegistrableDomain(t *testing.T) {
	tests := []struct{ domain, want string }{
		{"example.com", "example.com"},
		{"www.example.com", "example.com"},
		{"a.b.c.example.com", "example.com"},
		{"example.co.uk", "example.co.uk"},
		{"deep.www.example.co.uk", "example.co.uk"},
		{"site.github.io", "site.github.io"},
		{"asset.site.github.io", "site.github.io"},
		// Bare public suffixes have no registrable domain.
		{"com", ""},
		{"co.uk", ""},
		{"github.io", ""},
		{"", ""},
		// Wildcard/exception rules.
		{"x.foo.ck", "x.foo.ck"},
		{"www.ck", "www.ck"},
		{"city.kawasaki.jp", "city.kawasaki.jp"},
		{"a.city.kawasaki.jp", "city.kawasaki.jp"},
		{"other.kawasaki.jp", ""},
		{"a.other.kawasaki.jp", "a.other.kawasaki.jp"},
	}
	for _, tt := range tests {
		if got := RegistrableDomain(tt.domain); got != tt.want {
			t.Errorf("RegistrableDomain(%q) = %q, want %q", tt.domain, got, tt.want)
		}
	}
}

func TestSameRegistrableDomain(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"www.youtube.com", "m.youtube.com", true},
		{"youtube.com", "www.youtube.com", true},
		{"twitter.com", "dynect.net", false},
		// Same logical entity but different eTLD+1 must NOT match: this is
		// exactly the paper's alicdn.com vs alibabadns.com pitfall.
		{"ns.alicdn.com", "ns.alibabadns.com", false},
		// Bare suffixes never match, even with themselves.
		{"com", "com", false},
		{"github.io", "github.io", false},
		// But registrable domains under a PSL entry are distinct entities.
		{"a.github.io", "b.github.io", false},
		{"x.a.github.io", "y.a.github.io", true},
	}
	for _, tt := range tests {
		if got := SameRegistrableDomain(tt.a, tt.b); got != tt.want {
			t.Errorf("SameRegistrableDomain(%q, %q) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Example.COM.", "example.com"},
		{"*.cdn.example.net", "cdn.example.net"},
		{"  host.io  ", "host.io"},
		{".", ""},
	}
	for _, tt := range tests {
		if got := Normalize(tt.in); got != tt.want {
			t.Errorf("Normalize(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestNewListCustomRules(t *testing.T) {
	l := NewList([]string{"internal", "corp.internal", "*.dyn.internal", "!safe.dyn.internal", "", "  "})
	if got := l.RegistrableDomain("svc.team.corp.internal"); got != "team.corp.internal" {
		t.Errorf("custom list: got %q", got)
	}
	if got := l.RegistrableDomain("a.b.dyn.internal"); got != "a.b.dyn.internal" {
		t.Errorf("wildcard custom rule: got %q", got)
	}
	if got := l.RegistrableDomain("safe.dyn.internal"); got != "safe.dyn.internal" {
		t.Errorf("exception custom rule: got %q", got)
	}
}

// Property: the registrable domain is always a suffix of the input and has
// exactly one more label than its public suffix.
func TestPropertyRegistrableDomainStructure(t *testing.T) {
	suffixes := []string{"com", "net", "org", "co.uk", "io", "github.io"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		labels := 1 + rng.Intn(4)
		parts := make([]string, labels)
		for i := range parts {
			n := 1 + rng.Intn(10)
			b := make([]byte, n)
			for j := range b {
				b[j] = byte('a' + rng.Intn(26))
			}
			parts[i] = string(b)
		}
		domain := strings.Join(parts, ".") + "." + suffixes[rng.Intn(len(suffixes))]
		rd := RegistrableDomain(domain)
		if rd == "" {
			return false
		}
		if !strings.HasSuffix(domain, rd) {
			return false
		}
		ps, _ := Default().PublicSuffix(domain)
		return strings.Count(rd, ".") == strings.Count(ps, ".")+1 &&
			strings.HasSuffix(rd, ps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: RegistrableDomain is idempotent.
func TestPropertyRegistrableDomainIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hosts := []string{"www.example.com", "a.b.example.co.uk", "x.site.github.io", "deep.chain.of.labels.org"}
		h := hosts[rng.Intn(len(hosts))]
		rd := RegistrableDomain(h)
		return RegistrableDomain(rd) == rd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRegistrableDomain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RegistrableDomain("static.assets.cdn.example.co.uk")
	}
}
