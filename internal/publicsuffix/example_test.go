package publicsuffix_test

import (
	"fmt"

	"depscope/internal/publicsuffix"
)

func ExampleRegistrableDomain() {
	fmt.Println(publicsuffix.RegistrableDomain("www.example.co.uk"))
	fmt.Println(publicsuffix.RegistrableDomain("static.assets.example.com"))
	fmt.Println(publicsuffix.RegistrableDomain("com"))
	// Output:
	// example.co.uk
	// example.com
	//
}

func ExampleSameRegistrableDomain() {
	// The paper's alicdn.com / alibabadns.com pitfall: same organisation,
	// different registrable domains.
	fmt.Println(publicsuffix.SameRegistrableDomain("www.youtube.com", "m.youtube.com"))
	fmt.Println(publicsuffix.SameRegistrableDomain("ns.alicdn.com", "ns.alibabadns.com"))
	// Output:
	// true
	// false
}
