package analysis

import (
	"fmt"
	"io"

	"depscope/internal/chain"
	"depscope/internal/core"
)

// ChainSummary computes the chain analysis for one snapshot of the run,
// preferring 2020 (the headline dataset). It returns nil when the run was
// measured without chains — the report section and /v1/chains 404 key off
// that.
func ChainSummary(run *Run, topN int) *chain.Summary {
	sd := run.Y2020
	if sd == nil {
		sd = run.Y2016
	}
	if sd == nil {
		return nil
	}
	hasChains := false
	for _, s := range sd.Graph.Sites {
		if len(s.Chains) > 0 {
			hasChains = true
			break
		}
	}
	if !hasChains {
		return nil
	}
	return chain.Summarize(sd.Graph, topN)
}

// RenderChains prints the implicit-trust section: run-level chain shape,
// the chain-depth histogram, the top implicitly-trusted vendors, and the
// direct-vs-implicit concentration comparison for every direct service.
// It prints nothing for chains-off runs, so the full report stays
// byte-identical to the pre-chain output.
func RenderChains(w io.Writer, run *Run) {
	s := ChainSummary(run, 5)
	if s == nil {
		return
	}
	header(w, "Implicit trust via resource chains (2020)")
	fmt.Fprintf(w, "sites with chain edges  %d of %d\n", s.SitesWithChains, s.Sites)
	fmt.Fprintf(w, "chain edges             %d across %d vendors\n", s.Edges, s.Vendors)
	fmt.Fprintf(w, "inclusion depth         max %d, mean %.2f\n", s.MaxDepth, s.MeanDepth)

	fmt.Fprintf(w, "\n%-8s %8s\n", "depth", "edges")
	for _, b := range s.DepthHist {
		fmt.Fprintf(w, "%-8d %8d\n", b.Depth, b.Edges)
	}

	fmt.Fprintf(w, "\n%-24s %8s %8s %8s %10s %6s %6s\n",
		"implicitly trusted", "conc", "impact", "sites", "weighted", "dmin", "dmax")
	for _, v := range s.TopImplicit {
		fmt.Fprintf(w, "%-24s %8s %8s %8d %10.1f %6d %6d\n",
			v.Provider, pct(frac(v.Concentration, s.Sites)), pct(frac(v.Impact, s.Sites)),
			v.Sites, v.Weighted, v.MinDepth, v.MaxDepth)
	}

	fmt.Fprintf(w, "\n%-24s %-5s %10s %10s %10s %10s\n",
		"provider", "svc", "C direct", "C implicit", "I direct", "I implicit")
	for _, r := range s.Comparison {
		fmt.Fprintf(w, "%-24s %-5s %10s %10s %10s %10s\n",
			r.Provider, r.Service,
			pct(frac(r.DirectConcentration, s.Sites)), pct(frac(r.ImplicitConcentration, s.Sites)),
			pct(frac(r.DirectImpact, s.Sites)), pct(frac(r.ImplicitImpact, s.Sites)))
	}
}

// chainEdgesOf converts the graph's chain edges of one site back to the
// summary form used by tests.
func chainEdgesOf(g *core.Graph, site string) []core.ChainEdge {
	for _, s := range g.Sites {
		if s.Name == site {
			return s.Chains
		}
	}
	return nil
}
