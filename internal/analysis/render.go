package analysis

import (
	"fmt"
	"io"

	"depscope/internal/core"
	"depscope/internal/telemetry"
)

// reportSteps lists every table and figure of the evaluation in paper
// order. Report walks it, timing each step into a per-figure histogram
// (analysis_<name>_seconds) so a slow aggregation is attributable.
var reportSteps = []struct {
	name   string
	render func(io.Writer, *Run)
}{
	{"table1", RenderTable1},
	{"table2", RenderTable2},
	{"figure2", RenderFigure2},
	{"table3", RenderTable3},
	{"figure3", RenderFigure3},
	{"table4", RenderTable4},
	{"figure4", RenderFigure4},
	{"table5", RenderTable5},
	{"figure5", RenderFigure5},
	{"figure5_bands", RenderFigure5Bands},
	{"figure6", RenderFigure6},
	{"table6", RenderTable6},
	{"figure7", RenderFigure7},
	{"table7", RenderTable7},
	{"figure8", RenderFigure8},
	{"table8", RenderTable8},
	{"figure9", RenderFigure9},
	{"table9", RenderTable9},
	{"hidden_deps", RenderHiddenDeps},
	{"critical_deps", RenderCriticalDeps},
	{"dyn_replay", RenderDynReplay},
	{"mitigation", RenderMitigation},
	{"chains", RenderChains},
}

// Report writes every table and figure of the evaluation to w, in paper
// order. It is the backend of cmd/depscope.
func Report(w io.Writer, run *Run) {
	defer telemetry.StartSpan("analysis.report").End()
	for _, step := range reportSteps {
		sp := telemetry.StartSpan("analysis." + step.name)
		step.render(w, run)
		sp.End()
	}
}

func pct(f float64) string { return fmt.Sprintf("%5.1f%%", 100*f) }

// RenderErrorSummary prints the per-snapshot pipeline diagnostics: per-stage
// progress and error counters, the resolver cache hit-rate, and (under
// conc.Collect) a sample of the recorded per-site errors. It is the
// error-summary footer of cmd/depscope.
func RenderErrorSummary(w io.Writer, run *Run) {
	header(w, "Pipeline diagnostics")
	for _, sd := range []*SnapshotData{run.Y2016, run.Y2020} {
		if sd == nil {
			continue
		}
		d := sd.Results.Diagnostics
		fmt.Fprintf(w, "%s: resolver %d lookups, %.1f%% cache hits\n",
			sd.Snapshot, d.Resolver.Queries, 100*d.Resolver.HitRate())
		for _, st := range d.Stages {
			fmt.Fprintf(w, "  %-13s %7d processed  %6d errors\n", st.Stage, st.Sites, st.Errors)
		}
		const sample = 5
		for i, e := range d.Errors {
			if i == sample {
				fmt.Fprintf(w, "  ... and %d more recorded errors\n",
					len(d.Errors)-sample+d.ErrorsTruncated)
				break
			}
			fmt.Fprintf(w, "  %s [%s]: %s\n", e.Site, e.Stage, e.Err)
		}
	}
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n", title)
	for range title {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}

// RenderTable1 prints the 2020 dataset summary.
func RenderTable1(w io.Writer, run *Run) {
	t := Table1(run)
	header(w, t.Title)
	fmt.Fprintf(w, "Characterized websites for DNS analysis  %d\n", t.CharacterizedDNS)
	fmt.Fprintf(w, "Websites using CDNs                       %d\n", t.UsingCDN)
	fmt.Fprintf(w, "Characterized websites for CDN analysis   %d\n", t.CharacterizedCDN)
	fmt.Fprintf(w, "Websites supporting HTTPS                 %d\n", t.SupportingHTTPS)
	fmt.Fprintf(w, "Characterized websites for CA analysis    %d\n", t.CharacterizedHTTPS)
}

// RenderTable2 prints the comparison dataset summary.
func RenderTable2(w io.Writer, run *Run) {
	t := Table2(run)
	header(w, "Table 2: 2016-vs-2020 comparison dataset")
	fmt.Fprintf(w, "Characterized websites for DNS analysis   %d\n", t.CharacterizedDNS)
	fmt.Fprintf(w, "Websites using CDN either in 2016 or 2020 %d\n", t.UsingCDNEither)
	fmt.Fprintf(w, "Characterized websites for CDN analysis   %d\n", t.CharacterizedCDN)
	fmt.Fprintf(w, "Websites HTTPS either in 2016 or 2020     %d\n", t.HTTPSEither)
	fmt.Fprintf(w, "2016-list websites gone by 2020           %.1f%%\n", 100*t.DeadFraction)
}

func renderBands(w io.Writer, bands [4]core.BandStats) {
	fmt.Fprintf(w, "%-8s %10s %10s %12s %14s\n", "band", "third", "critical", "multi-third", "private+third")
	for _, b := range bands {
		fmt.Fprintf(w, "%-8s %10s %10s %12s %14s\n",
			b.Label, pct(b.ThirdParty()), pct(b.Critical()), pct(b.MultiThird()), pct(b.MixedFrac()))
	}
}

// RenderFigure2 prints the DNS dependency series.
func RenderFigure2(w io.Writer, run *Run) {
	header(w, "Figure 2: website->DNS dependency by rank (2020, of characterized sites)")
	renderBands(w, Figure2(run))
}

// RenderFigure3 prints the CDN dependency series.
func RenderFigure3(w io.Writer, run *Run) {
	header(w, "Figure 3: website->CDN dependency by rank (2020, of CDN-using sites)")
	renderBands(w, Figure3(run))
}

// RenderFigure4 prints the CA series.
func RenderFigure4(w io.Writer, run *Run) {
	header(w, "Figure 4: HTTPS, third-party CA and OCSP stapling by rank (2020)")
	fmt.Fprintf(w, "%-8s %10s %12s %12s\n", "band", "https", "third CA", "stapling")
	for _, r := range Figure4(run) {
		fmt.Fprintf(w, "%-8s %10s %12s %12s\n", r.Label, pct(r.HTTPSFrac), pct(r.ThirdCAFrac), pct(r.StaplingFrac))
	}
}

func renderTrends(w io.Writer, rows [4]core.TrendRow) {
	fmt.Fprintf(w, "%-28s", "Website Trends")
	for _, r := range rows {
		fmt.Fprintf(w, " %8s", r.Label)
	}
	fmt.Fprintln(w)
	line := func(name string, get func(core.TrendRow) float64) {
		fmt.Fprintf(w, "%-28s", name)
		for _, r := range rows {
			fmt.Fprintf(w, " %8.1f", get(r))
		}
		fmt.Fprintln(w)
	}
	line("Pvt to Single 3rd", func(r core.TrendRow) float64 { return r.PvtToSingle })
	line("Single Third to Pvt", func(r core.TrendRow) float64 { return r.SingleToPvt })
	line("Red. to No Red.", func(r core.TrendRow) float64 { return r.RedToNoRed })
	line("No Red. to Red.", func(r core.TrendRow) float64 { return r.NoRedToRed })
	line("Critical dependency delta", func(r core.TrendRow) float64 { return r.CriticalDelta })
}

// RenderTable3 prints DNS trends.
func RenderTable3(w io.Writer, run *Run) {
	header(w, "Table 3: website->DNS trends 2016 vs 2020 (percent of comparison sites)")
	renderTrends(w, Table3(run))
}

// RenderTable4 prints CDN trends.
func RenderTable4(w io.Writer, run *Run) {
	header(w, "Table 4: website->CDN trends 2016 vs 2020 (percent of comparison sites)")
	renderTrends(w, Table4(run))
}

// RenderTable5 prints stapling trends.
func RenderTable5(w io.Writer, run *Run) {
	header(w, "Table 5: website->CA stapling trends 2016 vs 2020 (percent of HTTPS-in-both sites)")
	rows := Table5(run)
	fmt.Fprintf(w, "%-28s", "Website Trends")
	for _, r := range rows {
		fmt.Fprintf(w, " %8s", r.Label)
	}
	fmt.Fprintln(w)
	line := func(name string, get func(core.StaplingTrendRow) float64) {
		fmt.Fprintf(w, "%-28s", name)
		for _, r := range rows {
			fmt.Fprintf(w, " %8.1f", get(r))
		}
		fmt.Fprintln(w)
	}
	line("Stapling to No Stapling", func(r core.StaplingTrendRow) float64 { return r.StapleToNo })
	line("No Stapling to Stapling", func(r core.StaplingTrendRow) float64 { return r.NoToStaple })
	line("Critical dependency delta", func(r core.StaplingTrendRow) float64 { return r.CriticalDelta })
}

// RenderFigure5 prints the top-5 providers of each service with C and I.
func RenderFigure5(w io.Writer, run *Run) {
	for _, svc := range []core.Service{core.DNS, core.CDN, core.CA} {
		header(w, fmt.Sprintf("Figure 5 (%s): top providers by direct concentration (2020)", svc))
		fmt.Fprintf(w, "%-28s %16s %10s\n", "provider", "concentration", "impact")
		for _, r := range Figure5(run, svc, 5) {
			fmt.Fprintf(w, "%-28s %16s %10s\n", r.Name, pct(r.Concentration), pct(r.Impact))
		}
	}
}

// RenderFigure5Bands prints the rank-dependent provider tables the paper
// discusses in §4.2 (Dyn in the top-100, Akamai's top-100 CDN dominance).
func RenderFigure5Bands(w io.Writer, run *Run) {
	for _, svc := range []core.Service{core.DNS, core.CDN, core.CA} {
		header(w, fmt.Sprintf("Figure 5 (%s) by rank band: top providers per band (2020)", svc))
		for band := 0; band < 4; band++ {
			rows := Figure5Band(run, svc, band, 3)
			fmt.Fprintf(w, "band %d:", band)
			for _, r := range rows {
				fmt.Fprintf(w, "  %s %s/%s", r.Name, pct(r.Concentration), pct(r.Impact))
			}
			fmt.Fprintln(w)
		}
	}
}

// RenderFigure6 prints the provider-concentration CDF summaries.
func RenderFigure6(w io.Writer, run *Run) {
	for _, svc := range []core.Service{core.DNS, core.CDN, core.CA} {
		series := Figure6(run, svc)
		header(w, fmt.Sprintf("Figure 6 (%s): provider concentration CDF", svc))
		for _, s := range series {
			fmt.Fprintf(w, "%s: %d distinct providers; top %d cover 80%% of third-party-using sites\n",
				s.Year, s.Distinct, s.ProvidersFor80)
		}
	}
}

// RenderTable6 prints inter-service dependency counts.
func RenderTable6(w io.Writer, run *Run) {
	header(w, "Table 6: inter-service dependencies (2020)")
	fmt.Fprintf(w, "%-10s %8s %12s %12s\n", "dependency", "total", "third-party", "critical")
	for _, r := range Table6(run) {
		fmt.Fprintf(w, "%-10s %8d %5d (%4.1f%%) %5d (%4.1f%%)\n",
			r.Name, r.Total,
			r.Third, 100*frac(r.Third, r.Total),
			r.Critical, 100*frac(r.Critical, r.Total))
	}
}

func renderAmplification(w io.Writer, rows []AmplificationRow) {
	fmt.Fprintf(w, "%-28s %12s %12s %12s %12s\n", "provider", "C direct", "C indirect", "I direct", "I indirect")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %12s %12s %12s %12s\n", r.Name,
			pct(r.DirectConcentration), pct(r.IndirectConcentration),
			pct(r.DirectImpact), pct(r.IndirectImpact))
	}
}

// RenderFigure7 prints the CA→DNS amplification.
func RenderFigure7(w io.Writer, run *Run) {
	header(w, "Figure 7: top DNS providers with vs without CA->DNS indirection (2020)")
	renderAmplification(w, Figure7(run, 5))
	fmt.Fprintf(w, "top-3 impact: direct %s, with CA->DNS %s (Obs 9: 40%% vs 72%%)\n",
		pct(TopKImpactShare(run, core.DNS, core.DirectOnly(), 3)),
		pct(TopKImpactShare(run, core.DNS, core.TraversalOpts{ViaProviders: []core.Service{core.CA}}, 3)))
}

// RenderFigure8 prints the CA→CDN amplification.
func RenderFigure8(w io.Writer, run *Run) {
	header(w, "Figure 8: top CDNs with vs without CA->CDN indirection (2020)")
	renderAmplification(w, Figure8(run, 5))
}

// RenderFigure9 prints the CDN→DNS amplification.
func RenderFigure9(w io.Writer, run *Run) {
	header(w, "Figure 9: top DNS providers with vs without CDN->DNS indirection (2020)")
	renderAmplification(w, Figure9(run, 5))
}

func renderProviderTrend(w io.Writer, t core.ProviderTrend) {
	fmt.Fprintf(w, "Private to Single Third Party   %d\n", t.PvtToSingle)
	fmt.Fprintf(w, "Single Third Party to Private   %d\n", t.SingleToPvt)
	fmt.Fprintf(w, "Redundancy to No Redundancy     %d\n", t.RedToNoRed)
	fmt.Fprintf(w, "No Redundancy to Redundancy     %d\n", t.NoRedToRed)
	fmt.Fprintf(w, "No CDN/DNS to Third Party       %d\n", t.NoneToThird)
	fmt.Fprintf(w, "Third Party to None             %d\n", t.ThirdToNone)
	fmt.Fprintf(w, "Critical dependency delta       %+d (of %d providers)\n", t.CriticalDelta, t.Total)
}

// RenderTable7 prints CA→DNS provider trends.
func RenderTable7(w io.Writer, run *Run) {
	header(w, "Table 7: CA->DNS provider trends 2016 vs 2020")
	renderProviderTrend(w, Table7(run))
}

// RenderTable8 prints CA→CDN provider trends.
func RenderTable8(w io.Writer, run *Run) {
	header(w, "Table 8: CA->CDN provider trends 2016 vs 2020")
	renderProviderTrend(w, Table8(run))
}

// RenderTable9 prints CDN→DNS provider trends.
func RenderTable9(w io.Writer, run *Run) {
	header(w, "Table 9: CDN->DNS provider trends 2016 vs 2020")
	renderProviderTrend(w, Table9(run))
}

// RenderHiddenDeps prints the §5 "additional websites" findings.
func RenderHiddenDeps(w io.Writer, run *Run) {
	h := HiddenDependencies(run)
	header(w, "Hidden dependencies of private infrastructure (2020)")
	fmt.Fprintf(w, "sites with private CDN on third-party DNS  %d (paper: 290 per 100K)\n", h.PrivateCDNThirdDNS)
	fmt.Fprintf(w, "sites with private CA on third-party CDN   %d (paper: 32 per 100K)\n", h.PrivateCAThirdCDN)
	fmt.Fprintf(w, "sites with private CA on third-party DNS   %d (paper: 3 per 100K)\n", h.PrivateCAThirdDNS)
}

// RenderCriticalDeps prints the §8.1 critical-dependencies histogram.
func RenderCriticalDeps(w io.Writer, run *Run) {
	h := CriticalDeps(run, 4)
	header(w, "Critical dependencies per website (2020)")
	fmt.Fprintf(w, "%-12s %10s %10s\n", ">=k deps", "direct", "indirect")
	for k := 1; k < len(h.DirectAtLeast); k++ {
		fmt.Fprintf(w, "k=%-10d %10s %10s\n", k, pct(h.DirectAtLeast[k]), pct(h.IndirectAtLeast[k]))
	}
}
