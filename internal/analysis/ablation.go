package analysis

import (
	"context"
	"fmt"
	"io"

	"depscope/internal/core"
	"depscope/internal/ecosystem"
	"depscope/internal/measure"
)

// Ablation experiments: quantify what each ingredient of the §3.1 combined
// heuristic contributes, and how sensitive the pipeline is to the
// concentration threshold the paper sets at 50.

// AblationRow is one classifier variant's outcome.
type AblationRow struct {
	Variant string
	// CharacterizedFrac is the share of sites any heuristic could classify.
	CharacterizedFrac float64
	// ThirdFrac is the third-party share among characterized sites.
	ThirdFrac float64
	// Accuracy is the site-class accuracy against ground truth, over sites
	// the full methodology characterizes.
	Accuracy float64
}

// HeuristicAblation re-runs the DNS classification with individual rules
// disabled. The full pipeline is the baseline; "-san", "-soa" and
// "-concentration" each remove one rule.
func HeuristicAblation(ctx context.Context, run *Run) ([]AblationRow, error) {
	variants := []struct {
		name   string
		adjust func(*measure.Config)
	}{
		{"full heuristic", func(*measure.Config) {}},
		{"without SAN rule", func(c *measure.Config) { c.DisableSAN = true }},
		{"without SOA rule", func(c *measure.Config) { c.DisableSOA = true }},
		{"without concentration rule", func(c *measure.Config) { c.DisableConcentration = true }},
	}

	truth := make(map[string]ecosystem.SiteSnapshot)
	for _, s := range run.Universe.List(ecosystem.Y2020) {
		if s.Snap[ecosystem.Y2020].Exists {
			truth[s.Domain] = s.Snap[ecosystem.Y2020]
		}
	}
	world := run.Y2020.World
	if world.Streamed {
		return nil, fmt.Errorf("analysis: ablations re-measure the world and need resident pages; run without -compact/-mem-budget")
	}

	var out []AblationRow
	for _, v := range variants {
		cfg := measure.Config{
			Resolver: world.NewResolver(),
			Certs:    world.Certs,
			Pages:    world,
			CDNMap:   measure.CDNMap(world.CNAMEToCDN),
		}
		v.adjust(&cfg)
		res, err := measure.Run(ctx, world.Sites, cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.name, err)
		}
		row := AblationRow{Variant: v.name}
		var characterized, third, scored, correct int
		for i := range res.Sites {
			sr := &res.Sites[i]
			if sr.DNS.Class != core.ClassUnknown {
				characterized++
				if sr.DNS.Class.UsesThird() {
					third++
				}
			}
			ss := truth[sr.Site]
			if ss.DNSTrap == ecosystem.TrapUnknown {
				continue // the full methodology leaves these out
			}
			scored++
			if sr.DNS.Class == expectedClass(ss) {
				correct++
			}
		}
		row.CharacterizedFrac = frac(characterized, len(res.Sites))
		row.ThirdFrac = frac(third, characterized)
		row.Accuracy = frac(correct, scored)
		out = append(out, row)
	}
	return out, nil
}

func expectedClass(ss ecosystem.SiteSnapshot) core.DepClass {
	switch ss.DNSMode {
	case ecosystem.DepPrivate:
		return core.ClassPrivate
	case ecosystem.DepSingleThird:
		return core.ClassSingleThird
	case ecosystem.DepMultiThird:
		return core.ClassMultiThird
	case ecosystem.DepPrivatePlusThird:
		return core.ClassPrivatePlusThird
	}
	return core.ClassNone
}

// ThresholdRow is one concentration-threshold setting's outcome.
type ThresholdRow struct {
	Threshold         int
	CharacterizedFrac float64
	ThirdFrac         float64
}

// ThresholdSweep measures how the §3.1 concentration cutoff (the paper's
// "e.g. > 50") moves the uncharacterized mass: too low and trap providers
// get misclassified as third parties; too high and big-provider customers
// with provider-pointing SOAs become unmeasurable.
func ThresholdSweep(ctx context.Context, run *Run, thresholds []int) ([]ThresholdRow, error) {
	world := run.Y2020.World
	if world.Streamed {
		return nil, fmt.Errorf("analysis: threshold sweeps re-measure the world and need resident pages; run without -compact/-mem-budget")
	}
	var out []ThresholdRow
	for _, th := range thresholds {
		res, err := measure.Run(ctx, world.Sites, measure.Config{
			Resolver:               world.NewResolver(),
			Certs:                  world.Certs,
			Pages:                  world,
			CDNMap:                 measure.CDNMap(world.CNAMEToCDN),
			ConcentrationThreshold: th,
		})
		if err != nil {
			return nil, err
		}
		var characterized, third int
		for i := range res.Sites {
			if res.Sites[i].DNS.Class != core.ClassUnknown {
				characterized++
				if res.Sites[i].DNS.Class.UsesThird() {
					third++
				}
			}
		}
		out = append(out, ThresholdRow{
			Threshold:         th,
			CharacterizedFrac: frac(characterized, len(res.Sites)),
			ThirdFrac:         frac(third, characterized),
		})
	}
	return out, nil
}

// RenderAblation prints both ablation experiments.
func RenderAblation(w io.Writer, run *Run) error {
	ctx := context.Background()
	rows, err := HeuristicAblation(ctx, run)
	if err != nil {
		return err
	}
	header(w, "Ablation: contribution of each classification rule (DNS, 2020)")
	fmt.Fprintf(w, "%-30s %14s %12s %10s\n", "variant", "characterized", "third-party", "accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-30s %14s %12s %10s\n", r.Variant,
			pct(r.CharacterizedFrac), pct(r.ThirdFrac), pct(r.Accuracy))
	}

	sweep, err := ThresholdSweep(ctx, run, []int{5, 10, 25, 50, 100, 200})
	if err != nil {
		return err
	}
	header(w, "Ablation: concentration-threshold sensitivity (paper uses 50)")
	fmt.Fprintf(w, "%-10s %14s %12s\n", "threshold", "characterized", "third-party")
	for _, r := range sweep {
		fmt.Fprintf(w, "%-10d %14s %12s\n", r.Threshold, pct(r.CharacterizedFrac), pct(r.ThirdFrac))
	}
	return nil
}
