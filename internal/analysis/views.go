package analysis

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"depscope/internal/core"
)

// Query-friendly read-only views over a Run, exported for the depserver
// query API (internal/serve). Everything here reads the immutable measured
// graph — map lookups and bounded walks, no locks — so a server can call it
// on the request hot path against a published snapshot. The only exception
// is RankedProviders, which goes through the graph's metrics engine (a
// mutex-guarded lazy cache): callers serving rankings under load should
// compute them once at snapshot-build time and serve the result.

// ErrUnknownSite marks a site lookup that found no such site in the
// snapshot; the query API maps it to 404 where every other view error is a
// caller mistake (400).
var ErrUnknownSite = errors.New("analysis: unknown site")

// ServiceDep is one service's measured arrangement in a SiteView.
type ServiceDep struct {
	Service   string `json:"service"`
	Class     string `json:"class"`
	Critical  bool   `json:"critical"`
	Redundant bool   `json:"redundant"`
	// Providers are the measured third-party provider identities.
	Providers []string `json:"providers,omitempty"`
	// PrivateInfra names the site's own infrastructure nodes for this
	// service (a private CDN or CA domain with its own measured
	// dependencies — the paper's hidden-dependency cases).
	PrivateInfra []string `json:"private_infra,omitempty"`
}

// SiteView is the per-site dependency breakdown the query API serves.
type SiteView struct {
	Site     string       `json:"site"`
	Rank     int          `json:"rank"`
	Snapshot string       `json:"snapshot"`
	Services []ServiceDep `json:"services"`
	// CriticalProviders lists every provider the site depends on critically,
	// directly or transitively through provider-to-provider dependencies —
	// the per-site expansion behind Graph.CriticalDepsPerSite(true).
	CriticalProviders []string `json:"critical_providers,omitempty"`
}

// CanonicalSnapshot normalizes a snapshot spec: the empty string means the
// 2020 snapshot, matching the incident scenario format.
func CanonicalSnapshot(s string) string {
	if s == "" {
		return "2020"
	}
	return s
}

// SiteBreakdown looks one site up in the named snapshot of the run and
// returns its dependency breakdown. An unknown site wraps ErrUnknownSite.
func SiteBreakdown(run *Run, snapshot, site string) (*SiteView, error) {
	g, err := SnapshotGraph(run, snapshot)
	if err != nil {
		return nil, err
	}
	s := g.Site(site)
	if s == nil {
		return nil, fmt.Errorf("%w: %q in snapshot %s", ErrUnknownSite, site, CanonicalSnapshot(snapshot))
	}
	view := &SiteView{
		Site:     s.Name,
		Rank:     s.Rank,
		Snapshot: CanonicalSnapshot(snapshot),
	}
	for _, svc := range core.Services {
		d, ok := s.Deps[svc]
		infra := s.PrivateInfra[svc]
		if !ok && len(infra) == 0 {
			continue
		}
		view.Services = append(view.Services, ServiceDep{
			Service:      strings.ToLower(svc.String()),
			Class:        d.Class.String(),
			Critical:     d.Class.Critical(),
			Redundant:    d.Class.Redundant(),
			Providers:    d.Providers,
			PrivateInfra: infra,
		})
	}
	view.CriticalProviders = criticalProviders(g, s)
	return view, nil
}

// criticalProviders expands the site's critical dependencies transitively
// over provider-to-provider critical edges (the CriticalDepsPerSite(true)
// walk, surfaced per site).
func criticalProviders(g *core.Graph, s *core.Site) []string {
	set := make(map[string]bool)
	visited := make(map[string]bool)
	var walk func(p string)
	walk = func(p string) {
		if visited[p] {
			return
		}
		visited[p] = true
		set[p] = true
		prov, ok := g.Providers[p]
		if !ok {
			return
		}
		for _, d := range prov.Deps {
			if !d.Class.Critical() {
				continue
			}
			for _, dep := range d.Providers {
				walk(dep)
			}
		}
	}
	for _, d := range s.Deps {
		if !d.Class.Critical() {
			continue
		}
		for _, p := range d.Providers {
			walk(p)
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// SiteNames returns the snapshot's site names in rank order.
func SiteNames(run *Run, snapshot string) ([]string, error) {
	g, err := SnapshotGraph(run, snapshot)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(g.Sites))
	for i, s := range g.Sites {
		names[i] = s.Name
	}
	return names, nil
}

// RankedProviders ranks every provider of svc in the named snapshot by
// concentration (byImpact false) or impact (byImpact true) under the full
// indirect traversal. It consults the graph's metrics engine, which caches
// the batch propagation — call it at snapshot-build time, not per request.
func RankedProviders(run *Run, snapshot string, svc core.Service, byImpact bool) ([]core.ProviderStat, error) {
	sd, err := snapshotData(run, snapshot)
	if err != nil {
		return nil, err
	}
	// Compact runs rank straight off the columnar engine — property-tested
	// to order identically to the pointer graph's ranking.
	if sd.Compact != nil {
		return sd.Compact.TopProviders(svc, core.AllIndirect(), byImpact, 0), nil
	}
	return sd.Graph.TopProviders(svc, core.AllIndirect(), byImpact, 0), nil
}
