package analysis

import (
	"context"
	"fmt"
	"io"

	"depscope/internal/core"
	"depscope/internal/incident"
)

// Incident-engine integration: the Dyn-replay table of the full report, and
// the snapshot plumbing the depscope -incident mode and the depserver
// /incident endpoint share.

// SnapshotGraph resolves an incident scenario's snapshot spec ("2016",
// "2020", or empty for 2020) to the measured graph of this run.
func SnapshotGraph(run *Run, snapshot string) (*core.Graph, error) {
	switch snapshot {
	case "2016":
		if run.Y2016 == nil {
			return nil, fmt.Errorf("analysis: the 2016 snapshot was not measured in this run")
		}
		return run.Y2016.Graph, nil
	case "", "2020":
		if run.Y2020 == nil {
			return nil, fmt.Errorf("analysis: the 2020 snapshot was not measured in this run")
		}
		return run.Y2020.Graph, nil
	}
	return nil, fmt.Errorf("analysis: unknown snapshot %q (want 2016 or 2020)", snapshot)
}

// snapshotData resolves a snapshot name to its full SnapshotData, for
// callers that can exploit the columnar representation when present.
func snapshotData(run *Run, snapshot string) (*SnapshotData, error) {
	switch snapshot {
	case "2016":
		if run.Y2016 == nil {
			return nil, fmt.Errorf("analysis: the 2016 snapshot was not measured in this run")
		}
		return run.Y2016, nil
	case "", "2020":
		if run.Y2020 == nil {
			return nil, fmt.Errorf("analysis: the 2020 snapshot was not measured in this run")
		}
		return run.Y2020, nil
	}
	return nil, fmt.Errorf("analysis: unknown snapshot %q (want 2016 or 2020)", snapshot)
}

// SimulateIncident plays one scenario against the snapshot it names.
func SimulateIncident(ctx context.Context, run *Run, sc *incident.Scenario) (*incident.Report, error) {
	g, err := SnapshotGraph(run, sc.Snapshot)
	if err != nil {
		return nil, err
	}
	return incident.Simulate(ctx, g, sc)
}

// DynReplay plays the incident engine's Dyn-replay preset: fail Dyn
// (dynect.net) against the 2016 snapshot — the paper's motivating incident
// (§2), now as a dynamic simulation instead of a static I_p query.
func DynReplay(ctx context.Context, run *Run) (*incident.Report, error) {
	sc, ok := incident.Preset("dyn-replay")
	if !ok {
		return nil, fmt.Errorf("analysis: dyn-replay preset missing")
	}
	return SimulateIncident(ctx, run, sc)
}

// RenderDynReplay prints the Dyn-replay incident table; it runs as part of
// the full report so the replay lands in every report artifact.
func RenderDynReplay(w io.Writer, run *Run) {
	header(w, "Incident replay: the 2016 Mirai-Dyn outage (what-if simulation)")
	rep, err := DynReplay(context.Background(), run)
	if err != nil {
		fmt.Fprintf(w, "unavailable: %v\n", err)
		return
	}
	rep.WriteText(w)
}
