// Package analysis orchestrates full experiment runs: it generates the
// synthetic universe, materializes both snapshots, executes the measurement
// pipeline, builds the dependency graphs, and exposes one runner per table
// and figure of the paper's evaluation (see DESIGN.md §4 for the index).
package analysis

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"depscope/internal/chain"
	"depscope/internal/conc"
	"depscope/internal/core"
	"depscope/internal/ecosystem"
	"depscope/internal/measure"
	"depscope/internal/membudget"
	"depscope/internal/telemetry"
)

// SnapshotData bundles everything derived for one snapshot.
type SnapshotData struct {
	Snapshot ecosystem.Snapshot
	World    *ecosystem.World
	Results  *measure.Results
	Graph    *core.Graph
	// Compact is the columnar graph representation, set only on compact
	// (streamed) runs. Graph is inflated from it, so every pointer-graph
	// consumer keeps working; Compact is what scale-sensitive callers (serve
	// snapshots, the bytes/site accounting) should reach for.
	Compact *core.CompactGraph
}

// Run is a complete two-snapshot experiment run.
type Run struct {
	Scale    int
	Universe *ecosystem.Universe
	Y2016    *SnapshotData
	Y2020    *SnapshotData
}

// Options configures Execute.
type Options struct {
	// Scale is the ranked-list length (paper: 100000).
	Scale int
	// Seed drives the generator.
	Seed int64
	// Workers bounds measurement and metrics concurrency; any value < 1
	// means GOMAXPROCS.
	Workers int
	// ConcentrationThreshold overrides the §3.1 cutoff; 0 means 50.
	ConcentrationThreshold int
	// ErrorPolicy is handed to the measurement pipeline: conc.FailFast (the
	// zero value) aborts a snapshot on the first per-site error, conc.Collect
	// tolerates failures and reports them in Results.Diagnostics.
	ErrorPolicy conc.Policy
	// Snapshots limits the run; nil means both.
	Snapshots []ecosystem.Snapshot
	// CheckpointPath, when non-empty, enables checkpointed measurement: each
	// snapshot's progress is saved to "<path>.<year>" (atomic tmp+rename) as
	// the run advances. With Resume, a checkpoint already at that path is
	// loaded first and still-valid per-site results are reused instead of
	// re-measured — after an interrupt, or after editing the universe (only
	// sites whose content fingerprints changed are re-measured).
	CheckpointPath string
	// Resume requires CheckpointPath; the checkpoint file must exist.
	Resume bool
	// Progress, when set, receives one line per phase (generation, per-
	// snapshot materialization and measurement). Execute serializes the
	// calls, so a callback writing to a plain buffer is race-free even
	// though the snapshots are measured concurrently.
	Progress func(format string, args ...any)
	// Chains, when non-nil and enabled, materializes transitive
	// resource-inclusion chains into each snapshot's pages and runs the
	// chain classifier stage, adding implicit-trust edges and vendor
	// provider nodes to the graphs. Nil leaves every artifact (results,
	// graphs, reports, checkpoints) byte-identical to a chains-off run.
	Chains *chain.Config
	// Compact switches to the streaming/columnar path: sites are
	// materialized and measured in batches (landing pages released after
	// each batch), snapshots run sequentially instead of concurrently, and
	// each snapshot additionally carries a core.CompactGraph. The report
	// output is byte-identical to the default path. Incompatible with
	// checkpointing (a stream exists to avoid holding what a checkpoint
	// would record).
	Compact bool
	// MemBudget, in bytes, soft-limits live heap on the compact path:
	// checked at batch boundaries, a run that stays over budget after GC
	// fails fast with membudget.BudgetError. Setting it implies Compact;
	// 0 means unlimited.
	MemBudget uint64
	// BatchSize is the compact path's streaming batch length in sites;
	// values < 1 mean 8192.
	BatchSize int
}

// defaultBatchSize is the compact path's streaming batch length when
// Options.BatchSize is unset: big enough to amortize per-batch overheads,
// small enough that one batch's landing pages are memory noise.
const defaultBatchSize = 8192

// Execute generates, materializes and measures both snapshots.
func Execute(ctx context.Context, opts Options) (*Run, error) {
	if opts.Scale <= 0 {
		return nil, fmt.Errorf("analysis: scale must be positive")
	}
	if opts.Resume && opts.CheckpointPath == "" {
		return nil, fmt.Errorf("analysis: Resume requires CheckpointPath")
	}
	if opts.MemBudget > 0 {
		opts.Compact = true
	}
	if opts.Compact && (opts.CheckpointPath != "" || opts.Resume) {
		return nil, fmt.Errorf("analysis: compact (streamed) runs do not support checkpointing")
	}
	if opts.BatchSize < 1 {
		opts.BatchSize = defaultBatchSize
	}
	if opts.Workers < 1 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	defer telemetry.StartSpan("analysis.execute").End()
	genSpan := telemetry.StartSpan("analysis.generate")
	u, err := ecosystem.Generate(ecosystem.Options{Scale: opts.Scale, Seed: opts.Seed})
	genSpan.End()
	if err != nil {
		return nil, err
	}
	run := &Run{Scale: opts.Scale, Universe: u}
	// The two snapshot goroutines below report progress concurrently;
	// serialize the user callback so it needs no locking of its own.
	var progressMu sync.Mutex
	userProgress := opts.Progress
	progress := func(format string, args ...any) {
		if userProgress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		userProgress(format, args...)
	}
	progress("generated universe: %d sites, %d providers", len(u.Sites), len(u.Providers))
	snaps := opts.Snapshots
	if snaps == nil {
		snaps = []ecosystem.Snapshot{ecosystem.Y2016, ecosystem.Y2020}
	}
	// The snapshots are independent: fan them out over the shared pool (one
	// worker per snapshot — the measurement itself parallelizes inside). On
	// the compact path they instead run sequentially, so only one snapshot's
	// working set is live at a time and the memory budget is meaningful.
	snapWorkers := len(snaps)
	if opts.Compact {
		snapWorkers = 1
	}
	measured := make([]*SnapshotData, len(snaps))
	err = conc.ForEach(ctx, len(snaps), snapWorkers, conc.FailFast, func(ctx context.Context, i int) error {
		sd, err := measureSnapshot(ctx, u, snaps[i], opts)
		if err != nil {
			return fmt.Errorf("analysis: snapshot %s: %w", snaps[i], err)
		}
		progress("measured %s: %d sites, %d distinct nameserver domains",
			snaps[i], len(sd.Results.Sites), len(sd.Results.NSConcentration))
		measured[i] = sd
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, sd := range measured {
		if sd.Snapshot == ecosystem.Y2016 {
			run.Y2016 = sd
		} else {
			run.Y2020 = sd
		}
	}
	return run, nil
}

func measureSnapshot(ctx context.Context, u *ecosystem.Universe, snap ecosystem.Snapshot, opts Options) (*SnapshotData, error) {
	defer telemetry.StartSpan("analysis.measure_snapshot").End()
	if opts.Compact {
		return measureSnapshotCompact(ctx, u, snap, opts)
	}
	w := ecosystem.Materialize(u, snap)
	if opts.Chains != nil && opts.Chains.Enabled() {
		ecosystem.MaterializeChains(u, w, *opts.Chains)
	}
	cfg := measure.Config{
		Resolver:               w.NewResolver(),
		Certs:                  w.Certs,
		Pages:                  w,
		CDNMap:                 measure.CDNMap(w.CNAMEToCDN),
		Workers:                opts.Workers,
		ConcentrationThreshold: opts.ConcentrationThreshold,
		ErrorPolicy:            opts.ErrorPolicy,
		Chains:                 opts.Chains,
	}
	if opts.CheckpointPath != "" {
		path := fmt.Sprintf("%s.%s", opts.CheckpointPath, snap)
		cfg.CheckpointLabel = snap.String()
		cfg.Fingerprints = w.SiteFingerprints()
		cfg.OnCheckpoint = func(cp *measure.Checkpoint) error {
			return measure.SaveCheckpoint(path, cp)
		}
		if opts.Resume {
			cp, err := measure.LoadCheckpoint(path)
			if err != nil {
				return nil, fmt.Errorf("resume: %w", err)
			}
			cfg.Checkpoint = cp
		}
	}
	res, err := measure.Run(ctx, w.Sites, cfg)
	if err != nil {
		return nil, err
	}
	g := BuildGraph(res)
	g.SetMetricsWorkers(opts.Workers)
	return &SnapshotData{
		Snapshot: snap,
		World:    w,
		Results:  res,
		Graph:    g,
	}, nil
}

// measureSnapshotCompact is the streaming/columnar form of measureSnapshot:
// site zones and landing pages are materialized in Options.BatchSize
// batches, pages are released after their batch is measured, the memory
// budget is enforced at batch boundaries, and the graph is built columnar
// first (the pointer Graph is inflated from it). Produces the identical
// Results and report output — the equality tests pin this.
func measureSnapshotCompact(ctx context.Context, u *ecosystem.Universe, snap ecosystem.Snapshot, opts Options) (*SnapshotData, error) {
	acct := membudget.New(opts.MemBudget)
	c := ecosystem.NewChunked(u, snap)
	if opts.Chains != nil && opts.Chains.Enabled() {
		c.EnableChains(*opts.Chains)
	}
	w := c.World()
	st, err := measure.NewStream(c.SiteNames(), measure.Config{
		Resolver:               w.NewResolver(),
		Certs:                  w.Certs,
		Pages:                  w,
		CDNMap:                 measure.CDNMap(w.CNAMEToCDN),
		Workers:                opts.Workers,
		ConcentrationThreshold: opts.ConcentrationThreshold,
		ErrorPolicy:            opts.ErrorPolicy,
		Chains:                 opts.Chains,
	})
	if err != nil {
		return nil, err
	}
	n := c.Len()
	for lo := 0; lo < n; lo += opts.BatchSize {
		hi := lo + opts.BatchSize
		if hi > n {
			hi = n
		}
		c.AddSites(lo, hi)
		if err := st.ResolveBatch(ctx, lo, hi); err != nil {
			return nil, err
		}
		if err := acct.Check("zone materialization"); err != nil {
			return nil, err
		}
	}
	st.Seal()
	for lo := 0; lo < n; lo += opts.BatchSize {
		hi := lo + opts.BatchSize
		if hi > n {
			hi = n
		}
		c.MaterializePages(lo, hi)
		if err := st.MeasureBatch(ctx, lo, hi); err != nil {
			return nil, err
		}
		c.ReleasePages(lo, hi)
		if err := acct.Check("site measurement"); err != nil {
			return nil, err
		}
	}
	res, err := st.Finish(ctx)
	if err != nil {
		return nil, err
	}
	if err := acct.Check("inter-service resolution"); err != nil {
		return nil, err
	}
	cg := BuildCompactGraph(res)
	cg.SetMetricsWorkers(opts.Workers)
	g := cg.Inflate()
	g.SetMetricsWorkers(opts.Workers)
	if err := acct.Check("graph build"); err != nil {
		return nil, err
	}
	return &SnapshotData{
		Snapshot: snap,
		World:    w,
		Results:  res,
		Graph:    g,
		Compact:  cg,
	}, nil
}

// BuildCompactGraph converts measurement results into the columnar graph,
// mirroring BuildGraph edge for edge: the property tests pin that the two
// representations score identically and inflate to equal pointer graphs.
func BuildCompactGraph(res *measure.Results) *core.CompactGraph {
	b := core.NewCompactBuilder()
	for i := range res.Sites {
		sr := &res.Sites[i]
		b.AddSite(sr.Site, sr.Rank)
		b.SetDep(core.DNS, sr.DNS.Class, sr.DNS.Providers)
		if sr.CDN.UsesCDN {
			b.SetDep(core.CDN, sr.CDN.Class, sr.CDN.Third)
		}
		if sr.CA.HTTPS {
			var provs []string
			if sr.CA.Third {
				provs = []string{sr.CA.CAName}
			}
			b.SetDep(core.CA, sr.CA.Class, provs)
		}
		for _, pc := range sr.CDN.PrivateCDNs {
			b.AddPrivateCandidate(core.CDN, pc)
		}
		if sr.CA.HTTPS && !sr.CA.Third && sr.CA.CAName != "" {
			b.AddPrivateCandidate(core.CA, sr.CA.CAName)
		}
		for _, cr := range sr.Chains {
			b.AddChain(cr.Provider, cr.Depth)
		}
	}
	exists := func(svc core.Service, name string) bool {
		switch svc {
		case core.CDN:
			_, ok := res.CDNToDNS[name]
			return ok
		case core.CA:
			_, ok := res.CAToDNS[name]
			return ok
		}
		return false
	}
	return b.Build(buildProviderNodes(res), exists)
}

// BuildGraph converts measurement results into the core dependency graph.
func BuildGraph(res *measure.Results) *core.Graph {
	var sites []*core.Site
	for i := range res.Sites {
		sr := &res.Sites[i]
		node := &core.Site{
			Name: sr.Site,
			Rank: sr.Rank,
			Deps: make(map[core.Service]core.Dep),
		}
		node.Deps[core.DNS] = core.Dep{Class: sr.DNS.Class, Providers: sr.DNS.Providers}
		if sr.CDN.UsesCDN {
			node.Deps[core.CDN] = core.Dep{Class: sr.CDN.Class, Providers: sr.CDN.Third}
		}
		if sr.CA.HTTPS {
			var caDep core.Dep
			caDep.Class = sr.CA.Class
			if sr.CA.Third {
				caDep.Providers = []string{sr.CA.CAName}
			}
			node.Deps[core.CA] = caDep
		}
		// Private infrastructure with its own measured dependency structure.
		for _, pc := range sr.CDN.PrivateCDNs {
			if _, ok := res.CDNToDNS[pc]; ok {
				if node.PrivateInfra == nil {
					node.PrivateInfra = make(map[core.Service][]string)
				}
				node.PrivateInfra[core.CDN] = append(node.PrivateInfra[core.CDN], pc)
			}
		}
		if sr.CA.HTTPS && !sr.CA.Third && sr.CA.CAName != "" {
			if _, ok := res.CAToDNS[sr.CA.CAName]; ok {
				if node.PrivateInfra == nil {
					node.PrivateInfra = make(map[core.Service][]string)
				}
				node.PrivateInfra[core.CA] = append(node.PrivateInfra[core.CA], sr.CA.CAName)
			}
		}
		// Implicit-trust edges (chain runs only; nil otherwise).
		for _, cr := range sr.Chains {
			node.Chains = append(node.Chains, core.ChainEdge{Provider: cr.Provider, Depth: cr.Depth})
		}
		sites = append(sites, node)
	}

	return core.NewGraph(sites, buildProviderNodes(res))
}

// buildProviderNodes derives the provider-side node set from the measured
// inter-service arrangements. Shared between BuildGraph and
// BuildCompactGraph so the two representations cannot drift in which
// providers exist or what they depend on. The slice is name-sorted for a
// deterministic columnar layout.
func buildProviderNodes(res *measure.Results) []*core.Provider {
	providerNodes := make(map[string]*core.Provider)
	ensure := func(name string, svc core.Service) *core.Provider {
		p, ok := providerNodes[name]
		if !ok {
			p = &core.Provider{Name: name, Service: svc, Deps: make(map[core.Service]core.Dep)}
			providerNodes[name] = p
		}
		return p
	}
	for name, dep := range res.CDNToDNS {
		p := ensure(name, core.CDN)
		p.Deps[core.DNS] = core.Dep{Class: dep.Class, Providers: dep.Deps}
	}
	for name, dep := range res.CAToDNS {
		p := ensure(name, core.CA)
		p.Deps[core.DNS] = core.Dep{Class: dep.Class, Providers: dep.Deps}
	}
	for name, dep := range res.CAToCDN {
		p := ensure(name, core.CA)
		if dep.Class != core.ClassNone {
			p.Deps[core.CDN] = core.Dep{Class: dep.Class, Providers: dep.Deps}
		}
	}
	// Chain vendors become first-class Resource providers with their own
	// measured DNS/CDN arrangements, so outages cascade through them.
	for name, dep := range res.ResourceToDNS {
		p := ensure(name, core.Resource)
		p.Deps[core.DNS] = core.Dep{Class: dep.Class, Providers: dep.Deps}
	}
	for name, dep := range res.ResourceToCDN {
		p := ensure(name, core.Resource)
		if dep.Class != core.ClassNone {
			p.Deps[core.CDN] = core.Dep{Class: dep.Class, Providers: dep.Deps}
		}
	}
	providers := make([]*core.Provider, 0, len(providerNodes))
	for _, p := range providerNodes {
		providers = append(providers, p)
	}
	sort.Slice(providers, func(i, j int) bool { return providers[i].Name < providers[j].Name })
	return providers
}
