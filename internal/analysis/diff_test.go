package analysis

import (
	"reflect"
	"strings"
	"testing"

	"depscope/internal/core"
)

// diffFixture builds a small graph with a known metric structure:
//
//	a.com: DNS single-third dns1, CDN multi {cdn1, cdn2}
//	b.com: DNS single-third dns1
//	cdn1 critically depends on dns1 for DNS
func diffFixture() *core.Graph {
	sites := []*core.Site{
		{Name: "a.com", Rank: 1, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"dns1"}},
			core.CDN: {Class: core.ClassMultiThird, Providers: []string{"cdn1", "cdn2"}},
		}},
		{Name: "b.com", Rank: 2, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"dns1"}},
		}},
	}
	providers := []*core.Provider{
		{Name: "dns1", Service: core.DNS, Deps: map[core.Service]core.Dep{}},
		{Name: "dns2", Service: core.DNS, Deps: map[core.Service]core.Dep{}},
		{Name: "cdn2", Service: core.CDN, Deps: map[core.Service]core.Dep{}},
		{Name: "cdn1", Service: core.CDN, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"dns1"}},
		}},
	}
	return core.NewGraph(sites, providers)
}

func TestDiffGraphsIdentical(t *testing.T) {
	g := diffFixture()
	d := DiffGraphs(g, g)
	if !d.Empty() {
		t.Fatalf("self-diff not empty: %+v", d)
	}
}

// TestDiffGraphsSwap pins the change surface of the paper's diversification
// move: b.com swaps dns1 for dns2.
func TestDiffGraphsSwap(t *testing.T) {
	g := diffFixture()
	ng, _, err := g.Apply(core.Delta{Ops: []core.Op{
		{Kind: core.OpSwap, Name: "b.com", Service: core.DNS, From: "dns1", To: "dns2"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	d := DiffGraphs(g, ng)
	byName := make(map[string]ProviderDelta)
	for _, p := range d.Providers {
		byName[p.Name] = p
	}
	// dns1 loses b.com from both sets; dns2 gains it.
	d1, ok := byName["dns1"]
	if !ok || d1.DeltaConcentration != -1 || d1.OldConcentration != 2 || d1.NewConcentration != 1 {
		t.Fatalf("dns1 delta = %+v (present %v)", d1, ok)
	}
	d2, ok := byName["dns2"]
	if !ok || d2.DeltaConcentration != 1 || d2.OldConcentration != 0 {
		t.Fatalf("dns2 delta = %+v (present %v)", d2, ok)
	}
	if len(d.SiteChanges) != 0 {
		t.Fatalf("swap changed no class, got %+v", d.SiteChanges)
	}
	if len(d.SitesAdded)+len(d.SitesRemoved) != 0 {
		t.Fatalf("swap changed no universe membership: %+v", d)
	}
}

// TestDiffGraphsClassChange: single-third → multi-third is a class change
// row, and provider counts move with it.
func TestDiffGraphsClassChange(t *testing.T) {
	g := diffFixture()
	ng, _, err := g.Apply(core.Delta{Ops: []core.Op{
		{Kind: core.OpSiteDep, Name: "b.com", Service: core.DNS,
			Dep: core.Dep{Class: core.ClassMultiThird, Providers: []string{"dns1", "dns2"}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	d := DiffGraphs(g, ng)
	want := []SiteClassChange{{Site: "b.com", Service: "dns", OldClass: "single-third", NewClass: "multi-third"}}
	if !reflect.DeepEqual(d.SiteChanges, want) {
		t.Fatalf("SiteChanges = %+v, want %+v", d.SiteChanges, want)
	}
	// b.com is no longer critically dependent on dns1, so I_dns1 drops; it
	// still uses dns1 (C unchanged) and now also uses dns2 (C_dns2 rises).
	var sawDNS1, sawDNS2 bool
	for _, p := range d.Providers {
		switch p.Name {
		case "dns1":
			sawDNS1 = p.DeltaImpact == -1 && p.DeltaConcentration == 0
		case "dns2":
			sawDNS2 = p.DeltaConcentration == 1
		}
	}
	if !sawDNS1 || !sawDNS2 {
		t.Fatalf("provider deltas = %+v, want dns1 ΔI=-1 and dns2 ΔC=+1", d.Providers)
	}
}

func TestDiffGraphsSiteAddRemove(t *testing.T) {
	g := diffFixture()
	ng, _, err := g.Apply(core.Delta{Ops: []core.Op{
		{Kind: core.OpSiteRemove, Name: "a.com"},
		{Kind: core.OpSiteAdd, Site: &core.Site{Name: "c.com", Rank: 3, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"dns2"}},
		}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	d := DiffGraphs(g, ng)
	if !reflect.DeepEqual(d.SitesAdded, []string{"c.com"}) || !reflect.DeepEqual(d.SitesRemoved, []string{"a.com"}) {
		t.Fatalf("membership diff = +%v -%v", d.SitesAdded, d.SitesRemoved)
	}
}

// TestSnapshotDataDiff exercises the SnapshotData-level wrapper.
func TestSnapshotDataDiff(t *testing.T) {
	g := diffFixture()
	ng, _, err := g.Apply(core.Delta{Ops: []core.Op{
		{Kind: core.OpSwap, Name: "b.com", Service: core.DNS, From: "dns1", To: "dns2"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	prev := &SnapshotData{Graph: g}
	cur := &SnapshotData{Graph: ng}
	if d := cur.Diff(prev); d.Empty() {
		t.Fatal("Diff(prev) reported no changes after a swap")
	}
}

func TestParseDeltaStream(t *testing.T) {
	in := `{"base":"2016","steps":[
	  {"label":"exodus","delta":{"ops":[{"op":"swap","name":"b.com","service":"dns","from":"dns1","to":"dns2"}]}}
	]}`
	ds, err := ParseDeltaStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Base != "2016" || len(ds.Steps) != 1 || ds.Steps[0].Label != "exodus" || len(ds.Steps[0].Delta.Ops) != 1 {
		t.Fatalf("parsed stream = %+v", ds)
	}
	for _, bad := range []string{
		`{"base":"2016","bogus":1,"steps":[]}`,
		`{"steps":[{"delta":{"ops":[{"op":"nope"}]}}]}`,
		`{"steps":[]}{"steps":[]}`,
	} {
		if _, err := ParseDeltaStream(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseDeltaStream accepted %q", bad)
		}
	}
}

// TestTimelineReplay replays a two-step stream on a measured run and checks
// the rows evolve consistently.
func TestTimelineReplay(t *testing.T) {
	run, err := Execute(t.Context(), Options{Scale: 120, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	g, err := SnapshotGraph(run, "2016")
	if err != nil {
		t.Fatal(err)
	}
	// Pick a measured site whose ONLY critical dependency is DNS, so
	// diversifying that one arrangement takes it out of the critical-site
	// count entirely.
	var site, from string
	for _, s := range g.Sites {
		d, ok := s.Deps[core.DNS]
		if !ok || d.Class != core.ClassSingleThird || len(d.Providers) == 0 || len(s.PrivateInfra) > 0 {
			continue
		}
		onlyDNS := true
		for svc, dep := range s.Deps {
			if svc != core.DNS && dep.Class.Critical() {
				onlyDNS = false
				break
			}
		}
		if onlyDNS {
			site, from = s.Name, d.Providers[0]
			break
		}
	}
	if site == "" {
		t.Skip("no DNS-only critically dependent site at this scale/seed")
	}
	stream := &DeltaStream{Base: "2016", Steps: []DeltaStep{
		{Label: "diversify", Delta: core.Delta{Ops: []core.Op{
			{Kind: core.OpSiteDep, Name: site, Service: core.DNS,
				Dep: core.Dep{Class: core.ClassMultiThird, Providers: []string{from, "backup-dns.example"}}},
		}}},
		{Label: "depart", Delta: core.Delta{Ops: []core.Op{
			{Kind: core.OpSiteRemove, Name: site},
		}}},
	}}
	rows, err := Timeline(run, stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (base + 2 steps)", len(rows))
	}
	if rows[0].Sites != 120 || rows[1].Sites != 120 || rows[2].Sites != 119 {
		t.Fatalf("site counts = %d,%d,%d", rows[0].Sites, rows[1].Sites, rows[2].Sites)
	}
	// Step 1 removes one critical dependence: the critical-site count drops.
	if rows[1].CriticalSites >= rows[0].CriticalSites {
		t.Fatalf("critical sites %d → %d, want a drop after diversification",
			rows[0].CriticalSites, rows[1].CriticalSites)
	}
	if rows[1].Changed == 0 {
		t.Fatal("step 1 reported no changed providers")
	}
	var sb strings.Builder
	RenderTimeline(&sb, rows)
	out := sb.String()
	for _, want := range []string{"base (2016)", "diversify", "depart", "top DNS provider", "net:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered timeline missing %q:\n%s", want, out)
		}
	}
}
