package analysis

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"depscope/internal/chain"
	"depscope/internal/core"
	"depscope/internal/ecosystem"
	"depscope/internal/incident"
)

// chainRun executes a small chains-on 2020 run with the given worker count.
func chainRun(t *testing.T, workers int, cfg chain.Config) *Run {
	t.Helper()
	run, err := Execute(context.Background(), Options{
		Scale:     300,
		Seed:      2020,
		Workers:   workers,
		Chains:    &cfg,
		Snapshots: []ecosystem.Snapshot{ecosystem.Y2020},
	})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestChainsDegeneracy pins the MaxDepth-1 property: a config that only
// allows depth-1 chains is the disabled pipeline, so the run is identical to
// a chains-off run — graphs, results, and (by construction) the implicit
// C_p/I_p traversal collapses onto the direct one exactly.
func TestChainsDegeneracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	off := chainRun(t, 4, chain.Config{MaxDepth: 1})
	baseline, err := Execute(context.Background(), Options{
		Scale:     300,
		Seed:      2020,
		Workers:   4,
		Snapshots: []ecosystem.Snapshot{ecosystem.Y2020},
	})
	if err != nil {
		t.Fatal(err)
	}

	offJSON, _ := json.Marshal(off.Y2020.Results)
	baseJSON, _ := json.Marshal(baseline.Y2020.Results)
	if !bytes.Equal(offJSON, baseJSON) {
		t.Fatal("MaxDepth=1 run's results differ from a chains-off run")
	}

	// Implicit == direct, exactly, for every provider.
	eng := off.Y2020.Graph.Metrics()
	dc, di := eng.Counts(core.AllIndirect())
	ic, ii := eng.Counts(core.AllImplicit())
	if !reflect.DeepEqual(dc, ic) {
		t.Error("implicit C_p != direct C_p under MaxDepth=1")
	}
	if !reflect.DeepEqual(di, ii) {
		t.Error("implicit I_p != direct I_p under MaxDepth=1")
	}

	// And the report renders no chain section at all.
	var buf bytes.Buffer
	RenderChains(&buf, off)
	if buf.Len() != 0 {
		t.Errorf("RenderChains on a chains-off run printed:\n%s", buf.String())
	}
}

// TestChainsPreserveDirectMetrics: enabling chains adds edges and vendor
// nodes but must not move any direct (paper-semantics) number.
func TestChainsPreserveDirectMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	on := chainRun(t, 4, chain.Default())
	baseline, err := Execute(context.Background(), Options{
		Scale:     300,
		Seed:      2020,
		Workers:   4,
		Snapshots: []ecosystem.Snapshot{ecosystem.Y2020},
	})
	if err != nil {
		t.Fatal(err)
	}

	engOn := on.Y2020.Graph.Metrics()
	engOff := baseline.Y2020.Graph.Metrics()
	dcOn, diOn := engOn.Counts(core.AllIndirect())
	dcOff, diOff := engOff.Counts(core.AllIndirect())
	// The chains-on graph has extra Resource providers; restrict the
	// comparison to the baseline's provider set.
	for name, v := range dcOff {
		if dcOn[name] != v {
			t.Errorf("direct C_p(%s) moved: off %d, on %d", name, v, dcOn[name])
		}
	}
	for name, v := range diOff {
		if diOn[name] != v {
			t.Errorf("direct I_p(%s) moved: off %d, on %d", name, v, diOn[name])
		}
	}

	s := ChainSummary(on, 5)
	if s == nil || s.SitesWithChains == 0 || s.Edges == 0 {
		t.Fatalf("chains-on run has no chain data: %+v", s)
	}
	if s.MaxDepth < 2 {
		t.Errorf("default config produced no multi-level chains: max depth %d", s.MaxDepth)
	}

	var buf bytes.Buffer
	RenderChains(&buf, on)
	out := buf.String()
	if !strings.Contains(out, "Implicit trust via resource chains") {
		t.Errorf("report section missing:\n%s", out)
	}
	if !strings.Contains(out, "direct") || !strings.Contains(out, "implicit") {
		t.Errorf("direct-vs-implicit comparison missing:\n%s", out)
	}
}

// TestChainsWorkerDeterminism: the implicit metrics and the full chain
// summary are identical no matter how the measurement work is sharded.
func TestChainsWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	one := chainRun(t, 1, chain.Default())
	eight := chainRun(t, 8, chain.Default())

	s1 := ChainSummary(one, 10)
	s8 := ChainSummary(eight, 10)
	if !reflect.DeepEqual(s1, s8) {
		j1, _ := json.MarshalIndent(s1, "", " ")
		j8, _ := json.MarshalIndent(s8, "", " ")
		t.Fatalf("chain summary differs across worker counts:\nworkers=1: %s\nworkers=8: %s", j1, j8)
	}

	r1, _ := json.Marshal(one.Y2020.Results)
	r8, _ := json.Marshal(eight.Y2020.Results)
	if !bytes.Equal(r1, r8) {
		t.Fatal("measurement results differ across worker counts")
	}
}

// TestAnalyticsCompromisePreset is the acceptance scenario: the preset picks
// a vendor no page loads directly (min inclusion depth >= 2 everywhere) and
// its outage still takes sites down — implicit trust the direct measurement
// cannot see.
func TestAnalyticsCompromisePreset(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	run := chainRun(t, 4, chain.Default())
	g := run.Y2020.Graph

	sc, ok := incident.Preset("analytics-compromise")
	if !ok {
		t.Fatal("analytics-compromise preset missing")
	}
	rep, err := incident.Simulate(context.Background(), g, sc)
	if err != nil {
		t.Fatal(err)
	}

	final := rep.Stages[len(rep.Stages)-1]
	if len(final.Targets) != 1 {
		t.Fatalf("targets = %v, want exactly one vendor", final.Targets)
	}
	vendor := final.Targets[0]

	// The failed provider must be a chain vendor included only at depth >= 2:
	// no site's resource tree reaches it as a direct (depth-1) inclusion.
	minDepth := 0
	seen := false
	for _, site := range g.Sites {
		for _, e := range chainEdgesOf(g, site.Name) {
			if e.Provider != vendor {
				continue
			}
			if !seen || e.Depth < minDepth {
				minDepth = e.Depth
			}
			seen = true
		}
	}
	if !seen {
		t.Fatalf("target %s has no chain edges", vendor)
	}
	if minDepth < 2 {
		t.Fatalf("target %s is included at depth %d; the preset must pick a >=2-level vendor", vendor, minDepth)
	}

	if final.Down == 0 {
		t.Fatalf("vendor %s outage took nothing down", vendor)
	}
	if rep.Validation == nil || !rep.Validation.Match {
		t.Fatalf("validation failed: %+v", rep.Validation)
	}

	// The same scenario against a chains-off graph is a configuration error,
	// not a silent no-op.
	baseline, err := Execute(context.Background(), Options{
		Scale:     300,
		Seed:      2020,
		Workers:   4,
		Snapshots: []ecosystem.Snapshot{ecosystem.Y2020},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := incident.Simulate(context.Background(), baseline.Y2020.Graph, sc); err == nil {
		t.Error("analytics-compromise against a chains-off graph should fail to resolve targets")
	}
}
