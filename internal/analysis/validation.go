package analysis

import (
	"context"
	"fmt"
	"io"

	"depscope/internal/ecosystem"
	"depscope/internal/measure"
)

// The §3 validation experiment as a first-class artifact: classify every
// characterized (site, nameserver) pair with the combined heuristic and the
// two strawmen, then score them against the generator's ground truth — the
// automated version of the paper's "random sample of 100 websites, manually
// verified" methodology, run over the whole population.

// ValidationReport holds per-classifier accuracies plus the paper's §3.1
// pair accounting.
type ValidationReport struct {
	Pairs            int
	CombinedAccuracy float64
	TLDAccuracy      float64
	SOAAccuracy      float64
	// PairStats is the §3.1 accounting over all pairs (including traps).
	PairStats measure.PairStats
}

// Validate scores the DNS classifiers of the 2020 snapshot against ground
// truth. Sites the methodology leaves uncharacterized are excluded from the
// accuracy sample (as in the paper), but appear in PairStats.
func Validate(ctx context.Context, run *Run) (ValidationReport, error) {
	sd := run.Y2020
	rep := ValidationReport{PairStats: sd.Results.PairStats}

	truth := make(map[string]ecosystem.SiteSnapshot)
	for _, s := range run.Universe.List(ecosystem.Y2020) {
		if s.Snap[ecosystem.Y2020].Exists {
			truth[s.Domain] = s.Snap[ecosystem.Y2020]
		}
	}
	bl := measure.NewBaselines(measure.Config{
		Resolver: sd.World.NewResolver(),
		Certs:    sd.World.Certs,
		Pages:    sd.World,
		CDNMap:   measure.CDNMap(sd.World.CNAMEToCDN),
	})

	var pairs, combinedOK, tldOK, soaOK int
	for i := range sd.Results.Sites {
		sr := &sd.Results.Sites[i]
		ss, ok := truth[sr.Site]
		if !ok || ss.DNSTrap == ecosystem.TrapUnknown {
			continue
		}
		pureThird := ss.DNSMode.UsesThird() && ss.DNSMode != ecosystem.DepPrivatePlusThird
		for _, pair := range sr.DNS.Pairs {
			isPrivate := !pureThird
			if ss.DNSMode == ecosystem.DepPrivatePlusThird {
				// Mixed sites: the pair is private iff the host is in-domain.
				isPrivate = measure.BaselineTLD(sr.Site, pair.Host) == measure.Private
			}
			want := measure.Third
			if isPrivate {
				want = measure.Private
			}
			pairs++
			if pair.Class == want {
				combinedOK++
			}
			if bl.TLD(sr.Site, pair.Host) == want {
				tldOK++
			}
			got, err := bl.SOA(ctx, sr.Site, pair.Host)
			if err != nil {
				return rep, err
			}
			if got == want {
				soaOK++
			}
		}
	}
	rep.Pairs = pairs
	if pairs > 0 {
		rep.CombinedAccuracy = float64(combinedOK) / float64(pairs)
		rep.TLDAccuracy = float64(tldOK) / float64(pairs)
		rep.SOAAccuracy = float64(soaOK) / float64(pairs)
	}
	return rep, nil
}

// RenderValidation prints the §3 validation experiment.
func RenderValidation(w io.Writer, run *Run) error {
	rep, err := Validate(context.Background(), run)
	if err != nil {
		return err
	}
	header(w, "Validation: (site, nameserver) classification accuracy (paper §3.1)")
	fmt.Fprintf(w, "distinct pairs observed:    %d (%.1f%% uncharacterized; paper: 13.5%%)\n",
		rep.PairStats.Total, 100*rep.PairStats.UncharacterizedFrac())
	fmt.Fprintf(w, "combined heuristic:         %.1f%%  (paper: 100%%)\n", 100*rep.CombinedAccuracy)
	fmt.Fprintf(w, "TLD matching only:          %.1f%%  (paper:  97%%)\n", 100*rep.TLDAccuracy)
	fmt.Fprintf(w, "SOA matching only:          %.1f%%  (paper:  56%%)\n", 100*rep.SOAAccuracy)
	fmt.Fprintln(w, "rule firing counts over all pairs:")
	for _, rule := range []string{"tld", "san", "soa", "concentration"} {
		fmt.Fprintf(w, "  %-14s %d\n", rule, run.Y2020.Results.EvidenceCounts[rule])
	}
	return nil
}
