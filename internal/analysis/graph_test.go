package analysis

import (
	"testing"

	"depscope/internal/core"
	"depscope/internal/measure"
)

// TestBuildGraph verifies the measurement→graph conversion on a hand-built
// Results value, including the private-infrastructure edges.
func TestBuildGraph(t *testing.T) {
	res := &measure.Results{
		Sites: []measure.SiteResult{
			{
				Site: "a.com", Rank: 1,
				DNS: measure.SiteDNS{Class: core.ClassSingleThird, Providers: []string{"dns-p.com"}},
				CDN: measure.SiteCDN{UsesCDN: true, Class: core.ClassSingleThird, Third: []string{"CDN-X"}},
				CA:  measure.SiteCA{HTTPS: true, Third: true, CAName: "ca-p.com", Class: core.ClassSingleThird},
			},
			{
				Site: "b.com", Rank: 2,
				DNS: measure.SiteDNS{Class: core.ClassPrivate},
				CDN: measure.SiteCDN{UsesCDN: true, Class: core.ClassPrivate, PrivateCDNs: []string{"b.com private CDN"}},
				CA:  measure.SiteCA{HTTPS: true, Third: false, CAName: "b-pki.net", Class: core.ClassPrivate},
			},
			{
				Site: "c.com", Rank: 3,
				DNS: measure.SiteDNS{Class: core.ClassUnknown},
			},
		},
		CDNToDNS: map[string]measure.ProviderDep{
			"CDN-X":             {Provider: "CDN-X", Service: core.DNS, Class: core.ClassPrivate},
			"b.com private CDN": {Provider: "b.com private CDN", Service: core.DNS, Class: core.ClassSingleThird, Deps: []string{"awsdns.net"}},
		},
		CAToDNS: map[string]measure.ProviderDep{
			"ca-p.com":  {Provider: "ca-p.com", Service: core.DNS, Class: core.ClassSingleThird, Deps: []string{"dnsmadeeasy.com"}},
			"b-pki.net": {Provider: "b-pki.net", Service: core.DNS, Class: core.ClassSingleThird, Deps: []string{"akam.net"}},
		},
		CAToCDN: map[string]measure.ProviderDep{
			"ca-p.com": {Provider: "ca-p.com", Service: core.CDN, Class: core.ClassNone},
		},
	}
	g := BuildGraph(res)

	// Direct site edges.
	if got := g.Impact("dns-p.com", core.DirectOnly()); got != 1 {
		t.Errorf("I(dns-p.com) = %d", got)
	}
	// CA chain: a.com critically uses ca-p.com which critically uses
	// DNSMadeEasy.
	if got := g.Impact("dnsmadeeasy.com", core.AllIndirect()); got != 1 {
		t.Errorf("I(dnsmadeeasy.com) = %d", got)
	}
	// Hidden private-CDN chain: b.com's own CDN rides AWS.
	if set := g.ImpactSet("awsdns.net", core.AllIndirect()); !set["b.com"] || len(set) != 1 {
		t.Errorf("I(awsdns.net) = %v, want {b.com}", set)
	}
	// Hidden private-CA chain: b.com's own PKI domain rides Akamai DNS.
	if set := g.ImpactSet("akam.net", core.AllIndirect()); !set["b.com"] {
		t.Errorf("I(akam.net) = %v, want b.com included", set)
	}
	// The unknown site contributes no edges.
	if node := g.Site("c.com"); node == nil || node.Deps[core.DNS].Class != core.ClassUnknown {
		t.Error("unknown site mishandled")
	}
	// The private site's own nodes must not pollute the third-party ranking.
	for _, st := range g.TopProviders(core.CDN, core.DirectOnly(), false, 0) {
		if st.Name == "b.com private CDN" && st.Concentration > 0 {
			t.Error("private CDN appeared in third-party concentration ranking")
		}
	}
}

func TestServiceDenominator(t *testing.T) {
	res := &measure.Results{Sites: []measure.SiteResult{
		{Site: "a.com", DNS: measure.SiteDNS{Class: core.ClassPrivate}, CA: measure.SiteCA{HTTPS: true}},
		{Site: "b.com", DNS: measure.SiteDNS{Class: core.ClassUnknown}, CDN: measure.SiteCDN{UsesCDN: true}},
	}}
	if got := serviceDenominator(res, core.DNS); got != 1 {
		t.Errorf("DNS denominator = %d", got)
	}
	if got := serviceDenominator(res, core.CDN); got != 1 {
		t.Errorf("CDN denominator = %d", got)
	}
	if got := serviceDenominator(res, core.CA); got != 1 {
		t.Errorf("CA denominator = %d", got)
	}
}
