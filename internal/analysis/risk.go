package analysis

import (
	"context"
	"fmt"
	"io"

	"depscope/internal/core"
	"depscope/internal/incident"
	"depscope/internal/telemetry"
)

// Risk-analysis integration: the Monte-Carlo sweep plumbing the depscope
// -sweep mode and the depserver /v1/sweep endpoint share, and the greedy
// mitigation optimizer surfaced as -mitigate, /v1/mitigation, and a full-
// report section. docs/risk.md narrates the end-to-end workflow.

// Mitigation-optimizer metrics, registered at package init alongside the
// per-figure render histograms.
var (
	mitigateRuns          = telemetry.Counter("mitigate_runs_total", "mitigation plans computed")
	mitigateLastReduction = telemetry.Gauge("mitigate_last_reduction", "aggregate-impact reduction (site-provider pairs) of the most recent mitigation plan")
	mitigateLastOptions   = telemetry.Gauge("mitigate_last_options", "options selected by the most recent mitigation plan")
)

// MonteCarloSweep runs one Monte-Carlo sweep against the snapshot the spec
// names. workers < 1 means GOMAXPROCS.
func MonteCarloSweep(ctx context.Context, run *Run, sp *incident.SweepSpec, workers int) (*incident.SweepReport, error) {
	g, err := SnapshotGraph(run, sp.Snapshot)
	if err != nil {
		return nil, err
	}
	return incident.MonteCarlo(ctx, g, sp, workers)
}

// Mitigation computes a greedy K-option mitigation plan against the named
// snapshot under the full indirect traversal (the headline C_p/I_p view).
func Mitigation(run *Run, k int, snapshot string) (*core.MitigationPlan, error) {
	defer telemetry.StartSpan("analysis.mitigation").End()
	g, err := SnapshotGraph(run, snapshot)
	if err != nil {
		return nil, err
	}
	plan := g.MitigationPlan(k, core.AllIndirect())
	mitigateRuns.Inc()
	mitigateLastReduction.Set(int64(plan.Reduction()))
	mitigateLastOptions.Set(int64(len(plan.Options)))
	return plan, nil
}

// WriteMitigationText renders a mitigation plan for terminals — the backend
// of the depscope -mitigate mode and the full report's mitigation section.
func WriteMitigationText(w io.Writer, plan *core.MitigationPlan) {
	fmt.Fprintf(w, "mitigation plan: add a second provider to %d sites (of %d single-third candidates)\n",
		len(plan.Options), plan.Candidates)
	fmt.Fprintf(w, "aggregate impact sum_p |I_p|: %d -> %d (-%d site-provider pairs, %.1f%%)\n",
		plan.Before, plan.After, plan.Reduction(), 100*frac(plan.Reduction(), plan.Before))
	if len(plan.Options) == 0 {
		fmt.Fprintln(w, "no arrangement conversion reduces aggregate impact")
		return
	}
	fmt.Fprintf(w, "%4s %8s %-28s %-5s %-28s %6s %10s\n",
		"#", "rank", "site", "svc", "current sole provider", "gain", "cumulative")
	for i, o := range plan.Options {
		fmt.Fprintf(w, "%4d %8d %-28s %-5s %-28s %6d %10d\n",
			i+1, o.Rank, o.Site, o.Service, o.Provider, o.Gain, o.Cumulative)
	}
	if len(plan.ProviderDeltas) > 0 {
		fmt.Fprintln(w, "providers shrinking most:")
		fmt.Fprintf(w, "  %-28s %10s %10s\n", "provider", "|I| before", "|I| after")
		for _, d := range plan.ProviderDeltas {
			fmt.Fprintf(w, "  %-28s %10d %10d\n", d.Name, d.Before, d.After)
		}
	}
}

// reportMitigationK is the option budget of the full report's mitigation
// section: enough to show the shape of the frontier without drowning the
// tables around it.
const reportMitigationK = 25

// RenderMitigation prints the top-K mitigation plan for the 2020 snapshot;
// it runs as part of the full report so the prescriptive answer lands next
// to the descriptive C_p/I_p rankings.
func RenderMitigation(w io.Writer, run *Run) {
	header(w, "Mitigation: which sites should add a second provider (2020)")
	plan, err := Mitigation(run, reportMitigationK, "")
	if err != nil {
		fmt.Fprintf(w, "unavailable: %v\n", err)
		return
	}
	WriteMitigationText(w, plan)
}
