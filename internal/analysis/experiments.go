package analysis

import (
	"sort"

	"depscope/internal/core"
	"depscope/internal/ecosystem"
	"depscope/internal/measure"
)

// This file contains one runner per table/figure of the paper's evaluation.
// Each runner consumes a Run and returns structured rows; render.go formats
// them in the layout of the paper.

// ---------------------------------------------------------------- Table 1/2

// DatasetSummary reproduces Table 1 (single snapshot) and Table 2
// (comparison population).
type DatasetSummary struct {
	Title              string
	CharacterizedDNS   int
	UsingCDN           int
	CharacterizedCDN   int
	SupportingHTTPS    int
	CharacterizedHTTPS int
}

// Table1 summarizes the 2020 dataset.
func Table1(run *Run) DatasetSummary {
	return datasetSummary("Table 1: 2020 dataset ("+itoa(run.Scale)+" sites)", run.Y2020.Results)
}

func datasetSummary(title string, res *measure.Results) DatasetSummary {
	out := DatasetSummary{Title: title}
	for i := range res.Sites {
		sr := &res.Sites[i]
		if sr.DNS.Class != core.ClassUnknown {
			out.CharacterizedDNS++
		}
		if sr.CDN.UsesCDN {
			out.UsingCDN++
			out.CharacterizedCDN++
		}
		if sr.CA.HTTPS {
			out.SupportingHTTPS++
			out.CharacterizedHTTPS++
		}
	}
	return out
}

// ComparisonSummary reproduces Table 2: the comparison population is the
// 2016 list restricted to sites alive in 2020.
type ComparisonSummary struct {
	CharacterizedDNS int
	UsingCDNEither   int
	CharacterizedCDN int
	HTTPSEither      int
	DeadFraction     float64
}

// Table2 summarizes the comparison dataset.
func Table2(run *Run) ComparisonSummary {
	out := ComparisonSummary{}
	res16 := indexResults(run.Y2016.Results)
	res20 := indexResults(run.Y2020.Results)
	total, dead := 0, 0
	for _, s := range run.Universe.List(ecosystem.Y2016) {
		total++
		r16 := res16[s.Domain]
		r20, alive := res20[s.Domain]
		if !alive {
			dead++
			continue
		}
		if r16.DNS.Class != core.ClassUnknown && r20.DNS.Class != core.ClassUnknown {
			out.CharacterizedDNS++
		}
		if r16.CDN.UsesCDN || r20.CDN.UsesCDN {
			out.UsingCDNEither++
			out.CharacterizedCDN++
		}
		if r16.CA.HTTPS || r20.CA.HTTPS {
			out.HTTPSEither++
		}
	}
	out.DeadFraction = float64(dead) / float64(total)
	return out
}

func indexResults(res *measure.Results) map[string]*measure.SiteResult {
	out := make(map[string]*measure.SiteResult, len(res.Sites))
	for i := range res.Sites {
		out[res.Sites[i].Site] = &res.Sites[i]
	}
	return out
}

// ------------------------------------------------------------- Figures 2–4

// Figure2 returns the DNS dependency series per band (third-party, critical,
// multiple-third, private+third), as fractions of characterized sites.
func Figure2(run *Run) [4]core.BandStats {
	return core.ServiceBands(run.Y2020.Graph, core.DNS, run.Scale)
}

// Figure3 returns the CDN series per band over CDN-using sites.
func Figure3(run *Run) [4]core.BandStats {
	return core.ServiceBands(run.Y2020.Graph, core.CDN, run.Scale)
}

// CABandRow is one band of Figure 4.
type CABandRow struct {
	Label string
	// HTTPSFrac is the fraction of all sites in the band serving HTTPS;
	// ThirdCAFrac and StaplingFrac are fractions of the HTTPS sites.
	HTTPSFrac, ThirdCAFrac, StaplingFrac float64
}

// Figure4 returns HTTPS adoption, third-party-CA use and OCSP stapling per
// band.
func Figure4(run *Run) [4]CABandRow {
	return caBands(run.Y2020.Results, run.Scale)
}

func caBands(res *measure.Results, scale int) [4]CABandRow {
	var all, https, third, stapled [4]int
	for i := range res.Sites {
		sr := &res.Sites[i]
		b := bandOf(sr.Rank, scale)
		for k := b; k < 4; k++ {
			all[k]++
			if !sr.CA.HTTPS {
				continue
			}
			https[k]++
			if sr.CA.Third {
				third[k]++
			}
			if sr.CA.Stapled {
				stapled[k]++
			}
		}
	}
	var out [4]CABandRow
	for i := range out {
		out[i].Label = bandLabel(i, scale)
		out[i].HTTPSFrac = frac(https[i], all[i])
		out[i].ThirdCAFrac = frac(third[i], https[i])
		out[i].StaplingFrac = frac(stapled[i], https[i])
	}
	return out
}

// ------------------------------------------------------------- Tables 3–5

// dnsClasses extracts measured site→service classes for trend computation.
func classesOf(res *measure.Results, svc core.Service) core.SiteClasses {
	out := make(core.SiteClasses, len(res.Sites))
	for i := range res.Sites {
		sr := &res.Sites[i]
		switch svc {
		case core.DNS:
			out[sr.Site] = sr.DNS.Class
		case core.CDN:
			if sr.CDN.UsesCDN {
				out[sr.Site] = sr.CDN.Class
			}
		case core.CA:
			if sr.CA.HTTPS {
				out[sr.Site] = sr.CA.Class
			}
		}
	}
	return out
}

// ranks2016 maps site → 2016 rank for the comparison analyses.
func ranks2016(run *Run) map[string]int {
	out := make(map[string]int)
	for _, s := range run.Universe.List(ecosystem.Y2016) {
		out[s.Domain] = s.Rank2016
	}
	return out
}

// Table3 computes the website→DNS trend table.
func Table3(run *Run) [4]core.TrendRow {
	return core.ModeTrends(
		classesOf(run.Y2016.Results, core.DNS),
		classesOf(run.Y2020.Results, core.DNS),
		ranks2016(run), run.Scale)
}

// Table4 computes the website→CDN trend table.
func Table4(run *Run) [4]core.TrendRow {
	return core.ModeTrends(
		classesOf(run.Y2016.Results, core.CDN),
		classesOf(run.Y2020.Results, core.CDN),
		ranks2016(run), run.Scale)
}

// Table5 computes the website→CA stapling trend table.
func Table5(run *Run) [4]core.StaplingTrendRow {
	staple := func(res *measure.Results) map[string]bool {
		out := make(map[string]bool)
		for i := range res.Sites {
			sr := &res.Sites[i]
			if sr.CA.HTTPS {
				out[sr.Site] = sr.CA.Stapled
			}
		}
		return out
	}
	return core.StaplingTrends(
		staple(run.Y2016.Results), staple(run.Y2020.Results),
		ranks2016(run), run.Scale)
}

// --------------------------------------------------------------- Figure 5

// ProviderRow is a provider with concentration and impact as fractions of
// the population the figure normalizes by.
type ProviderRow struct {
	Name                  string
	Concentration, Impact float64
}

// Figure5 returns the top-n providers of a service by direct concentration,
// normalized by the number of sites consuming that service (DNS:
// characterized sites; CDN: CDN users; CA: HTTPS sites).
func Figure5(run *Run, svc core.Service, n int) []ProviderRow {
	sd := run.Y2020
	denom := serviceDenominator(sd.Results, svc)
	stats := sd.Graph.TopProviders(svc, core.DirectOnly(), false, n)
	out := make([]ProviderRow, 0, len(stats))
	for _, st := range stats {
		out = append(out, ProviderRow{
			Name:          st.Name,
			Concentration: frac(st.Concentration, denom),
			Impact:        frac(st.Impact, denom),
		})
	}
	return out
}

// Figure5Band ranks providers within one popularity band (cumulative:
// band b covers ranks 1..scale/10^(3-b)), normalized by the band's
// service-consuming sites. It reproduces the paper's rank-dependent
// observations (Dyn most popular in the top-100; Akamai dominating the
// top-100 CDN market).
func Figure5Band(run *Run, svc core.Service, band, n int) []ProviderRow {
	sd := run.Y2020
	maxRank := run.Scale
	for i := 3; i > band; i-- {
		maxRank /= 10
	}
	denom := 0
	usage := make(map[string]map[string]bool)
	critical := make(map[string]map[string]bool)
	for i := range sd.Results.Sites {
		sr := &sd.Results.Sites[i]
		if sr.Rank > maxRank {
			continue
		}
		var class core.DepClass
		var providers []string
		switch svc {
		case core.DNS:
			class, providers = sr.DNS.Class, sr.DNS.Providers
			if class == core.ClassUnknown {
				continue
			}
		case core.CDN:
			if !sr.CDN.UsesCDN {
				continue
			}
			class, providers = sr.CDN.Class, sr.CDN.Third
		case core.CA:
			if !sr.CA.HTTPS {
				continue
			}
			class = sr.CA.Class
			if sr.CA.Third {
				providers = []string{sr.CA.CAName}
			}
		}
		denom++
		for _, pname := range providers {
			if usage[pname] == nil {
				usage[pname] = make(map[string]bool)
				critical[pname] = make(map[string]bool)
			}
			usage[pname][sr.Site] = true
			if class.Critical() {
				critical[pname][sr.Site] = true
			}
		}
	}
	var rows []ProviderRow
	for pname, users := range usage {
		rows = append(rows, ProviderRow{
			Name:          pname,
			Concentration: frac(len(users), denom),
			Impact:        frac(len(critical[pname]), denom),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Concentration != rows[j].Concentration {
			return rows[i].Concentration > rows[j].Concentration
		}
		return rows[i].Name < rows[j].Name
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

func serviceDenominator(res *measure.Results, svc core.Service) int {
	n := 0
	for i := range res.Sites {
		sr := &res.Sites[i]
		switch svc {
		case core.DNS:
			if sr.DNS.Class != core.ClassUnknown {
				n++
			}
		case core.CDN:
			if sr.CDN.UsesCDN {
				n++
			}
		case core.CA:
			if sr.CA.HTTPS {
				n++
			}
		}
	}
	return n
}

// --------------------------------------------------------------- Figure 6

// CDFSeries is one snapshot's provider-concentration CDF.
type CDFSeries struct {
	Year           string
	Points         []core.CDFPoint
	ProvidersFor80 int
	Distinct       int
}

// Figure6 returns the 2016-vs-2020 CDFs for a service.
func Figure6(run *Run, svc core.Service) [2]CDFSeries {
	var out [2]CDFSeries
	for i, sd := range []*SnapshotData{run.Y2016, run.Y2020} {
		cdf := core.ConcentrationCDF(sd.Graph, svc)
		out[i] = CDFSeries{
			Year:           sd.Snapshot.String(),
			Points:         cdf,
			ProvidersFor80: core.ProvidersForCoverage(cdf, 0.80),
			Distinct:       core.DistinctProviders(sd.Graph, svc),
		}
	}
	return out
}

// ---------------------------------------------------------------- Table 6

// InterServiceRow is one dependency type of Table 6.
type InterServiceRow struct {
	Name     string
	Total    int
	Third    int
	Critical int
}

// Table6 counts provider-level third-party and critical dependencies for
// CDN→DNS, CA→DNS and CA→CDN. Per-site private infrastructure (alias CDNs,
// alias PKI domains) is excluded: the paper counts commercial providers.
func Table6(run *Run) [3]InterServiceRow {
	res := run.Y2020.Results
	rows := [3]InterServiceRow{
		{Name: "CDN->DNS"}, {Name: "CA->DNS"}, {Name: "CA->CDN"},
	}
	countInto := func(row *InterServiceRow, deps map[string]measure.ProviderDep, private map[string]bool) {
		for name, dep := range deps {
			if private[name] {
				continue
			}
			row.Total++
			if dep.Class.UsesThird() {
				row.Third++
			}
			if dep.Class.Critical() {
				row.Critical++
			}
		}
	}
	priv := privateInfraNames(res)
	countInto(&rows[0], res.CDNToDNS, priv)
	countInto(&rows[1], res.CAToDNS, priv)
	countInto(&rows[2], res.CAToCDN, priv)
	return rows
}

// privateInfraNames identifies per-site private infrastructure identities
// appearing in the inter-service maps.
func privateInfraNames(res *measure.Results) map[string]bool {
	out := make(map[string]bool)
	for i := range res.Sites {
		sr := &res.Sites[i]
		for _, pc := range sr.CDN.PrivateCDNs {
			out[pc] = true
		}
		if sr.CA.HTTPS && !sr.CA.Third && sr.CA.CAName != "" {
			out[sr.CA.CAName] = true
		}
	}
	return out
}

// ------------------------------------------------------- Figures 7, 8, 9

// AmplificationRow compares a provider's direct-only and with-indirection
// concentration/impact (fractions of the figure's site population).
type AmplificationRow struct {
	Name                  string
	DirectConcentration   float64
	IndirectConcentration float64
	DirectImpact          float64
	IndirectImpact        float64
}

// Amplification computes the Fig 7/8/9 comparison: the top-n providers of
// target ranked by with-indirection concentration, where indirection
// traverses only providers of via (CA for Fig 7/8, CDN for Fig 9).
func Amplification(run *Run, target core.Service, via core.Service, n int) []AmplificationRow {
	sd := run.Y2020
	// Fig 7/9 normalize by DNS-characterized sites; Fig 8 ("percent of the
	// top-100K websites") by the full list.
	denom := serviceDenominator(sd.Results, core.DNS)
	if target == core.CDN {
		denom = len(sd.Results.Sites)
	}
	opts := core.TraversalOpts{ViaProviders: []core.Service{via}}
	stats := sd.Graph.TopProviders(target, opts, false, n)
	out := make([]AmplificationRow, 0, len(stats))
	for _, st := range stats {
		out = append(out, AmplificationRow{
			Name:                  st.Name,
			DirectConcentration:   frac(sd.Graph.Concentration(st.Name, core.DirectOnly()), denom),
			IndirectConcentration: frac(st.Concentration, denom),
			DirectImpact:          frac(sd.Graph.Impact(st.Name, core.DirectOnly()), denom),
			IndirectImpact:        frac(st.Impact, denom),
		})
	}
	return out
}

// Figure7 is the CA→DNS amplification of the top DNS providers.
func Figure7(run *Run, n int) []AmplificationRow {
	return Amplification(run, core.DNS, core.CA, n)
}

// Figure8 is the CA→CDN amplification of the top CDNs.
func Figure8(run *Run, n int) []AmplificationRow {
	return Amplification(run, core.CDN, core.CA, n)
}

// Figure9 is the CDN→DNS amplification of the top DNS providers.
func Figure9(run *Run, n int) []AmplificationRow {
	return Amplification(run, core.DNS, core.CDN, n)
}

// TopKImpactShare returns the fraction of service-consuming sites critically
// dependent on the top-k providers of target under opts (Obs 7/9/10: e.g.
// 72% of sites critically depend on 3 DNS providers with CA→DNS edges).
func TopKImpactShare(run *Run, target core.Service, opts core.TraversalOpts, k int) float64 {
	sd := run.Y2020
	stats := sd.Graph.TopProviders(target, opts, true, k)
	union := make(map[string]bool)
	for _, st := range stats {
		for site := range sd.Graph.ImpactSet(st.Name, opts) {
			union[site] = true
		}
	}
	return frac(len(union), serviceDenominator(sd.Results, core.DNS))
}

// ------------------------------------------------------- Tables 7, 8, 9

// providerClasses extracts provider → class maps for one dependency type,
// excluding per-site private infrastructure.
func providerClasses(res *measure.Results, deps map[string]measure.ProviderDep) map[string]core.DepClass {
	priv := privateInfraNames(res)
	out := make(map[string]core.DepClass)
	for name, dep := range deps {
		if !priv[name] {
			out[name] = dep.Class
		}
	}
	return out
}

// Table7 computes CA→DNS provider trends between snapshots.
func Table7(run *Run) core.ProviderTrend {
	return core.ProviderTrends(
		providerClasses(run.Y2016.Results, run.Y2016.Results.CAToDNS),
		providerClasses(run.Y2020.Results, run.Y2020.Results.CAToDNS))
}

// Table8 computes CA→CDN provider trends.
func Table8(run *Run) core.ProviderTrend {
	return core.ProviderTrends(
		providerClasses(run.Y2016.Results, run.Y2016.Results.CAToCDN),
		providerClasses(run.Y2020.Results, run.Y2020.Results.CAToCDN))
}

// Table9 computes CDN→DNS provider trends.
func Table9(run *Run) core.ProviderTrend {
	return core.ProviderTrends(
		providerClasses(run.Y2016.Results, run.Y2016.Results.CDNToDNS),
		providerClasses(run.Y2020.Results, run.Y2020.Results.CDNToDNS))
}

// ---------------------------------------------------- §5/§8 hidden deps

// HiddenDeps reproduces the "additional websites" findings: sites whose
// private infrastructure rides third parties (§5.1: private CA on
// third-party DNS; §5.2: private CA on third-party CDN; §5.3: private CDN
// on third-party DNS).
type HiddenDeps struct {
	PrivateCDNThirdDNS int
	PrivateCAThirdDNS  int
	PrivateCAThirdCDN  int
}

// HiddenDependencies counts them for 2020.
func HiddenDependencies(run *Run) HiddenDeps {
	res := run.Y2020.Results
	out := HiddenDeps{}
	for i := range res.Sites {
		sr := &res.Sites[i]
		for _, pc := range sr.CDN.PrivateCDNs {
			if dep, ok := res.CDNToDNS[pc]; ok && dep.Class.UsesThird() {
				out.PrivateCDNThirdDNS++
				break
			}
		}
		if sr.CA.HTTPS && !sr.CA.Third && sr.CA.CAName != "" {
			if dep, ok := res.CAToDNS[sr.CA.CAName]; ok && dep.Class.UsesThird() {
				out.PrivateCAThirdDNS++
			}
			if dep, ok := res.CAToCDN[sr.CA.CAName]; ok && dep.Class.UsesThird() {
				out.PrivateCAThirdCDN++
			}
		}
	}
	return out
}

// CriticalDepsHistogram returns the fraction of sites with >= k critical
// dependencies, direct vs with indirection (§8.1: 9.6% vs 25% at k=3).
type CriticalDepsHistogram struct {
	// AtLeast[k] is the fraction of sites with >= k critical dependencies.
	DirectAtLeast   []float64
	IndirectAtLeast []float64
}

// CriticalDeps computes the histogram up to maxK.
func CriticalDeps(run *Run, maxK int) CriticalDepsHistogram {
	g := run.Y2020.Graph
	direct := g.CriticalDepsPerSite(false)
	indirect := g.CriticalDepsPerSite(true)
	n := len(g.Sites)
	h := CriticalDepsHistogram{
		DirectAtLeast:   make([]float64, maxK+1),
		IndirectAtLeast: make([]float64, maxK+1),
	}
	for k := 0; k <= maxK; k++ {
		var d, ind int
		for _, c := range direct {
			if c >= k {
				d++
			}
		}
		for _, c := range indirect {
			if c >= k {
				ind++
			}
		}
		h.DirectAtLeast[k] = frac(d, n)
		h.IndirectAtLeast[k] = frac(ind, n)
	}
	return h
}

// ----------------------------------------------------------------- util

func frac(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func bandOf(rank, scale int) int { return ecosystem.BandOf(rank, scale) }

func bandLabel(band, scale int) string { return ecosystem.BandLabel(band, scale) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
