package analysis

import (
	"context"
	"errors"
	"strings"
	"testing"

	"depscope/internal/chain"
	"depscope/internal/core"
	"depscope/internal/membudget"
)

// execPair runs the same experiment down the default and the compact path.
func execPair(t *testing.T, opts Options) (*Run, *Run) {
	t.Helper()
	normal, err := Execute(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Compact = true
	compact, err := Execute(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return normal, compact
}

// TestCompactExecuteReportByteIdentical is the tentpole pinning property at
// the report level: the streamed/columnar path must render the exact same
// report bytes as the default path — for the pinned seeds, with and without
// chains, across batch sizes that do not divide the scale.
func TestCompactExecuteReportByteIdentical(t *testing.T) {
	chains := chain.Default()
	for _, tc := range []struct {
		name   string
		seed   int64
		batch  int
		chains *chain.Config
	}{
		{"seed1", 1, 0, nil},
		{"seed2020-chains-batch700", 2020, 700, &chains},
	} {
		t.Run(tc.name, func(t *testing.T) {
			normal, compact := execPair(t, Options{
				Scale: 2000, Seed: tc.seed, BatchSize: tc.batch, Chains: tc.chains,
			})
			var nb, cb strings.Builder
			Report(&nb, normal)
			Report(&cb, compact)
			if nb.String() != cb.String() {
				t.Error("compact report differs from default-path report")
			}
			for _, sd := range []*SnapshotData{compact.Y2016, compact.Y2020} {
				if sd.Compact == nil {
					t.Fatalf("%s: compact run carries no CompactGraph", sd.Snapshot)
				}
				if !sd.World.Streamed {
					t.Errorf("%s: compact world not marked Streamed", sd.Snapshot)
				}
				if len(sd.World.Pages) != 0 {
					t.Errorf("%s: %d pages left resident after streamed run", sd.Snapshot, len(sd.World.Pages))
				}
			}
			for _, sd := range []*SnapshotData{normal.Y2016, normal.Y2020} {
				if sd.Compact != nil {
					t.Errorf("%s: default run carries a CompactGraph", sd.Snapshot)
				}
			}
		})
	}
}

// TestCompactGraphMatchesPointerOnMeasuredRun pins the columnar metrics
// engine against the pointer graph on real measured output (the core
// property tests cover random graphs): C_p/I_p for every provider under
// every report traversal, plus the site-class counts.
func TestCompactGraphMatchesPointerOnMeasuredRun(t *testing.T) {
	chains := chain.Default()
	_, compact := execPair(t, Options{Scale: 2000, Seed: 2020, Chains: &chains})
	for _, sd := range []*SnapshotData{compact.Y2016, compact.Y2020} {
		g, cg := sd.Graph, sd.Compact
		for _, opts := range []core.TraversalOpts{core.DirectOnly(), core.AllIndirect(), core.AllImplicit()} {
			for name := range g.Providers {
				if got, want := cg.Concentration(name, opts), len(g.ConcentrationSet(name, opts)); got != want {
					t.Fatalf("%s via %v: C(%s) = %d, want %d", sd.Snapshot, opts.ViaProviders, name, got, want)
				}
				if got, want := cg.Impact(name, opts), len(g.ImpactSet(name, opts)); got != want {
					t.Fatalf("%s via %v: I(%s) = %d, want %d", sd.Snapshot, opts.ViaProviders, name, got, want)
				}
			}
		}
		for _, svc := range core.Services {
			want := make(map[core.DepClass]int)
			for _, s := range g.Sites {
				if d, ok := s.Deps[svc]; ok {
					want[d.Class]++
				}
			}
			got := cg.ClassCounts(svc)
			for cls, n := range want {
				if got[cls] != n {
					t.Fatalf("%s: ClassCounts(%s)[%v] = %d, want %d", sd.Snapshot, svc, cls, got[cls], n)
				}
			}
		}
	}
}

// TestCompactRejectsCheckpointing: the option combinations that cannot work
// fail fast with a clear error.
func TestCompactRejectsCheckpointing(t *testing.T) {
	_, err := Execute(context.Background(), Options{
		Scale: 10, Seed: 1, Compact: true, CheckpointPath: "/tmp/cp",
	})
	if err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("want checkpoint rejection, got %v", err)
	}
}

// TestCompactMemBudgetEnforced: an impossibly small budget fails fast with
// the greppable budget error, and a workable budget implies Compact.
func TestCompactMemBudgetEnforced(t *testing.T) {
	_, err := Execute(context.Background(), Options{
		Scale: 2000, Seed: 1, MemBudget: 1, // one byte: over budget at the first batch boundary
	})
	if err == nil || !strings.Contains(err.Error(), "memory budget exceeded") {
		t.Fatalf("want budget error, got %v", err)
	}
	var be *membudget.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("budget failure is not a *membudget.BudgetError: %v", err)
	}

	run, err := Execute(context.Background(), Options{
		Scale: 1000, Seed: 1, MemBudget: 64 * membudget.GiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Y2020.Compact == nil {
		t.Error("MemBudget did not imply the compact path")
	}
}

// TestAblationsRejectStreamedWorlds: re-measuring consumers fail with a
// clear error instead of silently measuring a page-less world.
func TestAblationsRejectStreamedWorlds(t *testing.T) {
	run, err := Execute(context.Background(), Options{Scale: 300, Seed: 1, Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := HeuristicAblation(context.Background(), run); err == nil ||
		!strings.Contains(err.Error(), "resident pages") {
		t.Fatalf("HeuristicAblation on streamed world: %v", err)
	}
	if _, err := ThresholdSweep(context.Background(), run, []int{50}); err == nil ||
		!strings.Contains(err.Error(), "resident pages") {
		t.Fatalf("ThresholdSweep on streamed world: %v", err)
	}
}
