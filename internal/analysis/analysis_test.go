package analysis

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"depscope/internal/core"
)

const testScale = 10000

var (
	runOnce sync.Once
	testRun *Run
	runErr  error
)

func getRun(t testing.TB) *Run {
	t.Helper()
	runOnce.Do(func() {
		testRun, runErr = Execute(context.Background(), Options{Scale: testScale, Seed: 2020})
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return testRun
}

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if got < want-tol || got > want+tol {
		t.Errorf("%s = %.3f, want %.3f ± %.3f", name, got, want, tol)
	}
}

// TestObservation1 checks Fig 2's headline numbers: 89% third-party DNS and
// 85% critical in the full list vs 49%/28% in the top band.
func TestObservation1(t *testing.T) {
	f := Figure2(getRun(t))
	within(t, "third-party (full list)", f[3].ThirdParty(), 0.89, 0.03)
	within(t, "critical (full list)", f[3].Critical(), 0.85, 0.03)
	within(t, "third-party (top band)", f[0].ThirdParty(), 0.49, 0.20)
	within(t, "critical (top band)", f[0].Critical(), 0.28, 0.20)
	if f[0].Critical() >= f[3].Critical() {
		t.Error("critical dependency should increase down the ranks")
	}
}

// TestObservation2 checks Table 3: critical DNS dependency rose by ~4.7pp.
func TestObservation2(t *testing.T) {
	rows := Table3(getRun(t))
	within(t, "critical delta k=full", rows[3].CriticalDelta, 4.7, 1.5)
	within(t, "pvt->single k=full", rows[3].PvtToSingle, 10.7, 1.5)
	within(t, "single->pvt k=full", rows[3].SingleToPvt, 6.0, 1.5)
}

// TestObservation3 checks Fig 3: ~33% of sites use CDNs; 97.6% of users use
// a third-party CDN; 85% of users critically depend on it.
func TestObservation3(t *testing.T) {
	run := getRun(t)
	f := Figure3(run)
	usage := float64(f[3].Total+f[3].Unknown) / float64(len(run.Y2020.Results.Sites))
	within(t, "CDN usage", usage, 0.33, 0.03)
	within(t, "third-party among users", f[3].ThirdParty(), 0.976, 0.02)
	within(t, "critical among users", f[3].Critical(), 0.85, 0.03)
	if f[0].Critical() >= f[3].Critical() {
		t.Error("popular sites should be less critically dependent on CDNs")
	}
}

// TestObservation4 checks Table 4: no significant CDN criticality change at
// full scale, decreasing for popular sites.
func TestObservation4(t *testing.T) {
	rows := Table4(getRun(t))
	within(t, "CDN critical delta full", rows[3].CriticalDelta, 0.0, 2.0)
	if rows[1].CriticalDelta >= rows[3].CriticalDelta+1 {
		t.Errorf("popular-band delta %.1f should be below full-list %.1f",
			rows[1].CriticalDelta, rows[3].CriticalDelta)
	}
}

// TestObservation5 checks Fig 4: 78% HTTPS, 77% third-party CA, ~22%
// stapling among HTTPS sites.
func TestObservation5(t *testing.T) {
	f := Figure4(getRun(t))
	within(t, "HTTPS full", f[3].HTTPSFrac, 0.78, 0.02)
	within(t, "third CA full", f[3].ThirdCAFrac, 0.77, 0.02)
	within(t, "stapling full", f[3].StaplingFrac, 0.22, 0.03)
	if f[0].HTTPSFrac <= f[3].HTTPSFrac {
		t.Error("HTTPS should be higher among popular sites")
	}
	if f[0].ThirdCAFrac >= f[3].ThirdCAFrac {
		t.Error("third-party CA use should be lower among popular sites")
	}
}

// TestObservation7 checks Fig 5: the top providers and their headline
// concentration/impact values.
func TestObservation7(t *testing.T) {
	run := getRun(t)

	dns := Figure5(run, core.DNS, 3)
	if dns[0].Name != "cloudflare.com" {
		t.Fatalf("top DNS provider = %q, want cloudflare.com", dns[0].Name)
	}
	within(t, "Cloudflare C", dns[0].Concentration, 0.24, 0.02)
	within(t, "Cloudflare I", dns[0].Impact, 0.23, 0.02)
	top3 := dns[0].Impact + dns[1].Impact + dns[2].Impact
	within(t, "top-3 DNS impact", top3, 0.40, 0.04)

	cdn := Figure5(run, core.CDN, 3)
	if cdn[0].Name != "Amazon CloudFront" {
		t.Fatalf("top CDN = %q", cdn[0].Name)
	}
	within(t, "CloudFront share of CDN users", cdn[0].Concentration, 0.32, 0.04)

	ca := Figure5(run, core.CA, 3)
	if ca[0].Name != "digicert.com" {
		t.Fatalf("top CA = %q", ca[0].Name)
	}
	within(t, "DigiCert share of HTTPS sites", ca[0].Concentration, 0.32, 0.03)
	if ca[1].Name != "letsencrypt.org" || ca[2].Name != "sectigo.com" {
		t.Errorf("top-3 CAs = %v", []string{ca[0].Name, ca[1].Name, ca[2].Name})
	}
}

// TestObservation8 checks Fig 6: DNS and CA concentration increased between
// snapshots (fewer providers cover 80%), CDN concentration decreased.
func TestObservation8(t *testing.T) {
	run := getRun(t)
	dns := Figure6(run, core.DNS)
	if dns[0].ProvidersFor80 <= dns[1].ProvidersFor80 {
		t.Errorf("DNS: 2016 needed %d providers for 80%%, 2020 %d; want 2016 > 2020",
			dns[0].ProvidersFor80, dns[1].ProvidersFor80)
	}
	ca := Figure6(run, core.CA)
	if ca[0].ProvidersFor80 <= ca[1].ProvidersFor80 {
		t.Errorf("CA: 2016 %d vs 2020 %d; want 2016 > 2020", ca[0].ProvidersFor80, ca[1].ProvidersFor80)
	}
	cdn := Figure6(run, core.CDN)
	if cdn[0].ProvidersFor80 >= cdn[1].ProvidersFor80 {
		t.Errorf("CDN: 2016 %d vs 2020 %d; want 2016 < 2020", cdn[0].ProvidersFor80, cdn[1].ProvidersFor80)
	}
	// Distinct provider counts follow Table 6's universe sizes.
	if cdn[1].Distinct < 70 || cdn[1].Distinct > 95 {
		t.Errorf("2020 distinct CDNs = %d, want ~86", cdn[1].Distinct)
	}
	if ca[1].Distinct < 50 || ca[1].Distinct > 65 {
		t.Errorf("2020 distinct CAs = %d, want ~59", ca[1].Distinct)
	}
}

// TestTable6 checks the inter-service dependency counts.
func TestTable6(t *testing.T) {
	rows := Table6(getRun(t))
	cdnDNS, caDNS, caCDN := rows[0], rows[1], rows[2]
	if cdnDNS.Third < 25 || cdnDNS.Third > 36 || cdnDNS.Critical < 12 || cdnDNS.Critical > 18 {
		t.Errorf("CDN->DNS = %+v, want ~31 third / ~15 critical", cdnDNS)
	}
	if caDNS.Third < 24 || caDNS.Third > 30 || caDNS.Critical < 16 || caDNS.Critical > 20 {
		t.Errorf("CA->DNS = %+v, want ~27 third / ~18 critical", caDNS)
	}
	if caCDN.Third < 19 || caCDN.Third > 24 || caCDN.Critical != caCDN.Third {
		t.Errorf("CA->CDN = %+v, want ~21 third, all critical", caCDN)
	}
}

// TestObservation9 checks Fig 7: CA→DNS indirection amplifies DNSMadeEasy
// from ~1% impact to ~25%, and the top-3 DNS impact from 40% toward 72%.
func TestObservation9(t *testing.T) {
	run := getRun(t)
	rows := Figure7(run, 5)
	var dme *AmplificationRow
	for i := range rows {
		if rows[i].Name == "dnsmadeeasy.com" {
			dme = &rows[i]
		}
	}
	if dme == nil {
		t.Fatalf("DNSMadeEasy missing from Fig 7 top-5: %+v", rows)
	}
	if dme.DirectImpact > 0.03 {
		t.Errorf("DNSMadeEasy direct impact %.3f, want ~0.01", dme.DirectImpact)
	}
	within(t, "DNSMadeEasy indirect impact", dme.IndirectImpact, 0.25, 0.05)
	if amp := dme.IndirectImpact / dme.DirectImpact; amp < 10 {
		t.Errorf("DNSMadeEasy amplification %.1fx, want >10x (paper: 25x)", amp)
	}

	direct3 := TopKImpactShare(run, core.DNS, core.DirectOnly(), 3)
	indirect3 := TopKImpactShare(run, core.DNS, core.TraversalOpts{ViaProviders: []core.Service{core.CA}}, 3)
	within(t, "top-3 direct impact", direct3, 0.40, 0.04)
	if indirect3 < direct3+0.15 {
		t.Errorf("top-3 with CA->DNS = %.3f, want well above direct %.3f (paper: 72%% vs 40%%)",
			indirect3, direct3)
	}
}

// TestObservation10 checks Fig 8: Incapsula is amplified from ~1% to ~27%
// of all sites by serving DigiCert.
func TestObservation10(t *testing.T) {
	rows := Figure8(getRun(t), 5)
	var inc *AmplificationRow
	for i := range rows {
		if rows[i].Name == "Incapsula" {
			inc = &rows[i]
		}
	}
	if inc == nil {
		t.Fatalf("Incapsula missing from Fig 8 top-5: %+v", rows)
	}
	if inc.DirectConcentration > 0.03 {
		t.Errorf("Incapsula direct C %.3f, want ~0.01", inc.DirectConcentration)
	}
	within(t, "Incapsula indirect C", inc.IndirectConcentration, 0.26, 0.05)
}

// TestObservation11 checks Fig 9: the major DNS providers barely move under
// CDN→DNS indirection because the big CDNs run private DNS.
func TestObservation11(t *testing.T) {
	rows := Figure9(getRun(t), 5)
	for _, r := range rows {
		if r.Name == "cloudflare.com" || r.Name == "domaincontrol.com" {
			if d := r.IndirectImpact - r.DirectImpact; d > 0.03 {
				t.Errorf("%s impact moved %.3f under CDN->DNS; expected little change", r.Name, d)
			}
		}
	}
}

// TestHiddenDependencies checks the §5 "additional websites" counts (scaled
// from per-100K: 290 / 32 / 3).
func TestHiddenDependencies(t *testing.T) {
	h := HiddenDependencies(getRun(t))
	scale := float64(testScale) / 100000
	if f := float64(h.PrivateCDNThirdDNS); f < 150*scale || f > 450*scale {
		t.Errorf("private-CDN-third-DNS sites = %d, want ~%.0f", h.PrivateCDNThirdDNS, 290*scale)
	}
	if h.PrivateCAThirdCDN < 1 || h.PrivateCAThirdCDN > 10 {
		t.Errorf("private-CA-third-CDN sites = %d, want ~3 at 10K", h.PrivateCAThirdCDN)
	}
}

// TestCriticalDepsAmplification checks §8.1: indirection raises the share
// of sites with >=3 critical dependencies well above the direct ~9.6%.
func TestCriticalDepsAmplification(t *testing.T) {
	h := CriticalDeps(getRun(t), 3)
	within(t, "direct >=3", h.DirectAtLeast[3], 0.096, 0.04)
	if h.IndirectAtLeast[3] < h.DirectAtLeast[3]*2 {
		t.Errorf("indirect >=3 = %.3f, want well above direct %.3f (paper: 25%% vs 9.6%%)",
			h.IndirectAtLeast[3], h.DirectAtLeast[3])
	}
}

// TestTables1And2 sanity-checks dataset sizes against Table 1/2 ratios.
func TestTables1And2(t *testing.T) {
	run := getRun(t)
	t1 := Table1(run)
	n := float64(testScale)
	within(t, "characterized DNS", float64(t1.CharacterizedDNS)/n, 0.82, 0.02)
	within(t, "CDN users", float64(t1.UsingCDN)/n, 0.33, 0.03)
	within(t, "HTTPS", float64(t1.SupportingHTTPS)/n, 0.78, 0.02)

	t2 := Table2(run)
	within(t, "dead fraction", t2.DeadFraction, 0.038, 0.01)
	if t2.UsingCDNEither <= t1.UsingCDN*8/10 {
		t.Errorf("either-year CDN users %d suspiciously low", t2.UsingCDNEither)
	}
}

// TestReportRenders smoke-tests the full text report.
func TestReportRenders(t *testing.T) {
	var sb strings.Builder
	Report(&sb, getRun(t))
	out := sb.String()
	for _, want := range []string{
		"Table 1", "Table 9", "Figure 2", "Figure 9",
		"cloudflare.com", "digicert.com", "Amazon CloudFront",
		"Hidden dependencies", "Critical dependencies per website",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 4000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

// TestExecuteValidation checks option validation.
func TestExecuteValidation(t *testing.T) {
	if _, err := Execute(context.Background(), Options{}); err == nil {
		t.Error("Execute accepted zero scale")
	}
}

// ---- extensions: outage, robustness, DOT, JSON ----

func TestOutageReport(t *testing.T) {
	run := getRun(t)
	rep := Outage(run, "dnsmadeeasy.com")
	if rep.Transitive <= rep.Direct {
		t.Errorf("outage: transitive %d should exceed direct %d", rep.Transitive, rep.Direct)
	}
	found := false
	for _, p := range rep.AffectedProviders {
		if p == "digicert.com" {
			found = true
		}
	}
	if !found {
		t.Errorf("DigiCert missing from affected providers: %v", rep.AffectedProviders)
	}
	if len(rep.SampleSites) == 0 {
		t.Error("no sample sites")
	}
	var sb strings.Builder
	RenderOutage(&sb, run, "dnsmadeeasy.com")
	if !strings.Contains(sb.String(), "digicert.com") {
		t.Errorf("outage render missing provider chain:\n%s", sb.String())
	}
}

func TestRobustnessRender(t *testing.T) {
	run := getRun(t)
	var sb strings.Builder
	RenderRobustness(&sb, run)
	out := sb.String()
	if !strings.Contains(out, "score 0") || !strings.Contains(out, "critical providers") {
		t.Errorf("robustness render incomplete:\n%s", out)
	}
	d := run.Y2020.Graph.RobustnessAll()
	if d.Zero == 0 || d.Full == 0 {
		t.Errorf("robustness distribution degenerate: %+v", d)
	}
}

func TestWriteDOTFromRun(t *testing.T) {
	run := getRun(t)
	var sb strings.Builder
	if err := WriteDOT(&sb, run, 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "digraph dependencies") || !strings.Contains(out, "cloudflare.com") {
		t.Error("DOT output incomplete")
	}
}

func TestWriteJSON(t *testing.T) {
	run := getRun(t)
	var sb strings.Builder
	if err := WriteJSON(&sb, run); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"table1", "figure2_dns", "figure5_top_providers", "hidden_dependencies"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("JSON missing %q", key)
		}
	}
}

func TestValidationExperiment(t *testing.T) {
	run := getRun(t)
	rep, err := Validate(context.Background(), run)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pairs == 0 {
		t.Fatal("no pairs scored")
	}
	if rep.CombinedAccuracy < 0.999 {
		t.Errorf("combined accuracy = %.4f", rep.CombinedAccuracy)
	}
	if rep.TLDAccuracy >= rep.CombinedAccuracy {
		t.Errorf("TLD accuracy %.4f should be below combined %.4f", rep.TLDAccuracy, rep.CombinedAccuracy)
	}
	if rep.SOAAccuracy > 0.8 {
		t.Errorf("SOA accuracy %.4f should be poor", rep.SOAAccuracy)
	}
	// Pair accounting: ~13.5% uncharacterized in the paper; our trap design
	// lands in the same regime.
	if f := rep.PairStats.UncharacterizedFrac(); f < 0.08 || f > 0.25 {
		t.Errorf("uncharacterized pair fraction = %.3f", f)
	}
	var sb strings.Builder
	if err := RenderValidation(&sb, run); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "combined heuristic") {
		t.Error("validation render incomplete")
	}
}

func TestCSVEmitters(t *testing.T) {
	run := getRun(t)
	for _, fig := range []string{"figure2", "figure3", "figure4", "figure6-dns", "figure6-cdn", "figure6-ca", "figure7", "figure8", "figure9"} {
		var sb strings.Builder
		if err := WriteFigureCSV(&sb, run, fig); err != nil {
			t.Fatalf("%s: %v", fig, err)
		}
		lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
		if len(lines) < 2 {
			t.Errorf("%s: only %d lines", fig, len(lines))
		}
		header := lines[0]
		if !strings.Contains(header, ",") {
			t.Errorf("%s: bad header %q", fig, header)
		}
	}
	if err := WriteFigureCSV(&strings.Builder{}, run, "figure99"); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestHeuristicAblation(t *testing.T) {
	run := getRun(t)
	rows, err := HeuristicAblation(context.Background(), run)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	full := rows[0]
	if full.Accuracy < 0.99 {
		t.Errorf("full heuristic accuracy = %.3f", full.Accuracy)
	}
	for _, r := range rows[1:] {
		if r.Accuracy > full.Accuracy+1e-9 {
			t.Errorf("%s accuracy %.4f exceeds full %.4f", r.Variant, r.Accuracy, full.Accuracy)
		}
	}
	// Dropping the concentration rule must grow the unmeasurable mass: the
	// SOA-points-at-provider sites lose their only classifying rule.
	var noConc AblationRow
	for _, r := range rows {
		if r.Variant == "without concentration rule" {
			noConc = r
		}
	}
	if noConc.CharacterizedFrac >= full.CharacterizedFrac-0.05 {
		t.Errorf("without concentration: characterized %.3f vs full %.3f, expected a large drop",
			noConc.CharacterizedFrac, full.CharacterizedFrac)
	}
}

func TestThresholdSweep(t *testing.T) {
	run := getRun(t)
	rows, err := ThresholdSweep(context.Background(), run, []int{5, 50, 100000})
	if err != nil {
		t.Fatal(err)
	}
	// A tiny threshold classifies even the trap providers (everything looks
	// third-party); an absurd threshold disables the rule entirely.
	if rows[0].CharacterizedFrac <= rows[1].CharacterizedFrac {
		t.Errorf("threshold 5 should characterize more than 50: %.3f vs %.3f",
			rows[0].CharacterizedFrac, rows[1].CharacterizedFrac)
	}
	if rows[2].CharacterizedFrac >= rows[1].CharacterizedFrac {
		t.Errorf("threshold 100000 should characterize less than 50: %.3f vs %.3f",
			rows[2].CharacterizedFrac, rows[1].CharacterizedFrac)
	}
	var sb strings.Builder
	if err := RenderAblation(&sb, run); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "without SAN rule") {
		t.Error("ablation render incomplete")
	}
}

func TestFigure5Band(t *testing.T) {
	run := getRun(t)
	// The paper: Dyn is the most popular provider in the top-100 band
	// (used by ~17%, critical for only ~2%); Akamai leads the top-100 CDN
	// market even though CloudFront leads overall.
	dnsTop := Figure5Band(run, core.DNS, 0, 5)
	foundDyn := false
	for _, r := range dnsTop {
		if r.Name == "dynect.net" {
			foundDyn = true
			if r.Impact > r.Concentration/2 {
				t.Errorf("Dyn in top band should be mostly redundant: C=%.2f I=%.2f", r.Concentration, r.Impact)
			}
		}
	}
	if !foundDyn {
		t.Errorf("Dyn missing from top-band DNS providers: %+v", dnsTop)
	}
	cdnTop := Figure5Band(run, core.CDN, 0, 3)
	if len(cdnTop) == 0 || cdnTop[0].Name != "Akamai" {
		t.Errorf("top-band CDN leader = %+v, want Akamai", cdnTop)
	}
	full := Figure5Band(run, core.CDN, 3, 1)
	if len(full) == 0 || full[0].Name != "Amazon CloudFront" {
		t.Errorf("full-list CDN leader = %+v, want CloudFront", full)
	}
}
