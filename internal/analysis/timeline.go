package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"

	"depscope/internal/core"
)

// Timelines replay an ordered stream of graph deltas against a measured
// snapshot and record how the ecosystem's dependency structure evolves step
// by step — the continuous view between the paper's two point-in-time
// snapshots. Each step applies its delta incrementally (the metrics engine
// is carried across every Apply), so a timeline over a 100K-site graph costs
// one measurement run plus cheap per-step patches, not one run per step.

// DeltaStep is one labeled edit in a delta stream.
type DeltaStep struct {
	// Label names the step in the rendered table (e.g. "post-Mirai exodus").
	Label string `json:"label,omitempty"`
	// Delta is the edit, in the core wire format (see internal/core
	// delta_json.go). Unknown fields are rejected.
	Delta core.Delta `json:"delta"`
}

// DeltaStream is a replayable sequence of deltas.
type DeltaStream struct {
	// Base names the measured snapshot the replay starts from ("2016" or
	// "2020"); empty means 2016 — timelines evolve forward from the earlier
	// world.
	Base string `json:"base,omitempty"`
	// Steps are applied in order, each on the previous step's graph.
	Steps []DeltaStep `json:"steps"`
}

// ParseDeltaStream decodes a delta stream, rejecting unknown fields at every
// level (the nested deltas use the strict core codec).
func ParseDeltaStream(r io.Reader) (*DeltaStream, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var ds DeltaStream
	if err := dec.Decode(&ds); err != nil {
		return nil, fmt.Errorf("decode delta stream: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("decode delta stream: trailing data after stream object")
	}
	return &ds, nil
}

// TimelineStep is one row of a replayed timeline: the graph state after the
// step's delta, plus what the application itself touched.
type TimelineStep struct {
	// Label is the step's label ("base" for the starting snapshot).
	Label string `json:"label"`
	// Sites and CriticalSites describe the universe after the step:
	// CriticalSites counts sites with at least one (transitive) critical
	// dependency.
	Sites         int `json:"sites"`
	CriticalSites int `json:"critical_sites"`
	// TopDNS is the highest-concentration DNS provider and its C_p/I_p under
	// the full indirect traversal — the paper's headline exposure number.
	TopDNS       string `json:"top_dns,omitempty"`
	TopDNSConc   int    `json:"top_dns_concentration,omitempty"`
	TopDNSImpact int    `json:"top_dns_impact,omitempty"`
	// Stats reports what the delta touched (zero for the base row).
	Stats core.ApplyStats `json:"stats"`
	// Changed counts providers whose C_p or I_p moved relative to the
	// previous step.
	Changed int `json:"changed_providers"`
}

// Timeline replays stream against the named base snapshot of run and returns
// one row per state: the base itself, then one per step. The base graph is
// never mutated; each step's graph shares untouched nodes with its
// predecessor.
func Timeline(run *Run, stream *DeltaStream) ([]TimelineStep, error) {
	base := stream.Base
	if base == "" {
		base = "2016"
	}
	g, err := SnapshotGraph(run, base)
	if err != nil {
		return nil, err
	}
	rows := make([]TimelineStep, 0, len(stream.Steps)+1)
	rows = append(rows, timelineRow("base ("+base+")", g, core.ApplyStats{}, 0))
	for i, step := range stream.Steps {
		label := step.Label
		if label == "" {
			label = fmt.Sprintf("step %d", i+1)
		}
		ng, stats, err := g.Apply(step.Delta)
		if err != nil {
			return nil, fmt.Errorf("timeline step %d (%s): %w", i+1, label, err)
		}
		diff := DiffGraphs(g, ng)
		rows = append(rows, timelineRow(label, ng, stats, len(diff.Providers)))
		g = ng
	}
	return rows, nil
}

func timelineRow(label string, g *core.Graph, stats core.ApplyStats, changed int) TimelineStep {
	row := TimelineStep{
		Label:   label,
		Sites:   len(g.Sites),
		Stats:   stats,
		Changed: changed,
	}
	for _, n := range g.CriticalDepsPerSite(true) {
		if n > 0 {
			row.CriticalSites++
		}
	}
	if top := g.TopProviders(core.DNS, core.AllIndirect(), false, 1); len(top) > 0 {
		row.TopDNS = top[0].Name
		row.TopDNSConc = top[0].Concentration
		row.TopDNSImpact = top[0].Impact
	}
	return row
}

// RenderTimeline writes the evolution table.
func RenderTimeline(w io.Writer, rows []TimelineStep) {
	fmt.Fprintf(w, "Timeline: dependency evolution over %d steps\n", max(len(rows)-1, 0))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "step\tsites\tcritical\ttop DNS provider\tC_p\tI_p\tΔproviders\tdirty\tpatched")
	for i, r := range rows {
		pct := 0.0
		if r.Sites > 0 {
			pct = 100 * float64(r.CriticalSites) / float64(r.Sites)
		}
		changed, dirty, patched := "-", "-", "-"
		if i > 0 {
			changed = fmt.Sprint(r.Changed)
			dirty = fmt.Sprint(r.Stats.DirtyNames)
			if r.Stats.Rebuilt {
				patched = "rebuilt"
			} else {
				patched = fmt.Sprint(r.Stats.PatchedEntries)
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d (%.1f%%)\t%s\t%d\t%d\t%s\t%s\t%s\n",
			r.Label, r.Sites, r.CriticalSites, pct,
			r.TopDNS, r.TopDNSConc, r.TopDNSImpact,
			changed, dirty, patched)
	}
	tw.Flush()
	if len(rows) > 1 {
		first, last := rows[0], rows[len(rows)-1]
		fmt.Fprintf(w, "net: sites %+d, critical sites %+d, top-DNS C_p %d → %d\n",
			last.Sites-first.Sites, last.CriticalSites-first.CriticalSites,
			first.TopDNSConc, last.TopDNSConc)
	}
}
