package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"depscope/internal/core"
)

// Extensions beyond the paper's tables: the §8.3 robustness metric, the
// what-if outage query, DOT export and a machine-readable JSON summary.

// OutageReport answers "what if provider X goes down?" — the question the
// incidents of §2 pose.
type OutageReport struct {
	Provider string
	// Direct is the number of sites critically dependent through direct use.
	Direct int
	// Transitive includes inter-service chains.
	Transitive int
	// AffectedProviders lists providers critically dependent on the target.
	AffectedProviders []string
	// SampleSites are up to 10 affected sites (rank order).
	SampleSites []string
}

// Outage computes the blast radius of one provider in the 2020 snapshot.
func Outage(run *Run, provider string) OutageReport {
	g := run.Y2020.Graph
	rep := OutageReport{
		Provider:   provider,
		Direct:     g.Impact(provider, core.DirectOnly()),
		Transitive: g.Impact(provider, core.AllIndirect()),
	}
	for name, p := range g.Providers {
		for _, d := range p.Deps {
			if d.Class.Critical() {
				for _, dep := range d.Providers {
					if dep == provider {
						rep.AffectedProviders = append(rep.AffectedProviders, name)
					}
				}
			}
		}
	}
	sort.Strings(rep.AffectedProviders)
	affected := g.ImpactSet(provider, core.AllIndirect())
	var sites []*core.Site
	for _, s := range g.Sites {
		if affected[s.Name] {
			sites = append(sites, s)
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].Rank < sites[j].Rank })
	for i := 0; i < len(sites) && i < 10; i++ {
		rep.SampleSites = append(rep.SampleSites, sites[i].Name)
	}
	return rep
}

// RenderOutage prints an outage report.
func RenderOutage(w io.Writer, run *Run, provider string) {
	rep := Outage(run, provider)
	header(w, fmt.Sprintf("Outage what-if: %s (2020)", rep.Provider))
	fmt.Fprintf(w, "sites down via direct dependency:     %d\n", rep.Direct)
	fmt.Fprintf(w, "sites down including hidden chains:   %d\n", rep.Transitive)
	if len(rep.AffectedProviders) > 0 {
		fmt.Fprintf(w, "providers critically dependent on it: %v\n", rep.AffectedProviders)
	}
	if len(rep.SampleSites) > 0 {
		fmt.Fprintf(w, "highest-ranked affected sites:        %v\n", rep.SampleSites)
	}
}

// RenderRobustness prints the §8.3 defense-metric distribution plus the
// most and least robust popular sites.
func RenderRobustness(w io.Writer, run *Run) {
	g := run.Y2020.Graph
	d := g.RobustnessAll()
	total := d.Zero + d.Low + d.High + d.Full
	header(w, "Website robustness score (the paper's §8.3 defense metric)")
	pct := func(n int) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(n) / float64(total)
	}
	fmt.Fprintf(w, "score 0 (every service critical):    %6d (%4.1f%%)\n", d.Zero, pct(d.Zero))
	fmt.Fprintf(w, "score (0,0.5]:                       %6d (%4.1f%%)\n", d.Low, pct(d.Low))
	fmt.Fprintf(w, "score (0.5,1):                       %6d (%4.1f%%)\n", d.High, pct(d.High))
	fmt.Fprintf(w, "score 1 (no critical dependency):    %6d (%4.1f%%)\n", d.Full, pct(d.Full))

	// Audit the top-10 sites like the envisioned neutral service would.
	fmt.Fprintf(w, "\n%-16s %6s %9s  %s\n", "site", "score", "shared", "critical providers")
	for i, s := range g.Sites {
		if i >= 10 {
			break
		}
		r, err := g.RobustnessOf(s.Name)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "%-16s %6.2f %9d  %v\n", s.Name, r.Score, r.SharedFate, r.CriticalProviders)
	}
}

// WriteDOT exports the 2020 dependency graph in Graphviz format.
func WriteDOT(w io.Writer, run *Run, maxSites int) error {
	return run.Y2020.Graph.WriteDOT(w, maxSites)
}

// JSONSummary is the machine-readable form of the full experiment set.
type JSONSummary struct {
	Scale   int                      `json:"scale"`
	Table1  DatasetSummary           `json:"table1"`
	Table2  ComparisonSummary        `json:"table2"`
	Figure2 []BandJSON               `json:"figure2_dns"`
	Figure3 []BandJSON               `json:"figure3_cdn"`
	Figure4 [4]CABandRow             `json:"figure4_ca"`
	Table3  [4]core.TrendRow         `json:"table3_dns_trends"`
	Table4  [4]core.TrendRow         `json:"table4_cdn_trends"`
	Table6  [3]InterServiceRow       `json:"table6_interservice"`
	Figure5 map[string][]ProviderRow `json:"figure5_top_providers"`
	Figure7 []AmplificationRow       `json:"figure7_ca_dns"`
	Figure8 []AmplificationRow       `json:"figure8_ca_cdn"`
	Figure9 []AmplificationRow       `json:"figure9_cdn_dns"`
	Hidden  HiddenDeps               `json:"hidden_dependencies"`
}

// BandJSON flattens core.BandStats for encoding.
type BandJSON struct {
	Label      string  `json:"label"`
	Total      int     `json:"total"`
	ThirdParty float64 `json:"third_party"`
	Critical   float64 `json:"critical"`
	MultiThird float64 `json:"multi_third"`
	Mixed      float64 `json:"private_plus_third"`
}

func bandsJSON(bands [4]core.BandStats) []BandJSON {
	out := make([]BandJSON, 0, 4)
	for _, b := range bands {
		out = append(out, BandJSON{
			Label:      b.Label,
			Total:      b.Total,
			ThirdParty: b.ThirdParty(),
			Critical:   b.Critical(),
			MultiThird: b.MultiThird(),
			Mixed:      b.MixedFrac(),
		})
	}
	return out
}

// WriteJSON emits the summary as indented JSON.
func WriteJSON(w io.Writer, run *Run) error {
	s := JSONSummary{
		Scale:   run.Scale,
		Table1:  Table1(run),
		Table2:  Table2(run),
		Figure2: bandsJSON(Figure2(run)),
		Figure3: bandsJSON(Figure3(run)),
		Figure4: Figure4(run),
		Table3:  Table3(run),
		Table4:  Table4(run),
		Table6:  Table6(run),
		Figure5: map[string][]ProviderRow{
			"dns": Figure5(run, core.DNS, 5),
			"cdn": Figure5(run, core.CDN, 5),
			"ca":  Figure5(run, core.CA, 5),
		},
		Figure7: Figure7(run, 5),
		Figure8: Figure8(run, 5),
		Figure9: Figure9(run, 5),
		Hidden:  HiddenDependencies(run),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
