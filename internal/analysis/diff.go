package analysis

import (
	"sort"
	"strings"

	"depscope/internal/core"
)

// Graph diffs: the structured answer to "what changed between these two
// dependency graphs?". A diff pairs every provider whose concentration C_p
// or impact I_p moved with its before/after counts, and every site whose
// dependency class changed for some service with its before/after class —
// the per-edit view behind the paper's 2016→2020 comparison tables, exposed
// over the query API as GET /v1/diff after a delta is applied.

// ProviderDelta is one provider whose metrics differ between two graphs.
// A provider absent from one side reports zero counts for that side.
type ProviderDelta struct {
	Name             string `json:"name"`
	Service          string `json:"service"`
	OldConcentration int    `json:"old_concentration"`
	NewConcentration int    `json:"new_concentration"`
	OldImpact        int    `json:"old_impact"`
	NewImpact        int    `json:"new_impact"`
	// DeltaConcentration and DeltaImpact are new − old, denormalized so API
	// consumers need no arithmetic.
	DeltaConcentration int `json:"delta_concentration"`
	DeltaImpact        int `json:"delta_impact"`
}

// SiteClassChange is one site whose arrangement class changed for one
// service ("none" marks a side where the site lacks the service entirely —
// or, for added/removed sites, does not exist).
type SiteClassChange struct {
	Site     string `json:"site"`
	Service  string `json:"service"`
	OldClass string `json:"old_class"`
	NewClass string `json:"new_class"`
}

// GraphDiff is the full change surface between two graphs.
type GraphDiff struct {
	// Providers lists every provider whose C_p or I_p changed, ordered by
	// service (dns, cdn, ca), then by descending |ΔC_p|+|ΔI_p|, then name —
	// deterministic, biggest movers first.
	Providers []ProviderDelta `json:"providers,omitempty"`
	// SiteChanges lists per-service class transitions, ordered by site then
	// service.
	SiteChanges []SiteClassChange `json:"site_changes,omitempty"`
	// SitesAdded and SitesRemoved name sites present on only one side, sorted.
	SitesAdded   []string `json:"sites_added,omitempty"`
	SitesRemoved []string `json:"sites_removed,omitempty"`
}

// Empty reports a diff with no changes on any axis.
func (d *GraphDiff) Empty() bool {
	return len(d.Providers) == 0 && len(d.SiteChanges) == 0 &&
		len(d.SitesAdded) == 0 && len(d.SitesRemoved) == 0
}

// Diff compares this snapshot's graph against prev's, newest receiver first:
// sd.Diff(prev) reads as "what changed getting here from prev".
func (sd *SnapshotData) Diff(prev *SnapshotData) *GraphDiff {
	return DiffGraphs(prev.Graph, sd.Graph)
}

// DiffGraphs computes the change surface from prev to cur. Metric lookups go
// through each graph's metrics engine, so diffing a delta-derived graph
// against its base reuses the carried propagation instead of re-walking
// either graph from scratch.
func DiffGraphs(prev, cur *core.Graph) *GraphDiff {
	d := &GraphDiff{}
	opts := core.AllIndirect()
	// AllServices: chain vendors (Resource providers) diff like any other
	// provider; without chains the Resource maps are empty and nothing
	// changes.
	for _, svc := range core.AllServices {
		old := statsByName(prev, svc, opts)
		now := statsByName(cur, svc, opts)
		for name, o := range old {
			n, ok := now[name]
			if !ok {
				n = core.ProviderStat{Name: name, Service: svc}
			}
			appendProviderDelta(d, svc, o, n)
		}
		for name, n := range now {
			if _, ok := old[name]; ok {
				continue // already compared above
			}
			appendProviderDelta(d, svc, core.ProviderStat{Name: name, Service: svc}, n)
		}
	}
	sort.Slice(d.Providers, func(i, j int) bool {
		a, b := d.Providers[i], d.Providers[j]
		if a.Service != b.Service {
			return serviceOrder(a.Service) < serviceOrder(b.Service)
		}
		ma := abs(a.DeltaConcentration) + abs(a.DeltaImpact)
		mb := abs(b.DeltaConcentration) + abs(b.DeltaImpact)
		if ma != mb {
			return ma > mb
		}
		return a.Name < b.Name
	})
	diffSites(d, prev, cur)
	return d
}

// statsByName indexes TopProviders output by provider name.
func statsByName(g *core.Graph, svc core.Service, opts core.TraversalOpts) map[string]core.ProviderStat {
	stats := g.TopProviders(svc, opts, false, 0)
	out := make(map[string]core.ProviderStat, len(stats))
	for _, st := range stats {
		out[st.Name] = st
	}
	return out
}

func appendProviderDelta(d *GraphDiff, svc core.Service, o, n core.ProviderStat) {
	if o.Concentration == n.Concentration && o.Impact == n.Impact {
		return
	}
	d.Providers = append(d.Providers, ProviderDelta{
		Name:               o.Name,
		Service:            strings.ToLower(svc.String()),
		OldConcentration:   o.Concentration,
		NewConcentration:   n.Concentration,
		OldImpact:          o.Impact,
		NewImpact:          n.Impact,
		DeltaConcentration: n.Concentration - o.Concentration,
		DeltaImpact:        n.Impact - o.Impact,
	})
}

// diffSites fills the site-side change lists. Node identity is the fast
// path: delta-derived graphs share untouched Site nodes with their base, so
// only replaced nodes pay the per-service class comparison.
func diffSites(d *GraphDiff, prev, cur *core.Graph) {
	prevByName := make(map[string]*core.Site, len(prev.Sites))
	for _, s := range prev.Sites {
		prevByName[s.Name] = s
	}
	seen := make(map[string]bool, len(cur.Sites))
	for _, s := range cur.Sites {
		seen[s.Name] = true
		ps, ok := prevByName[s.Name]
		if !ok {
			d.SitesAdded = append(d.SitesAdded, s.Name)
			continue
		}
		if ps == s {
			continue // shared node: definitionally unchanged
		}
		for _, svc := range core.Services {
			oc := ps.Deps[svc].Class
			nc := s.Deps[svc].Class
			if oc == nc {
				continue
			}
			d.SiteChanges = append(d.SiteChanges, SiteClassChange{
				Site:     s.Name,
				Service:  strings.ToLower(svc.String()),
				OldClass: oc.String(),
				NewClass: nc.String(),
			})
		}
	}
	for _, s := range prev.Sites {
		if !seen[s.Name] {
			d.SitesRemoved = append(d.SitesRemoved, s.Name)
		}
	}
	sort.Strings(d.SitesAdded)
	sort.Strings(d.SitesRemoved)
	sort.Slice(d.SiteChanges, func(i, j int) bool {
		a, b := d.SiteChanges[i], d.SiteChanges[j]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return serviceOrder(a.Service) < serviceOrder(b.Service)
	})
}

func serviceOrder(s string) int {
	switch s {
	case "dns":
		return 0
	case "cdn":
		return 1
	case "ca":
		return 2
	}
	return 3
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
