package analysis

import (
	"context"
	"strings"
	"testing"

	"depscope/internal/core"
)

// TestExecuteProgressSerialized: the two snapshot goroutines report progress
// concurrently, and Execute promises to serialize the callback. The recorder
// below appends to a plain slice with no locking of its own — under -race
// this fails if Execute ever lets two calls overlap.
func TestExecuteProgressSerialized(t *testing.T) {
	var lines []string
	run, err := Execute(context.Background(), Options{
		Scale: 500,
		Seed:  11,
		Progress: func(format string, args ...any) {
			lines = append(lines, format)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Y2016 == nil || run.Y2020 == nil {
		t.Fatal("missing snapshot data")
	}
	// One generation line plus one line per measured snapshot.
	if len(lines) < 3 {
		t.Errorf("got %d progress lines, want >= 3: %q", len(lines), lines)
	}
	var measured int
	for _, l := range lines {
		if strings.Contains(l, "measured") {
			measured++
		}
	}
	if measured != 2 {
		t.Errorf("got %d measurement progress lines, want 2", measured)
	}
}

// TestExecuteNegativeWorkers: Options.Workers below 1 means GOMAXPROCS; the
// run must complete and produce graphs whose metrics engine works.
func TestExecuteNegativeWorkers(t *testing.T) {
	run, err := Execute(context.Background(), Options{Scale: 300, Seed: 3, Workers: -5})
	if err != nil {
		t.Fatal(err)
	}
	for _, sd := range []*SnapshotData{run.Y2016, run.Y2020} {
		if sd == nil || sd.Graph == nil {
			t.Fatal("missing snapshot graph")
		}
		stats := sd.Graph.TopProviders(core.DNS, core.AllIndirect(), false, 3)
		if len(stats) == 0 {
			t.Error("no DNS providers ranked")
		}
	}
}
