package analysis

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"depscope/internal/core"
)

// CSV emitters produce plot-ready series for the figures, so the paper's
// plots can be regenerated with any charting tool.

// WriteBandCSV writes a Figure 2/3-style band series: one row per band with
// the four dependency fractions.
func WriteBandCSV(w io.Writer, bands [4]core.BandStats) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"band", "third_party", "critical", "multi_third", "private_plus_third"}); err != nil {
		return err
	}
	for _, b := range bands {
		if err := cw.Write([]string{
			b.Label,
			f(b.ThirdParty()), f(b.Critical()), f(b.MultiThird()), f(b.MixedFrac()),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCACSV writes the Figure 4 series.
func WriteCACSV(w io.Writer, rows [4]CABandRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"band", "https", "third_ca", "stapling"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.Label, f(r.HTTPSFrac), f(r.ThirdCAFrac), f(r.StaplingFrac)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCDFCSV writes the Figure 6 curves: providers,coverage per snapshot,
// long format with a year column.
func WriteCDFCSV(w io.Writer, series [2]CDFSeries) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"year", "providers", "coverage"}); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			if err := cw.Write([]string{s.Year, strconv.Itoa(p.Providers), f(p.Coverage)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAmplificationCSV writes a Figure 7/8/9 comparison.
func WriteAmplificationCSV(w io.Writer, rows []AmplificationRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"provider", "c_direct", "c_indirect", "i_direct", "i_indirect"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Name,
			f(r.DirectConcentration), f(r.IndirectConcentration),
			f(r.DirectImpact), f(r.IndirectImpact),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigureCSV dispatches by figure name ("figure2", "figure3", ...,
// "figure9"), the same identifiers the CLI uses.
func WriteFigureCSV(w io.Writer, run *Run, figure string) error {
	switch figure {
	case "figure2":
		return WriteBandCSV(w, Figure2(run))
	case "figure3":
		return WriteBandCSV(w, Figure3(run))
	case "figure4":
		return WriteCACSV(w, Figure4(run))
	case "figure6-dns":
		return WriteCDFCSV(w, Figure6(run, core.DNS))
	case "figure6-cdn":
		return WriteCDFCSV(w, Figure6(run, core.CDN))
	case "figure6-ca":
		return WriteCDFCSV(w, Figure6(run, core.CA))
	case "figure7":
		return WriteAmplificationCSV(w, Figure7(run, 5))
	case "figure8":
		return WriteAmplificationCSV(w, Figure8(run, 5))
	case "figure9":
		return WriteAmplificationCSV(w, Figure9(run, 5))
	}
	return fmt.Errorf("analysis: no CSV emitter for %q", figure)
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
