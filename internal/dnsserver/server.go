// Package dnsserver serves a dnszone.Store authoritatively over UDP and TCP.
//
// It implements the transport behaviour a measurement client sees from real
// authoritative servers: 512-byte UDP answers with TC-bit truncation and a
// length-prefixed TCP fallback path (RFC 1035 §4.2). The depscope live
// pipeline and the digsim tool talk to this server with real packets.
package dnsserver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"strings"
	"sync"
	"time"

	"depscope/internal/dnsmsg"
	"depscope/internal/dnszone"
	"depscope/internal/telemetry"
)

// Server-side telemetry, aggregated across all server instances and served
// by depserver's /metrics endpoint. Per-rcode counters are pre-registered
// for every mnemonic the codec knows; an unknown code falls back to the
// "other" counter rather than minting unbounded names.
var (
	telUDPQueries = telemetry.Counter("dnsserver_udp_queries_total", "DNS queries served over UDP")
	telTCPQueries = telemetry.Counter("dnsserver_tcp_queries_total", "DNS queries served over TCP (AXFR included)")
	telMalformed  = telemetry.Counter("dnsserver_malformed_packets_total", "packets that failed to parse as DNS queries")
	telTruncated  = telemetry.Counter("dnsserver_truncated_responses_total", "UDP responses truncated with the TC bit set")
	telAXFR       = telemetry.Counter("dnsserver_axfr_total", "zone transfers served")

	telRCodes = func() map[dnsmsg.RCode]*telemetry.CounterMetric {
		m := make(map[dnsmsg.RCode]*telemetry.CounterMetric)
		for _, rc := range []dnsmsg.RCode{
			dnsmsg.RCodeSuccess, dnsmsg.RCodeFormatError, dnsmsg.RCodeServerFailure,
			dnsmsg.RCodeNameError, dnsmsg.RCodeNotImplemented, dnsmsg.RCodeRefused,
		} {
			m[rc] = telemetry.Counter(
				"dnsserver_rcode_"+strings.ToLower(rc.String())+"_total",
				"responses sent with rcode "+rc.String())
		}
		return m
	}()
	telRCodeOther = telemetry.Counter("dnsserver_rcode_other_total", "responses sent with an unrecognized rcode")
)

func countRCode(rc dnsmsg.RCode) {
	if c, ok := telRCodes[rc]; ok {
		c.Inc()
		return
	}
	telRCodeOther.Inc()
}

// maxUDPPayload is the classic DNS UDP limit; larger responses are
// truncated with TC set so clients retry over TCP. Clients advertising a
// larger size via EDNS(0) get up to maxEDNSPayload.
const (
	maxUDPPayload  = 512
	maxEDNSPayload = 4096
)

// Config controls server behaviour.
type Config struct {
	// Addr is the listen address for both UDP and TCP, e.g. "127.0.0.1:0".
	Addr string
	// ReadTimeout bounds a single TCP read; zero means 5s.
	ReadTimeout time.Duration
	// MaxTCPConns caps concurrent TCP connections; zero means 128.
	MaxTCPConns int
	// Logf, when set, receives one line per served query.
	Logf func(format string, args ...any)
}

// Server answers DNS queries from a zone store.
type Server struct {
	store *dnszone.Store
	cfg   Config

	udp *net.UDPConn
	tcp net.Listener

	mu      sync.Mutex
	closed  bool
	wg      sync.WaitGroup
	tcpSem  chan struct{}
	queries int64
}

// New creates a server for store. Call Start to begin listening.
func New(store *dnszone.Store, cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 5 * time.Second
	}
	if cfg.MaxTCPConns == 0 {
		cfg.MaxTCPConns = 128
	}
	return &Server{
		store:  store,
		cfg:    cfg,
		tcpSem: make(chan struct{}, cfg.MaxTCPConns),
	}
}

// Start binds the UDP socket and TCP listener and begins serving. The
// returned address carries the concrete port when Addr requested port 0;
// UDP and TCP share it.
func (s *Server) Start() (addr string, err error) {
	udpAddr, err := net.ResolveUDPAddr("udp", s.cfg.Addr)
	if err != nil {
		return "", fmt.Errorf("dnsserver: resolve %q: %w", s.cfg.Addr, err)
	}
	s.udp, err = net.ListenUDP("udp", udpAddr)
	if err != nil {
		return "", fmt.Errorf("dnsserver: listen udp: %w", err)
	}
	// Bind TCP on the same port the UDP socket got.
	actual := s.udp.LocalAddr().(*net.UDPAddr)
	s.tcp, err = net.Listen("tcp", actual.String())
	if err != nil {
		s.udp.Close()
		return "", fmt.Errorf("dnsserver: listen tcp: %w", err)
	}
	s.wg.Add(2)
	go s.serveUDP()
	go s.serveTCP()
	return actual.String(), nil
}

// Addr returns the bound address, valid after Start.
func (s *Server) Addr() string {
	if s.udp == nil {
		return ""
	}
	return s.udp.LocalAddr().String()
}

// Close stops the listeners and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	var first error
	if s.udp != nil {
		first = s.udp.Close()
	}
	if s.tcp != nil {
		if err := s.tcp.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.wg.Wait()
	return first
}

// Queries returns the number of queries served so far.
func (s *Server) Queries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

func (s *Server) countQuery() {
	s.mu.Lock()
	s.queries++
	s.mu.Unlock()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) serveUDP() {
	defer s.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, peer, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			s.logf("dnsserver: udp read: %v", err)
			continue
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		telUDPQueries.Inc()
		s.wg.Add(1)
		go func(pkt []byte, peer *net.UDPAddr) {
			defer s.wg.Done()
			resp, limit := s.respond(pkt)
			if resp == nil {
				return
			}
			bufp := dnsmsg.GetPacketBuf()
			out, err := s.packUDP(resp, limit, (*bufp)[:0])
			if err != nil {
				s.logf("dnsserver: pack: %v", err)
				dnsmsg.PutPacketBuf(bufp)
				return
			}
			if _, err := s.udp.WriteToUDP(out, peer); err != nil && !s.isClosed() {
				s.logf("dnsserver: udp write: %v", err)
			}
			*bufp = out[:0]
			dnsmsg.PutPacketBuf(bufp)
		}(pkt, peer)
	}
}

// packUDP serializes resp into dst (a recycled wire buffer), truncating to
// an empty answer with TC set when the packed form exceeds the client's
// payload limit.
func (s *Server) packUDP(resp *dnsmsg.Message, limit int, dst []byte) ([]byte, error) {
	out, err := resp.AppendPack(dst)
	if err != nil {
		return nil, err
	}
	if len(out) <= limit {
		return out, nil
	}
	telTruncated.Inc()
	trunc := &dnsmsg.Message{Header: resp.Header, Questions: resp.Questions}
	trunc.Header.Truncated = true
	return trunc.AppendPack(out[:0])
}

func (s *Server) serveTCP() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			s.logf("dnsserver: accept: %v", err)
			continue
		}
		s.tcpSem <- struct{}{}
		s.wg.Add(1)
		go func(conn net.Conn) {
			defer func() {
				conn.Close()
				<-s.tcpSem
				s.wg.Done()
			}()
			s.serveTCPConn(conn)
		}(conn)
	}
}

// serveTCPConn handles length-prefixed messages until EOF or timeout,
// allowing clients to pipeline multiple queries per connection.
func (s *Server) serveTCPConn(conn net.Conn) {
	for {
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)); err != nil {
			return
		}
		var lenBuf [2]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := int(lenBuf[0])<<8 | int(lenBuf[1])
		pkt := make([]byte, n)
		if _, err := io.ReadFull(conn, pkt); err != nil {
			return
		}
		telTCPQueries.Inc()
		if query, err := dnsmsg.Unpack(pkt); err == nil &&
			!query.Header.Response && len(query.Questions) == 1 &&
			query.Questions[0].Type == dnsmsg.TypeAXFR {
			s.countQuery()
			if !s.serveAXFR(conn, query) {
				return
			}
			continue
		}
		resp, _ := s.respond(pkt)
		if resp == nil {
			return
		}
		if !writeTCPFrame(conn, resp, s.logf) {
			return
		}
	}
}

// writeTCPFrame packs and writes one length-prefixed message, reusing a
// pooled wire buffer for the whole frame (AppendPack keeps compression
// offsets relative to the message, so packing after the 2-byte prefix is
// safe).
func writeTCPFrame(conn net.Conn, m *dnsmsg.Message, logf func(string, ...any)) bool {
	bufp := dnsmsg.GetPacketBuf()
	defer dnsmsg.PutPacketBuf(bufp)
	frame, err := m.AppendPack(append((*bufp)[:0], 0, 0))
	if err != nil {
		logf("dnsserver: tcp pack: %v", err)
		return false
	}
	n := len(frame) - 2
	if n > 0xFFFF {
		return false
	}
	frame[0], frame[1] = byte(n>>8), byte(n)
	_, err = conn.Write(frame)
	*bufp = frame[:0]
	return err == nil
}

// axfrChunk bounds the records per AXFR message so each frame stays well
// under the 64 KiB TCP limit.
const axfrChunk = 100

// serveAXFR streams a zone transfer (RFC 5936): the zone's records bracketed
// by its SOA, split over as many messages as needed. Zones outside our
// authority are refused.
func (s *Server) serveAXFR(conn net.Conn, query *dnsmsg.Message) bool {
	q := query.Questions[0]
	zone := s.store.Zone(q.Name)
	if zone == nil {
		resp := query.Reply()
		resp.Header.Authoritative = true
		resp.Header.RCode = dnsmsg.RCodeRefused
		countRCode(resp.Header.RCode)
		return writeTCPFrame(conn, resp, s.logf)
	}
	telAXFR.Inc()
	countRCode(dnsmsg.RCodeSuccess)
	records := zone.AllRecords()
	records = append(records, zone.SOARecord()) // closing SOA
	s.logf("dnsserver: AXFR %s (%d records)", q.Name, len(records))
	for off := 0; off < len(records); off += axfrChunk {
		end := off + axfrChunk
		if end > len(records) {
			end = len(records)
		}
		resp := query.Reply()
		resp.Header.Authoritative = true
		resp.Answers = records[off:end]
		if !writeTCPFrame(conn, resp, s.logf) {
			return false
		}
	}
	return true
}

// respond parses a wire query and produces the wire response message plus
// the UDP payload limit the client advertised (EDNS0, else 512). A nil
// message means the packet was unparseable enough that no response should
// be sent (e.g. it was itself a response).
func (s *Server) respond(pkt []byte) (*dnsmsg.Message, int) {
	query, err := dnsmsg.Unpack(pkt)
	if err != nil {
		telMalformed.Inc()
		// Can't mirror an ID we couldn't parse; best effort FORMERR if we at
		// least have a header.
		if len(pkt) >= 2 {
			countRCode(dnsmsg.RCodeFormatError)
			return &dnsmsg.Message{Header: dnsmsg.Header{
				ID:       uint16(pkt[0])<<8 | uint16(pkt[1]),
				Response: true,
				RCode:    dnsmsg.RCodeFormatError,
			}}, maxUDPPayload
		}
		return nil, 0
	}
	if query.Header.Response {
		return nil, 0
	}
	limit := maxUDPPayload
	if size, ok := query.EDNS0(); ok {
		limit = int(size)
		if limit > maxEDNSPayload {
			limit = maxEDNSPayload
		}
		// Strip the OPT record so zone handling never sees it.
		kept := query.Additional[:0]
		for _, r := range query.Additional {
			if r.Type != dnsmsg.TypeOPT {
				kept = append(kept, r)
			}
		}
		query.Additional = kept
	}
	s.countQuery()
	resp := s.store.HandleQuery(query)
	countRCode(resp.Header.RCode)
	if limit > maxUDPPayload {
		// Echo EDNS0 with our own limit, per RFC 6891.
		resp.SetEDNS0(uint16(maxEDNSPayload))
	}
	if len(resp.Questions) > 0 {
		s.logf("dnsserver: %s %s -> %s (%d answers)",
			resp.Questions[0].Name, resp.Questions[0].Type, resp.Header.RCode, len(resp.Answers))
	}
	return resp, limit
}

// Run serves until ctx is cancelled, then closes the server. It is a
// convenience for command-line front ends.
func (s *Server) Run(ctx context.Context) error {
	addr, err := s.Start()
	if err != nil {
		return err
	}
	log.Printf("dnsserver: listening on udp+tcp %s (%d zones)", addr, s.store.ZoneCount())
	<-ctx.Done()
	return s.Close()
}
