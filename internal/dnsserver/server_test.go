package dnsserver

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"depscope/internal/dnsmsg"
	"depscope/internal/dnszone"
	"depscope/internal/resolver"
)

// resolverAXFR adapts resolver.AXFR for the tests here.
func resolverAXFR(t *testing.T, addr, zone string) ([]dnsmsg.Record, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return resolver.AXFR(ctx, addr, zone)
}

func testStore() *dnszone.Store {
	s := dnszone.NewStore()
	z := dnszone.NewZone("example.com.", dnsmsg.SOAData{
		MName: "ns1.provider.net.", RName: "hostmaster.example.com.", Serial: 1,
	})
	z.MustAdd(dnsmsg.Record{Name: "example.com.", Type: dnsmsg.TypeNS, TTL: 60, Target: "ns1.provider.net."})
	z.MustAdd(dnsmsg.Record{Name: "example.com.", Type: dnsmsg.TypeA, TTL: 60, IP: []byte{192, 0, 2, 1}})
	for i := 0; i < 40; i++ {
		z.MustAdd(dnsmsg.Record{
			Name: fmt.Sprintf("big.example.com."),
			Type: dnsmsg.TypeTXT, TTL: 60,
			TXT: []string{fmt.Sprintf("record-%02d-padding-padding-padding", i)},
		})
	}
	s.AddZone(z)
	return s
}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := New(testStore(), Config{})
	addr, err := srv.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func udpExchange(t *testing.T, addr string, q *dnsmsg.Message) *dnsmsg.Message {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnsmsg.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestUDPQuery(t *testing.T) {
	_, addr := startServer(t)
	resp := udpExchange(t, addr, dnsmsg.NewQuery(42, "example.com.", dnsmsg.TypeA))
	if resp.Header.ID != 42 || !resp.Header.Response || !resp.Header.Authoritative {
		t.Fatalf("header: %+v", resp.Header)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Type != dnsmsg.TypeA {
		t.Fatalf("answers: %+v", resp.Answers)
	}
}

func TestUDPNXDomain(t *testing.T) {
	_, addr := startServer(t)
	resp := udpExchange(t, addr, dnsmsg.NewQuery(1, "missing.example.com.", dnsmsg.TypeA))
	if resp.Header.RCode != dnsmsg.RCodeNameError {
		t.Fatalf("rcode = %v", resp.Header.RCode)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type != dnsmsg.TypeSOA {
		t.Fatalf("authority: %+v", resp.Authority)
	}
}

func TestUDPTruncationAndTCPFallback(t *testing.T) {
	_, addr := startServer(t)
	// The big TXT RRset exceeds 512 bytes: UDP must truncate.
	resp := udpExchange(t, addr, dnsmsg.NewQuery(7, "big.example.com.", dnsmsg.TypeTXT))
	if !resp.Header.Truncated {
		t.Fatalf("expected TC bit, got %+v with %d answers", resp.Header, len(resp.Answers))
	}
	if len(resp.Answers) != 0 {
		t.Fatalf("truncated response should have empty answer section")
	}

	// Same query over TCP must return the full RRset.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	wire, _ := dnsmsg.NewQuery(7, "big.example.com.", dnsmsg.TypeTXT).Pack()
	frame := append([]byte{byte(len(wire) >> 8), byte(len(wire))}, wire...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, 2)
	if _, err := readFull(conn, hdr); err != nil {
		t.Fatal(err)
	}
	n := int(hdr[0])<<8 | int(hdr[1])
	body := make([]byte, n)
	if _, err := readFull(conn, body); err != nil {
		t.Fatal(err)
	}
	full, err := dnsmsg.Unpack(body)
	if err != nil {
		t.Fatal(err)
	}
	if full.Header.Truncated || len(full.Answers) != 40 {
		t.Fatalf("tcp response: tc=%v answers=%d", full.Header.Truncated, len(full.Answers))
	}
}

func readFull(conn net.Conn, b []byte) (int, error) {
	total := 0
	for total < len(b) {
		n, err := conn.Read(b[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func TestTCPPipelining(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	for i := 0; i < 5; i++ {
		wire, _ := dnsmsg.NewQuery(uint16(i), "example.com.", dnsmsg.TypeNS).Pack()
		frame := append([]byte{byte(len(wire) >> 8), byte(len(wire))}, wire...)
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		hdr := make([]byte, 2)
		if _, err := readFull(conn, hdr); err != nil {
			t.Fatal(err)
		}
		body := make([]byte, int(hdr[0])<<8|int(hdr[1]))
		if _, err := readFull(conn, body); err != nil {
			t.Fatal(err)
		}
		resp, err := dnsmsg.Unpack(body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.ID != uint16(i) {
			t.Fatalf("query %d: response ID %d", i, resp.Header.ID)
		}
	}
}

func TestMalformedPacketGetsFormErr(t *testing.T) {
	_, addr := startServer(t)
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	// Valid-looking header with QDCOUNT=1 but no question bytes.
	pkt := make([]byte, 12)
	pkt[0], pkt[1] = 0xAB, 0xCD
	pkt[5] = 1
	if _, err := conn.Write(pkt); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dnsmsg.Unpack(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnsmsg.RCodeFormatError || resp.Header.ID != 0xABCD {
		t.Fatalf("got %+v", resp.Header)
	}
}

func TestResponsePacketsIgnored(t *testing.T) {
	srv, addr := startServer(t)
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	q := dnsmsg.NewQuery(9, "example.com.", dnsmsg.TypeA)
	q.Header.Response = true
	wire, _ := q.Pack()
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 512)
	if n, err := conn.Read(buf); err == nil {
		t.Fatalf("server replied to a response packet (%d bytes)", n)
	}
	if srv.Queries() != 0 {
		t.Errorf("queries counted for response packet: %d", srv.Queries())
	}
}

func TestConcurrentUDPClients(t *testing.T) {
	srv, addr := startServer(t)
	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id uint16) {
			defer wg.Done()
			conn, err := net.Dial("udp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(3 * time.Second))
			for i := 0; i < 20; i++ {
				wire, _ := dnsmsg.NewQuery(id, "example.com.", dnsmsg.TypeNS).Pack()
				if _, err := conn.Write(wire); err != nil {
					errs <- err
					return
				}
				buf := make([]byte, 1024)
				n, err := conn.Read(buf)
				if err != nil {
					errs <- err
					return
				}
				resp, err := dnsmsg.Unpack(buf[:n])
				if err != nil {
					errs <- err
					return
				}
				if resp.Header.ID != id {
					errs <- fmt.Errorf("client %d got ID %d", id, resp.Header.ID)
					return
				}
			}
		}(uint16(c))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := srv.Queries(); got != clients*20 {
		t.Errorf("served %d queries, want %d", got, clients*20)
	}
}

func TestCloseIdempotentAndRunCancel(t *testing.T) {
	srv := New(testStore(), Config{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestEDNS0AvoidsTruncation(t *testing.T) {
	_, addr := startServer(t)
	q := dnsmsg.NewQuery(9, "big.example.com.", dnsmsg.TypeTXT)
	q.SetEDNS0(4096)
	resp := udpExchange(t, addr, q)
	if resp.Header.Truncated {
		t.Fatal("EDNS0 query still truncated")
	}
	if len(resp.Answers) != 40 {
		t.Fatalf("got %d answers over UDP with EDNS0, want 40", len(resp.Answers))
	}
	// The server echoes an OPT record with its own limit.
	if size, ok := resp.EDNS0(); !ok || size != 4096 {
		t.Fatalf("response EDNS0 = %d, %v", size, ok)
	}
}

func TestAXFRTransfer(t *testing.T) {
	_, addr := startServer(t)
	records, err := resolverAXFR(t, addr, "example.com.")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 4 {
		t.Fatalf("transfer too small: %d records", len(records))
	}
	if records[0].Type != dnsmsg.TypeSOA || records[len(records)-1].Type != dnsmsg.TypeSOA {
		t.Fatalf("transfer not SOA-bracketed: first %v last %v",
			records[0].Type, records[len(records)-1].Type)
	}
	// All 40 big TXT records plus NS and A must arrive.
	txt := 0
	for _, r := range records {
		if r.Type == dnsmsg.TypeTXT {
			txt++
		}
	}
	if txt != 40 {
		t.Fatalf("TXT records transferred = %d, want 40", txt)
	}
}

func TestAXFRUnknownZoneRefused(t *testing.T) {
	_, addr := startServer(t)
	if _, err := resolverAXFR(t, addr, "not-ours.test."); err == nil {
		t.Fatal("AXFR of foreign zone succeeded")
	}
}
