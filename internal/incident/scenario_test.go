package incident

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"depscope/internal/core"
)

// testGraph builds a hand-made graph exercising every selector: DNS leaf
// providers under two entities, a CDN depending on DNS, private infra.
func testGraph() *core.Graph {
	sites := []*core.Site{
		{Name: "s1", Rank: 1, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"dynect.net"}},
		}},
		{Name: "s2", Rank: 2, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassMultiThird, Providers: []string{"dynect.net", "awsdns.net"}},
			core.CDN: {Class: core.ClassSingleThird, Providers: []string{"fastly.net"}},
		}},
		{Name: "s3", Rank: 3, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"awsdns.net"}},
			core.CA:  {Class: core.ClassSingleThird, Providers: []string{"digicert.com"}},
		}},
		{Name: "s4", Rank: 4,
			Deps: map[core.Service]core.Dep{
				core.DNS: {Class: core.ClassPrivate},
			},
			PrivateInfra: map[core.Service][]string{
				core.CDN: {"cdn.s4.com"},
			}},
	}
	providers := []*core.Provider{
		{Name: "fastly.net", Service: core.CDN, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"dynect.net"}},
		}},
		{Name: "cdn.s4.com", Service: core.CDN, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"dynect.net"}},
		}},
		{Name: "digicert.com", Service: core.CA, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"awsdns.net"}},
		}},
	}
	return core.NewGraph(sites, providers)
}

func TestParseScenarioRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"unknown field", `{"name":"x","tragets":{"providers":["a"]}}`, "unknown field"},
		{"no selector", `{"name":"x","targets":{}}`, "select nothing"},
		{"bad severity", `{"name":"x","severity":1.5,"targets":{"providers":["a"]}}`, "out of range"},
		{"bad snapshot", `{"name":"x","snapshot":"2019","targets":{"providers":["a"]}}`, "unknown snapshot"},
		{"bad via", `{"name":"x","via":["smtp"],"targets":{"providers":["a"]}}`, "unknown service"},
		{"bad service", `{"name":"x","targets":{"service":"smtp"}}`, "unknown service"},
		{"topk without service", `{"name":"x","targets":{"top_k":3}}`, "top_k needs top_k_service"},
		{"negative topk", `{"name":"x","targets":{"top_k":-1,"top_k_service":"dns"}}`, "must be positive"},
		{"empty stage", `{"name":"x","stages":[{"name":"w1","targets":{}}]}`, "stage 1"},
	}
	for _, tc := range cases {
		_, err := ParseScenario(strings.NewReader(tc.doc))
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseScenarioRoundTrip(t *testing.T) {
	doc := `{
		"name": "custom",
		"snapshot": "2016",
		"severity": 0.5,
		"joint_failures": true,
		"via": ["dns", "cdn"],
		"stages": [
			{"name": "w1", "targets": {"providers": ["dynect.net"]}},
			{"name": "w2", "targets": {"entity": "awsdns", "top_k": 1, "top_k_service": "cdn"}}
		]
	}`
	sc, err := ParseScenario(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "custom" || len(sc.Stages) != 2 || !sc.JointFailures {
		t.Fatalf("parsed scenario mismatch: %+v", sc)
	}
	opts, err := sc.traversal()
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.ViaProviders) != 2 {
		t.Fatalf("traversal = %+v", opts)
	}
}

func TestResolveTargets(t *testing.T) {
	g := testGraph()
	opts := core.AllIndirect()

	got, err := ResolveTargets(g, Targets{Providers: []string{"dynect.net"}}, opts)
	if err != nil || len(got) != 1 || got[0] != "dynect.net" {
		t.Fatalf("providers: %v, %v", got, err)
	}
	if _, err := ResolveTargets(g, Targets{Providers: []string{"nosuch.example"}}, opts); err == nil {
		t.Fatal("unknown provider accepted")
	}

	// Entity grouping: the SLD alone selects the full identity.
	got, err = ResolveTargets(g, Targets{Entity: "dynect"}, opts)
	if err != nil || len(got) != 1 || got[0] != "dynect.net" {
		t.Fatalf("entity sld: %v, %v", got, err)
	}
	got, err = ResolveTargets(g, Targets{Entity: "AWSDNS.NET"}, opts)
	if err != nil || len(got) != 1 || got[0] != "awsdns.net" {
		t.Fatalf("entity fqdn: %v, %v", got, err)
	}
	if _, err := ResolveTargets(g, Targets{Entity: "cloudflare"}, opts); err == nil {
		t.Fatal("unmatched entity accepted")
	}

	// Service blackout: third-party CDNs only, private infra excluded.
	got, err = ResolveTargets(g, Targets{Service: "cdn"}, opts)
	if err != nil || len(got) != 1 || got[0] != "fastly.net" {
		t.Fatalf("service blackout: %v, %v", got, err)
	}

	// Top-K by concentration under the scenario traversal.
	got, err = ResolveTargets(g, Targets{TopK: 1, TopKService: "dns"}, opts)
	if err != nil || len(got) != 1 || got[0] != "dynect.net" {
		t.Fatalf("top-k: %v, %v", got, err)
	}

	// Selectors union.
	got, err = ResolveTargets(g, Targets{Providers: []string{"digicert.com"}, Entity: "dynect"}, opts)
	if err != nil || len(got) != 2 {
		t.Fatalf("union: %v, %v", got, err)
	}
}

func TestSimulateStagedAndValidation(t *testing.T) {
	g := testGraph()
	rep, err := Simulate(context.Background(), g, &Scenario{
		Name:    "one",
		Targets: Targets{Providers: []string{"dynect.net"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Final()
	// dynect.net down: s1 (direct critical), s2 degraded DNS but down via
	// fastly (critical CDN on dyn), s4 down via its private CDN's hidden
	// dependency. s3 untouched.
	if f.Down != 3 || f.Unaffected != 1 {
		t.Fatalf("final = %+v", f)
	}
	if rep.Validation == nil || !rep.Validation.Match {
		t.Fatalf("validation missing or failed: %+v", rep.Validation)
	}
	if f.DirectDown != 2 || f.CollateralDown != 1 {
		t.Fatalf("direct/collateral = %d/%d, want 2/1", f.DirectDown, f.CollateralDown)
	}
	hasCascaded := false
	for _, p := range f.CascadedProviders {
		if p == "fastly.net" {
			hasCascaded = true
		}
	}
	if !hasCascaded {
		t.Fatalf("cascaded providers = %v, want fastly.net", f.CascadedProviders)
	}

	// Staged: the second wave only adds victims.
	rep, err = Simulate(context.Background(), g, &Scenario{
		Name: "staged",
		Stages: []Stage{
			{Name: "w1", Targets: Targets{Providers: []string{"dynect.net"}}},
			{Name: "w2", Targets: Targets{Entity: "awsdns"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) != 2 {
		t.Fatalf("stages = %d", len(rep.Stages))
	}
	if rep.Stages[0].Down != 3 || rep.Stages[1].Down != 4 {
		t.Fatalf("stage downs = %d, %d; want 3, 4", rep.Stages[0].Down, rep.Stages[1].Down)
	}
	if rep.Stages[1].NewlyDown != 1 {
		t.Fatalf("stage 2 newly down = %d, want 1", rep.Stages[1].NewlyDown)
	}
	if rep.Validation != nil {
		t.Fatal("multi-target scenario must not carry single-provider validation")
	}

	// Text rendering smoke check: every headline number appears.
	var b strings.Builder
	rep.WriteText(&b)
	out := b.String()
	for _, want := range []string{"staged", "stage 1/2", "stage 2/2", "newly down"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestPresetsAreValid(t *testing.T) {
	names := PresetNames()
	if len(names) < 4 {
		t.Fatalf("suspiciously few presets: %v", names)
	}
	for _, name := range names {
		sc, ok := Preset(name)
		if !ok {
			t.Fatalf("preset %s vanished", name)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		if sc.Name != name {
			t.Errorf("preset %s carries name %q", name, sc.Name)
		}
	}
	if _, ok := Preset("nosuch"); ok {
		t.Fatal("unknown preset resolved")
	}
}

// bigGraph builds a synthetic graph large enough that a sweep over all of
// its providers takes real time, for the cancellation test.
func bigGraph(nSites int) *core.Graph {
	var sites []*core.Site
	var providers []*core.Provider
	nProv := 64
	for p := 0; p < nProv; p++ {
		name := fmt.Sprintf("dns%02d.example", p)
		if p%4 == 0 {
			providers = append(providers, &core.Provider{
				Name: fmt.Sprintf("cdn%02d.example", p), Service: core.CDN,
				Deps: map[core.Service]core.Dep{
					core.DNS: {Class: core.ClassSingleThird, Providers: []string{name}},
				},
			})
		}
	}
	for i := 0; i < nSites; i++ {
		s := &core.Site{Name: fmt.Sprintf("s%05d", i), Rank: i + 1, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{fmt.Sprintf("dns%02d.example", i%64)}},
		}}
		if i%3 == 0 {
			s.Deps[core.CDN] = core.Dep{Class: core.ClassSingleThird,
				Providers: []string{fmt.Sprintf("cdn%02d.example", (i%16)*4)}}
		}
		sites = append(sites, s)
	}
	return core.NewGraph(sites, providers)
}

// TestSweepCancellation aborts a sweep mid-flight. Run under -race (make
// verify does), it checks both the error contract and that concurrent
// abort does not race with in-flight simulations.
func TestSweepCancellation(t *testing.T) {
	g := bigGraph(4000)
	var scenarios []*Scenario
	for _, name := range g.ProviderNames() {
		for rep := 0; rep < 8; rep++ {
			scenarios = append(scenarios, &Scenario{
				Name:    fmt.Sprintf("%s#%d", name, rep),
				Targets: Targets{Providers: []string{name}},
			})
		}
	}

	// Pre-canceled context: the sweep must refuse to run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Sweep(ctx, g, scenarios, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled sweep: err = %v, want context.Canceled", err)
	}

	// Mid-flight abort: cancel concurrently with the running sweep. The
	// sweep either returns the cancellation error or — if the race is lost
	// on a fast machine — finishes; both are valid outcomes, and the -race
	// run (make verify) is what proves the abort path is data-race free.
	ctx, cancel = context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		reports, err := Sweep(ctx, g, scenarios, 4)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Errorf("mid-flight sweep: err = %v, want context.Canceled", err)
			}
			return
		}
		for i, r := range reports {
			if r == nil {
				t.Errorf("nil report %d on successful sweep", i)
				return
			}
		}
	}()
	cancel()
	<-done
}
