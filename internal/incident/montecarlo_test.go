package incident

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"depscope/internal/core"
)

func TestParseSweepRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"unknown field", `{"name":"x","scnearios":10}`, "unknown field"},
		{"bad scenarios", `{"name":"x","scenarios":-1}`, "out of range"},
		{"huge scenarios", `{"name":"x","scenarios":1000000}`, "out of range"},
		{"bad base prob", `{"name":"x","base_prob":1.5}`, "out of range"},
		{"bad severity", `{"name":"x","severity":2}`, "out of range"},
		{"bad snapshot", `{"name":"x","snapshot":"2019"}`, "unknown snapshot"},
		{"bad service", `{"name":"x","service":"smtp"}`, "unknown service"},
		{"bad via", `{"name":"x","via":["smtp"]}`, "unknown service"},
		{"bad correlate", `{"name":"x","correlate":"region"}`, "unknown correlate"},
		{"empty targets", `{"name":"x","targets":{}}`, "select nothing"},
		{"bad recovery steps", `{"name":"x","recovery":{"steps":100}}`, "out of range"},
		{"bad recovery mean", `{"name":"x","recovery":{"mean_minutes":-5}}`, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSweep(strings.NewReader(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestSweepPresetsAreValid(t *testing.T) {
	names := SweepPresetNames()
	if len(names) == 0 {
		t.Fatal("no sweep presets")
	}
	for _, name := range names {
		sp, ok := SweepPreset(name)
		if !ok {
			t.Fatalf("preset %q listed but not retrievable", name)
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
		if sp.Name != name {
			t.Fatalf("preset %q has name %q", name, sp.Name)
		}
	}
}

// TestSweepDeterministicAcrossWorkers pins the seeding contract: the same
// spec produces byte-identical reports regardless of worker count, and a
// different seed produces a different damage sequence.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	g := testGraph()
	spec := func() *SweepSpec {
		return &SweepSpec{Name: "det", Scenarios: 400, Seed: 7, BaseProb: 0.3}
	}
	var reports [][]byte
	for _, workers := range []int{1, 4, 13} {
		rep, err := MonteCarlo(context.Background(), g, spec(), workers)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, b)
		var text bytes.Buffer
		rep.WriteText(&text)
		if text.Len() == 0 {
			t.Fatal("empty text render")
		}
	}
	for i := 1; i < len(reports); i++ {
		if !bytes.Equal(reports[0], reports[i]) {
			t.Fatalf("reports differ across worker counts:\n%s\n%s", reports[0], reports[i])
		}
	}
	other := spec()
	other.Seed = 8
	rep, err := MonteCarlo(context.Background(), g, other, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(rep)
	if bytes.Equal(reports[0], b) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestSweepFixedTargetMatchesSimulate is the bridge property: a sweep with
// fixed targets and one scenario at full severity must reproduce the
// deterministic engine's outcome exactly.
func TestSweepFixedTargetMatchesSimulate(t *testing.T) {
	g := testGraph()
	for _, targets := range []Targets{
		{Providers: []string{"dynect.net"}},
		{Service: "dns"},
		{Entity: "dynect"},
	} {
		sc := &Scenario{Name: "ref", Targets: targets}
		ref, err := Simulate(context.Background(), g, sc)
		if err != nil {
			t.Fatal(err)
		}
		final := ref.Final()

		tg := targets
		sp := &SweepSpec{Name: "mc", Scenarios: 1, Targets: &tg}
		rep, err := MonteCarlo(context.Background(), g, sp, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Down.Max != final.Down || rep.Down.P50 != final.Down {
			t.Fatalf("targets %+v: sweep down %+v, simulate down %d", targets, rep.Down, final.Down)
		}
		if rep.Degraded.Max != final.Degraded {
			t.Fatalf("targets %+v: sweep degraded %+v, simulate degraded %d", targets, rep.Degraded, final.Degraded)
		}
		if rep.FailuresPerScenario.Max != len(rep.FixedTargets) {
			t.Fatalf("targets %+v: %d failures but %d fixed targets",
				targets, rep.FailuresPerScenario.Max, len(rep.FixedTargets))
		}
	}
}

// TestSweepCorrelatedEntities pins the correlation model: identities of one
// registrable domain form one group and always fail together.
func TestSweepCorrelatedEntities(t *testing.T) {
	sites := []*core.Site{
		{Name: "s1", Rank: 1, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"ns1.dynect.net"}},
		}},
		{Name: "s2", Rank: 2, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"ns2.dynect.net"}},
		}},
		{Name: "s3", Rank: 3, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"other.net"}},
		}},
	}
	g := core.NewGraph(sites, nil)
	sp := &SweepSpec{Name: "corr", Scenarios: 500, Seed: 3, BaseProb: 0.4, Correlate: "entity"}
	rep, err := MonteCarlo(context.Background(), g, sp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PoolSize != 3 || rep.Groups != 2 {
		t.Fatalf("pool %d groups %d, want pool 3 in 2 entity groups", rep.PoolSize, rep.Groups)
	}
	var failures = map[string]int{}
	for _, a := range rep.Attribution {
		failures[a.Name] = a.Failures
	}
	if failures["ns1.dynect.net"] == 0 || failures["ns1.dynect.net"] != failures["ns2.dynect.net"] {
		t.Fatalf("correlated identities failed independently: %v", failures)
	}
}

// TestSweepRecoveryCurves checks the time-to-recover layer: the outage level
// never grows as providers recover, and the curve reaches the requested
// number of checkpoints.
func TestSweepRecoveryCurves(t *testing.T) {
	g := testGraph()
	sp := &SweepSpec{
		Name:      "rec",
		Scenarios: 300,
		Seed:      5,
		Targets:   &Targets{Service: "dns"},
		Recovery:  &RecoverySpec{Steps: 6, MeanMinutes: 60},
	}
	rep, err := MonteCarlo(context.Background(), g, sp, 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := rep.Recovery
	if rec == nil || len(rec.Steps) != 6 {
		t.Fatalf("recovery = %+v, want 6 steps", rec)
	}
	if rec.HorizonMinutes != 180 {
		t.Fatalf("horizon = %v, want 3x mean = 180", rec.HorizonMinutes)
	}
	prev := rep.Down.Mean
	for i, st := range rec.Steps {
		if st.MeanDown > prev+1e-9 {
			t.Fatalf("step %d mean down %v grew past %v", i, st.MeanDown, prev)
		}
		prev = st.MeanDown
	}
	if rec.TimeToRecover.Max < rec.TimeToRecover.P50 {
		t.Fatalf("ttr summary inconsistent: %+v", rec.TimeToRecover)
	}
	if rec.TimeToRecover.Max == 0 {
		t.Fatal("no scenario recorded a recovery time")
	}
}

// TestSweepCancellation mirrors the deterministic engine's contract: a
// cancelled context aborts the sweep with the context error.
func TestSweepMonteCarloCancellation(t *testing.T) {
	g := testGraph()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MonteCarlo(ctx, g, &SweepSpec{Name: "c", Scenarios: 5000}, 2)
	if err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
}

func TestSummarizePercentiles(t *testing.T) {
	values := make([]int, 100)
	for i := range values {
		values[i] = i + 1 // 1..100
	}
	d := summarize(values)
	if d.P50 != 50 || d.P90 != 90 || d.P99 != 99 || d.Max != 100 || d.Mean != 50.5 {
		t.Fatalf("summary = %+v", d)
	}
	if z := summarize(nil); z != (DistSummary{}) {
		t.Fatalf("empty summary = %+v", z)
	}
}
