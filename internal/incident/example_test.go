// Doc examples for the incident package's Monte-Carlo sweep API. They run
// under go test (and go vet's example checks), so the printed output is a
// living contract.
package incident_test

import (
	"context"
	"fmt"
	"strings"

	"depscope/internal/core"
	"depscope/internal/incident"
)

// exampleGraph rebuilds the paper's §2 chain in miniature: one site on Dyn
// directly, one behind a CDN that hides a Dyn dependency, one independent.
func exampleGraph() *core.Graph {
	sites := []*core.Site{
		{Name: "twitter.com", Rank: 1, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"dynect.net"}},
		}},
		{Name: "pinterest.com", Rank: 2, Deps: map[core.Service]core.Dep{
			core.CDN: {Class: core.ClassSingleThird, Providers: []string{"fastly.net"}},
		}},
		{Name: "example.org", Rank: 3, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"awsdns.net"}},
		}},
	}
	providers := []*core.Provider{
		{Name: "fastly.net", Service: core.CDN, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"dynect.net"}},
		}},
	}
	return core.NewGraph(sites, providers)
}

// ExampleMonteCarlo pins a sweep to a fixed failure set: with targets set,
// every scenario fails exactly that selection, so the distribution collapses
// to the deterministic engine's answer.
func ExampleMonteCarlo() {
	g := exampleGraph()
	spec, err := incident.ParseSweep(strings.NewReader(`{
		"name": "dyn-fixed",
		"scenarios": 1,
		"targets": {"providers": ["dynect.net"]}
	}`))
	if err != nil {
		panic(err)
	}
	rep, err := incident.MonteCarlo(context.Background(), g, spec, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d of %d sites down (p50=%d, max=%d)\n",
		rep.Down.Max, rep.TotalSites, rep.Down.P50, rep.Down.Max)
	// Output: 2 of 3 sites down (p50=2, max=2)
}

// ExampleMonteCarlo_randomized samples C_p-weighted failures: the pool is
// ranked by concentration and a seed makes the whole distribution
// reproducible — the same spec always yields the same report.
func ExampleMonteCarlo_randomized() {
	g := exampleGraph()
	spec := &incident.SweepSpec{
		Name:      "weighted",
		Scenarios: 500,
		Seed:      42,
		BaseProb:  0.2,
	}
	rep, err := incident.MonteCarlo(context.Background(), g, spec, 2)
	if err != nil {
		panic(err)
	}
	again, _ := incident.MonteCarlo(context.Background(), g, spec, 7)
	fmt.Printf("pool=%d scenarios=%d reproducible=%v\n",
		rep.PoolSize, rep.Scenarios, rep.Down == again.Down)
	// Output: pool=3 scenarios=500 reproducible=true
}

// ExampleSweepPreset lists the built-in Monte-Carlo presets the -sweep flag
// and the /v1/sweep endpoint accept by name.
func ExampleSweepPreset() {
	for _, name := range incident.SweepPresetNames() {
		sp, _ := incident.SweepPreset(name)
		fmt.Printf("%s: %d scenarios\n", name, sp.Scenarios)
	}
	// Output:
	// mc-baseline: 2000 scenarios
	// mc-dns-deep: 2000 scenarios
	// mc-dyn-recovery: 1000 scenarios
	// mc-entity-storm: 2000 scenarios
}
