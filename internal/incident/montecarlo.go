package incident

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"

	"depscope/internal/conc"
	"depscope/internal/core"
	"depscope/internal/telemetry"
)

// This file is the randomized half of the incident engine: instead of one
// worst-case scenario, a Monte-Carlo sweep samples thousands of correlated
// multi-provider failure draws and reports the *distribution* of damage —
// mean/P50/P90/P99/max sites down, per-provider attribution, and (optionally)
// time-to-recover curves. Failure probabilities are weighted by each
// provider's concentration C_p, so the sampler spends its draws where the
// paper says the risk lives; correlation groups model shared operating
// entities (one company, many provider identities) or whole-service storms.
//
// Determinism: scenario i draws from rand.New(rand.NewSource(mix(seed, i))),
// so the report is byte-identical for a given seed regardless of worker
// count or scheduling. The deterministic-seed tests pin this.

// Monte-Carlo sweep metrics, registered at package init alongside the
// deterministic engine's counters.
var (
	sweepRuns      = telemetry.Counter("sweep_runs_total", "Monte-Carlo incident sweeps completed")
	sweepScenarios = telemetry.Counter("sweep_scenarios_total", "randomized failure scenarios sampled across all sweeps")
	sweepCascades  = telemetry.Counter("sweep_cascades_total", "outage cascades evaluated by sweeps (scenarios plus recovery checkpoints)")
	sweepLastP99   = telemetry.Gauge("sweep_last_p99_down", "P99 sites-down of the most recent Monte-Carlo sweep")
	sweepLastMax   = telemetry.Gauge("sweep_last_max_down", "max sites-down of the most recent Monte-Carlo sweep")
)

// SweepSpec is the Monte-Carlo sweep specification, the JSON document
// `depscope -sweep file.json` and `POST depserver /v1/sweep` accept.
// docs/risk.md documents the format with worked examples.
type SweepSpec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Snapshot selects the measured graph ("2016", "2020", empty = 2020);
	// resolved by the caller, like Scenario.Snapshot.
	Snapshot string `json:"snapshot,omitempty"`
	// Scenarios is the number of randomized draws; 0 means 1000.
	Scenarios int `json:"scenarios,omitempty"`
	// Seed drives every draw; 0 means 1. Same seed, same report.
	Seed int64 `json:"seed,omitempty"`
	// Service restricts the failure pool to one provider service type
	// ("dns", "cdn" or "ca"); empty pools all three.
	Service string `json:"service,omitempty"`
	// TopN bounds the pool to the N highest-C_p providers per service;
	// 0 means 100, negative means no bound.
	TopN int `json:"top_n,omitempty"`
	// BaseProb scales failure probabilities: provider i fails with
	// p_i = BaseProb * C_i * poolSize / ΣC (capped at 0.95), so the expected
	// number of failures per scenario is BaseProb × poolSize. 0 means 0.02.
	BaseProb float64 `json:"base_prob,omitempty"`
	// Severity and JointFailures mirror Scenario's outage knobs.
	Severity      float64 `json:"severity,omitempty"`
	JointFailures bool    `json:"joint_failures,omitempty"`
	// Via is the C_p/I_p traversal filter, as in Scenario.
	Via []string `json:"via,omitempty"`
	// Correlate groups pool members that fail together: "entity" (same
	// registrable domain, the paper's TLD/SOA rule) or "service". A group
	// fires with probability 1-Π(1-p_i) and takes every member down.
	// Empty means independent failures.
	Correlate string `json:"correlate,omitempty"`
	// Targets, when set, fixes the failure set: every scenario fails exactly
	// this selection (probability 1) and the randomness drives only the
	// recovery draws. With scenarios=1 this reproduces the deterministic
	// engine's outcome exactly.
	Targets *Targets `json:"targets,omitempty"`
	// Recovery, when set, layers time-to-recover curves on every scenario.
	Recovery *RecoverySpec `json:"recovery,omitempty"`
}

// RecoverySpec configures time-to-recover sampling: each failed provider
// draws an exponential recovery time and the cascade is re-evaluated at
// Steps checkpoints across a 3×mean horizon.
type RecoverySpec struct {
	// Steps is the number of checkpoints; 0 means 8, max 64.
	Steps int `json:"steps,omitempty"`
	// MeanMinutes is the mean of the exponential recovery-time draw;
	// 0 means 120.
	MeanMinutes float64 `json:"mean_minutes,omitempty"`
}

// ParseSweep decodes and validates a sweep document. Unknown fields are
// rejected, like ParseScenario.
func ParseSweep(r io.Reader) (*SweepSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sp SweepSpec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("incident: parse sweep spec: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Validate checks the spec for structural errors before any simulation.
func (sp *SweepSpec) Validate() error {
	if sp.Scenarios < 0 || sp.Scenarios > 200000 {
		return fmt.Errorf("incident: sweep scenarios %d out of range [0,200000]", sp.Scenarios)
	}
	if sp.BaseProb < 0 || sp.BaseProb > 1 {
		return fmt.Errorf("incident: sweep base_prob %v out of range [0,1]", sp.BaseProb)
	}
	if sp.Severity < 0 || sp.Severity > 1 {
		return fmt.Errorf("incident: severity %v out of range [0,1]", sp.Severity)
	}
	switch sp.Snapshot {
	case "", "2016", "2020":
	default:
		return fmt.Errorf("incident: unknown snapshot %q (want 2016 or 2020)", sp.Snapshot)
	}
	if sp.Service != "" {
		if _, err := parseService(sp.Service); err != nil {
			return err
		}
	}
	for _, v := range sp.Via {
		if _, err := parseService(v); err != nil {
			return err
		}
	}
	switch sp.Correlate {
	case "", "entity", "service":
	default:
		return fmt.Errorf("incident: unknown correlate %q (want entity or service)", sp.Correlate)
	}
	if sp.Targets != nil {
		if err := sp.Targets.validate(); err != nil {
			return err
		}
	}
	if sp.Recovery != nil {
		if sp.Recovery.Steps < 0 || sp.Recovery.Steps > 64 {
			return fmt.Errorf("incident: recovery steps %d out of range [0,64]", sp.Recovery.Steps)
		}
		if sp.Recovery.MeanMinutes < 0 {
			return fmt.Errorf("incident: recovery mean_minutes %v must not be negative", sp.Recovery.MeanMinutes)
		}
	}
	return nil
}

// Normalized accessors, mirroring Scenario's severity().

func (sp *SweepSpec) scenarios() int {
	if sp.Scenarios == 0 {
		return 1000
	}
	return sp.Scenarios
}

func (sp *SweepSpec) seed() int64 {
	if sp.Seed == 0 {
		return 1
	}
	return sp.Seed
}

func (sp *SweepSpec) topN() int {
	if sp.TopN == 0 {
		return 100
	}
	if sp.TopN < 0 {
		return 0 // TopProviders: n <= 0 returns all
	}
	return sp.TopN
}

func (sp *SweepSpec) baseProb() float64 {
	if sp.BaseProb == 0 {
		return 0.02
	}
	return sp.BaseProb
}

func (sp *SweepSpec) severity() float64 {
	if sp.Severity == 0 {
		return 1
	}
	return sp.Severity
}

func (r *RecoverySpec) steps() int {
	if r.Steps == 0 {
		return 8
	}
	return r.Steps
}

func (r *RecoverySpec) meanMinutes() float64 {
	if r.MeanMinutes == 0 {
		return 120
	}
	return r.MeanMinutes
}

// DistSummary summarizes one integer-valued per-scenario distribution with
// nearest-rank percentiles.
type DistSummary struct {
	Mean float64 `json:"mean"`
	P50  int     `json:"p50"`
	P90  int     `json:"p90"`
	P99  int     `json:"p99"`
	Max  int     `json:"max"`
}

// SweepAttribution is one provider's share of the sampled damage.
type SweepAttribution struct {
	Name string `json:"name"`
	// Failures counts the scenarios this provider failed in; FailRate is
	// Failures / Scenarios.
	Failures int     `json:"failures"`
	FailRate float64 `json:"fail_rate"`
	// MeanDown and MaxDown summarize total sites-down over the scenarios
	// this provider failed in (co-failures included — attribution, not
	// isolation).
	MeanDown float64 `json:"mean_down"`
	MaxDown  int     `json:"max_down"`
}

// RecoveryStep is the outage level at one checkpoint of the recovery
// horizon.
type RecoveryStep struct {
	Minutes  float64 `json:"minutes"`
	MeanDown float64 `json:"mean_down"`
	P99Down  int     `json:"p99_down"`
}

// RecoveryReport is the time-to-recover layer of a sweep report.
type RecoveryReport struct {
	MeanMinutes    float64        `json:"mean_minutes"`
	HorizonMinutes float64        `json:"horizon_minutes"`
	Steps          []RecoveryStep `json:"steps"`
	// TimeToRecover summarizes, in whole minutes, when each scenario's last
	// failed provider recovered.
	TimeToRecover DistSummary `json:"time_to_recover_minutes"`
}

// SweepReport is the aggregated outcome of one Monte-Carlo sweep.
type SweepReport struct {
	Name          string   `json:"name"`
	Description   string   `json:"description,omitempty"`
	Snapshot      string   `json:"snapshot,omitempty"`
	Scenarios     int      `json:"scenarios"`
	Seed          int64    `json:"seed"`
	PoolSize      int      `json:"pool_size"`
	Groups        int      `json:"groups"`
	Correlate     string   `json:"correlate,omitempty"`
	BaseProb      float64  `json:"base_prob"`
	Severity      float64  `json:"severity"`
	JointFailures bool     `json:"joint_failures,omitempty"`
	Via           []string `json:"via,omitempty"`
	// FixedTargets echoes the resolved fixed failure set when the spec
	// pinned one.
	FixedTargets []string `json:"fixed_targets,omitempty"`
	TotalSites   int      `json:"total_sites"`

	Down                 DistSummary        `json:"down"`
	Degraded             DistSummary        `json:"degraded"`
	FailuresPerScenario  DistSummary        `json:"failures_per_scenario"`
	ZeroFailureScenarios int                `json:"zero_failure_scenarios"`
	Attribution          []SweepAttribution `json:"attribution,omitempty"`
	Recovery             *RecoveryReport    `json:"recovery,omitempty"`
}

// mcCandidate is one pool member: a provider that may fail, with its draw
// probability and the key its correlation group hangs off.
type mcCandidate struct {
	name string
	id   int32
	conc int
	prob float64
}

// mcGroup is one correlated failure unit: the group fires with prob and
// every member fails together. Independent candidates are singleton groups.
type mcGroup struct {
	prob    float64
	members []int // indices into the pool
}

// mix is a splitmix64-style scramble of (seed, index) into one per-scenario
// source seed, so scenario i's stream is independent of every other and of
// worker scheduling.
func mix(seed, i int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(i)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// buildPool assembles the failure pool: fixed targets when the spec pins
// them, otherwise the top-N providers per in-scope service, with failure
// probability proportional to concentration.
func buildPool(g *core.Graph, sp *SweepSpec, opts core.TraversalOpts, sim *core.OutageSim) ([]mcCandidate, []string, error) {
	if sp.Targets != nil {
		names, err := ResolveTargets(g, *sp.Targets, opts)
		if err != nil {
			return nil, nil, err
		}
		pool := make([]mcCandidate, 0, len(names))
		for _, n := range names {
			if id, ok := sim.ProviderID(n); ok {
				pool = append(pool, mcCandidate{name: n, id: id, prob: 1})
			}
		}
		return pool, names, nil
	}

	services := core.Services
	if sp.Service != "" {
		svc, err := parseService(sp.Service)
		if err != nil {
			return nil, nil, err
		}
		services = []core.Service{svc}
	}
	byName := make(map[string]int) // name → pool index
	var pool []mcCandidate
	for _, svc := range services {
		for _, st := range g.TopProviders(svc, opts, false, sp.topN()) {
			if i, ok := byName[st.Name]; ok {
				if st.Concentration > pool[i].conc {
					pool[i].conc = st.Concentration
				}
				continue
			}
			id, ok := sim.ProviderID(st.Name)
			if !ok {
				continue
			}
			byName[st.Name] = len(pool)
			pool = append(pool, mcCandidate{name: st.Name, id: id, conc: st.Concentration})
		}
	}
	if len(pool) == 0 {
		return nil, nil, fmt.Errorf("incident: sweep pool is empty (no providers in scope)")
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].conc != pool[j].conc {
			return pool[i].conc > pool[j].conc
		}
		return pool[i].name < pool[j].name
	})
	sumC := 0
	for _, c := range pool {
		sumC += c.conc
	}
	base := sp.baseProb()
	for i := range pool {
		p := base
		if sumC > 0 {
			p = base * float64(pool[i].conc) * float64(len(pool)) / float64(sumC)
		}
		pool[i].prob = math.Min(p, 0.95)
	}
	return pool, nil, nil
}

// buildGroups partitions the pool into correlated failure units.
func buildGroups(g *core.Graph, sp *SweepSpec, pool []mcCandidate) []mcGroup {
	key := func(c mcCandidate) string {
		switch sp.Correlate {
		case "entity":
			return entityOf(c.name)
		case "service":
			if p, ok := g.Providers[c.name]; ok {
				return p.Service.String()
			}
			return c.name
		}
		return c.name // independent: every candidate its own group
	}
	byKey := make(map[string]int)
	var groups []mcGroup
	for i, c := range pool {
		k := key(c)
		gi, ok := byKey[k]
		if !ok {
			gi = len(groups)
			byKey[k] = gi
			groups = append(groups, mcGroup{prob: 1})
		}
		groups[gi].members = append(groups[gi].members, i)
		groups[gi].prob *= 1 - c.prob
	}
	for i := range groups {
		groups[i].prob = 1 - groups[i].prob // P(group fires) = 1-Π(1-p_i)
	}
	return groups
}

// summarize computes a DistSummary over per-scenario values (not mutated;
// percentiles use a sorted copy and the nearest-rank rule).
func summarize(values []int) DistSummary {
	if len(values) == 0 {
		return DistSummary{}
	}
	sorted := make([]int, len(values))
	copy(sorted, values)
	sort.Ints(sorted)
	sum := 0
	for _, v := range sorted {
		sum += v
	}
	rank := func(q float64) int {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	return DistSummary{
		Mean: float64(sum) / float64(len(sorted)),
		P50:  rank(0.50),
		P90:  rank(0.90),
		P99:  rank(0.99),
		Max:  sorted[len(sorted)-1],
	}
}

// mcChunk is one worker chunk's private accumulators, merged in chunk order
// after the fan-out so the report is independent of scheduling.
type mcChunk struct {
	failCount []int
	sumDown   []int
	maxDown   []int
	cascades  int
}

// MonteCarlo runs a seeded randomized failure sweep against g and aggregates
// the damage distribution. workers < 1 means GOMAXPROCS. The report is
// byte-identical for a given spec regardless of worker count.
func MonteCarlo(ctx context.Context, g *core.Graph, sp *SweepSpec, workers int) (*SweepReport, error) {
	defer telemetry.StartSpan("sweep.montecarlo").End()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	opts, err := viaTraversal(sp.Via)
	if err != nil {
		return nil, err
	}
	sim := g.OutageSim(opts)
	pool, fixed, err := buildPool(g, sp, opts, sim)
	if err != nil {
		return nil, err
	}
	groups := buildGroups(g, sp, pool)

	n := sp.scenarios()
	oo := core.OutageOpts{Severity: sp.severity(), JointFailures: sp.JointFailures}
	var (
		steps   int
		meanMin float64
		horizon float64
	)
	if sp.Recovery != nil {
		steps = sp.Recovery.steps()
		meanMin = sp.Recovery.meanMinutes()
		horizon = 3 * meanMin
	}

	// Per-scenario outputs, indexed by scenario so ordering never depends on
	// workers.
	downs := make([]int, n)
	degradeds := make([]int, n)
	nfails := make([]int, n)
	ttrMinutes := make([]int, n)
	var stepDowns [][]int // [step][scenario]
	for j := 0; j < steps; j++ {
		stepDowns = append(stepDowns, make([]int, n))
	}

	const chunkSize = 64
	nChunks := (n + chunkSize - 1) / chunkSize
	chunks := make([]mcChunk, nChunks)
	seed := sp.seed()

	err = conc.ForEach(ctx, nChunks, workers, conc.FailFast, func(ctx context.Context, ci int) error {
		acc := &chunks[ci]
		acc.failCount = make([]int, len(pool))
		acc.sumDown = make([]int, len(pool))
		acc.maxDown = make([]int, len(pool))
		var scratch core.SimScratch
		ids := make([]int32, 0, len(pool))
		failedIdx := make([]int, 0, len(pool))
		var recTimes []float64
		lo, hi := ci*chunkSize, (ci+1)*chunkSize
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(mix(seed, int64(i))))
			ids = ids[:0]
			failedIdx = failedIdx[:0]
			for _, grp := range groups {
				if rng.Float64() < grp.prob {
					for _, m := range grp.members {
						ids = append(ids, pool[m].id)
						failedIdx = append(failedIdx, m)
					}
				}
			}
			down, degraded := sim.RunCounts(ids, oo, &scratch)
			acc.cascades++
			downs[i] = down
			degradeds[i] = degraded
			nfails[i] = len(ids)
			for _, m := range failedIdx {
				acc.failCount[m]++
				acc.sumDown[m] += down
				if down > acc.maxDown[m] {
					acc.maxDown[m] = down
				}
			}

			if steps > 0 {
				// Draw a recovery time per failed provider, in pool order, so
				// the rng stream is scheduling-independent; then re-run the
				// cascade with only the still-down providers at each
				// checkpoint.
				recTimes = recTimes[:0]
				ttr := 0.0
				for range failedIdx {
					r := rng.ExpFloat64() * meanMin
					recTimes = append(recTimes, r)
					if r > ttr {
						ttr = r
					}
				}
				ttrMinutes[i] = int(math.Round(ttr))
				for j := 0; j < steps; j++ {
					t := horizon * float64(j+1) / float64(steps)
					stillDown := ids[:0:0]
					for k, m := range failedIdx {
						if recTimes[k] > t {
							stillDown = append(stillDown, pool[m].id)
						}
					}
					d, _ := sim.RunCounts(stillDown, oo, &scratch)
					acc.cascades++
					stepDowns[j][i] = d
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Merge chunk accumulators in chunk order.
	failCount := make([]int, len(pool))
	sumDown := make([]int, len(pool))
	maxDown := make([]int, len(pool))
	cascades := 0
	for _, acc := range chunks {
		cascades += acc.cascades
		for i := range pool {
			failCount[i] += acc.failCount[i]
			sumDown[i] += acc.sumDown[i]
			if acc.maxDown[i] > maxDown[i] {
				maxDown[i] = acc.maxDown[i]
			}
		}
	}

	rep := &SweepReport{
		Name:          sp.Name,
		Description:   sp.Description,
		Snapshot:      sp.Snapshot,
		Scenarios:     n,
		Seed:          seed,
		PoolSize:      len(pool),
		Groups:        len(groups),
		Correlate:     sp.Correlate,
		BaseProb:      sp.baseProb(),
		Severity:      sp.severity(),
		JointFailures: sp.JointFailures,
		Via:           sp.Via,
		FixedTargets:  fixed,
		TotalSites:    len(g.Sites),
		Down:          summarize(downs),
		Degraded:      summarize(degradeds),
	}
	rep.FailuresPerScenario = summarize(nfails)
	for _, f := range nfails {
		if f == 0 {
			rep.ZeroFailureScenarios++
		}
	}

	// Attribution: the providers that failed most often, with the damage
	// observed alongside them. Ties break by name for determinism.
	order := make([]int, 0, len(pool))
	for i := range pool {
		if failCount[i] > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if failCount[i] != failCount[j] {
			return failCount[i] > failCount[j]
		}
		if sumDown[i] != sumDown[j] {
			return sumDown[i] > sumDown[j]
		}
		return pool[i].name < pool[j].name
	})
	if len(order) > 15 {
		order = order[:15]
	}
	for _, i := range order {
		rep.Attribution = append(rep.Attribution, SweepAttribution{
			Name:     pool[i].name,
			Failures: failCount[i],
			FailRate: float64(failCount[i]) / float64(n),
			MeanDown: float64(sumDown[i]) / float64(failCount[i]),
			MaxDown:  maxDown[i],
		})
	}

	if steps > 0 {
		rec := &RecoveryReport{MeanMinutes: meanMin, HorizonMinutes: horizon}
		for j := 0; j < steps; j++ {
			s := summarize(stepDowns[j])
			rec.Steps = append(rec.Steps, RecoveryStep{
				Minutes:  horizon * float64(j+1) / float64(steps),
				MeanDown: s.Mean,
				P99Down:  s.P99,
			})
		}
		rec.TimeToRecover = summarize(ttrMinutes)
		rep.Recovery = rec
	}

	sweepRuns.Inc()
	sweepScenarios.Add(int64(n))
	sweepCascades.Add(int64(cascades))
	sweepLastP99.Set(int64(rep.Down.P99))
	sweepLastMax.Set(int64(rep.Down.Max))
	return rep, nil
}

// WriteText renders the sweep report for terminals — the backend of the
// depscope -sweep mode.
func (r *SweepReport) WriteText(w io.Writer) {
	title := r.Name
	if title == "" {
		title = "sweep"
	}
	fmt.Fprintf(w, "monte-carlo sweep: %s", title)
	if r.Snapshot != "" {
		fmt.Fprintf(w, " (snapshot %s)", r.Snapshot)
	}
	fmt.Fprintln(w)
	if r.Description != "" {
		fmt.Fprintf(w, "%s\n", r.Description)
	}
	fmt.Fprintf(w, "scenarios: %d  seed: %d  pool: %d providers", r.Scenarios, r.Seed, r.PoolSize)
	if r.Correlate != "" {
		fmt.Fprintf(w, " in %d %s groups", r.Groups, r.Correlate)
	}
	fmt.Fprintln(w)
	if len(r.FixedTargets) > 0 {
		fmt.Fprintf(w, "fixed targets: %s\n", strings.Join(r.FixedTargets, ", "))
	} else {
		fmt.Fprintf(w, "base failure probability: %.3f (C_p-weighted)\n", r.BaseProb)
	}
	if len(r.Via) > 0 {
		fmt.Fprintf(w, "via: %s\n", strings.Join(r.Via, ", "))
	}
	if r.Severity != 1 {
		fmt.Fprintf(w, "severity: %.2f\n", r.Severity)
	}
	if r.JointFailures {
		fmt.Fprintln(w, "joint failures: redundant arrangements exhaust when all providers fail")
	}
	fmt.Fprintln(w)

	dist := func(label string, d DistSummary) {
		fmt.Fprintf(w, "  %-22s mean %8.2f   p50 %6d   p90 %6d   p99 %6d   max %6d\n",
			label, d.Mean, d.P50, d.P90, d.P99, d.Max)
	}
	fmt.Fprintf(w, "impact distribution over %d sites:\n", r.TotalSites)
	dist("sites down", r.Down)
	dist("sites degraded", r.Degraded)
	dist("failures/scenario", r.FailuresPerScenario)
	fmt.Fprintf(w, "  %-22s %d of %d scenarios (%.1f%%)\n", "zero-failure draws",
		r.ZeroFailureScenarios, r.Scenarios, pctOf(r.ZeroFailureScenarios, r.Scenarios))

	if len(r.Attribution) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "attribution (scenarios failed in, sites down alongside):")
		fmt.Fprintf(w, "  %-28s %9s %9s %10s %8s\n", "provider", "failures", "rate", "mean down", "max")
		for _, a := range r.Attribution {
			fmt.Fprintf(w, "  %-28s %9d %8.1f%% %10.1f %8d\n",
				a.Name, a.Failures, 100*a.FailRate, a.MeanDown, a.MaxDown)
		}
	}

	if r.Recovery != nil {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "recovery (exponential, mean %.0f min, horizon %.0f min):\n",
			r.Recovery.MeanMinutes, r.Recovery.HorizonMinutes)
		fmt.Fprintf(w, "  %10s %12s %10s\n", "t (min)", "mean down", "p99 down")
		for _, st := range r.Recovery.Steps {
			fmt.Fprintf(w, "  %10.0f %12.2f %10d\n", st.Minutes, st.MeanDown, st.P99Down)
		}
		t := r.Recovery.TimeToRecover
		fmt.Fprintf(w, "  time to full recovery: mean %.1f min   p50 %d   p99 %d   max %d\n",
			t.Mean, t.P50, t.P99, t.Max)
	}
}
