package incident

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"depscope/internal/core"
)

// Report is the aggregated outcome of one scenario, JSON-serializable for
// the depserver /incident endpoint and renderable as text for depscope.
type Report struct {
	Scenario      string   `json:"scenario"`
	Description   string   `json:"description,omitempty"`
	Snapshot      string   `json:"snapshot,omitempty"`
	Severity      float64  `json:"severity"`
	JointFailures bool     `json:"joint_failures,omitempty"`
	Via           []string `json:"via,omitempty"`
	TotalSites    int      `json:"total_sites"`
	// Stages holds one entry per simulated stage (a single entry for an
	// unstaged scenario); the last entry is the final state.
	Stages []StageReport `json:"stages"`
	// Validation is present for single-provider full-severity scenarios:
	// the simulated down set checked against I_p membership.
	Validation *Validation `json:"validation,omitempty"`
}

// Validation records the I_p consistency check.
type Validation struct {
	Provider string `json:"provider"`
	Impact   int    `json:"impact"`
	SimDown  int    `json:"simulated_down"`
	Match    bool   `json:"match"`
}

// StageReport aggregates one stage's cumulative outcome.
type StageReport struct {
	Name string `json:"name"`
	// Targets is the cumulative resolved target list; NewTargets the ones
	// this stage added.
	Targets    []string `json:"targets"`
	NewTargets []string `json:"new_targets,omitempty"`

	Down       int `json:"down"`
	Degraded   int `json:"degraded"`
	Unaffected int `json:"unaffected"`
	// NewlyDown counts sites down now that were not down after the
	// previous stage (everything, for the first stage).
	NewlyDown int `json:"newly_down"`
	// DirectDown / CollateralDown split the down sites into direct target
	// users versus sites reached only through dependency chains.
	DirectDown     int `json:"direct_down"`
	CollateralDown int `json:"collateral_down"`

	// LostByService / DegradedByService count sites that lost (resp. had
	// impaired) each service, keyed "DNS"/"CDN"/"CA".
	LostByService     map[string]int `json:"lost_by_service,omitempty"`
	DegradedByService map[string]int `json:"degraded_by_service,omitempty"`

	// DownByBand buckets down sites by rank band (the Figures 2–4 bands:
	// top scale/1000, /100, /10, the full list).
	DownByBand [4]BandCount `json:"down_by_band"`

	// CascadedProviders lists providers taken down beyond the targets —
	// the fallen intermediaries; DegradedProviders the impaired ones.
	CascadedProviders []string `json:"cascaded_providers,omitempty"`
	DegradedProviders []string `json:"degraded_providers,omitempty"`

	// TopDownSites samples up to 10 down sites by rank.
	TopDownSites []string `json:"top_down_sites,omitempty"`

	// MeanResilience averages the per-site resilience score (1 = untouched,
	// 0 = every consumed service lost); ResilienceDist buckets it like the
	// §8.3 defense-metric distribution.
	MeanResilience float64                     `json:"mean_resilience"`
	ResilienceDist core.RobustnessDistribution `json:"resilience_dist"`
}

// BandCount is one rank band's down-site count.
type BandCount struct {
	Label string `json:"label"`
	Total int    `json:"total"`
	Down  int    `json:"down"`
}

// bandOf mirrors the paper's rank banding (Figures 2–4): band 0 holds
// ranks ≤ scale/1000, then /100, /10, and the full list.
func bandOf(rank, scale int) int {
	switch {
	case rank*1000 <= scale:
		return 0
	case rank*100 <= scale:
		return 1
	case rank*10 <= scale:
		return 2
	default:
		return 3
	}
}

func bandLabel(band, scale int) string {
	k := scale / []int{1000, 100, 10, 1}[band]
	if k >= 1000 && k%1000 == 0 {
		return fmt.Sprintf("top %dK", k/1000)
	}
	return fmt.Sprintf("top %d", k)
}

// buildStage aggregates one cumulative simulation result.
func buildStage(g *core.Graph, name string, targets, added []string, res *core.OutageResult, prev []core.SiteOutcome) StageReport {
	scale := len(g.Sites)
	sr := StageReport{
		Name:       name,
		Targets:    append([]string(nil), targets...),
		NewTargets: append([]string(nil), added...),
		Down:       res.Down,
		Degraded:   res.Degraded,
		Unaffected: res.Unaffected,
	}
	sort.Strings(sr.Targets)

	for b := range sr.DownByBand {
		sr.DownByBand[b].Label = bandLabel(b, scale)
	}
	var downSites []*core.Site
	resSum := 0.0
	for i, s := range g.Sites {
		resSum += res.Resilience[i]
		switch {
		case res.Resilience[i] == 0:
			sr.ResilienceDist.Zero++
		case res.Resilience[i] <= 0.5:
			sr.ResilienceDist.Low++
		case res.Resilience[i] < 1:
			sr.ResilienceDist.High++
		default:
			sr.ResilienceDist.Full++
		}
		b := bandOf(s.Rank, scale)
		sr.DownByBand[b].Total++
		if res.Outcomes[i] != core.SiteDown {
			continue
		}
		sr.DownByBand[b].Down++
		downSites = append(downSites, s)
		if res.Direct[i] {
			sr.DirectDown++
		} else {
			sr.CollateralDown++
		}
		if prev == nil || prev[i] != core.SiteDown {
			sr.NewlyDown++
		}
	}
	if scale > 0 {
		sr.MeanResilience = resSum / float64(scale)
	} else {
		sr.MeanResilience = 1
	}

	sort.Slice(downSites, func(i, j int) bool { return downSites[i].Rank < downSites[j].Rank })
	for i := 0; i < len(downSites) && i < 10; i++ {
		sr.TopDownSites = append(sr.TopDownSites, downSites[i].Name)
	}

	targetSet := make(map[string]bool, len(targets))
	for _, t := range targets {
		targetSet[t] = true
	}
	for _, p := range res.DownProviders {
		if !targetSet[p] {
			sr.CascadedProviders = append(sr.CascadedProviders, p)
		}
	}
	sr.DegradedProviders = append([]string(nil), res.DegradedProviders...)

	for svc, n := range res.LostByService {
		if sr.LostByService == nil {
			sr.LostByService = make(map[string]int)
		}
		sr.LostByService[svc.String()] = n
	}
	for svc, n := range res.DegradedByService {
		if sr.DegradedByService == nil {
			sr.DegradedByService = make(map[string]int)
		}
		sr.DegradedByService[svc.String()] = n
	}
	return sr
}

// Final returns the last stage — the scenario's end state.
func (r *Report) Final() *StageReport {
	if len(r.Stages) == 0 {
		return nil
	}
	return &r.Stages[len(r.Stages)-1]
}

func pctOf(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// WriteText renders the report for terminals — the backend of the depscope
// -incident mode and the analysis Dyn-replay table.
func (r *Report) WriteText(w io.Writer) {
	title := r.Scenario
	if title == "" {
		title = "incident"
	}
	fmt.Fprintf(w, "incident scenario: %s", title)
	if r.Snapshot != "" {
		fmt.Fprintf(w, " (snapshot %s)", r.Snapshot)
	}
	fmt.Fprintln(w)
	if r.Description != "" {
		fmt.Fprintf(w, "%s\n", r.Description)
	}
	mode := "full outage"
	if r.Severity < 1 {
		mode = fmt.Sprintf("partial outage, severity %.2f", r.Severity)
	}
	if r.JointFailures {
		mode += ", joint failures (redundancy can exhaust)"
	}
	via := "all services"
	if len(r.Via) > 0 {
		via = strings.Join(r.Via, "+")
	}
	fmt.Fprintf(w, "mode: %s; cascades via %s; %d sites evaluated\n", mode, via, r.TotalSites)

	for i := range r.Stages {
		st := &r.Stages[i]
		if len(r.Stages) > 1 {
			fmt.Fprintf(w, "\nstage %d/%d: %s (+%d targets, %d total)\n",
				i+1, len(r.Stages), st.Name, len(st.NewTargets), len(st.Targets))
		} else {
			fmt.Fprintf(w, "targets (%d): %s\n", len(st.Targets), sample(st.Targets, 8))
		}
		fmt.Fprintf(w, "  down %d (%.1f%%)   degraded %d (%.1f%%)   unaffected %d (%.1f%%)\n",
			st.Down, pctOf(st.Down, r.TotalSites),
			st.Degraded, pctOf(st.Degraded, r.TotalSites),
			st.Unaffected, pctOf(st.Unaffected, r.TotalSites))
		if len(r.Stages) > 1 {
			fmt.Fprintf(w, "  newly down this stage: %d\n", st.NewlyDown)
		}
		if st.Down > 0 {
			fmt.Fprintf(w, "  down by blast path: %d direct, %d collateral (via dependency chains)\n",
				st.DirectDown, st.CollateralDown)
		}
		if len(st.LostByService)+len(st.DegradedByService) > 0 {
			fmt.Fprintf(w, "  by service:")
			// AllServices so chain (Resource) losses print; zero-count
			// services are skipped, keeping chains-off reports unchanged.
			for _, svc := range core.AllServices {
				lost, deg := st.LostByService[svc.String()], st.DegradedByService[svc.String()]
				if lost == 0 && deg == 0 {
					continue
				}
				fmt.Fprintf(w, "  %s lost=%d degraded=%d", svc, lost, deg)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "  down by rank band:")
		for _, b := range st.DownByBand {
			fmt.Fprintf(w, "  %s %d/%d", b.Label, b.Down, b.Total)
		}
		fmt.Fprintln(w)
		if len(st.CascadedProviders) > 0 {
			fmt.Fprintf(w, "  providers taken down by the cascade: %s\n", sample(st.CascadedProviders, 8))
		}
		if len(st.DegradedProviders) > 0 {
			fmt.Fprintf(w, "  providers degraded: %s\n", sample(st.DegradedProviders, 8))
		}
		if len(st.TopDownSites) > 0 {
			fmt.Fprintf(w, "  highest-ranked sites down: %s\n", strings.Join(st.TopDownSites, " "))
		}
		d := st.ResilienceDist
		fmt.Fprintf(w, "  resilience: mean %.3f  (score 0: %d, (0,0.5]: %d, (0.5,1): %d, 1: %d)\n",
			st.MeanResilience, d.Zero, d.Low, d.High, d.Full)
	}

	if r.Validation != nil {
		v := r.Validation
		verdict := "MATCH"
		if !v.Match {
			verdict = "MISMATCH"
		}
		fmt.Fprintf(w, "validation: simulated down set vs I_p(%s) = %d vs %d [%s]\n",
			v.Provider, v.SimDown, v.Impact, verdict)
	}
}

// sample joins up to n names, eliding the rest with a count.
func sample(names []string, n int) string {
	if len(names) <= n {
		return strings.Join(names, " ")
	}
	return fmt.Sprintf("%s ... and %d more", strings.Join(names[:n], " "), len(names)-n)
}
