package incident_test

import (
	"context"
	"sort"
	"sync"
	"testing"

	"depscope/internal/core"
	"depscope/internal/incident"
)

// The sweep fixture: one single-provider scenario per top-100 provider
// (merged across services, ranked by C_p) at scale 2K, seed 2020.
var (
	sweepOnce      sync.Once
	sweepGraph     *core.Graph
	sweepScenarios []*incident.Scenario
)

func sweepFixture(b *testing.B) (*core.Graph, []*incident.Scenario) {
	sweepOnce.Do(func() {
		run := runAt(b, 2020)
		g := run.Y2020.Graph
		opts := core.AllIndirect()
		best := map[string]int{}
		for _, svc := range []core.Service{core.DNS, core.CDN, core.CA} {
			for _, st := range g.TopProviders(svc, opts, false, 100) {
				if st.Concentration > best[st.Name] {
					best[st.Name] = st.Concentration
				}
			}
		}
		names := make([]string, 0, len(best))
		for name := range best {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool {
			if best[names[i]] != best[names[j]] {
				return best[names[i]] > best[names[j]]
			}
			return names[i] < names[j]
		})
		if len(names) > 100 {
			names = names[:100]
		}
		scenarios := make([]*incident.Scenario, len(names))
		for i, name := range names {
			scenarios[i] = &incident.Scenario{
				Name:    "bench-" + name,
				Targets: incident.Targets{Providers: []string{name}},
			}
		}
		sweepGraph, sweepScenarios = g, scenarios
	})
	return sweepGraph, sweepScenarios
}

// BenchmarkIncidentSweep fans the top-100 providers' single-outage
// scenarios through Sweep at scale 2K — the workload behind
// BENCH_incident.json (docs/bench.sh incident).
func BenchmarkIncidentSweep(b *testing.B) {
	g, scenarios := sweepFixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reports, err := incident.Sweep(context.Background(), g, scenarios, 8)
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) != len(scenarios) {
			b.Fatalf("got %d reports, want %d", len(reports), len(scenarios))
		}
	}
}

// BenchmarkIncidentMonteCarlo samples 1000 C_p-weighted randomized failure
// scenarios per iteration at scale 2K (the mc-baseline shape) and reports
// scenarios/sec alongside ns/op — the other half of BENCH_incident.json.
func BenchmarkIncidentMonteCarlo(b *testing.B) {
	g, _ := sweepFixture(b)
	const scenarios = 1000
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec := &incident.SweepSpec{Name: "bench-mc", Scenarios: scenarios, Seed: 1}
		rep, err := incident.MonteCarlo(context.Background(), g, spec, 8)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Scenarios != scenarios {
			b.Fatalf("ran %d scenarios, want %d", rep.Scenarios, scenarios)
		}
	}
	b.ReportMetric(float64(scenarios*b.N)/b.Elapsed().Seconds(), "scenarios/sec")
}
