package incident

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"depscope/internal/core"
	"depscope/internal/publicsuffix"
)

// Scenario is one what-if outage specification, the JSON document
// `depscope -incident file.json` and `POST depserver /incident` accept.
// docs/incidents.md documents the format with worked examples.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Snapshot selects the measured graph: "2016", "2020", or empty for
	// 2020. The simulation layer is snapshot-agnostic; the caller resolves
	// this to a graph before calling Simulate.
	Snapshot string `json:"snapshot,omitempty"`
	// Targets is the initial (or only) target selection. Ignored when
	// Stages is set.
	Targets Targets `json:"targets"`
	// Severity in (0,1) models a partial outage (targets degrade instead of
	// going dark); 0 and 1 both mean a full outage.
	Severity float64 `json:"severity,omitempty"`
	// JointFailures opts into redundancy exhaustion: a multi-third
	// arrangement loses the service when all of its providers are down.
	// Beyond the paper's semantics (see docs/incidents.md).
	JointFailures bool `json:"joint_failures,omitempty"`
	// Via lists the provider service types failure may traverse ("dns",
	// "cdn", "ca", "resource"); empty means all direct services — the
	// C_p/I_p traversal filter. "resource" lets the cascade continue
	// through implicitly-trusted chain vendors (their own DNS/CDN failures
	// reach the sites that include them).
	Via []string `json:"via,omitempty"`
	// Stages, when set, replay a timeline: each stage's targets are added
	// to all previous ones and the cumulative outage is re-simulated, so a
	// report shows the incident growing (the Dyn outage came in waves).
	Stages []Stage `json:"stages,omitempty"`
}

// Stage is one step of a staged scenario.
type Stage struct {
	Name    string  `json:"name"`
	Targets Targets `json:"targets"`
}

// Targets selects providers to fail. The selectors are unioned; at least
// one must be present.
type Targets struct {
	// Providers lists explicit provider identities (e.g. "dynect.net").
	Providers []string `json:"providers,omitempty"`
	// Entity fails every provider of one operating entity, grouped by the
	// paper's TLD/SOA rule: a provider matches when its registrable domain,
	// or the second-level label of it, equals the entity (case-insensitive).
	// "dynect" and "dynect.net" both select dynect.net.
	Entity string `json:"entity,omitempty"`
	// Service blacks out a whole service type: every third-party provider
	// of "dns", "cdn" or "ca".
	Service string `json:"service,omitempty"`
	// TopK fails the K providers of TopKService with the highest
	// concentration C_p under the scenario's traversal.
	TopK        int    `json:"top_k,omitempty"`
	TopKService string `json:"top_k_service,omitempty"`
	// MinChainDepth restricts the TopK ranking to chain vendors whose
	// minimum resource-inclusion depth across all sites is at least this
	// value: 2 selects vendors no page loads directly — the implicit trust
	// the direct measurement cannot see. Only meaningful with TopK over
	// the "resource" service (chain-enabled runs).
	MinChainDepth int `json:"min_chain_depth,omitempty"`
}

func (t Targets) empty() bool {
	return len(t.Providers) == 0 && t.Entity == "" && t.Service == "" && t.TopK == 0
}

// ParseScenario decodes and validates a scenario document. Unknown fields
// are rejected so a typoed selector fails loudly instead of simulating the
// wrong outage.
func ParseScenario(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("incident: parse scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// parseService maps a scenario service name onto core.Service.
func parseService(s string) (core.Service, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "dns":
		return core.DNS, nil
	case "cdn":
		return core.CDN, nil
	case "ca":
		return core.CA, nil
	case "resource":
		return core.Resource, nil
	}
	return 0, fmt.Errorf("incident: unknown service %q (want dns, cdn, ca or resource)", s)
}

func (t Targets) validate() error {
	if t.empty() {
		return fmt.Errorf("incident: targets select nothing (set providers, entity, service or top_k)")
	}
	if t.TopK < 0 {
		return fmt.Errorf("incident: top_k must be positive, got %d", t.TopK)
	}
	if t.TopK > 0 {
		if _, err := parseService(t.TopKService); err != nil {
			return fmt.Errorf("incident: top_k needs top_k_service: %w", err)
		}
	}
	if t.MinChainDepth < 0 {
		return fmt.Errorf("incident: min_chain_depth must be non-negative, got %d", t.MinChainDepth)
	}
	if t.MinChainDepth > 0 && t.TopK == 0 {
		return fmt.Errorf("incident: min_chain_depth only shapes the top_k ranking; set top_k")
	}
	if t.Service != "" {
		if _, err := parseService(t.Service); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks the scenario for structural errors before any simulation.
func (s *Scenario) Validate() error {
	if s.Severity < 0 || s.Severity > 1 {
		return fmt.Errorf("incident: severity %v out of range [0,1]", s.Severity)
	}
	switch s.Snapshot {
	case "", "2016", "2020":
	default:
		return fmt.Errorf("incident: unknown snapshot %q (want 2016 or 2020)", s.Snapshot)
	}
	for _, v := range s.Via {
		if _, err := parseService(v); err != nil {
			return err
		}
	}
	if len(s.Stages) == 0 {
		return s.Targets.validate()
	}
	for i, st := range s.Stages {
		if err := st.Targets.validate(); err != nil {
			return fmt.Errorf("stage %d (%s): %w", i+1, st.Name, err)
		}
	}
	return nil
}

// traversal resolves Via onto the metric engine's TraversalOpts.
func (s *Scenario) traversal() (core.TraversalOpts, error) {
	return viaTraversal(s.Via)
}

// viaTraversal resolves a via list (scenario or sweep) onto the metric
// engine's TraversalOpts; empty means all service types.
func viaTraversal(via []string) (core.TraversalOpts, error) {
	if len(via) == 0 {
		return core.AllIndirect(), nil
	}
	var opts core.TraversalOpts
	for _, v := range via {
		svc, err := parseService(v)
		if err != nil {
			return opts, err
		}
		opts.ViaProviders = append(opts.ViaProviders, svc)
	}
	return opts, nil
}

// severity normalizes the spec value: 0 means a full outage.
func (s *Scenario) severity() float64 {
	if s.Severity == 0 {
		return 1
	}
	return s.Severity
}

// stages normalizes the scenario to a stage list: an unstaged scenario is a
// single stage named "outage".
func (s *Scenario) stages() []Stage {
	if len(s.Stages) > 0 {
		return s.Stages
	}
	return []Stage{{Name: "outage", Targets: s.Targets}}
}

// entityOf normalizes a provider identity to its entity key per the paper's
// grouping rule: the registrable domain, lowercased.
func entityOf(name string) string {
	return strings.ToLower(publicsuffix.RegistrableDomain(name))
}

// sld returns the second-level label of a registrable domain ("dynect" for
// "dynect.net").
func sld(domain string) string {
	if i := strings.IndexByte(domain, '.'); i > 0 {
		return domain[:i]
	}
	return domain
}

// ResolveTargets expands one Targets selection against a graph into a
// sorted, deduplicated provider list. opts is the scenario traversal (the
// top-K ranking is computed under it).
func ResolveTargets(g *core.Graph, t Targets, opts core.TraversalOpts) ([]string, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	selected := make(map[string]bool)

	if len(t.Providers) > 0 {
		universe := make(map[string]bool)
		for _, n := range g.ProviderNames() {
			universe[n] = true
		}
		for _, p := range t.Providers {
			if !universe[p] {
				return nil, fmt.Errorf("incident: unknown provider %q in this snapshot", p)
			}
			selected[p] = true
		}
	}

	if t.Entity != "" {
		want := strings.ToLower(strings.TrimSpace(t.Entity))
		matched := false
		for _, n := range g.ProviderNames() {
			ent := entityOf(n)
			if ent == want || sld(ent) == want || strings.ToLower(n) == want {
				selected[n] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("incident: entity %q matches no provider in this snapshot", t.Entity)
		}
	}

	if t.Service != "" {
		svc, err := parseService(t.Service)
		if err != nil {
			return nil, err
		}
		names := g.ProvidersOfService(svc)
		if len(names) == 0 {
			return nil, fmt.Errorf("incident: no %s providers in this snapshot", svc)
		}
		for _, n := range names {
			selected[n] = true
		}
	}

	if t.TopK > 0 {
		svc, err := parseService(t.TopKService)
		if err != nil {
			return nil, err
		}
		// With a depth floor, rank the full pool and keep only vendors no
		// site includes above the floor (min depth over every chain edge).
		var eligible map[string]bool
		n := t.TopK
		if t.MinChainDepth > 1 {
			minDepth := make(map[string]int)
			for _, s := range g.Sites {
				for _, e := range s.Chains {
					if d, ok := minDepth[e.Provider]; !ok || e.Depth < d {
						minDepth[e.Provider] = e.Depth
					}
				}
			}
			eligible = make(map[string]bool)
			for p, d := range minDepth {
				if d >= t.MinChainDepth {
					eligible[p] = true
				}
			}
			n = -1
		}
		stats := g.TopProviders(svc, opts, false, n)
		taken := 0
		for _, st := range stats {
			if eligible != nil && !eligible[st.Name] {
				continue
			}
			selected[st.Name] = true
			taken++
			if taken == t.TopK {
				break
			}
		}
		if taken == 0 {
			if t.MinChainDepth > 1 {
				return nil, fmt.Errorf("incident: no %s providers at chain depth >= %d in this snapshot (chain-enabled runs only)", svc, t.MinChainDepth)
			}
			return nil, fmt.Errorf("incident: no %s providers to rank in this snapshot", svc)
		}
	}

	out := make([]string, 0, len(selected))
	for n := range selected {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}
