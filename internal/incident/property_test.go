// Scale-2K consistency proofs against the measured universe. This file is
// an external test package so it can drive the full analysis pipeline —
// analysis imports incident, so these tests cannot live inside it.
package incident_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"depscope/internal/analysis"
	"depscope/internal/core"
	"depscope/internal/incident"
)

const propScale = 2000

// Measured runs are expensive; share one per seed across the tests.
var (
	fixtureMu sync.Mutex
	fixtures  = map[int64]*analysis.Run{}
)

func runAt(t testing.TB, seed int64) *analysis.Run {
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if r, ok := fixtures[seed]; ok {
		return r
	}
	run, err := analysis.Execute(context.Background(), analysis.Options{Scale: propScale, Seed: seed})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	fixtures[seed] = run
	return run
}

// TestSingleProviderSimulationMatchesImpact is the headline consistency
// property: for EVERY provider of the measured 2K universe (seeds 1 and
// 2020, both snapshots), simulating that provider's outage yields exactly
// the I_p membership as the down-site set and exactly the C_p membership as
// the affected set.
func TestSingleProviderSimulationMatchesImpact(t *testing.T) {
	opts := core.AllIndirect()
	for _, seed := range []int64{1, 2020} {
		run := runAt(t, seed)
		for _, sd := range []*analysis.SnapshotData{run.Y2016, run.Y2020} {
			g := sd.Graph
			sim := g.OutageSim(opts)
			checked := 0
			for _, name := range g.ProviderNames() {
				res := sim.Run([]string{name}, core.OutageOpts{})
				if res.Down != g.Impact(name, opts) {
					t.Fatalf("seed %d %s %s: simulated %d down, engine I_p = %d",
						seed, sd.Snapshot, name, res.Down, g.Impact(name, opts))
				}
				imp := g.ImpactSet(name, opts)
				conc := g.ConcentrationSet(name, opts)
				for i, s := range g.Sites {
					if (res.Outcomes[i] == core.SiteDown) != imp[s.Name] {
						t.Fatalf("seed %d %s %s: site %s down=%v but impact membership=%v",
							seed, sd.Snapshot, name, s.Name,
							res.Outcomes[i] == core.SiteDown, imp[s.Name])
					}
					if (res.Outcomes[i] != core.SiteUnaffected) != conc[s.Name] {
						t.Fatalf("seed %d %s %s: site %s affected=%v but concentration membership=%v",
							seed, sd.Snapshot, name, s.Name,
							res.Outcomes[i] != core.SiteUnaffected, conc[s.Name])
					}
				}
				checked++
			}
			if checked == 0 {
				t.Fatalf("seed %d %s: no providers checked", seed, sd.Snapshot)
			}
			t.Logf("seed %d %s: %d providers consistent", seed, sd.Snapshot, checked)
		}
	}
}

// TestScenarioValidationAtScale runs the package-level entry point for the
// top providers of every service and asserts each report's embedded
// validation (down set vs I_p) holds on measured data.
func TestScenarioValidationAtScale(t *testing.T) {
	run := runAt(t, 2020)
	g := run.Y2020.Graph
	for _, svc := range []string{"dns", "cdn", "ca"} {
		parsed, err := incident.ParseScenario(strings.NewReader(
			`{"name":"top-` + svc + `","targets":{"top_k":5,"top_k_service":"` + svc + `"}}`))
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range g.TopProviders(svcOf(t, svc), core.AllIndirect(), false, 5) {
			rep, err := incident.Simulate(context.Background(), g, &incident.Scenario{
				Name:    "validate-" + st.Name,
				Targets: incident.Targets{Providers: []string{st.Name}},
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Validation == nil || !rep.Validation.Match {
				t.Errorf("%s: validation failed: %+v", st.Name, rep.Validation)
			}
		}
		// The parsed multi-target scenario must run cleanly too.
		if _, err := incident.Simulate(context.Background(), g, parsed); err != nil {
			t.Errorf("top-5 %s scenario: %v", svc, err)
		}
	}
}

func svcOf(t *testing.T, s string) core.Service {
	t.Helper()
	switch s {
	case "dns":
		return core.DNS
	case "cdn":
		return core.CDN
	case "ca":
		return core.CA
	}
	t.Fatalf("bad service %s", s)
	return 0
}

// dynReplayGolden pins the Dyn-replay preset's full report at scale 2000,
// seed 2020. encoding/json sorts map keys and every slice in the report is
// deterministically ordered, so the encoding is canonical. After an
// intentional report-shape change, rerun
//
//	go test ./internal/incident -run TestDynReplayGolden -v
//
// and pin the new hash the failure message prints.
const dynReplayGolden = "d07f4884783655c02bdb3272844d986bc0064f72ab9faaae8bb0e28652097c49"

// TestDynReplayGolden pins the Dyn-replay preset output — the acceptance
// gate make verify runs explicitly.
func TestDynReplayGolden(t *testing.T) {
	run := runAt(t, 2020)
	rep, err := analysis.DynReplay(context.Background(), run)
	if err != nil {
		t.Fatal(err)
	}
	// Structural sanity before the byte pin: Dyn must matter in 2016.
	f := rep.Final()
	if f == nil || f.Down == 0 {
		t.Fatalf("Dyn replay shows no impact: %+v", rep)
	}
	if rep.Validation == nil || !rep.Validation.Match {
		t.Fatalf("Dyn replay validation failed: %+v", rep.Validation)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	if got := hex.EncodeToString(sum[:]); got != dynReplayGolden {
		t.Errorf("Dyn-replay report hash %s, want pinned %s\nreport:\n%s", got, dynReplayGolden, b)
	}
}

// sweepGolden pins the mc-baseline Monte-Carlo sweep at scale 2000, seed
// 2020 — the seeded-determinism acceptance gate. Scenario i draws from a
// splitmix of (seed, i), so the hash is stable across worker counts and
// machines. After an intentional report-shape change, rerun
//
//	go test ./internal/incident -run TestSweepGolden -v
//
// and pin the new hash the failure message prints.
const sweepGolden = "9e2e26cda72547891cf0f3bf19e9251acfce014227a26da62f72eeea24cc6eda"

// TestSweepGolden pins the Monte-Carlo baseline sweep output.
func TestSweepGolden(t *testing.T) {
	run := runAt(t, 2020)
	sp, ok := incident.SweepPreset("mc-baseline")
	if !ok {
		t.Fatal("mc-baseline preset missing")
	}
	rep, err := analysis.MonteCarloSweep(context.Background(), run, sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Structural sanity before the byte pin: a 2000-scenario C_p-weighted
	// sweep over the measured 2K universe must observe damage.
	if rep.Scenarios < 1000 || rep.Down.Max == 0 || len(rep.Attribution) == 0 {
		t.Fatalf("degenerate sweep: %+v", rep)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(b)
	if got := hex.EncodeToString(sum[:]); got != sweepGolden {
		t.Errorf("sweep report hash %s, want pinned %s\nreport:\n%s", got, sweepGolden, b)
	}
}

// mitigationGolden pins the K=25 mitigation plan for the 2020 snapshot at
// scale 2000, seed 2020. Same re-pin procedure as the other goldens.
const mitigationGolden = "d9f0e537eb1a842991348adf441c8bf082c219e8657e3e474707bdeec510566e"

// TestMitigationGolden pins the mitigation optimizer's plan and re-proves
// its before-total against the metric engine at measured scale.
func TestMitigationGolden(t *testing.T) {
	run := runAt(t, 2020)
	plan, err := analysis.Mitigation(run, 25, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Options) == 0 || plan.Reduction() <= 0 {
		t.Fatalf("degenerate plan: %+v", plan)
	}
	// The optimizer's aggregate-before must equal Σ_p |I_p| from the engine
	// on the measured graph, not just on synthetic fixtures.
	_, imp := run.Y2020.Graph.Metrics().Counts(core.AllIndirect())
	sum := 0
	for _, n := range imp {
		sum += n
	}
	if plan.Before != sum {
		t.Fatalf("plan before = %d, engine Σ|I_p| = %d", plan.Before, sum)
	}
	b, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256(b)
	if got := hex.EncodeToString(h[:]); got != mitigationGolden {
		t.Errorf("mitigation plan hash %s, want pinned %s\nplan:\n%s", got, mitigationGolden, b)
	}
}
