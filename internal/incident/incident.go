// Package incident is the what-if outage engine: it plays scenario
// specifications — one provider, an entity group, a service blackout, a
// top-K-by-C_p set, optionally partial or staged — against a measured
// dependency graph and reports what state every website ends up in.
//
// The propagation itself lives in core (Graph.OutageSim), built on the
// metrics engine's provider universe and reverse edges so a single-provider
// scenario at full severity reproduces I_p membership exactly; this package
// adds the scenario vocabulary (target resolution, staged timelines,
// severity), aggregation into per-stage reports with resilience scoring,
// parallel fan-out of scenario sweeps over the shared worker pool, and the
// Dyn-replay preset that re-prints the paper's motivating incident.
//
// Everything is telemetry-instrumented: scenario and sweep spans, stage and
// site counters, and last-run outcome gauges (see docs/observability.md).
package incident

import (
	"context"
	"fmt"

	"depscope/internal/conc"
	"depscope/internal/core"
	"depscope/internal/telemetry"
)

// Engine metrics, registered once at package init so a /metrics scrape
// shows the catalog even before the first scenario runs.
var (
	scenariosRun   = telemetry.Counter("incident_scenarios_total", "outage scenarios simulated")
	stagesRun      = telemetry.Counter("incident_stages_total", "scenario stages simulated (one cumulative cascade each)")
	sitesEvaluated = telemetry.Counter("incident_sites_evaluated_total", "site outcomes classified across all scenario stages")
	targetsFailed  = telemetry.Counter("incident_targets_failed_total", "providers failed as scenario targets")
	lastDown       = telemetry.Gauge("incident_last_down_sites", "sites down at the end of the most recently simulated scenario")
	lastDegraded   = telemetry.Gauge("incident_last_degraded_sites", "sites degraded at the end of the most recently simulated scenario")
	lastUnaffected = telemetry.Gauge("incident_last_unaffected_sites", "sites unaffected at the end of the most recently simulated scenario")
)

// Simulate plays one scenario against g and aggregates the outcome. The
// caller chooses g to match sc.Snapshot. Stages accumulate: each stage
// re-simulates the union of all targets so far, so the report shows the
// incident growing wave by wave.
func Simulate(ctx context.Context, g *core.Graph, sc *Scenario) (*Report, error) {
	defer telemetry.StartSpan("incident.scenario").End()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	opts, err := sc.traversal()
	if err != nil {
		return nil, err
	}
	sim := g.OutageSim(opts)
	rep := &Report{
		Scenario:      sc.Name,
		Description:   sc.Description,
		Snapshot:      sc.Snapshot,
		Severity:      sc.severity(),
		JointFailures: sc.JointFailures,
		Via:           sc.Via,
		TotalSites:    len(g.Sites),
	}

	var (
		cumulative []string
		seen       = make(map[string]bool)
		prev       []core.SiteOutcome
		final      *core.OutageResult
	)
	for _, st := range sc.stages() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resolved, err := ResolveTargets(g, st.Targets, opts)
		if err != nil {
			return nil, fmt.Errorf("incident: scenario %q stage %q: %w", sc.Name, st.Name, err)
		}
		var added []string
		for _, t := range resolved {
			if !seen[t] {
				seen[t] = true
				cumulative = append(cumulative, t)
				added = append(added, t)
			}
		}
		res := sim.Run(cumulative, core.OutageOpts{
			Severity:      sc.severity(),
			JointFailures: sc.JointFailures,
		})
		stagesRun.Inc()
		sitesEvaluated.Add(int64(len(g.Sites)))
		targetsFailed.Add(int64(len(added)))
		rep.Stages = append(rep.Stages, buildStage(g, st.Name, cumulative, added, res, prev))
		prev = res.Outcomes
		final = res
	}

	scenariosRun.Inc()
	if final != nil {
		lastDown.Set(int64(final.Down))
		lastDegraded.Set(int64(final.Degraded))
		lastUnaffected.Set(int64(final.Unaffected))
	}

	// A single-provider full-severity scenario must reproduce the metric
	// engine's I_p exactly — membership, not just count. Record the check
	// so every report carries its own consistency proof.
	if len(cumulative) == 1 && rep.Severity == 1 && final != nil {
		p := cumulative[0]
		impact := g.ImpactSet(p, opts)
		match := len(impact) == final.Down
		if match {
			for i, s := range g.Sites {
				if (final.Outcomes[i] == core.SiteDown) != impact[s.Name] {
					match = false
					break
				}
			}
		}
		rep.Validation = &Validation{
			Provider: p,
			Impact:   len(impact),
			SimDown:  final.Down,
			Match:    match,
		}
	}
	return rep, nil
}

// Sweep simulates scenarios in parallel over the shared worker pool
// (workers < 1 means GOMAXPROCS) and returns one report per scenario, in
// order. The first scenario error aborts the sweep; cancellation is prompt
// and surfaces as an error satisfying errors.Is(err, ctx.Err()).
func Sweep(ctx context.Context, g *core.Graph, scenarios []*Scenario, workers int) ([]*Report, error) {
	defer telemetry.StartSpan("incident.sweep").End()
	reports := make([]*Report, len(scenarios))
	err := conc.ForEach(ctx, len(scenarios), workers, conc.FailFast, func(ctx context.Context, i int) error {
		rep, err := Simulate(ctx, g, scenarios[i])
		if err != nil {
			return err
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reports, nil
}
