package incident

import "sort"

// presets are the built-in scenarios, addressable by name from the depscope
// -incident flag and the depserver /incident endpoint. Each call returns a
// fresh copy so callers can tweak fields without aliasing.
var presets = map[string]func() *Scenario{
	// The paper's motivating incident (§2): the October 2016 Mirai DDoS on
	// Dyn, replayed against the 2016 snapshot. Twitter-class sites fall
	// through their private CDNs' hidden Dyn dependency.
	"dyn-replay": func() *Scenario {
		return &Scenario{
			Name:        "dyn-replay",
			Description: "replay of the 2016 Mirai-Dyn incident: fail Dyn (dynect.net) against the 2016 snapshot",
			Snapshot:    "2016",
			Targets:     Targets{Providers: []string{"dynect.net"}},
		}
	},
	// The same incident as it actually unfolded: a partial first wave, then
	// full loss of service.
	"dyn-staged": func() *Scenario {
		return &Scenario{
			Name:        "dyn-staged",
			Description: "the Dyn outage as a two-wave timeline: Dyn first, then the next two largest DNS providers",
			Snapshot:    "2016",
			Stages: []Stage{
				{Name: "wave 1: Dyn", Targets: Targets{Providers: []string{"dynect.net"}}},
				{Name: "wave 2: next DNS giants", Targets: Targets{TopK: 2, TopKService: "dns"}},
			},
		}
	},
	// Partial degradation of Dyn instead of a blackout.
	"dyn-partial": func() *Scenario {
		return &Scenario{
			Name:        "dyn-partial",
			Description: "partial Dyn degradation (severity 0.5): nothing goes down, critical users degrade",
			Snapshot:    "2016",
			Targets:     Targets{Providers: []string{"dynect.net"}},
			Severity:    0.5,
		}
	},
	// The concentration worry of §5: the top-3 DNS providers together.
	"top3-dns": func() *Scenario {
		return &Scenario{
			Name:        "top3-dns",
			Description: "simultaneous outage of the three highest-concentration DNS providers (paper §5: top-3 impact ~40%)",
			Targets:     Targets{TopK: 3, TopKService: "dns"},
		}
	},
	// Full service blackouts — the catastrophic upper bounds.
	"dns-blackout": func() *Scenario {
		return &Scenario{
			Name:        "dns-blackout",
			Description: "every third-party DNS provider down at once (upper bound of DNS exposure)",
			Targets:     Targets{Service: "dns"},
		}
	},
	"cdn-blackout": func() *Scenario {
		return &Scenario{
			Name:        "cdn-blackout",
			Description: "every third-party CDN down at once (upper bound of CDN exposure)",
			Targets:     Targets{Service: "cdn"},
		}
	},
	// The implicit-trust incident: the highest-concentration chain vendor
	// (a script/analytics operator no site lists as a direct dependency)
	// is compromised and taken down, and every page whose resource chain
	// reaches it — at any inclusion depth — falls with it. Requires a
	// chain-enabled run (-chains); the via list lets the cascade continue
	// through vendor nodes, so the vendor's own provider failures count.
	"analytics-compromise": func() *Scenario {
		return &Scenario{
			Name:        "analytics-compromise",
			Description: "compromise of the top second-level script vendor: a provider no page loads directly fails, and sites fall through >=2-level resource-inclusion chains (chain-enabled runs only)",
			Targets:     Targets{TopK: 1, TopKService: "resource", MinChainDepth: 2},
			Via:         []string{"dns", "cdn", "ca", "resource"},
		}
	},
}

// sweepPresets are the built-in Monte-Carlo sweeps, addressable by name
// from the depscope -sweep flag and the depserver /v1/sweep endpoint.
var sweepPresets = map[string]func() *SweepSpec{
	// The all-services baseline: C_p-weighted independent failures over the
	// 100 largest providers of each service type.
	"mc-baseline": func() *SweepSpec {
		return &SweepSpec{
			Name:        "mc-baseline",
			Description: "C_p-weighted independent failures across the top-100 providers of every service",
			Scenarios:   2000,
			Seed:        1,
		}
	},
	// Correlated entity storms: one operating entity's identities fail as a
	// unit (the paper's TLD/SOA grouping rule), at a higher base rate.
	"mc-entity-storm": func() *SweepSpec {
		return &SweepSpec{
			Name:        "mc-entity-storm",
			Description: "correlated failures by operating entity: one company's provider identities fall together",
			Scenarios:   2000,
			Seed:        1,
			BaseProb:    0.03,
			Correlate:   "entity",
		}
	},
	// DNS-only deep sweep with redundancy exhaustion: the whole DNS pool is
	// in scope and multi-provider arrangements can lose all their providers.
	"mc-dns-deep": func() *SweepSpec {
		return &SweepSpec{
			Name:          "mc-dns-deep",
			Description:   "DNS-only sweep over the full provider pool with joint-failure (redundancy exhaustion) semantics",
			Scenarios:     2000,
			Seed:          1,
			Service:       "dns",
			TopN:          -1,
			JointFailures: true,
		}
	},
	// The Dyn incident with randomized recovery: the failure set is pinned
	// to dynect.net against 2016 and the draws drive only the exponential
	// time-to-recover curves.
	"mc-dyn-recovery": func() *SweepSpec {
		return &SweepSpec{
			Name:        "mc-dyn-recovery",
			Description: "Dyn replay with sampled recovery: fixed dynect.net failure, exponential time-to-recover (mean 2h)",
			Snapshot:    "2016",
			Scenarios:   1000,
			Seed:        1,
			Targets:     &Targets{Providers: []string{"dynect.net"}},
			Recovery:    &RecoverySpec{Steps: 8, MeanMinutes: 120},
		}
	},
}

// SweepPreset returns a fresh copy of a built-in Monte-Carlo sweep.
func SweepPreset(name string) (*SweepSpec, bool) {
	mk, ok := sweepPresets[name]
	if !ok {
		return nil, false
	}
	return mk(), true
}

// SweepPresetNames lists the built-in sweeps, sorted.
func SweepPresetNames() []string {
	out := make([]string, 0, len(sweepPresets))
	for name := range sweepPresets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Preset returns a fresh copy of a built-in scenario.
func Preset(name string) (*Scenario, bool) {
	mk, ok := presets[name]
	if !ok {
		return nil, false
	}
	return mk(), true
}

// PresetNames lists the built-in scenarios, sorted.
func PresetNames() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
