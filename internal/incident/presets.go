package incident

import "sort"

// presets are the built-in scenarios, addressable by name from the depscope
// -incident flag and the depserver /incident endpoint. Each call returns a
// fresh copy so callers can tweak fields without aliasing.
var presets = map[string]func() *Scenario{
	// The paper's motivating incident (§2): the October 2016 Mirai DDoS on
	// Dyn, replayed against the 2016 snapshot. Twitter-class sites fall
	// through their private CDNs' hidden Dyn dependency.
	"dyn-replay": func() *Scenario {
		return &Scenario{
			Name:        "dyn-replay",
			Description: "replay of the 2016 Mirai-Dyn incident: fail Dyn (dynect.net) against the 2016 snapshot",
			Snapshot:    "2016",
			Targets:     Targets{Providers: []string{"dynect.net"}},
		}
	},
	// The same incident as it actually unfolded: a partial first wave, then
	// full loss of service.
	"dyn-staged": func() *Scenario {
		return &Scenario{
			Name:        "dyn-staged",
			Description: "the Dyn outage as a two-wave timeline: Dyn first, then the next two largest DNS providers",
			Snapshot:    "2016",
			Stages: []Stage{
				{Name: "wave 1: Dyn", Targets: Targets{Providers: []string{"dynect.net"}}},
				{Name: "wave 2: next DNS giants", Targets: Targets{TopK: 2, TopKService: "dns"}},
			},
		}
	},
	// Partial degradation of Dyn instead of a blackout.
	"dyn-partial": func() *Scenario {
		return &Scenario{
			Name:        "dyn-partial",
			Description: "partial Dyn degradation (severity 0.5): nothing goes down, critical users degrade",
			Snapshot:    "2016",
			Targets:     Targets{Providers: []string{"dynect.net"}},
			Severity:    0.5,
		}
	},
	// The concentration worry of §5: the top-3 DNS providers together.
	"top3-dns": func() *Scenario {
		return &Scenario{
			Name:        "top3-dns",
			Description: "simultaneous outage of the three highest-concentration DNS providers (paper §5: top-3 impact ~40%)",
			Targets:     Targets{TopK: 3, TopKService: "dns"},
		}
	},
	// Full service blackouts — the catastrophic upper bounds.
	"dns-blackout": func() *Scenario {
		return &Scenario{
			Name:        "dns-blackout",
			Description: "every third-party DNS provider down at once (upper bound of DNS exposure)",
			Targets:     Targets{Service: "dns"},
		}
	},
	"cdn-blackout": func() *Scenario {
		return &Scenario{
			Name:        "cdn-blackout",
			Description: "every third-party CDN down at once (upper bound of CDN exposure)",
			Targets:     Targets{Service: "cdn"},
		}
	},
}

// Preset returns a fresh copy of a built-in scenario.
func Preset(name string) (*Scenario, bool) {
	mk, ok := presets[name]
	if !ok {
		return nil, false
	}
	return mk(), true
}

// PresetNames lists the built-in scenarios, sorted.
func PresetNames() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
