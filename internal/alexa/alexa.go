// Package alexa reads and writes ranked website lists in the CSV format of
// the Alexa top-sites snapshots the paper samples ("rank,domain" per line).
// It lets the tooling operate on externally supplied lists — a saved Alexa
// snapshot, a Tranco list, or an exported synthetic world.
package alexa

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"depscope/internal/publicsuffix"
)

// Entry is one ranked site.
type Entry struct {
	Rank   int
	Domain string
}

// List is a ranked site list, ordered by rank.
type List []Entry

// Domains returns the domains in rank order.
func (l List) Domains() []string {
	out := make([]string, len(l))
	for i, e := range l {
		out[i] = e.Domain
	}
	return out
}

// Read parses a ranked list. Accepted line forms: "rank,domain" (Alexa/
// Tranco CSV) and bare "domain" (rank is the line number). Blank lines and
// #-comments are skipped. Entries are validated and returned sorted by
// rank; duplicate ranks or domains are errors.
func Read(r io.Reader) (List, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out List
	seenRank := make(map[int]bool)
	seenDomain := make(map[string]bool)
	lineNo := 0
	implicit := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var e Entry
		if idx := strings.IndexByte(line, ','); idx >= 0 {
			rank, err := strconv.Atoi(strings.TrimSpace(line[:idx]))
			if err != nil {
				return nil, fmt.Errorf("alexa: line %d: bad rank: %v", lineNo, err)
			}
			e = Entry{Rank: rank, Domain: strings.TrimSpace(line[idx+1:])}
		} else {
			implicit++
			e = Entry{Rank: implicit, Domain: line}
		}
		e.Domain = publicsuffix.Normalize(e.Domain)
		if e.Domain == "" || !strings.Contains(e.Domain, ".") {
			return nil, fmt.Errorf("alexa: line %d: invalid domain %q", lineNo, e.Domain)
		}
		if e.Rank <= 0 {
			return nil, fmt.Errorf("alexa: line %d: invalid rank %d", lineNo, e.Rank)
		}
		if seenRank[e.Rank] {
			return nil, fmt.Errorf("alexa: line %d: duplicate rank %d", lineNo, e.Rank)
		}
		if seenDomain[e.Domain] {
			return nil, fmt.Errorf("alexa: line %d: duplicate domain %s", lineNo, e.Domain)
		}
		seenRank[e.Rank] = true
		seenDomain[e.Domain] = true
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank < out[j].Rank })
	return out, nil
}

// Write emits the list as "rank,domain" CSV.
func Write(w io.Writer, l List) error {
	bw := bufio.NewWriter(w)
	for _, e := range l {
		if _, err := fmt.Fprintf(bw, "%d,%s\n", e.Rank, e.Domain); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FromDomains builds a list with ranks 1..n from domains in order.
func FromDomains(domains []string) List {
	out := make(List, len(domains))
	for i, d := range domains {
		out[i] = Entry{Rank: i + 1, Domain: publicsuffix.Normalize(d)}
	}
	return out
}
