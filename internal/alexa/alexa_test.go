package alexa

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestReadCSVForm(t *testing.T) {
	in := "# Alexa snapshot\n1,google.com\n2,Youtube.COM\n\n3,facebook.com\n"
	l, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := List{{1, "google.com"}, {2, "youtube.com"}, {3, "facebook.com"}}
	if !reflect.DeepEqual(l, want) {
		t.Errorf("got %v", l)
	}
}

func TestReadBareForm(t *testing.T) {
	l, err := Read(strings.NewReader("a.com\nb.org\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 2 || l[0].Rank != 1 || l[1].Domain != "b.org" {
		t.Errorf("got %v", l)
	}
}

func TestReadSortsByRank(t *testing.T) {
	l, err := Read(strings.NewReader("3,c.com\n1,a.com\n2,b.com\n"))
	if err != nil {
		t.Fatal(err)
	}
	if l[0].Domain != "a.com" || l[2].Domain != "c.com" {
		t.Errorf("got %v", l)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad rank":       "x,a.com\n",
		"zero rank":      "0,a.com\n",
		"dup rank":       "1,a.com\n1,b.com\n",
		"dup domain":     "1,a.com\n2,a.com\n",
		"invalid domain": "1,nodots\n",
		"empty domain":   "1,\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	l := FromDomains([]string{"x.com", "y.net", "z.org"})
	var buf bytes.Buffer
	if err := Write(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, l) {
		t.Errorf("round trip: %v vs %v", got, l)
	}
}

func TestDomains(t *testing.T) {
	l := FromDomains([]string{"a.com", "b.com"})
	if !reflect.DeepEqual(l.Domains(), []string{"a.com", "b.com"}) {
		t.Error("Domains mismatch")
	}
}
