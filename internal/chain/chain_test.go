package chain

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"depscope/internal/core"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
	if !Default().Enabled() {
		t.Fatal("Default() should enable chains")
	}
}

func TestValidateRanges(t *testing.T) {
	base := Default()
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"depth zero", func(c *Config) { c.MaxDepth = 0 }, false},
		{"depth too deep", func(c *Config) { c.MaxDepth = 9 }, false},
		{"depth one disables, other knobs ignored", func(c *Config) { c.MaxDepth = 1; c.FanOut = -5 }, true},
		{"fanout zero", func(c *Config) { c.FanOut = 0 }, false},
		{"fanout too high", func(c *Config) { c.FanOut = 8.5 }, false},
		{"ratio negative", func(c *Config) { c.ThirdPartyRatio = -0.1 }, false},
		{"ratio above one", func(c *Config) { c.ThirdPartyRatio = 1.1 }, false},
		{"no vendors", func(c *Config) { c.Vendors = 0 }, false},
		{"vendor flood", func(c *Config) { c.Vendors = 513 }, false},
		{"stock", func(c *Config) {}, true},
	}
	for _, tc := range cases {
		c := base
		tc.mut(&c)
		if err := c.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestParseConfigStrict pins the repo's codec conventions on the chain
// config: unknown fields and trailing bytes are rejected, absent fields
// inherit the defaults, and invalid values fail validation.
func TestParseConfigStrict(t *testing.T) {
	c, err := ParseConfig(strings.NewReader(`{"max_depth": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	want := Default()
	want.MaxDepth = 4
	if c != want {
		t.Errorf("partial config = %+v, want defaults with max_depth 4 (%+v)", c, want)
	}

	if _, err := ParseConfig(strings.NewReader(`{"max_depht": 4}`)); err == nil {
		t.Error("typoed field accepted")
	}
	if _, err := ParseConfig(strings.NewReader(`{"max_depth": 4} {"max_depth": 2}`)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing object: err = %v, want trailing-data rejection", err)
	}
	if _, err := ParseConfig(strings.NewReader(`{"max_depth": 4}garbage`)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := ParseConfig(strings.NewReader(`{"max_depth": 99}`)); err == nil {
		t.Error("out-of-range depth accepted")
	}
	if _, err := ParseConfig(strings.NewReader(`not json`)); err == nil {
		t.Error("non-JSON accepted")
	}
}

// TestParseSummaryStrict pins the /v1/chains client codec: a served Summary
// round-trips, schema drift (unknown fields) and trailing bytes fail loudly.
func TestParseSummaryStrict(t *testing.T) {
	orig := &Summary{
		Sites:           10,
		SitesWithChains: 7,
		Edges:           20,
		Vendors:         3,
		MaxDepth:        3,
		MeanDepth:       2.1,
		DepthHist:       []DepthBucket{{Depth: 1, Edges: 5}, {Depth: 2, Edges: 10}, {Depth: 3, Edges: 5}},
		TopImplicit: []VendorExposure{
			{Provider: "v.net", Concentration: 7, Impact: 7, Sites: 7, Weighted: 5.5, MinDepth: 1, MaxDepth: 3},
		},
		Comparison: []ComparisonRow{
			{Provider: "dns1.com", Service: "dns", DirectConcentration: 4, ImplicitConcentration: 9, DirectImpact: 3, ImplicitImpact: 8},
		},
	}
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSummary(strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := json.Marshal(got)
	if string(rt) != string(b) {
		t.Errorf("round trip drifted:\n got %s\nwant %s", rt, b)
	}

	if _, err := ParseSummary(strings.NewReader(`{"sites": 1, "surprise": true}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSummary(strings.NewReader(`{"sites": 1}{"sites": 2}`)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing object: err = %v, want trailing-data rejection", err)
	}
}

// chainedGraph hand-builds a world where s1 trusts vendor v.net at depth 1,
// s2 at depth 3, and s3 has no chains; v.net's DNS is dns1.com, which s3
// also uses directly.
func chainedGraph() *core.Graph {
	sites := []*core.Site{
		{
			Name: "s1.com", Rank: 1,
			Deps:   map[core.Service]core.Dep{},
			Chains: []core.ChainEdge{{Provider: "v.net", Depth: 1}},
		},
		{
			Name: "s2.com", Rank: 2,
			Deps:   map[core.Service]core.Dep{},
			Chains: []core.ChainEdge{{Provider: "v.net", Depth: 3}},
		},
		{
			Name: "s3.com", Rank: 3,
			Deps: map[core.Service]core.Dep{
				core.DNS: {Class: core.ClassSingleThird, Providers: []string{"dns1.com"}},
			},
		},
	}
	providers := []*core.Provider{
		{Name: "v.net", Service: core.Resource, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"dns1.com"}},
		}},
	}
	return core.NewGraph(sites, providers)
}

func TestSummarize(t *testing.T) {
	s := Summarize(chainedGraph(), 10)
	if s.Sites != 3 || s.SitesWithChains != 2 || s.Edges != 2 || s.Vendors != 1 {
		t.Fatalf("shape = %+v", s)
	}
	if s.MaxDepth != 3 || s.MeanDepth != 2 {
		t.Errorf("depths: max %d mean %v, want 3 and 2", s.MaxDepth, s.MeanDepth)
	}
	wantHist := []DepthBucket{{1, 1}, {2, 0}, {3, 1}}
	if len(s.DepthHist) != 3 || s.DepthHist[0] != wantHist[0] || s.DepthHist[1] != wantHist[1] || s.DepthHist[2] != wantHist[2] {
		t.Errorf("hist = %v, want %v", s.DepthHist, wantHist)
	}
	if len(s.TopImplicit) != 1 {
		t.Fatalf("TopImplicit = %v", s.TopImplicit)
	}
	v := s.TopImplicit[0]
	if v.Provider != "v.net" || v.Sites != 2 || v.MinDepth != 1 || v.MaxDepth != 3 {
		t.Errorf("vendor = %+v", v)
	}
	// Weighted: depth 1 -> 1.0, depth 3 -> 0.25.
	if math.Abs(v.Weighted-1.25) > 1e-9 {
		t.Errorf("weighted = %v, want 1.25", v.Weighted)
	}
	// Implicit C/I of the vendor: both chained sites, critically.
	if v.Concentration != 2 || v.Impact != 2 {
		t.Errorf("vendor implicit C/I = %d/%d, want 2/2", v.Concentration, v.Impact)
	}

	// dns1.com is the comparison headline: 1 direct user (s3), but under
	// the implicit traversal the vendor's chained sites count too.
	var dns1 *ComparisonRow
	for i := range s.Comparison {
		if s.Comparison[i].Provider == "dns1.com" {
			dns1 = &s.Comparison[i]
		}
	}
	if dns1 == nil {
		t.Fatalf("dns1.com missing from comparison: %+v", s.Comparison)
	}
	if dns1.DirectConcentration != 1 || dns1.DirectImpact != 1 {
		t.Errorf("dns1 direct C/I = %d/%d, want 1/1", dns1.DirectConcentration, dns1.DirectImpact)
	}
	if dns1.ImplicitConcentration != 3 || dns1.ImplicitImpact != 3 {
		t.Errorf("dns1 implicit C/I = %d/%d, want 3/3", dns1.ImplicitConcentration, dns1.ImplicitImpact)
	}
}

// TestSummarizeNoChains: a graph without chain edges yields the empty-shape
// summary (the serve layer 404s on it; the report section renders nothing).
func TestSummarizeNoChains(t *testing.T) {
	g := core.NewGraph([]*core.Site{
		{Name: "s.com", Rank: 1, Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"dns1.com"}},
		}},
	}, nil)
	s := Summarize(g, 5)
	if s.SitesWithChains != 0 || s.Edges != 0 || s.Vendors != 0 || len(s.TopImplicit) != 0 || len(s.DepthHist) != 0 {
		t.Errorf("no-chain summary not empty: %+v", s)
	}
	// Degeneracy at the metric level: with no chain edges the implicit
	// traversal IS the direct traversal.
	eng := g.Metrics()
	dc, di := eng.Counts(core.AllIndirect())
	ic, ii := eng.Counts(core.AllImplicit())
	for name, v := range dc {
		if ic[name] != v {
			t.Errorf("C_p(%s): direct %d, implicit %d", name, v, ic[name])
		}
	}
	for name, v := range di {
		if ii[name] != v {
			t.Errorf("I_p(%s): direct %d, implicit %d", name, v, ii[name])
		}
	}
}
