// Package chain models transitive resource-inclusion chains — the paper's
// fourth dependency type. The direct measurement reduces a landing page to
// the flat set of hostnames serving it; "The Chain of Implicit Trust"
// (Ikram et al.) shows the page → third-party script → its CDN → its DNS
// chains behind that set dominate real exposure. This package holds the
// chain configuration (with the repo's strict JSON codec conventions) and
// the summary computed over a measured core.Graph: direct vs implicit
// concentration, the chain-depth histogram, and the top implicitly-trusted
// vendors with depth-weighted exposure.
//
// The graph-side representation lives in core: vendors are ordinary
// Provider nodes with Service == core.Resource, and each site's
// Site.Chains edges record the minimum inclusion depth at which the site
// trusts each vendor. With chains disabled nothing in this package runs
// and the graph is bit-identical to the pre-chain pipeline.
package chain

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"depscope/internal/core"
)

// Config tunes chain synthesis and classification. The zero value is
// invalid; start from Default.
type Config struct {
	// MaxDepth is the deepest resource-inclusion level materialized and
	// classified. 1 means only page-level resources exist — chains
	// contribute nothing and every implicit metric degenerates to its
	// direct counterpart (the property test pins this).
	MaxDepth int `json:"max_depth"`
	// FanOut is the mean number of child resources an intermediate
	// third-party resource loads; the generator draws per-resource counts
	// from a power-law-shaped distribution with this mean.
	FanOut float64 `json:"fan_out"`
	// ThirdPartyRatio is the per-level probability that a child resource
	// is served by a third-party vendor rather than the same host.
	ThirdPartyRatio float64 `json:"third_party_ratio"`
	// Vendors is the size of the synthetic vendor universe (script/font/
	// widget operators that only ever appear inside chains).
	Vendors int `json:"vendors"`
	// Seed drives chain materialization. It is independent of the
	// ecosystem seed: chains are derived per site from a hash of this
	// seed and the site name, so enabling chains never perturbs the
	// generator's RNG stream.
	Seed int64 `json:"seed,omitempty"`
}

// Default returns the stock chain configuration used by -chains.
func Default() Config {
	return Config{MaxDepth: 3, FanOut: 1.5, ThirdPartyRatio: 0.6, Vendors: 24, Seed: 7}
}

// Validate rejects configurations the generator or classifier cannot
// honor.
func (c Config) Validate() error {
	if c.MaxDepth < 1 || c.MaxDepth > 8 {
		return fmt.Errorf("chain: max_depth %d out of range [1,8]", c.MaxDepth)
	}
	if c.MaxDepth == 1 {
		return nil // chains disabled; the remaining knobs are unused
	}
	if !(c.FanOut > 0) || c.FanOut > 8 {
		return fmt.Errorf("chain: fan_out %v out of range (0,8]", c.FanOut)
	}
	if c.ThirdPartyRatio < 0 || c.ThirdPartyRatio > 1 {
		return fmt.Errorf("chain: third_party_ratio %v out of range [0,1]", c.ThirdPartyRatio)
	}
	if c.Vendors < 1 || c.Vendors > 512 {
		return fmt.Errorf("chain: vendors %d out of range [1,512]", c.Vendors)
	}
	return nil
}

// Enabled reports whether the configuration produces any chain edges.
func (c Config) Enabled() bool { return c.MaxDepth > 1 }

// ParseConfig decodes a Config from JSON, rejecting unknown fields and
// trailing bytes (the delta/sweep codec conventions), then validates it.
// Absent fields inherit Default values, so {"max_depth": 4} is a complete
// configuration.
func ParseConfig(r io.Reader) (Config, error) {
	c := Default()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("decode chain config: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return Config{}, fmt.Errorf("decode chain config: trailing data after config object")
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// DepthBucket is one row of the chain-depth histogram.
type DepthBucket struct {
	Depth int `json:"depth"`
	Edges int `json:"edges"`
}

// VendorExposure ranks one implicitly-trusted vendor. Concentration and
// Impact are the implicit metrics (core.AllImplicit traversal); Weighted
// discounts each trusting site by 2^-(depth-1), so a vendor reached only
// through deep chains scores lower than one every page loads directly.
type VendorExposure struct {
	Provider      string  `json:"provider"`
	Concentration int     `json:"concentration"`
	Impact        int     `json:"impact"`
	Sites         int     `json:"sites"`
	Weighted      float64 `json:"weighted_exposure"`
	MinDepth      int     `json:"min_depth"`
	MaxDepth      int     `json:"max_depth"`
}

// ComparisonRow contrasts one direct provider's metrics with and without
// chain edges in the traversal: the implicit columns add sites that reach
// the provider only through a vendor's own DNS/CDN dependencies.
type ComparisonRow struct {
	Provider              string `json:"provider"`
	Service               string `json:"service"`
	DirectConcentration   int    `json:"direct_concentration"`
	ImplicitConcentration int    `json:"implicit_concentration"`
	DirectImpact          int    `json:"direct_impact"`
	ImplicitImpact        int    `json:"implicit_impact"`
}

// Summary is the chain analysis over one measured graph — the payload of
// GET /v1/chains and the data behind the report's implicit-trust section.
type Summary struct {
	Sites           int              `json:"sites"`
	SitesWithChains int              `json:"sites_with_chains"`
	Edges           int              `json:"edges"`
	Vendors         int              `json:"vendors"`
	MaxDepth        int              `json:"max_depth"`
	MeanDepth       float64          `json:"mean_depth"`
	DepthHist       []DepthBucket    `json:"depth_histogram"`
	TopImplicit     []VendorExposure `json:"top_implicit"`
	Comparison      []ComparisonRow  `json:"comparison"`
}

// ParseSummary decodes a Summary under the same strict rules as
// ParseConfig — clients of /v1/chains use it to fail loudly on schema
// drift.
func ParseSummary(r io.Reader) (*Summary, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Summary
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("decode chain summary: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("decode chain summary: trailing data after summary object")
	}
	return &s, nil
}

// Summarize computes the chain analysis for g. topN bounds the vendor
// ranking and the per-service comparison rows; <= 0 means 10. The result
// depends only on the graph — metric maps come from the deterministic
// batch engine, so summaries are identical across worker counts.
func Summarize(g *core.Graph, topN int) *Summary {
	if topN <= 0 {
		topN = 10
	}
	s := &Summary{Sites: len(g.Sites)}

	type vendorAgg struct {
		sites    int
		weighted float64
		min, max int
	}
	agg := make(map[string]*vendorAgg)
	depthEdges := make(map[int]int)
	depthSum := 0
	for _, site := range g.Sites {
		if len(site.Chains) == 0 {
			continue
		}
		s.SitesWithChains++
		for _, e := range site.Chains {
			s.Edges++
			depthSum += e.Depth
			depthEdges[e.Depth]++
			if e.Depth > s.MaxDepth {
				s.MaxDepth = e.Depth
			}
			va := agg[e.Provider]
			if va == nil {
				va = &vendorAgg{min: e.Depth, max: e.Depth}
				agg[e.Provider] = va
			}
			va.sites++
			va.weighted += math.Pow(2, -float64(e.Depth-1))
			if e.Depth < va.min {
				va.min = e.Depth
			}
			if e.Depth > va.max {
				va.max = e.Depth
			}
		}
	}
	s.Vendors = len(agg)
	if s.Edges > 0 {
		s.MeanDepth = float64(depthSum) / float64(s.Edges)
	}
	for d := 1; d <= s.MaxDepth; d++ {
		s.DepthHist = append(s.DepthHist, DepthBucket{Depth: d, Edges: depthEdges[d]})
	}

	eng := g.Metrics()
	implC, implI := eng.Counts(core.AllImplicit())
	for name, va := range agg {
		s.TopImplicit = append(s.TopImplicit, VendorExposure{
			Provider:      name,
			Concentration: implC[name],
			Impact:        implI[name],
			Sites:         va.sites,
			Weighted:      va.weighted,
			MinDepth:      va.min,
			MaxDepth:      va.max,
		})
	}
	sort.Slice(s.TopImplicit, func(i, j int) bool {
		a, b := s.TopImplicit[i], s.TopImplicit[j]
		if a.Impact != b.Impact {
			return a.Impact > b.Impact
		}
		if a.Weighted != b.Weighted {
			return a.Weighted > b.Weighted
		}
		return a.Provider < b.Provider
	})
	if len(s.TopImplicit) > topN {
		s.TopImplicit = s.TopImplicit[:topN]
	}

	// Direct vs implicit: the same providers the direct rankings surface,
	// with their counts recomputed under the chain-aware traversal.
	dirC, dirI := eng.Counts(core.AllIndirect())
	for _, svc := range core.Services {
		for _, ps := range g.TopProviders(svc, core.AllIndirect(), false, topN) {
			s.Comparison = append(s.Comparison, ComparisonRow{
				Provider:              ps.Name,
				Service:               strings.ToLower(svc.String()),
				DirectConcentration:   dirC[ps.Name],
				ImplicitConcentration: implC[ps.Name],
				DirectImpact:          dirI[ps.Name],
				ImplicitImpact:        implI[ps.Name],
			})
		}
	}
	return s
}
