package ecosystem

import (
	"context"
	"reflect"
	"testing"

	"depscope/internal/dnsmsg"
)

const testScale = 2000

func genUniverse(t testing.TB, scale int) *Universe {
	t.Helper()
	u, err := Generate(Options{Scale: scale, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestGenerateDeterministic(t *testing.T) {
	u1 := genUniverse(t, 500)
	u2 := genUniverse(t, 500)
	if len(u1.Sites) != len(u2.Sites) {
		t.Fatalf("site counts differ: %d vs %d", len(u1.Sites), len(u2.Sites))
	}
	for i := range u1.Sites {
		if !reflect.DeepEqual(u1.Sites[i], u2.Sites[i]) {
			t.Fatalf("site %d differs:\n%+v\n%+v", i, u1.Sites[i], u2.Sites[i])
		}
	}
}

func TestGenerateRejectsBadScale(t *testing.T) {
	if _, err := Generate(Options{Scale: 0}); err == nil {
		t.Error("Generate accepted scale 0")
	}
}

func TestListsAndChurn(t *testing.T) {
	u := genUniverse(t, testScale)
	l16, l20 := u.List(Y2016), u.List(Y2020)
	if len(l16) != testScale || len(l20) != testScale {
		t.Fatalf("list lengths: %d / %d", len(l16), len(l20))
	}
	dead := 0
	for i := range l16 {
		if l16[i].Rank2016 != i+1 {
			t.Fatalf("2016 rank mismatch at %d", i)
		}
		if l16[i] != l20[i] {
			dead++
			if l16[i].Rank2020 != 0 || l20[i].Rank2016 != 0 {
				t.Fatalf("churned slot %d not disjoint", i)
			}
		}
	}
	frac := float64(dead) / float64(testScale)
	if frac < 0.02 || frac > 0.06 {
		t.Errorf("dead fraction = %.3f, want ~0.038", frac)
	}
}

// truthDNSStats aggregates ground truth over characterized sites.
func truthDNSStats(u *Universe, snap Snapshot) (third, critical, unchar, private float64) {
	var nChar, nThird, nCrit, nUnchar, nPriv, total int
	for _, s := range u.List(snap) {
		ss := s.Snap[snap]
		if !ss.Exists {
			continue
		}
		total++
		if ss.DNSTrap == TrapUnknown {
			nUnchar++
			continue
		}
		nChar++
		if ss.DNSMode.UsesThird() {
			nThird++
		}
		if ss.DNSMode.Critical() {
			nCrit++
		}
		if ss.DNSMode == DepPrivate {
			nPriv++
		}
	}
	return float64(nThird) / float64(nChar), float64(nCrit) / float64(nChar),
		float64(nUnchar) / float64(total), float64(nPriv) / float64(nChar)
}

func TestGroundTruthMatchesCalibration2020(t *testing.T) {
	u := genUniverse(t, testScale)
	third, critical, unchar, _ := truthDNSStats(u, Y2020)
	// Paper 2020 targets: 89% third-party, 85% critical (band 3 dominates),
	// 18% uncharacterized.
	if third < 0.85 || third > 0.92 {
		t.Errorf("third-party DNS = %.3f, want ~0.88", third)
	}
	if critical < 0.80 || critical > 0.88 {
		t.Errorf("critical DNS = %.3f, want ~0.84", critical)
	}
	if unchar < 0.16 || unchar > 0.20 {
		t.Errorf("uncharacterized = %.3f, want ~0.18", unchar)
	}
}

func TestGroundTruth2016LowerCritical(t *testing.T) {
	u := genUniverse(t, 5000)
	_, crit20, _, _ := truthDNSStats(u, Y2020)
	_, crit16, _, _ := truthDNSStats(u, Y2016)
	if crit16 >= crit20 {
		t.Errorf("2016 critical %.3f should be below 2020 %.3f", crit16, crit20)
	}
	if d := crit20 - crit16; d < 0.02 || d > 0.08 {
		t.Errorf("critical delta = %.3f, want ~0.045", d)
	}
}

func TestGroundTruthCDNAndCA(t *testing.T) {
	u := genUniverse(t, testScale)
	var users, https, stapled, httpsAll int
	n := 0
	for _, s := range u.List(Y2020) {
		ss := s.Snap[Y2020]
		if !ss.Exists {
			continue
		}
		n++
		if ss.CDNMode != DepNone {
			users++
		}
		if ss.HTTPS {
			httpsAll++
			if ss.Stapled {
				stapled++
			}
		}
	}
	_ = https
	if f := float64(users) / float64(n); f < 0.30 || f > 0.37 {
		t.Errorf("CDN users = %.3f, want ~0.33", f)
	}
	if f := float64(httpsAll) / float64(n); f < 0.74 || f > 0.82 {
		t.Errorf("HTTPS = %.3f, want ~0.78", f)
	}
	if f := float64(stapled) / float64(httpsAll); f < 0.17 || f > 0.28 {
		t.Errorf("stapling among HTTPS = %.3f, want ~0.22", f)
	}
}

func TestProviderUniverseCounts(t *testing.T) {
	u := genUniverse(t, 20000)
	cas20 := u.ProvidersOf(SvcCA, Y2020)
	cas16 := u.ProvidersOf(SvcCA, Y2016)
	if len(cas20) < 50 || len(cas20) > 70 {
		t.Errorf("2020 CA count = %d, want ~59", len(cas20))
	}
	if len(cas16) <= len(cas20) {
		t.Errorf("2016 CAs (%d) should outnumber 2020 CAs (%d)", len(cas16), len(cas20))
	}
	cdns20 := u.ProvidersOf(SvcCDN, Y2020)
	cdns16 := u.ProvidersOf(SvcCDN, Y2016)
	if len(cdns20) <= len(cdns16) {
		t.Errorf("2020 CDNs (%d) should outnumber 2016 CDNs (%d)", len(cdns20), len(cdns16))
	}
	// Inter-service dependency counts (Table 6 shape).
	thirdDNS, critDNS := 0, 0
	for _, p := range cdns20 {
		switch p.DNSDeps[Y2020].Mode() {
		case DepSingleThird:
			thirdDNS++
			critDNS++
		case DepMultiThird, DepPrivatePlusThird:
			thirdDNS++
		}
	}
	if thirdDNS < 20 || critDNS < 10 {
		t.Errorf("CDN->DNS third=%d critical=%d, want ~31/15", thirdDNS, critDNS)
	}
}

func TestMaterializeBasics(t *testing.T) {
	u := genUniverse(t, 300)
	w := Materialize(u, Y2020)
	if len(w.Sites) != 300 {
		t.Fatalf("world sites = %d", len(w.Sites))
	}
	r := w.NewResolver()
	ctx := context.Background()
	checked := 0
	for _, s := range u.List(Y2020) {
		ss := s.Snap[Y2020]
		if !ss.Exists {
			continue
		}
		ns, err := r.NS(ctx, s.Domain)
		if err != nil {
			t.Fatalf("NS(%s): %v", s.Domain, err)
		}
		if len(ns) == 0 {
			t.Fatalf("site %s (mode %v) has no NS records", s.Domain, ss.DNSMode)
		}
		if _, ok, err := r.SOA(ctx, s.Domain); err != nil || !ok {
			t.Fatalf("SOA(%s): ok=%v err=%v", s.Domain, ok, err)
		}
		// Every nameserver's SOA must be resolvable too (pipeline needs it).
		for _, h := range ns {
			if _, ok, err := r.SOA(ctx, h); err != nil || !ok {
				t.Fatalf("SOA of ns %s of %s: ok=%v err=%v", h, s.Domain, ok, err)
			}
		}
		if page := w.Page(s.Domain); page == nil || len(page.Hosts()) == 0 {
			t.Fatalf("site %s has no page", s.Domain)
		}
		if ss.HTTPS {
			c := w.Certs.Get(s.Domain)
			if c == nil {
				t.Fatalf("HTTPS site %s has no certificate", s.Domain)
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("certificate of %s: %v", s.Domain, err)
			}
			if len(c.RevocationHosts()) == 0 {
				t.Fatalf("certificate of %s has no revocation endpoints", s.Domain)
			}
		}
		checked++
	}
	if checked != 300 {
		t.Fatalf("checked %d sites", checked)
	}
}

func TestMaterializeCDNWiring(t *testing.T) {
	u := genUniverse(t, 1000)
	w := Materialize(u, Y2020)
	r := w.NewResolver()
	ctx := context.Background()
	verified := 0
	for _, s := range u.List(Y2020) {
		ss := s.Snap[Y2020]
		if !ss.Exists || ss.CDNMode == DepNone || ss.PrivateCDN {
			continue
		}
		page := w.Page(s.Domain)
		foundCDN := map[string]bool{}
		for _, host := range page.Hosts() {
			chain, err := r.CNAMEChain(ctx, host)
			if err != nil {
				continue
			}
			for _, name := range chain {
				for suffix, cdn := range w.CNAMEToCDN {
					if name == suffix+"." || hasSuffixDot(name, suffix) {
						foundCDN[cdn] = true
					}
				}
			}
		}
		for _, want := range ss.CDNProviders {
			if !foundCDN[want] {
				t.Fatalf("site %s: CDN %s not discoverable (found %v)", s.Domain, want, foundCDN)
			}
		}
		verified++
		if verified > 50 {
			break
		}
	}
	if verified == 0 {
		t.Fatal("no CDN sites verified")
	}
}

func hasSuffixDot(name, suffix string) bool {
	full := "." + suffix + "."
	if len(name) < len(full) {
		return false
	}
	return name[len(name)-len(full):] == full
}

func TestSOATrapWiring(t *testing.T) {
	u := genUniverse(t, 1000)
	w := Materialize(u, Y2020)
	r := w.NewResolver()
	ctx := context.Background()
	found := false
	for _, s := range u.List(Y2020) {
		ss := s.Snap[Y2020]
		if !ss.Exists || ss.DNSTrap != TrapSOAEqual {
			continue
		}
		siteSOA, ok, err := r.SOA(ctx, s.Domain)
		if err != nil || !ok {
			t.Fatal(err)
		}
		ns, _ := r.NS(ctx, s.Domain)
		nsSOA, ok, err := r.SOA(ctx, ns[0])
		if err != nil || !ok {
			t.Fatal(err)
		}
		if dnsmsg.CanonicalName(siteSOA.MName) != dnsmsg.CanonicalName(nsSOA.MName) {
			t.Fatalf("SOA-equal trap site %s: MNames differ (%s vs %s)", s.Domain, siteSOA.MName, nsSOA.MName)
		}
		found = true
		break
	}
	if !found {
		t.Fatal("no SOA-equal trap site found")
	}
}

func TestBandOf(t *testing.T) {
	tests := []struct{ rank, scale, want int }{
		{1, 100000, 0}, {100, 100000, 0}, {101, 100000, 1},
		{1000, 100000, 1}, {1001, 100000, 2}, {10000, 100000, 2},
		{10001, 100000, 3}, {100000, 100000, 3},
		{1, 2000, 0}, {2, 2000, 0}, {3, 2000, 1}, {20, 2000, 1}, {21, 2000, 2},
	}
	for _, tt := range tests {
		if got := BandOf(tt.rank, tt.scale); got != tt.want {
			t.Errorf("BandOf(%d, %d) = %d, want %d", tt.rank, tt.scale, got, tt.want)
		}
	}
}

func TestDepModeHelpers(t *testing.T) {
	if !DepSingleThird.Critical() || DepMultiThird.Critical() {
		t.Error("Critical() wrong")
	}
	if !DepMultiThird.UsesThird() || DepPrivate.UsesThird() {
		t.Error("UsesThird() wrong")
	}
	if DepPrivatePlusThird.String() != "private+third" {
		t.Error("String() wrong")
	}
}

func BenchmarkGenerate10K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Options{Scale: 10000, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaterialize5K(b *testing.B) {
	u, err := Generate(Options{Scale: 5000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Materialize(u, Y2020)
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	u1 := genUniverse(t, 400)
	u2 := genUniverse(t, 400)
	w1 := Materialize(u1, Y2020)
	w2 := Materialize(u2, Y2020)
	if !reflect.DeepEqual(w1.Sites, w2.Sites) {
		t.Fatal("site lists differ")
	}
	if !reflect.DeepEqual(w1.CNAMEToCDN, w2.CNAMEToCDN) {
		t.Fatal("CDN maps differ")
	}
	// Spot-check a few zones record-for-record.
	for _, origin := range []string{w1.Sites[0] + ".", "cloudflare.com.", "digicert.com."} {
		z1, z2 := w1.Zones.Zone(origin), w2.Zones.Zone(origin)
		if z1 == nil || z2 == nil {
			t.Fatalf("zone %s missing", origin)
		}
		if !reflect.DeepEqual(z1.AllRecords(), z2.AllRecords()) {
			t.Fatalf("zone %s differs between materializations", origin)
		}
	}
}
