package ecosystem

import (
	"testing"
)

// These tests guard the calibration tables themselves: every provider a
// share table references must exist as a provider of the right service in
// the right snapshot, and the inter-service dependency lists must point at
// existing DNS/CDN providers. A typo in calibration.go or providers.go
// would otherwise surface as a confusing panic deep inside materialization.

func calProviders(t *testing.T) (*Calibration, *Universe) {
	t.Helper()
	u, err := Generate(Options{Scale: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return DefaultCalibration(), u
}

func checkShares(t *testing.T, u *Universe, shares []Share, svc Service, snap Snapshot, table string) {
	t.Helper()
	for _, s := range shares {
		p := u.Provider(s.Provider)
		if p == nil {
			t.Errorf("%s: provider %q does not exist", table, s.Provider)
			continue
		}
		if p.Service != svc {
			t.Errorf("%s: provider %q is %v, want %v", table, s.Provider, p.Service, svc)
		}
		exists := p.Exists2020
		if snap == Y2016 {
			exists = p.Exists2016
		}
		if !exists {
			t.Errorf("%s: provider %q does not exist in %s", table, s.Provider, snap)
		}
		if s.Weight <= 0 {
			t.Errorf("%s: provider %q has non-positive weight", table, s.Provider)
		}
	}
}

func TestCalibrationSharesReferenceRealProviders(t *testing.T) {
	cal, u := calProviders(t)
	for _, snap := range []Snapshot{Y2016, Y2020} {
		dns := cal.DNS[snap]
		checkShares(t, u, dns.ImpactShares, SvcDNS, snap, "DNS impact "+snap.String())
		checkShares(t, u, dns.RedundantShares, SvcDNS, snap, "DNS redundant "+snap.String())
		checkShares(t, u, dns.Band0Redundant, SvcDNS, snap, "DNS band0 "+snap.String())
		cdn := cal.CDN[snap]
		checkShares(t, u, cdn.Shares, SvcCDN, snap, "CDN shares "+snap.String())
		checkShares(t, u, cdn.Band0Shares, SvcCDN, snap, "CDN band0 "+snap.String())
		ca := cal.CA[snap]
		checkShares(t, u, ca.Shares, SvcCA, snap, "CA shares "+snap.String())
		for name := range ca.StapleRate {
			if u.Provider(name) == nil {
				t.Errorf("CA staple rate references unknown provider %q", name)
			}
		}
	}
}

func TestProviderDepsReferenceRealProviders(t *testing.T) {
	_, u := calProviders(t)
	for name, p := range u.Providers {
		for snap, dep := range p.DNSDeps {
			for _, d := range dep.Third {
				dp := u.Provider(d)
				if dp == nil || dp.Service != SvcDNS {
					t.Errorf("%s: DNS dep %q invalid", name, d)
					continue
				}
				if (snap == Y2016 && p.Exists2016 && !dp.Exists2016) ||
					(snap == Y2020 && p.Exists2020 && !dp.Exists2020) {
					t.Errorf("%s: DNS dep %q absent in %s", name, d, snap)
				}
			}
		}
		for snap, dep := range p.CDNDeps {
			for _, d := range dep.Third {
				dp := u.Provider(d)
				if dp == nil || dp.Service != SvcCDN {
					t.Errorf("%s: CDN dep %q invalid", name, d)
					continue
				}
				if (snap == Y2016 && p.Exists2016 && !dp.Exists2016) ||
					(snap == Y2020 && p.Exists2020 && !dp.Exists2020) {
					t.Errorf("%s: CDN dep %q absent in %s", name, d, snap)
				}
			}
		}
	}
}

func TestModeMixesSumToOne(t *testing.T) {
	cal := DefaultCalibration()
	for _, snap := range []Snapshot{Y2016, Y2020} {
		for b, mix := range cal.DNS[snap].Mix {
			sum := mix.Private + mix.Single + mix.Multi + mix.Mixed
			if sum < 0.99 || sum > 1.01 {
				t.Errorf("DNS mix %s band %d sums to %.3f", snap, b, sum)
			}
		}
	}
}

func TestSiteSnapshotsConsistent(t *testing.T) {
	_, u := calProviders(t)
	for _, snap := range []Snapshot{Y2016, Y2020} {
		for _, s := range u.List(snap) {
			ss := s.Snap[snap]
			if !ss.Exists {
				continue
			}
			switch ss.DNSMode {
			case DepPrivate:
				if len(ss.DNSProviders) != 0 {
					t.Fatalf("%s %s: private with providers %v", s.Domain, snap, ss.DNSProviders)
				}
			case DepSingleThird, DepPrivatePlusThird:
				if len(ss.DNSProviders) != 1 {
					t.Fatalf("%s %s: %v with providers %v", s.Domain, snap, ss.DNSMode, ss.DNSProviders)
				}
			case DepMultiThird:
				if len(ss.DNSProviders) != 2 || ss.DNSProviders[0] == ss.DNSProviders[1] {
					t.Fatalf("%s %s: multi with providers %v", s.Domain, snap, ss.DNSProviders)
				}
			default:
				t.Fatalf("%s %s: DNS mode %v", s.Domain, snap, ss.DNSMode)
			}
			if ss.CDNMode == DepSingleThird && len(ss.CDNProviders) != 1 {
				t.Fatalf("%s %s: CDN single with %v", s.Domain, snap, ss.CDNProviders)
			}
			if ss.CDNMode == DepMultiThird && len(ss.CDNProviders) != 2 {
				t.Fatalf("%s %s: CDN multi with %v", s.Domain, snap, ss.CDNProviders)
			}
			if ss.PrivateCDN && ss.CDNMode != DepPrivate {
				t.Fatalf("%s %s: private CDN flag with mode %v", s.Domain, snap, ss.CDNMode)
			}
			if ss.HTTPS && !ss.PrivateCA && ss.CA == "" {
				t.Fatalf("%s %s: HTTPS third-party site without CA", s.Domain, snap)
			}
			if !ss.HTTPS && (ss.CA != "" || ss.Stapled) {
				t.Fatalf("%s %s: CA fields without HTTPS", s.Domain, snap)
			}
			// Alias-based traps require SAN evidence, hence HTTPS.
			if (ss.CDNTrap == TrapPrivateCDNAlias || ss.CDNTrap == TrapPrivateCDNForeignSOA ||
				ss.DNSTrap == TrapVanityNS) && !ss.HTTPS {
				t.Fatalf("%s %s: alias trap on non-HTTPS site", s.Domain, snap)
			}
		}
	}
}

func TestTrapProvidersStayBelowThreshold(t *testing.T) {
	u, err := Generate(Options{Scale: 20000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, snap := range []Snapshot{Y2016, Y2020} {
		counts := make(map[string]int)
		for _, s := range u.List(snap) {
			ss := s.Snap[snap]
			if ss.Exists && ss.DNSTrap == TrapUnknown {
				counts[ss.DNSProviders[0]]++
			}
		}
		for p, n := range counts {
			if n >= 50 {
				t.Errorf("%s: trap provider %s serves %d sites (>= concentration threshold)", snap, p, n)
			}
		}
	}
}
