package ecosystem

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"depscope/internal/chain"
	"depscope/internal/measure"
)

// These tests guard the calibration tables themselves: every provider a
// share table references must exist as a provider of the right service in
// the right snapshot, and the inter-service dependency lists must point at
// existing DNS/CDN providers. A typo in calibration.go or providers.go
// would otherwise surface as a confusing panic deep inside materialization.

func calProviders(t *testing.T) (*Calibration, *Universe) {
	t.Helper()
	u, err := Generate(Options{Scale: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return DefaultCalibration(), u
}

func checkShares(t *testing.T, u *Universe, shares []Share, svc Service, snap Snapshot, table string) {
	t.Helper()
	for _, s := range shares {
		p := u.Provider(s.Provider)
		if p == nil {
			t.Errorf("%s: provider %q does not exist", table, s.Provider)
			continue
		}
		if p.Service != svc {
			t.Errorf("%s: provider %q is %v, want %v", table, s.Provider, p.Service, svc)
		}
		exists := p.Exists2020
		if snap == Y2016 {
			exists = p.Exists2016
		}
		if !exists {
			t.Errorf("%s: provider %q does not exist in %s", table, s.Provider, snap)
		}
		if s.Weight <= 0 {
			t.Errorf("%s: provider %q has non-positive weight", table, s.Provider)
		}
	}
}

func TestCalibrationSharesReferenceRealProviders(t *testing.T) {
	cal, u := calProviders(t)
	for _, snap := range []Snapshot{Y2016, Y2020} {
		dns := cal.DNS[snap]
		checkShares(t, u, dns.ImpactShares, SvcDNS, snap, "DNS impact "+snap.String())
		checkShares(t, u, dns.RedundantShares, SvcDNS, snap, "DNS redundant "+snap.String())
		checkShares(t, u, dns.Band0Redundant, SvcDNS, snap, "DNS band0 "+snap.String())
		cdn := cal.CDN[snap]
		checkShares(t, u, cdn.Shares, SvcCDN, snap, "CDN shares "+snap.String())
		checkShares(t, u, cdn.Band0Shares, SvcCDN, snap, "CDN band0 "+snap.String())
		ca := cal.CA[snap]
		checkShares(t, u, ca.Shares, SvcCA, snap, "CA shares "+snap.String())
		for name := range ca.StapleRate {
			if u.Provider(name) == nil {
				t.Errorf("CA staple rate references unknown provider %q", name)
			}
		}
	}
}

func TestProviderDepsReferenceRealProviders(t *testing.T) {
	_, u := calProviders(t)
	for name, p := range u.Providers {
		for snap, dep := range p.DNSDeps {
			for _, d := range dep.Third {
				dp := u.Provider(d)
				if dp == nil || dp.Service != SvcDNS {
					t.Errorf("%s: DNS dep %q invalid", name, d)
					continue
				}
				if (snap == Y2016 && p.Exists2016 && !dp.Exists2016) ||
					(snap == Y2020 && p.Exists2020 && !dp.Exists2020) {
					t.Errorf("%s: DNS dep %q absent in %s", name, d, snap)
				}
			}
		}
		for snap, dep := range p.CDNDeps {
			for _, d := range dep.Third {
				dp := u.Provider(d)
				if dp == nil || dp.Service != SvcCDN {
					t.Errorf("%s: CDN dep %q invalid", name, d)
					continue
				}
				if (snap == Y2016 && p.Exists2016 && !dp.Exists2016) ||
					(snap == Y2020 && p.Exists2020 && !dp.Exists2020) {
					t.Errorf("%s: CDN dep %q absent in %s", name, d, snap)
				}
			}
		}
	}
}

func TestModeMixesSumToOne(t *testing.T) {
	cal := DefaultCalibration()
	for _, snap := range []Snapshot{Y2016, Y2020} {
		for b, mix := range cal.DNS[snap].Mix {
			sum := mix.Private + mix.Single + mix.Multi + mix.Mixed
			if sum < 0.99 || sum > 1.01 {
				t.Errorf("DNS mix %s band %d sums to %.3f", snap, b, sum)
			}
		}
	}
}

func TestSiteSnapshotsConsistent(t *testing.T) {
	_, u := calProviders(t)
	for _, snap := range []Snapshot{Y2016, Y2020} {
		for _, s := range u.List(snap) {
			ss := s.Snap[snap]
			if !ss.Exists {
				continue
			}
			switch ss.DNSMode {
			case DepPrivate:
				if len(ss.DNSProviders) != 0 {
					t.Fatalf("%s %s: private with providers %v", s.Domain, snap, ss.DNSProviders)
				}
			case DepSingleThird, DepPrivatePlusThird:
				if len(ss.DNSProviders) != 1 {
					t.Fatalf("%s %s: %v with providers %v", s.Domain, snap, ss.DNSMode, ss.DNSProviders)
				}
			case DepMultiThird:
				if len(ss.DNSProviders) != 2 || ss.DNSProviders[0] == ss.DNSProviders[1] {
					t.Fatalf("%s %s: multi with providers %v", s.Domain, snap, ss.DNSProviders)
				}
			default:
				t.Fatalf("%s %s: DNS mode %v", s.Domain, snap, ss.DNSMode)
			}
			if ss.CDNMode == DepSingleThird && len(ss.CDNProviders) != 1 {
				t.Fatalf("%s %s: CDN single with %v", s.Domain, snap, ss.CDNProviders)
			}
			if ss.CDNMode == DepMultiThird && len(ss.CDNProviders) != 2 {
				t.Fatalf("%s %s: CDN multi with %v", s.Domain, snap, ss.CDNProviders)
			}
			if ss.PrivateCDN && ss.CDNMode != DepPrivate {
				t.Fatalf("%s %s: private CDN flag with mode %v", s.Domain, snap, ss.CDNMode)
			}
			if ss.HTTPS && !ss.PrivateCA && ss.CA == "" {
				t.Fatalf("%s %s: HTTPS third-party site without CA", s.Domain, snap)
			}
			if !ss.HTTPS && (ss.CA != "" || ss.Stapled) {
				t.Fatalf("%s %s: CA fields without HTTPS", s.Domain, snap)
			}
			// Alias-based traps require SAN evidence, hence HTTPS.
			if (ss.CDNTrap == TrapPrivateCDNAlias || ss.CDNTrap == TrapPrivateCDNForeignSOA ||
				ss.DNSTrap == TrapVanityNS) && !ss.HTTPS {
				t.Fatalf("%s %s: alias trap on non-HTTPS site", s.Domain, snap)
			}
		}
	}
}

// chunkedWorld drives the streaming materializer to completion — zones in
// batches, then pages in batches, without releasing them — so the result can
// be compared against the monolithic Materialize output.
func chunkedWorld(t *testing.T, u *Universe, snap Snapshot, cfg *chain.Config, batch int) *World {
	t.Helper()
	c := NewChunked(u, snap)
	if cfg != nil {
		c.EnableChains(*cfg)
	}
	n := c.Len()
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		c.AddSites(lo, hi)
	}
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		c.MaterializePages(lo, hi)
	}
	return c.World()
}

// TestChunkedMatchesMonolithic pins the streaming materializer to the
// monolithic one: for the same universe, a chunked world with every batch
// materialized has the identical ranked site list and identical per-site
// content fingerprints (zones, certificates, pages, chain growth, CNAME→CDN
// map — everything the measurement can observe), for both snapshots and
// across awkward batch sizes.
func TestChunkedMatchesMonolithic(t *testing.T) {
	u, err := Generate(Options{Scale: 400, Seed: 2020})
	if err != nil {
		t.Fatal(err)
	}
	cfg := chain.Default()
	for _, snap := range []Snapshot{Y2016, Y2020} {
		mono := Materialize(u, snap)
		MaterializeChains(u, mono, cfg)
		want := mono.SiteFingerprints()
		for _, batch := range []int{1000, 64, 31} {
			w := chunkedWorld(t, u, snap, &cfg, batch)
			if len(w.Sites) != len(mono.Sites) {
				t.Fatalf("%s batch %d: %d sites, want %d", snap, batch, len(w.Sites), len(mono.Sites))
			}
			for i := range w.Sites {
				if w.Sites[i] != mono.Sites[i] {
					t.Fatalf("%s batch %d: site order diverges at %d: %s vs %s",
						snap, batch, i, w.Sites[i], mono.Sites[i])
				}
			}
			got := w.SiteFingerprints()
			mismatches := 0
			for site, fp := range want {
				if got[site] != fp {
					t.Errorf("%s batch %d: fingerprint mismatch for %s", snap, batch, site)
					if mismatches++; mismatches > 3 {
						t.Fatal("too many fingerprint mismatches")
					}
				}
			}
		}
	}
}

// TestStreamedMeasurementWorkerDeterminism pins worker-count independence on
// the full streaming path (chunked materialization + batched measurement
// with page release): the measurement output is a pure function of the
// universe, not of scheduling.
func TestStreamedMeasurementWorkerDeterminism(t *testing.T) {
	u, err := Generate(Options{Scale: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := chain.Default()
	hashRes := func(res *measure.Results) string {
		view := struct {
			Sites           []measure.SiteResult
			NSConcentration map[string]int
			CDNToDNS        map[string]measure.ProviderDep
			CAToDNS         map[string]measure.ProviderDep
			CAToCDN         map[string]measure.ProviderDep
			ResourceToDNS   map[string]measure.ProviderDep
			ResourceToCDN   map[string]measure.ProviderDep
		}{res.Sites, res.NSConcentration, res.CDNToDNS, res.CAToDNS, res.CAToCDN,
			res.ResourceToDNS, res.ResourceToCDN}
		b, err := json.Marshal(view)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(b)
		return hex.EncodeToString(sum[:])
	}

	const batch = 75
	var want string
	for i, workers := range []int{1, 6} {
		c := NewChunked(u, Y2020)
		c.EnableChains(cfg)
		w := c.World()
		st, err := measure.NewStream(c.SiteNames(), measure.Config{
			Resolver: w.NewResolver(),
			Certs:    w.Certs,
			Pages:    w,
			CDNMap:   measure.CDNMap(w.CNAMEToCDN),
			Workers:  workers,
			Chains:   &cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		n := c.Len()
		for lo := 0; lo < n; lo += batch {
			hi := lo + batch
			if hi > n {
				hi = n
			}
			c.AddSites(lo, hi)
			if err := st.ResolveBatch(ctx, lo, hi); err != nil {
				t.Fatal(err)
			}
		}
		st.Seal()
		for lo := 0; lo < n; lo += batch {
			hi := lo + batch
			if hi > n {
				hi = n
			}
			c.MaterializePages(lo, hi)
			if err := st.MeasureBatch(ctx, lo, hi); err != nil {
				t.Fatal(err)
			}
			c.ReleasePages(lo, hi)
		}
		res, err := st.Finish(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got := hashRes(res)
		if i == 0 {
			want = got
		} else if got != want {
			t.Errorf("workers=%d: streamed measurement hash %s != workers=1 %s", workers, got, want)
		}
	}
}

func TestTrapProvidersStayBelowThreshold(t *testing.T) {
	u, err := Generate(Options{Scale: 20000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, snap := range []Snapshot{Y2016, Y2020} {
		counts := make(map[string]int)
		for _, s := range u.List(snap) {
			ss := s.Snap[snap]
			if ss.Exists && ss.DNSTrap == TrapUnknown {
				counts[ss.DNSProviders[0]]++
			}
		}
		for p, n := range counts {
			if n >= 50 {
				t.Errorf("%s: trap provider %s serves %d sites (>= concentration threshold)", snap, p, n)
			}
		}
	}
}
