package ecosystem

import (
	"strings"

	"depscope/internal/certs"
	"depscope/internal/dnsmsg"
	"depscope/internal/dnszone"
	"depscope/internal/resolver"
	"depscope/internal/webpage"
)

// World is a fully materialized snapshot: everything the measurement
// pipeline may interrogate. Ground truth stays behind in the Universe.
type World struct {
	Snapshot Snapshot
	Scale    int
	// Sites is the ranked site list (rank 1 first).
	Sites []string
	// Zones answers every DNS question of the snapshot.
	Zones *dnszone.Store
	// Certs holds the certificate served by each HTTPS site.
	Certs *certs.Store
	// Pages holds each site's landing page.
	Pages map[string]*webpage.Page
	// CNAMEToCDN is the self-populated CNAME-suffix → CDN-name map of the
	// paper's §3.3, including the known private CDNs.
	CNAMEToCDN map[string]string
	// Streamed marks a world built by the chunked/streaming path: landing
	// pages are materialized per batch and released after measurement, so
	// Pages must not be relied on after the run. Consumers that re-measure
	// (ablations, sweeps) check this flag and fail with a clear error
	// instead of silently measuring a page-less world.
	Streamed bool
}

// Page returns the landing page of site, or nil.
func (w *World) Page(site string) *webpage.Page { return w.Pages[site] }

// NewResolver returns a caching resolver answering from this world's zones
// in-process.
func (w *World) NewResolver() *resolver.Resolver {
	return resolver.New(resolver.ZoneDirect{Store: w.Zones})
}

// externalDomains are shared third-party content hosts referenced from
// landing pages; they are not infrastructure providers and the pipeline
// must classify them as external resources and skip them.
var externalDomains = []string{"ext-analytics.com", "ext-fonts.net", "ext-widgets.org"}

// Materialize renders the snapshot's artifacts from the universe's ground
// truth: provider zones, site zones, certificates, landing pages and the
// CNAME→CDN map.
func Materialize(u *Universe, snap Snapshot) *World {
	w := &World{
		Snapshot:   snap,
		Scale:      u.Scale,
		Zones:      dnszone.NewStore(),
		Certs:      certs.NewStore(),
		Pages:      make(map[string]*webpage.Page),
		CNAMEToCDN: make(map[string]string),
	}
	m := &materializer{u: u, w: w, snap: snap}
	m.providerZones()
	m.externalZones()
	for _, site := range u.List(snap) {
		if site.Snap[snap].Exists {
			m.site(site)
			w.Sites = append(w.Sites, site.Domain)
		}
	}
	return w
}

type materializer struct {
	u    *Universe
	w    *World
	snap Snapshot
}

func (m *materializer) exists(p *Provider) bool {
	if m.snap == Y2016 {
		return p.Exists2016
	}
	return p.Exists2020
}

// nsHosts returns the nameserver host names a provider exposes.
func nsHosts(p *Provider) []string {
	var out []string
	for _, d := range p.NSDomains {
		out = append(out, "ns1."+d+".", "ns2."+d+".")
	}
	return out
}

// soaFor builds a provider zone's SOA: the MName is the provider's first
// nameserver so that alias NS domains (Alibaba) share one MName.
func soaFor(p *Provider) dnsmsg.SOAData {
	return dnsmsg.SOAData{
		MName:  "ns1." + p.NSDomains[0] + ".",
		RName:  "ops." + p.NSDomains[0] + ".",
		Serial: 2020010101, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
	}
}

// dnsDep returns the provider's DNS arrangement in this snapshot.
func (m *materializer) dnsDep(p *Provider) ProviderDNS {
	if d, ok := p.DNSDeps[m.snap]; ok {
		return d
	}
	return ProviderDNS{Private: true}
}

// cdnDep returns the provider's CDN arrangement in this snapshot.
func (m *materializer) cdnDep(p *Provider) ProviderCDN {
	if d, ok := p.CDNDeps[m.snap]; ok {
		return d
	}
	return ProviderCDN{}
}

// zoneNS installs NS records (and glue A records for in-zone hosts) for an
// arrangement: private names under ownDomain plus each third provider's
// hosts.
func (m *materializer) zoneNS(z *dnszone.Zone, origin, ownDomain string, dep ProviderDNS) {
	addNS := func(host string) {
		z.MustAdd(dnsmsg.Record{Name: origin, Type: dnsmsg.TypeNS, TTL: 86400, Target: host})
	}
	if dep.Private || len(dep.Third) == 0 {
		for _, h := range []string{"ns1." + ownDomain + ".", "ns2." + ownDomain + "."} {
			addNS(h)
			if dnszone.InBailiwick(h, z.Origin) {
				z.MustAdd(dnsmsg.Record{Name: h, Type: dnsmsg.TypeA, TTL: 86400, IP: []byte{198, 51, 100, 53}})
			}
		}
	}
	for _, depName := range dep.Third {
		dp := m.u.Providers[depName]
		if dp == nil {
			panic("ecosystem: unknown DNS dependency " + depName)
		}
		for _, h := range nsHosts(dp) {
			addNS(h)
		}
	}
}

// providerZones materializes all provider infrastructure.
func (m *materializer) providerZones() {
	for _, name := range m.u.providerOrder {
		p := m.u.Providers[name]
		if !m.exists(p) {
			continue
		}
		switch p.Service {
		case SvcDNS:
			m.dnsProviderZones(p)
		case SvcCDN:
			m.cdnProviderZones(p)
		case SvcCA:
			m.caProviderZones(p)
		}
	}
}

func (m *materializer) dnsProviderZones(p *Provider) {
	for _, d := range p.NSDomains {
		z := dnszone.NewZone(d+".", soaFor(p))
		z.MustAdd(dnsmsg.Record{Name: d + ".", Type: dnsmsg.TypeNS, TTL: 86400, Target: "ns1." + d + "."})
		z.MustAdd(dnsmsg.Record{Name: d + ".", Type: dnsmsg.TypeNS, TTL: 86400, Target: "ns2." + d + "."})
		z.MustAdd(dnsmsg.Record{Name: "ns1." + d + ".", Type: dnsmsg.TypeA, TTL: 86400, IP: []byte{203, 0, 113, 10}})
		z.MustAdd(dnsmsg.Record{Name: "ns2." + d + ".", Type: dnsmsg.TypeA, TTL: 86400, IP: []byte{203, 0, 113, 11}})
		m.w.Zones.AddZone(z)
	}
}

// suffixZoneOrigin maps a CNAME suffix to its zone origin (its registrable
// domain part — suffixes may have extra labels like cdn.cloudflare.net).
func suffixZoneOrigin(suffix string) string {
	labels := strings.Split(suffix, ".")
	if len(labels) <= 2 {
		return suffix
	}
	return strings.Join(labels[len(labels)-2:], ".")
}

func (m *materializer) cdnProviderZones(p *Provider) {
	origin := suffixZoneOrigin(p.CNAMESuffix) + "."
	soa := soaFor(p)
	dep := m.dnsDep(p)
	z := dnszone.NewZone(origin, soa)
	m.zoneNS(z, origin, p.Domain, dep)
	z.MustAdd(dnsmsg.Record{Name: origin, Type: dnsmsg.TypeA, TTL: 300, IP: []byte{198, 51, 100, 80}})
	z.MustAdd(dnsmsg.Record{Name: "*." + p.CNAMESuffix + ".", Type: dnsmsg.TypeA, TTL: 60, IP: []byte{198, 51, 100, 81}})
	m.w.Zones.AddZone(z)
	m.w.CNAMEToCDN[p.CNAMESuffix] = p.Name
	// The provider's corporate domain, when distinct from the suffix zone.
	if p.Domain != suffixZoneOrigin(p.CNAMESuffix) {
		cz := dnszone.NewZone(p.Domain+".", soaFor(p))
		m.zoneNS(cz, p.Domain+".", p.Domain, dep)
		m.w.Zones.AddZone(cz)
	}
}

func (m *materializer) caProviderZones(p *Provider) {
	soa := soaFor(p)
	dep := m.dnsDep(p)
	cdn := m.cdnDep(p)
	z := dnszone.NewZone(p.Domain+".", soa)
	m.zoneNS(z, p.Domain+".", p.Domain, dep)
	for _, host := range []string{p.OCSPHost, p.CDPHost} {
		name := host + "."
		switch {
		case len(cdn.Third) > 0:
			cp := m.u.Providers[cdn.Third[0]]
			z.MustAdd(dnsmsg.Record{Name: name, Type: dnsmsg.TypeCNAME, TTL: 300,
				Target: "rev-" + slugOf(p.Name) + "." + cp.CNAMESuffix + "."})
		case cdn.Private:
			// Private CDN: CNAME into the CA's own edge namespace, which
			// shares the zone's SOA.
			edge := "edge-cdn." + p.Domain + "."
			z.MustAdd(dnsmsg.Record{Name: name, Type: dnsmsg.TypeCNAME, TTL: 300, Target: edge})
			z.MustAdd(dnsmsg.Record{Name: edge, Type: dnsmsg.TypeA, TTL: 300, IP: []byte{198, 51, 100, 90}})
			m.w.CNAMEToCDN["edge-cdn."+p.Domain] = p.Name + " private CDN"
		default:
			z.MustAdd(dnsmsg.Record{Name: name, Type: dnsmsg.TypeA, TTL: 300, IP: []byte{198, 51, 100, 91}})
		}
	}
	m.w.Zones.AddZone(z)
}

func (m *materializer) externalZones() {
	for _, d := range externalDomains {
		z := dnszone.NewZone(d+".", dnsmsg.SOAData{
			MName: "ns1." + d + ".", RName: "ops." + d + ".",
			Serial: 1, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
		})
		z.MustAdd(dnsmsg.Record{Name: d + ".", Type: dnsmsg.TypeNS, TTL: 86400, Target: "ns1." + d + "."})
		z.MustAdd(dnsmsg.Record{Name: "ns1." + d + ".", Type: dnsmsg.TypeA, TTL: 86400, IP: []byte{203, 0, 113, 99}})
		z.MustAdd(dnsmsg.Record{Name: "*." + d + ".", Type: dnsmsg.TypeA, TTL: 300, IP: []byte{203, 0, 113, 98}})
		m.w.Zones.AddZone(z)
	}
}

// pkiDomain is the brand-alias PKI domain of a private-CA site.
func pkiDomain(site *Site) string {
	base := site.Domain
	if i := strings.IndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return base + "-pki.net"
}

// site materializes one website: its zone(s), certificate and landing page.
// The zone and page halves are separable so the chunked path (chunked.go)
// can materialize all zones in one sweep and pages batch-by-batch; calling
// them back to back here produces a world byte-identical to the historical
// single-pass materialization (pinned by the invariants tests).
func (m *materializer) site(s *Site) {
	m.siteZone(s)
	m.sitePage(s)
}

// siteInternalHosts returns the site-owned hosts its landing page loads
// assets from — the coupling point between the zone half (which wires the
// hosts into DNS) and the page half (which references them). It is a pure
// function of the snapshot state so both halves compute identical lists.
func siteInternalHosts(s *Site, ss *SiteSnapshot) []string {
	d := s.Domain
	hosts := []string{"www." + d}
	if ss.CDNMode != DepNone {
		hosts = append(hosts, "static."+d)
	}
	switch {
	case ss.PrivateCDN && (ss.CDNTrap == TrapPrivateCDNAlias || ss.CDNTrap == TrapPrivateCDNForeignSOA):
		hosts = append(hosts, "img."+s.AliasDomain())
	case ss.PrivateCDN:
		hosts = append(hosts, "cdn."+d)
	}
	return hosts
}

// siteZone materializes one website's DNS zone(s), CNAME→CDN entries and
// certificate — everything except the landing page.
func (m *materializer) siteZone(s *Site) {
	ss := s.Snap[m.snap]
	d := s.Domain
	origin := d + "."

	// --- SOA selection per the trap semantics (see assign.go) ---
	soa := dnsmsg.SOAData{
		MName: "ns1." + d + ".", RName: "hostmaster." + d + ".",
		Serial: 2020010101, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
	}
	switch ss.DNSTrap {
	case TrapSOAEqual, TrapUnknown:
		// The zone's declared master is the provider's nameserver: SOA
		// comparison against the provider's own zone then matches.
		p := m.u.Providers[ss.DNSProviders[0]]
		soa.MName = "ns1." + p.NSDomains[0] + "."
	case TrapVanityNS:
		soa.MName = "ns1." + s.AliasDomain() + "."
	}
	z := dnszone.NewZone(origin, soa)

	// --- NS records ---
	switch ss.DNSMode {
	case DepPrivate:
		nsDomain := d
		if ss.DNSTrap == TrapVanityNS {
			nsDomain = s.AliasDomain()
		}
		for _, h := range []string{"ns1." + nsDomain + ".", "ns2." + nsDomain + "."} {
			z.MustAdd(dnsmsg.Record{Name: origin, Type: dnsmsg.TypeNS, TTL: 86400, Target: h})
			if dnszone.InBailiwick(h, origin) {
				z.MustAdd(dnsmsg.Record{Name: h, Type: dnsmsg.TypeA, TTL: 86400, IP: []byte{198, 51, 100, 53}})
			}
		}
	case DepPrivatePlusThird:
		z.MustAdd(dnsmsg.Record{Name: origin, Type: dnsmsg.TypeNS, TTL: 86400, Target: "ns1." + d + "."})
		z.MustAdd(dnsmsg.Record{Name: "ns1." + d + ".", Type: dnsmsg.TypeA, TTL: 86400, IP: []byte{198, 51, 100, 53}})
		fallthrough
	case DepSingleThird, DepMultiThird:
		for _, pname := range ss.DNSProviders {
			p := m.u.Providers[pname]
			if p == nil {
				panic("ecosystem: site " + d + " uses unknown provider " + pname)
			}
			for _, h := range nsHosts(p) {
				z.MustAdd(dnsmsg.Record{Name: origin, Type: dnsmsg.TypeNS, TTL: 86400, Target: h})
			}
		}
	}

	z.MustAdd(dnsmsg.Record{Name: origin, Type: dnsmsg.TypeA, TTL: 300, IP: []byte{192, 0, 2, 1}})

	// --- CDN wiring for the page's internal hosts ---
	internalHosts := siteInternalHosts(s, &ss)
	needsAlias := ss.DNSTrap == TrapVanityNS ||
		ss.CDNTrap == TrapPrivateCDNAlias || ss.CDNTrap == TrapPrivateCDNForeignSOA

	switch {
	case ss.PrivateCDN && (ss.CDNTrap == TrapPrivateCDNAlias || ss.CDNTrap == TrapPrivateCDNForeignSOA):
		// Content rides the alias-domain CDN (yahoo/yimg, instagram).
		m.w.CNAMEToCDN[s.AliasDomain()] = d + " private CDN"
		z.MustAdd(dnsmsg.Record{Name: "www." + d + ".", Type: dnsmsg.TypeA, TTL: 300, IP: []byte{192, 0, 2, 2}})
	case ss.PrivateCDN:
		// In-domain private CDN: cdn.<site> is both suffix and target.
		host := "cdn." + d
		m.w.CNAMEToCDN[host] = d + " private CDN"
		z.MustAdd(dnsmsg.Record{Name: host + ".", Type: dnsmsg.TypeA, TTL: 300, IP: []byte{192, 0, 2, 3}})
		z.MustAdd(dnsmsg.Record{Name: "www." + d + ".", Type: dnsmsg.TypeA, TTL: 300, IP: []byte{192, 0, 2, 2}})
	case ss.CDNMode != DepNone:
		// Third-party CDNs: spread the internal hosts over the providers.
		for i, host := range internalHosts {
			p := m.u.Providers[ss.CDNProviders[i%len(ss.CDNProviders)]]
			z.MustAdd(dnsmsg.Record{
				Name: host + ".", Type: dnsmsg.TypeCNAME, TTL: 300,
				Target: "c-" + slugOf(d) + "." + p.CNAMESuffix + ".",
			})
		}
	default:
		z.MustAdd(dnsmsg.Record{Name: "www." + d + ".", Type: dnsmsg.TypeA, TTL: 300, IP: []byte{192, 0, 2, 2}})
	}
	m.w.Zones.AddZone(z)

	// --- Alias-domain zone (vanity NS, private-CDN alias) ---
	if needsAlias {
		m.aliasZone(s, &ss)
	}

	// --- Certificate ---
	if ss.HTTPS {
		m.certificate(s, &ss, needsAlias)
	}
}

// sitePage materializes one website's landing page: an asset per internal
// host (recomputed from the same snapshot state siteZone wired into DNS)
// plus the shared external resources.
func (m *materializer) sitePage(s *Site) {
	ss := s.Snap[m.snap]
	d := s.Domain
	page := &webpage.Page{Site: d}
	for _, host := range siteInternalHosts(s, &ss) {
		page.AddResource("https://" + host + "/asset-" + slugOf(host) + ".js")
	}
	page.AddResource("https://cdn." + externalDomains[0] + "/analytics.js")
	page.AddResource("https://fonts." + externalDomains[1] + "/font.woff2")
	m.w.Pages[d] = page
}

// aliasZone materializes the site's brand-alias domain.
func (m *materializer) aliasZone(s *Site, ss *SiteSnapshot) {
	alias := s.AliasDomain()
	origin := alias + "."
	soa := dnsmsg.SOAData{
		MName: "ns1." + alias + ".", RName: "hostmaster." + s.Domain + ".",
		Serial: 2020010101, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
	}
	dep := ProviderDNS{Private: true}
	if ss.CDNTrap == TrapPrivateCDNForeignSOA {
		// The private CDN's zone is operated by a third-party DNS provider
		// (twitter/instagram): SOA master and NS point off-org.
		dep = ProviderDNS{Third: []string{"AWS DNS"}}
		soa.MName = "ns1.awsdns.net."
	}
	z := dnszone.NewZone(origin, soa)
	m.zoneNS(z, origin, alias, dep)
	z.MustAdd(dnsmsg.Record{Name: "*." + origin, Type: dnsmsg.TypeA, TTL: 300, IP: []byte{192, 0, 2, 7}})
	m.w.Zones.AddZone(z)
}

// certificate materializes the site's certificate and, for private CAs, the
// PKI-domain infrastructure.
func (m *materializer) certificate(s *Site, ss *SiteSnapshot, hasAlias bool) {
	d := s.Domain
	sans := []string{d, "*." + d}
	if hasAlias {
		sans = append(sans, s.AliasDomain(), "*."+s.AliasDomain())
	}
	cert := &certs.Certificate{Subject: d, Stapled: ss.Stapled}

	switch {
	case !ss.PrivateCA:
		p := m.u.Providers[ss.CA]
		if p == nil {
			panic("ecosystem: site " + d + " uses unknown CA " + ss.CA)
		}
		cert.IssuerCA = p.Name
		cert.IssuerOrgDomain = p.Domain
		cert.OCSPServers = []string{"http://" + p.OCSPHost + "/status"}
		cert.CRLDistributionPoints = []string{"http://" + p.CDPHost + "/ca.crl"}
	case ss.PrivateCAAlias:
		pki := pkiDomain(s)
		sans = append(sans, pki, "*."+pki)
		cert.IssuerCA = d + " Trust Services"
		cert.IssuerOrgDomain = pki
		cert.OCSPServers = []string{"http://ocsp." + pki + "/status"}
		cert.CRLDistributionPoints = []string{"http://crl." + pki + "/ca.crl"}
		m.pkiZone(s, ss)
	default:
		cert.IssuerCA = d + " Internal CA"
		cert.IssuerOrgDomain = d
		cert.OCSPServers = []string{"http://ocsp." + d + "/status"}
		cert.CRLDistributionPoints = []string{"http://crl." + d + "/ca.crl"}
		if z := m.w.Zones.Zone(d + "."); z != nil {
			z.MustAdd(dnsmsg.Record{Name: "ocsp." + d + ".", Type: dnsmsg.TypeA, TTL: 300, IP: []byte{192, 0, 2, 8}})
			z.MustAdd(dnsmsg.Record{Name: "crl." + d + ".", Type: dnsmsg.TypeA, TTL: 300, IP: []byte{192, 0, 2, 8}})
		}
	}
	cert.SANs = sans
	m.w.Certs.Put(d, cert)
}

// pkiZone materializes a private CA's alias PKI domain, including its hidden
// third-party dependencies (§5.1/§5.2: godaddy.com, microsoft.com cases).
func (m *materializer) pkiZone(s *Site, ss *SiteSnapshot) {
	pki := pkiDomain(s)
	origin := pki + "."
	soa := dnsmsg.SOAData{
		// Same declared master as the site: the SOA heuristic sees one
		// logical operator (the pki.goog case).
		MName: "ns1." + s.Domain + ".", RName: "hostmaster." + s.Domain + ".",
		Serial: 2020010101, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
	}
	dep := ProviderDNS{Private: true}
	if ss.PrivateCAThirdDNS {
		dep = ProviderDNS{Third: []string{"Akamai Edge DNS"}}
	}
	z := dnszone.NewZone(origin, soa)
	m.zoneNS(z, origin, pki, dep)
	for _, host := range []string{"ocsp." + pki + ".", "crl." + pki + "."} {
		if ss.PrivateCAThirdCDN {
			akamai := m.u.Providers["Akamai"]
			z.MustAdd(dnsmsg.Record{Name: host, Type: dnsmsg.TypeCNAME, TTL: 300,
				Target: "rev-" + slugOf(pki) + "." + akamai.CNAMESuffix + "."})
		} else {
			z.MustAdd(dnsmsg.Record{Name: host, Type: dnsmsg.TypeA, TTL: 300, IP: []byte{192, 0, 2, 9}})
		}
	}
	m.w.Zones.AddZone(z)
}
