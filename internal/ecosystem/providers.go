package ecosystem

import (
	"fmt"
	"strings"
)

// slugOf converts a display name to a DNS-safe label.
func slugOf(name string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		case r == ' ' || r == '.' || r == '\'' || r == '-':
			// collapse punctuation
		}
	}
	return sb.String()
}

// newDNSProvider builds a DNS provider with hosts ns1/ns2.<domain>.
func newDNSProvider(name, domain string) *Provider {
	return &Provider{
		Name:       name,
		Service:    SvcDNS,
		Domain:     domain,
		NSDomains:  []string{domain},
		Exists2016: true,
		Exists2020: true,
		DNSDeps:    map[Snapshot]ProviderDNS{Y2016: {Private: true}, Y2020: {Private: true}},
		CDNDeps:    map[Snapshot]ProviderCDN{},
	}
}

// newCDNProvider builds a CDN provider with the given CNAME suffix.
func newCDNProvider(name, domain, suffix string, deps map[Snapshot]ProviderDNS) *Provider {
	if deps == nil {
		deps = map[Snapshot]ProviderDNS{Y2016: {Private: true}, Y2020: {Private: true}}
	}
	return &Provider{
		Name:        name,
		Service:     SvcCDN,
		Domain:      domain,
		NSDomains:   []string{domain},
		CNAMESuffix: suffix,
		Exists2016:  true,
		Exists2020:  true,
		DNSDeps:     deps,
		CDNDeps:     map[Snapshot]ProviderCDN{},
	}
}

// newCAProvider builds a CA provider with ocsp/crl hosts under its domain.
func newCAProvider(name, domain string, dns map[Snapshot]ProviderDNS, cdn map[Snapshot]ProviderCDN) *Provider {
	if dns == nil {
		dns = map[Snapshot]ProviderDNS{Y2016: {Private: true}, Y2020: {Private: true}}
	}
	if cdn == nil {
		cdn = map[Snapshot]ProviderCDN{Y2016: {}, Y2020: {}}
	}
	return &Provider{
		Name:       name,
		Service:    SvcCA,
		Domain:     domain,
		NSDomains:  []string{domain},
		OCSPHost:   "ocsp." + domain,
		CDPHost:    "crl." + domain,
		Exists2016: true,
		Exists2020: true,
		DNSDeps:    dns,
		CDNDeps:    cdn,
	}
}

func pvt() ProviderDNS                  { return ProviderDNS{Private: true} }
func third(names ...string) ProviderDNS { return ProviderDNS{Third: names} }
func mixed(names ...string) ProviderDNS { return ProviderDNS{Private: true, Third: names} }

// buildProviders creates the full named provider universe. Tail providers
// are appended by the generator according to the calibration.
func buildProviders() []*Provider {
	var ps []*Provider

	// ---- DNS providers (Fig 5a / Fig 6a universe) ----
	dnsDomains := map[string]string{
		"Cloudflare": "cloudflare.com", "AWS DNS": "awsdns.net", "GoDaddy": "domaincontrol.com",
		"DNSMadeEasy": "dnsmadeeasy.com", "NS1": "nsone.net", "UltraDNS": "ultradns.net",
		"Dyn": "dynect.net", "Azure DNS": "azure-dns.com", "Google Cloud DNS": "googledomains.com",
		"Alibaba DNS": "alibabadns.com", "DNSPod": "dnspod.net", "Hetzner DNS": "hetzner.com",
		"OVH DNS": "ovh.net", "Gandi": "gandi.net", "Namecheap DNS": "registrar-servers.com",
		"Wix DNS": "wixdns.net", "Squarespace DNS": "squarespacedns.com", "Linode DNS": "linode.com",
		"DigitalOcean DNS": "digitalocean.com", "Vercel DNS": "vercel-dns.com", "Netlify DNS": "nsone-netlify.net",
		"Akamai Edge DNS": "akam.net", "Rackspace DNS": "rackspace.com", "Yandex DNS": "yandex.net",
		"HiChina": "hichina.com", "West263": "myhostadmin.net", "DNSimple": "dnsimple.com",
		"easyDNS": "easydns.com", "ClouDNS": "cloudns.net", "Name.com DNS": "name.com",
		"Hostgator DNS": "hostgator.com", "Bluehost DNS": "bluehost.com", "Dreamhost DNS": "dreamhost.com",
		"Hover DNS": "hover.com", "Porkbun DNS": "porkbun.com", "Domain.com DNS": "domain.com",
		"Register.com DNS": "register.com", "Network Solutions DNS": "worldnic.com",
		"IONOS DNS": "ui-dns.com", "Strato DNS": "strato.de", "Aruba DNS": "aruba.it",
		"Loopia DNS": "loopia.se", "Active24 DNS": "active24.cz", "Websupport DNS": "websupport.sk",
		"Eurodns": "eurodns.com", "InternetX": "internetx.com", "CSC DNS": "cscdns.net",
		"MarkMonitor DNS": "markmonitor.com", "SafeNames DNS": "safenames.net", "Instra DNS": "instra.net",
		"NameBright DNS": "namebright.com", "Epik DNS": "epik.com", "Dynadot DNS": "dynadot.com",
		"Sav DNS": "sav.com", "Verisign DNS": "verisigndns.com", "Neustar DNS": "neustar.biz",
		"Comodo DNS": "comododns.net",
	}
	for name, domain := range dnsDomains {
		ps = append(ps, newDNSProvider(name, domain))
	}
	// Alibaba DNS demonstrates the same-entity alias: nameserver hosts under
	// two registrable domains sharing one SOA MNAME (alicdn/alibabadns).
	for _, p := range ps {
		if p.Name == "Alibaba DNS" {
			p.NSDomains = []string{"alibabadns.com", "alidns-cdn.com"}
		}
	}

	// ---- CDN providers (Fig 5b universe, CDN→DNS deps per Table 9) ----
	ps = append(ps,
		// The big five run private DNS (Obs 11).
		newCDNProvider("Amazon CloudFront", "cloudfront.net", "cloudfront.net", nil),
		newCDNProvider("Cloudflare CDN", "cloudflare.net", "cdn.cloudflare.net", nil),
		newCDNProvider("Akamai", "akamai.net", "akamaiedge.net", nil),
		newCDNProvider("Incapsula", "incapdns.net", "incapdns.net", nil),
		newCDNProvider("StackPath", "stackpathdns.com", "stackpathcdn.com", nil),
		// Fastly critically used Dyn in 2016 (the Dyn-incident collateral);
		// by 2020 it added private redundancy.
		newCDNProvider("Fastly", "fastly.net", "fastly.net", map[Snapshot]ProviderDNS{
			Y2016: third("Dyn"), Y2020: mixed("Dyn"),
		}),
		newCDNProvider("KeyCDN", "kxcdn.com", "kxcdn.com", map[Snapshot]ProviderDNS{
			Y2016: third("AWS DNS"), Y2020: third("AWS DNS", "NS1"),
		}),
		newCDNProvider("jsDelivr", "jsdelivr.net", "jsdelivr.net", map[Snapshot]ProviderDNS{
			Y2016: third("AWS DNS", "Cloudflare"), Y2020: third("AWS DNS", "Cloudflare"),
		}),
		// Netlify and Kinx adopted DNS redundancy by 2020 (Table 9).
		newCDNProvider("Netlify CDN", "netlifyglobalcdn.com", "netlifyglobalcdn.com", map[Snapshot]ProviderDNS{
			Y2016: third("AWS DNS"), Y2020: third("AWS DNS", "NS1"),
		}),
		newCDNProvider("Kinx CDN", "kinxcdn.com", "kinxcdn.com", map[Snapshot]ProviderDNS{
			Y2016: third("AWS DNS"), Y2020: mixed("AWS DNS"),
		}),
		// GoCache moved to private DNS by 2020 (Table 9).
		newCDNProvider("GoCache", "gocache.net", "gocache.net", map[Snapshot]ProviderDNS{
			Y2016: third("AWS DNS"), Y2020: pvt(),
		}),
		// Zenedge gave up redundancy by 2020 (Table 9).
		newCDNProvider("Zenedge", "zenedge.net", "zenedge.net", map[Snapshot]ProviderDNS{
			Y2016: third("AWS DNS", "UltraDNS"), Y2020: third("AWS DNS"),
		}),
		newCDNProvider("CDN77", "cdn77.org", "cdn77.org", nil),
		newCDNProvider("Azure CDN", "azureedge.net", "azureedge.net", nil),
		newCDNProvider("Google Cloud CDN", "googleusercontent.com", "cdn.googleusercontent.com", nil),
		newCDNProvider("BunnyCDN", "b-cdn.net", "b-cdn.net", nil),
		newCDNProvider("CacheFly", "cachefly.net", "cachefly.net", nil),
		newCDNProvider("Limelight", "llnwd.net", "llnwd.net", nil),
		newCDNProvider("CDNetworks", "cdngc.net", "cdngc.net", nil),
		newCDNProvider("ChinaNetCenter", "wscdns.com", "wscdns.com", nil),
		newCDNProvider("ArvanCloud", "arvancdn.ir", "arvancdn.ir", nil),
		newCDNProvider("G-Core Labs", "gcdn.co", "gcdn.co", nil),
		newCDNProvider("Medianova", "mncdn.com", "mncdn.com", nil),
		newCDNProvider("Sucuri", "sucuri.net", "cdn.sucuri.net", nil),
		newCDNProvider("Alibaba CDN", "alicdn.com", "alicdn.com", nil),
		newCDNProvider("Tencent CDN", "cdntip.com", "cdntip.com", nil),
		newCDNProvider("Baidu CDN", "bdydns.com", "bdydns.com", nil),
		newCDNProvider("MaxCDN", "netdna-cdn.com", "netdna-cdn.com", map[Snapshot]ProviderDNS{
			// The paper's intro example: academia.edu -> MaxCDN -> AWS DNS.
			Y2016: third("AWS DNS"), Y2020: third("AWS DNS"),
		}),
		newCDNProvider("EdgeCast", "edgecastcdn.net", "edgecastcdn.net", nil),
	)
	// 2020-only / 2016-only CDNs.
	for _, p := range ps {
		switch p.Name {
		case "BunnyCDN", "ArvanCloud", "G-Core Labs", "Vercel CDN", "Sucuri":
			p.Exists2016 = false
		case "MaxCDN", "EdgeCast":
			p.Exists2020 = false
		}
	}
	ps = append(ps, func() *Provider {
		p := newCDNProvider("Vercel CDN", "vercel-cdn.com", "vercel-cdn.com", nil)
		p.Exists2016 = false
		return p
	}())

	// ---- CA providers (Fig 5c universe; CA→DNS per Table 7, CA→CDN per
	// Table 8) ----
	ps = append(ps,
		// DigiCert: critically on DNSMadeEasy in 2020 (the 1%→25%
		// amplification of §5.1); redundantly provisioned in 2016 (Table 7).
		// Its OCSP/CDP infrastructure rides Incapsula (Fig 8).
		newCAProvider("DigiCert", "digicert.com",
			map[Snapshot]ProviderDNS{Y2016: third("DNSMadeEasy", "UltraDNS"), Y2020: third("DNSMadeEasy")},
			map[Snapshot]ProviderCDN{Y2016: {Third: []string{"Incapsula"}}, Y2020: {Third: []string{"Incapsula"}}}),
		// Let's Encrypt: critically on Cloudflare DNS (Cloudflare 24%→44%
		// amplification); adopted a CDN (Cloudflare) between snapshots
		// (Table 8).
		newCAProvider("Let's Encrypt", "letsencrypt.org",
			map[Snapshot]ProviderDNS{Y2016: third("Cloudflare"), Y2020: third("Cloudflare")},
			map[Snapshot]ProviderCDN{Y2016: {}, Y2020: {Third: []string{"Cloudflare CDN"}}}),
		// Sectigo: on Comodo DNS; OCSP via StackPath (2%→16% amplification).
		newCAProvider("Sectigo", "sectigo.com",
			map[Snapshot]ProviderDNS{Y2016: third("Comodo DNS"), Y2020: third("Comodo DNS")},
			map[Snapshot]ProviderCDN{Y2016: {Third: []string{"MaxCDN"}}, Y2020: {Third: []string{"StackPath"}}}),
		newCAProvider("GlobalSign", "globalsign.com",
			map[Snapshot]ProviderDNS{Y2016: third("Akamai Edge DNS"), Y2020: third("Akamai Edge DNS")},
			map[Snapshot]ProviderCDN{Y2016: {Third: []string{"Akamai"}}, Y2020: {Third: []string{"Akamai"}}}),
		// GoDaddy CA: private CA of godaddy.com but itself on Akamai DNS
		// (the §5.1 example of a private CA with a hidden dependency).
		newCAProvider("GoDaddy CA", "godaddyca.com",
			map[Snapshot]ProviderDNS{Y2016: third("Akamai Edge DNS"), Y2020: third("Akamai Edge DNS")},
			map[Snapshot]ProviderCDN{Y2016: {Third: []string{"Akamai"}}, Y2020: {Third: []string{"Akamai"}}}),
		newCAProvider("Amazon CA", "amazontrust.com", nil,
			map[Snapshot]ProviderCDN{Y2016: {Private: true}, Y2020: {Private: true}}),
		newCAProvider("Entrust", "entrust.net",
			map[Snapshot]ProviderDNS{Y2016: third("Comodo DNS"), Y2020: third("Comodo DNS")},
			map[Snapshot]ProviderCDN{Y2016: {Third: []string{"Akamai"}}, Y2020: {Third: []string{"Akamai"}}}),
		newCAProvider("Actalis", "actalis.it",
			map[Snapshot]ProviderDNS{Y2016: third("Comodo DNS"), Y2020: third("Comodo DNS")},
			map[Snapshot]ProviderCDN{Y2016: {Third: []string{"Cloudflare CDN"}}, Y2020: {Third: []string{"Cloudflare CDN"}}}),
		newCAProvider("Buypass", "buypass.com",
			map[Snapshot]ProviderDNS{Y2016: third("Comodo DNS"), Y2020: third("Comodo DNS")},
			map[Snapshot]ProviderCDN{Y2016: {Third: []string{"Cloudflare CDN"}}, Y2020: {Third: []string{"Cloudflare CDN"}}}),
		newCAProvider("SSL.com", "ssl.com",
			map[Snapshot]ProviderDNS{Y2016: third("AWS DNS"), Y2020: third("AWS DNS")},
			map[Snapshot]ProviderCDN{Y2016: {Third: []string{"Cloudflare CDN"}}, Y2020: {Third: []string{"Cloudflare CDN"}}}),
		// Certum: the paper's intro example Certum -> MaxCDN -> AWS DNS.
		newCAProvider("Certum", "certum.pl",
			map[Snapshot]ProviderDNS{Y2016: third("AWS DNS"), Y2020: third("AWS DNS")},
			map[Snapshot]ProviderCDN{Y2016: {Third: []string{"MaxCDN"}}, Y2020: {Third: []string{"Cloudflare CDN"}}}),
		// TrustAsia moved private -> single third DNS (Table 7).
		newCAProvider("TrustAsia", "trustasia.com",
			map[Snapshot]ProviderDNS{Y2016: pvt(), Y2020: third("DNSPod")},
			nil),
		newCAProvider("SwissSign", "swisssign.net",
			map[Snapshot]ProviderDNS{Y2016: third("Akamai Edge DNS"), Y2020: third("Akamai Edge DNS")},
			map[Snapshot]ProviderCDN{Y2016: {Third: []string{"Akamai"}}, Y2020: {Third: []string{"Akamai"}}}),
		newCAProvider("QuoVadis", "quovadisglobal.com",
			map[Snapshot]ProviderDNS{Y2016: third("Cloudflare"), Y2020: third("Cloudflare")},
			map[Snapshot]ProviderCDN{Y2016: {Third: []string{"Akamai"}}, Y2020: {Third: []string{"Akamai"}}}),
		newCAProvider("IdenTrust", "identrust.com",
			map[Snapshot]ProviderDNS{Y2016: third("Cloudflare"), Y2020: third("Cloudflare")},
			map[Snapshot]ProviderCDN{Y2016: {Third: []string{"Akamai"}}, Y2020: {Third: []string{"Akamai"}}}),
		newCAProvider("WISeKey", "wisekey.com",
			map[Snapshot]ProviderDNS{Y2016: third("Cloudflare"), Y2020: third("Cloudflare")},
			nil),
		// Internet2 gave up DNS redundancy between snapshots (Table 7).
		newCAProvider("Internet2 CA", "incommon.org",
			map[Snapshot]ProviderDNS{Y2016: third("AWS DNS", "UltraDNS"), Y2020: third("AWS DNS")},
			nil),
		// TeliaSonera moved its OCSP off a third-party CDN (Table 8).
		newCAProvider("TeliaSonera CA", "teliasonera.net",
			map[Snapshot]ProviderDNS{Y2016: third("AWS DNS"), Y2020: third("AWS DNS")},
			map[Snapshot]ProviderCDN{Y2016: {Third: []string{"EdgeCast"}}, Y2020: {Private: true}}),
	)
	// CAs that moved from critical third-party DNS in 2016 to private DNS in
	// 2020 (Table 7 names GeoTrust and Symantec among the nine).
	movedPrivate := []struct {
		name, domain, dns16 string
		cdnAdopted          bool // no CDN in 2016, Akamai by 2020 (Table 8)
	}{
		{"GeoTrust", "geotrust.com", "UltraDNS", false},
		{"Thawte", "thawte.com", "UltraDNS", false},
		{"RapidSSL", "rapidssl.com", "UltraDNS", false},
		{"StartCom", "startssl.com", "AWS DNS", true},
		{"WoSign", "wosign.com", "DNSPod", true},
		{"Network Solutions CA", "netsolssl.com", "AWS DNS", false},
	}
	for _, m := range movedPrivate {
		cdn16 := ProviderCDN{Third: []string{"Akamai"}}
		if m.cdnAdopted {
			cdn16 = ProviderCDN{}
		}
		ps = append(ps, newCAProvider(m.name, m.domain,
			map[Snapshot]ProviderDNS{Y2016: third(m.dns16), Y2020: pvt()},
			map[Snapshot]ProviderCDN{Y2016: cdn16, Y2020: {Third: []string{"Akamai"}}}))
	}
	// Symantec's CA business was absorbed by DigiCert (§4.2, footnote 1).
	symantec := newCAProvider("Symantec", "symantec-ca.com",
		map[Snapshot]ProviderDNS{Y2016: third("Verisign DNS")},
		map[Snapshot]ProviderCDN{Y2016: {Third: []string{"Akamai"}}})
	symantec.Exists2020 = false
	ps = append(ps, symantec)

	return ps
}

// tailProvider creates the i-th procedural small provider of a service.
// mode splits tails into private-DNS and third-party-DNS cohorts so the
// Table 6 inter-service totals hold.
func tailProvider(svc Service, i int, dns map[Snapshot]ProviderDNS) *Provider {
	var p *Provider
	switch svc {
	case SvcDNS:
		p = newDNSProvider(fmt.Sprintf("DNS Tail %04d", i), fmt.Sprintf("tail-dns-%04d.net", i))
	case SvcCDN:
		domain := fmt.Sprintf("tail-cdn-%03d.net", i)
		p = newCDNProvider(fmt.Sprintf("CDN Tail %03d", i), domain, domain, dns)
	case SvcCA:
		p = newCAProvider(fmt.Sprintf("CA Tail %03d", i), fmt.Sprintf("tail-ca-%03d.net", i), dns, nil)
	}
	return p
}
