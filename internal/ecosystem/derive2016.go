package ecosystem

// deriveSnapshot2016 produces the 2016 ground truth. Sites that only exist
// in 2016 (dead by 2020) are drawn fresh from the 2016 calibration; sites on
// both lists are back-derived from their 2020 state using the transition
// rates of Tables 3–5, so the evolution analysis re-measures exactly those
// deltas.
func (g *generator) deriveSnapshot2016() {
	list16 := g.u.List(Y2016)

	// Fresh assignment for 2016-only sites, band by band.
	bands := bandSites(list16, g.scale)
	for b := 0; b < NumBands; b++ {
		var dead []*Site
		for _, s := range bands[b] {
			if s.Rank2020 == 0 {
				dead = append(dead, s)
			}
		}
		g.assignCABand(Y2016, b, dead)
		g.assignDNSBand(Y2016, b, dead)
		g.assignCDNBand(Y2016, b, dead)
	}

	// Shared sites: backward transitions per band.
	for b := 0; b < NumBands; b++ {
		var shared []*Site
		for _, s := range bands[b] {
			if s.Rank2020 > 0 {
				shared = append(shared, s)
			}
		}
		g.deriveCA2016(b, shared)
		g.deriveDNS2016(b, shared)
		g.deriveCDN2016(b, shared)
	}
}

// take removes and returns up to n sites from *pool.
func take(pool *[]*Site, n int) []*Site {
	if n > len(*pool) {
		n = len(*pool)
	}
	out := (*pool)[:n]
	*pool = (*pool)[n:]
	return out
}

func (g *generator) deriveDNS2016(band int, shared []*Site) {
	tr := &g.cal.Trans
	cal16 := g.cal.DNS[Y2016]

	// Partition by 2020 mode (characterized only; traps persist verbatim).
	var priv, single, multi, mixed []*Site
	for _, s := range shared {
		ss20 := s.Snap[Y2020]
		if ss20.DNSTrap == TrapUnknown {
			s.Snap[Y2016].DNSMode = ss20.DNSMode
			s.Snap[Y2016].DNSProviders = append([]string(nil), ss20.DNSProviders...)
			s.Snap[Y2016].DNSTrap = TrapUnknown
			continue
		}
		switch ss20.DNSMode {
		case DepPrivate:
			priv = append(priv, s)
		case DepSingleThird:
			single = append(single, s)
		case DepMultiThird:
			multi = append(multi, s)
		case DepPrivatePlusThird:
			mixed = append(mixed, s)
		}
	}
	nChar := len(priv) + len(single) + len(multi) + len(mixed)
	priv, single, multi, mixed = g.shuffled(priv), g.shuffled(single), g.shuffled(multi), g.shuffled(mixed)

	impact16 := g.withTail(cal16.ImpactShares, SvcDNS, cal16.TailShare, Y2016)
	red16 := cal16.RedundantShares
	if band == 0 && len(cal16.Band0Redundant) > 0 {
		red16 = cal16.Band0Redundant
	}
	setSingle16 := func(sites []*Site) {
		names := g.apportion(impact16, len(sites))
		for i, s := range sites {
			ss := &s.Snap[Y2016]
			ss.DNSMode = DepSingleThird
			ss.DNSProviders = []string{names[i]}
			ss.DNSTrap = TrapNone
			if soaTrapProviders[names[i]] && g.rng.Float64() < cal16.SOAEqualFrac {
				ss.DNSTrap = TrapSOAEqual
			}
		}
	}
	setPrivate16 := func(sites []*Site) {
		for _, s := range sites {
			ss := &s.Snap[Y2016]
			ss.DNSMode = DepPrivate
			ss.DNSProviders = nil
			ss.DNSTrap = TrapNone
			if ss.HTTPS && g.rng.Float64() < cal16.VanityNSFrac {
				ss.DNSTrap = TrapVanityNS
			}
		}
	}
	setMulti16 := func(sites []*Site) {
		prim := g.apportion(red16, len(sites))
		for i, s := range sites {
			ss := &s.Snap[Y2016]
			ss.DNSTrap = TrapNone
			if g.rng.Float64() < cal16.AliasRedundantFrac {
				ss.DNSMode = DepSingleThird
				ss.DNSProviders = []string{"Alibaba DNS"}
				ss.DNSTrap = TrapAliasRedundant
				continue
			}
			ss.DNSMode = DepMultiThird
			ss.DNSProviders = []string{prim[i], g.pickOther(red16, prim[i])}
		}
	}
	setMixed16 := func(sites []*Site) {
		names := g.apportion(red16, len(sites))
		for i, s := range sites {
			ss := &s.Snap[Y2016]
			ss.DNSMode = DepPrivatePlusThird
			ss.DNSProviders = []string{names[i]}
			ss.DNSTrap = TrapNone
		}
	}

	// Table 3, backwards. "Pvt to Single 3rd" means private in 2016 and a
	// single third party in 2020, so those sites come from the 2020-single
	// pool, and so on.
	setPrivate16(take(&single, round(float64(nChar)*tr.DNSPvtToSingle[band])))
	setSingle16(take(&priv, round(float64(nChar)*tr.DNSSingleToPvt[band])))
	setMulti16(take(&single, round(float64(nChar)*tr.DNSRedToNoRed[band])))
	redundant2020 := append(append([]*Site(nil), multi...), mixed...)
	g.rng.Shuffle(len(redundant2020), func(i, j int) {
		redundant2020[i], redundant2020[j] = redundant2020[j], redundant2020[i]
	})
	moved := take(&redundant2020, round(float64(nChar)*tr.DNSNoRedToRed[band]))
	setSingle16(moved)
	movedSet := make(map[*Site]bool, len(moved))
	for _, s := range moved {
		movedSet[s] = true
	}

	// Everyone else keeps their 2020 mode, with providers re-drawn from the
	// 2016 market (the provider landscape shifted even where modes didn't).
	setPrivate16(priv)
	setSingle16(single)
	var keepMulti, keepMixed []*Site
	for _, s := range multi {
		if !movedSet[s] {
			keepMulti = append(keepMulti, s)
		}
	}
	for _, s := range mixed {
		if !movedSet[s] {
			keepMixed = append(keepMixed, s)
		}
	}
	setMulti16(keepMulti)
	setMixed16(keepMixed)
}

func (g *generator) deriveCDN2016(band int, shared []*Site) {
	tr := &g.cal.Trans
	cal16 := g.cal.CDN[Y2016]

	var users20, nonusers20 []*Site
	for _, s := range shared {
		if s.Snap[Y2020].CDNMode != DepNone {
			users20 = append(users20, s)
		} else {
			nonusers20 = append(nonusers20, s)
		}
	}
	n := len(shared)
	users20, nonusers20 = g.shuffled(users20), g.shuffled(nonusers20)

	shares16 := cal16.Shares
	if band == 0 && len(cal16.Band0Shares) > 0 {
		shares16 = cal16.Band0Shares
	}
	shares16 = g.withTail(shares16, SvcCDN, cal16.TailShare, Y2016)

	setNone16 := func(sites []*Site) {
		for _, s := range sites {
			ss := &s.Snap[Y2016]
			ss.CDNMode = DepNone
			ss.CDNProviders = nil
			ss.PrivateCDN = false
			ss.CDNTrap = TrapNone
		}
	}
	setSingle16 := func(sites []*Site) {
		names := g.apportion(shares16, len(sites))
		for i, s := range sites {
			ss := &s.Snap[Y2016]
			ss.CDNMode = DepSingleThird
			ss.CDNProviders = []string{names[i]}
			ss.PrivateCDN = false
			ss.CDNTrap = TrapNone
		}
	}
	setMulti16 := func(sites []*Site) {
		names := g.apportion(shares16, len(sites))
		for i, s := range sites {
			ss := &s.Snap[Y2016]
			ss.CDNMode = DepMultiThird
			ss.CDNProviders = []string{names[i], g.pickOther(shares16, names[i])}
			ss.PrivateCDN = false
			ss.CDNTrap = TrapNone
		}
	}
	setPrivate16 := func(sites []*Site) {
		// Alias traps require SAN evidence, hence HTTPS-in-2016 sites.
		ordered := make([]*Site, 0, len(sites))
		var plain []*Site
		for _, s := range sites {
			if s.Snap[Y2016].HTTPS {
				ordered = append(ordered, s)
			} else {
				plain = append(plain, s)
			}
		}
		nAlias := round(float64(len(sites)) * (cal16.ForeignSOAFrac + cal16.PrivateAliasFrac))
		nAlias = minInt(nAlias, len(ordered))
		ordered = append(ordered, plain...)
		for i, s := range ordered {
			ss := &s.Snap[Y2016]
			ss.CDNMode = DepPrivate
			ss.PrivateCDN = true
			ss.CDNProviders = nil
			switch {
			case i < nAlias && float64(i) < float64(len(sites))*cal16.ForeignSOAFrac:
				ss.CDNTrap = TrapPrivateCDNForeignSOA
			case i < nAlias:
				ss.CDNTrap = TrapPrivateCDNAlias
			default:
				ss.CDNTrap = TrapNone
			}
		}
	}

	// Sites that started using a CDN after 2016 come from the 2020 users;
	// sites that stopped come from the 2020 non-users and get a fresh 2016
	// arrangement.
	setNone16(take(&users20, round(float64(n)*tr.CDNStart)))
	stopped := take(&nonusers20, round(float64(n)*tr.CDNStop))
	nStopPriv := round(float64(len(stopped)) * cal16.PrivateOnlyFrac)
	setPrivate16(stopped[:minInt(nStopPriv, len(stopped))])
	remaining := stopped[minInt(nStopPriv, len(stopped)):]
	nStopCrit := round(float64(len(stopped)) * cal16.CriticalFrac[band])
	setSingle16(remaining[:minInt(nStopCrit, len(remaining))])
	setMulti16(remaining[minInt(nStopCrit, len(remaining)):])
	setNone16(nonusers20)

	// Both-years users: Table 4 transitions.
	var priv20, single20, multi20 []*Site
	for _, s := range users20 {
		switch s.Snap[Y2020].CDNMode {
		case DepPrivate:
			priv20 = append(priv20, s)
		case DepSingleThird:
			single20 = append(single20, s)
		default:
			multi20 = append(multi20, s)
		}
	}
	setPrivate16(take(&single20, round(float64(n)*tr.CDNPvtToSingle[band])))
	setMulti16(take(&single20, round(float64(n)*tr.CDNRedToNoRed[band])))
	setSingle16(take(&multi20, round(float64(n)*tr.CDNNoRedToRed[band])))
	setPrivate16(priv20)
	setSingle16(single20)
	setMulti16(multi20)
}

func (g *generator) deriveCA2016(band int, shared []*Site) {
	tr := &g.cal.Trans
	cal16 := g.cal.CA[Y2016]

	var https20, plain20 []*Site
	for _, s := range shared {
		if s.Snap[Y2020].HTTPS {
			https20 = append(https20, s)
		} else {
			plain20 = append(plain20, s)
		}
	}
	n := len(shared)
	setNoHTTPS16 := func(sites []*Site) {
		for _, s := range sites {
			ss := &s.Snap[Y2016]
			ss.HTTPS = false
			ss.CA = ""
			ss.PrivateCA = false
			ss.Stapled = false
			ss.PrivateCAAlias = false
			ss.PrivateCAThirdCDN = false
			ss.PrivateCAThirdDNS = false
		}
	}
	setNoHTTPS16(plain20)

	// HTTPS adopters: prefer 2020 sites without stapling so the adopter
	// cohort staples at the paper's 11.9% rate.
	var stapled, unstapled []*Site
	for _, s := range g.shuffled(https20) {
		if s.Snap[Y2020].Stapled {
			stapled = append(stapled, s)
		} else {
			unstapled = append(unstapled, s)
		}
	}
	nAdopt := round(float64(n) * tr.HTTPSAdoptFrac)
	nAdoptStapled := minInt(len(stapled), round(float64(nAdopt)*tr.NewHTTPSStapleFrac))
	adopters := make([]*Site, 0, nAdopt)
	adopters = append(adopters, take(&stapled, nAdoptStapled)...)
	adopters = append(adopters, take(&unstapled, nAdopt-nAdoptStapled)...)
	setNoHTTPS16(adopters)

	// Sites HTTPS in both years: re-draw the 2016 CA market, then apply the
	// Table 5 stapling transitions.
	both := make([]*Site, 0, len(stapled)+len(unstapled))
	both = append(both, stapled...)
	both = append(both, unstapled...)
	shares16 := g.withTail(cal16.Shares, SvcCA, cal16.TailShare, Y2016)
	var thirds []*Site
	for _, s := range both {
		ss20 := s.Snap[Y2020]
		ss := &s.Snap[Y2016]
		ss.HTTPS = true
		ss.Stapled = ss20.Stapled
		if ss20.PrivateCA {
			ss.PrivateCA = true
			ss.PrivateCAAlias = ss20.PrivateCAAlias
			// Table 8 / §5.2: private-CA hidden dependencies existed in 2016
			// too (scaled via the 2016 calibration fractions).
			ss.PrivateCAThirdCDN = ss20.PrivateCAThirdCDN
			ss.PrivateCAThirdDNS = ss20.PrivateCAThirdDNS
			ss.CA = ""
		} else {
			ss.PrivateCA = false
			thirds = append(thirds, s)
		}
	}
	names := g.apportion(shares16, len(thirds))
	for i, s := range thirds {
		s.Snap[Y2016].CA = names[i]
	}

	// Stapling transitions (denominator: sites HTTPS in both snapshots).
	var st20, un20 []*Site
	for _, s := range both {
		if s.Snap[Y2020].Stapled {
			st20 = append(st20, s)
		} else {
			un20 = append(un20, s)
		}
	}
	st20, un20 = g.shuffled(st20), g.shuffled(un20)
	nBoth := len(both)
	for _, s := range take(&st20, round(float64(nBoth)*tr.CANoToStaple[band])) {
		s.Snap[Y2016].Stapled = false
	}
	for _, s := range take(&un20, round(float64(nBoth)*tr.CAStapleToNo[band])) {
		s.Snap[Y2016].Stapled = true
	}
	for _, s := range st20 {
		s.Snap[Y2016].Stapled = true
	}
	for _, s := range un20 {
		s.Snap[Y2016].Stapled = false
	}
}
