package ecosystem

// Snapshot assignment: assignSnapshot draws a snapshot's ground truth from
// the calibration tables; deriveSnapshot2016 back-derives the 2016 state of
// shared sites from their 2020 state via the Table 3/4/5 transition rates,
// so the evolution experiments reproduce the paper's deltas by construction
// of the world, not of the analysis.

// soaTrapProviders are the providers large enough that the concentration
// rule (>= 50 customers) resolves SOA-equal sites; only their customers get
// the TrapSOAEqual configuration.
var soaTrapProviders = map[string]bool{
	"Cloudflare": true, "AWS DNS": true, "GoDaddy": true,
}

// privateCAAliasFrac is the fraction of private-CA sites whose CA lives on
// a brand-alias pki domain (the pki.goog case defeating TLD-only matching).
const privateCAAliasFrac = 0.15

// assignSnapshot draws ground truth for every site existing in snap.
func (g *generator) assignSnapshot(snap Snapshot) {
	list := g.u.List(snap)
	bands := bandSites(list, g.scale)
	for b := 0; b < NumBands; b++ {
		var sites []*Site
		for _, s := range bands[b] {
			if s.Snap[snap].Exists {
				sites = append(sites, s)
			}
		}
		g.assignCABand(snap, b, sites)
		g.assignDNSBand(snap, b, sites)
		g.assignCDNBand(snap, b, sites)
	}
}

// orderHTTPSFirst stably reorders sites so HTTPS ones come first.
func orderHTTPSFirst(sites []*Site, snap Snapshot) []*Site {
	out := make([]*Site, 0, len(sites))
	var plain []*Site
	for _, s := range sites {
		if s.Snap[snap].HTTPS {
			out = append(out, s)
		} else {
			plain = append(plain, s)
		}
	}
	return append(out, plain...)
}

// shuffled returns a new shuffled copy of sites.
func (g *generator) shuffled(sites []*Site) []*Site {
	out := append([]*Site(nil), sites...)
	g.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func (g *generator) assignDNSBand(snap Snapshot, band int, sites []*Site) {
	cal := g.cal.DNS[snap]
	order := g.shuffled(sites)
	n := len(order)
	nUnchar := round(float64(n) * cal.UncharacterizedFrac)
	for i := 0; i < nUnchar && i < n; i++ {
		ss := &order[i].Snap[snap]
		ss.DNSMode = DepSingleThird
		ss.DNSTrap = TrapUnknown
		ss.DNSProviders = []string{g.trapDNSProviders[g.trapIdx%len(g.trapDNSProviders)]}
		g.trapIdx++
	}
	rest := order[minInt(nUnchar, n):]
	m := len(rest)
	mix := cal.Mix[band]
	nPriv := round(float64(m) * mix.Private)
	nSingle := round(float64(m) * mix.Single)
	nMulti := round(float64(m) * mix.Multi)
	// Mixed takes the remainder so the counts always sum to m.
	cut1, cut2, cut3 := minInt(nPriv, m), minInt(nPriv+nSingle, m), minInt(nPriv+nSingle+nMulti, m)

	// Vanity-NS traps are only classifiable through the SAN list, so they
	// go to HTTPS sites (as the real-world instances are).
	privSites := orderHTTPSFirst(rest[:cut1], snap)
	nVanity := round(float64(cut1) * cal.VanityNSFrac)
	for i, s := range privSites {
		ss := &s.Snap[snap]
		ss.DNSMode = DepPrivate
		ss.DNSProviders = nil
		if i < nVanity && ss.HTTPS {
			ss.DNSTrap = TrapVanityNS
		} else {
			ss.DNSTrap = TrapNone
		}
	}

	singles := rest[cut1:cut2]
	impact := g.withTail(cal.ImpactShares, SvcDNS, cal.TailShare, snap)
	names := g.apportion(impact, len(singles))
	for i, s := range singles {
		ss := &s.Snap[snap]
		ss.DNSMode = DepSingleThird
		ss.DNSProviders = []string{names[i]}
		ss.DNSTrap = TrapNone
		if soaTrapProviders[names[i]] && g.rng.Float64() < cal.SOAEqualFrac {
			ss.DNSTrap = TrapSOAEqual
		}
	}

	multis := rest[cut2:cut3]
	redShares := cal.RedundantShares
	if band == 0 && len(cal.Band0Redundant) > 0 {
		redShares = cal.Band0Redundant
	}
	prim := g.apportion(redShares, len(multis))
	for i, s := range multis {
		ss := &s.Snap[snap]
		ss.DNSTrap = TrapNone
		if g.rng.Float64() < cal.AliasRedundantFrac {
			// Looks like two providers, is actually one entity under two
			// nameserver domains: ground truth is critical.
			ss.DNSMode = DepSingleThird
			ss.DNSProviders = []string{"Alibaba DNS"}
			ss.DNSTrap = TrapAliasRedundant
			continue
		}
		second := g.pickOther(redShares, prim[i])
		ss.DNSMode = DepMultiThird
		ss.DNSProviders = []string{prim[i], second}
	}

	mixedSites := rest[cut3:]
	mnames := g.apportion(redShares, len(mixedSites))
	for i, s := range mixedSites {
		ss := &s.Snap[snap]
		ss.DNSMode = DepPrivatePlusThird
		ss.DNSProviders = []string{mnames[i]}
		ss.DNSTrap = TrapNone
	}
}

// pickOther draws a provider from shares different from exclude.
func (g *generator) pickOther(shares []Share, exclude string) string {
	total := 0.0
	for _, s := range shares {
		if s.Provider != exclude {
			total += s.Weight
		}
	}
	if total <= 0 {
		return exclude
	}
	x := g.rng.Float64() * total
	for _, s := range shares {
		if s.Provider == exclude {
			continue
		}
		x -= s.Weight
		if x <= 0 {
			return s.Provider
		}
	}
	return shares[len(shares)-1].Provider
}

func (g *generator) assignCDNBand(snap Snapshot, band int, sites []*Site) {
	cal := g.cal.CDN[snap]
	order := g.shuffled(sites)
	n := len(order)
	nUsers := round(float64(n) * cal.UseFrac[band])
	users := order[:minInt(nUsers, n)]
	// Alias-based private CDNs are only discoverable through the SAN list,
	// so the private cohort (taken from the front) must be HTTPS sites.
	httpsFirst := make([]*Site, 0, len(users))
	var plain []*Site
	for _, s := range users {
		if s.Snap[snap].HTTPS {
			httpsFirst = append(httpsFirst, s)
		} else {
			plain = append(plain, s)
		}
	}
	users = append(httpsFirst, plain...)
	for _, s := range order[minInt(nUsers, n):] {
		ss := &s.Snap[snap]
		ss.CDNMode = DepNone
		ss.CDNProviders = nil
		ss.PrivateCDN = false
		ss.CDNTrap = TrapNone
	}
	if len(users) == 0 {
		return
	}
	nPrivate := round(float64(len(users)) * cal.PrivateOnlyFrac)
	nForeign := minInt(nPrivate, round(float64(n)*cal.PrivateCDNThirdDNSFrac))
	for i, s := range users[:minInt(nPrivate, len(users))] {
		ss := &s.Snap[snap]
		ss.CDNMode = DepPrivate
		ss.PrivateCDN = true
		ss.CDNProviders = nil
		switch {
		case i < nForeign:
			ss.CDNTrap = TrapPrivateCDNForeignSOA
		case float64(i-nForeign) < float64(nPrivate-nForeign)*cal.PrivateAliasFrac:
			ss.CDNTrap = TrapPrivateCDNAlias
		default:
			ss.CDNTrap = TrapNone
		}
	}
	thirdUsers := users[minInt(nPrivate, len(users)):]
	nCritical := round(float64(len(users)) * cal.CriticalFrac[band])
	if nCritical > len(thirdUsers) {
		nCritical = len(thirdUsers)
	}
	shares := cal.Shares
	if band == 0 && len(cal.Band0Shares) > 0 {
		shares = cal.Band0Shares
	}
	shares = g.withTail(shares, SvcCDN, cal.TailShare, snap)
	names := g.apportion(shares, len(thirdUsers))
	for i, s := range thirdUsers {
		ss := &s.Snap[snap]
		ss.PrivateCDN = false
		ss.CDNTrap = TrapNone
		if i < nCritical {
			ss.CDNMode = DepSingleThird
			ss.CDNProviders = []string{names[i]}
		} else {
			ss.CDNMode = DepMultiThird
			ss.CDNProviders = []string{names[i], g.pickOther(shares, names[i])}
		}
	}
}

func (g *generator) assignCABand(snap Snapshot, band int, sites []*Site) {
	cal := g.cal.CA[snap]
	order := g.shuffled(sites)
	n := len(order)
	nHTTPS := round(float64(n) * cal.HTTPSFrac[band])
	https := order[:minInt(nHTTPS, n)]
	for _, s := range order[minInt(nHTTPS, n):] {
		ss := &s.Snap[snap]
		ss.HTTPS = false
		ss.CA = ""
		ss.PrivateCA = false
		ss.Stapled = false
	}
	if len(https) == 0 {
		return
	}
	nPrivate := round(float64(len(https)) * cal.PrivateCAFrac[band])
	nThirdCDN := minInt(nPrivate, round(float64(n)*cal.PrivateCAThirdCDNFrac))
	nThirdDNS := minInt(nPrivate-nThirdCDN, round(float64(n)*cal.PrivateCAThirdDNSFrac))
	for i, s := range https[:minInt(nPrivate, len(https))] {
		ss := &s.Snap[snap]
		ss.HTTPS = true
		ss.PrivateCA = true
		ss.CA = ""
		ss.PrivateCAThirdCDN = i < nThirdCDN
		ss.PrivateCAThirdDNS = i >= nThirdCDN && i < nThirdCDN+nThirdDNS
		ss.PrivateCAAlias = ss.PrivateCAThirdCDN || ss.PrivateCAThirdDNS ||
			g.rng.Float64() < privateCAAliasFrac
		ss.Stapled = g.rng.Float64() < cal.PrivateStapleRate
	}
	thirdSites := https[minInt(nPrivate, len(https)):]
	shares := g.withTail(cal.Shares, SvcCA, cal.TailShare, snap)
	names := g.apportion(shares, len(thirdSites))
	for i, s := range thirdSites {
		ss := &s.Snap[snap]
		ss.HTTPS = true
		ss.PrivateCA = false
		ss.PrivateCAAlias = false
		ss.PrivateCAThirdCDN = false
		ss.PrivateCAThirdDNS = false
		ss.CA = names[i]
		rate, ok := cal.StapleRate[names[i]]
		if !ok {
			rate = cal.DefaultStapleRate
		}
		ss.Stapled = g.rng.Float64() < rate
	}
}

func round(f float64) int {
	if f < 0 {
		return 0
	}
	return int(f + 0.5)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
