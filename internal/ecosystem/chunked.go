package ecosystem

import (
	"math/rand"

	"depscope/internal/certs"
	"depscope/internal/chain"
	"depscope/internal/dnszone"
	"depscope/internal/webpage"
)

// Chunked is the streaming counterpart of Materialize, built for runs whose
// landing pages do not fit in memory at once. Zones, certificates and the
// CNAME→CDN map are still fully resident — the measurement's inter-service
// passes and the validation baselines resolve against them after the site
// sweep — but pages exist only between MaterializePages and ReleasePages
// for one batch at a time. The per-site materialization is exactly the
// monolithic one (siteZone/sitePage in the same per-site order), so a
// chunked world with all pages materialized is byte-identical to
// Materialize's output; the invariants tests pin this via SiteFingerprints.
//
// The intended driving sequence (see analysis.Execute's compact path):
//
//	c := NewChunked(u, snap)
//	c.EnableChains(cfg)                  // optional, before any AddSites
//	for each batch: c.AddSites(lo, hi)   // zones + certs + CNAME entries
//	... seal the measurement ...
//	for each batch:
//	    c.MaterializePages(lo, hi)       // pages (+ chain growth)
//	    ... measure the batch ...
//	    c.ReleasePages(lo, hi)
type Chunked struct {
	u       *Universe
	m       *materializer
	pending []*Site // existing sites of the snapshot, rank order

	chainCfg     *chain.Config
	chainVendors []chainVendor
}

// NewChunked builds the base world — provider and external zones — and the
// ranked list of sites to stream. No site data is materialized yet.
func NewChunked(u *Universe, snap Snapshot) *Chunked {
	w := &World{
		Snapshot:   snap,
		Scale:      u.Scale,
		Zones:      dnszone.NewStore(),
		Certs:      certs.NewStore(),
		Pages:      make(map[string]*webpage.Page),
		CNAMEToCDN: make(map[string]string),
		Streamed:   true,
	}
	c := &Chunked{u: u, m: &materializer{u: u, w: w, snap: snap}}
	c.m.providerZones()
	c.m.externalZones()
	for _, site := range u.List(snap) {
		if site.Snap[snap].Exists {
			c.pending = append(c.pending, site)
		}
	}
	return c
}

// World returns the (incrementally filled) world. Sites appear in it as
// AddSites materializes their zones.
func (c *Chunked) World() *World { return c.m.w }

// Len returns the number of sites the stream will materialize.
func (c *Chunked) Len() int { return len(c.pending) }

// SiteNames returns the full ranked site-name list without materializing
// anything — the measurement stream needs it up front to size its result
// table.
func (c *Chunked) SiteNames() []string {
	names := make([]string, len(c.pending))
	for i, s := range c.pending {
		names[i] = s.Domain
	}
	return names
}

// EnableChains switches on chain materialization: the vendor universe's
// zones are added to the world now, and MaterializePages grows per-page
// chains with the same per-site seeded RNG as MaterializeChains — chain
// content is a pure function of (universe, cfg, site), so batch boundaries
// cannot perturb it. Must be called before the first MaterializePages; a
// disabled cfg is a no-op, matching MaterializeChains.
func (c *Chunked) EnableChains(cfg chain.Config) {
	if !cfg.Enabled() {
		return
	}
	c.chainCfg = &cfg
	c.chainVendors = chainVendorUniverse(cfg.Vendors)
	for i := range c.chainVendors {
		c.m.chainVendorZone(&c.chainVendors[i])
	}
}

// AddSites materializes zones, certificates and CNAME→CDN entries for the
// ranked site range [lo, hi) and appends the names to World.Sites. Ranges
// must be fed in order, exactly once, starting at 0.
func (c *Chunked) AddSites(lo, hi int) {
	if lo != len(c.m.w.Sites) {
		panic("ecosystem: Chunked.AddSites ranges must be contiguous from 0")
	}
	for _, s := range c.pending[lo:hi] {
		c.m.siteZone(s)
		c.m.w.Sites = append(c.m.w.Sites, s.Domain)
	}
}

// MaterializePages materializes landing pages (plus chain growth when
// enabled) for the site range [lo, hi). The range must already have been
// through AddSites.
func (c *Chunked) MaterializePages(lo, hi int) {
	if hi > len(c.m.w.Sites) {
		panic("ecosystem: Chunked.MaterializePages before AddSites")
	}
	for _, s := range c.pending[lo:hi] {
		c.m.sitePage(s)
		if c.chainCfg != nil {
			page := c.m.w.Pages[s.Domain]
			rng := rand.New(rand.NewSource(chainSeed(c.chainCfg.Seed, s.Domain)))
			growChains(page, c.chainVendors, *c.chainCfg, rng)
		}
	}
}

// ReleasePages drops the landing pages of the site range [lo, hi) so the
// batch's page memory can be collected.
func (c *Chunked) ReleasePages(lo, hi int) {
	for _, s := range c.pending[lo:hi] {
		delete(c.m.w.Pages, s.Domain)
	}
}
