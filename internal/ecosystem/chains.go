package ecosystem

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"depscope/internal/chain"
	"depscope/internal/dnsmsg"
	"depscope/internal/dnszone"
	"depscope/internal/webpage"
)

// This file materializes transitive resource-inclusion chains on top of an
// already-materialized World: a vendor universe (script/font/widget
// operators that only ever appear inside chains, each with its own DNS
// delegation and optionally a CDN-fronted static host) and, per landing
// page, child resources hanging off the page-level ones with power-law
// fan-out up to chain.Config.MaxDepth.
//
// MaterializeChains is a separate entry point, NOT part of Materialize, for
// a load-bearing reason: the generator consumes a single RNG stream, and
// the measurement pinning tests require chains-off runs to stay
// byte-identical. Chains therefore derive all randomness from per-site
// hashes of the chain seed, never touching the generator's stream, and a
// world never passed through MaterializeChains is bit-identical to one
// built before this file existed.

// chainVendor is one synthetic implicitly-trusted operator.
type chainVendor struct {
	domain  string // registrable domain; the measured provider identity
	host    string // static.<domain> — the host chain resources load from
	dnsDep  ProviderDNS
	cdnProv string // CDN provider name fronting host; "" serves directly
}

// chainVendorUniverse derives the deterministic vendor population. Vendor
// i's arrangement depends only on i, so the universe is stable across
// runs, worker counts and scales. DNS choices are skewed toward the big
// operators (the implicit-concentration signal under study); every name
// referenced exists in both snapshots.
func chainVendorUniverse(n int) []chainVendor {
	dnsPool := []string{
		"Cloudflare", "Cloudflare", "Cloudflare", // 30% Cloudflare
		"AWS DNS", "AWS DNS", // 20% AWS
		"Dyn", "GoDaddy", "NS1", "UltraDNS", // 10% each
		"", // 10% private DNS
	}
	cdnPool := []string{"Amazon CloudFront", "Fastly", "", "Akamai", "", "Cloudflare CDN"}
	out := make([]chainVendor, n)
	for i := range out {
		domain := fmt.Sprintf("chain-vendor-%02d.net", i)
		v := chainVendor{
			domain:  domain,
			host:    "static." + domain,
			cdnProv: cdnPool[i%len(cdnPool)],
		}
		if dns := dnsPool[i%len(dnsPool)]; dns == "" {
			v.dnsDep = ProviderDNS{Private: true}
		} else {
			v.dnsDep = ProviderDNS{Third: []string{dns}}
		}
		out[i] = v
	}
	return out
}

// MaterializeChains extends w with the chain vendor universe and per-page
// resource chains. It must run after Materialize (it needs the provider
// zones and landing pages) and is a no-op when cfg is disabled
// (MaxDepth <= 1). The page walk visits w.Sites in rank order with a
// per-site seeded RNG, so results are independent of everything but
// (universe, cfg).
func MaterializeChains(u *Universe, w *World, cfg chain.Config) {
	if !cfg.Enabled() {
		return
	}
	vendors := chainVendorUniverse(cfg.Vendors)
	m := &materializer{u: u, w: w, snap: w.Snapshot}
	for i := range vendors {
		m.chainVendorZone(&vendors[i])
	}
	for _, site := range w.Sites {
		page := w.Pages[site]
		if page == nil {
			continue
		}
		rng := rand.New(rand.NewSource(chainSeed(cfg.Seed, site)))
		growChains(page, vendors, cfg, rng)
	}
}

// chainVendorZone materializes one vendor's DNS zone: delegation per its
// arrangement (own SOA master, so the soa heuristic sees a third party
// cleanly), an apex address, and the static host either CNAMEd into its
// CDN's edge namespace or answered directly.
func (m *materializer) chainVendorZone(v *chainVendor) {
	origin := v.domain + "."
	soa := dnsmsg.SOAData{
		MName: "ns1." + v.domain + ".", RName: "ops." + v.domain + ".",
		Serial: 2020010101, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
	}
	z := dnszone.NewZone(origin, soa)
	m.zoneNS(z, origin, v.domain, v.dnsDep)
	z.MustAdd(dnsmsg.Record{Name: origin, Type: dnsmsg.TypeA, TTL: 300, IP: []byte{198, 51, 100, 70}})
	if v.cdnProv != "" {
		cp := m.u.Providers[v.cdnProv]
		if cp == nil {
			panic("ecosystem: chain vendor uses unknown CDN " + v.cdnProv)
		}
		z.MustAdd(dnsmsg.Record{Name: v.host + ".", Type: dnsmsg.TypeCNAME, TTL: 300,
			Target: "v-" + slugOf(v.domain) + "." + cp.CNAMESuffix + "."})
	} else {
		z.MustAdd(dnsmsg.Record{Name: v.host + ".", Type: dnsmsg.TypeA, TTL: 300, IP: []byte{198, 51, 100, 71}})
	}
	m.w.Zones.AddZone(z)
}

// maxChainResources caps per-page chain growth: the fan-out draw has a
// geometric tail, and a page must stay a page, not a crawl frontier.
const maxChainResources = 256

// growChains appends child resources to page for depths 2..MaxDepth. Every
// existing (page-level) resource is a depth-1 chain root; each frontier
// resource spawns a geometric number of children with mean cfg.FanOut, and
// each child is vendor-hosted with probability cfg.ThirdPartyRatio or
// same-host otherwise (a site's own bundle pulling a second internal
// asset).
func growChains(page *webpage.Page, vendors []chainVendor, cfg chain.Config, rng *rand.Rand) {
	type node struct {
		idx  int    // 1-based resource index
		host string // serving host
	}
	frontier := make([]node, 0, len(page.Resources))
	for i, r := range page.Resources {
		frontier = append(frontier, node{idx: i + 1, host: r.Host})
	}
	p := cfg.FanOut / (1 + cfg.FanOut)
	added := 0
	for depth := 2; depth <= cfg.MaxDepth && len(frontier) > 0; depth++ {
		var next []node
		for _, parent := range frontier {
			k := 0
			for rng.Float64() < p && k < 8 {
				k++
			}
			for j := 0; j < k && added < maxChainResources; j++ {
				host := parent.host
				if rng.Float64() < cfg.ThirdPartyRatio {
					host = vendors[rng.Intn(len(vendors))].host
				}
				url := fmt.Sprintf("https://%s/chain-d%d-%d.js", host, depth, added)
				idx := page.AddResourceAt(url, parent.idx)
				next = append(next, node{idx: idx, host: host})
				added++
			}
		}
		frontier = next
	}
}

// chainSeed derives a site's chain RNG seed from the configured seed and
// the site name (fnv-1a), so per-site chains are independent of site
// iteration order and of each other.
func chainSeed(seed int64, site string) int64 {
	h := fnv.New64a()
	h.Write([]byte(site))
	return seed ^ int64(h.Sum64())
}
