package ecosystem

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"sort"
	"strings"
)

// This file computes per-site content fingerprints over a materialized
// world: a stable hash of everything the measurement pipeline can observe
// about one site (its zone, brand-alias and PKI zones, certificate and
// landing page), folded with a world-level hash of the shared surface
// (provider zones, external zones, the CNAME→CDN map). Checkpointed runs
// use these to decide what survives a universe edit: a site whose
// fingerprint is unchanged keeps its checkpointed measurement, an edited
// site is re-measured, and any provider-side edit changes the world hash —
// and with it every site fingerprint — forcing a full re-measurement, since
// provider infrastructure is visible from every site's classification.

// SiteFingerprints returns the content fingerprint of every site in the
// world, keyed by site domain. Fingerprints are deterministic across
// processes for the same materialized content.
func (w *World) SiteFingerprints() map[string]string {
	owned := make(map[string]bool, 3*len(w.Sites))
	for _, d := range w.Sites {
		for _, origin := range siteOrigins(d) {
			owned[origin] = true
		}
	}

	// World hash: every zone not owned by a site, plus the CNAME→CDN map
	// and the snapshot identity.
	wh := sha256.New()
	fmt.Fprintf(wh, "snapshot=%s scale=%d\n", w.Snapshot, w.Scale)
	for _, origin := range w.Zones.Origins() {
		if owned[origin] {
			continue
		}
		hashZone(wh, w, origin)
	}
	cnames := make([]string, 0, len(w.CNAMEToCDN))
	for suffix, name := range w.CNAMEToCDN {
		cnames = append(cnames, suffix+"→"+name)
	}
	sort.Strings(cnames)
	for _, line := range cnames {
		fmt.Fprintln(wh, line)
	}
	worldSum := wh.Sum(nil)

	out := make(map[string]string, len(w.Sites))
	for _, d := range w.Sites {
		h := sha256.New()
		h.Write(worldSum)
		for _, origin := range siteOrigins(d) {
			hashZone(h, w, origin)
		}
		if c := w.Certs.Get(d); c != nil {
			fmt.Fprintf(h, "cert subject=%s issuer=%s org=%s stapled=%t sans=%s ocsp=%s cdp=%s\n",
				c.Subject, c.IssuerCA, c.IssuerOrgDomain, c.Stapled,
				strings.Join(c.SANs, ","),
				strings.Join(c.OCSPServers, ","),
				strings.Join(c.CRLDistributionPoints, ","))
		}
		if p := w.Page(d); p != nil {
			fmt.Fprintln(h, p.RenderHTML())
		}
		out[d] = hex.EncodeToString(h.Sum(nil))
	}
	return out
}

// siteOrigins lists the zone origins attributable to one site: its own
// domain plus the derived brand-alias and PKI domains (which exist only for
// some sites; absent zones simply contribute nothing).
func siteOrigins(domain string) []string {
	base := domain
	if i := strings.IndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return []string{
		domain + ".",
		base + "-brand.net.",
		base + "-pki.net.",
	}
}

// hashZone folds one zone's canonical zone-file rendering into h; a missing
// zone contributes a marker so present-vs-absent is distinguishable.
func hashZone(h hash.Hash, w *World, origin string) {
	z := w.Zones.Zone(origin)
	if z == nil {
		fmt.Fprintf(h, "zone %s absent\n", origin)
		return
	}
	fmt.Fprintf(h, "zone %s\n", origin)
	if _, err := z.WriteTo(h); err != nil {
		// WriteTo can only fail on unrenderable record types, which the
		// generator never emits; fold the error so the fingerprint still
		// changes rather than silently matching.
		fmt.Fprintf(h, "zone %s error %v\n", origin, err)
	}
}
