package ecosystem

// This file is the single home of every calibration constant. Each number
// is annotated with the paper statement it reproduces; the measurement
// pipeline re-derives these aggregates from the generated artifacts, so the
// experiment harness checks amount to closed-loop validation.
//
// Band semantics: rank bands k=100, 1K, 10K, 100K of the paper generalise to
// fractions of the list length N: band 0 holds ranks (0, N/1000], band 1
// (N/1000, N/100], band 2 (N/100, N/10], band 3 (N/10, N].

// NumBands is the number of popularity bands.
const NumBands = 4

// BandOf returns the band index of rank within a list of length scale.
func BandOf(rank, scale int) int {
	switch {
	case rank*1000 <= scale:
		return 0
	case rank*100 <= scale:
		return 1
	case rank*10 <= scale:
		return 2
	default:
		return 3
	}
}

// BandLabel names a band for display, given the list length.
func BandLabel(band, scale int) string {
	div := []int{1000, 100, 10, 1}[band]
	k := scale / div
	switch {
	case k >= 1000:
		return "k=" + itoa(k/1000) + "K"
	default:
		return "k=" + itoa(k)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Share assigns a probability mass to a provider.
type Share struct {
	Provider string
	Weight   float64
}

// ModeMix is a distribution over dependency modes for one band.
type ModeMix struct {
	Private, Single, Multi, Mixed float64
}

// DNSCalib calibrates website→DNS dependencies for one snapshot.
type DNSCalib struct {
	// UncharacterizedFrac is the fraction of sites whose nameserver pairs
	// defeat every heuristic (paper §3.1: 18% of the top-100K excluded).
	UncharacterizedFrac float64
	// Mix is the mode distribution per band over characterized sites.
	// 2020 targets (Fig 2): third-party [49,62,76,89]%, critical
	// [28,45,66,85]%, multi-third [13,10,6,3]%, private+third [8,7,4,1]%.
	Mix [NumBands]ModeMix
	// ImpactShares distributes single-third (critical) sites over providers;
	// weights are percentage points of characterized sites in band 3 terms
	// (Fig 5a impact labels: Cloudflare 23, AWS DNS 9, GoDaddy 8, ...).
	ImpactShares []Share
	// RedundantShares distributes provider slots of multi-third and mixed
	// sites (concentration minus impact in Fig 5a: e.g. Cloudflare C−I=1,
	// DNSMadeEasy high redundancy).
	RedundantShares []Share
	// Band0Redundant overrides RedundantShares in the top band: the paper
	// notes Dyn is the most popular provider among the top-100 with 17%
	// using it but only 2% critical.
	Band0Redundant []Share
	// SOAEqualFrac is the fraction of third-party sites whose zone SOA
	// fully points at the provider (paper: the twitter.com/Dyn case that
	// breaks SOA-only classification; such sites are only classifiable via
	// the concentration rule). Applied only to providers large enough to
	// clear the concentration threshold.
	SOAEqualFrac float64
	// VanityNSFrac is the fraction of private sites using a brand-alias
	// nameserver domain covered by the SAN list (youtube/*.google.com).
	VanityNSFrac float64
	// AliasRedundantFrac is the fraction of would-be multi-third sites that
	// actually use one entity under two NS domains (alicdn/alibabadns):
	// ground truth single-third.
	AliasRedundantFrac float64
	// TailProviders is the number of procedurally generated small providers
	// carrying TailShare of characterized sites; it shapes the Fig 6a CDF
	// (2016: 2705 providers cover 80%; 2020: 54).
	TailProviders int
	TailShare     float64
}

// CDNCalib calibrates website→CDN dependencies for one snapshot.
type CDNCalib struct {
	// UseFrac is the fraction of sites using any CDN, per band (2020:
	// 33.2% overall, Table 1; higher among popular sites).
	UseFrac [NumBands]float64
	// PrivateOnlyFrac is the fraction of CDN users on a private CDN only
	// (paper: 97.6% of CDN users use a third-party CDN → 2.4% private).
	PrivateOnlyFrac float64
	// CriticalFrac is, per band, the fraction of CDN users critically
	// dependent (Fig 3 / Obs 3: 43% in top-100 to 85% in top-100K).
	CriticalFrac [NumBands]float64
	// Shares distributes third-party CDN users (Fig 5b: CloudFront 30% of
	// CDN users, top-3 = 56%).
	Shares []Share
	// Band0Shares overrides in the top band (Akamai dominates the top-100).
	Band0Shares []Share
	// PrivateAliasFrac / ForeignSOAFrac split private-CDN sites into the
	// yahoo-yimg SAN case and the instagram foreign-SOA case.
	PrivateAliasFrac, ForeignSOAFrac float64
	// PrivateCDNThirdDNSFrac is the fraction of all sites with a private
	// CDN whose CDN zone critically uses a third-party DNS (paper §5.3:
	// 290 additional websites per 100K, e.g. twitter.com).
	PrivateCDNThirdDNSFrac float64
	// TailProviders carries TailShare of third-party CDN users (86 distinct
	// CDNs in 2020, 47 in 2016).
	TailProviders int
	TailShare     float64
}

// CACalib calibrates website→CA dependencies for one snapshot.
type CACalib struct {
	// HTTPSFrac per band (2020: 78.4% overall, Table 1; slightly higher for
	// popular sites, Fig 4).
	HTTPSFrac [NumBands]float64
	// PrivateCAFrac is the fraction of HTTPS sites on a private CA, per
	// band (Obs 5: 71% third-party in top-100 vs 77% in top-100K).
	PrivateCAFrac [NumBands]float64
	// Shares distributes third-party-CA HTTPS sites (Fig 5c: DigiCert top,
	// then Let's Encrypt, Sectigo in 2020).
	Shares []Share
	// StapleRate is the OCSP-stapling probability per CA name; CAs absent
	// from the map use DefaultStapleRate. Calibrated so ~22% of HTTPS sites
	// staple (17% of all sites, Obs 5) and Let's Encrypt/Sectigo users
	// staple more than DigiCert users (§4.2).
	StapleRate        map[string]float64
	DefaultStapleRate float64
	// PrivateStapleRate applies to private-CA sites.
	PrivateStapleRate float64
	// PrivateCAThirdCDNFrac is the fraction of all sites using a private CA
	// that itself uses a third-party CDN (paper §5.2: 32 sites per 100K,
	// e.g. microsoft.com). PrivateCAThirdDNSFrac likewise for DNS (§5.1:
	// 3 sites per 100K, e.g. godaddy.com).
	PrivateCAThirdCDNFrac, PrivateCAThirdDNSFrac float64
	// TailProviders carries TailShare of third-party HTTPS sites (59 CAs in
	// 2020, 70 in 2016).
	TailProviders int
	TailShare     float64
}

// Transition rates between the snapshots, per band, as fractions of the
// comparison population (sites on the 2016 list alive in 2020).
type Transitions struct {
	// DNS, Table 3.
	DNSPvtToSingle [NumBands]float64 // 2016 private -> 2020 single third
	DNSSingleToPvt [NumBands]float64 // 2016 single third -> 2020 private
	DNSRedToNoRed  [NumBands]float64 // 2016 redundant -> 2020 critical
	DNSNoRedToRed  [NumBands]float64 // 2016 critical -> 2020 redundant
	// CDN, Table 4 (fractions of comparison sites).
	CDNPvtToSingle [NumBands]float64
	CDNRedToNoRed  [NumBands]float64
	CDNNoRedToRed  [NumBands]float64
	// CDNStart / CDNStop: fraction of comparison sites that started (18.6%)
	// or stopped (6.8%) using a CDN between snapshots (§4.1 Obs 4).
	CDNStart, CDNStop float64
	// CA, Table 5 (fractions of sites HTTPS in both years).
	CAStapleToNo [NumBands]float64
	CANoToStaple [NumBands]float64
	// HTTPSAdoptFrac: fraction of comparison sites that adopted HTTPS
	// between 2016 and 2020 (23,196 of 96,200, §4.1 Obs 6); of these,
	// NewHTTPSStapleFrac staple in 2020 (11.9%).
	HTTPSAdoptFrac, NewHTTPSStapleFrac float64
	// DeadFrac is the fraction of the 2016 list gone by 2020 (§3: 3.8%).
	DeadFrac float64
}

// Calibration bundles everything the generator needs.
type Calibration struct {
	DNS   map[Snapshot]*DNSCalib
	CDN   map[Snapshot]*CDNCalib
	CA    map[Snapshot]*CACalib
	Trans Transitions
}

// DefaultCalibration returns the paper-calibrated tables.
func DefaultCalibration() *Calibration {
	return &Calibration{
		DNS: map[Snapshot]*DNSCalib{
			Y2020: {
				UncharacterizedFrac: 0.18,
				Mix: [NumBands]ModeMix{
					{Private: 0.51, Single: 0.28, Multi: 0.13, Mixed: 0.08},
					{Private: 0.38, Single: 0.45, Multi: 0.10, Mixed: 0.07},
					{Private: 0.24, Single: 0.66, Multi: 0.06, Mixed: 0.04},
					{Private: 0.11, Single: 0.85, Multi: 0.03, Mixed: 0.01},
				},
				ImpactShares: []Share{
					{"Cloudflare", 23}, {"AWS DNS", 9}, {"GoDaddy", 8},
					{"DNSMadeEasy", 1}, {"NS1", 0.7}, {"UltraDNS", 0.6},
					{"Dyn", 0.2}, {"Azure DNS", 2.2}, {"Google Cloud DNS", 2.0},
					{"Alibaba DNS", 1.8}, {"DNSPod", 1.6}, {"Hetzner DNS", 1.2},
					{"OVH DNS", 1.2}, {"Gandi", 1.0}, {"Namecheap DNS", 1.0},
					{"Wix DNS", 1.0}, {"Squarespace DNS", 0.9}, {"Linode DNS", 0.8},
					{"DigitalOcean DNS", 0.8}, {"Vercel DNS", 0.7}, {"Netlify DNS", 0.7},
					{"Akamai Edge DNS", 0.7}, {"Rackspace DNS", 0.6}, {"Yandex DNS", 0.6},
					{"HiChina", 0.6}, {"West263", 0.5}, {"DNSimple", 0.5},
					{"easyDNS", 0.5}, {"ClouDNS", 0.5}, {"Name.com DNS", 0.5},
					{"Hostgator DNS", 0.5}, {"Bluehost DNS", 0.5}, {"Dreamhost DNS", 0.5},
					{"Hover DNS", 0.4}, {"Porkbun DNS", 0.4}, {"Domain.com DNS", 0.4},
					{"Register.com DNS", 0.4}, {"Network Solutions DNS", 0.4},
					{"IONOS DNS", 0.4}, {"Strato DNS", 0.4}, {"Aruba DNS", 0.4},
					{"Loopia DNS", 0.3}, {"Active24 DNS", 0.3}, {"Websupport DNS", 0.3},
					{"Eurodns", 0.3}, {"InternetX", 0.3}, {"CSC DNS", 0.3},
					{"MarkMonitor DNS", 0.3}, {"SafeNames DNS", 0.3}, {"Instra DNS", 0.3},
					{"NameBright DNS", 0.3}, {"Epik DNS", 0.2}, {"Dynadot DNS", 0.2},
					{"Sav DNS", 0.2},
				},
				RedundantShares: []Share{
					{"Cloudflare", 1.0}, {"AWS DNS", 1.0}, {"GoDaddy", 0.5},
					{"DNSMadeEasy", 1.0}, {"NS1", 0.8}, {"UltraDNS", 0.6},
					{"Dyn", 0.4}, {"Azure DNS", 0.4}, {"Google Cloud DNS", 0.4},
					{"Verisign DNS", 0.4}, {"Neustar DNS", 0.3}, {"Akamai Edge DNS", 0.2},
				},
				Band0Redundant: []Share{
					{"Dyn", 17}, {"UltraDNS", 8}, {"AWS DNS", 6}, {"NS1", 5},
					{"DNSMadeEasy", 4}, {"Verisign DNS", 3}, {"Akamai Edge DNS", 3},
				},
				SOAEqualFrac:       0.85,
				VanityNSFrac:       0.04,
				AliasRedundantFrac: 0.08,
				TailProviders:      1500,
				TailShare:          9.3,
			},
			Y2016: {
				UncharacterizedFrac: 0.18,
				// Derived from 2020 via Table 3 deltas: critical −4.7pp at
				// k=100K, +2pp at k=100, etc.
				Mix: [NumBands]ModeMix{
					{Private: 0.50, Single: 0.30, Multi: 0.12, Mixed: 0.08},
					{Private: 0.43, Single: 0.395, Multi: 0.10, Mixed: 0.075},
					{Private: 0.295, Single: 0.605, Multi: 0.06, Mixed: 0.04},
					{Private: 0.157, Single: 0.803, Multi: 0.03, Mixed: 0.01},
				},
				// 2016 is much flatter (Fig 6a: 2705 providers for 80% of
				// sites vs 54 in 2020); top-3 impact 29.3% (§4.2 Obs 8).
				ImpactShares: []Share{
					{"Cloudflare", 11.5}, {"AWS DNS", 9.5}, {"GoDaddy", 8.3},
					{"Dyn", 1.2}, {"DNSMadeEasy", 0.9}, {"NS1", 0.5},
					{"UltraDNS", 0.7}, {"Azure DNS", 0.9}, {"Google Cloud DNS", 0.8},
					{"Alibaba DNS", 0.9}, {"DNSPod", 0.9}, {"Hetzner DNS", 0.6},
					{"OVH DNS", 0.6}, {"Gandi", 0.5}, {"Namecheap DNS", 0.5},
					{"Wix DNS", 0.3}, {"Squarespace DNS", 0.3}, {"Linode DNS", 0.4},
					{"DigitalOcean DNS", 0.4}, {"Rackspace DNS", 0.5},
					{"Yandex DNS", 0.4}, {"HiChina", 0.5}, {"West263", 0.4},
					{"DNSimple", 0.3}, {"easyDNS", 0.3}, {"ClouDNS", 0.3},
					{"Name.com DNS", 0.3}, {"Hostgator DNS", 0.4},
					{"Bluehost DNS", 0.4}, {"Dreamhost DNS", 0.4},
					{"Hover DNS", 0.3}, {"Porkbun DNS", 0.2}, {"Domain.com DNS", 0.3},
					{"Register.com DNS", 0.3}, {"Network Solutions DNS", 0.4},
					{"IONOS DNS", 0.3}, {"Strato DNS", 0.3}, {"Aruba DNS", 0.3},
					{"Loopia DNS", 0.2}, {"Active24 DNS", 0.2}, {"Websupport DNS", 0.2},
					{"Eurodns", 0.2}, {"InternetX", 0.2}, {"CSC DNS", 0.2},
					{"MarkMonitor DNS", 0.2}, {"SafeNames DNS", 0.2}, {"Instra DNS", 0.2},
					{"NameBright DNS", 0.2}, {"Epik DNS", 0.2}, {"Dynadot DNS", 0.2},
					{"Sav DNS", 0.2}, {"Verisign DNS", 0.4}, {"Neustar DNS", 0.4},
				},
				RedundantShares: []Share{
					{"Dyn", 1.6}, {"UltraDNS", 0.8}, {"AWS DNS", 0.8},
					{"NS1", 0.6}, {"DNSMadeEasy", 0.8}, {"GoDaddy", 0.5},
					{"Cloudflare", 0.5}, {"Verisign DNS", 0.5}, {"Neustar DNS", 0.4},
					{"Google Cloud DNS", 0.3},
				},
				Band0Redundant: []Share{
					{"Dyn", 17}, {"UltraDNS", 9}, {"AWS DNS", 5}, {"NS1", 5},
					{"DNSMadeEasy", 4}, {"Verisign DNS", 4}, {"Neustar DNS", 3},
				},
				SOAEqualFrac:       0.85,
				VanityNSFrac:       0.04,
				AliasRedundantFrac: 0.08,
				TailProviders:      5200,
				TailShare:          36.0,
			},
		},
		CDN: map[Snapshot]*CDNCalib{
			Y2020: {
				UseFrac:         [NumBands]float64{0.60, 0.52, 0.42, 0.325},
				PrivateOnlyFrac: 0.024,
				CriticalFrac:    [NumBands]float64{0.43, 0.60, 0.75, 0.85},
				Shares: []Share{
					{"Amazon CloudFront", 30}, {"Cloudflare CDN", 21},
					{"Fastly", 6}, {"Akamai", 5}, {"Incapsula", 3},
					{"StackPath", 2}, {"KeyCDN", 1.5}, {"jsDelivr", 1.5},
					{"CDN77", 1.2}, {"Azure CDN", 1.2}, {"Google Cloud CDN", 1.0},
					{"BunnyCDN", 0.9}, {"CacheFly", 0.8}, {"Limelight", 0.8},
					{"CDNetworks", 0.8}, {"ChinaNetCenter", 0.8}, {"ArvanCloud", 0.7},
					{"G-Core Labs", 0.7}, {"Medianova", 0.6}, {"Netlify CDN", 0.6},
					{"Vercel CDN", 0.6}, {"Sucuri", 0.6}, {"Alibaba CDN", 0.6},
					{"Tencent CDN", 0.5}, {"Baidu CDN", 0.5}, {"GoCache", 0.3},
					{"Zenedge", 0.3}, {"Kinx CDN", 0.3},
				},
				Band0Shares: []Share{
					{"Akamai", 40}, {"Amazon CloudFront", 18}, {"Fastly", 14},
					{"Cloudflare CDN", 8}, {"Limelight", 6}, {"CDNetworks", 4},
				},
				PrivateAliasFrac:       0.5,
				ForeignSOAFrac:         0.25,
				PrivateCDNThirdDNSFrac: 0.0029,
				TailProviders:          60,
				TailShare:              10.0,
			},
			Y2016: {
				UseFrac:         [NumBands]float64{0.55, 0.46, 0.36, 0.28},
				PrivateOnlyFrac: 0.03,
				CriticalFrac:    [NumBands]float64{0.49, 0.64, 0.77, 0.85},
				// 2016: Cloudflare on top, top-3 cover 73% of CDN users
				// (20.8% of all sites, §4.2 Obs 8).
				Shares: []Share{
					{"Cloudflare CDN", 35}, {"Amazon CloudFront", 24},
					{"Akamai", 14}, {"Fastly", 5}, {"Incapsula", 2},
					{"MaxCDN", 2}, {"EdgeCast", 1.5}, {"Limelight", 1.5},
					{"CDNetworks", 1.2}, {"ChinaNetCenter", 1.0},
					{"KeyCDN", 0.8}, {"CDN77", 0.8}, {"CacheFly", 0.6},
					{"Azure CDN", 0.6}, {"Google Cloud CDN", 0.5}, {"GoCache", 0.3},
					{"Zenedge", 0.3}, {"Kinx CDN", 0.3}, {"Netlify CDN", 0.3},
					{"jsDelivr", 0.3},
				},
				Band0Shares: []Share{
					{"Akamai", 42}, {"Fastly", 15}, {"Amazon CloudFront", 12},
					{"Cloudflare CDN", 9}, {"Limelight", 7}, {"EdgeCast", 5},
				},
				PrivateAliasFrac:       0.5,
				ForeignSOAFrac:         0.25,
				PrivateCDNThirdDNSFrac: 0.0029,
				TailProviders:          25,
				TailShare:              9.5,
			},
		},
		CA: map[Snapshot]*CACalib{
			Y2020: {
				HTTPSFrac:     [NumBands]float64{0.95, 0.92, 0.85, 0.774},
				PrivateCAFrac: [NumBands]float64{0.29, 0.27, 0.25, 0.228},
				Shares: []Share{
					{"DigiCert", 32}, {"Let's Encrypt", 19}, {"Sectigo", 11},
					{"Amazon CA", 5}, {"GlobalSign", 3}, {"GoDaddy CA", 2},
					{"Entrust", 1.5}, {"Actalis", 0.6}, {"Buypass", 0.4},
					{"SSL.com", 0.4}, {"Certum", 0.4}, {"TrustAsia", 0.3},
					{"SwissSign", 0.2}, {"QuoVadis", 0.2}, {"IdenTrust", 0.2},
					{"WISeKey", 0.1}, {"Internet2 CA", 0.1}, {"TeliaSonera CA", 0.1},
					// Legacy brands absorbed or shrunk after 2016 keep a
					// sliver so the Table 7 provider trends observe them in
					// both snapshots.
					{"GeoTrust", 0.1}, {"Thawte", 0.05}, {"RapidSSL", 0.05},
					{"StartCom", 0.05}, {"WoSign", 0.05}, {"Network Solutions CA", 0.05},
				},
				StapleRate: map[string]float64{
					"DigiCert": 0.15, "Let's Encrypt": 0.30, "Sectigo": 0.28,
					"Amazon CA": 0.08, "GlobalSign": 0.08,
				},
				DefaultStapleRate:     0.20,
				PrivateStapleRate:     0.30,
				PrivateCAThirdCDNFrac: 0.00032,
				PrivateCAThirdDNSFrac: 0.00003,
				TailProviders:         35,
				TailShare:             0.9,
			},
			Y2016: {
				HTTPSFrac:     [NumBands]float64{0.80, 0.70, 0.58, 0.46},
				PrivateCAFrac: [NumBands]float64{0.30, 0.28, 0.26, 0.24},
				// 2016: Sectigo (Comodo) leads, Symantec present, top-3
				// impact 26% (§4.2 Obs 8); Let's Encrypt impact 2.4%.
				Shares: []Share{
					{"Sectigo", 18}, {"Symantec", 8}, {"GoDaddy CA", 7},
					{"GeoTrust", 6}, {"DigiCert", 5}, {"GlobalSign", 5},
					{"Let's Encrypt", 3}, {"Entrust", 2}, {"Thawte", 2},
					{"RapidSSL", 2}, {"StartCom", 1.5}, {"WoSign", 1},
					{"Certum", 0.8}, {"Actalis", 0.5}, {"TrustAsia", 0.4},
					{"Network Solutions CA", 0.4}, {"SwissSign", 0.3},
					{"QuoVadis", 0.3}, {"IdenTrust", 0.2}, {"Buypass", 0.2},
					{"WISeKey", 0.1}, {"Internet2 CA", 0.1}, {"TeliaSonera CA", 0.1},
				},
				StapleRate: map[string]float64{
					"DigiCert": 0.20, "Let's Encrypt": 0.25,
				},
				DefaultStapleRate:     0.21,
				PrivateStapleRate:     0.28,
				PrivateCAThirdCDNFrac: 0.00030,
				PrivateCAThirdDNSFrac: 0.00003,
				TailProviders:         45,
				TailShare:             1.0,
			},
		},
		Trans: Transitions{
			DNSPvtToSingle: [NumBands]float64{0.000, 0.074, 0.098, 0.107},
			DNSSingleToPvt: [NumBands]float64{0.010, 0.016, 0.042, 0.060},
			DNSRedToNoRed:  [NumBands]float64{0.010, 0.016, 0.010, 0.005},
			DNSNoRedToRed:  [NumBands]float64{0.020, 0.019, 0.011, 0.005},

			CDNPvtToSingle: [NumBands]float64{0.000, 0.003, 0.008, 0.005},
			CDNRedToNoRed:  [NumBands]float64{0.030, 0.027, 0.012, 0.011},
			CDNNoRedToRed:  [NumBands]float64{0.090, 0.068, 0.030, 0.016},
			CDNStart:       0.186,
			CDNStop:        0.068,

			CAStapleToNo: [NumBands]float64{0.075, 0.062, 0.091, 0.097},
			CANoToStaple: [NumBands]float64{0.037, 0.147, 0.129, 0.099},

			HTTPSAdoptFrac:     0.24,
			NewHTTPSStapleFrac: 0.119,
			DeadFrac:           0.038,
		},
	}
}
