// Package ecosystem generates the synthetic Internet the measurement
// pipeline runs against: ranked website lists for the 2016 and 2020
// snapshots, the third-party provider universe (DNS, CDN, CA), and the
// concrete artifacts the paper's methodology interrogates — DNS zones,
// certificates and landing pages.
//
// The generator is calibrated (calibration.go) against the aggregates the
// paper reports, then the pipeline in internal/measure re-discovers the
// dependency structure from the artifacts alone. Ground-truth labels are
// kept on the Site structs purely for validation tests, mirroring the
// paper's manually-verified 100-site samples.
package ecosystem

import "fmt"

// Snapshot selects one of the two measurement years.
type Snapshot int

// The two snapshots of the study.
const (
	Y2016 Snapshot = iota
	Y2020
)

// String returns the year.
func (s Snapshot) String() string {
	if s == Y2016 {
		return "2016"
	}
	return "2020"
}

// Service is an infrastructure service type.
type Service int

// Service types under study.
const (
	SvcDNS Service = iota
	SvcCDN
	SvcCA
)

// String names the service.
func (s Service) String() string {
	switch s {
	case SvcDNS:
		return "DNS"
	case SvcCDN:
		return "CDN"
	case SvcCA:
		return "CA"
	}
	return fmt.Sprintf("Service(%d)", int(s))
}

// DepMode describes how an actor uses providers of one service.
type DepMode int

// Dependency modes. The paper's redundancy analysis distinguishes exactly
// these: no use, private-only, a single third party (critical), multiple
// third parties, and private-plus-third (both redundant).
const (
	DepNone DepMode = iota
	DepPrivate
	DepSingleThird
	DepMultiThird
	DepPrivatePlusThird
)

// String names the mode.
func (m DepMode) String() string {
	switch m {
	case DepNone:
		return "none"
	case DepPrivate:
		return "private"
	case DepSingleThird:
		return "single-third"
	case DepMultiThird:
		return "multi-third"
	case DepPrivatePlusThird:
		return "private+third"
	}
	return fmt.Sprintf("DepMode(%d)", int(m))
}

// Critical reports whether the mode is a critical dependency (one third
// party, no redundancy).
func (m DepMode) Critical() bool { return m == DepSingleThird }

// UsesThird reports whether any third-party provider is involved.
func (m DepMode) UsesThird() bool {
	return m == DepSingleThird || m == DepMultiThird || m == DepPrivatePlusThird
}

// Provider is a third-party infrastructure provider.
type Provider struct {
	// Name is the display name, e.g. "Cloudflare".
	Name string
	// Service is what it sells.
	Service Service
	// Domain is the provider's organisational registrable domain
	// (e.g. "cloudflare.com"); nameserver hosts and OCSP/CDP hosts live
	// under it (or under NSDomains aliases).
	Domain string
	// NSDomains are the registrable domains its nameserver hosts use. Most
	// providers have one; same-entity aliases (the paper's alicdn.com /
	// alibabadns.com example) have several sharing one SOA MName.
	NSDomains []string
	// CNAMESuffix is the CDN edge-name suffix (CDN providers only),
	// e.g. "cloudfront.net": customers CNAME to <token>.<suffix>.
	CNAMESuffix string
	// OCSPHost and CDPHost are the revocation endpoints (CA providers only).
	OCSPHost, CDPHost string

	// DNSDeps maps snapshot to this provider's own DNS dependency: the
	// provider names of third-party DNS providers it uses. Empty slice with
	// Private true means a private DNS; both set means private+third.
	DNSDeps map[Snapshot]ProviderDNS
	// CDNDeps maps snapshot to the CDNs fronting this provider's
	// infrastructure (CAs: their OCSP/CDP endpoints).
	CDNDeps map[Snapshot]ProviderCDN

	// Exists2016/Exists2020 bound the provider's lifetime (Symantec's CA
	// business disappears into DigiCert between the snapshots).
	Exists2016, Exists2020 bool
}

// ProviderDNS is a provider's own DNS arrangement in one snapshot.
type ProviderDNS struct {
	Private bool     // runs nameservers under its own domain
	Third   []string // names of third-party DNS providers used
}

// Mode reduces the arrangement to a DepMode.
func (p ProviderDNS) Mode() DepMode {
	switch {
	case p.Private && len(p.Third) == 0:
		return DepPrivate
	case p.Private && len(p.Third) > 0:
		return DepPrivatePlusThird
	case len(p.Third) == 1:
		return DepSingleThird
	case len(p.Third) > 1:
		return DepMultiThird
	}
	return DepNone
}

// ProviderCDN is a provider's own CDN arrangement in one snapshot.
type ProviderCDN struct {
	Private bool
	Third   []string
}

// Mode reduces the arrangement to a DepMode.
func (p ProviderCDN) Mode() DepMode {
	switch {
	case p.Private && len(p.Third) == 0:
		return DepPrivate
	case p.Private && len(p.Third) > 0:
		return DepPrivatePlusThird
	case len(p.Third) == 1:
		return DepSingleThird
	case len(p.Third) > 1:
		return DepMultiThird
	}
	return DepNone
}

// TrapKind marks deliberately hard classification cases planted by the
// generator. They reproduce the paper's named corner cases and drive the
// heuristic-accuracy validation.
type TrapKind int

// Trap kinds.
const (
	TrapNone TrapKind = iota
	// TrapVanityNS: private DNS behind a brand-alias domain covered only by
	// the site's SAN list (the youtube.com / *.google.com case). TLD-only
	// classification overestimates third-party here.
	TrapVanityNS
	// TrapSOAEqual: the site's SOA points at its (large) third-party DNS
	// provider, so SOA comparison says "same authority". Only the
	// concentration rule classifies it (the twitter.com / Dyn case).
	TrapSOAEqual
	// TrapUnknown: SOA points at a small provider (concentration < 50):
	// the pair stays uncharacterized and the site is excluded, reproducing
	// the paper's 18% exclusion.
	TrapUnknown
	// TrapAliasRedundant: two nameserver domains that look independent but
	// share an SOA MNAME (the alicdn.com / alibabadns.com case): naive
	// redundancy detection overcounts.
	TrapAliasRedundant
	// TrapPrivateCDNAlias: a private CDN on an off-brand domain covered by
	// the SAN list (the yahoo.com / yimg.com case).
	TrapPrivateCDNAlias
	// TrapPrivateCDNForeignSOA: a private CDN whose zone SOA points at a
	// third-party DNS provider (the instagram / Facebook-CDN-on-AWS-SOA
	// case). SOA-only classification overestimates third-party CDNs.
	TrapPrivateCDNForeignSOA
)

// SiteSnapshot is a website's ground-truth configuration in one snapshot.
type SiteSnapshot struct {
	// Exists reports whether the site resolves at all in this snapshot.
	Exists bool

	// DNSMode and DNSProviders describe the authoritative-DNS arrangement.
	DNSMode      DepMode
	DNSProviders []string
	// DNSTrap marks a planted DNS classification corner case.
	DNSTrap TrapKind

	// HTTPS, CA and Stapled describe the certificate arrangement. PrivateCA
	// marks an organisation-owned CA.
	HTTPS     bool
	CA        string
	PrivateCA bool
	Stapled   bool
	// PrivateCAAlias places the private CA on a brand-alias pki domain
	// covered by the SAN list (the Google Trust Services / pki.goog case).
	PrivateCAAlias bool
	// PrivateCAThirdCDN / PrivateCAThirdDNS mark private CAs that themselves
	// ride a third-party CDN or DNS (the microsoft.com / godaddy.com cases
	// of §5.1–§5.2).
	PrivateCAThirdCDN, PrivateCAThirdDNS bool

	// CDNMode and CDNProviders describe content delivery. PrivateCDN marks
	// an organisation-owned CDN (on the site's alias domain).
	CDNMode      DepMode
	CDNProviders []string
	PrivateCDN   bool
	// CDNTrap marks a planted CDN classification corner case.
	CDNTrap TrapKind
}

// Site is one website across both snapshots.
type Site struct {
	// Domain is the site's registrable domain.
	Domain string
	// Rank2016 and Rank2020 are the positions on the respective lists;
	// zero means absent from that list.
	Rank2016, Rank2020 int
	// Snap holds the per-snapshot ground truth, indexed by Snapshot.
	Snap [2]SiteSnapshot
}

// AliasDomain returns the site's secondary brand domain used by vanity-NS
// and private-CDN-alias traps (e.g. yimg.com for yahoo.com).
func (s *Site) AliasDomain() string {
	base := s.Domain
	if i := indexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return base + "-brand.net"
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Universe is the full generated world: all sites (union of both lists) and
// all providers, with ground truth attached.
type Universe struct {
	// Scale is the length of each snapshot's ranked list.
	Scale int
	// Seed reproduces the generation.
	Seed int64
	// Sites holds every site on either list.
	Sites []*Site
	// Providers holds every provider, keyed by name.
	Providers map[string]*Provider

	providerOrder []string
	list2016      []*Site
	list2020      []*Site
}

// List returns the ranked website list of a snapshot (rank 1 first).
func (u *Universe) List(snap Snapshot) []*Site {
	if snap == Y2016 {
		return u.list2016
	}
	return u.list2020
}

// Provider returns a provider by name, or nil.
func (u *Universe) Provider(name string) *Provider {
	return u.Providers[name]
}

// ProvidersOf returns all providers of a service existing in snap, in
// declaration order.
func (u *Universe) ProvidersOf(svc Service, snap Snapshot) []*Provider {
	var out []*Provider
	for _, name := range u.providerOrder {
		p := u.Providers[name]
		if p.Service != svc {
			continue
		}
		if (snap == Y2016 && p.Exists2016) || (snap == Y2020 && p.Exists2020) {
			out = append(out, p)
		}
	}
	return out
}
