package ecosystem

import (
	"fmt"
	"math/rand"
	"sort"
)

// Options configures generation.
type Options struct {
	// Scale is the length of each snapshot's ranked list (the paper: 100K).
	Scale int
	// Seed drives all pseudo-random choices; equal seeds reproduce the
	// universe exactly.
	Seed int64
	// Calibration overrides the default paper-calibrated tables.
	Calibration *Calibration
}

// Generate builds the synthetic universe: the ranked lists of both
// snapshots, ground-truth site configurations and the provider population.
func Generate(opts Options) (*Universe, error) {
	if opts.Scale <= 0 {
		return nil, fmt.Errorf("ecosystem: scale must be positive, got %d", opts.Scale)
	}
	cal := opts.Calibration
	if cal == nil {
		cal = DefaultCalibration()
	}
	g := &generator{
		cal:   cal,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		scale: opts.Scale,
		u: &Universe{
			Scale:     opts.Scale,
			Seed:      opts.Seed,
			Providers: make(map[string]*Provider),
		},
	}
	g.buildProviderUniverse()
	g.buildSites()
	g.assignSnapshot(Y2020)
	g.deriveSnapshot2016()
	return g.u, nil
}

type generator struct {
	cal   *Calibration
	rng   *rand.Rand
	scale int
	u     *Universe

	// trapDNSProviders are the small "unknown" DNS providers behind the
	// uncharacterized cohort; trapIdx rotates through them across bands and
	// snapshots so no single one crosses the concentration threshold.
	trapDNSProviders []string
	trapIdx          int
}

func (g *generator) addProvider(p *Provider) {
	if _, dup := g.u.Providers[p.Name]; dup {
		panic("ecosystem: duplicate provider " + p.Name)
	}
	g.u.Providers[p.Name] = p
	g.u.providerOrder = append(g.u.providerOrder, p.Name)
}

// buildProviderUniverse installs the named providers plus procedural tails.
func (g *generator) buildProviderUniverse() {
	for _, p := range buildProviders() {
		g.addProvider(p)
	}

	// DNS tail: enough providers for the flatter 2016 CDF (Fig 6a). The
	// 2020 tail is the first TailProviders(2020) of them. Scale the counts
	// down for small universes so each tail provider keeps >=1 site.
	tail16 := scaledTail(g.cal.DNS[Y2016].TailProviders, g.scale)
	tail20 := scaledTail(g.cal.DNS[Y2020].TailProviders, g.scale)
	for i := 0; i < maxInt(tail16, tail20); i++ {
		p := tailProvider(SvcDNS, i, nil)
		p.Exists2016 = i < tail16
		p.Exists2020 = i < tail20
		g.addProvider(p)
	}

	// Uncharacterizable trap providers: small (concentration < 50), with
	// site SOAs pointing at them, so every heuristic is defeated.
	trapSites := int(float64(g.scale) * g.cal.DNS[Y2020].UncharacterizedFrac)
	trapCount := trapSites/30 + 1
	for i := 0; i < trapCount; i++ {
		p := newDNSProvider(fmt.Sprintf("Unknown DNS %04d", i), fmt.Sprintf("opaque-dns-%04d.net", i))
		g.addProvider(p)
		g.trapDNSProviders = append(g.trapDNSProviders, p.Name)
	}

	// CDN tail up to the paper's distinct-CDN totals (47 in 2016, 86 in
	// 2020), with DNS arrangements filling the Table 6 counts:
	// 2020: 31/86 third-party DNS, 15 critical (7 exclusively AWS DNS).
	cdnTail16 := scaledTail(g.cal.CDN[Y2016].TailProviders, g.scale)
	cdnTail20 := scaledTail(g.cal.CDN[Y2020].TailProviders, g.scale)
	total := maxInt(cdnTail16, cdnTail20)
	// The third-party-DNS tail CDNs are mostly 2020 newcomers; the CDNs
	// observed in both snapshots keep a stable arrangement, so the Table 9
	// provider trends stay near the paper's (the named CDNs carry the real
	// transitions).
	exists16 := func(i int) bool {
		switch {
		case i == 0 || i == 1: // two stable AWS-critical tail CDNs
			return true
		case i == 14 || i == 15: // two stable redundant tail CDNs
			return true
		case i >= 25: // the private-DNS tail
			return i-25+4 < cdnTail16
		}
		return false
	}
	for i := 0; i < total; i++ {
		deps := map[Snapshot]ProviderDNS{Y2016: pvt(), Y2020: pvt()}
		switch {
		case i < 7: // exclusively AWS DNS, critical (paper §5.3)
			deps[Y2020] = third("AWS DNS")
			deps[Y2016] = third("AWS DNS")
		case i < 14: // critical on other providers
			alt := []string{"DNSMadeEasy", "GoDaddy", "Cloudflare", "NS1", "UltraDNS", "Dyn", "Gandi"}[i-7]
			deps[Y2020] = third(alt)
		case i < 25: // redundant third (some also on AWS -> 16 AWS users)
			if i < 18 {
				deps[Y2020] = third("AWS DNS", "NS1")
				deps[Y2016] = third("AWS DNS", "NS1")
			} else {
				deps[Y2020] = mixed("Cloudflare")
			}
		}
		p := tailProvider(SvcCDN, i, deps)
		p.Exists2016 = exists16(i)
		p.Exists2020 = i < cdnTail20
		if !p.Exists2016 && !p.Exists2020 {
			continue
		}
		g.addProvider(p)
	}

	// CA tail up to the distinct-CA totals (70 in 2016, 59 in 2020) with
	// Table 6 / Table 7 arrangements: 2020: 27/59 third DNS (18 critical),
	// 21 third-party-CDN users.
	caNamed16, caNamed20 := g.countService(SvcCA)
	caTail16 := maxInt(0, scaledTotal(g.cal.CA[Y2016].TailProviders+caNamed16, g.scale)-caNamed16)
	caTail20 := maxInt(0, scaledTotal(g.cal.CA[Y2020].TailProviders+caNamed20, g.scale)-caNamed20)
	totalCA := maxInt(caTail16, caTail20)
	for i := 0; i < totalCA; i++ {
		dns := map[Snapshot]ProviderDNS{Y2016: pvt(), Y2020: pvt()}
		cdn := map[Snapshot]ProviderCDN{Y2016: {}, Y2020: {}}
		switch {
		case i == 0: // one more critical to reach 18
			dns[Y2020] = third("AWS DNS")
			dns[Y2016] = third("AWS DNS")
		case i < 10: // nine redundant third-party DNS users (Table 6)
			dns[Y2020] = third("AWS DNS", "Cloudflare")
			if i < 8 {
				dns[Y2016] = third("AWS DNS", "Cloudflare")
			}
		case i < 13: // 2016-only critical CAs beyond the named ones
			dns[Y2016] = third("UltraDNS")
		}
		if i == 13 || i == 14 { // two stable third-CDN tail CAs (→ 21 total)
			cdn[Y2020] = ProviderCDN{Third: []string{"Akamai"}}
			cdn[Y2016] = ProviderCDN{Third: []string{"Akamai"}}
		}
		if i == 15 { // one more private-CDN CA (→ 3 private users)
			cdn[Y2020] = ProviderCDN{Private: true}
			cdn[Y2016] = ProviderCDN{Private: true}
		}
		if i == 16 || i == 17 { // CAs that dropped their CDN (Table 8)
			cdn[Y2016] = ProviderCDN{Third: []string{"EdgeCast"}}
		}
		p := tailProvider(SvcCA, i, dns)
		p.CDNDeps = cdn
		p.Exists2016 = i < caTail16
		p.Exists2020 = i < caTail20
		if !p.Exists2016 && !p.Exists2020 {
			continue
		}
		g.addProvider(p)
	}
}

// countService counts named providers per snapshot.
func (g *generator) countService(svc Service) (n16, n20 int) {
	for _, name := range g.u.providerOrder {
		p := g.u.Providers[name]
		if p.Service != svc {
			continue
		}
		if p.Exists2016 {
			n16++
		}
		if p.Exists2020 {
			n20++
		}
	}
	return n16, n20
}

// scaledTail shrinks a tail-provider count for small universes: roughly one
// tail provider per 20 sites, capped at the full-scale count.
func scaledTail(full, scale int) int {
	max := scale / 20
	if max < 10 {
		max = 10
	}
	if full > max {
		return max
	}
	return full
}

// scaledTotal shrinks an absolute provider-population target for small
// universes (totals like "59 CAs" stay as-is above 10K sites).
func scaledTotal(full, scale int) int {
	if scale >= 10000 {
		return full
	}
	v := full * scale / 10000
	if v < 10 {
		v = 10
	}
	if v > full {
		v = full
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// buildSites creates the ranked lists: one shared population plus 2016-only
// (dead by 2020) and 2020-only (new) sites at the same ranks.
func (g *generator) buildSites() {
	tlds := []string{"com", "com", "com", "net", "org", "io", "co", "de", "fr", "jp", "com.br", "co.uk", "ru", "in"}
	dead := g.cal.Trans.DeadFrac
	g.u.list2016 = make([]*Site, g.scale)
	g.u.list2020 = make([]*Site, g.scale)
	for i := 0; i < g.scale; i++ {
		rank := i + 1
		tld := tlds[g.rng.Intn(len(tlds))]
		if g.rng.Float64() < dead {
			// Rank slot churns: a 2016-only site and a 2020-only site.
			old := &Site{Domain: fmt.Sprintf("w%06d-old.%s", rank, tld), Rank2016: rank}
			old.Snap[Y2016].Exists = true
			neu := &Site{Domain: fmt.Sprintf("w%06d-new.%s", rank, tld), Rank2020: rank}
			neu.Snap[Y2020].Exists = true
			g.u.Sites = append(g.u.Sites, old, neu)
			g.u.list2016[i] = old
			g.u.list2020[i] = neu
			continue
		}
		s := &Site{Domain: fmt.Sprintf("w%06d.%s", rank, tld), Rank2016: rank, Rank2020: rank}
		s.Snap[Y2016].Exists = true
		s.Snap[Y2020].Exists = true
		g.u.Sites = append(g.u.Sites, s)
		g.u.list2016[i] = s
		g.u.list2020[i] = s
	}
}

// bandSites splits a list into the four popularity bands.
func bandSites(list []*Site, scale int) [NumBands][]*Site {
	var bands [NumBands][]*Site
	for i, s := range list {
		b := BandOf(i+1, scale)
		bands[b] = append(bands[b], s)
	}
	return bands
}

// apportion deterministically distributes n slots over weighted shares using
// the largest-remainder method, returning a flattened assignment list of
// length n in shuffled order.
func (g *generator) apportion(shares []Share, n int) []string {
	if n == 0 || len(shares) == 0 {
		return nil
	}
	total := 0.0
	for _, s := range shares {
		total += s.Weight
	}
	type slot struct {
		name  string
		count int
		frac  float64
	}
	slots := make([]slot, len(shares))
	used := 0
	for i, s := range shares {
		exact := float64(n) * s.Weight / total
		c := int(exact)
		slots[i] = slot{s.Provider, c, exact - float64(c)}
		used += c
	}
	// Distribute remainders to the largest fractional parts.
	order := make([]int, len(slots))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return slots[order[a]].frac > slots[order[b]].frac })
	for i := 0; used < n; i = (i + 1) % len(order) {
		slots[order[i]].count++
		used++
	}
	out := make([]string, 0, n)
	for _, s := range slots {
		for j := 0; j < s.count; j++ {
			out = append(out, s.name)
		}
	}
	g.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// withTail appends procedural tail shares to a named share table.
func (g *generator) withTail(shares []Share, svc Service, tailShare float64, snap Snapshot) []Share {
	out := append([]Share(nil), shares...)
	var tails []string
	for _, name := range g.u.providerOrder {
		p := g.u.Providers[name]
		if p.Service != svc || !isTailName(name) {
			continue
		}
		if (snap == Y2016 && p.Exists2016) || (snap == Y2020 && p.Exists2020) {
			tails = append(tails, name)
		}
	}
	if len(tails) == 0 || tailShare <= 0 {
		return out
	}
	// Mild Zipf over the tail so the CDF bends rather than steps.
	totalW := 0.0
	ws := make([]float64, len(tails))
	for i := range tails {
		ws[i] = 1.0 / float64(i+3)
		totalW += ws[i]
	}
	for i, name := range tails {
		out = append(out, Share{name, tailShare * ws[i] / totalW})
	}
	return out
}

func isTailName(name string) bool {
	return len(name) > 5 && (name[:4] == "DNS " || name[:4] == "CDN " || name[:3] == "CA ") &&
		(containsSub(name, "Tail"))
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
