package intern

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

func sameStorage(a, b string) bool {
	return unsafe.StringData(a) == unsafe.StringData(b)
}

func TestInternReturnsCanonicalCopy(t *testing.T) {
	p := NewPool()
	a := p.Intern("ns1.example.com.")
	b := p.Intern(strings.ToLower("NS1.EXAMPLE.COM."))
	if a != b {
		t.Fatalf("interned values differ: %q vs %q", a, b)
	}
	if !sameStorage(a, b) {
		t.Fatal("interned equal strings do not share storage")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1", p.Len())
	}
}

func TestBytesMatchesIntern(t *testing.T) {
	p := NewPool()
	s := p.Intern("cdn.example.net.")
	got := p.Bytes([]byte("cdn.example.net."))
	if got != s || !sameStorage(got, s) {
		t.Fatal("Bytes did not return the interned canonical string")
	}
	if p.Bytes(nil) != "" || p.Intern("") != "" {
		t.Fatal("empty inputs must return empty string")
	}
}

func TestBytesHitPathDoesNotAllocate(t *testing.T) {
	p := NewPool()
	b := []byte("zero-alloc.example.org.")
	p.Bytes(b)
	allocs := testing.AllocsPerRun(200, func() {
		p.Bytes(b)
	})
	if allocs > 0 {
		t.Fatalf("Bytes hit path allocates %.1f per run, want 0", allocs)
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool()
	const goroutines = 32
	var wg sync.WaitGroup
	results := make([][]string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]string, 100)
			for i := range out {
				out[i] = p.Intern(fmt.Sprintf("host-%d.example.com.", i))
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[g] {
			if !sameStorage(results[0][i], results[g][i]) {
				t.Fatalf("goroutine %d got a different copy for index %d", g, i)
			}
		}
	}
	if p.Len() != 100 {
		t.Fatalf("Len = %d, want 100", p.Len())
	}
}

func TestMemoComputesOncePerKey(t *testing.T) {
	var mu sync.Mutex
	calls := map[string]int{}
	m := NewMemo(func(s string) string {
		mu.Lock()
		calls[s]++
		mu.Unlock()
		return strings.ToUpper(s)
	})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", i%5)
				if got := m.Get(key); got != strings.ToUpper(key) {
					t.Errorf("Get(%q) = %q", key, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	for k, n := range calls {
		// Concurrent first lookups may race to compute, but once a key is
		// stored every later Get must be a pure map hit.
		if n > 16 {
			t.Fatalf("fn called %d times for %q", n, k)
		}
	}
	if m.Get("k0") != "K0" {
		t.Fatal("memoized value lost")
	}
}

func TestMemoHitPathDoesNotAllocate(t *testing.T) {
	m := NewMemo(strings.ToUpper)
	m.Get("www.example.com")
	allocs := testing.AllocsPerRun(200, func() {
		m.Get("www.example.com")
	})
	if allocs > 0 {
		t.Fatalf("Memo hit path allocates %.1f per run, want 0", allocs)
	}
}
