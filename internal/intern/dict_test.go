package intern

import (
	"fmt"
	"sync"
	"testing"
)

// TestDictDenseIDs: first-seen order, stability, and round-tripping.
func TestDictDenseIDs(t *testing.T) {
	d := NewDict()
	if d.Len() != 0 {
		t.Fatalf("empty Dict Len = %d", d.Len())
	}
	names := []string{"dyn", "cloudflare", "aws", "dyn", "cloudflare"}
	want := []uint32{0, 1, 2, 0, 1}
	for i, n := range names {
		if id := d.ID(n); id != want[i] {
			t.Fatalf("ID(%q) = %d, want %d", n, id, want[i])
		}
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	for i, n := range []string{"dyn", "cloudflare", "aws"} {
		if got := d.Name(uint32(i)); got != n {
			t.Fatalf("Name(%d) = %q, want %q", i, got, n)
		}
	}
	if id, ok := d.Lookup("cloudflare"); !ok || id != 1 {
		t.Fatalf("Lookup(cloudflare) = %d,%v", id, ok)
	}
	if _, ok := d.Lookup("absent"); ok {
		t.Fatal("Lookup(absent) reported present")
	}
	if d.Bytes() == 0 {
		t.Fatal("Bytes() = 0 for non-empty dict")
	}
}

// TestDictNamePanics: out-of-range IDs must fail loudly, not alias.
func TestDictNamePanics(t *testing.T) {
	d := NewDict()
	d.ID("only")
	defer func() {
		if recover() == nil {
			t.Fatal("Name(99) did not panic")
		}
	}()
	d.Name(99)
}

// TestDictConcurrent hammers ID from many goroutines over an overlapping
// key set and verifies every name maps to exactly one ID afterwards.
func TestDictConcurrent(t *testing.T) {
	d := NewDict()
	const workers, keys = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				d.ID(fmt.Sprintf("name-%03d", (i+w)%keys))
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != keys {
		t.Fatalf("Len = %d, want %d", d.Len(), keys)
	}
	seen := make(map[uint32]bool, keys)
	for i := 0; i < keys; i++ {
		id, ok := d.Lookup(fmt.Sprintf("name-%03d", i))
		if !ok || seen[id] {
			t.Fatalf("name-%03d: ok=%v dup=%v id=%d", i, ok, seen[id], id)
		}
		seen[id] = true
	}
}

// TestGlobalDict: the process-wide table is shared and stable.
func TestGlobalDict(t *testing.T) {
	a := NameID("global-dict-probe-a")
	b := NameID("global-dict-probe-b")
	if a == b {
		t.Fatal("distinct names share an ID")
	}
	if NameID("global-dict-probe-a") != a {
		t.Fatal("ID not stable")
	}
	if NameOf(a) != "global-dict-probe-a" {
		t.Fatalf("NameOf(%d) = %q", a, NameOf(a))
	}
	if GlobalDict().Len() < 2 {
		t.Fatal("global dict unexpectedly small")
	}
}
