package intern

import (
	"fmt"
	"sync"
)

// Dict is an append-only name table assigning each distinct string a dense
// uint32 ID in first-seen order. The columnar graph backend stores every
// site/provider name as an ID: edge arrays shrink from string headers (16
// bytes + backing data, each a GC pointer to scan) to 4-byte integers, and
// the IDs double as array indexes so lookups lose the map hop. IDs are never
// reused or removed — a Dict only grows — which is what makes handing out
// raw uint32s safe. Strings are canonicalized through the process-wide
// intern pool, so a Dict adds index structure but no second string copy.
//
// All methods are safe for concurrent use; the expected pattern is a
// single-writer builder with concurrent readers afterwards.
type Dict struct {
	mu    sync.RWMutex
	ids   map[string]uint32
	names []string
}

// NewDict creates an empty name table.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]uint32)}
}

// ID returns s's dense ID, assigning the next free one on first sight.
func (d *Dict) ID(s string) uint32 {
	d.mu.RLock()
	id, ok := d.ids[s]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok = d.ids[s]; ok {
		return id
	}
	if len(d.names) >= 1<<32-1 {
		// 4 billion distinct names means something upstream is generating
		// garbage; fail loudly rather than alias IDs.
		panic("intern: Dict overflow")
	}
	s = String(s)
	id = uint32(len(d.names))
	d.names = append(d.names, s)
	d.ids[s] = id
	return id
}

// Lookup returns s's ID without assigning one.
func (d *Dict) Lookup(s string) (uint32, bool) {
	d.mu.RLock()
	id, ok := d.ids[s]
	d.mu.RUnlock()
	return id, ok
}

// Name returns the string for a previously assigned ID. Unknown IDs panic:
// they can only come from memory corruption or a cross-Dict mixup, and
// returning "" would silently merge distinct names downstream.
func (d *Dict) Name(id uint32) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.names) {
		panic(fmt.Sprintf("intern: Dict.Name(%d) out of range (len %d)", id, len(d.names)))
	}
	return d.names[id]
}

// Len returns the number of assigned IDs.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.names)
}

// Bytes estimates the table's resident size: string headers + backing bytes
// for the names slice plus a rough map-overhead charge. Used by the compact
// graph's bytes/site accounting.
func (d *Dict) Bytes() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	b := uint64(cap(d.names)) * 16 // string headers
	for _, s := range d.names {
		b += uint64(len(s))
	}
	// map entry: string header + uint32 + bucket overhead, call it 48 bytes.
	b += uint64(len(d.ids)) * 48
	return b
}

// defaultDict is the process-wide name table shared by all compact graphs,
// so the 2016 and 2020 snapshots (and any delta-derived graphs) share one
// ID space and one set of name strings.
var defaultDict = NewDict()

// NameID assigns/returns the process-wide dense ID for s.
func NameID(s string) uint32 { return defaultDict.ID(s) }

// NameOf returns the string for a process-wide ID.
func NameOf(id uint32) string { return defaultDict.Name(id) }

// GlobalDict exposes the process-wide name table.
func GlobalDict() *Dict { return defaultDict }
