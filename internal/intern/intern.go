// Package intern deduplicates hot-path strings so each distinct hostname is
// allocated once per process instead of once per record. The measurement
// pipeline decodes and canonicalizes the same few thousand names millions of
// times (every NS/SOA/CNAME answer repeats the zone's names); interning turns
// those repeats into map hits and shrinks both steady-state heap and GC scan
// work. A Pool is sharded so concurrent workers do not serialize on one lock,
// and the []byte lookup path relies on the compiler's map[string(b)]
// optimization to stay allocation-free on hits.
package intern

import "sync"

// shardCount must be a power of two so the hash can be masked, not modded.
const shardCount = 64

type shard struct {
	mu sync.RWMutex
	m  map[string]string
}

// Pool is a sharded string intern table. The zero value is not usable; call
// NewPool. All methods are safe for concurrent use.
type Pool struct {
	shards [shardCount]shard
}

// NewPool creates an empty intern pool.
func NewPool() *Pool {
	p := &Pool{}
	for i := range p.shards {
		p.shards[i].m = make(map[string]string)
	}
	return p
}

// fnv1a is FNV-1a over s, inlined so the hot path needs no hash.Hash64
// allocation.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// fnv1aBytes mirrors fnv1a for a byte slice without converting it to a
// string first.
func fnv1aBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= prime64
	}
	return h
}

// Intern returns the canonical copy of s, storing s itself on first sight.
func (p *Pool) Intern(s string) string {
	if s == "" {
		return ""
	}
	sh := &p.shards[fnv1a(s)&(shardCount-1)]
	sh.mu.RLock()
	v, ok := sh.m[s]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	sh.mu.Lock()
	if v, ok = sh.m[s]; !ok {
		sh.m[s] = s
		v = s
	}
	sh.mu.Unlock()
	return v
}

// Bytes returns the canonical string equal to b, copying b into a new string
// only the first time it is seen. The hit path does not allocate: the
// map[string(b)] lookup is recognized by the compiler and reads the map
// without materializing the conversion.
func (p *Pool) Bytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	sh := &p.shards[fnv1aBytes(b)&(shardCount-1)]
	sh.mu.RLock()
	v, ok := sh.m[string(b)]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	s := string(b)
	sh.mu.Lock()
	if v, ok = sh.m[s]; !ok {
		sh.m[s] = s
		v = s
	}
	sh.mu.Unlock()
	return v
}

// Len returns the number of interned strings (for tests and diagnostics).
func (p *Pool) Len() int {
	n := 0
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// defaultPool is the process-wide table shared by dnsmsg decode, the
// resolver, and measure, so one run's hostnames converge to single copies.
var defaultPool = NewPool()

// String interns s in the process-wide pool.
func String(s string) string { return defaultPool.Intern(s) }

// Bytes interns b in the process-wide pool without allocating on hits.
func Bytes(b []byte) string { return defaultPool.Bytes(b) }

// Memo caches a pure string->string function. Results are interned through
// the process-wide pool, so memoizing normalization functions (canonical
// names, registrable domains) both skips recomputation and collapses the
// outputs onto shared string storage. Safe for concurrent use.
type Memo struct {
	fn     func(string) string
	shards [shardCount]shard
}

// NewMemo creates a memo table over fn, which must be pure: same input,
// same output, no side effects the caller depends on.
func NewMemo(fn func(string) string) *Memo {
	m := &Memo{fn: fn}
	for i := range m.shards {
		m.shards[i].m = make(map[string]string)
	}
	return m
}

// Get returns fn(key), computing it at most once per distinct key.
func (m *Memo) Get(key string) string {
	sh := &m.shards[fnv1a(key)&(shardCount-1)]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	v = defaultPool.Intern(m.fn(key))
	sh.mu.Lock()
	sh.m[String(key)] = v
	sh.mu.Unlock()
	return v
}
