// Package certs models the certificate-and-revocation view the measurement
// pipeline needs: for each HTTPS website, the issuing CA, the subject
// alternative names, the OCSP responder and CRL distribution point URLs
// embedded in the certificate, and whether the server staples OCSP
// responses.
//
// Two sources can populate a Certificate: the bulk path reads the synthetic
// ecosystem's certificate store directly, and the live path (x509gen.go)
// performs a real crypto/tls handshake against a server and extracts the
// same fields from the wire, proving the extraction logic on genuine
// material — the reproduction of the paper's OpenSSL-based fetch.
package certs

import (
	"fmt"
	"net/url"
	"strings"
	"sync"
	"time"

	"depscope/internal/publicsuffix"
)

// Certificate is the measurement-relevant view of one site certificate.
type Certificate struct {
	// Subject is the primary hostname the certificate was served for.
	Subject string
	// SANs is the subject-alternative-name list (may contain wildcards).
	SANs []string
	// IssuerCA is the display name of the issuing certificate authority.
	IssuerCA string
	// IssuerOrgDomain is the CA's organisational domain (e.g. digicert.com),
	// as derived from the issuer fields; "" if unknown.
	IssuerOrgDomain string
	// OCSPServers holds the OCSP responder URLs from the AIA extension.
	OCSPServers []string
	// CRLDistributionPoints holds the CDP URLs.
	CRLDistributionPoints []string
	// Stapled reports whether the TLS handshake carried a stapled OCSP
	// response.
	Stapled bool
	// NotBefore and NotAfter bound the validity period.
	NotBefore, NotAfter time.Time

	// Lazily computed views of the fields above, shared across the three
	// classifier stages that consult the same certificate for one site. The
	// cached values are computed from fields that must not change after the
	// certificate enters a Store.
	sanOnce sync.Once
	sanRDs  map[string]bool
	revOnce sync.Once
	revIdx  []string
}

// RevocationURLs returns all revocation-checking endpoints (OCSP then CDP).
func (c *Certificate) RevocationURLs() []string {
	out := make([]string, 0, len(c.OCSPServers)+len(c.CRLDistributionPoints))
	out = append(out, c.OCSPServers...)
	out = append(out, c.CRLDistributionPoints...)
	return out
}

// RevocationHosts returns the distinct hostnames of all revocation URLs in
// first-seen order. The result is computed once per certificate and shared;
// callers must not modify it.
func (c *Certificate) RevocationHosts() []string {
	c.revOnce.Do(func() {
		seen := make(map[string]bool)
		var out []string
		for _, u := range c.RevocationURLs() {
			h := HostFromURL(u)
			if h == "" || seen[h] {
				continue
			}
			seen[h] = true
			out = append(out, h)
		}
		c.revIdx = out
	})
	return c.revIdx
}

// MatchesSAN reports whether host is covered by the certificate's SAN list,
// honouring single-label wildcards (*.example.com).
func (c *Certificate) MatchesSAN(host string) bool {
	host = publicsuffix.Normalize(host)
	for _, san := range c.SANs {
		if sanMatches(san, host) {
			return true
		}
	}
	return false
}

// SANRegistrableDomains returns the distinct registrable domains appearing
// in the SAN list. The paper's heuristics treat every eTLD+1 in a site's SAN
// list as the same logical entity as the site. The map is computed once per
// certificate and shared; callers must not modify it.
func (c *Certificate) SANRegistrableDomains() map[string]bool {
	c.sanOnce.Do(func() {
		out := make(map[string]bool, len(c.SANs))
		for _, san := range c.SANs {
			if rd := publicsuffix.RegistrableDomain(san); rd != "" {
				out[rd] = true
			}
		}
		c.sanRDs = out
	})
	return c.sanRDs
}

func sanMatches(san, host string) bool {
	san = strings.ToLower(strings.TrimSuffix(strings.TrimSpace(san), "."))
	if strings.HasPrefix(san, "*.") {
		rest := san[2:]
		idx := strings.IndexByte(host, '.')
		return idx > 0 && host[idx+1:] == rest
	}
	return san == host
}

// HostFromURL extracts the lowercase hostname of an http(s) URL, tolerating
// bare host[:port] strings as found in some CDP fields.
func HostFromURL(raw string) string {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return ""
	}
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	return publicsuffix.Normalize(u.Hostname())
}

// Store is a concurrency-safe certificate repository keyed by site host.
// It stands in for "connect to the site on :443 and read the certificate"
// in the bulk pipeline.
type Store struct {
	mu    sync.RWMutex
	certs map[string]*Certificate
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{certs: make(map[string]*Certificate)}
}

// Put installs the certificate served for host.
func (s *Store) Put(host string, c *Certificate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.certs[publicsuffix.Normalize(host)] = c
}

// Get returns the certificate served for host, or nil when the host does
// not speak HTTPS. Lookup is by exact (normalized) host; a wildcard match
// against another host's SAN list is not a serving relationship.
func (s *Store) Get(host string) *Certificate {
	host = publicsuffix.Normalize(host)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.certs[host]
}

// Len returns the number of stored certificates.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.certs)
}

// Validate performs basic sanity checks on a certificate the generator
// emits; it guards against malformed synthetic data reaching the pipeline.
func (c *Certificate) Validate() error {
	if c.Subject == "" {
		return fmt.Errorf("certs: certificate without subject")
	}
	if c.IssuerCA == "" {
		return fmt.Errorf("certs: %s: certificate without issuer", c.Subject)
	}
	if !c.MatchesSAN(c.Subject) {
		return fmt.Errorf("certs: %s: subject not covered by SANs %v", c.Subject, c.SANs)
	}
	if !c.NotAfter.IsZero() && !c.NotBefore.IsZero() && !c.NotAfter.After(c.NotBefore) {
		return fmt.Errorf("certs: %s: NotAfter %v before NotBefore %v", c.Subject, c.NotAfter, c.NotBefore)
	}
	return nil
}
