package certs

import (
	"context"
	"testing"
	"time"
)

func testCert() *Certificate {
	return &Certificate{
		Subject:               "youtube.com",
		SANs:                  []string{"youtube.com", "*.youtube.com", "*.google.com", "goo.gl"},
		IssuerCA:              "Google Trust Services",
		IssuerOrgDomain:       "pki.goog",
		OCSPServers:           []string{"http://ocsp.pki.goog/gts1c3"},
		CRLDistributionPoints: []string{"http://crls.pki.goog/gts1c3/zdATt0Ex_Fk.crl"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
	}
}

func TestMatchesSAN(t *testing.T) {
	c := testCert()
	tests := []struct {
		host string
		want bool
	}{
		{"youtube.com", true},
		{"www.youtube.com", true},
		{"ns1.google.com", true},
		{"google.com", false}, // *.google.com does not cover the apex
		{"deep.sub.google.com", false},
		{"goo.gl", true},
		{"evil.com", false},
		{"YOUTUBE.COM.", true},
	}
	for _, tt := range tests {
		if got := c.MatchesSAN(tt.host); got != tt.want {
			t.Errorf("MatchesSAN(%q) = %v, want %v", tt.host, got, tt.want)
		}
	}
}

func TestSANRegistrableDomains(t *testing.T) {
	c := testCert()
	rds := c.SANRegistrableDomains()
	for _, want := range []string{"youtube.com", "google.com", "goo.gl"} {
		if !rds[want] {
			t.Errorf("SANRegistrableDomains missing %q: %v", want, rds)
		}
	}
	if len(rds) != 3 {
		t.Errorf("SANRegistrableDomains = %v, want 3 entries", rds)
	}
}

func TestRevocationHosts(t *testing.T) {
	c := testCert()
	hosts := c.RevocationHosts()
	if len(hosts) != 2 || hosts[0] != "ocsp.pki.goog" || hosts[1] != "crls.pki.goog" {
		t.Errorf("RevocationHosts = %v", hosts)
	}
	// Duplicate hosts collapse.
	c.CRLDistributionPoints = append(c.CRLDistributionPoints, "http://ocsp.pki.goog/other")
	if got := c.RevocationHosts(); len(got) != 2 {
		t.Errorf("RevocationHosts with dup = %v", got)
	}
}

func TestHostFromURL(t *testing.T) {
	tests := []struct{ in, want string }{
		{"http://ocsp.digicert.com", "ocsp.digicert.com"},
		{"http://crl3.digicert.com/sha2.crl", "crl3.digicert.com"},
		{"https://OCSP.Example.COM:8080/path", "ocsp.example.com"},
		{"ocsp.sectigo.com", "ocsp.sectigo.com"},
		{"", ""},
		{"http://", ""},
	}
	for _, tt := range tests {
		if got := HostFromURL(tt.in); got != tt.want {
			t.Errorf("HostFromURL(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestStore(t *testing.T) {
	s := NewStore()
	c := testCert()
	s.Put("youtube.com", c)
	if got := s.Get("YOUTUBE.com."); got != c {
		t.Error("Get normalized host failed")
	}
	if got := s.Get("vimeo.com"); got != nil {
		t.Errorf("Get unknown host = %+v", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestValidate(t *testing.T) {
	good := testCert()
	if err := good.Validate(); err != nil {
		t.Errorf("valid cert rejected: %v", err)
	}
	noSubject := testCert()
	noSubject.Subject = ""
	if noSubject.Validate() == nil {
		t.Error("accepted empty subject")
	}
	noIssuer := testCert()
	noIssuer.IssuerCA = ""
	if noIssuer.Validate() == nil {
		t.Error("accepted empty issuer")
	}
	badSAN := testCert()
	badSAN.Subject = "elsewhere.org"
	if badSAN.Validate() == nil {
		t.Error("accepted subject outside SANs")
	}
	badTime := testCert()
	badTime.NotAfter = badTime.NotBefore.Add(-time.Hour)
	if badTime.Validate() == nil {
		t.Error("accepted inverted validity")
	}
}

// TestLiveTLSFetch mints a real CA and leaf, serves it over crypto/tls with
// a stapled OCSP blob, and checks FetchTLS recovers every measurement field
// from the wire.
func TestLiveTLSFetch(t *testing.T) {
	ca, err := NewTestCA("DigiCert SHA2 Secure Server CA", "digicert.com")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.Issue(LeafSpec{
		Subject:     "dropbox.com",
		SANs:        []string{"dropbox.com", "*.dropbox.com"},
		OCSPServers: []string{"http://ocsp.digicert.com"},
		CDPs:        []string{"http://crl3.digicert.com/ssca-sha2-g6.crl"},
	})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("with staple", func(t *testing.T) {
		srv, addr, err := StartTLSServer(leaf, []byte("synthetic-ocsp-response"))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		got, err := FetchTLS(context.Background(), addr, "dropbox.com", ca.Pool())
		if err != nil {
			t.Fatal(err)
		}
		if got.IssuerCA != "DigiCert SHA2 Secure Server CA" || got.IssuerOrgDomain != "digicert.com" {
			t.Errorf("issuer = %q / %q", got.IssuerCA, got.IssuerOrgDomain)
		}
		if !got.Stapled {
			t.Error("staple not observed")
		}
		if len(got.OCSPServers) != 1 || HostFromURL(got.OCSPServers[0]) != "ocsp.digicert.com" {
			t.Errorf("OCSP servers = %v", got.OCSPServers)
		}
		if len(got.CRLDistributionPoints) != 1 || HostFromURL(got.CRLDistributionPoints[0]) != "crl3.digicert.com" {
			t.Errorf("CDPs = %v", got.CRLDistributionPoints)
		}
		if !got.MatchesSAN("www.dropbox.com") {
			t.Error("SAN list lost in transit")
		}
		if err := got.Validate(); err != nil {
			t.Errorf("fetched cert invalid: %v", err)
		}
	})

	t.Run("without staple", func(t *testing.T) {
		srv, addr, err := StartTLSServer(leaf, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		got, err := FetchTLS(context.Background(), addr, "dropbox.com", ca.Pool())
		if err != nil {
			t.Fatal(err)
		}
		if got.Stapled {
			t.Error("phantom staple observed")
		}
	})
}

func TestFetchTLSRejectsUntrusted(t *testing.T) {
	ca, err := NewTestCA("Rogue CA", "rogue.example")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ca.Issue(LeafSpec{Subject: "bank.com"})
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := StartTLSServer(leaf, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	other, err := NewTestCA("Honest CA", "honest.example")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FetchTLS(context.Background(), addr, "bank.com", other.Pool()); err == nil {
		t.Error("handshake with untrusted chain succeeded")
	}
}
