package certs

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// This file is the live-TLS half of the package: it can mint a real CA and
// leaf certificates carrying OCSP/CDP URLs and SANs, serve them over
// crypto/tls with a stapled OCSP blob, and extract a Certificate from a live
// handshake. Integration tests and the live examples run the paper's
// "fetch the certificate with OpenSSL" step against these servers.

// TestCA is an in-memory certificate authority that can issue leaves.
type TestCA struct {
	// Name is the CA display name placed in issued certificates' issuer CN.
	Name string
	// OrgDomain is the CA's organisational domain (issuer O field).
	OrgDomain string

	cert *x509.Certificate
	key  *ecdsa.PrivateKey
	der  []byte
}

// NewTestCA creates a self-signed CA.
func NewTestCA(name, orgDomain string) (*TestCA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("certs: generate CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject: pkix.Name{
			CommonName:   name,
			Organization: []string{orgDomain},
		},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("certs: self-sign CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &TestCA{Name: name, OrgDomain: orgDomain, cert: cert, key: key, der: der}, nil
}

// Pool returns a cert pool trusting this CA.
func (ca *TestCA) Pool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(ca.cert)
	return pool
}

// LeafSpec describes a leaf certificate to issue.
type LeafSpec struct {
	Subject     string
	SANs        []string
	OCSPServers []string
	CDPs        []string
	NotAfter    time.Time
}

// Issue creates a leaf certificate/key pair signed by the CA.
func (ca *TestCA) Issue(spec LeafSpec) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("certs: generate leaf key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, big.NewInt(1<<62))
	if err != nil {
		return tls.Certificate{}, err
	}
	sans := spec.SANs
	if len(sans) == 0 {
		sans = []string{spec.Subject}
	}
	notAfter := spec.NotAfter
	if notAfter.IsZero() {
		notAfter = time.Now().Add(12 * time.Hour)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: spec.Subject},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              notAfter,
		KeyUsage:              x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:              sans,
		OCSPServer:            spec.OCSPServers,
		CRLDistributionPoints: spec.CDPs,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.cert, &key.PublicKey, ca.key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("certs: sign leaf %s: %w", spec.Subject, err)
	}
	return tls.Certificate{
		Certificate: [][]byte{der, ca.der},
		PrivateKey:  key,
	}, nil
}

// TLSServer is a minimal HTTPS-less TLS listener presenting one certificate,
// optionally with a stapled OCSP response. It exists so the extraction path
// can be exercised against a real handshake.
type TLSServer struct {
	listener net.Listener
	done     chan struct{}
}

// StartTLSServer serves cert (with optional staple) on a loopback port and
// returns the server and its address. The server accepts connections,
// completes the handshake, and closes.
func StartTLSServer(cert tls.Certificate, staple []byte) (*TLSServer, string, error) {
	cert.OCSPStaple = staple
	cfg := &tls.Config{Certificates: []tls.Certificate{cert}}
	ln, err := tls.Listen("tcp", "127.0.0.1:0", cfg)
	if err != nil {
		return nil, "", err
	}
	srv := &TLSServer{listener: ln, done: make(chan struct{})}
	go func() {
		defer close(srv.done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if tc, ok := conn.(*tls.Conn); ok {
					tc.Handshake()
				}
			}(conn)
		}
	}()
	return srv, ln.Addr().String(), nil
}

// Close stops the listener.
func (s *TLSServer) Close() {
	s.listener.Close()
	<-s.done
}

// FetchTLS dials addr, performs a TLS handshake offering serverName via SNI,
// and extracts the Certificate view from the presented leaf — the live
// equivalent of the paper's OpenSSL certificate fetch, including the
// OCSP-stapling observation.
func FetchTLS(ctx context.Context, addr, serverName string, roots *x509.CertPool) (*Certificate, error) {
	d := tls.Dialer{Config: &tls.Config{
		ServerName: serverName,
		RootCAs:    roots,
	}}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("certs: tls dial %s: %w", addr, err)
	}
	defer conn.Close()
	state := conn.(*tls.Conn).ConnectionState()
	if len(state.PeerCertificates) == 0 {
		return nil, fmt.Errorf("certs: %s presented no certificate", addr)
	}
	return FromX509(state.PeerCertificates[0], serverName, len(state.OCSPResponse) > 0), nil
}

// FromX509 converts a parsed x509 leaf into the measurement view.
func FromX509(leaf *x509.Certificate, subject string, stapled bool) *Certificate {
	orgDomain := ""
	if len(leaf.Issuer.Organization) > 0 {
		orgDomain = leaf.Issuer.Organization[0]
	}
	return &Certificate{
		Subject:               subject,
		SANs:                  append([]string(nil), leaf.DNSNames...),
		IssuerCA:              leaf.Issuer.CommonName,
		IssuerOrgDomain:       orgDomain,
		OCSPServers:           append([]string(nil), leaf.OCSPServer...),
		CRLDistributionPoints: append([]string(nil), leaf.CRLDistributionPoints...),
		Stapled:               stapled,
		NotBefore:             leaf.NotBefore,
		NotAfter:              leaf.NotAfter,
	}
}
