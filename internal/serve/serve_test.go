package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"depscope/internal/analysis"
	"depscope/internal/core"
	"depscope/internal/ecosystem"
	"depscope/internal/measure"
)

// fakeRun hand-builds a tiny two-site 2020 world with a known dependency
// structure, so endpoint tests control every name and number:
//
//	a.com (rank 1): DNS single-third dns1.com, CDN multi {cdn1.com, cdn2.com}, CA third ca1.com
//	b.com (rank 2): DNS multi {dns1.com, dns2.com}
//	cdn1.com (CDN provider) critically depends on dns1.com for DNS
func fakeRun() *analysis.Run {
	sites := []*core.Site{
		{
			Name: "a.com", Rank: 1,
			Deps: map[core.Service]core.Dep{
				core.DNS: {Class: core.ClassSingleThird, Providers: []string{"dns1.com"}},
				core.CDN: {Class: core.ClassMultiThird, Providers: []string{"cdn1.com", "cdn2.com"}},
				core.CA:  {Class: core.ClassSingleThird, Providers: []string{"ca1.com"}},
			},
		},
		{
			Name: "b.com", Rank: 2,
			Deps: map[core.Service]core.Dep{
				core.DNS: {Class: core.ClassMultiThird, Providers: []string{"dns1.com", "dns2.com"}},
			},
		},
	}
	providers := []*core.Provider{
		{Name: "dns1.com", Service: core.DNS, Deps: map[core.Service]core.Dep{}},
		{Name: "dns2.com", Service: core.DNS, Deps: map[core.Service]core.Dep{}},
		{Name: "cdn2.com", Service: core.CDN, Deps: map[core.Service]core.Dep{}},
		{Name: "ca1.com", Service: core.CA, Deps: map[core.Service]core.Dep{}},
		{
			Name: "cdn1.com", Service: core.CDN,
			Deps: map[core.Service]core.Dep{
				core.DNS: {Class: core.ClassSingleThird, Providers: []string{"dns1.com"}},
			},
		},
	}
	return &analysis.Run{
		Scale: 2,
		Y2020: &analysis.SnapshotData{
			Snapshot: ecosystem.Y2020,
			Graph:    core.NewGraph(sites, providers),
			Results:  &measure.Results{},
		},
	}
}

func instantBuilder(calls *atomic.Int64) Builder {
	return func(ctx context.Context) (*analysis.Run, error) {
		calls.Add(1)
		return fakeRun(), nil
	}
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestCoalescing pins the singleflight property: N concurrent cold requests
// trigger exactly one build and all observe the same snapshot.
func TestCoalescing(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	m := NewManager(context.Background(), func(ctx context.Context) (*analysis.Run, error) {
		calls.Add(1)
		<-release
		return fakeRun(), nil
	})

	const n = 32
	snaps := make([]*Snapshot, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	var started sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		started.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			snaps[i], errs[i] = m.Get(context.Background())
		}(i)
	}
	started.Wait()
	time.Sleep(10 * time.Millisecond) // let every goroutine reach the join
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("build count = %d, want exactly 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("Get[%d]: %v", i, errs[i])
		}
		if snaps[i] != snaps[0] {
			t.Fatalf("Get[%d] returned a different snapshot pointer", i)
		}
	}
	if snaps[0].Version != 1 {
		t.Errorf("first snapshot version = %d, want 1", snaps[0].Version)
	}
}

// TestFailedBuildIsRetried is the regression test for the poisoned
// sync.Once: the first build fails (injected), the failure is surfaced and
// backoff-gated — and once the window elapses the next request rebuilds and
// succeeds, instead of the error being pinned for the process lifetime.
func TestFailedBuildIsRetried(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("injected build failure")
	m := NewManager(context.Background(), func(ctx context.Context) (*analysis.Run, error) {
		if calls.Add(1) == 1 {
			return nil, boom
		}
		return fakeRun(), nil
	})
	now := time.Unix(1000, 0)
	m.now = func() time.Time { return now }

	if _, err := m.Get(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("first Get = %v, want the injected failure", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("build count after failure = %d", calls.Load())
	}

	// Inside the backoff window: the failure is reported without rebuilding.
	if _, err := m.Get(context.Background()); !errors.Is(err, boom) || calls.Load() != 1 {
		t.Fatalf("backoff-gated Get = %v (builds %d), want gated failure with no rebuild", err, calls.Load())
	}

	now = now.Add(2 * time.Second) // past the 1s initial backoff
	snap, err := m.Get(context.Background())
	if err != nil {
		t.Fatalf("post-backoff Get = %v, want success", err)
	}
	if calls.Load() != 2 || snap.Version != 1 {
		t.Errorf("builds = %d, version = %d; want 2 and 1", calls.Load(), snap.Version)
	}
}

// TestBackoffGrows pins the exponential failure gate.
func TestBackoffGrows(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(context.Background(), func(ctx context.Context) (*analysis.Run, error) {
		calls.Add(1)
		return nil, errors.New("always failing")
	}, WithBackoff(time.Second, 8*time.Second))
	now := time.Unix(0, 0)
	m.now = func() time.Time { return now }

	wantGaps := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 8 * time.Second}
	for i, gap := range wantGaps {
		if _, err := m.Get(context.Background()); err == nil {
			t.Fatalf("attempt %d unexpectedly succeeded", i)
		}
		m.mu.Lock()
		got := m.nextTry.Sub(now)
		m.mu.Unlock()
		if got != gap {
			t.Fatalf("after failure %d: backoff = %v, want %v", i+1, got, gap)
		}
		now = now.Add(gap)
	}
	if calls.Load() != int64(len(wantGaps)) {
		t.Errorf("build attempts = %d, want %d", calls.Load(), len(wantGaps))
	}
}

// TestShutdownCancelsBuild proves a build in flight dies with the server
// lifecycle context — neither the old context.Background() detachment nor a
// goroutine leak.
func TestShutdownCancelsBuild(t *testing.T) {
	lifecycle, stop := context.WithCancel(context.Background())
	buildExited := make(chan error, 1)
	m := NewManager(lifecycle, func(ctx context.Context) (*analysis.Run, error) {
		<-ctx.Done() // a long measurement honoring its context
		buildExited <- ctx.Err()
		return nil, ctx.Err()
	})

	done := make(chan error, 1)
	go func() {
		_, err := m.Get(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the build start
	stop()                            // SIGTERM

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Get after shutdown = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Get did not return after lifecycle cancellation")
	}
	select {
	case err := <-buildExited:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("builder saw %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("builder goroutine never observed the cancellation")
	}

	// After shutdown, new attempts fail fast instead of starting builds.
	if _, err := m.Get(context.Background()); err == nil {
		t.Fatal("Get on a dead lifecycle succeeded")
	}
}

// TestRequestCancellationDetaches proves a caller abandoning a cold request
// detaches without killing the shared build: the build completes and serves
// the next caller.
func TestRequestCancellationDetaches(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	m := NewManager(context.Background(), func(ctx context.Context) (*analysis.Run, error) {
		calls.Add(1)
		<-release
		return fakeRun(), nil
	})

	rctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := m.Get(rctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Get = %v, want context.Canceled", err)
	}

	close(release) // the build was never aborted; let it finish
	snap, err := m.Get(context.Background())
	if err != nil || snap == nil {
		t.Fatalf("Get after detached cancellation = %v", err)
	}
	if calls.Load() != 1 {
		t.Errorf("build count = %d, want 1 (the detached build served the second caller)", calls.Load())
	}
}

// TestRebuildPublishesNewVersion pins atomic swap semantics: the old
// snapshot serves until the new one lands, versions are monotonic.
func TestRebuildPublishesNewVersion(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(context.Background(), instantBuilder(&calls))
	s1, err := m.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Rebuild(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if s2 == s1 || s2.Version != s1.Version+1 {
		t.Fatalf("rebuild: v%d -> v%d (same pointer: %v)", s1.Version, s2.Version, s1 == s2)
	}
	if m.Current() != s2 {
		t.Error("Current() does not serve the rebuilt snapshot")
	}
}

// TestPrewarm builds in the background, retrying a transient failure.
func TestPrewarm(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(context.Background(), func(ctx context.Context) (*analysis.Run, error) {
		if calls.Add(1) == 1 {
			return nil, errors.New("transient")
		}
		return fakeRun(), nil
	}, WithBackoff(time.Millisecond, 4*time.Millisecond))
	m.Prewarm()
	deadline := time.Now().Add(5 * time.Second)
	for m.Current() == nil {
		if time.Now().After(deadline) {
			t.Fatal("prewarm never published a snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if calls.Load() != 2 {
		t.Errorf("prewarm build attempts = %d, want 2 (one failure, one success)", calls.Load())
	}
}

func testMux(t *testing.T, m *Manager) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	Register(mux, m)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestQueryEndpoints table-tests the /v1 API against the handcrafted world.
func TestQueryEndpoints(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(context.Background(), instantBuilder(&calls), WithSeed(7))
	srv := testMux(t, m)

	// Before any query: /v1/snapshot reports not-ready without building.
	code, body := get(t, srv.URL+"/v1/snapshot")
	if code != http.StatusOK || !strings.Contains(string(body), `"ready": false`) {
		t.Fatalf("cold /v1/snapshot = %d: %s", code, body)
	}
	if calls.Load() != 0 {
		t.Fatal("/v1/snapshot triggered a build")
	}

	tests := []struct {
		name     string
		url      string
		want     int
		contains []string
	}{
		{"site listing", "/v1/sites", http.StatusOK, []string{`"total": 2`, "a.com", "b.com"}},
		{"site listing paged", "/v1/sites?offset=1&limit=1", http.StatusOK, []string{`"total": 2`, "b.com"}},
		{"site listing bad limit", "/v1/sites?limit=nope", http.StatusBadRequest, []string{"bad limit"}},
		{"site listing bad offset", "/v1/sites?offset=-2", http.StatusBadRequest, []string{"bad offset"}},
		{"site listing bad snapshot", "/v1/sites?snapshot=1999", http.StatusBadRequest, []string{"unknown snapshot"}},
		{"site listing unmeasured snapshot", "/v1/sites?snapshot=2016", http.StatusBadRequest, []string{"not measured"}},
		{"site breakdown", "/v1/sites/a.com", http.StatusOK, []string{`"site": "a.com"`, `"rank": 1`, "single-third", "dns1.com"}},
		{"site breakdown explicit snapshot", "/v1/sites/b.com?snapshot=2020", http.StatusOK, []string{`"site": "b.com"`, "multi-third"}},
		{"unknown site", "/v1/sites/nope.example", http.StatusNotFound, []string{"unknown site"}},
		{"site bad snapshot", "/v1/sites/a.com?snapshot=1999", http.StatusBadRequest, []string{"unknown snapshot"}},
		{"provider ranking default", "/v1/providers", http.StatusOK, []string{`"metric": "cp"`, `"service": "dns"`, "dns1.com"}},
		{"provider ranking by impact", "/v1/providers?metric=ip&top=1", http.StatusOK, []string{`"metric": "ip"`, `"rank": 1`}},
		{"provider ranking cdn", "/v1/providers?service=cdn", http.StatusOK, []string{"cdn1.com", "cdn2.com"}},
		{"provider ranking bad metric", "/v1/providers?metric=zz", http.StatusBadRequest, []string{"unknown metric"}},
		{"provider ranking bad service", "/v1/providers?service=smtp", http.StatusBadRequest, []string{"unknown service"}},
		{"provider ranking bad top", "/v1/providers?top=-1", http.StatusBadRequest, []string{"bad top"}},
		{"snapshot meta", "/v1/snapshot", http.StatusOK, []string{`"ready": true`, `"version": 1`, `"seed": 7`}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			code, body := get(t, srv.URL+tc.url)
			if code != tc.want {
				t.Fatalf("GET %s = %d, want %d: %s", tc.url, code, tc.want, body)
			}
			for _, sub := range tc.contains {
				if !strings.Contains(string(body), sub) {
					t.Errorf("GET %s: response missing %q:\n%s", tc.url, sub, body)
				}
			}
		})
	}

	if calls.Load() != 1 {
		t.Errorf("build count after the table = %d, want 1 (all queries shared one snapshot)", calls.Load())
	}

	// dns1.com's concentration must count cdn1.com's transitive users:
	// both sites depend on it (a.com via DNS and via cdn1.com, b.com direct).
	code, body = get(t, srv.URL+"/v1/providers?metric=cp&top=1")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/providers = %d", code)
	}
	var ranking struct {
		Providers []ProviderRank `json:"providers"`
	}
	if err := json.Unmarshal(body, &ranking); err != nil {
		t.Fatal(err)
	}
	if len(ranking.Providers) != 1 || ranking.Providers[0].Name != "dns1.com" || ranking.Providers[0].Concentration != 2 {
		t.Errorf("top DNS provider = %+v, want dns1.com with C_p 2", ranking.Providers)
	}
}

// TestMethodGuards: the Go 1.22 mux patterns reject non-GET methods on the
// /v1 endpoints, and /incident rejects anything but GET/POST.
func TestMethodGuards(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(context.Background(), instantBuilder(&calls))
	srv := testMux(t, m)
	for _, url := range []string{"/v1/sites", "/v1/sites/a.com", "/v1/providers", "/v1/snapshot"} {
		resp, err := http.Post(srv.URL+url, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", url, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/incident", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /incident = %d, want 405", resp.StatusCode)
	}
}

// TestIncidentOnFakeWorld drives /incident against the handcrafted graph.
func TestIncidentOnFakeWorld(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(context.Background(), instantBuilder(&calls))
	srv := testMux(t, m)

	// Listing needs no snapshot build.
	code, body := get(t, srv.URL+"/incident")
	if code != http.StatusOK || !strings.Contains(string(body), "dyn-replay") {
		t.Fatalf("GET /incident = %d: %s", code, body)
	}
	if calls.Load() != 0 {
		t.Fatal("preset listing triggered a build")
	}

	// A custom scenario against a provider that exists in the fake world.
	resp, err := http.Post(srv.URL+"/incident", "application/json",
		strings.NewReader(`{"name":"dns1-down","targets":{"providers":["dns1.com"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /incident = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "dns1-down") {
		t.Errorf("incident report missing scenario name: %s", body)
	}

	// The dyn-replay preset names the 2016 snapshot, which the fake run did
	// not measure: a 400 (the request does not apply), not a 500.
	code, body = get(t, srv.URL+"/incident?preset=dyn-replay")
	if code != http.StatusBadRequest {
		t.Errorf("GET ?preset=dyn-replay on 2020-only run = %d: %s", code, body)
	}
}

// TestBuildFailureIs503 maps a failed cold build onto 503 at the API edge.
func TestBuildFailureIs503(t *testing.T) {
	m := NewManager(context.Background(), func(ctx context.Context) (*analysis.Run, error) {
		return nil, errors.New("injected")
	})
	srv := testMux(t, m)
	code, body := get(t, srv.URL+"/v1/sites")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "injected") {
		t.Errorf("GET /v1/sites with failing builder = %d: %s", code, body)
	}
}

// TestConcurrentQueriesWithSwap hammers every endpoint while snapshots are
// rebuilt and swapped underneath — run under -race this pins the lock-free
// publish: readers only ever see a fully built snapshot.
func TestConcurrentQueriesWithSwap(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(context.Background(), instantBuilder(&calls))
	srv := testMux(t, m)
	if _, err := m.Get(context.Background()); err != nil {
		t.Fatal(err)
	}

	urls := []string{
		"/v1/sites", "/v1/sites/a.com", "/v1/providers?metric=ip", "/v1/snapshot",
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{}
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(srv.URL + urls[(i+j)%len(urls)])
				if err != nil {
					failures.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
			}
		}(i)
	}
	var lastVersion uint64
	for i := 0; i < 5; i++ {
		snap, err := m.Rebuild(context.Background())
		if err != nil {
			t.Fatalf("rebuild %d: %v", i, err)
		}
		lastVersion = snap.Version
	}
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Errorf("%d requests failed during snapshot swaps", failures.Load())
	}
	if lastVersion != 6 {
		t.Errorf("final version = %d, want 6 (1 initial + 5 rebuilds)", lastVersion)
	}
}

// TestWriteJSONCountsEncodeFailures: a write error must move the telemetry
// counter and hit the log hook instead of vanishing.
func TestWriteJSONCountsEncodeFailures(t *testing.T) {
	oldLogf := logf
	var logged atomic.Int64
	logf = func(format string, args ...any) { logged.Add(1) }
	defer func() { logf = oldLogf }()

	before := telWriteErrors.Value()
	writeJSON(&failingWriter{header: make(http.Header)}, http.StatusOK, map[string]string{"k": "v"})
	if telWriteErrors.Value() != before+1 {
		t.Errorf("serve_write_errors_total moved %d, want +1", telWriteErrors.Value()-before)
	}
	if logged.Load() != 1 {
		t.Errorf("log hook called %d times, want 1", logged.Load())
	}
}

type failingWriter struct {
	header http.Header
}

func (f *failingWriter) Header() http.Header       { return f.header }
func (f *failingWriter) WriteHeader(int)           {}
func (f *failingWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("socket gone") }
