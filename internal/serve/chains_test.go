package serve

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"

	"depscope/internal/analysis"
	"depscope/internal/chain"
	"depscope/internal/core"
	"depscope/internal/ecosystem"
	"depscope/internal/measure"
)

// fakeChainRun extends fakeRun's two-site world with resource chains: a.com
// includes vendor1.net directly (depth 1), b.com reaches it through an
// intermediary (depth 2), and vendor1.net itself resolves through dns1.com.
func fakeChainRun() *analysis.Run {
	run := fakeRun()
	g := run.Y2020.Graph
	g.Sites[0].Chains = []core.ChainEdge{{Provider: "vendor1.net", Depth: 1}}
	g.Sites[1].Chains = []core.ChainEdge{{Provider: "vendor1.net", Depth: 2}}
	providers := make([]*core.Provider, 0, len(g.Providers)+1)
	for _, p := range g.Providers {
		providers = append(providers, p)
	}
	providers = append(providers, &core.Provider{
		Name: "vendor1.net", Service: core.Resource,
		Deps: map[core.Service]core.Dep{
			core.DNS: {Class: core.ClassSingleThird, Providers: []string{"dns1.com"}},
		},
	})
	run.Y2020 = &analysis.SnapshotData{
		Snapshot: ecosystem.Y2020,
		Graph:    core.NewGraph(g.Sites, providers),
		Results:  &measure.Results{},
	}
	return run
}

// TestChainsEndpoint pins GET /v1/chains: a chain-measured snapshot serves a
// summary that strict-decodes through the chain package's own codec
// (DisallowUnknownFields + trailing-byte rejection), so schema drift between
// the server and clients fails this test.
func TestChainsEndpoint(t *testing.T) {
	m := NewManager(context.Background(), func(ctx context.Context) (*analysis.Run, error) {
		return fakeChainRun(), nil
	})
	srv := testMux(t, m)

	code, body := get(t, srv.URL+"/v1/chains")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/chains = %d: %s", code, body)
	}
	s, err := chain.ParseSummary(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("response is not a strict chain.Summary: %v\n%s", err, body)
	}
	if s.Sites != 2 || s.SitesWithChains != 2 || s.Edges != 2 || s.Vendors != 1 {
		t.Errorf("summary shape = %+v", s)
	}
	if s.MaxDepth != 2 {
		t.Errorf("max depth = %d, want 2", s.MaxDepth)
	}
	if len(s.TopImplicit) != 1 || s.TopImplicit[0].Provider != "vendor1.net" {
		t.Fatalf("top implicit = %+v", s.TopImplicit)
	}
	if got := s.TopImplicit[0]; got.Sites != 2 || got.MinDepth != 1 || got.MaxDepth != 2 {
		t.Errorf("vendor exposure = %+v", got)
	}

	// dns1.com's implicit concentration must include b.com, reached only
	// through the vendor chain (direct: a.com + b.com use dns1.com for DNS,
	// implicit adds nothing new here — so assert via the vendor instead).
	code, body = get(t, srv.URL+"/v1/chains?top=0")
	if code != http.StatusOK {
		t.Fatalf("top=0 = %d: %s", code, body)
	}

	// Unknown snapshot still 400s like the other endpoints.
	code, body = get(t, srv.URL+"/v1/chains?snapshot=1999")
	if code != http.StatusBadRequest {
		t.Errorf("snapshot=1999 = %d: %s", code, body)
	}
}

// TestChainsEndpointNotMeasured: a snapshot measured without -chains is a
// configuration miss, not an empty result — the endpoint 404s with a hint.
func TestChainsEndpointNotMeasured(t *testing.T) {
	m := NewManager(context.Background(), func(ctx context.Context) (*analysis.Run, error) {
		return fakeRun(), nil
	})
	srv := testMux(t, m)

	code, body := get(t, srv.URL+"/v1/chains")
	if code != http.StatusNotFound {
		t.Fatalf("GET /v1/chains without chain data = %d, want 404: %s", code, body)
	}
	if !strings.Contains(string(body), "without chains") {
		t.Errorf("404 body should explain the missing -chains flag: %s", body)
	}
}
