package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"depscope/internal/analysis"
	"depscope/internal/core"
	"depscope/internal/telemetry"
)

// Live graph deltas. ApplyDelta takes the published snapshot, applies a
// core.Delta to one of its measured graphs, and republishes the result as a
// new immutable snapshot through the same atomic pointer every query reads —
// no cold rebuild, no measurement re-run. The carried metrics engine makes
// the republish cheap (the rankings recomputed at publish time hit the
// patched propagation), and readers are never exposed to intermediate state:
// they see the old snapshot until the single atomic store, then the new one.
//
// The API is admin-gated: POST /v1/delta answers 403 unless the manager was
// built WithDeltaAPI (depserver -allow-delta). GET /v1/diff serves the
// change surface of the last applied delta and is always available.

var (
	telDeltaApplies = telemetry.Counter("delta_applies_total",
		"graph deltas applied and republished through the snapshot pointer")
	telDeltaRejected = telemetry.Counter("delta_rejected_total",
		"graph deltas rejected by validation (unknown site, bad op, ...)")
	telDeltaConflicts = telemetry.Counter("delta_conflicts_total",
		"graph deltas refused because their base version no longer matched the published snapshot")
	telDeltaOps = telemetry.Counter("delta_ops_total",
		"individual delta operations applied")
	telDeltaPatched = telemetry.Counter("delta_patched_entries_total",
		"cached metric entries carried incrementally across applied deltas")
	telDeltaRebuilds = telemetry.Counter("delta_engine_rebuilds_total",
		"applied deltas whose metrics engine could not be carried and was rebuilt from scratch")
	telDeltaSeconds = telemetry.Histogram("delta_apply_seconds",
		"wall-clock duration of delta application and snapshot republish", nil)
)

// ErrVersionConflict marks a delta whose base version no longer matches the
// published snapshot (someone else published in between). The API maps it
// to 409.
var ErrVersionConflict = errors.New("serve: delta base version conflict")

// ErrNoSnapshot marks a delta arriving before any snapshot is published.
var ErrNoSnapshot = errors.New("serve: no snapshot published yet")

// DeltaInfo records how the current snapshot was derived from its
// predecessor, served at GET /v1/diff.
type DeltaInfo struct {
	// BaseVersion is the snapshot version the delta was applied to.
	BaseVersion uint64 `json:"base_version"`
	// Snapshot names the measured graph the delta edited ("2016"/"2020").
	Snapshot string `json:"snapshot"`
	// AppliedAt is the publish time.
	AppliedAt time.Time `json:"applied_at"`
	// Stats reports what the application touched.
	Stats core.ApplyStats `json:"stats"`
	// Diff is the change surface against the predecessor snapshot.
	Diff *analysis.GraphDiff `json:"diff"`
}

// WithDeltaAPI enables the POST /v1/delta endpoint (depserver -allow-delta).
// ApplyDelta itself always works for in-process callers; the option only
// gates the HTTP surface.
func WithDeltaAPI() Option {
	return func(m *Manager) { m.allowDelta = true }
}

// ApplyDelta applies d to the named measured graph ("", "2016" or "2020") of
// the published snapshot and republishes the result as a new snapshot.
// baseVersion 0 means "whatever is current"; any other value must match the
// published version or the call fails with ErrVersionConflict — the
// compare-and-swap callers use to serialize concurrent editors.
func (m *Manager) ApplyDelta(snapshotName string, d core.Delta, baseVersion uint64) (*Snapshot, error) {
	// The manager mutex serializes delta publishes against build publishes
	// and other deltas; readers stay lock-free on the atomic pointer.
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.cur.Load()
	if cur == nil {
		return nil, ErrNoSnapshot
	}
	if baseVersion != 0 && baseVersion != cur.Version {
		telDeltaConflicts.Inc()
		return nil, fmt.Errorf("%w: delta targets version %d, published is %d",
			ErrVersionConflict, baseVersion, cur.Version)
	}
	v, err := cur.view(snapshotName)
	if err != nil {
		telDeltaRejected.Inc()
		return nil, err
	}
	start := m.now()
	ng, stats, err := v.data.Graph.Apply(d)
	if err != nil {
		telDeltaRejected.Inc()
		return nil, err
	}
	// Rebuild the run wrapper around the patched graph: World and Results are
	// untouched measurement artifacts and stay shared.
	nd := &analysis.SnapshotData{
		Snapshot: v.data.Snapshot,
		World:    v.data.World,
		Results:  v.data.Results,
		Graph:    ng,
	}
	nrun := *cur.Run
	if v.name == "2016" {
		nrun.Y2016 = nd
	} else {
		nrun.Y2020 = nd
	}
	m.version++
	finish := m.now()
	snap := newSnapshot(&nrun, m.version, cur.Seed, finish, finish.Sub(start))
	snap.delta = &DeltaInfo{
		BaseVersion: cur.Version,
		Snapshot:    v.name,
		AppliedAt:   finish,
		Stats:       stats,
		Diff:        analysis.DiffGraphs(v.data.Graph, ng),
	}
	m.cur.Store(snap)
	telVersion.Set(int64(snap.Version))
	telDeltaApplies.Inc()
	telDeltaOps.Add(int64(stats.Ops))
	telDeltaPatched.Add(int64(stats.PatchedEntries))
	if stats.Rebuilt {
		telDeltaRebuilds.Inc()
	}
	telDeltaSeconds.ObserveDuration(snap.BuildDuration)
	return snap, nil
}

// deltaRequest is the POST /v1/delta body.
type deltaRequest struct {
	// Snapshot selects the measured graph to edit; empty means 2020.
	Snapshot string `json:"snapshot,omitempty"`
	// BaseVersion, when non-zero, must match the published snapshot version
	// (compare-and-swap for concurrent editors).
	BaseVersion uint64 `json:"base_version,omitempty"`
	// Delta is the edit in the core wire format.
	Delta core.Delta `json:"delta"`
}

// handleDelta is POST /v1/delta.
func (m *Manager) handleDelta(w http.ResponseWriter, r *http.Request) {
	if !m.allowDelta {
		httpError(w, http.StatusForbidden, "the delta API is disabled (start depserver with -allow-delta)")
		return
	}
	var req deltaRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad delta request: %v", err)
		return
	}
	if _, err := dec.Token(); err != io.EOF {
		httpError(w, http.StatusBadRequest, "bad delta request: trailing data after request object")
		return
	}
	if len(req.Delta.Ops) == 0 {
		httpError(w, http.StatusBadRequest, "delta has no operations")
		return
	}
	snap, err := m.ApplyDelta(req.Snapshot, req.Delta, req.BaseVersion)
	switch {
	case errors.Is(err, ErrVersionConflict):
		httpError(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, ErrNoSnapshot):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version": snap.Version,
		"delta":   snap.delta,
	})
}

// handleDiff is GET /v1/diff: the change surface of the last applied delta.
func (m *Manager) handleDiff(w http.ResponseWriter, r *http.Request) {
	s := m.Current()
	if s == nil {
		httpError(w, http.StatusServiceUnavailable, "%v", ErrNoSnapshot)
		return
	}
	if s.delta == nil {
		httpError(w, http.StatusNotFound,
			"snapshot version %d was built from scratch; no delta diff recorded", s.Version)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version": s.Version,
		"delta":   s.delta,
	})
}
