package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"depscope/internal/core"
)

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// swapDelta alternates b.com's DNS provider so repeated applications always
// validate: even rounds swap dns1→dns2, odd rounds swap back.
func swapDelta(round int) core.Delta {
	from, to := "dns1.com", "dns2.com"
	if round%2 == 1 {
		from, to = to, from
	}
	return core.Delta{Ops: []core.Op{
		{Kind: core.OpSwap, Name: "b.com", Service: core.DNS, From: from, To: to},
	}}
}

func TestApplyDeltaRepublishes(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(context.Background(), instantBuilder(&calls))
	s1, err := m.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	s2, err := m.ApplyDelta("2020", swapDelta(0), s1.Version)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version != s1.Version+1 || m.Current() != s2 {
		t.Fatalf("republish: v%d → v%d, current == new: %v", s1.Version, s2.Version, m.Current() == s2)
	}
	if calls.Load() != 1 {
		t.Fatalf("ApplyDelta triggered %d builds, want the initial 1 only", calls.Load())
	}
	info := s2.Delta()
	if info == nil || info.BaseVersion != s1.Version || info.Snapshot != "2020" || info.Diff.Empty() {
		t.Fatalf("delta info = %+v", info)
	}
	// The old snapshot is untouched: b.com still names dns1.com there.
	oldSite := s1.Run.Y2020.Graph.Site("b.com")
	if !contains(oldSite.Deps[core.DNS].Providers, "dns1.com") {
		t.Fatal("ApplyDelta mutated the predecessor snapshot's graph")
	}
	newSite := s2.Run.Y2020.Graph.Site("b.com")
	if contains(newSite.Deps[core.DNS].Providers, "dns1.com") || !contains(newSite.Deps[core.DNS].Providers, "dns2.com") {
		t.Fatalf("patched graph b.com DNS = %v", newSite.Deps[core.DNS].Providers)
	}
	// Rankings were recomputed at publish time: dns2.com gained b.com.
	ranked := s2.views["2020"].rankings[rankKey{core.DNS, false}]
	var dns2 *ProviderRank
	for i := range ranked {
		if ranked[i].Name == "dns2.com" {
			dns2 = &ranked[i]
		}
	}
	if dns2 == nil || dns2.Concentration != 1 {
		t.Fatalf("republished ranking for dns2.com = %+v", dns2)
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func TestApplyDeltaVersionConflict(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(context.Background(), instantBuilder(&calls))
	s1, err := m.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ApplyDelta("2020", swapDelta(0), s1.Version+7); !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("stale base version: err = %v, want ErrVersionConflict", err)
	}
	if m.Current() != s1 {
		t.Fatal("conflicting delta still republished")
	}
}

func TestApplyDeltaValidationLeavesSnapshot(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(context.Background(), instantBuilder(&calls))
	s1, err := m.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	bad := core.Delta{Ops: []core.Op{{Kind: core.OpSiteRemove, Name: "nope.example"}}}
	if _, err := m.ApplyDelta("2020", bad, 0); err == nil {
		t.Fatal("invalid delta applied")
	}
	if m.Current() != s1 {
		t.Fatal("failed delta republished a snapshot")
	}
	if _, err := m.ApplyDelta("", core.Delta{Ops: bad.Ops}, 0); err == nil {
		t.Fatal("default snapshot name accepted an invalid delta")
	}
	if _, err := m.ApplyDelta("2016", swapDelta(0), 0); err == nil {
		t.Fatal("delta against an unmeasured snapshot succeeded")
	}
}

// TestApplyDeltaBeforeFirstBuild: a delta with nothing published is
// ErrNoSnapshot, and never invokes the builder.
func TestApplyDeltaBeforeFirstBuild(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(context.Background(), instantBuilder(&calls))
	if _, err := m.ApplyDelta("2020", swapDelta(0), 0); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("ApplyDelta cold = %v, want ErrNoSnapshot", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("ApplyDelta triggered %d builds, want 0", calls.Load())
	}
}

// TestDeltaEndpoints drives POST /v1/delta and GET /v1/diff end to end.
func TestDeltaEndpoints(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(context.Background(), instantBuilder(&calls), WithDeltaAPI())
	srv := testMux(t, m)
	if _, err := m.Get(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Diff before any delta: 404 with a diagnostic.
	code, body := get(t, srv.URL+"/v1/diff")
	if code != http.StatusNotFound || !strings.Contains(string(body), "from scratch") {
		t.Fatalf("GET /v1/diff pre-delta = %d: %s", code, body)
	}

	req := `{"snapshot":"2020","base_version":1,"delta":{"ops":[
	  {"op":"swap","name":"b.com","service":"dns","from":"dns1.com","to":"dns2.com"}]}}`
	code, body = postJSON(t, srv.URL+"/v1/delta", req)
	if code != http.StatusOK {
		t.Fatalf("POST /v1/delta = %d: %s", code, body)
	}
	var applied struct {
		Version uint64     `json:"version"`
		Delta   *DeltaInfo `json:"delta"`
	}
	if err := json.Unmarshal(body, &applied); err != nil {
		t.Fatal(err)
	}
	if applied.Version != 2 || applied.Delta == nil || applied.Delta.BaseVersion != 1 {
		t.Fatalf("apply response = %s", body)
	}

	// b.com was multi {dns1, dns2}; the swap dedups it to {dns2}, so the
	// change surface is dns1.com losing one user.
	code, body = get(t, srv.URL+"/v1/diff")
	if code != http.StatusOK || !strings.Contains(string(body), `"name": "dns1.com"`) ||
		!strings.Contains(string(body), `"delta_concentration": -1`) {
		t.Fatalf("GET /v1/diff = %d: %s", code, body)
	}

	// Replayed against the already-advanced version: 409.
	code, body = postJSON(t, srv.URL+"/v1/delta", req)
	if code != http.StatusConflict {
		t.Fatalf("stale POST /v1/delta = %d: %s", code, body)
	}

	// Malformed bodies: unknown field, empty ops, bad op, trailing data.
	for _, bad := range []string{
		`{"snapshoot":"2020","delta":{"ops":[]}}`,
		`{"delta":{"ops":[]}}`,
		`{"delta":{"ops":[{"op":"nope"}]}}`,
		`{"delta":{"ops":[{"op":"site-remove","name":"b.com"}]}}{}`,
	} {
		if code, body := postJSON(t, srv.URL+"/v1/delta", bad); code != http.StatusBadRequest {
			t.Errorf("POST %q = %d: %s", bad, code, body)
		}
	}
}

// TestDeltaEndpointGated: without WithDeltaAPI the endpoint answers 403 and
// applies nothing.
func TestDeltaEndpointGated(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(context.Background(), instantBuilder(&calls))
	srv := testMux(t, m)
	if _, err := m.Get(context.Background()); err != nil {
		t.Fatal(err)
	}
	req := `{"delta":{"ops":[{"op":"swap","name":"b.com","service":"dns","from":"dns1.com","to":"dns2.com"}]}}`
	code, body := postJSON(t, srv.URL+"/v1/delta", req)
	if code != http.StatusForbidden || !strings.Contains(string(body), "-allow-delta") {
		t.Fatalf("ungated POST /v1/delta = %d: %s", code, body)
	}
	if m.Current().Version != 1 {
		t.Fatal("gated endpoint still republished")
	}
}

// TestConcurrentDeltasWithQueries hammers ApplyDelta concurrently with every
// /v1 read endpoint. Under -race this pins the publish discipline: readers
// always observe a fully built snapshot, versions only move forward, and a
// site breakdown never shows a half-applied arrangement (b.com always names
// at least one DNS provider; a torn snapshot would surface as a 500, an
// empty arrangement, or a race report).
func TestConcurrentDeltasWithQueries(t *testing.T) {
	var calls atomic.Int64
	m := NewManager(context.Background(), instantBuilder(&calls), WithDeltaAPI())
	srv := testMux(t, m)
	if _, err := m.Get(context.Background()); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failures atomic.Int64
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	// Readers: every endpoint, plus a version-monotonicity observer.
	urls := []string{"/v1/sites", "/v1/sites/b.com", "/v1/providers?metric=ip", "/v1/snapshot", "/v1/diff"}
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{}
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				url := urls[(i+j)%len(urls)]
				resp, err := client.Get(srv.URL + url)
				if err != nil {
					fail("GET %s: %v", url, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				// /v1/diff is 404 until the first delta lands; everything else
				// must always succeed.
				if resp.StatusCode != http.StatusOK &&
					!(url == "/v1/diff" && resp.StatusCode == http.StatusNotFound) {
					fail("GET %s = %d: %s", url, resp.StatusCode, body)
					return
				}
				if url == "/v1/sites/b.com" && resp.StatusCode == http.StatusOK {
					if !strings.Contains(string(body), "dns1.com") && !strings.Contains(string(body), "dns2.com") {
						fail("torn read: b.com lost its DNS arrangement entirely:\n%s", body)
						return
					}
				}
			}
		}(i)
	}
	var lastVersion atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := m.Current()
			if s == nil {
				fail("Current() == nil after first build")
				return
			}
			for {
				prev := lastVersion.Load()
				if s.Version >= prev {
					if lastVersion.CompareAndSwap(prev, s.Version) {
						break
					}
					continue
				}
				fail("version went backwards: %d after %d", s.Version, prev)
				return
			}
		}
	}()

	// Writer: 40 alternating swaps through the public API.
	const rounds = 40
	for r := 0; r < rounds; r++ {
		snap, err := m.ApplyDelta("2020", swapDelta(r), 0)
		if err != nil {
			t.Fatalf("ApplyDelta round %d: %v", r, err)
		}
		if snap.Version != uint64(r+2) {
			t.Fatalf("round %d published version %d, want %d", r, snap.Version, r+2)
		}
	}
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d reader failures during concurrent deltas", failures.Load())
	}
	if got := m.Current().Version; got != rounds+1 {
		t.Fatalf("final version = %d, want %d", got, rounds+1)
	}
}
