package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"depscope/internal/analysis"
	"depscope/internal/chain"
	"depscope/internal/core"
	"depscope/internal/incident"
	"depscope/internal/telemetry"
)

// The /v1 JSON query API. Every handler follows the same shape: resolve the
// snapshot with one atomic load (building it only when cold, coalesced with
// every other cold request), then answer from immutable data — no locks,
// no shared mutable state, per-request cancellation honored while waiting
// on a cold build.

var (
	telInflight = telemetry.Gauge("serve_inflight_requests",
		"query-API requests currently being handled")
	telWriteErrors = telemetry.Counter("serve_write_errors_total",
		"JSON responses that failed to encode or write (truncated responses under load)")
)

// logf is the package logger, a variable so tests can silence or capture it.
var logf = log.Printf

// statusWriter captures the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with its per-endpoint telemetry: a request
// counter, an error counter (status >= 400) and a latency histogram, plus
// the shared in-flight gauge. Metric handles are created once at Register
// time; the per-request work is a few atomic adds.
func instrument(name string, h http.HandlerFunc) http.Handler {
	reqs := telemetry.Counter("serve_"+name+"_requests_total",
		"requests handled by the "+name+" endpoint")
	errs := telemetry.Counter("serve_"+name+"_errors_total",
		"requests the "+name+" endpoint answered with status >= 400")
	lat := telemetry.Histogram("serve_"+name+"_seconds",
		"request latency of the "+name+" endpoint", nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		telInflight.Add(1)
		defer telInflight.Add(-1)
		reqs.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		if sw.status >= 400 {
			errs.Inc()
		}
		lat.ObserveDuration(time.Since(start))
	})
}

// writeJSON writes v with the given status. Encode/write failures (a client
// gone mid-response, a full socket buffer under load) are counted and
// logged so truncated responses are visible instead of silent.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		telWriteErrors.Inc()
		logf("serve: write response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// snapshot resolves the snapshot for a query request, mapping a cold-build
// failure to 503 (the build will be retried) and request cancellation to
// the client-gone status. It returns nil after writing the error.
func (m *Manager) snapshot(w http.ResponseWriter, r *http.Request) *Snapshot {
	s, err := m.Get(r.Context())
	if err != nil {
		if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
			// The client gave up while the cold build was running; the build
			// itself keeps going for the next caller.
			httpError(w, http.StatusRequestTimeout, "request cancelled: %v", err)
			return nil
		}
		httpError(w, http.StatusServiceUnavailable, "snapshot unavailable: %v", err)
		return nil
	}
	return s
}

// view resolves ?snapshot= against s, writing a 400 on failure.
func (s *Snapshot) viewParam(w http.ResponseWriter, r *http.Request) *snapView {
	v, err := s.view(r.URL.Query().Get("snapshot"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return nil
	}
	return v
}

// snapshotMeta is the /v1/snapshot response.
type snapshotMeta struct {
	Ready        bool               `json:"ready"`
	Version      uint64             `json:"version,omitempty"`
	BuiltAt      time.Time          `json:"built_at,omitempty"`
	BuildSeconds float64            `json:"build_seconds,omitempty"`
	Scale        int                `json:"scale,omitempty"`
	Seed         int64              `json:"seed,omitempty"`
	Snapshots    []snapshotMetaView `json:"snapshots,omitempty"`
	Building     bool               `json:"building,omitempty"`
	LastError    string             `json:"last_error,omitempty"`
	RetrySeconds float64            `json:"retry_in_seconds,omitempty"`
}

type snapshotMetaView struct {
	Snapshot  string `json:"snapshot"`
	Sites     int    `json:"sites"`
	Providers int    `json:"providers"`
}

// handleSnapshot serves version/build metadata. It never triggers a build:
// before the first snapshot lands it reports the manager's build state, so
// load generators and operators can poll it for readiness.
func (m *Manager) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s := m.Current()
	if s == nil {
		st := m.Status()
		writeJSON(w, http.StatusOK, snapshotMeta{
			Building:     st.Building,
			LastError:    st.LastError,
			RetrySeconds: st.RetryIn.Seconds(),
		})
		return
	}
	meta := snapshotMeta{
		Ready:        true,
		Version:      s.Version,
		BuiltAt:      s.BuiltAt,
		BuildSeconds: s.BuildDuration.Seconds(),
		Scale:        s.Scale,
		Seed:         s.Seed,
	}
	for _, name := range []string{"2016", "2020"} {
		if v, ok := s.views[name]; ok {
			meta.Snapshots = append(meta.Snapshots, snapshotMetaView{
				Snapshot:  name,
				Sites:     len(v.sites),
				Providers: len(v.data.Graph.Providers),
			})
		}
	}
	writeJSON(w, http.StatusOK, meta)
}

// handleSites lists site names in rank order, paged by offset/limit.
func (m *Manager) handleSites(w http.ResponseWriter, r *http.Request) {
	s := m.snapshot(w, r)
	if s == nil {
		return
	}
	v := s.viewParam(w, r)
	if v == nil {
		return
	}
	offset, ok := intParam(w, r, "offset", 0)
	if !ok {
		return
	}
	limit, ok := intParam(w, r, "limit", 100)
	if !ok {
		return
	}
	const maxLimit = 10000
	if limit > maxLimit {
		limit = maxLimit
	}
	names := v.sites
	if offset > len(names) {
		offset = len(names)
	}
	page := names[offset:]
	if len(page) > limit {
		page = page[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"snapshot": v.name,
		"total":    len(names),
		"offset":   offset,
		"sites":    page,
	})
}

// handleSite serves one site's dependency breakdown.
func (m *Manager) handleSite(w http.ResponseWriter, r *http.Request) {
	s := m.snapshot(w, r)
	if s == nil {
		return
	}
	name := r.PathValue("name")
	view, err := analysis.SiteBreakdown(s.Run, r.URL.Query().Get("snapshot"), name)
	if err != nil {
		if errors.Is(err, analysis.ErrUnknownSite) {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleProviders serves provider rankings off the snapshot's precomputed
// tables: resolving metric/service/top is parsing, the ranking itself is a
// slice expression.
func (m *Manager) handleProviders(w http.ResponseWriter, r *http.Request) {
	s := m.snapshot(w, r)
	if s == nil {
		return
	}
	v := s.viewParam(w, r)
	if v == nil {
		return
	}
	q := r.URL.Query()
	var byImpact bool
	metric := "cp"
	switch q.Get("metric") {
	case "", "cp", "concentration":
	case "ip", "impact":
		byImpact, metric = true, "ip"
	default:
		httpError(w, http.StatusBadRequest, "unknown metric %q (want cp or ip)", q.Get("metric"))
		return
	}
	svc := core.DNS
	svcName := "dns"
	switch strings.ToLower(q.Get("service")) {
	case "", "dns":
	case "cdn":
		svc, svcName = core.CDN, "cdn"
	case "ca":
		svc, svcName = core.CA, "ca"
	default:
		httpError(w, http.StatusBadRequest, "unknown service %q (want dns, cdn or ca)", q.Get("service"))
		return
	}
	top, ok := intParam(w, r, "top", 10)
	if !ok {
		return
	}
	ranked := v.rankings[rankKey{svc, byImpact}]
	page := ranked
	if top > 0 && len(page) > top {
		page = page[:top]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"snapshot":  v.name,
		"service":   svcName,
		"metric":    metric,
		"total":     len(ranked),
		"providers": page,
	})
}

// handleIncident answers:
//
//	GET  /incident                 — list the built-in presets (no build)
//	GET  /incident?preset=NAME     — simulate a preset
//	POST /incident                 — simulate the scenario JSON in the body
func (m *Manager) handleIncident(w http.ResponseWriter, r *http.Request) {
	var sc *incident.Scenario
	switch r.Method {
	case http.MethodGet:
		name := r.URL.Query().Get("preset")
		if name == "" {
			writeJSON(w, http.StatusOK, map[string]any{"presets": incident.PresetNames()})
			return
		}
		var ok bool
		if sc, ok = incident.Preset(name); !ok {
			httpError(w, http.StatusBadRequest, "unknown preset %q (have: %s)",
				name, strings.Join(incident.PresetNames(), ", "))
			return
		}
	case http.MethodPost:
		var err error
		if sc, err = incident.ParseScenario(r.Body); err != nil {
			httpError(w, http.StatusBadRequest, "bad scenario: %v", err)
			return
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	s := m.snapshot(w, r)
	if s == nil {
		return
	}
	rep, err := analysis.SimulateIncident(r.Context(), s.Run, sc)
	if err != nil {
		// The scenario parsed but does not apply to this world (unknown
		// provider, missing snapshot, ...): the request is at fault.
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleSweep answers:
//
//	GET  /v1/sweep              — list the built-in sweep presets (no build)
//	GET  /v1/sweep?preset=NAME  — run a preset Monte-Carlo sweep
//	POST /v1/sweep              — run the sweep spec JSON in the body
func (m *Manager) handleSweep(w http.ResponseWriter, r *http.Request) {
	var sp *incident.SweepSpec
	switch r.Method {
	case http.MethodGet:
		name := r.URL.Query().Get("preset")
		if name == "" {
			writeJSON(w, http.StatusOK, map[string]any{"presets": incident.SweepPresetNames()})
			return
		}
		var ok bool
		if sp, ok = incident.SweepPreset(name); !ok {
			httpError(w, http.StatusBadRequest, "unknown sweep preset %q (have: %s)",
				name, strings.Join(incident.SweepPresetNames(), ", "))
			return
		}
	case http.MethodPost:
		var err error
		if sp, err = incident.ParseSweep(r.Body); err != nil {
			httpError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
			return
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	s := m.snapshot(w, r)
	if s == nil {
		return
	}
	rep, err := analysis.MonteCarloSweep(r.Context(), s.Run, sp, 0)
	if err != nil {
		if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
			httpError(w, http.StatusRequestTimeout, "request cancelled: %v", err)
			return
		}
		// The spec parsed but does not apply to this world (unknown provider,
		// missing snapshot, empty pool, ...): the request is at fault.
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleChains serves the implicit-trust chain summary — direct vs
// implicit concentration, the chain-depth histogram and the top
// implicitly-trusted vendors:
//
//	GET /v1/chains?snapshot=2020&top=10
//
// 404 when the run was measured without chains (depserver -chains off):
// absence of chain data is a configuration state, not an empty result.
func (m *Manager) handleChains(w http.ResponseWriter, r *http.Request) {
	s := m.snapshot(w, r)
	if s == nil {
		return
	}
	v := s.viewParam(w, r)
	if v == nil {
		return
	}
	top, ok := intParam(w, r, "top", 10)
	if !ok {
		return
	}
	hasChains := false
	for _, site := range v.data.Graph.Sites {
		if len(site.Chains) > 0 {
			hasChains = true
			break
		}
	}
	if !hasChains {
		httpError(w, http.StatusNotFound,
			"the %s snapshot was measured without chains (start depserver with -chains)", v.name)
		return
	}
	writeJSON(w, http.StatusOK, chain.Summarize(v.data.Graph, top))
}

// handleMitigation serves the greedy mitigation plan:
//
//	GET /v1/mitigation?k=10&snapshot=2020
func (m *Manager) handleMitigation(w http.ResponseWriter, r *http.Request) {
	s := m.snapshot(w, r)
	if s == nil {
		return
	}
	k, ok := intParam(w, r, "k", 10)
	if !ok {
		return
	}
	const maxK = 10000
	if k > maxK {
		k = maxK
	}
	plan, err := analysis.Mitigation(s.Run, k, r.URL.Query().Get("snapshot"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, plan)
}

// intParam parses a non-negative integer query parameter, writing a 400 and
// returning ok=false on bad input.
func intParam(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		httpError(w, http.StatusBadRequest, "bad %s %q: want a non-negative integer", name, raw)
		return 0, false
	}
	return n, true
}
