// Package serve is depserver's query layer: immutable, versioned analysis
// snapshots published through an atomic pointer, a manager that builds them
// off the request path (coalescing concurrent cold requests into one build
// and retrying failed builds with backoff instead of caching the error),
// and the /v1 JSON query API plus /incident mounted on the admin mux.
//
// The hot path is lock-free by construction: a request does one atomic
// pointer load to pick up the current snapshot and then only reads
// immutable data — site lookups are map reads on the measured graph,
// provider rankings are precomputed slices frozen at build time. Builds,
// swaps and failure bookkeeping all happen behind the pointer.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"depscope/internal/analysis"
	"depscope/internal/core"
	"depscope/internal/telemetry"
)

// Build-duration buckets: analysis runs span milliseconds (test scale) to
// minutes (the paper's 100K sites), beyond the default latency ladder.
var buildBuckets = []float64{0.01, 0.05, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600}

var (
	telBuilds = telemetry.Counter("serve_snapshot_builds_total",
		"analysis snapshot builds completed and published to the query API")
	telBuildFailures = telemetry.Counter("serve_snapshot_build_failures_total",
		"analysis snapshot builds that failed (retried with backoff, never cached)")
	telCoalesced = telemetry.Counter("serve_snapshot_coalesced_total",
		"cold-snapshot requests that joined an already in-flight build instead of starting their own")
	telVersion = telemetry.Gauge("serve_snapshot_version",
		"version of the currently published snapshot (0 until the first build lands)")
	telBuilding = telemetry.Gauge("serve_snapshot_building",
		"1 while a snapshot build is in flight")
	telBuildSeconds = telemetry.Histogram("serve_snapshot_build_seconds",
		"wall-clock duration of analysis snapshot builds", buildBuckets)
)

// Builder produces the analysis run a snapshot freezes. The context is the
// server lifecycle: a SIGTERM mid-build cancels the measurement instead of
// leaving it running detached.
type Builder func(ctx context.Context) (*analysis.Run, error)

// ProviderRank is one row of a precomputed provider ranking.
type ProviderRank struct {
	Rank          int    `json:"rank"`
	Name          string `json:"name"`
	Service       string `json:"service"`
	Concentration int    `json:"concentration"`
	Impact        int    `json:"impact"`
}

type rankKey struct {
	svc      core.Service
	byImpact bool
}

// snapView is the frozen per-snapshot ("2016"/"2020") query state.
type snapView struct {
	name  string
	data  *analysis.SnapshotData
	sites []string // rank order
	// rankings holds the full provider ranking per (service, metric),
	// computed once at build time so top-K queries are a slice expression.
	rankings map[rankKey][]ProviderRank
}

// Snapshot is one immutable, versioned view over a completed analysis run.
// Everything reachable from it is read-only after newSnapshot returns.
type Snapshot struct {
	Version       uint64
	BuiltAt       time.Time
	BuildDuration time.Duration
	Scale         int
	Seed          int64
	Run           *analysis.Run

	views map[string]*snapView
	// delta records how this snapshot was derived from its predecessor by
	// Manager.ApplyDelta; nil for snapshots built from scratch.
	delta *DeltaInfo
}

// Delta reports how this snapshot was derived from its predecessor via
// ApplyDelta, or nil for a from-scratch build.
func (s *Snapshot) Delta() *DeltaInfo { return s.delta }

func newSnapshot(run *analysis.Run, version uint64, seed int64, builtAt time.Time, dur time.Duration) *Snapshot {
	s := &Snapshot{
		Version:       version,
		BuiltAt:       builtAt,
		BuildDuration: dur,
		Scale:         run.Scale,
		Seed:          seed,
		Run:           run,
		views:         make(map[string]*snapView),
	}
	for _, name := range []string{"2016", "2020"} {
		names, err := analysis.SiteNames(run, name)
		if err != nil {
			continue // snapshot not measured in this run
		}
		v := &snapView{
			name:     name,
			sites:    names,
			rankings: make(map[rankKey][]ProviderRank),
		}
		if name == "2016" {
			v.data = run.Y2016
		} else {
			v.data = run.Y2020
		}
		for _, svc := range core.Services {
			for _, byImpact := range []bool{false, true} {
				stats, err := analysis.RankedProviders(run, name, svc, byImpact)
				if err != nil {
					continue
				}
				ranked := make([]ProviderRank, len(stats))
				for i, st := range stats {
					ranked[i] = ProviderRank{
						Rank:          i + 1,
						Name:          st.Name,
						Service:       strings.ToLower(svc.String()),
						Concentration: st.Concentration,
						Impact:        st.Impact,
					}
				}
				v.rankings[rankKey{svc, byImpact}] = ranked
			}
		}
		s.views[name] = v
	}
	return s
}

// view resolves a request's snapshot parameter ("", "2016", "2020"). The
// bool distinguishes "no such snapshot name" (false → 400) from a valid
// name that this run did not measure (also 400, different message).
func (s *Snapshot) view(name string) (*snapView, error) {
	switch name {
	case "", "2016", "2020":
	default:
		return nil, fmt.Errorf("unknown snapshot %q (want 2016 or 2020)", name)
	}
	v, ok := s.views[analysis.CanonicalSnapshot(name)]
	if !ok {
		return nil, fmt.Errorf("the %s snapshot was not measured in this run", analysis.CanonicalSnapshot(name))
	}
	return v, nil
}

// buildCall is one in-flight build every concurrent cold request joins.
// snap/err are written before done is closed and read only after.
type buildCall struct {
	done chan struct{}
	snap *Snapshot
	err  error
}

// Status reports the manager's build-side state for /v1/snapshot when no
// snapshot is published yet.
type Status struct {
	Building  bool          `json:"building"`
	LastError string        `json:"last_error,omitempty"`
	RetryIn   time.Duration `json:"-"`
}

// Manager owns the snapshot lifecycle: it runs Builder off the request
// path, publishes successful builds through an atomic pointer, coalesces
// concurrent cold requests into one build, and gates rebuild attempts after
// a failure behind exponential backoff — a failed build is retried, never
// cached for the process lifetime.
type Manager struct {
	build     Builder
	lifecycle context.Context // cancels in-flight builds on server shutdown

	cur     atomic.Pointer[Snapshot]
	version uint64 // guarded by mu; published versions are monotonic

	mu       sync.Mutex
	inflight *buildCall
	failures int
	lastErr  error
	nextTry  time.Time

	minRetry, maxRetry time.Duration
	buildInfoSeed      int64
	allowDelta         bool             // gates POST /v1/delta (WithDeltaAPI)
	now                func() time.Time // test hook
}

// NewManager creates a manager whose builds run under lifecycle: cancelling
// that context aborts any in-flight build and every later attempt.
func NewManager(lifecycle context.Context, build Builder, opts ...Option) *Manager {
	m := &Manager{
		build:     build,
		lifecycle: lifecycle,
		minRetry:  time.Second,
		maxRetry:  30 * time.Second,
		now:       time.Now,
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Option configures a Manager.
type Option func(*Manager)

// WithBackoff sets the failure-retry window: after the Nth consecutive
// failure the next build attempt is gated min<<(N-1) away, capped at max.
func WithBackoff(min, max time.Duration) Option {
	return func(m *Manager) { m.minRetry, m.maxRetry = min, max }
}

// WithSeed records the generator seed for /v1/snapshot metadata (the run
// itself only carries the scale).
func WithSeed(seed int64) Option {
	return func(m *Manager) { m.buildInfoSeed = seed }
}

// Current returns the published snapshot, or nil before the first
// successful build. It is the request hot path: one atomic load.
func (m *Manager) Current() *Snapshot { return m.cur.Load() }

// Get returns the current snapshot, building one if none is published.
// Concurrent cold callers coalesce into a single build; ctx cancellation
// detaches the caller without aborting the shared build (the build itself
// runs under the manager's lifecycle context). After a failed build, Get
// returns the failure until the backoff window elapses, then retries.
func (m *Manager) Get(ctx context.Context) (*Snapshot, error) {
	if s := m.cur.Load(); s != nil {
		return s, nil
	}
	snap, call, err := m.startOrJoin(false)
	if err != nil {
		return nil, err
	}
	if snap != nil {
		return snap, nil
	}
	select {
	case <-call.done:
		return call.snap, call.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Rebuild forces a fresh build (joining one already in flight) and returns
// the snapshot it publishes. The previous snapshot stays published — and
// requests keep being served from it, lock-free — until the new one lands.
func (m *Manager) Rebuild(ctx context.Context) (*Snapshot, error) {
	_, call, err := m.startOrJoin(true)
	if err != nil {
		return nil, err
	}
	select {
	case <-call.done:
		return call.snap, call.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Prewarm kicks off the initial build in the background and keeps retrying
// (honoring the backoff gate) until a build succeeds or the lifecycle
// context ends. It returns immediately.
func (m *Manager) Prewarm() {
	go func() {
		for m.lifecycle.Err() == nil {
			if _, err := m.Get(m.lifecycle); err == nil {
				return
			}
			m.mu.Lock()
			wait := m.nextTry.Sub(m.now())
			m.mu.Unlock()
			if wait < 10*time.Millisecond {
				wait = 10 * time.Millisecond
			}
			t := time.NewTimer(wait)
			select {
			case <-m.lifecycle.Done():
				t.Stop()
				return
			case <-t.C:
			}
		}
	}()
}

// Status reports build-side state (never touched on the warm hot path).
func (m *Manager) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{Building: m.inflight != nil}
	if m.lastErr != nil {
		st.LastError = m.lastErr.Error()
		if d := m.nextTry.Sub(m.now()); d > 0 {
			st.RetryIn = d
		}
	}
	return st
}

// startOrJoin returns either an already-published snapshot (double-checked
// under the lock), an in-flight or freshly started build to wait on, or the
// backoff-gated last failure. force (Rebuild) skips the published-snapshot
// and backoff short-circuits but still joins an in-flight build.
func (m *Manager) startOrJoin(force bool) (*Snapshot, *buildCall, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c := m.inflight; c != nil {
		telCoalesced.Inc()
		return nil, c, nil
	}
	if !force {
		if s := m.cur.Load(); s != nil {
			return s, nil, nil
		}
		if m.failures > 0 && m.now().Before(m.nextTry) {
			return nil, nil, fmt.Errorf("serve: snapshot build failed (next retry in %s): %w",
				m.nextTry.Sub(m.now()).Round(time.Millisecond), m.lastErr)
		}
	}
	if err := m.lifecycle.Err(); err != nil {
		return nil, nil, fmt.Errorf("serve: server shutting down: %w", err)
	}
	c := &buildCall{done: make(chan struct{})}
	m.inflight = c
	telBuilding.Set(1)
	go m.runBuild(c)
	return nil, c, nil
}

// runBuild executes one build under the lifecycle context and publishes or
// records the failure.
func (m *Manager) runBuild(c *buildCall) {
	start := m.now()
	run, err := m.build(m.lifecycle)
	if err == nil && run == nil {
		err = fmt.Errorf("serve: builder returned no run")
	}
	finish := m.now()

	m.mu.Lock()
	m.inflight = nil
	telBuilding.Set(0)
	if err != nil {
		m.failures++
		m.lastErr = err
		backoff := m.minRetry << (m.failures - 1)
		if backoff > m.maxRetry || backoff <= 0 {
			backoff = m.maxRetry
		}
		m.nextTry = finish.Add(backoff)
		telBuildFailures.Inc()
		m.mu.Unlock()
		c.err = err
		close(c.done)
		return
	}
	m.version++
	snap := newSnapshot(run, m.version, m.buildInfoSeed, finish, finish.Sub(start))
	m.failures = 0
	m.lastErr = nil
	m.cur.Store(snap)
	telVersion.Set(int64(snap.Version))
	telBuilds.Inc()
	telBuildSeconds.ObserveDuration(snap.BuildDuration)
	m.mu.Unlock()
	c.snap = snap
	close(c.done)
}

// Register mounts the query API on mux: the /v1 endpoints and /incident,
// each wrapped with per-endpoint telemetry. See docs/serving.md.
func Register(mux *http.ServeMux, m *Manager) {
	mux.Handle("GET /v1/snapshot", instrument("snapshot", m.handleSnapshot))
	mux.Handle("GET /v1/sites", instrument("sites", m.handleSites))
	mux.Handle("GET /v1/sites/{name}", instrument("site", m.handleSite))
	mux.Handle("GET /v1/providers", instrument("providers", m.handleProviders))
	mux.Handle("POST /v1/delta", instrument("delta", m.handleDelta))
	mux.Handle("GET /v1/diff", instrument("diff", m.handleDiff))
	mux.Handle("/v1/sweep", instrument("sweep", m.handleSweep))
	mux.Handle("GET /v1/chains", instrument("chains", m.handleChains))
	mux.Handle("GET /v1/mitigation", instrument("mitigation", m.handleMitigation))
	mux.Handle("/incident", instrument("incident", m.handleIncident))
}
