package conc_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"depscope/internal/conc"
)

// ExampleForEach fans 100 items out over 8 workers under the Collect
// policy: every item runs even though some fail, and the joined error
// reports each failure in item order.
func ExampleForEach() {
	var sum atomic.Int64
	err := conc.ForEach(context.Background(), 100, 8, conc.Collect, func(_ context.Context, i int) error {
		if i == 13 {
			return errors.New("item 13 is unlucky")
		}
		sum.Add(int64(i))
		return nil
	})
	fmt.Println("sum:", sum.Load())
	fmt.Println("err:", err)
	// Output:
	// sum: 4937
	// err: item 13 is unlucky
}

// ExampleForEach_failFast shows the default policy: the first error stops
// dispatch and is returned alone.
func ExampleForEach_failFast() {
	err := conc.ForEach(context.Background(), 1000, 1, conc.FailFast, func(_ context.Context, i int) error {
		if i == 3 {
			return fmt.Errorf("item %d failed", i)
		}
		return nil
	})
	fmt.Println(err)
	// Output:
	// item 3 failed
}

// ExampleDo is the error-free variant for CPU-bound sweeps.
func ExampleDo() {
	squares := make([]int, 5)
	conc.Do(len(squares), 4, func(i int) { squares[i] = i * i })
	fmt.Println(squares)
	// Output:
	// [0 1 4 9 16]
}
