// Package conc provides the one bounded, context-aware worker pool shared by
// the measurement, metrics and analysis layers. It replaces the four
// hand-rolled pools that used to live in measure.forEach, the metrics-engine
// level sweep, the analysis snapshot fan-out and the page crawler, so every
// layer gets the same clamping, cancellation and error semantics.
//
// Because every fan-out in the tree goes through this package, it is also
// the single point of pool observability: each ForEach/Do call feeds the
// shared telemetry registry with task counters (conc_tasks_queued_total,
// conc_tasks_started_total, conc_tasks_done_total), an in-flight gauge, and
// — for ForEach, whose items do real I/O-shaped work — queue-wait and
// run-time histograms plus per-policy error counters. See
// docs/observability.md for the catalog. Telemetry is record-only: nothing
// in this package branches on a metric value, so pool behaviour (and the
// measurement output above it) is unaffected.
package conc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"depscope/internal/telemetry"
)

// Pool metrics, registered once; the per-item hot path is atomic adds only.
// Do skips the histograms: its items are CPU-bound microtasks (metrics-
// engine level sweeps) where two extra clock reads per item would be the
// dominant cost, so it feeds the counters alone.
var (
	tasksQueued  = telemetry.Counter("conc_tasks_queued_total", "work items submitted to the shared pool (ForEach and Do)")
	tasksStarted = telemetry.Counter("conc_tasks_started_total", "work items claimed by a pool worker")
	tasksDone    = telemetry.Counter("conc_tasks_done_total", "work items that finished running")
	inflight     = telemetry.Gauge("conc_inflight_tasks", "work items currently executing")
	errsFailFast = telemetry.Counter("conc_task_errors_failfast_total", "item errors observed under the FailFast policy")
	errsCollect  = telemetry.Counter("conc_task_errors_collect_total", "item errors observed under the Collect policy")
	queueWait    = telemetry.Histogram("conc_queue_wait_seconds", "time from ForEach submission to an item being claimed", nil)
	runTime      = telemetry.Histogram("conc_task_run_seconds", "execution time of one ForEach item", nil)
)

// Policy selects how ForEach treats item errors.
type Policy int

const (
	// FailFast stops dispatching new items after the first error and
	// returns that first error alone. Items already in flight finish; their
	// errors, if any, are dropped — the caller asked for the first one.
	FailFast Policy = iota
	// Collect runs every item regardless of failures and returns all item
	// errors joined (errors.Join) in item order, or nil when every item
	// succeeded.
	Collect
)

// String names the policy as accepted by ParsePolicy.
func (p Policy) String() string {
	switch p {
	case FailFast:
		return "failfast"
	case Collect:
		return "collect"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy converts a flag value ("failfast", "collect") into a Policy.
// Matching is case-insensitive and ignores surrounding whitespace so shell
// quoting mishaps ("Collect", " failfast ") still parse; anything else is an
// error naming the accepted values.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "failfast", "":
		return FailFast, nil
	case "collect":
		return Collect, nil
	}
	return FailFast, fmt.Errorf("conc: unknown error policy %q (want failfast or collect)", s)
}

// ForEach runs fn(ctx, i) for every i in [0,n) across at most workers
// goroutines. Work items are claimed from a shared cursor, so uneven item
// costs balance across workers. Any workers value < 1 means GOMAXPROCS, and
// the pool never spawns more goroutines than items.
//
// Cancellation is prompt: once ctx is done, no new items are dispatched and
// ForEach returns an error satisfying errors.Is(err, ctx.Err()) after the
// in-flight items return. Under FailFast a prior item error takes precedence
// over the cancellation error.
func ForEach(ctx context.Context, n, workers int, policy Policy, fn func(context.Context, int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	tasksQueued.Add(int64(n))
	submitted := time.Now()
	var (
		mu      sync.Mutex
		next    int
		stopped bool
		first   error // first item error under FailFast
		errs    []error
	)
	if policy == Collect {
		errs = make([]error, n)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				if next >= n || stopped {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				start := time.Now()
				tasksStarted.Inc()
				queueWait.Observe(start.Sub(submitted).Seconds())
				inflight.Add(1)
				err := fn(ctx, i)
				inflight.Add(-1)
				runTime.ObserveDuration(time.Since(start))
				tasksDone.Inc()
				if err != nil {
					if policy == Collect {
						errsCollect.Inc()
					} else {
						errsFailFast.Inc()
					}
					mu.Lock()
					if policy == Collect {
						errs[i] = err
					} else {
						if first == nil {
							first = err
						}
						stopped = true
					}
					mu.Unlock()
					if policy == FailFast {
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if policy == FailFast {
		if first != nil {
			return first
		}
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		errs = append([]error{err}, errs...)
	}
	return errors.Join(errs...)
}

// Do runs fn(i) for every i in [0,n) across at most workers goroutines — the
// error-free, context-free variant for pure CPU-bound fan-out (the metrics
// engine's per-level sweeps). workers < 1 means GOMAXPROCS; with one worker
// (or one item) the loop runs inline without spawning goroutines.
func Do(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	tasksQueued.Add(int64(n))
	if workers <= 1 {
		for i := 0; i < n; i++ {
			tasksStarted.Inc()
			fn(i)
			tasksDone.Inc()
		}
		return
	}
	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				tasksStarted.Inc()
				fn(i)
				tasksDone.Inc()
			}
		}()
	}
	wg.Wait()
}
