package conc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryItem(t *testing.T) {
	for _, workers := range []int{-3, 0, 1, 4, 100} {
		var n atomic.Int64
		seen := make([]atomic.Bool, 50)
		err := ForEach(context.Background(), 50, workers, FailFast, func(_ context.Context, i int) error {
			n.Add(1)
			seen[i].Store(true)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n.Load() != 50 {
			t.Fatalf("workers=%d: ran %d items, want 50", workers, n.Load())
		}
		for i := range seen {
			if !seen[i].Load() {
				t.Fatalf("workers=%d: item %d never ran", workers, i)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, FailFast, nil); err != nil {
		t.Fatalf("empty ForEach: %v", err)
	}
}

func TestForEachFailFastReturnsFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	var ran atomic.Int64
	err := ForEach(context.Background(), 1000, 4, FailFast, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 5 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	// Fail-fast must stop dispatch well before the end of the range.
	if ran.Load() == 1000 {
		t.Error("fail-fast ran every item")
	}
}

func TestForEachCollectJoinsAllErrors(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	var ran atomic.Int64
	err := ForEach(context.Background(), 100, 8, Collect, func(_ context.Context, i int) error {
		ran.Add(1)
		switch i {
		case 3:
			return errA
		case 97:
			return errB
		}
		return nil
	})
	if ran.Load() != 100 {
		t.Fatalf("Collect ran %d items, want all 100", ran.Load())
	}
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error %v must contain both %v and %v", err, errA, errB)
	}
}

func TestForEachCollectErrorOrderIsItemOrder(t *testing.T) {
	err := ForEach(context.Background(), 20, 8, Collect, func(_ context.Context, i int) error {
		if i%2 == 1 {
			return fmt.Errorf("item %02d", i)
		}
		return nil
	})
	want := ""
	for i := 1; i < 20; i += 2 {
		if want != "" {
			want += "\n"
		}
		want += fmt.Sprintf("item %02d", i)
	}
	if err == nil || err.Error() != want {
		t.Fatalf("joined error out of item order:\ngot:\n%v\nwant:\n%s", err, want)
	}
}

func TestForEachCancellation(t *testing.T) {
	for _, policy := range []Policy{FailFast, Collect} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		done := make(chan error, 1)
		go func() {
			done <- ForEach(ctx, 1_000_000, 4, policy, func(ctx context.Context, i int) error {
				if started.Add(1) == 8 {
					cancel()
				}
				time.Sleep(10 * time.Microsecond)
				return nil
			})
		}()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%v: err = %v, want context.Canceled", policy, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%v: ForEach did not return promptly after cancel", policy)
		}
		if started.Load() > 1000 {
			t.Errorf("%v: %d items dispatched after cancellation", policy, started.Load())
		}
		cancel()
	}
}

func TestForEachFailFastErrorBeatsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sentinel := errors.New("boom")
	err := ForEach(ctx, 100, 2, FailFast, func(_ context.Context, i int) error {
		if i == 0 {
			cancel()
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the item error to win over cancellation", err)
	}
}

func TestDo(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 3, 64} {
		var mu sync.Mutex
		sum := 0
		Do(100, workers, func(i int) {
			mu.Lock()
			sum += i
			mu.Unlock()
		})
		if sum != 4950 {
			t.Fatalf("workers=%d: sum = %d, want 4950", workers, sum)
		}
	}
	Do(0, 4, func(int) { t.Fatal("Do ran an item for n=0") })
}

func TestPolicyString(t *testing.T) {
	if FailFast.String() != "failfast" || Collect.String() != "collect" {
		t.Error("Policy.String mismatch")
	}
	if _, err := ParsePolicy("collect"); err != nil {
		t.Error(err)
	}
	if p, err := ParsePolicy(""); err != nil || p != FailFast {
		t.Errorf("empty policy = %v, %v", p, err)
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus")
	}
	// Case and surrounding whitespace are forgiven; junk inside is not.
	if p, err := ParsePolicy(" Collect "); err != nil || p != Collect {
		t.Errorf("' Collect ' = %v, %v", p, err)
	}
	if p, err := ParsePolicy("FAILFAST"); err != nil || p != FailFast {
		t.Errorf("'FAILFAST' = %v, %v", p, err)
	}
	if _, err := ParsePolicy("fail fast"); err == nil {
		t.Error("ParsePolicy accepted 'fail fast'")
	}
}
