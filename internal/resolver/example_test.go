package resolver_test

import (
	"context"
	"fmt"

	"depscope/internal/dnsmsg"
	"depscope/internal/dnszone"
	"depscope/internal/resolver"
)

// Example shows the measurement primitives against an in-process zone
// store: the same calls work unchanged over the wire by swapping the
// transport for resolver.NewUDPTransport(addr).
func Example() {
	store := dnszone.NewStore()
	z := dnszone.NewZone("example.com.", dnsmsg.SOAData{
		MName: "ns1.dns-provider.net.", RName: "hostmaster.example.com.",
	})
	z.MustAdd(dnsmsg.Record{Name: "example.com.", Type: dnsmsg.TypeNS, TTL: 300, Target: "ns1.dns-provider.net."})
	z.MustAdd(dnsmsg.Record{Name: "www.example.com.", Type: dnsmsg.TypeCNAME, TTL: 300, Target: "edge-1.cdn-provider.net."})
	store.AddZone(z)

	r := resolver.New(resolver.ZoneDirect{Store: store})
	ctx := context.Background()

	ns, _ := r.NS(ctx, "example.com")
	fmt.Println("NS:", ns)
	soa, _, _ := r.SOA(ctx, "example.com")
	fmt.Println("SOA master:", soa.MName)
	chain, _ := r.CNAMEChain(ctx, "www.example.com")
	fmt.Println("CNAME chain:", chain)
	// Output:
	// NS: [ns1.dns-provider.net.]
	// SOA master: ns1.dns-provider.net.
	// CNAME chain: [www.example.com. edge-1.cdn-provider.net.]
}
