package resolver

import (
	"sort"
	"time"

	"depscope/internal/dnsmsg"
)

// CachedLookup is one exported cache entry: a completed lookup with its
// absolute expiry. The type is JSON-serializable so measurement checkpoints
// can persist a warm cache across process restarts.
type CachedLookup struct {
	Name      string          `json:"name"`
	Type      dnsmsg.Type     `json:"type"`
	Expires   time.Time       `json:"expires"`
	RCode     dnsmsg.RCode    `json:"rcode"`
	Answers   []dnsmsg.Record `json:"answers,omitempty"`
	Authority []dnsmsg.Record `json:"authority,omitempty"`
}

// ExportCache snapshots every unexpired cache entry across all shards,
// sorted by (name, type) so the dump is deterministic. In-flight exchanges
// are not included — only completed, cached results.
func (r *Resolver) ExportCache() []CachedLookup {
	now := r.now()
	var out []CachedLookup
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for key, e := range sh.entries {
			if !now.Before(e.expires) {
				continue
			}
			out = append(out, CachedLookup{
				Name:      key.name,
				Type:      key.qtype,
				Expires:   e.expires,
				RCode:     e.res.RCode,
				Answers:   e.res.Answers,
				Authority: e.res.Authority,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// ImportCache seeds the cache with previously exported entries, skipping
// any whose absolute expiry has already passed. It returns the number of
// entries actually installed. Existing entries for the same (name, type)
// are overwritten — the import is intended for a freshly built resolver.
func (r *Resolver) ImportCache(entries []CachedLookup) int {
	now := r.now()
	n := 0
	for _, e := range entries {
		if !now.Before(e.Expires) {
			continue
		}
		key := cacheKey{dnsmsg.CanonicalName(e.Name), e.Type}
		sh := r.shard(key)
		sh.mu.Lock()
		sh.entries[key] = cacheEntry{
			res:     Result{RCode: e.RCode, Answers: e.Answers, Authority: e.Authority},
			expires: e.Expires,
		}
		sh.mu.Unlock()
		n++
	}
	return n
}
