package resolver

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"depscope/internal/dnsmsg"
	"depscope/internal/telemetry"
)

// ErrServFail is returned when the authority answered SERVFAIL or REFUSED.
var ErrServFail = errors.New("resolver: server failure")

// Process-wide telemetry, aggregated across all resolver instances (each
// snapshot run builds its own resolver; the registry sums them).
var (
	telQueries = telemetry.Counter("resolver_queries_total", "DNS lookups issued (all resolver instances)")
	telHits    = telemetry.Counter("resolver_cache_hits_total", "lookups served from the resolver cache")
	telMisses  = telemetry.Counter("resolver_cache_misses_total", "lookups that went to the transport")
)

// lookupHist returns the upstream-latency histogram for one query type,
// pre-registered for the types the pipeline issues so the miss path does a
// map read, not a registry registration.
var lookupHists = map[dnsmsg.Type]*telemetry.HistogramMetric{
	dnsmsg.TypeNS:    newLookupHist("ns"),
	dnsmsg.TypeSOA:   newLookupHist("soa"),
	dnsmsg.TypeA:     newLookupHist("a"),
	dnsmsg.TypeCNAME: newLookupHist("cname"),
}

func newLookupHist(rrtype string) *telemetry.HistogramMetric {
	return telemetry.Histogram("resolver_lookup_"+rrtype+"_seconds",
		"transport exchange latency of cache-missing "+strings.ToUpper(rrtype)+" lookups", nil)
}

func lookupHist(qtype dnsmsg.Type) *telemetry.HistogramMetric {
	if h, ok := lookupHists[qtype]; ok {
		return h
	}
	return telemetry.Histogram("resolver_lookup_other_seconds",
		"transport exchange latency of cache-missing lookups of uncommon types", nil)
}

// Result is the outcome of one cached lookup.
type Result struct {
	RCode     dnsmsg.RCode
	Answers   []dnsmsg.Record
	Authority []dnsmsg.Record
}

// NXDomain reports whether the lookup said the name does not exist.
func (r Result) NXDomain() bool { return r.RCode == dnsmsg.RCodeNameError }

type cacheKey struct {
	name  string
	qtype dnsmsg.Type
}

type cacheEntry struct {
	res     Result
	expires time.Time
}

// Resolver is a caching stub resolver over a Transport.
type Resolver struct {
	transport Transport

	// now is the clock, injectable for cache-expiry tests.
	now func() time.Time
	// negTTL is the cache lifetime of NXDOMAIN/NODATA results; zero
	// disables negative caching.
	negTTL time.Duration
	// maxTTL caps positive cache lifetimes.
	maxTTL time.Duration

	mu    sync.RWMutex
	cache map[cacheKey]cacheEntry

	// Per-instance counters behind Stats, kept off the cache mutex so the
	// accounting is lock-free; the same events also feed the process-wide
	// telemetry registry (resolver_queries_total and friends).
	queries atomic.Int64
	hits    atomic.Int64
}

// Option configures a Resolver.
type Option func(*Resolver)

// WithClock sets the cache clock (for tests).
func WithClock(now func() time.Time) Option {
	return func(r *Resolver) { r.now = now }
}

// WithNegativeTTL sets the negative-cache lifetime.
func WithNegativeTTL(d time.Duration) Option {
	return func(r *Resolver) { r.negTTL = d }
}

// WithMaxTTL caps positive cache lifetimes.
func WithMaxTTL(d time.Duration) Option {
	return func(r *Resolver) { r.maxTTL = d }
}

// New creates a resolver using transport.
func New(transport Transport, opts ...Option) *Resolver {
	r := &Resolver{
		transport: transport,
		now:       time.Now,
		negTTL:    60 * time.Second,
		maxTTL:    time.Hour,
		cache:     make(map[cacheKey]cacheEntry),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Stats is a point-in-time snapshot of the resolver's query counters.
type Stats struct {
	// Queries is the total number of Lookup calls.
	Queries int64
	// Hits is how many of them were served from the cache.
	Hits int64
}

// HitRate is the fraction of lookups served from cache, 0 when idle.
func (s Stats) HitRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Queries)
}

// Stats returns a snapshot of this instance's lookup and cache-hit
// counters. It is the per-run, per-resolver view of the same events the
// process-wide telemetry registry aggregates across instances, and it backs
// the Diagnostics.Resolver field of measurement results.
func (r *Resolver) Stats() Stats {
	return Stats{Queries: r.queries.Load(), Hits: r.hits.Load()}
}

// Lookup queries (name, qtype), serving from cache when possible.
func (r *Resolver) Lookup(ctx context.Context, name string, qtype dnsmsg.Type) (Result, error) {
	key := cacheKey{dnsmsg.CanonicalName(name), qtype}
	now := r.now()

	r.queries.Add(1)
	telQueries.Inc()
	r.mu.RLock()
	e, ok := r.cache[key]
	r.mu.RUnlock()
	if ok && now.Before(e.expires) {
		r.hits.Add(1)
		telHits.Inc()
		return e.res, nil
	}
	telMisses.Inc()

	q := dnsmsg.NewQuery(0, key.name, qtype)
	exchangeStart := time.Now()
	resp, err := r.transport.Exchange(ctx, q)
	lookupHist(qtype).ObserveDuration(time.Since(exchangeStart))
	if err != nil {
		return Result{}, err
	}
	switch resp.Header.RCode {
	case dnsmsg.RCodeSuccess, dnsmsg.RCodeNameError:
	default:
		return Result{RCode: resp.Header.RCode}, fmt.Errorf("%w: %s %s -> %s", ErrServFail, key.name, qtype, resp.Header.RCode)
	}
	res := Result{
		RCode:     resp.Header.RCode,
		Answers:   resp.Answers,
		Authority: resp.Authority,
	}
	r.store(key, res, now)
	return res, nil
}

func (r *Resolver) store(key cacheKey, res Result, now time.Time) {
	ttl := r.negTTL
	if len(res.Answers) > 0 {
		minTTL := time.Duration(res.Answers[0].TTL) * time.Second
		for _, a := range res.Answers[1:] {
			if d := time.Duration(a.TTL) * time.Second; d < minTTL {
				minTTL = d
			}
		}
		if minTTL > r.maxTTL {
			minTTL = r.maxTTL
		}
		ttl = minTTL
	}
	if ttl <= 0 {
		return
	}
	r.mu.Lock()
	r.cache[key] = cacheEntry{res: res, expires: now.Add(ttl)}
	r.mu.Unlock()
}

// FlushCache drops all cached entries.
func (r *Resolver) FlushCache() {
	r.mu.Lock()
	r.cache = make(map[cacheKey]cacheEntry)
	r.mu.Unlock()
}

// NS returns the nameserver host names of domain (the paper's DIG_NS(w)).
// The result is empty (not an error) on NXDOMAIN or NODATA.
func (r *Resolver) NS(ctx context.Context, domain string) ([]string, error) {
	res, err := r.Lookup(ctx, domain, dnsmsg.TypeNS)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, a := range res.Answers {
		if a.Type == dnsmsg.TypeNS {
			out = append(out, a.Target)
		}
	}
	return out, nil
}

// SOA returns the start-of-authority data governing name: the answer SOA if
// present, otherwise the SOA from the authority section (as dig reports for
// NODATA/NXDOMAIN responses). ok is false when no SOA is visible at all.
func (r *Resolver) SOA(ctx context.Context, name string) (dnsmsg.SOAData, bool, error) {
	res, err := r.Lookup(ctx, name, dnsmsg.TypeSOA)
	if err != nil {
		return dnsmsg.SOAData{}, false, err
	}
	for _, a := range res.Answers {
		if a.Type == dnsmsg.TypeSOA && a.SOA != nil {
			return *a.SOA, true, nil
		}
	}
	for _, a := range res.Authority {
		if a.Type == dnsmsg.TypeSOA && a.SOA != nil {
			return *a.SOA, true, nil
		}
	}
	return dnsmsg.SOAData{}, false, nil
}

// Authority returns the zone of authority governing name: the owner name of
// the SOA record visible for it (answer section at a zone apex, authority
// section for NODATA/NXDOMAIN) along with the SOA data. ok is false when no
// SOA is visible.
func (r *Resolver) Authority(ctx context.Context, name string) (origin string, soa dnsmsg.SOAData, ok bool, err error) {
	res, err := r.Lookup(ctx, name, dnsmsg.TypeSOA)
	if err != nil {
		return "", dnsmsg.SOAData{}, false, err
	}
	for _, a := range res.Answers {
		if a.Type == dnsmsg.TypeSOA && a.SOA != nil {
			return dnsmsg.CanonicalName(a.Name), *a.SOA, true, nil
		}
	}
	for _, a := range res.Authority {
		if a.Type == dnsmsg.TypeSOA && a.SOA != nil {
			return dnsmsg.CanonicalName(a.Name), *a.SOA, true, nil
		}
	}
	return "", dnsmsg.SOAData{}, false, nil
}

// CNAME returns the canonical-name target of host, or "" when host has no
// CNAME record (the paper's dig CNAME probe used for CDN detection).
func (r *Resolver) CNAME(ctx context.Context, host string) (string, error) {
	res, err := r.Lookup(ctx, host, dnsmsg.TypeCNAME)
	if err != nil {
		return "", err
	}
	for _, a := range res.Answers {
		if a.Type == dnsmsg.TypeCNAME {
			return a.Target, nil
		}
	}
	return "", nil
}

// CNAMEChain resolves host's full CNAME chain (host first, final target
// last). A host with no CNAME yields just [host].
func (r *Resolver) CNAMEChain(ctx context.Context, host string) ([]string, error) {
	chain := []string{dnsmsg.CanonicalName(host)}
	for i := 0; i < 16; i++ {
		target, err := r.CNAME(ctx, chain[len(chain)-1])
		if err != nil {
			return chain, err
		}
		if target == "" {
			return chain, nil
		}
		target = dnsmsg.CanonicalName(target)
		for _, prev := range chain {
			if prev == target {
				return chain, fmt.Errorf("resolver: CNAME loop at %s", target)
			}
		}
		chain = append(chain, target)
	}
	return chain, fmt.Errorf("resolver: CNAME chain for %s too long", host)
}

// Addrs returns the IPv4 addresses of host, following CNAMEs.
func (r *Resolver) Addrs(ctx context.Context, host string) ([]string, error) {
	res, err := r.Lookup(ctx, host, dnsmsg.TypeA)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, a := range res.Answers {
		if a.Type == dnsmsg.TypeA && len(a.IP) == 4 {
			out = append(out, fmt.Sprintf("%d.%d.%d.%d", a.IP[0], a.IP[1], a.IP[2], a.IP[3]))
		}
	}
	return out, nil
}
