package resolver

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"depscope/internal/dnsmsg"
	"depscope/internal/telemetry"
)

// ErrServFail is returned when the authority answered SERVFAIL or REFUSED.
var ErrServFail = errors.New("resolver: server failure")

// Process-wide telemetry, aggregated across all resolver instances (each
// snapshot run builds its own resolver; the registry sums them).
var (
	telQueries = telemetry.Counter("resolver_queries_total", "DNS lookups issued (all resolver instances)")
	telHits    = telemetry.Counter("resolver_cache_hits_total", "lookups served from the resolver cache")
	telMisses  = telemetry.Counter("resolver_cache_misses_total", "lookups that went to the transport")
	telDeduped = telemetry.Counter("resolver_singleflight_dedup_total",
		"lookups that joined an already in-flight transport exchange for the same (name, type)")
	telShards = telemetry.Gauge("resolver_cache_shards",
		"cache shard count of the most recently constructed resolver")
)

// lookupHist returns the upstream-latency histogram for one query type,
// pre-registered for the types the pipeline issues so the miss path does a
// map read, not a registry registration.
var lookupHists = map[dnsmsg.Type]*telemetry.HistogramMetric{
	dnsmsg.TypeNS:    newLookupHist("ns"),
	dnsmsg.TypeSOA:   newLookupHist("soa"),
	dnsmsg.TypeA:     newLookupHist("a"),
	dnsmsg.TypeCNAME: newLookupHist("cname"),
}

func newLookupHist(rrtype string) *telemetry.HistogramMetric {
	return telemetry.Histogram("resolver_lookup_"+rrtype+"_seconds",
		"transport exchange latency of cache-missing "+strings.ToUpper(rrtype)+" lookups", nil)
}

func lookupHist(qtype dnsmsg.Type) *telemetry.HistogramMetric {
	if h, ok := lookupHists[qtype]; ok {
		return h
	}
	return telemetry.Histogram("resolver_lookup_other_seconds",
		"transport exchange latency of cache-missing lookups of uncommon types", nil)
}

// Result is the outcome of one cached lookup.
type Result struct {
	RCode     dnsmsg.RCode
	Answers   []dnsmsg.Record
	Authority []dnsmsg.Record
}

// NXDomain reports whether the lookup said the name does not exist.
func (r Result) NXDomain() bool { return r.RCode == dnsmsg.RCodeNameError }

type cacheKey struct {
	name  string
	qtype dnsmsg.Type
}

type cacheEntry struct {
	res     Result
	expires time.Time
}

// flight is one in-progress transport exchange. The done channel is created
// lazily, under the shard lock, by the first waiter that joins the flight —
// the uncontended miss (the overwhelmingly common case) never pays for it.
// res/err are written exactly once before done is closed.
//
// Flights are recycled through flightPool: refs counts the leader plus every
// joined waiter, and whoever drops it to zero clears and repools the struct.
// Waiters join (and increment refs) only under the shard lock while the
// flight is still in the table, so the count can never hit zero early.
type flight struct {
	done chan struct{}
	refs atomic.Int32
	res  Result
	err  error
}

var flightPool = sync.Pool{New: func() any { return new(flight) }}

// release drops one reference; the last holder resets and repools the
// flight. Callers must not touch the flight after releasing it.
func (f *flight) release() {
	if f.refs.Add(-1) == 0 {
		*f = flight{}
		flightPool.Put(f)
	}
}

// cacheShard is one lock domain of the sharded cache: the TTL entries plus
// the singleflight table for keys currently being fetched.
type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]cacheEntry
	flights map[cacheKey]*flight
}

// defaultShards is the default cache shard count, sized so the unified
// pipeline's worker pool (bounded by GOMAXPROCS) rarely collides on a lock.
const defaultShards = 64

// fnv1a hashes s with FNV-1a, the same cheap inline hash the interner uses.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Resolver is a caching stub resolver over a Transport. The cache is sharded
// (power-of-two shard count, FNV-hashed keys) so concurrent workers do not
// serialize on one lock, and misses are deduplicated through a singleflight
// table: concurrent lookups for the same (name, type) issue exactly one
// transport exchange.
type Resolver struct {
	transport Transport

	// now is the clock, injectable for cache-expiry tests.
	now func() time.Time
	// negTTL is the cache lifetime of NXDOMAIN/NODATA results; zero
	// disables negative caching.
	negTTL time.Duration
	// maxTTL caps positive cache lifetimes.
	maxTTL time.Duration

	// shards has power-of-two length; shardMask == len(shards)-1.
	shards    []cacheShard
	shardMask uint64

	// Per-instance counters behind Stats, kept off the cache mutexes so the
	// accounting is lock-free; the same events also feed the process-wide
	// telemetry registry (resolver_queries_total and friends).
	queries atomic.Int64
	hits    atomic.Int64
	deduped atomic.Int64
}

func (r *Resolver) shard(key cacheKey) *cacheShard {
	h := fnv1a(key.name) ^ uint64(key.qtype)*0x9E3779B97F4A7C15
	return &r.shards[h&r.shardMask]
}

// Option configures a Resolver.
type Option func(*Resolver)

// WithClock sets the cache clock (for tests).
func WithClock(now func() time.Time) Option {
	return func(r *Resolver) { r.now = now }
}

// WithNegativeTTL sets the negative-cache lifetime.
func WithNegativeTTL(d time.Duration) Option {
	return func(r *Resolver) { r.negTTL = d }
}

// WithMaxTTL caps positive cache lifetimes.
func WithMaxTTL(d time.Duration) Option {
	return func(r *Resolver) { r.maxTTL = d }
}

// WithShards sets the cache shard count, rounded up to the next power of
// two; values below one select a single shard.
func WithShards(n int) Option {
	return func(r *Resolver) {
		p := 1
		for p < n {
			p <<= 1
		}
		r.shards = make([]cacheShard, p)
	}
}

// New creates a resolver using transport.
func New(transport Transport, opts ...Option) *Resolver {
	r := &Resolver{
		transport: transport,
		now:       time.Now,
		negTTL:    60 * time.Second,
		maxTTL:    time.Hour,
	}
	for _, o := range opts {
		o(r)
	}
	if r.shards == nil {
		r.shards = make([]cacheShard, defaultShards)
	}
	r.shardMask = uint64(len(r.shards) - 1)
	for i := range r.shards {
		r.shards[i].entries = make(map[cacheKey]cacheEntry)
		r.shards[i].flights = make(map[cacheKey]*flight)
	}
	telShards.Set(int64(len(r.shards)))
	return r
}

// Shards returns the cache shard count (always a power of two).
func (r *Resolver) Shards() int { return len(r.shards) }

// Stats is a point-in-time snapshot of the resolver's query counters.
type Stats struct {
	// Queries is the total number of Lookup calls.
	Queries int64
	// Hits is how many of them were served from the cache (including
	// lookups resolved by joining another caller's in-flight exchange).
	Hits int64
	// Deduped is how many lookups joined an exchange already in flight for
	// the same (name, type) instead of issuing their own — the singleflight
	// suppression count. Every deduplicated lookup that succeeds is also a
	// Hit, so Queries - Hits remains the number of transport exchanges.
	Deduped int64
}

// HitRate is the fraction of lookups served from cache, 0 when idle.
func (s Stats) HitRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Queries)
}

// Stats returns a snapshot of this instance's lookup and cache-hit
// counters. It is the per-run, per-resolver view of the same events the
// process-wide telemetry registry aggregates across instances, and it backs
// the Diagnostics.Resolver field of measurement results.
func (r *Resolver) Stats() Stats {
	return Stats{Queries: r.queries.Load(), Hits: r.hits.Load(), Deduped: r.deduped.Load()}
}

// queryPool recycles query messages for the miss path. Safe because neither
// transport retains the query: UDPTransport packs a private copy and
// ZoneDirect's Reply copies the question section.
var queryPool = sync.Pool{New: func() any {
	return &dnsmsg.Message{Questions: make([]dnsmsg.Question, 1)}
}}

// Lookup queries (name, qtype), serving from cache when possible. A miss
// for a (name, type) that another goroutine is already fetching joins that
// exchange instead of issuing its own (counted in Stats.Deduped and
// resolver_singleflight_dedup_total).
func (r *Resolver) Lookup(ctx context.Context, name string, qtype dnsmsg.Type) (Result, error) {
	key := cacheKey{dnsmsg.CanonicalName(name), qtype}
	now := r.now()

	r.queries.Add(1)
	telQueries.Inc()
	sh := r.shard(key)
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok && now.Before(e.expires) {
		sh.mu.Unlock()
		r.hits.Add(1)
		telHits.Inc()
		return e.res, nil
	}
	if f, ok := sh.flights[key]; ok {
		if f.done == nil {
			f.done = make(chan struct{})
		}
		done := f.done
		f.refs.Add(1)
		sh.mu.Unlock()
		r.deduped.Add(1)
		telDeduped.Inc()
		select {
		case <-done:
		case <-ctx.Done():
			f.release()
			return Result{}, ctx.Err()
		}
		res, err := f.res, f.err
		f.release()
		if err != nil {
			return Result{}, err
		}
		r.hits.Add(1)
		telHits.Inc()
		return res, nil
	}
	f := flightPool.Get().(*flight)
	f.refs.Store(1)
	sh.flights[key] = f
	sh.mu.Unlock()
	telMisses.Inc()

	res, err := r.exchange(ctx, key, now)
	f.res, f.err = res, err
	sh.mu.Lock()
	delete(sh.flights, key)
	done := f.done
	sh.mu.Unlock()
	if done != nil {
		// Waiters read res/err only after the close, which orders the writes
		// above ahead of their reads.
		close(done)
	}
	f.release()
	return res, err
}

// exchange performs the transport round trip for key and caches the result.
func (r *Resolver) exchange(ctx context.Context, key cacheKey, now time.Time) (Result, error) {
	q := queryPool.Get().(*dnsmsg.Message)
	q.Header = dnsmsg.Header{RecursionDesired: true}
	q.Questions = q.Questions[:1]
	q.Questions[0] = dnsmsg.Question{Name: key.name, Type: key.qtype, Class: dnsmsg.ClassIN}
	q.Answers, q.Authority, q.Additional = nil, nil, nil
	exchangeStart := time.Now()
	resp, err := r.transport.Exchange(ctx, q)
	lookupHist(key.qtype).ObserveDuration(time.Since(exchangeStart))
	queryPool.Put(q)
	if err != nil {
		return Result{}, err
	}
	rcode := resp.Header.RCode
	switch rcode {
	case dnsmsg.RCodeSuccess, dnsmsg.RCodeNameError:
	default:
		releaseResponse(resp)
		return Result{RCode: rcode}, fmt.Errorf("%w: %s %s -> %s", ErrServFail, key.name, key.qtype, rcode)
	}
	res := Result{
		RCode:     rcode,
		Answers:   resp.Answers,
		Authority: resp.Authority,
	}
	// Only the record slices are retained; the message wrapper goes back to
	// the transport pool.
	releaseResponse(resp)
	r.store(key, res, now)
	return res, nil
}

func (r *Resolver) store(key cacheKey, res Result, now time.Time) {
	ttl := r.negTTL
	if len(res.Answers) > 0 {
		minTTL := time.Duration(res.Answers[0].TTL) * time.Second
		for _, a := range res.Answers[1:] {
			if d := time.Duration(a.TTL) * time.Second; d < minTTL {
				minTTL = d
			}
		}
		if minTTL > r.maxTTL {
			minTTL = r.maxTTL
		}
		ttl = minTTL
	}
	if ttl <= 0 {
		return
	}
	sh := r.shard(key)
	sh.mu.Lock()
	sh.entries[key] = cacheEntry{res: res, expires: now.Add(ttl)}
	sh.mu.Unlock()
}

// FlushCache drops all cached entries (in-flight exchanges are unaffected).
func (r *Resolver) FlushCache() {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[cacheKey]cacheEntry)
		sh.mu.Unlock()
	}
}

// NS returns the nameserver host names of domain (the paper's DIG_NS(w)).
// The result is empty (not an error) on NXDOMAIN or NODATA.
func (r *Resolver) NS(ctx context.Context, domain string) ([]string, error) {
	res, err := r.Lookup(ctx, domain, dnsmsg.TypeNS)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, a := range res.Answers {
		if a.Type == dnsmsg.TypeNS {
			out = append(out, a.Target)
		}
	}
	return out, nil
}

// SOA returns the start-of-authority data governing name: the answer SOA if
// present, otherwise the SOA from the authority section (as dig reports for
// NODATA/NXDOMAIN responses). ok is false when no SOA is visible at all.
func (r *Resolver) SOA(ctx context.Context, name string) (dnsmsg.SOAData, bool, error) {
	res, err := r.Lookup(ctx, name, dnsmsg.TypeSOA)
	if err != nil {
		return dnsmsg.SOAData{}, false, err
	}
	for _, a := range res.Answers {
		if a.Type == dnsmsg.TypeSOA && a.SOA != nil {
			return *a.SOA, true, nil
		}
	}
	for _, a := range res.Authority {
		if a.Type == dnsmsg.TypeSOA && a.SOA != nil {
			return *a.SOA, true, nil
		}
	}
	return dnsmsg.SOAData{}, false, nil
}

// Authority returns the zone of authority governing name: the owner name of
// the SOA record visible for it (answer section at a zone apex, authority
// section for NODATA/NXDOMAIN) along with the SOA data. ok is false when no
// SOA is visible.
func (r *Resolver) Authority(ctx context.Context, name string) (origin string, soa dnsmsg.SOAData, ok bool, err error) {
	res, err := r.Lookup(ctx, name, dnsmsg.TypeSOA)
	if err != nil {
		return "", dnsmsg.SOAData{}, false, err
	}
	for _, a := range res.Answers {
		if a.Type == dnsmsg.TypeSOA && a.SOA != nil {
			return dnsmsg.CanonicalName(a.Name), *a.SOA, true, nil
		}
	}
	for _, a := range res.Authority {
		if a.Type == dnsmsg.TypeSOA && a.SOA != nil {
			return dnsmsg.CanonicalName(a.Name), *a.SOA, true, nil
		}
	}
	return "", dnsmsg.SOAData{}, false, nil
}

// CNAME returns the canonical-name target of host, or "" when host has no
// CNAME record (the paper's dig CNAME probe used for CDN detection).
func (r *Resolver) CNAME(ctx context.Context, host string) (string, error) {
	res, err := r.Lookup(ctx, host, dnsmsg.TypeCNAME)
	if err != nil {
		return "", err
	}
	for _, a := range res.Answers {
		if a.Type == dnsmsg.TypeCNAME {
			return a.Target, nil
		}
	}
	return "", nil
}

// CNAMEChain resolves host's full CNAME chain (host first, final target
// last). A host with no CNAME yields just [host].
func (r *Resolver) CNAMEChain(ctx context.Context, host string) ([]string, error) {
	chain := make([]string, 1, 4) // most chains are 1-3 hops; avoid regrowth
	chain[0] = dnsmsg.CanonicalName(host)
	for i := 0; i < 16; i++ {
		target, err := r.CNAME(ctx, chain[len(chain)-1])
		if err != nil {
			return chain, err
		}
		if target == "" {
			return chain, nil
		}
		target = dnsmsg.CanonicalName(target)
		for _, prev := range chain {
			if prev == target {
				return chain, fmt.Errorf("resolver: CNAME loop at %s", target)
			}
		}
		chain = append(chain, target)
	}
	return chain, fmt.Errorf("resolver: CNAME chain for %s too long", host)
}

// Addrs returns the IPv4 addresses of host, following CNAMEs.
func (r *Resolver) Addrs(ctx context.Context, host string) ([]string, error) {
	res, err := r.Lookup(ctx, host, dnsmsg.TypeA)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, a := range res.Answers {
		if a.Type == dnsmsg.TypeA && len(a.IP) == 4 {
			out = append(out, fmt.Sprintf("%d.%d.%d.%d", a.IP[0], a.IP[1], a.IP[2], a.IP[3]))
		}
	}
	return out, nil
}
