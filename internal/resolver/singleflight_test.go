package resolver

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"depscope/internal/dnsmsg"
)

// countingTransport wraps a Transport, counting exchanges and optionally
// blocking them until release is closed.
type countingTransport struct {
	inner   Transport
	calls   atomic.Int64
	release chan struct{} // nil means never block
}

func (t *countingTransport) Exchange(ctx context.Context, q *dnsmsg.Message) (*dnsmsg.Message, error) {
	t.calls.Add(1)
	if t.release != nil {
		select {
		case <-t.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return t.inner.Exchange(ctx, q)
}

// TestNegativeCacheExpiry pins the regression the negative cache is prone
// to: an NXDOMAIN entry older than negTTL must be re-queried, not served
// stale forever.
func TestNegativeCacheExpiry(t *testing.T) {
	clock := time.Unix(1_600_000_000, 0)
	tr := &countingTransport{inner: ZoneDirect{testStore()}}
	r := New(tr,
		WithClock(func() time.Time { return clock }),
		WithNegativeTTL(30*time.Second))
	ctx := context.Background()

	lookup := func() {
		t.Helper()
		res, err := r.Lookup(ctx, "gone.twitter.test", dnsmsg.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if !res.NXDomain() {
			t.Fatal("expected NXDOMAIN")
		}
	}

	lookup()
	clock = clock.Add(29 * time.Second)
	lookup() // still inside negTTL: served from cache
	if got := tr.calls.Load(); got != 1 {
		t.Fatalf("transport calls inside negTTL = %d, want 1", got)
	}
	clock = clock.Add(2 * time.Second) // 31s after the original answer
	lookup()
	if got := tr.calls.Load(); got != 2 {
		t.Fatalf("expired negative entry was not re-queried: %d transport calls, want 2", got)
	}
	if s := r.Stats(); s.Queries != 3 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want Queries 3 / Hits 1", s)
	}
}

// TestSingleflightOneKey64Goroutines hammers one (name, type) from 64
// goroutines while the transport is held open, proving the singleflight
// layer collapses them onto a single exchange: Queries - Hits == 1.
// Run under -race in make verify.
func TestSingleflightOneKey64Goroutines(t *testing.T) {
	const goroutines = 64
	tr := &countingTransport{
		inner:   ZoneDirect{testStore()},
		release: make(chan struct{}),
	}
	r := New(tr)
	ctx := context.Background()

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.Lookup(ctx, "twitter.test.", dnsmsg.TypeNS)
			if err != nil {
				t.Errorf("lookup: %v", err)
				return
			}
			if len(res.Answers) != 2 {
				t.Errorf("got %d answers, want 2", len(res.Answers))
			}
		}()
	}

	// The transport is gated, so the leader's flight stays registered until
	// every other goroutine has joined it; wait for all 63 waiters before
	// letting the exchange finish.
	deadline := time.Now().Add(10 * time.Second)
	for r.Stats().Deduped < goroutines-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d lookups joined the flight", r.Stats().Deduped)
		}
		time.Sleep(time.Millisecond)
	}
	close(tr.release)
	wg.Wait()

	if got := tr.calls.Load(); got != 1 {
		t.Fatalf("transport exchanges = %d, want 1", got)
	}
	s := r.Stats()
	if s.Queries != goroutines {
		t.Fatalf("Queries = %d, want %d", s.Queries, goroutines)
	}
	if s.Queries-s.Hits != 1 {
		t.Fatalf("Queries - Hits = %d, want 1 (stats %+v)", s.Queries-s.Hits, s)
	}
	if s.Deduped != goroutines-1 {
		t.Fatalf("Deduped = %d, want %d", s.Deduped, goroutines-1)
	}
}

// TestSingleflightErrorNotCached proves a failed exchange is handed to its
// waiters but not cached: the next lookup tries the transport again.
func TestSingleflightErrorNotCached(t *testing.T) {
	tr := &countingTransport{inner: ZoneDirect{testStore()}}
	r := New(tr)
	ctx := context.Background()
	// outside.example is outside the store's authority -> SERVFAIL error.
	if _, err := r.Lookup(ctx, "outside.example.", dnsmsg.TypeA); err == nil {
		t.Fatal("expected SERVFAIL error")
	}
	if _, err := r.Lookup(ctx, "outside.example.", dnsmsg.TypeA); err == nil {
		t.Fatal("expected SERVFAIL error on retry")
	}
	if got := tr.calls.Load(); got != 2 {
		t.Fatalf("transport calls = %d, want 2 (errors must not be cached)", got)
	}
}

// TestCacheHitAllocs guards the resolver's hot path: a cache hit for an
// already-canonical name must cost at most one allocation.
func TestCacheHitAllocs(t *testing.T) {
	r := New(ZoneDirect{testStore()})
	ctx := context.Background()
	if _, err := r.Lookup(ctx, "twitter.test.", dnsmsg.TypeNS); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := r.Lookup(ctx, "twitter.test.", dnsmsg.TypeNS); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("cache-hit path allocates %.1f per lookup, want <= 1", allocs)
	}
}

func TestWithShardsRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {3, 4}, {4, 4}, {64, 64}, {100, 128},
	}
	for _, c := range cases {
		r := New(ZoneDirect{testStore()}, WithShards(c.in))
		if got := r.Shards(); got != c.want {
			t.Errorf("WithShards(%d) -> %d shards, want %d", c.in, got, c.want)
		}
	}
	if got := New(ZoneDirect{testStore()}).Shards(); got != 64 {
		t.Errorf("default shards = %d, want 64", got)
	}
	// A single-shard resolver must still behave correctly.
	r := New(ZoneDirect{testStore()}, WithShards(1))
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := r.NS(ctx, "twitter.test"); err != nil {
			t.Fatal(err)
		}
	}
	if s := r.Stats(); s.Queries != 2 || s.Hits != 1 {
		t.Fatalf("single-shard stats = %+v", s)
	}
}
