// Package resolver implements a DNS stub resolver over pluggable
// transports, with a TTL cache and the high-level lookups the measurement
// pipeline needs (NS sets, SOA of authority, CNAME chains, addresses).
//
// Two transports are provided. UDPTransport speaks the real protocol against
// a server address (with retry and RFC 1035 TCP fallback on truncation);
// ZoneDirect consults a dnszone.Store in-process with identical semantics,
// which keeps the 100K-site bulk pipeline fast. Tests cross-check that the
// two paths return the same results.
//
// Observability: every resolver instance keeps its own Stats (queries,
// cache hits — the per-run numbers surfaced in measure.Results.Diagnostics)
// on a lock-free atomic path, and simultaneously feeds the process-wide
// telemetry registry: resolver_queries_total, resolver_cache_hits_total,
// resolver_cache_misses_total, and a per-rrtype upstream-latency histogram
// (resolver_lookup_ns_seconds etc., recorded only on cache misses, where a
// transport exchange actually happens). See docs/observability.md for the
// full catalog.
package resolver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"depscope/internal/dnsmsg"
	"depscope/internal/dnszone"
)

// Transport sends one DNS query and returns the response message.
type Transport interface {
	Exchange(ctx context.Context, query *dnsmsg.Message) (*dnsmsg.Message, error)
}

// Transport errors.
var (
	ErrIDMismatch = errors.New("resolver: response ID does not match query")
	ErrNotResp    = errors.New("resolver: message is not a response")
)

// UDPTransport exchanges messages with a DNS server over UDP, retrying on
// timeout and falling back to TCP when the response is truncated.
type UDPTransport struct {
	// Addr is the server address, host:port.
	Addr string
	// Timeout bounds each network attempt; zero means 2s.
	Timeout time.Duration
	// Retries is the number of additional UDP attempts; zero means 2.
	Retries int
	// AdvertiseUDPSize is the EDNS(0) payload size offered in queries;
	// zero disables EDNS entirely (classic 512-byte behaviour).
	AdvertiseUDPSize uint16

	mu  sync.Mutex
	rng *rand.Rand
}

// NewUDPTransport returns a transport for the server at addr, advertising a
// 4096-byte EDNS(0) payload.
func NewUDPTransport(addr string) *UDPTransport {
	return &UDPTransport{
		Addr:             addr,
		Timeout:          2 * time.Second,
		Retries:          2,
		AdvertiseUDPSize: 4096,
		rng:              rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

func (t *UDPTransport) id() uint16 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rng == nil {
		t.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return uint16(t.rng.Intn(1 << 16))
}

// Exchange implements Transport. The query's ID is overwritten with a random
// transaction ID; responses with mismatched IDs are rejected.
func (t *UDPTransport) Exchange(ctx context.Context, query *dnsmsg.Message) (*dnsmsg.Message, error) {
	q := *query
	q.Header.ID = t.id()
	if t.AdvertiseUDPSize > 0 {
		q.Additional = append([]dnsmsg.Record(nil), q.Additional...)
		q.SetEDNS0(t.AdvertiseUDPSize)
	}
	bufp := dnsmsg.GetPacketBuf()
	wire, err := q.AppendPack((*bufp)[:0])
	if err != nil {
		dnsmsg.PutPacketBuf(bufp)
		return nil, err
	}
	// The response never aliases the query wire, so the buffer can be
	// recycled as soon as the exchange (including retries) is over.
	defer func() {
		*bufp = wire[:0]
		dnsmsg.PutPacketBuf(bufp)
	}()
	timeout := t.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	attempts := t.Retries + 1
	var lastErr error
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := t.udpOnce(ctx, wire, q.Header.ID, timeout)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Header.Truncated {
			return t.tcpOnce(ctx, wire, q.Header.ID, timeout)
		}
		return resp, nil
	}
	return nil, fmt.Errorf("resolver: udp exchange with %s failed after %d attempts: %w", t.Addr, attempts, lastErr)
}

func (t *UDPTransport) udpOnce(ctx context.Context, wire []byte, id uint16, timeout time.Duration) (*dnsmsg.Message, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "udp", t.Addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		resp, err := dnsmsg.Unpack(buf[:n])
		if err != nil {
			continue // garbled datagram; keep waiting until deadline
		}
		if resp.Header.ID != id {
			continue // stale or spoofed; ignore
		}
		if !resp.Header.Response {
			return nil, ErrNotResp
		}
		return resp, nil
	}
}

func (t *UDPTransport) tcpOnce(ctx context.Context, wire []byte, id uint16, timeout time.Duration) (*dnsmsg.Message, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", t.Addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	frame := make([]byte, 2+len(wire))
	frame[0], frame[1] = byte(len(wire)>>8), byte(len(wire))
	copy(frame[2:], wire)
	if _, err := conn.Write(frame); err != nil {
		return nil, err
	}
	var lenBuf [2]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int(lenBuf[0])<<8 | int(lenBuf[1])
	buf := make([]byte, n)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return nil, err
	}
	resp, err := dnsmsg.Unpack(buf)
	if err != nil {
		return nil, err
	}
	if resp.Header.ID != id {
		return nil, ErrIDMismatch
	}
	return resp, nil
}

// ZoneDirect is a Transport that answers from a dnszone.Store in-process.
// It produces byte-identical message semantics to a dnsserver fronting the
// same store, without sockets.
type ZoneDirect struct {
	Store *dnszone.Store
}

// respPool recycles response message wrappers between ZoneDirect exchanges.
// The resolver extracts the answer/authority record slices into its cache
// and releases the wrapper (cleared, so no records are retained) back here.
var respPool = sync.Pool{New: func() any { return new(dnsmsg.Message) }}

// releaseResponse recycles a response wrapper once its record slices have
// been extracted. Safe for any transport's messages: only the wrapper is
// pooled, and it is cleared before reuse.
func releaseResponse(m *dnsmsg.Message) {
	*m = dnsmsg.Message{}
	respPool.Put(m)
}

// Exchange implements Transport.
func (z ZoneDirect) Exchange(_ context.Context, query *dnsmsg.Message) (*dnsmsg.Message, error) {
	resp := respPool.Get().(*dnsmsg.Message)
	z.Store.AnswerInto(query, resp)
	return resp, nil
}

// AXFR performs a zone transfer (RFC 5936) for zone from the server at
// addr over TCP, returning all records including the bracketing SOAs. The
// transfer ends when the closing SOA arrives.
func AXFR(ctx context.Context, addr, zone string) ([]dnsmsg.Record, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("resolver: axfr dial %s: %w", addr, err)
	}
	defer conn.Close()
	deadline := time.Now().Add(30 * time.Second)
	if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
		deadline = ctxDeadline
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}

	q := dnsmsg.NewQuery(uint16(time.Now().UnixNano()), zone, dnsmsg.TypeAXFR)
	q.Header.RecursionDesired = false
	wire, err := q.Pack()
	if err != nil {
		return nil, err
	}
	frame := make([]byte, 2+len(wire))
	frame[0], frame[1] = byte(len(wire)>>8), byte(len(wire))
	copy(frame[2:], wire)
	if _, err := conn.Write(frame); err != nil {
		return nil, err
	}

	var records []dnsmsg.Record
	soaSeen := 0
	for soaSeen < 2 {
		var lenBuf [2]byte
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("resolver: axfr read: %w", err)
		}
		n := int(lenBuf[0])<<8 | int(lenBuf[1])
		buf := make([]byte, n)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return nil, fmt.Errorf("resolver: axfr read body: %w", err)
		}
		resp, err := dnsmsg.Unpack(buf)
		if err != nil {
			return nil, err
		}
		if resp.Header.RCode != dnsmsg.RCodeSuccess {
			return nil, fmt.Errorf("resolver: axfr %s: %s", zone, resp.Header.RCode)
		}
		if resp.Header.ID != q.Header.ID {
			return nil, ErrIDMismatch
		}
		for _, r := range resp.Answers {
			records = append(records, r)
			if r.Type == dnsmsg.TypeSOA {
				soaSeen++
				if soaSeen == 2 {
					break
				}
			}
		}
		if len(resp.Answers) == 0 {
			return nil, fmt.Errorf("resolver: axfr %s: empty message before closing SOA", zone)
		}
	}
	return records, nil
}
