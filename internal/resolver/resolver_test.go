package resolver

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"depscope/internal/dnsmsg"
	"depscope/internal/dnsserver"
	"depscope/internal/dnszone"
)

func testStore() *dnszone.Store {
	s := dnszone.NewStore()

	site := dnszone.NewZone("twitter.test.", dnsmsg.SOAData{
		MName: "ns1.dyn.test.", RName: "hostmaster.twitter.test.", Serial: 2016,
	})
	site.MustAdd(dnsmsg.Record{Name: "twitter.test.", Type: dnsmsg.TypeNS, TTL: 300, Target: "ns1.dyn.test."})
	site.MustAdd(dnsmsg.Record{Name: "twitter.test.", Type: dnsmsg.TypeNS, TTL: 300, Target: "ns2.dyn.test."})
	site.MustAdd(dnsmsg.Record{Name: "twitter.test.", Type: dnsmsg.TypeA, TTL: 300, IP: []byte{104, 244, 42, 1}})
	site.MustAdd(dnsmsg.Record{Name: "www.twitter.test.", Type: dnsmsg.TypeCNAME, TTL: 300, Target: "edge.fastcdn.test."})
	s.AddZone(site)

	dyn := dnszone.NewZone("dyn.test.", dnsmsg.SOAData{
		MName: "ns1.dyn.test.", RName: "ops.dyn.test.", Serial: 1,
	})
	dyn.MustAdd(dnsmsg.Record{Name: "ns1.dyn.test.", Type: dnsmsg.TypeA, TTL: 300, IP: []byte{203, 0, 113, 1}})
	s.AddZone(dyn)

	cdn := dnszone.NewZone("fastcdn.test.", dnsmsg.SOAData{
		MName: "ns1.fastcdn.test.", RName: "ops.fastcdn.test.", Serial: 1,
	})
	cdn.MustAdd(dnsmsg.Record{Name: "edge.fastcdn.test.", Type: dnsmsg.TypeCNAME, TTL: 60, Target: "pop.fastcdn.test."})
	cdn.MustAdd(dnsmsg.Record{Name: "pop.fastcdn.test.", Type: dnsmsg.TypeA, TTL: 60, IP: []byte{198, 51, 100, 2}})
	s.AddZone(cdn)
	return s
}

func TestNSLookup(t *testing.T) {
	r := New(ZoneDirect{testStore()})
	ns, err := r.NS(context.Background(), "twitter.test")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ns1.dyn.test.", "ns2.dyn.test."}
	if !reflect.DeepEqual(ns, want) {
		t.Errorf("NS = %v, want %v", ns, want)
	}
}

func TestSOAFromAnswerAndAuthority(t *testing.T) {
	r := New(ZoneDirect{testStore()})
	ctx := context.Background()

	// Apex: SOA in the answer section.
	soa, ok, err := r.SOA(ctx, "twitter.test")
	if err != nil || !ok {
		t.Fatalf("apex SOA: ok=%v err=%v", ok, err)
	}
	if soa.MName != "ns1.dyn.test." {
		t.Errorf("apex SOA MName = %q", soa.MName)
	}

	// Host below apex: NODATA, SOA comes from the authority section — this
	// is how the paper's pipeline learns the authority of a nameserver host.
	soa, ok, err = r.SOA(ctx, "ns1.dyn.test")
	if err != nil || !ok {
		t.Fatalf("host SOA: ok=%v err=%v", ok, err)
	}
	if soa.RName != "ops.dyn.test." {
		t.Errorf("host SOA RName = %q", soa.RName)
	}

	// NXDOMAIN name still yields the governing zone's SOA.
	soa, ok, err = r.SOA(ctx, "nothere.dyn.test")
	if err != nil || !ok {
		t.Fatalf("nxdomain SOA: ok=%v err=%v", ok, err)
	}
	if soa.MName != "ns1.dyn.test." {
		t.Errorf("nxdomain SOA MName = %q", soa.MName)
	}

	// Entirely outside authority: SERVFAIL path -> error.
	if _, _, err := r.SOA(ctx, "outside.example"); err == nil {
		t.Error("SOA outside authority should error")
	}
}

func TestCNAMEChain(t *testing.T) {
	r := New(ZoneDirect{testStore()})
	chain, err := r.CNAMEChain(context.Background(), "www.twitter.test")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"www.twitter.test.", "edge.fastcdn.test.", "pop.fastcdn.test."}
	if !reflect.DeepEqual(chain, want) {
		t.Errorf("chain = %v, want %v", chain, want)
	}
}

func TestCNAMEChainLoopDetected(t *testing.T) {
	s := dnszone.NewStore()
	z := dnszone.NewZone("loop.test.", dnsmsg.SOAData{MName: "ns.loop.test.", RName: "ops.loop.test."})
	z.MustAdd(dnsmsg.Record{Name: "a.loop.test.", Type: dnsmsg.TypeCNAME, TTL: 1, Target: "b.loop.test."})
	z.MustAdd(dnsmsg.Record{Name: "b.loop.test.", Type: dnsmsg.TypeCNAME, TTL: 1, Target: "a.loop.test."})
	s.AddZone(z)
	r := New(ZoneDirect{s})
	if _, err := r.CNAMEChain(context.Background(), "a.loop.test"); err == nil {
		t.Error("CNAME loop not detected")
	}
}

func TestAddrsFollowsCNAME(t *testing.T) {
	r := New(ZoneDirect{testStore()})
	addrs, err := r.Addrs(context.Background(), "www.twitter.test")
	if err != nil {
		t.Fatal(err)
	}
	if len(addrs) != 1 || addrs[0] != "198.51.100.2" {
		t.Errorf("addrs = %v", addrs)
	}
}

func TestCacheHitAndExpiry(t *testing.T) {
	clock := time.Unix(1_600_000_000, 0)
	r := New(ZoneDirect{testStore()}, WithClock(func() time.Time { return clock }))
	ctx := context.Background()

	if _, err := r.NS(ctx, "twitter.test"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.NS(ctx, "twitter.test"); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Queries != 2 || s.Hits != 1 {
		t.Fatalf("stats after repeat: %+v", s)
	}
	if rate := r.Stats().HitRate(); rate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", rate)
	}

	// Advance past the 300s record TTL: next lookup misses.
	clock = clock.Add(301 * time.Second)
	if _, err := r.NS(ctx, "twitter.test"); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Queries != 3 || s.Hits != 1 {
		t.Fatalf("stats after expiry: %+v", s)
	}
}

func TestNegativeCache(t *testing.T) {
	clock := time.Unix(1_600_000_000, 0)
	r := New(ZoneDirect{testStore()},
		WithClock(func() time.Time { return clock }),
		WithNegativeTTL(30*time.Second))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		res, err := r.Lookup(ctx, "gone.twitter.test", dnsmsg.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if !res.NXDomain() {
			t.Fatal("expected NXDOMAIN")
		}
	}
	if s := r.Stats(); s.Hits != 2 {
		t.Fatalf("negative cache: %+v", s)
	}
}

func TestFlushCache(t *testing.T) {
	r := New(ZoneDirect{testStore()})
	ctx := context.Background()
	r.NS(ctx, "twitter.test")
	r.FlushCache()
	r.NS(ctx, "twitter.test")
	if s := r.Stats(); s.Hits != 0 {
		t.Fatalf("hits after flush: %+v", s)
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("idle HitRate should be 0")
	}
}

// TestUDPTransportMatchesZoneDirect cross-checks the real-socket path against
// the in-process path on identical queries, per the DESIGN.md contract.
func TestUDPTransportMatchesZoneDirect(t *testing.T) {
	store := testStore()
	srv := dnsserver.New(store, dnsserver.Config{})
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	live := New(NewUDPTransport(addr))
	direct := New(ZoneDirect{store})
	ctx := context.Background()

	queries := []struct {
		name  string
		qtype dnsmsg.Type
	}{
		{"twitter.test.", dnsmsg.TypeNS},
		{"twitter.test.", dnsmsg.TypeSOA},
		{"www.twitter.test.", dnsmsg.TypeA},
		{"www.twitter.test.", dnsmsg.TypeCNAME},
		{"ns1.dyn.test.", dnsmsg.TypeSOA},
		{"missing.twitter.test.", dnsmsg.TypeA},
	}
	for _, q := range queries {
		lr, lerr := live.Lookup(ctx, q.name, q.qtype)
		dr, derr := direct.Lookup(ctx, q.name, q.qtype)
		if (lerr == nil) != (derr == nil) {
			t.Fatalf("%s %s: live err=%v direct err=%v", q.name, q.qtype, lerr, derr)
		}
		if lerr != nil {
			continue
		}
		if lr.RCode != dr.RCode {
			t.Errorf("%s %s: rcode live=%v direct=%v", q.name, q.qtype, lr.RCode, dr.RCode)
		}
		if !reflect.DeepEqual(lr.Answers, dr.Answers) {
			t.Errorf("%s %s: answers differ\nlive:   %+v\ndirect: %+v", q.name, q.qtype, lr.Answers, dr.Answers)
		}
	}
	if srv.Queries() == 0 {
		t.Error("live path did not reach the server")
	}
}

func TestUDPTransportTruncationFallsBackToTCP(t *testing.T) {
	store := dnszone.NewStore()
	z := dnszone.NewZone("big.test.", dnsmsg.SOAData{MName: "ns.big.test.", RName: "ops.big.test."})
	for i := 0; i < 40; i++ {
		z.MustAdd(dnsmsg.Record{
			Name: "txt.big.test.", Type: dnsmsg.TypeTXT, TTL: 60,
			TXT: []string{fmt.Sprintf("record-%02d-padding-padding-padding", i)},
		})
	}
	store.AddZone(z)
	srv := dnsserver.New(store, dnsserver.Config{})
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	r := New(NewUDPTransport(addr))
	res, err := r.Lookup(context.Background(), "txt.big.test.", dnsmsg.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 40 {
		t.Fatalf("got %d TXT answers via fallback, want 40", len(res.Answers))
	}
}

func TestUDPTransportContextCancel(t *testing.T) {
	// A local UDP socket that never answers is a reliable blackhole.
	hole, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()
	tr := NewUDPTransport(hole.LocalAddr().String())
	tr.Timeout = 5 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	r := New(tr)
	start := time.Now()
	_, err = r.Lookup(ctx, "x.test.", dnsmsg.TypeA)
	if err == nil {
		t.Fatal("expected error from blackhole")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("context deadline not honored: took %v", time.Since(start))
	}
}

func BenchmarkZoneDirectLookupCached(b *testing.B) {
	r := New(ZoneDirect{testStore()})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.NS(ctx, "twitter.test"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUDPRoundTrip(b *testing.B) {
	srv := dnsserver.New(testStore(), dnsserver.Config{})
	addr, err := srv.Start()
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	r := New(NewUDPTransport(addr))
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.FlushCache()
		if _, err := r.NS(ctx, "twitter.test"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEDNS0LargeAnswerOverUDP(t *testing.T) {
	store := dnszone.NewStore()
	z := dnszone.NewZone("edns.test.", dnsmsg.SOAData{MName: "ns.edns.test.", RName: "ops.edns.test."})
	for i := 0; i < 40; i++ {
		z.MustAdd(dnsmsg.Record{
			Name: "txt.edns.test.", Type: dnsmsg.TypeTXT, TTL: 60,
			TXT: []string{fmt.Sprintf("record-%02d-padding-padding-padding", i)},
		})
	}
	store.AddZone(z)
	srv := dnsserver.New(store, dnsserver.Config{})
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Default transport advertises EDNS0: the big RRset must arrive in one
	// UDP exchange (no TCP fallback).
	r := New(NewUDPTransport(addr))
	res, err := r.Lookup(context.Background(), "txt.edns.test.", dnsmsg.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 40 {
		t.Fatalf("got %d answers, want 40", len(res.Answers))
	}

	// With EDNS disabled the same lookup must still succeed via TCP.
	tr := NewUDPTransport(addr)
	tr.AdvertiseUDPSize = 0
	r2 := New(tr)
	res2, err := r2.Lookup(context.Background(), "txt.edns.test.", dnsmsg.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Answers) != 40 {
		t.Fatalf("classic path got %d answers, want 40", len(res2.Answers))
	}
}
