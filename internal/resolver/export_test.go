package resolver

import (
	"context"
	"testing"
	"time"

	"depscope/internal/dnsmsg"
	"depscope/internal/dnszone"
)

func exportTestStore(t *testing.T) *dnszone.Store {
	t.Helper()
	z := dnszone.NewZone("example.com.", dnsmsg.SOAData{
		MName: "ns1.example.com.", RName: "ops.example.com.",
		Serial: 1, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
	})
	z.MustAdd(dnsmsg.Record{Name: "example.com.", Type: dnsmsg.TypeNS, TTL: 3600, Target: "ns1.dynmade.net."})
	z.MustAdd(dnsmsg.Record{Name: "example.com.", Type: dnsmsg.TypeNS, TTL: 3600, Target: "ns2.dynmade.net."})
	store := dnszone.NewStore()
	store.AddZone(z)
	return store
}

// TestExportImportCache proves a cache dump round-trips: a second resolver
// seeded with the first one's export answers from cache without touching
// the transport.
func TestExportImportCache(t *testing.T) {
	ctx := context.Background()
	store := exportTestStore(t)
	r1 := New(ZoneDirect{Store: store})
	ns, err := r1.NS(ctx, "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 {
		t.Fatalf("NS = %v, want 2 hosts", ns)
	}
	dump := r1.ExportCache()
	if len(dump) != 1 {
		t.Fatalf("ExportCache = %d entries, want 1", len(dump))
	}
	if dump[0].Name != "example.com." || dump[0].Type != dnsmsg.TypeNS {
		t.Fatalf("exported entry = %+v", dump[0])
	}

	// The second resolver's store is empty, so any transport exchange fails
	// with REFUSED — a cache hit is the only way to answer.
	r2 := New(ZoneDirect{Store: dnszone.NewStore()})
	if got := r2.ImportCache(dump); got != 1 {
		t.Fatalf("ImportCache = %d, want 1", got)
	}
	ns2, err := r2.NS(ctx, "example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns2) != 2 {
		t.Fatalf("resumed NS = %v, want 2 hosts", ns2)
	}
	if st := r2.Stats(); st.Hits != 1 {
		t.Fatalf("import did not serve from cache: stats %+v", st)
	}
}

// TestImportCacheSkipsExpired proves absolute expiries survive the dump: an
// entry expired between export and import is not installed.
func TestImportCacheSkipsExpired(t *testing.T) {
	now := time.Now()
	clock := &now
	r1 := New(ZoneDirect{Store: exportTestStore(t)}, WithClock(func() time.Time { return *clock }))
	if _, err := r1.NS(context.Background(), "example.com"); err != nil {
		t.Fatal(err)
	}
	dump := r1.ExportCache()
	if len(dump) != 1 {
		t.Fatalf("ExportCache = %d entries, want 1", len(dump))
	}

	later := now.Add(2 * time.Hour) // past the 3600s record TTL
	r2 := New(ZoneDirect{Store: dnszone.NewStore()}, WithClock(func() time.Time { return later }))
	if got := r2.ImportCache(dump); got != 0 {
		t.Fatalf("ImportCache installed %d expired entries, want 0", got)
	}
}
