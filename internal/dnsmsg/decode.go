package dnsmsg

import (
	"errors"
	"fmt"
	"strings"

	"depscope/internal/intern"
)

// Decoding errors.
var (
	ErrShortMessage    = errors.New("dnsmsg: message too short")
	ErrPointerLoop     = errors.New("dnsmsg: compression pointer loop")
	ErrBadPointer      = errors.New("dnsmsg: compression pointer out of range")
	ErrTrailingGarbage = errors.New("dnsmsg: trailing bytes after message")
)

// decoder walks a wire-format message.
type decoder struct {
	buf []byte
	off int
}

// Unpack parses a wire-format DNS message.
func Unpack(b []byte) (*Message, error) {
	d := &decoder{buf: b}
	m := &Message{}

	id, err := d.uint16()
	if err != nil {
		return nil, err
	}
	flags, err := d.uint16()
	if err != nil {
		return nil, err
	}
	m.Header = Header{
		ID:                 id,
		Response:           flags&(1<<15) != 0,
		OpCode:             OpCode(flags >> 11 & 0xF),
		Authoritative:      flags&(1<<10) != 0,
		Truncated:          flags&(1<<9) != 0,
		RecursionDesired:   flags&(1<<8) != 0,
		RecursionAvailable: flags&(1<<7) != 0,
		RCode:              RCode(flags & 0xF),
	}
	counts := make([]uint16, 4)
	for i := range counts {
		if counts[i], err = d.uint16(); err != nil {
			return nil, err
		}
	}

	for i := 0; i < int(counts[0]); i++ {
		q, err := d.question()
		if err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		m.Questions = append(m.Questions, q)
	}
	sections := []*[]Record{&m.Answers, &m.Authority, &m.Additional}
	names := []string{"answer", "authority", "additional"}
	for s, sec := range sections {
		for i := 0; i < int(counts[s+1]); i++ {
			r, err := d.rr()
			if err != nil {
				return nil, fmt.Errorf("%s %d: %w", names[s], i, err)
			}
			*sec = append(*sec, r)
		}
	}
	return m, nil
}

func (d *decoder) uint8() (byte, error) {
	if d.off+1 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *decoder) uint16() (uint16, error) {
	if d.off+2 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := uint16(d.buf[d.off])<<8 | uint16(d.buf[d.off+1])
	d.off += 2
	return v, nil
}

func (d *decoder) uint32() (uint32, error) {
	if d.off+4 > len(d.buf) {
		return 0, ErrShortMessage
	}
	v := uint32(d.buf[d.off])<<24 | uint32(d.buf[d.off+1])<<16 |
		uint32(d.buf[d.off+2])<<8 | uint32(d.buf[d.off+3])
	d.off += 4
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.buf) {
		return nil, ErrShortMessage
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

// name reads a possibly-compressed domain name starting at the current
// offset, leaving the offset just past the name.
func (d *decoder) name() (string, error) {
	s, next, err := readName(d.buf, d.off)
	if err != nil {
		return "", err
	}
	d.off = next
	return s, nil
}

// readName decodes the name at off and returns it with the offset of the
// first byte after the name's in-place representation. The textual form is
// assembled in a stack scratch buffer and interned, so decoding the same
// name again (every record of every response repeats the zone's names) is a
// map hit, not a fresh allocation.
func readName(buf []byte, off int) (string, int, error) {
	// RFC 1035 caps a name at 255 octets; the scratch array covers the
	// presentation form of any legal name without heap growth.
	var scratch [256]byte
	name := scratch[:0]
	// A message has at most len(buf) pointers; more indicates a loop.
	maxJumps := len(buf)
	jumps := 0
	next := -1 // offset after the first pointer, i.e. where parsing resumes
	for {
		if off >= len(buf) {
			return "", 0, ErrShortMessage
		}
		b := buf[off]
		switch {
		case b == 0:
			if next < 0 {
				next = off + 1
			}
			if len(name) == 0 {
				return ".", next, nil
			}
			return intern.Bytes(name), next, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(buf) {
				return "", 0, ErrShortMessage
			}
			ptr := int(b&0x3F)<<8 | int(buf[off+1])
			if next < 0 {
				next = off + 2
			}
			if ptr >= off {
				// Forward or self pointers are invalid and can loop.
				return "", 0, ErrBadPointer
			}
			jumps++
			if jumps > maxJumps {
				return "", 0, ErrPointerLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return "", 0, fmt.Errorf("dnsmsg: reserved label type %#x", b&0xC0)
		default:
			n := int(b)
			if off+1+n > len(buf) {
				return "", 0, ErrShortMessage
			}
			name = append(name, buf[off+1:off+1+n]...)
			name = append(name, '.')
			off += 1 + n
		}
	}
}

func (d *decoder) question() (Question, error) {
	name, err := d.name()
	if err != nil {
		return Question{}, err
	}
	t, err := d.uint16()
	if err != nil {
		return Question{}, err
	}
	c, err := d.uint16()
	if err != nil {
		return Question{}, err
	}
	return Question{Name: name, Type: Type(t), Class: Class(c)}, nil
}

func (d *decoder) rr() (Record, error) {
	name, err := d.name()
	if err != nil {
		return Record{}, err
	}
	t, err := d.uint16()
	if err != nil {
		return Record{}, err
	}
	c, err := d.uint16()
	if err != nil {
		return Record{}, err
	}
	ttl, err := d.uint32()
	if err != nil {
		return Record{}, err
	}
	rdlen, err := d.uint16()
	if err != nil {
		return Record{}, err
	}
	if d.off+int(rdlen) > len(d.buf) {
		return Record{}, ErrShortMessage
	}
	r := Record{Name: name, Type: Type(t), Class: Class(c), TTL: ttl}
	end := d.off + int(rdlen)
	if err := d.decodeRDATA(&r, end); err != nil {
		return Record{}, err
	}
	if d.off != end {
		return Record{}, fmt.Errorf("dnsmsg: %s RDATA length mismatch (at %d, want %d)", r.Type, d.off, end)
	}
	return r, nil
}

func (d *decoder) decodeRDATA(r *Record, end int) error {
	switch r.Type {
	case TypeA:
		ip, err := d.bytes(4)
		if err != nil {
			return err
		}
		r.IP = append([]byte(nil), ip...)
	case TypeAAAA:
		ip, err := d.bytes(16)
		if err != nil {
			return err
		}
		r.IP = append([]byte(nil), ip...)
	case TypeNS, TypeCNAME, TypePTR:
		t, err := d.name()
		if err != nil {
			return err
		}
		r.Target = t
	case TypeSOA:
		soa := &SOAData{}
		var err error
		if soa.MName, err = d.name(); err != nil {
			return err
		}
		if soa.RName, err = d.name(); err != nil {
			return err
		}
		if soa.Serial, err = d.uint32(); err != nil {
			return err
		}
		if soa.Refresh, err = d.uint32(); err != nil {
			return err
		}
		if soa.Retry, err = d.uint32(); err != nil {
			return err
		}
		if soa.Expire, err = d.uint32(); err != nil {
			return err
		}
		if soa.Minimum, err = d.uint32(); err != nil {
			return err
		}
		r.SOA = soa
	case TypeMX:
		mx := &MXData{}
		var err error
		if mx.Preference, err = d.uint16(); err != nil {
			return err
		}
		if mx.Exchange, err = d.name(); err != nil {
			return err
		}
		r.MX = mx
	case TypeTXT:
		for d.off < end {
			n, err := d.uint8()
			if err != nil {
				return err
			}
			s, err := d.bytes(int(n))
			if err != nil {
				return err
			}
			r.TXT = append(r.TXT, string(s))
		}
	default:
		raw, err := d.bytes(end - d.off)
		if err != nil {
			return err
		}
		r.Raw = append([]byte(nil), raw...)
	}
	return nil
}

// canonMemo caches the slow normalization path per distinct raw input, with
// results interned so repeated canonicalizations of the same spelling share
// one string.
var canonMemo = intern.NewMemo(canonicalNameSlow)

// CanonicalName lowercases a DNS name and ensures a trailing dot, the form
// used as map keys throughout the zone store and resolver cache. Names that
// are already canonical — lowercase ASCII with a trailing dot, the common
// case on the measurement hot path — are returned unchanged without
// allocating.
func CanonicalName(name string) string {
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c >= 'A' && c <= 'Z') || c <= ' ' || c >= 0x80 {
			return canonMemo.Get(name)
		}
	}
	if len(name) == 0 {
		return "."
	}
	if name[len(name)-1] != '.' {
		return canonMemo.Get(name)
	}
	return name
}

func canonicalNameSlow(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" || name == "." {
		return "."
	}
	if !strings.HasSuffix(name, ".") {
		name += "."
	}
	return name
}
