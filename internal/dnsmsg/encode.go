package dnsmsg

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Encoding errors.
var (
	ErrNameTooLong  = errors.New("dnsmsg: domain name exceeds 255 octets")
	ErrLabelTooLong = errors.New("dnsmsg: label exceeds 63 octets")
	ErrEmptyLabel   = errors.New("dnsmsg: empty label in domain name")
	ErrTooManyRRs   = errors.New("dnsmsg: section exceeds 65535 records")
)

// encoder serializes a message with RFC 1035 §4.1.4 name compression.
type encoder struct {
	buf []byte
	// base is the offset in buf where the current message starts;
	// compression pointers are relative to it.
	base int
	// ptrs maps a fully-qualified lowercase name suffix to its
	// message-relative offset for compression-pointer reuse. Offsets beyond
	// 0x3FFF cannot be encoded as pointers and are not stored.
	ptrs map[string]int
}

// encPool recycles encoders (and their compression-pointer maps) across
// Pack calls; the serving path packs one response per query and the map was
// a measurable share of its garbage.
var encPool = sync.Pool{New: func() any {
	return &encoder{ptrs: make(map[string]int)}
}}

// bufPool recycles wire-format buffers for the serving and transport hot
// paths; see GetPacketBuf.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// GetPacketBuf returns a reusable wire-format buffer (length 0, capacity at
// least 512). Pass it to AppendPack and hand it back with PutPacketBuf once
// the packed bytes have been written out.
func GetPacketBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutPacketBuf recycles a buffer obtained from GetPacketBuf. The caller
// must not retain any slice of it afterwards.
func PutPacketBuf(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}

// Pack serializes m into wire format.
func (m *Message) Pack() ([]byte, error) {
	return m.AppendPack(make([]byte, 0, 512))
}

// AppendPack serializes m into wire format appended to dst and returns the
// extended slice, which may have been reallocated. Compression pointers are
// relative to the start of the appended message, so dst may already hold
// other bytes (a pooled buffer, a TCP length prefix).
func (m *Message) AppendPack(dst []byte) ([]byte, error) {
	if len(m.Questions) > 0xFFFF || len(m.Answers) > 0xFFFF ||
		len(m.Authority) > 0xFFFF || len(m.Additional) > 0xFFFF {
		return nil, ErrTooManyRRs
	}
	e := encPool.Get().(*encoder)
	e.buf = dst
	e.base = len(dst)
	clear(e.ptrs)
	defer func() {
		e.buf = nil
		encPool.Put(e)
	}()
	e.uint16(m.Header.ID)
	var flags uint16
	if m.Header.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Header.OpCode&0xF) << 11
	if m.Header.Authoritative {
		flags |= 1 << 10
	}
	if m.Header.Truncated {
		flags |= 1 << 9
	}
	if m.Header.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Header.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.Header.RCode & 0xF)
	e.uint16(flags)
	e.uint16(uint16(len(m.Questions)))
	e.uint16(uint16(len(m.Answers)))
	e.uint16(uint16(len(m.Authority)))
	e.uint16(uint16(len(m.Additional)))

	for _, q := range m.Questions {
		if err := e.name(q.Name); err != nil {
			return nil, err
		}
		e.uint16(uint16(q.Type))
		e.uint16(uint16(q.Class))
	}
	for _, sec := range [][]Record{m.Answers, m.Authority, m.Additional} {
		for i := range sec {
			if err := e.record(&sec[i]); err != nil {
				return nil, err
			}
		}
	}
	return e.buf, nil
}

func (e *encoder) uint16(v uint16) {
	e.buf = append(e.buf, byte(v>>8), byte(v))
}

func (e *encoder) uint32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// name writes a (possibly compressed) domain name.
func (e *encoder) name(name string) error {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		e.buf = append(e.buf, 0)
		return nil
	}
	if len(name) > 254 {
		return ErrNameTooLong
	}
	labels := strings.Split(name, ".")
	for i := range labels {
		if labels[i] == "" {
			return ErrEmptyLabel
		}
		if len(labels[i]) > 63 {
			return ErrLabelTooLong
		}
		suffix := strings.ToLower(strings.Join(labels[i:], "."))
		if off, ok := e.ptrs[suffix]; ok {
			e.uint16(uint16(off) | 0xC000)
			return nil
		}
		if off := len(e.buf) - e.base; off <= 0x3FFF {
			e.ptrs[suffix] = off
		}
		e.buf = append(e.buf, byte(len(labels[i])))
		e.buf = append(e.buf, labels[i]...)
	}
	e.buf = append(e.buf, 0)
	return nil
}

// nameNoCompress writes a name without emitting a compression pointer.
// RDATA names inside SOA/NS/CNAME may legally be compressed, so this is
// only used where a fixed length is required.
func (e *encoder) record(r *Record) error {
	if err := e.name(r.Name); err != nil {
		return err
	}
	e.uint16(uint16(r.Type))
	e.uint16(uint16(r.Class))
	e.uint32(r.TTL)
	// Reserve RDLENGTH and patch after writing RDATA.
	lenOff := len(e.buf)
	e.uint16(0)
	start := len(e.buf)
	if err := e.rdata(r); err != nil {
		return err
	}
	rdlen := len(e.buf) - start
	if rdlen > 0xFFFF {
		return fmt.Errorf("dnsmsg: RDATA of %s too long (%d bytes)", r.Name, rdlen)
	}
	e.buf[lenOff] = byte(rdlen >> 8)
	e.buf[lenOff+1] = byte(rdlen)
	return nil
}

func (e *encoder) rdata(r *Record) error {
	switch r.Type {
	case TypeA:
		if len(r.IP) != 4 {
			return fmt.Errorf("dnsmsg: A record %s needs a 4-byte address, got %d", r.Name, len(r.IP))
		}
		e.buf = append(e.buf, r.IP...)
	case TypeAAAA:
		if len(r.IP) != 16 {
			return fmt.Errorf("dnsmsg: AAAA record %s needs a 16-byte address, got %d", r.Name, len(r.IP))
		}
		e.buf = append(e.buf, r.IP...)
	case TypeNS, TypeCNAME, TypePTR:
		return e.name(r.Target)
	case TypeSOA:
		if r.SOA == nil {
			return fmt.Errorf("dnsmsg: SOA record %s has nil SOA data", r.Name)
		}
		if err := e.name(r.SOA.MName); err != nil {
			return err
		}
		if err := e.name(r.SOA.RName); err != nil {
			return err
		}
		e.uint32(r.SOA.Serial)
		e.uint32(r.SOA.Refresh)
		e.uint32(r.SOA.Retry)
		e.uint32(r.SOA.Expire)
		e.uint32(r.SOA.Minimum)
	case TypeMX:
		if r.MX == nil {
			return fmt.Errorf("dnsmsg: MX record %s has nil MX data", r.Name)
		}
		e.uint16(r.MX.Preference)
		return e.name(r.MX.Exchange)
	case TypeTXT:
		for _, s := range r.TXT {
			for len(s) > 255 {
				e.buf = append(e.buf, 255)
				e.buf = append(e.buf, s[:255]...)
				s = s[255:]
			}
			e.buf = append(e.buf, byte(len(s)))
			e.buf = append(e.buf, s...)
		}
		if len(r.TXT) == 0 {
			e.buf = append(e.buf, 0)
		}
	default:
		e.buf = append(e.buf, r.Raw...)
	}
	return nil
}
