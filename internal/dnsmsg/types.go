// Package dnsmsg implements the DNS wire format of RFC 1035: message
// header, question and resource-record encoding and decoding, including
// domain-name compression pointers.
//
// It is the protocol substrate for the measurement pipeline: the paper's
// methodology is built on dig NS / dig SOA / dig CNAME queries, and this
// package provides the packet layer those queries travel on. EDNS(0) is
// supported to the extent a measurement client needs it: advertising and
// honouring larger UDP payload sizes (RFC 6891).
package dnsmsg

import "fmt"

// Type is a DNS RR TYPE or QTYPE (RFC 1035 §3.2.2, §3.2.3).
type Type uint16

// Resource record types used by the measurement pipeline.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	TypeAXFR  Type = 252
	TypeANY   Type = 255
)

// String returns the conventional mnemonic for t.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeOPT:
		return "OPT"
	case TypeAXFR:
		return "AXFR"
	case TypeANY:
		return "ANY"
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS CLASS (RFC 1035 §3.2.4). Only IN is used in practice.
type Class uint16

// DNS classes.
const (
	ClassIN  Class = 1
	ClassANY Class = 255
)

// String returns the conventional mnemonic for c.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// RCode is a DNS response code (RFC 1035 §4.1.1).
type RCode uint8

// Response codes.
const (
	RCodeSuccess        RCode = 0 // NOERROR
	RCodeFormatError    RCode = 1 // FORMERR
	RCodeServerFailure  RCode = 2 // SERVFAIL
	RCodeNameError      RCode = 3 // NXDOMAIN
	RCodeNotImplemented RCode = 4 // NOTIMP
	RCodeRefused        RCode = 5 // REFUSED
)

// String returns the conventional mnemonic for rc.
func (rc RCode) String() string {
	switch rc {
	case RCodeSuccess:
		return "NOERROR"
	case RCodeFormatError:
		return "FORMERR"
	case RCodeServerFailure:
		return "SERVFAIL"
	case RCodeNameError:
		return "NXDOMAIN"
	case RCodeNotImplemented:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	}
	return fmt.Sprintf("RCODE%d", uint8(rc))
}

// OpCode is a DNS operation code. Only standard queries are supported.
type OpCode uint8

// Operation codes.
const (
	OpCodeQuery  OpCode = 0
	OpCodeStatus OpCode = 2
)

// Header is the 12-byte DNS message header (RFC 1035 §4.1.1), with the
// count fields implied by the Message slices.
type Header struct {
	ID                 uint16
	Response           bool // QR
	OpCode             OpCode
	Authoritative      bool // AA
	Truncated          bool // TC
	RecursionDesired   bool // RD
	RecursionAvailable bool // RA
	RCode              RCode
}

// Question is a DNS question section entry (RFC 1035 §4.1.2).
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String formats the question dig-style.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// SOAData is the RDATA of an SOA record (RFC 1035 §3.3.13). MName is the
// primary master nameserver; RName encodes the administrator mailbox. The
// paper's redundancy heuristic groups nameservers by equal MNAME or RNAME.
type SOAData struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// MXData is the RDATA of an MX record.
type MXData struct {
	Preference uint16
	Exchange   string
}

// Record is a decoded resource record. Exactly one of the Data fields is
// meaningful, selected by Type:
//
//	A/AAAA -> IP (4 or 16 bytes)
//	NS/CNAME/PTR -> Target
//	SOA -> SOA
//	MX -> MX
//	TXT -> TXT
//
// Unknown types round-trip through Raw.
type Record struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32

	IP     []byte
	Target string
	SOA    *SOAData
	MX     *MXData
	TXT    []string
	Raw    []byte
}

// String formats the record zone-file-style.
func (r Record) String() string {
	switch r.Type {
	case TypeA, TypeAAAA:
		return fmt.Sprintf("%s %d %s %s %s", r.Name, r.TTL, r.Class, r.Type, ipString(r.IP))
	case TypeNS, TypeCNAME, TypePTR:
		return fmt.Sprintf("%s %d %s %s %s", r.Name, r.TTL, r.Class, r.Type, r.Target)
	case TypeSOA:
		if r.SOA != nil {
			return fmt.Sprintf("%s %d %s SOA %s %s %d %d %d %d %d", r.Name, r.TTL, r.Class,
				r.SOA.MName, r.SOA.RName, r.SOA.Serial, r.SOA.Refresh, r.SOA.Retry, r.SOA.Expire, r.SOA.Minimum)
		}
	case TypeMX:
		if r.MX != nil {
			return fmt.Sprintf("%s %d %s MX %d %s", r.Name, r.TTL, r.Class, r.MX.Preference, r.MX.Exchange)
		}
	case TypeTXT:
		return fmt.Sprintf("%s %d %s TXT %q", r.Name, r.TTL, r.Class, r.TXT)
	}
	return fmt.Sprintf("%s %d %s %s [%d bytes]", r.Name, r.TTL, r.Class, r.Type, len(r.Raw))
}

func ipString(b []byte) string {
	switch len(b) {
	case 4:
		return fmt.Sprintf("%d.%d.%d.%d", b[0], b[1], b[2], b[3])
	case 16:
		s := ""
		for i := 0; i < 16; i += 2 {
			if i > 0 {
				s += ":"
			}
			s += fmt.Sprintf("%x", uint16(b[i])<<8|uint16(b[i+1]))
		}
		return s
	}
	return fmt.Sprintf("%x", b)
}

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []Record
	Authority  []Record
	Additional []Record
}

// NewQuery constructs a standard recursion-desired query for (name, type).
func NewQuery(id uint16, name string, qtype Type) *Message {
	return &Message{
		Header: Header{ID: id, RecursionDesired: true},
		Questions: []Question{{
			Name:  name,
			Type:  qtype,
			Class: ClassIN,
		}},
	}
}

// SetEDNS0 attaches an EDNS(0) OPT pseudo-record (RFC 6891) advertising the
// given UDP payload size, replacing any existing OPT record.
func (m *Message) SetEDNS0(udpSize uint16) {
	kept := m.Additional[:0]
	for _, r := range m.Additional {
		if r.Type != TypeOPT {
			kept = append(kept, r)
		}
	}
	m.Additional = append(kept, Record{
		Name:  ".",
		Type:  TypeOPT,
		Class: Class(udpSize),
	})
}

// EDNS0 reports the advertised UDP payload size of the message's OPT
// record, if present. Sizes below 512 are clamped up per RFC 6891.
func (m *Message) EDNS0() (udpSize uint16, ok bool) {
	for _, r := range m.Additional {
		if r.Type == TypeOPT {
			size := uint16(r.Class)
			if size < 512 {
				size = 512
			}
			return size, true
		}
	}
	return 0, false
}

// Reply constructs a response skeleton mirroring the query's ID, question
// and RD bit.
func (m *Message) Reply() *Message {
	r := &Message{
		Header: Header{
			ID:               m.Header.ID,
			Response:         true,
			OpCode:           m.Header.OpCode,
			RecursionDesired: m.Header.RecursionDesired,
		},
	}
	r.Questions = append(r.Questions, m.Questions...)
	return r
}
