package dnsmsg

import (
	"bytes"
	"testing"
)

// appendFixture is a response with enough repeated names to exercise
// compression pointers.
func appendFixture() *Message {
	m := NewQuery(42, "www.example.com.", TypeNS)
	m.Header.Response = true
	m.Answers = []Record{
		{Name: "www.example.com.", Type: TypeNS, Class: ClassIN, TTL: 300, Target: "ns1.example.com."},
		{Name: "www.example.com.", Type: TypeNS, Class: ClassIN, TTL: 300, Target: "ns2.example.com."},
	}
	return m
}

func TestAppendPackMatchesPack(t *testing.T) {
	m := appendFixture()
	plain, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	appended, err := m.AppendPack(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, appended) {
		t.Fatalf("AppendPack(nil) differs from Pack:\n%x\n%x", plain, appended)
	}
}

// TestAppendPackPrefixedOffsets pins that compression pointers stay relative
// to the message start when dst already holds bytes (the TCP length-prefix
// case): the message after the prefix must be byte-identical to a standalone
// Pack and must decode cleanly.
func TestAppendPackPrefixedOffsets(t *testing.T) {
	m := appendFixture()
	plain, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte{0xDE, 0xAD}
	framed, err := m.AppendPack(append([]byte(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(framed[:2], prefix) {
		t.Fatal("prefix bytes were clobbered")
	}
	if !bytes.Equal(framed[2:], plain) {
		t.Fatalf("prefixed message differs from standalone pack:\n%x\n%x", plain, framed[2:])
	}
	back, err := Unpack(framed[2:])
	if err != nil {
		t.Fatalf("prefixed message does not decode: %v", err)
	}
	if len(back.Answers) != 2 || back.Answers[1].Target != "ns2.example.com." {
		t.Fatalf("round-trip lost answers: %+v", back.Answers)
	}
}

func TestPacketBufPoolReuse(t *testing.T) {
	m := appendFixture()
	bufp := GetPacketBuf()
	if cap(*bufp) < 512 {
		t.Fatalf("pooled buffer capacity %d, want >= 512", cap(*bufp))
	}
	wire, err := m.AppendPack((*bufp)[:0])
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := m.Pack()
	if !bytes.Equal(wire, plain) {
		t.Fatal("pooled pack differs from plain pack")
	}
	*bufp = wire[:0]
	PutPacketBuf(bufp)
	// Reusing the pool must keep producing correct bytes.
	bufp2 := GetPacketBuf()
	wire2, err := m.AppendPack((*bufp2)[:0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire2, plain) {
		t.Fatal("second pooled pack differs from plain pack")
	}
	PutPacketBuf(bufp2)
}
