package dnsmsg

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	tests := []Header{
		{},
		{ID: 0x1234, Response: true, Authoritative: true, RCode: RCodeNameError},
		{ID: 0xFFFF, OpCode: OpCodeStatus, Truncated: true},
		{RecursionDesired: true, RecursionAvailable: true, RCode: RCodeRefused},
	}
	for _, h := range tests {
		m := &Message{Header: h}
		b, err := m.Pack()
		if err != nil {
			t.Fatalf("Pack(%+v): %v", h, err)
		}
		got, err := Unpack(b)
		if err != nil {
			t.Fatalf("Unpack(%+v): %v", h, err)
		}
		if got.Header != h {
			t.Errorf("header round trip: got %+v, want %+v", got.Header, h)
		}
	}
}

func TestQuestionRoundTrip(t *testing.T) {
	m := NewQuery(42, "www.example.com.", TypeNS)
	b, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("got %d questions, want 1", len(got.Questions))
	}
	q := got.Questions[0]
	if q.Name != "www.example.com." || q.Type != TypeNS || q.Class != ClassIN {
		t.Errorf("question round trip: got %+v", q)
	}
	if !got.Header.RecursionDesired {
		t.Error("NewQuery should set RD")
	}
}

func sampleRecords() []Record {
	return []Record{
		{Name: "example.com.", Type: TypeA, Class: ClassIN, TTL: 300, IP: []byte{93, 184, 216, 34}},
		{Name: "example.com.", Type: TypeAAAA, Class: ClassIN, TTL: 300, IP: bytes.Repeat([]byte{0x20, 0x01}, 8)},
		{Name: "example.com.", Type: TypeNS, Class: ClassIN, TTL: 86400, Target: "ns1.dns-example.net."},
		{Name: "www.example.com.", Type: TypeCNAME, Class: ClassIN, TTL: 60, Target: "edge.cdn-example.net."},
		{Name: "example.com.", Type: TypeSOA, Class: ClassIN, TTL: 3600, SOA: &SOAData{
			MName: "ns1.dns-example.net.", RName: "hostmaster.example.com.",
			Serial: 2020010101, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
		}},
		{Name: "example.com.", Type: TypeMX, Class: ClassIN, TTL: 3600, MX: &MXData{Preference: 10, Exchange: "mail.example.com."}},
		{Name: "example.com.", Type: TypeTXT, Class: ClassIN, TTL: 60, TXT: []string{"v=spf1 -all", "k=v"}},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, r := range sampleRecords() {
		m := &Message{
			Header:  Header{ID: 7, Response: true},
			Answers: []Record{r},
		}
		b, err := m.Pack()
		if err != nil {
			t.Fatalf("Pack(%s): %v", r.Type, err)
		}
		got, err := Unpack(b)
		if err != nil {
			t.Fatalf("Unpack(%s): %v", r.Type, err)
		}
		if len(got.Answers) != 1 {
			t.Fatalf("%s: got %d answers, want 1", r.Type, len(got.Answers))
		}
		if !reflect.DeepEqual(got.Answers[0], r) {
			t.Errorf("%s round trip:\n got %+v\nwant %+v", r.Type, got.Answers[0], r)
		}
	}
}

func TestAllSectionsRoundTrip(t *testing.T) {
	rs := sampleRecords()
	m := &Message{
		Header:     Header{ID: 99, Response: true, Authoritative: true},
		Questions:  []Question{{Name: "example.com.", Type: TypeANY, Class: ClassIN}},
		Answers:    rs[:3],
		Authority:  rs[3:5],
		Additional: rs[5:],
	}
	b, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("full message round trip:\n got %+v\nwant %+v", got, m)
	}
}

func TestNameCompressionShrinksMessage(t *testing.T) {
	// Many records sharing a suffix should compress to far less than the
	// uncompressed size.
	m := &Message{Header: Header{Response: true}}
	uncompressed := 12
	for i := 0; i < 20; i++ {
		name := strings.Repeat("x", 10) + ".shared-suffix.example.com."
		m.Answers = append(m.Answers, Record{
			Name: name, Type: TypeNS, Class: ClassIN, TTL: 60,
			Target: "ns1.shared-suffix.example.com.",
		})
		uncompressed += len(name) + 1 + 10 + len("ns1.shared-suffix.example.com.") + 1
	}
	b, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) >= uncompressed {
		t.Errorf("compression ineffective: packed %d bytes, uncompressed floor %d", len(b), uncompressed)
	}
	got, err := Unpack(b)
	if err != nil {
		t.Fatalf("Unpack compressed: %v", err)
	}
	for i, a := range got.Answers {
		if a.Name != m.Answers[i].Name || a.Target != m.Answers[i].Target {
			t.Fatalf("answer %d corrupted by compression: %+v", i, a)
		}
	}
}

func TestCompressionPointerIntoRDATA(t *testing.T) {
	// SOA MName/RName and NS targets may be compressed; verify pointers into
	// names that were first written inside RDATA still decode.
	m := &Message{Header: Header{Response: true}}
	m.Answers = append(m.Answers,
		Record{Name: "a.example.org.", Type: TypeNS, Class: ClassIN, TTL: 1, Target: "ns.provider.net."},
		Record{Name: "ns.provider.net.", Type: TypeA, Class: ClassIN, TTL: 1, IP: []byte{1, 2, 3, 4}},
	)
	b, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[1].Name != "ns.provider.net." {
		t.Errorf("got %q, want ns.provider.net.", got.Answers[1].Name)
	}
}

func TestNameValidation(t *testing.T) {
	longLabel := strings.Repeat("a", 64) + ".com."
	if _, err := (&Message{Questions: []Question{{Name: longLabel, Type: TypeA, Class: ClassIN}}}).Pack(); err == nil {
		t.Error("Pack accepted 64-byte label")
	}
	longName := strings.Repeat("abcdefgh.", 32) + "com."
	if _, err := (&Message{Questions: []Question{{Name: longName, Type: TypeA, Class: ClassIN}}}).Pack(); err == nil {
		t.Error("Pack accepted >255-byte name")
	}
	if _, err := (&Message{Questions: []Question{{Name: "a..com.", Type: TypeA, Class: ClassIN}}}).Pack(); err == nil {
		t.Error("Pack accepted empty label")
	}
}

func TestRootNameRoundTrip(t *testing.T) {
	m := &Message{Questions: []Question{{Name: ".", Type: TypeNS, Class: ClassIN}}}
	b, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "." {
		t.Errorf("root name round trip: got %q", got.Questions[0].Name)
	}
}

func TestUnpackRejectsTruncatedInput(t *testing.T) {
	m := NewQuery(1, "example.com.", TypeSOA)
	b, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(b); i++ {
		if _, err := Unpack(b[:i]); err == nil {
			t.Errorf("Unpack accepted truncation to %d bytes", i)
		}
	}
}

func TestUnpackRejectsPointerLoops(t *testing.T) {
	// Header claiming one question whose name is a self-pointer.
	msg := make([]byte, 12, 16)
	msg[5] = 1 // QDCOUNT = 1
	msg = append(msg, 0xC0, 12)
	if _, err := Unpack(msg); err == nil {
		t.Error("Unpack accepted self-referential compression pointer")
	}
	// Forward pointer.
	msg2 := make([]byte, 12, 20)
	msg2[5] = 1
	msg2 = append(msg2, 0xC0, 200)
	if _, err := Unpack(msg2); err == nil {
		t.Error("Unpack accepted forward compression pointer")
	}
}

func TestUnpackFuzzedGarbageDoesNotPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		Unpack(b) // must not panic; errors are fine
	}
}

func TestUnpackMutatedValidMessageDoesNotPanic(t *testing.T) {
	m := &Message{
		Header:    Header{ID: 3, Response: true},
		Questions: []Question{{Name: "www.example.com.", Type: TypeA, Class: ClassIN}},
		Answers:   sampleRecords(),
	}
	valid, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		b := append([]byte(nil), valid...)
		for j := 0; j < 3; j++ {
			b[rng.Intn(len(b))] = byte(rng.Intn(256))
		}
		Unpack(b) // must not panic
	}
}

// randName builds a syntactically valid random domain name from a rand.
func randName(rng *rand.Rand) string {
	labels := 1 + rng.Intn(4)
	parts := make([]string, labels)
	for i := range parts {
		n := 1 + rng.Intn(12)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		parts[i] = string(b)
	}
	return strings.Join(parts, ".") + "."
}

func TestPropertyQueryRoundTrip(t *testing.T) {
	f := func(id uint16, seed int64, qt uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		types := []Type{TypeA, TypeNS, TypeCNAME, TypeSOA, TypeTXT, TypeAAAA}
		m := NewQuery(id, randName(rng), types[int(qt)%len(types)])
		b, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyResponseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &Message{Header: Header{
			ID:            uint16(rng.Intn(1 << 16)),
			Response:      true,
			Authoritative: rng.Intn(2) == 0,
			RCode:         RCode(rng.Intn(6)),
		}}
		n := rng.Intn(6)
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				ip := make([]byte, 4)
				rng.Read(ip)
				m.Answers = append(m.Answers, Record{Name: randName(rng), Type: TypeA, Class: ClassIN, TTL: rng.Uint32(), IP: ip})
			case 1:
				m.Answers = append(m.Answers, Record{Name: randName(rng), Type: TypeNS, Class: ClassIN, TTL: rng.Uint32(), Target: randName(rng)})
			case 2:
				m.Answers = append(m.Answers, Record{Name: randName(rng), Type: TypeCNAME, Class: ClassIN, TTL: rng.Uint32(), Target: randName(rng)})
			case 3:
				m.Answers = append(m.Answers, Record{Name: randName(rng), Type: TypeSOA, Class: ClassIN, TTL: rng.Uint32(), SOA: &SOAData{
					MName: randName(rng), RName: randName(rng),
					Serial: rng.Uint32(), Refresh: rng.Uint32(), Retry: rng.Uint32(),
					Expire: rng.Uint32(), Minimum: rng.Uint32(),
				}})
			}
		}
		b, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRepackStable(t *testing.T) {
	// Pack -> Unpack -> Pack must produce identical bytes (compression is
	// deterministic).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := &Message{Header: Header{ID: 1, Response: true}}
		shared := randName(rng)
		for i := 0; i < 5; i++ {
			m.Answers = append(m.Answers, Record{
				Name: "h" + string(rune('a'+i)) + "." + shared, Type: TypeNS,
				Class: ClassIN, TTL: 30, Target: "ns." + shared,
			})
		}
		b1, err := m.Pack()
		if err != nil {
			return false
		}
		m2, err := Unpack(b1)
		if err != nil {
			return false
		}
		b2, err := m2.Pack()
		if err != nil {
			return false
		}
		return bytes.Equal(b1, b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"", "."},
		{".", "."},
		{"Example.COM", "example.com."},
		{"example.com.", "example.com."},
		{" a.b ", "a.b."},
	}
	for _, tt := range tests {
		if got := CanonicalName(tt.in); got != tt.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestTypeAndRCodeStrings(t *testing.T) {
	if TypeNS.String() != "NS" || TypeSOA.String() != "SOA" || Type(999).String() != "TYPE999" {
		t.Error("Type.String mismatch")
	}
	if RCodeNameError.String() != "NXDOMAIN" || RCode(15).String() != "RCODE15" {
		t.Error("RCode.String mismatch")
	}
	if ClassIN.String() != "IN" || Class(9).String() != "CLASS9" {
		t.Error("Class.String mismatch")
	}
}

func TestReplyMirrorsQuery(t *testing.T) {
	q := NewQuery(77, "spotify.com.", TypeNS)
	r := q.Reply()
	if !r.Header.Response || r.Header.ID != 77 || !r.Header.RecursionDesired {
		t.Errorf("Reply header wrong: %+v", r.Header)
	}
	if len(r.Questions) != 1 || r.Questions[0] != q.Questions[0] {
		t.Errorf("Reply question wrong: %+v", r.Questions)
	}
}

func TestTXTLongStringSplits(t *testing.T) {
	long := strings.Repeat("t", 600)
	m := &Message{Answers: []Record{{Name: "a.com.", Type: TypeTXT, Class: ClassIN, TTL: 1, TXT: []string{long}}}}
	b, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(got.Answers[0].TXT, "")
	if joined != long {
		t.Errorf("long TXT round trip lost data: %d bytes back", len(joined))
	}
}

func BenchmarkPackTypicalResponse(b *testing.B) {
	m := &Message{
		Header:    Header{ID: 1, Response: true, Authoritative: true},
		Questions: []Question{{Name: "www.example.com.", Type: TypeA, Class: ClassIN}},
		Answers:   sampleRecords(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpackTypicalResponse(b *testing.B) {
	m := &Message{
		Header:    Header{ID: 1, Response: true, Authoritative: true},
		Questions: []Question{{Name: "www.example.com.", Type: TypeA, Class: ClassIN}},
		Answers:   sampleRecords(),
	}
	buf, err := m.Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEDNS0RoundTrip(t *testing.T) {
	m := NewQuery(5, "big.example.", TypeTXT)
	m.SetEDNS0(4096)
	if size, ok := m.EDNS0(); !ok || size != 4096 {
		t.Fatalf("EDNS0() = %d, %v", size, ok)
	}
	b, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(b)
	if err != nil {
		t.Fatal(err)
	}
	if size, ok := got.EDNS0(); !ok || size != 4096 {
		t.Fatalf("EDNS0 after round trip = %d, %v", size, ok)
	}
	// Replacing an existing OPT keeps exactly one.
	got.SetEDNS0(1232)
	opts := 0
	for _, r := range got.Additional {
		if r.Type == TypeOPT {
			opts++
		}
	}
	if opts != 1 {
		t.Fatalf("OPT count after replace = %d", opts)
	}
	if size, _ := got.EDNS0(); size != 1232 {
		t.Fatalf("replaced size = %d", size)
	}
}

func TestEDNS0ClampsTinySizes(t *testing.T) {
	m := NewQuery(5, "x.example.", TypeA)
	m.SetEDNS0(100)
	if size, ok := m.EDNS0(); !ok || size != 512 {
		t.Fatalf("clamped size = %d, %v", size, ok)
	}
}
