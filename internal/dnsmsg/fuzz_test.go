package dnsmsg

import (
	"reflect"
	"testing"
)

// Native fuzz targets. `go test` runs them over the seed corpus; use
// `go test -fuzz=FuzzUnpack ./internal/dnsmsg` for an open-ended session.

func FuzzUnpack(f *testing.F) {
	// Seed with valid packed messages of every record type plus structural
	// edge cases.
	m := &Message{
		Header:    Header{ID: 1, Response: true, Authoritative: true},
		Questions: []Question{{Name: "www.example.com.", Type: TypeA, Class: ClassIN}},
		Answers:   sampleRecords(),
	}
	if b, err := m.Pack(); err == nil {
		f.Add(b)
	}
	q := NewQuery(7, "fuzz.example.", TypeSOA)
	q.SetEDNS0(4096)
	if b, err := q.Pack(); err == nil {
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 1})
	f.Add(make([]byte, 12))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		// Anything that parses must re-pack, and the repacked form must
		// parse back to the same message (canonicalization fixpoint).
		b2, err := m.Pack()
		if err != nil {
			// Unpack may surface names Pack rejects (e.g. >255 octets built
			// from compression); that asymmetry is acceptable.
			return
		}
		m2, err := Unpack(b2)
		if err != nil {
			t.Fatalf("repacked message does not parse: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("pack/unpack not a fixpoint:\n%+v\n%+v", m, m2)
		}
	})
}

func FuzzReadName(f *testing.F) {
	f.Add([]byte{3, 'w', 'w', 'w', 0}, 0)
	f.Add([]byte{0xC0, 0}, 0)
	f.Add([]byte{63}, 0)
	f.Fuzz(func(t *testing.T, buf []byte, off int) {
		if off < 0 || off > len(buf) {
			return
		}
		name, next, err := readName(buf, off)
		if err != nil {
			return
		}
		if next < 0 || next > len(buf) {
			t.Fatalf("next offset %d out of range (len %d)", next, len(buf))
		}
		if name == "" {
			t.Fatal("empty name without error")
		}
	})
}
