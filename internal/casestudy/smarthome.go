package casestudy

import (
	"context"
	"fmt"

	"depscope/internal/dnsmsg"
	"depscope/internal/dnszone"
	"depscope/internal/measure"
	"depscope/internal/resolver"
)

// Company models one smart-home vendor (§6.2). The cloud dimension and
// local fail-over are company attributes as in the paper's manual analysis;
// the DNS dimension is materialized into zones and measured by the regular
// pipeline.
type Company struct {
	Name   string
	Domain string
	// DNSProviders lists third-party DNS providers (domains); empty plus
	// PrivateDNS means a fully private deployment.
	DNSProviders []string
	PrivateDNS   bool
	// CloudProvider is the third-party cloud, "" for a private cloud.
	CloudProvider string
	// LocalFailover reports whether devices keep working without the cloud.
	LocalFailover bool
}

// Companies returns the 23-company population of §6.2, with the attributes
// the paper reports: 3 private-DNS vendors (Philips Hue, Apple HomeKit,
// Amazon Alexa), 1 redundantly provisioned, 13 of the remaining single-third
// vendors with local fail-over (leaving 8 critically dependent); 15 on a
// third-party cloud (11 of them Amazon), 5 of those without local fail-over.
func Companies() []Company {
	aws := "awsdns.net"
	return []Company{
		// Private DNS.
		{Name: "Philips Hue", Domain: "philips-hue.example", PrivateDNS: true, CloudProvider: "", LocalFailover: true},
		{Name: "Apple HomeKit", Domain: "apple-homekit.example", PrivateDNS: true, CloudProvider: "", LocalFailover: true},
		{Name: "Amazon Alexa", Domain: "amazon-alexa.example", PrivateDNS: true, CloudProvider: "", LocalFailover: false},
		// Redundant DNS.
		{Name: "Samsung SmartThings", Domain: "smartthings.example", DNSProviders: []string{aws, "ultradns.net"}, CloudProvider: "amazon", LocalFailover: true},
		// Critically dependent on DNS, no local fail-over (8 companies;
		// the paper names Logitech Harmony, Yonomi, Brilliant Tech, IFTTT,
		// Petnet, Ecobee, Ring Security).
		{Name: "Logitech Harmony", Domain: "logitech-harmony.example", DNSProviders: []string{aws}, CloudProvider: "amazon", LocalFailover: false},
		{Name: "Yonomi", Domain: "yonomi.example", DNSProviders: []string{aws}, CloudProvider: "private-colo", LocalFailover: false},
		{Name: "Brilliant Tech", Domain: "brilliant-tech.example", DNSProviders: []string{aws}, CloudProvider: "", LocalFailover: false},
		{Name: "IFTTT", Domain: "ifttt.example", DNSProviders: []string{aws}, CloudProvider: "amazon", LocalFailover: false},
		{Name: "Petnet", Domain: "petnet.example", DNSProviders: []string{aws}, CloudProvider: "amazon", LocalFailover: false},
		{Name: "Ecobee", Domain: "ecobee.example", DNSProviders: []string{aws}, CloudProvider: "amazon", LocalFailover: false},
		{Name: "Ring Security", Domain: "ring-security.example", DNSProviders: []string{aws}, CloudProvider: "amazon", LocalFailover: false},
		{Name: "Wink", Domain: "wink.example", DNSProviders: []string{"dynect.net"}, CloudProvider: "", LocalFailover: false},
		// Single third-party DNS with local fail-over (not critical).
		{Name: "Lifx", Domain: "lifx.example", DNSProviders: []string{aws}, CloudProvider: "amazon", LocalFailover: true},
		{Name: "TP-Link Kasa", Domain: "tplink-kasa.example", DNSProviders: []string{aws}, CloudProvider: "amazon", LocalFailover: true},
		{Name: "Wemo", Domain: "wemo.example", DNSProviders: []string{aws}, CloudProvider: "amazon", LocalFailover: true},
		{Name: "Nanoleaf", Domain: "nanoleaf.example", DNSProviders: []string{aws}, CloudProvider: "amazon", LocalFailover: true},
		{Name: "Sengled", Domain: "sengled.example", DNSProviders: []string{aws}, CloudProvider: "amazon", LocalFailover: true},
		{Name: "Wyze", Domain: "wyze.example", DNSProviders: []string{"cloudflare.com"}, CloudProvider: "google", LocalFailover: true},
		{Name: "Tuya", Domain: "tuya.example", DNSProviders: []string{"dnspod.net"}, CloudProvider: "tencent", LocalFailover: true},
		{Name: "Shelly", Domain: "shelly.example", DNSProviders: []string{"cloudflare.com"}, CloudProvider: "", LocalFailover: true},
		{Name: "Hubitat", Domain: "hubitat.example", DNSProviders: []string{"cloudflare.com"}, CloudProvider: "", LocalFailover: true},
		{Name: "Home Assistant Cloud", Domain: "ha-cloud.example", DNSProviders: []string{"cloudflare.com"}, CloudProvider: "azure", LocalFailover: true},
		{Name: "Aqara", Domain: "aqara.example", DNSProviders: []string{"alibabadns.com"}, CloudProvider: "alibaba", LocalFailover: true},
	}
}

// SmartHomeReport is Table 11.
type SmartHomeReport struct {
	Companies int
	// DNS row (measured through the pipeline).
	DNSThird, DNSRedundant, DNSCritical int
	// Cloud row (attribute-based, as in the paper).
	CloudThird, CloudRedundant, CloudCritical int
	// Amazon's footprint (§6.2: 11 of 15 third-party-cloud companies use
	// Amazon; 13 use Amazon DNS).
	AmazonCloud, AmazonDNS int
}

// SmartHome measures the smart-home population.
func SmartHome(ctx context.Context, companies []Company) (*SmartHomeReport, error) {
	if companies == nil {
		companies = Companies()
	}
	store := dnszone.NewStore()
	soa := func(domain string) dnsmsg.SOAData {
		return dnsmsg.SOAData{
			MName: "ns1." + domain + ".", RName: "hostmaster." + domain + ".",
			Serial: 1, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
		}
	}
	providers := map[string]bool{}
	var sites []string
	for _, c := range companies {
		z := dnszone.NewZone(c.Domain+".", soa(c.Domain))
		if c.PrivateDNS || len(c.DNSProviders) == 0 {
			z.MustAdd(dnsmsg.Record{Name: c.Domain + ".", Type: dnsmsg.TypeNS, TTL: 3600, Target: "ns1." + c.Domain + "."})
			z.MustAdd(dnsmsg.Record{Name: "ns1." + c.Domain + ".", Type: dnsmsg.TypeA, TTL: 3600, IP: []byte{192, 0, 2, 53}})
		}
		for _, p := range c.DNSProviders {
			providers[p] = true
			z.MustAdd(dnsmsg.Record{Name: c.Domain + ".", Type: dnsmsg.TypeNS, TTL: 3600, Target: "ns1." + p + "."})
			z.MustAdd(dnsmsg.Record{Name: c.Domain + ".", Type: dnsmsg.TypeNS, TTL: 3600, Target: "ns2." + p + "."})
		}
		store.AddZone(z)
		sites = append(sites, c.Domain)
	}
	for p := range providers {
		z := dnszone.NewZone(p+".", dnsmsg.SOAData{
			MName: "ns1." + p + ".", RName: "ops." + p + ".",
			Serial: 1, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
		})
		z.MustAdd(dnsmsg.Record{Name: "ns1." + p + ".", Type: dnsmsg.TypeA, TTL: 3600, IP: []byte{203, 0, 113, 1}})
		z.MustAdd(dnsmsg.Record{Name: "ns2." + p + ".", Type: dnsmsg.TypeA, TTL: 3600, IP: []byte{203, 0, 113, 2}})
		store.AddZone(z)
	}

	res, err := measure.Run(ctx, sites, measure.Config{
		Resolver:               resolver.New(resolver.ZoneDirect{Store: store}),
		ConcentrationThreshold: 3,
	})
	if err != nil {
		return nil, err
	}

	rep := &SmartHomeReport{Companies: len(companies)}
	for i, c := range companies {
		sr := res.Sites[i]
		if sr.DNS.Class.UsesThird() {
			rep.DNSThird++
		}
		if sr.DNS.Class.Redundant() {
			rep.DNSRedundant++
		}
		// A DNS outage only takes the product down when there is no local
		// fail-over (§6.2's criticality refinement).
		if sr.DNS.Class.Critical() && !c.LocalFailover {
			rep.DNSCritical++
		}
		for _, p := range c.DNSProviders {
			if p == "awsdns.net" {
				rep.AmazonDNS++
			}
		}
		if c.CloudProvider != "" && c.CloudProvider != "private-colo" {
			rep.CloudThird++
			if !c.LocalFailover {
				rep.CloudCritical++
			}
			if c.CloudProvider == "amazon" {
				rep.AmazonCloud++
			}
		}
	}
	return rep, nil
}

// Render formats Table 11.
func (r *SmartHomeReport) Render() string {
	pct := func(n int) float64 { return 100 * float64(n) / float64(r.Companies) }
	return fmt.Sprintf(`Table 11: smart-home companies (%d)
Service  3rd-Party Dep.   Redundancy    Critical Dependency
DNS      %2d (%4.1f%%)      %2d (%4.1f%%)    %2d (%4.1f%%)
Cloud    %2d (%4.1f%%)      %2d (%4.1f%%)    %2d (%4.1f%%)
Amazon: cloud provider for %d companies, DNS for %d
`,
		r.Companies,
		r.DNSThird, pct(r.DNSThird), r.DNSRedundant, pct(r.DNSRedundant), r.DNSCritical, pct(r.DNSCritical),
		r.CloudThird, pct(r.CloudThird), r.CloudRedundant, pct(r.CloudRedundant), r.CloudCritical, pct(r.CloudCritical),
		r.AmazonCloud, r.AmazonDNS)
}
