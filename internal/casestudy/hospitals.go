// Package casestudy reproduces the paper's §6 sector case studies: the
// top-200 US hospitals (Table 10) and 23 smart-home companies (Table 11).
//
// The hospital study reuses the full machinery — a sector-calibrated
// synthetic population is generated, materialized and pushed through the
// measurement pipeline. The smart-home study models the paper's
// company-level attributes (cloud use, local fail-over) and measures the
// DNS part through the same pipeline.
package casestudy

import (
	"context"
	"fmt"

	"depscope/internal/ecosystem"
	"depscope/internal/measure"
)

// HospitalReport is Table 10 plus the concentration notes of §6.1.
type HospitalReport struct {
	Hospitals int
	// Per-service counts over all hospitals.
	DNSThird, DNSCritical int
	CDNThird, CDNCritical int
	CAThird, CACritical   int
	StaplingFrac          float64
	// TopDNSProvider / TopCDNProvider and their site shares.
	TopDNSProvider string
	TopDNSShare    float64
	TopCDNProvider string
	TopCDNShare    float64
}

// hospitalCalibration adapts the generator tables to the hospital sector's
// aggregates (§6.1): 51% third-party DNS (46% critical, little redundancy),
// 16% CDN use (all third-party and critical), 100% HTTPS with 78% critical
// CA dependency (22% stapling), GoDaddy the top DNS provider (13%), Akamai
// the top CDN (7% of hospitals).
func hospitalCalibration() *ecosystem.Calibration {
	cal := ecosystem.DefaultCalibration()
	flat := func(v float64) [ecosystem.NumBands]float64 {
		return [ecosystem.NumBands]float64{v, v, v, v}
	}
	dns := cal.DNS[ecosystem.Y2020]
	dns.UncharacterizedFrac = 0
	for b := 0; b < ecosystem.NumBands; b++ {
		dns.Mix[b] = ecosystem.ModeMix{Private: 0.49, Single: 0.46, Multi: 0.03, Mixed: 0.02}
	}
	dns.ImpactShares = []ecosystem.Share{
		{Provider: "GoDaddy", Weight: 13}, {Provider: "AWS DNS", Weight: 6},
		{Provider: "Cloudflare", Weight: 5}, {Provider: "Azure DNS", Weight: 4},
		{Provider: "Network Solutions DNS", Weight: 4}, {Provider: "Rackspace DNS", Weight: 3},
		{Provider: "IONOS DNS", Weight: 3}, {Provider: "Register.com DNS", Weight: 3},
		{Provider: "Hover DNS", Weight: 2}, {Provider: "easyDNS", Weight: 2},
	}
	dns.RedundantShares = dns.ImpactShares
	dns.Band0Redundant = nil
	dns.SOAEqualFrac = 0
	dns.VanityNSFrac = 0
	dns.AliasRedundantFrac = 0
	dns.TailShare = 1.0

	cdn := cal.CDN[ecosystem.Y2020]
	cdn.UseFrac = flat(0.16)
	cdn.PrivateOnlyFrac = 0
	cdn.CriticalFrac = flat(1.0)
	cdn.Shares = []ecosystem.Share{
		{Provider: "Akamai", Weight: 44}, {Provider: "Amazon CloudFront", Weight: 22},
		{Provider: "Cloudflare CDN", Weight: 16}, {Provider: "Incapsula", Weight: 10},
		{Provider: "Fastly", Weight: 8},
	}
	cdn.Band0Shares = nil
	cdn.PrivateAliasFrac = 0
	cdn.ForeignSOAFrac = 0
	cdn.PrivateCDNThirdDNSFrac = 0
	cdn.TailShare = 0

	ca := cal.CA[ecosystem.Y2020]
	ca.HTTPSFrac = flat(1.0)
	ca.PrivateCAFrac = flat(0.0)
	ca.StapleRate = map[string]float64{}
	ca.DefaultStapleRate = 0.22
	ca.PrivateCAThirdCDNFrac = 0
	ca.PrivateCAThirdDNSFrac = 0
	return cal
}

// Hospitals generates the hospital population, measures it and produces
// Table 10.
func Hospitals(ctx context.Context, seed int64) (*HospitalReport, error) {
	const n = 200
	u, err := ecosystem.Generate(ecosystem.Options{
		Scale:       n,
		Seed:        seed,
		Calibration: hospitalCalibration(),
	})
	if err != nil {
		return nil, err
	}
	w := ecosystem.Materialize(u, ecosystem.Y2020)
	res, err := measure.Run(ctx, w.Sites, measure.Config{
		Resolver: w.NewResolver(),
		Certs:    w.Certs,
		Pages:    w,
		CDNMap:   measure.CDNMap(w.CNAMEToCDN),
		// The sector population is small; the concentration rule's absolute
		// threshold is scaled with it (50 per 100K sites of the paper's
		// main study is far above any provider here).
		ConcentrationThreshold: 5,
	})
	if err != nil {
		return nil, err
	}

	rep := &HospitalReport{Hospitals: len(res.Sites)}
	dnsUsers := make(map[string]int)
	cdnUsers := make(map[string]int)
	stapled, https := 0, 0
	for i := range res.Sites {
		sr := &res.Sites[i]
		if sr.DNS.Class.UsesThird() {
			rep.DNSThird++
			for _, p := range sr.DNS.Providers {
				dnsUsers[p]++
			}
		}
		if sr.DNS.Class.Critical() {
			rep.DNSCritical++
		}
		if sr.CDN.UsesCDN && sr.CDN.Class.UsesThird() {
			rep.CDNThird++
			for _, p := range sr.CDN.Third {
				cdnUsers[p]++
			}
		}
		if sr.CDN.Class.Critical() {
			rep.CDNCritical++
		}
		if sr.CA.HTTPS {
			https++
			if sr.CA.Third {
				rep.CAThird++
				if !sr.CA.Stapled {
					rep.CACritical++
				}
			}
			if sr.CA.Stapled {
				stapled++
			}
		}
	}
	if https > 0 {
		rep.StaplingFrac = float64(stapled) / float64(https)
	}
	rep.TopDNSProvider, rep.TopDNSShare = topOf(dnsUsers, len(res.Sites))
	rep.TopCDNProvider, rep.TopCDNShare = topOf(cdnUsers, len(res.Sites))
	return rep, nil
}

func topOf(m map[string]int, total int) (string, float64) {
	best, n := "", 0
	for k, v := range m {
		if v > n || (v == n && k < best) {
			best, n = k, v
		}
	}
	if total == 0 {
		return "", 0
	}
	return best, float64(n) / float64(total)
}

// Render formats Table 10.
func (r *HospitalReport) Render() string {
	pct := func(n int) float64 { return 100 * float64(n) / float64(r.Hospitals) }
	return fmt.Sprintf(`Table 10: top-%d US hospitals
Service   Third-Party Dependency   Critical Dependency
DNS       %3d (%4.1f%%)              %3d (%4.1f%%)
CDN       %3d (%4.1f%%)              %3d (%4.1f%%)
CA        %3d (%4.1f%%)              %3d (%4.1f%%)
OCSP stapling: %.0f%% of hospitals
Top DNS provider: %s (%.0f%%); top CDN: %s (%.0f%%)
`,
		r.Hospitals,
		r.DNSThird, pct(r.DNSThird), r.DNSCritical, pct(r.DNSCritical),
		r.CDNThird, pct(r.CDNThird), r.CDNCritical, pct(r.CDNCritical),
		r.CAThird, pct(r.CAThird), r.CACritical, pct(r.CACritical),
		100*r.StaplingFrac,
		r.TopDNSProvider, 100*r.TopDNSShare, r.TopCDNProvider, 100*r.TopCDNShare)
}
