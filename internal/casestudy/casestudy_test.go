package casestudy

import (
	"context"
	"strings"
	"testing"
)

func TestHospitalsTable10(t *testing.T) {
	rep, err := Hospitals(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hospitals != 200 {
		t.Fatalf("hospitals = %d", rep.Hospitals)
	}
	within := func(name string, got, want, tol int) {
		t.Helper()
		if got < want-tol || got > want+tol {
			t.Errorf("%s = %d, want %d ± %d", name, got, want, tol)
		}
	}
	// Paper Table 10: DNS 102/92, CDN 32/32, CA 200/156.
	within("DNS third", rep.DNSThird, 102, 8)
	within("DNS critical", rep.DNSCritical, 92, 8)
	within("CDN third", rep.CDNThird, 32, 4)
	if rep.CDNCritical != rep.CDNThird {
		t.Errorf("all hospital CDN users should be critical: %d vs %d", rep.CDNCritical, rep.CDNThird)
	}
	within("CA third", rep.CAThird, 200, 2)
	within("CA critical", rep.CACritical, 156, 10)
	if rep.StaplingFrac < 0.16 || rep.StaplingFrac > 0.28 {
		t.Errorf("stapling = %.2f, want ~0.22", rep.StaplingFrac)
	}
	if rep.TopDNSProvider != "domaincontrol.com" {
		t.Errorf("top DNS provider = %q, want domaincontrol.com (GoDaddy)", rep.TopDNSProvider)
	}
	if rep.TopCDNProvider != "Akamai" {
		t.Errorf("top CDN = %q, want Akamai", rep.TopCDNProvider)
	}
	if rep.TopCDNShare < 0.05 || rep.TopCDNShare > 0.09 {
		t.Errorf("Akamai share = %.2f, want ~0.07", rep.TopCDNShare)
	}
	out := rep.Render()
	if !strings.Contains(out, "Table 10") || !strings.Contains(out, "Akamai") {
		t.Errorf("render output incomplete:\n%s", out)
	}
}

func TestSmartHomeTable11(t *testing.T) {
	rep, err := SmartHome(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 11: 23 companies; DNS 21 third (91.3%), 1 redundant,
	// 8 critical (34.7%); cloud 15 third (65.2%), 0 redundant, 5 critical.
	if rep.Companies != 23 {
		t.Fatalf("companies = %d", rep.Companies)
	}
	if rep.DNSThird != 20 && rep.DNSThird != 21 {
		t.Errorf("DNS third = %d, want ~21", rep.DNSThird)
	}
	if rep.DNSRedundant != 1 {
		t.Errorf("DNS redundant = %d, want 1", rep.DNSRedundant)
	}
	if rep.DNSCritical != 8 {
		t.Errorf("DNS critical = %d, want 8", rep.DNSCritical)
	}
	if rep.CloudThird != 15 {
		t.Errorf("cloud third = %d, want 15", rep.CloudThird)
	}
	if rep.CloudCritical != 5 {
		t.Errorf("cloud critical = %d, want 5", rep.CloudCritical)
	}
	if rep.AmazonCloud != 11 {
		t.Errorf("Amazon cloud users = %d, want 11", rep.AmazonCloud)
	}
	if rep.AmazonDNS != 13 {
		t.Errorf("Amazon DNS users = %d, want 13", rep.AmazonDNS)
	}
	out := rep.Render()
	if !strings.Contains(out, "Table 11") {
		t.Errorf("render output incomplete:\n%s", out)
	}
}

func TestSmartHomeCustomPopulation(t *testing.T) {
	rep, err := SmartHome(context.Background(), []Company{
		{Name: "A", Domain: "a.example", PrivateDNS: true, LocalFailover: true},
		{Name: "B", Domain: "b.example", DNSProviders: []string{"awsdns.net"}, CloudProvider: "amazon"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Companies != 2 || rep.DNSThird != 1 || rep.DNSCritical != 1 || rep.CloudCritical != 1 {
		t.Errorf("report = %+v", rep)
	}
}
