package dnszone

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"depscope/internal/dnsmsg"
)

// Zone-file support: a reader and writer for the RFC 1035 master-file
// subset the simulator uses (SOA, NS, A, AAAA, CNAME, MX, TXT; $ORIGIN and
// $TTL directives; relative names and the @ origin shorthand). It lets
// cmd/depserver load hand-written zones and makes generated worlds
// exportable for inspection with standard tooling.

// ParseZone reads one zone in master-file syntax. The zone's origin is
// taken from the $ORIGIN directive or, if absent, from the owner of the SOA
// record. The SOA record is mandatory.
func ParseZone(r io.Reader) (*Zone, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	origin := ""
	defaultTTL := uint32(3600)
	lastOwner := ""
	var records []dnsmsg.Record
	var soa *dnsmsg.Record
	lineNo := 0

	for sc.Scan() {
		lineNo++
		line := stripComment(sc.Text())
		if strings.TrimSpace(line) == "" {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToUpper(fields[0]) {
		case "$ORIGIN":
			if len(fields) != 2 {
				return nil, fmt.Errorf("dnszone: line %d: $ORIGIN needs one argument", lineNo)
			}
			origin = dnsmsg.CanonicalName(fields[1])
			continue
		case "$TTL":
			if len(fields) != 2 {
				return nil, fmt.Errorf("dnszone: line %d: $TTL needs one argument", lineNo)
			}
			v, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dnszone: line %d: bad $TTL: %v", lineNo, err)
			}
			defaultTTL = uint32(v)
			continue
		}

		rec, owner, err := parseRecordLine(line, origin, lastOwner, defaultTTL)
		if err != nil {
			return nil, fmt.Errorf("dnszone: line %d: %w", lineNo, err)
		}
		lastOwner = owner
		if rec.Type == dnsmsg.TypeSOA {
			if soa != nil {
				return nil, fmt.Errorf("dnszone: line %d: duplicate SOA", lineNo)
			}
			soa = &rec
			if origin == "" {
				origin = rec.Name
			}
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if soa == nil {
		return nil, fmt.Errorf("dnszone: zone has no SOA record")
	}
	if origin == "" {
		origin = soa.Name
	}
	z := NewZone(origin, *soa.SOA)
	for _, rec := range records {
		if err := z.Add(rec); err != nil {
			return nil, err
		}
	}
	return z, nil
}

func stripComment(line string) string {
	// Comments start at an unquoted semicolon.
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inQuote = !inQuote
		case ';':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}

// parseRecordLine parses "owner [ttl] [IN] TYPE rdata...". A line starting
// with whitespace inherits the previous owner.
func parseRecordLine(line, origin, lastOwner string, defaultTTL uint32) (dnsmsg.Record, string, error) {
	startsWithSpace := line[0] == ' ' || line[0] == '\t'
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return dnsmsg.Record{}, "", fmt.Errorf("short record line")
	}
	owner := ""
	if startsWithSpace {
		if lastOwner == "" {
			return dnsmsg.Record{}, "", fmt.Errorf("record with inherited owner before any owner")
		}
		owner = lastOwner
	} else {
		owner = absName(fields[0], origin)
		fields = fields[1:]
	}

	ttl := defaultTTL
	if len(fields) > 0 {
		if v, err := strconv.ParseUint(fields[0], 10, 32); err == nil {
			ttl = uint32(v)
			fields = fields[1:]
		}
	}
	if len(fields) > 0 && strings.EqualFold(fields[0], "IN") {
		fields = fields[1:]
	}
	if len(fields) == 0 {
		return dnsmsg.Record{}, "", fmt.Errorf("record without type")
	}
	typ := strings.ToUpper(fields[0])
	rdata := fields[1:]

	rec := dnsmsg.Record{Name: owner, Class: dnsmsg.ClassIN, TTL: ttl}
	switch typ {
	case "A":
		if len(rdata) != 1 {
			return rec, "", fmt.Errorf("A needs one address")
		}
		ip, err := parseIPv4(rdata[0])
		if err != nil {
			return rec, "", err
		}
		rec.Type, rec.IP = dnsmsg.TypeA, ip
	case "AAAA":
		if len(rdata) != 1 {
			return rec, "", fmt.Errorf("AAAA needs one address")
		}
		ip, err := parseIPv6(rdata[0])
		if err != nil {
			return rec, "", err
		}
		rec.Type, rec.IP = dnsmsg.TypeAAAA, ip
	case "NS":
		if len(rdata) != 1 {
			return rec, "", fmt.Errorf("NS needs one target")
		}
		rec.Type, rec.Target = dnsmsg.TypeNS, absName(rdata[0], origin)
	case "CNAME":
		if len(rdata) != 1 {
			return rec, "", fmt.Errorf("CNAME needs one target")
		}
		rec.Type, rec.Target = dnsmsg.TypeCNAME, absName(rdata[0], origin)
	case "MX":
		if len(rdata) != 2 {
			return rec, "", fmt.Errorf("MX needs preference and exchange")
		}
		pref, err := strconv.ParseUint(rdata[0], 10, 16)
		if err != nil {
			return rec, "", fmt.Errorf("bad MX preference: %v", err)
		}
		rec.Type = dnsmsg.TypeMX
		rec.MX = &dnsmsg.MXData{Preference: uint16(pref), Exchange: absName(rdata[1], origin)}
	case "TXT":
		rec.Type = dnsmsg.TypeTXT
		raw := strings.TrimSpace(line[strings.Index(line, "TXT")+3:])
		rec.TXT = parseTXT(raw)
		if len(rec.TXT) == 0 {
			return rec, "", fmt.Errorf("TXT needs at least one string")
		}
	case "SOA":
		if len(rdata) != 7 {
			return rec, "", fmt.Errorf("SOA needs mname rname serial refresh retry expire minimum")
		}
		nums := make([]uint32, 5)
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseUint(rdata[2+i], 10, 32)
			if err != nil {
				return rec, "", fmt.Errorf("bad SOA field %d: %v", i, err)
			}
			nums[i] = uint32(v)
		}
		rec.Type = dnsmsg.TypeSOA
		rec.SOA = &dnsmsg.SOAData{
			MName: absName(rdata[0], origin), RName: absName(rdata[1], origin),
			Serial: nums[0], Refresh: nums[1], Retry: nums[2], Expire: nums[3], Minimum: nums[4],
		}
	default:
		return rec, "", fmt.Errorf("unsupported record type %q", typ)
	}
	return rec, owner, nil
}

// absName resolves a possibly-relative master-file name against the origin.
func absName(name, origin string) string {
	if name == "@" {
		return origin
	}
	if strings.HasSuffix(name, ".") {
		return dnsmsg.CanonicalName(name)
	}
	if origin == "" {
		return dnsmsg.CanonicalName(name)
	}
	return dnsmsg.CanonicalName(name + "." + strings.TrimSuffix(origin, "."))
}

func parseIPv4(s string) ([]byte, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return nil, fmt.Errorf("bad IPv4 address %q", s)
	}
	out := make([]byte, 4)
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return nil, fmt.Errorf("bad IPv4 address %q", s)
		}
		out[i] = byte(v)
	}
	return out, nil
}

func parseIPv6(s string) ([]byte, error) {
	// Minimal RFC 4291 parser: hex groups with one optional "::" gap.
	halves := strings.Split(s, "::")
	if len(halves) > 2 {
		return nil, fmt.Errorf("bad IPv6 address %q", s)
	}
	parse := func(part string) ([]byte, error) {
		if part == "" {
			return nil, nil
		}
		var out []byte
		for _, g := range strings.Split(part, ":") {
			v, err := strconv.ParseUint(g, 16, 16)
			if err != nil {
				return nil, fmt.Errorf("bad IPv6 group %q", g)
			}
			out = append(out, byte(v>>8), byte(v))
		}
		return out, nil
	}
	head, err := parse(halves[0])
	if err != nil {
		return nil, err
	}
	var tail []byte
	if len(halves) == 2 {
		if tail, err = parse(halves[1]); err != nil {
			return nil, err
		}
	} else if len(head) != 16 {
		return nil, fmt.Errorf("bad IPv6 address %q", s)
	}
	if len(head)+len(tail) > 16 {
		return nil, fmt.Errorf("bad IPv6 address %q", s)
	}
	out := make([]byte, 16)
	copy(out, head)
	copy(out[16-len(tail):], tail)
	return out, nil
}

// parseTXT splits quoted character-strings; unquoted text is one string.
func parseTXT(raw string) []string {
	var out []string
	i := 0
	for i < len(raw) {
		switch raw[i] {
		case ' ', '\t':
			i++
		case '"':
			end := strings.IndexByte(raw[i+1:], '"')
			if end < 0 {
				out = append(out, raw[i+1:])
				return out
			}
			out = append(out, raw[i+1:i+1+end])
			i += end + 2
		default:
			end := strings.IndexAny(raw[i:], " \t")
			if end < 0 {
				out = append(out, raw[i:])
				return out
			}
			out = append(out, raw[i:i+end])
			i += end
		}
	}
	return out
}

// WriteTo serializes the zone in master-file syntax, sorted by owner name
// with the apex first. It implements io.WriterTo.
func (z *Zone) WriteTo(w io.Writer) (int64, error) {
	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	if err := emit("$ORIGIN %s\n$TTL 3600\n", z.Origin); err != nil {
		return total, err
	}
	soa := z.SOA
	if err := emit("@ IN SOA %s %s %d %d %d %d %d\n",
		soa.MName, soa.RName, soa.Serial, soa.Refresh, soa.Retry, soa.Expire, soa.Minimum); err != nil {
		return total, err
	}

	names := z.Names()
	sort.SliceStable(names, func(i, j int) bool {
		if names[i] == z.Origin {
			return names[j] != z.Origin
		}
		if names[j] == z.Origin {
			return false
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		node, _ := z.lookupNode(name)
		types := make([]dnsmsg.Type, 0, len(node))
		for t := range node {
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, t := range types {
			for _, rec := range node[t] {
				if rec.Type == dnsmsg.TypeSOA {
					continue // already emitted at the top
				}
				line, err := recordLine(&rec)
				if err != nil {
					return total, err
				}
				if err := emit("%s\n", line); err != nil {
					return total, err
				}
			}
		}
	}
	return total, nil
}

func recordLine(r *dnsmsg.Record) (string, error) {
	prefix := fmt.Sprintf("%s %d IN", r.Name, r.TTL)
	switch r.Type {
	case dnsmsg.TypeA, dnsmsg.TypeAAAA:
		return fmt.Sprintf("%s %s %s", prefix, r.Type, ipText(r.IP)), nil
	case dnsmsg.TypeNS, dnsmsg.TypeCNAME:
		return fmt.Sprintf("%s %s %s", prefix, r.Type, r.Target), nil
	case dnsmsg.TypeMX:
		return fmt.Sprintf("%s MX %d %s", prefix, r.MX.Preference, r.MX.Exchange), nil
	case dnsmsg.TypeTXT:
		parts := make([]string, len(r.TXT))
		for i, s := range r.TXT {
			parts[i] = strconv.Quote(s)
		}
		return fmt.Sprintf("%s TXT %s", prefix, strings.Join(parts, " ")), nil
	}
	return "", fmt.Errorf("dnszone: cannot serialize record type %s", r.Type)
}

func ipText(b []byte) string {
	switch len(b) {
	case 4:
		return fmt.Sprintf("%d.%d.%d.%d", b[0], b[1], b[2], b[3])
	case 16:
		parts := make([]string, 8)
		for i := 0; i < 8; i++ {
			parts[i] = strconv.FormatUint(uint64(b[2*i])<<8|uint64(b[2*i+1]), 16)
		}
		return strings.Join(parts, ":")
	}
	return "?"
}
