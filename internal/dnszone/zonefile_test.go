package dnszone

import (
	"bytes"
	"strings"
	"testing"

	"depscope/internal/dnsmsg"
)

const sampleZone = `
$ORIGIN example.com.
$TTL 300
@ IN SOA ns1.dns-provider.net. hostmaster.example.com. 2020010101 7200 900 1209600 300
@ 86400 IN NS ns1.dns-provider.net.
@ 86400 IN NS ns2.dns-provider.net.
@ IN A 192.0.2.1
www IN CNAME edge-77.fastcdn.net. ; content rides the CDN
static 60 CNAME edge-78.fastcdn.net.
mail IN MX 10 mx1.example.com.
mx1 IN A 192.0.2.25
@ IN TXT "v=spf1 -all" "second string"
ipv6 IN AAAA 2001:db8::1
*.img IN A 192.0.2.9
`

func TestParseZone(t *testing.T) {
	z, err := ParseZone(strings.NewReader(sampleZone))
	if err != nil {
		t.Fatal(err)
	}
	if z.Origin != "example.com." {
		t.Fatalf("origin = %q", z.Origin)
	}
	if z.SOA.MName != "ns1.dns-provider.net." || z.SOA.Serial != 2020010101 {
		t.Fatalf("SOA = %+v", z.SOA)
	}

	s := NewStore()
	s.AddZone(z)

	r := s.Lookup("example.com.", dnsmsg.TypeNS)
	if len(r.Answers) != 2 || r.Answers[0].TTL != 86400 {
		t.Fatalf("NS answers: %+v", r.Answers)
	}
	r = s.Lookup("www.example.com.", dnsmsg.TypeCNAME)
	if len(r.Answers) != 1 || r.Answers[0].Target != "edge-77.fastcdn.net." {
		t.Fatalf("CNAME: %+v", r.Answers)
	}
	r = s.Lookup("static.example.com.", dnsmsg.TypeCNAME)
	if len(r.Answers) != 1 || r.Answers[0].TTL != 60 {
		t.Fatalf("static TTL: %+v", r.Answers)
	}
	r = s.Lookup("mail.example.com.", dnsmsg.TypeMX)
	if len(r.Answers) != 1 || r.Answers[0].MX.Exchange != "mx1.example.com." {
		t.Fatalf("MX: %+v", r.Answers)
	}
	r = s.Lookup("example.com.", dnsmsg.TypeTXT)
	if len(r.Answers) != 1 || len(r.Answers[0].TXT) != 2 || r.Answers[0].TXT[0] != "v=spf1 -all" {
		t.Fatalf("TXT: %+v", r.Answers)
	}
	r = s.Lookup("ipv6.example.com.", dnsmsg.TypeAAAA)
	want := append([]byte{0x20, 0x01, 0x0d, 0xb8}, make([]byte, 10)...)
	want = append(want, 0, 1)
	if len(r.Answers) != 1 || !bytes.Equal(r.Answers[0].IP, want) {
		t.Fatalf("AAAA: %+v", r.Answers)
	}
	r = s.Lookup("a.img.example.com.", dnsmsg.TypeA)
	if len(r.Answers) != 1 {
		t.Fatalf("wildcard: %+v", r.Answers)
	}
}

func TestParseZoneOriginFromSOA(t *testing.T) {
	z, err := ParseZone(strings.NewReader(
		"example.org. IN SOA ns1.example.org. admin.example.org. 1 2 3 4 5\n" +
			"example.org. IN NS ns1.example.org.\n"))
	if err != nil {
		t.Fatal(err)
	}
	if z.Origin != "example.org." {
		t.Fatalf("origin = %q", z.Origin)
	}
}

func TestParseZoneInheritedOwner(t *testing.T) {
	z, err := ParseZone(strings.NewReader(
		"$ORIGIN inh.test.\n" +
			"@ IN SOA ns1.inh.test. admin.inh.test. 1 2 3 4 5\n" +
			"host IN A 192.0.2.1\n" +
			"   IN A 192.0.2.2\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	s.AddZone(z)
	r := s.Lookup("host.inh.test.", dnsmsg.TypeA)
	if len(r.Answers) != 2 {
		t.Fatalf("inherited owner: %+v", r.Answers)
	}
}

func TestParseZoneErrors(t *testing.T) {
	cases := []struct{ name, zone string }{
		{"no SOA", "$ORIGIN x.test.\n@ IN NS ns1.x.test.\n"},
		{"dup SOA", "$ORIGIN x.test.\n@ IN SOA a. b. 1 2 3 4 5\n@ IN SOA a. b. 1 2 3 4 5\n"},
		{"bad A", "$ORIGIN x.test.\n@ IN SOA a. b. 1 2 3 4 5\n@ IN A not-an-ip\n"},
		{"bad type", "$ORIGIN x.test.\n@ IN SOA a. b. 1 2 3 4 5\n@ IN WKS whatever\n"},
		{"bad SOA arity", "$ORIGIN x.test.\n@ IN SOA a. b. 1 2 3\n"},
		{"bad TTL directive", "$TTL many\n"},
		{"inherit before owner", "$ORIGIN x.test.\n   IN A 192.0.2.1\n"},
		{"bad MX", "$ORIGIN x.test.\n@ IN SOA a. b. 1 2 3 4 5\n@ IN MX ten mx.x.test.\n"},
		{"out of zone", "$ORIGIN x.test.\n@ IN SOA a. b. 1 2 3 4 5\nelsewhere.org. IN A 192.0.2.1\n"},
	}
	for _, tc := range cases {
		if _, err := ParseZone(strings.NewReader(tc.zone)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestZoneRoundTrip(t *testing.T) {
	z1, err := ParseZone(strings.NewReader(sampleZone))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := z1.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	z2, err := ParseZone(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\nzone file was:\n%s", err, buf.String())
	}
	if z1.Origin != z2.Origin || *&z1.SOA != *&z2.SOA {
		t.Fatalf("origin/SOA round trip: %+v vs %+v", z1.SOA, z2.SOA)
	}
	n1, n2 := z1.Names(), z2.Names()
	if len(n1) != len(n2) {
		t.Fatalf("node count: %d vs %d\n%s", len(n1), len(n2), buf.String())
	}
	s1, s2 := NewStore(), NewStore()
	s1.AddZone(z1)
	s2.AddZone(z2)
	for _, name := range n1 {
		for _, typ := range []dnsmsg.Type{dnsmsg.TypeA, dnsmsg.TypeAAAA, dnsmsg.TypeNS, dnsmsg.TypeCNAME, dnsmsg.TypeMX, dnsmsg.TypeTXT} {
			r1 := s1.Lookup(name, typ)
			r2 := s2.Lookup(name, typ)
			if len(r1.Answers) != len(r2.Answers) {
				t.Fatalf("%s %s: %d vs %d answers", name, typ, len(r1.Answers), len(r2.Answers))
			}
		}
	}
}

func TestIPv6ParseForms(t *testing.T) {
	good := []string{"::1", "2001:db8::1", "2001:db8:0:0:0:0:0:1", "::", "fe80::"}
	for _, s := range good {
		if _, err := parseIPv6(s); err != nil {
			t.Errorf("parseIPv6(%q): %v", s, err)
		}
	}
	bad := []string{"1::2::3", "2001:db8", "g::1", "1:2:3:4:5:6:7:8:9"}
	for _, s := range bad {
		if _, err := parseIPv6(s); err == nil {
			t.Errorf("parseIPv6(%q) accepted", s)
		}
	}
}

func TestStripComment(t *testing.T) {
	tests := []struct{ in, want string }{
		{`@ IN A 1.2.3.4 ; comment`, `@ IN A 1.2.3.4 `},
		{`@ IN TXT "a;b" ; real comment`, `@ IN TXT "a;b" `},
		{`no comment`, `no comment`},
	}
	for _, tt := range tests {
		if got := stripComment(tt.in); got != tt.want {
			t.Errorf("stripComment(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestGeneratedZoneExport(t *testing.T) {
	// A materialized zone from the main store must survive export/import.
	z := NewZone("roundtrip.test.", dnsmsg.SOAData{
		MName: "ns1.provider.net.", RName: "hostmaster.roundtrip.test.",
		Serial: 1, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
	})
	z.MustAdd(dnsmsg.Record{Name: "roundtrip.test.", Type: dnsmsg.TypeNS, TTL: 86400, Target: "ns1.provider.net."})
	z.MustAdd(dnsmsg.Record{Name: "www.roundtrip.test.", Type: dnsmsg.TypeCNAME, TTL: 300, Target: "e.cdn.net."})
	var buf bytes.Buffer
	if _, err := z.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseZone(&buf); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
}
