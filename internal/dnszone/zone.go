// Package dnszone provides an authoritative DNS data store: zones holding
// resource-record sets, with RFC 1034 lookup semantics (exact match, CNAME
// indirection, wildcard synthesis, NODATA vs NXDOMAIN distinction).
//
// In this reproduction the store plays the role of "the authoritative DNS of
// the Internet": the ecosystem generator emits one zone per registrable
// domain (websites, DNS providers, CDNs, CA infrastructure) and the
// measurement pipeline interrogates the store either over real UDP/TCP via
// internal/dnsserver or in-process via resolver.ZoneDirect.
package dnszone

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"depscope/internal/dnsmsg"
)

// Zone is a single zone of authority rooted at Origin.
type Zone struct {
	// Origin is the zone apex, canonical form ("example.com.").
	Origin string
	// SOA is the zone's start-of-authority record data.
	SOA dnsmsg.SOAData

	mu    sync.RWMutex
	nodes map[string]map[dnsmsg.Type][]dnsmsg.Record

	// soaRec and soaAuth are the prebuilt apex SOA record and a one-record
	// authority section wrapping it, shared by every NXDOMAIN/NODATA result
	// this zone produces. Lookup results are read-only by convention, so the
	// sharing is invisible to callers and saves two allocations per miss.
	soaRec  dnsmsg.Record
	soaAuth []dnsmsg.Record
}

// NewZone creates a zone rooted at origin with the given SOA data. The SOA
// record itself is installed at the apex.
func NewZone(origin string, soa dnsmsg.SOAData) *Zone {
	z := &Zone{
		Origin: dnsmsg.CanonicalName(origin),
		SOA:    soa,
		nodes:  make(map[string]map[dnsmsg.Type][]dnsmsg.Record),
	}
	z.soaRec = dnsmsg.Record{
		Name: z.Origin, Type: dnsmsg.TypeSOA, Class: dnsmsg.ClassIN, TTL: 3600,
		SOA: &z.SOA,
	}
	z.soaAuth = []dnsmsg.Record{z.soaRec}
	z.Add(z.soaRec)
	return z
}

// Add installs a record in the zone. The record name must be at or below the
// zone origin; out-of-bailiwick records are rejected.
func (z *Zone) Add(r dnsmsg.Record) error {
	name := dnsmsg.CanonicalName(r.Name)
	if !InBailiwick(name, z.Origin) {
		return fmt.Errorf("dnszone: %s is outside zone %s", name, z.Origin)
	}
	r.Name = name
	if r.Class == 0 {
		r.Class = dnsmsg.ClassIN
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	types := z.nodes[name]
	if types == nil {
		types = make(map[dnsmsg.Type][]dnsmsg.Record)
		z.nodes[name] = types
	}
	types[r.Type] = append(types[r.Type], r)
	return nil
}

// MustAdd is Add that panics on error, for generator code building zones
// from trusted input.
func (z *Zone) MustAdd(r dnsmsg.Record) {
	if err := z.Add(r); err != nil {
		panic(err)
	}
}

// SOARecord returns the apex SOA as a record. The record's SOA pointer is
// shared with the zone; callers must treat it as read-only.
func (z *Zone) SOARecord() dnsmsg.Record {
	if z.soaRec.SOA != nil {
		return z.soaRec
	}
	// Zero-value zones (not built through NewZone) fall back to a fresh copy.
	soa := z.SOA
	return dnsmsg.Record{
		Name: z.Origin, Type: dnsmsg.TypeSOA, Class: dnsmsg.ClassIN, TTL: 3600,
		SOA: &soa,
	}
}

// soaAuthority returns the shared one-record authority section holding the
// apex SOA, allocating only for zones not built through NewZone.
func (z *Zone) soaAuthority() []dnsmsg.Record {
	if z.soaAuth != nil {
		return z.soaAuth
	}
	return []dnsmsg.Record{z.SOARecord()}
}

// lookupNode returns the record set of the node for qname, synthesizing from
// a wildcard ("*.origin") when the exact node is absent. The second result
// reports whether the name exists at all (for NXDOMAIN vs NODATA).
func (z *Zone) lookupNode(qname string) (map[dnsmsg.Type][]dnsmsg.Record, bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	if types, ok := z.nodes[qname]; ok {
		return types, true
	}
	// Wildcard synthesis: replace the leftmost label(s) with "*" walking up.
	// The candidate "*.<rest>" keys are assembled in a stack scratch buffer
	// and probed with the compiler's alloc-free map[string] byte-slice index,
	// so a miss costs no garbage (the seed split qname into fresh labels).
	var scratch [64]byte
	key := scratch[:0]
	rest := qname
	for {
		idx := strings.IndexByte(rest, '.')
		if idx < 0 || idx == len(rest)-1 {
			break
		}
		rest = rest[idx+1:]
		// "*.<rest>" is in bailiwick exactly when rest is.
		if !InBailiwick(rest, z.Origin) {
			break
		}
		key = append(key[:0], '*', '.')
		key = append(key, rest...)
		if types, ok := z.nodes[string(key)]; ok {
			// Synthesize records at qname.
			out := make(map[dnsmsg.Type][]dnsmsg.Record, len(types))
			for t, rs := range types {
				rs2 := make([]dnsmsg.Record, len(rs))
				for j, r := range rs {
					r.Name = qname
					rs2[j] = r
				}
				out[t] = rs2
			}
			return out, true
		}
	}
	return nil, false
}

// AllRecords returns every record of the zone in transfer order: the apex
// SOA first, then all other records sorted by owner name and type (the
// payload of an AXFR zone transfer, RFC 5936).
func (z *Zone) AllRecords() []dnsmsg.Record {
	out := []dnsmsg.Record{z.SOARecord()}
	for _, name := range z.Names() {
		node, _ := z.lookupNode(name)
		types := make([]dnsmsg.Type, 0, len(node))
		for t := range node {
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, t := range types {
			for _, r := range node[t] {
				if r.Type == dnsmsg.TypeSOA {
					continue
				}
				out = append(out, r)
			}
		}
	}
	return out
}

// Names returns all node names in the zone, sorted, mainly for tests and
// zone dumps.
func (z *Zone) Names() []string {
	z.mu.RLock()
	defer z.mu.RUnlock()
	names := make([]string, 0, len(z.nodes))
	for n := range z.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// InBailiwick reports whether name is at or below origin (both canonical).
func InBailiwick(name, origin string) bool {
	if origin == "." || name == origin {
		return true
	}
	// Suffix match on ".origin" without materializing the concatenation.
	n := len(name) - len(origin)
	return n > 0 && name[n-1] == '.' && name[n:] == origin
}

// Result is the outcome of an authoritative lookup.
type Result struct {
	RCode     dnsmsg.RCode
	Answers   []dnsmsg.Record
	Authority []dnsmsg.Record
	// Zone is the zone of authority that produced the result; nil when no
	// zone matched (RCode Refused).
	Zone *Zone
}

// Store is a collection of zones keyed by origin, with closest-enclosing-
// zone dispatch: the store acts as the single authoritative source for the
// whole simulated Internet.
type Store struct {
	mu    sync.RWMutex
	zones map[string]*Zone
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{zones: make(map[string]*Zone)}
}

// AddZone installs (or replaces) a zone.
func (s *Store) AddZone(z *Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Origin] = z
}

// Zone returns the zone with exactly the given origin, or nil.
func (s *Store) Zone(origin string) *Zone {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.zones[dnsmsg.CanonicalName(origin)]
}

// FindZone returns the closest enclosing zone of authority for qname, or nil.
func (s *Store) FindZone(qname string) *Zone {
	qname = dnsmsg.CanonicalName(qname)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for name := qname; ; {
		if z, ok := s.zones[name]; ok {
			return z
		}
		idx := strings.IndexByte(name, '.')
		if idx < 0 || idx == len(name)-1 {
			if z, ok := s.zones["."]; ok {
				return z
			}
			return nil
		}
		name = name[idx+1:]
	}
}

// ZoneCount returns the number of zones in the store.
func (s *Store) ZoneCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.zones)
}

// Origins returns every zone origin in the store, sorted — the stable
// enumeration content fingerprints are built over.
func (s *Store) Origins() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.zones))
	for origin := range s.zones {
		out = append(out, origin)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// maxCNAMEChase bounds in-store CNAME chains to defend against loops.
const maxCNAMEChase = 16

// Lookup answers (qname, qtype) with RFC 1034 semantics:
//
//   - If no zone encloses qname: REFUSED.
//   - If the node doesn't exist: NXDOMAIN with the zone SOA in authority.
//   - If the node exists without the type: NODATA (NOERROR, SOA authority).
//   - CNAME at the node (and qtype != CNAME/ANY): the CNAME is returned and
//     chased across zones within the store as a real recursive resolver
//     would, appending any in-store answers.
func (s *Store) Lookup(qname string, qtype dnsmsg.Type) Result {
	qname = dnsmsg.CanonicalName(qname)
	res := Result{}
	seen := 0
	name := qname
	for {
		z := s.FindZone(name)
		if z == nil {
			if len(res.Answers) > 0 {
				// CNAME chased out of all authority: return what we have.
				res.RCode = dnsmsg.RCodeSuccess
				return res
			}
			return Result{RCode: dnsmsg.RCodeRefused}
		}
		res.Zone = z
		node, exists := z.lookupNode(name)
		if !exists {
			if len(res.Answers) > 0 {
				res.RCode = dnsmsg.RCodeSuccess
				res.Authority = z.soaAuthority()
				return res
			}
			return Result{
				RCode:     dnsmsg.RCodeNameError,
				Authority: z.soaAuthority(),
				Zone:      z,
			}
		}
		if qtype == dnsmsg.TypeANY {
			for _, rs := range node {
				res.Answers = append(res.Answers, rs...)
			}
			sortRecords(res.Answers)
			res.RCode = dnsmsg.RCodeSuccess
			return res
		}
		if rs, ok := node[qtype]; ok && len(rs) > 0 {
			if res.Answers == nil {
				// Plain exact hit (no CNAME prefix): alias the node's record
				// set rather than copying it. Results are read-only by
				// convention and this is the hottest path in the store.
				res.Answers = rs
			} else {
				res.Answers = append(res.Answers, rs...)
			}
			res.RCode = dnsmsg.RCodeSuccess
			return res
		}
		if cn, ok := node[dnsmsg.TypeCNAME]; ok && len(cn) > 0 && qtype != dnsmsg.TypeCNAME {
			res.Answers = append(res.Answers, cn[0])
			seen++
			if seen > maxCNAMEChase {
				res.RCode = dnsmsg.RCodeServerFailure
				return res
			}
			name = dnsmsg.CanonicalName(cn[0].Target)
			continue
		}
		// NODATA.
		res.RCode = dnsmsg.RCodeSuccess
		res.Authority = z.soaAuthority()
		return res
	}
}

// HandleQuery produces a complete response message for the first question of
// query, suitable for a server to send back.
func (s *Store) HandleQuery(query *dnsmsg.Message) *dnsmsg.Message {
	resp := &dnsmsg.Message{}
	s.AnswerInto(query, resp)
	return resp
}

// AnswerInto fills resp with the response to query, overwriting every field,
// so callers can recycle response messages across exchanges. Unlike
// query.Reply() the question section is aliased, not copied: the response
// must not outlive the query it echoes — dnsserver packs it to the wire
// before reading the next datagram, and resolver.ZoneDirect callers retain
// only the answer/authority sections — so the alias is safe and saves a
// slice copy on every exchange.
func (s *Store) AnswerInto(query, resp *dnsmsg.Message) {
	resp.Header = dnsmsg.Header{
		ID:               query.Header.ID,
		Response:         true,
		Authoritative:    true,
		OpCode:           query.Header.OpCode,
		RecursionDesired: query.Header.RecursionDesired,
	}
	resp.Questions = query.Questions
	resp.Answers, resp.Authority, resp.Additional = nil, nil, nil
	if query.Header.OpCode != dnsmsg.OpCodeQuery || len(query.Questions) != 1 {
		resp.Header.RCode = dnsmsg.RCodeNotImplemented
		return
	}
	q := query.Questions[0]
	if q.Class != dnsmsg.ClassIN && q.Class != dnsmsg.ClassANY {
		resp.Header.RCode = dnsmsg.RCodeRefused
		return
	}
	r := s.Lookup(q.Name, q.Type)
	resp.Header.RCode = r.RCode
	resp.Answers = r.Answers
	resp.Authority = r.Authority
}

func sortRecords(rs []dnsmsg.Record) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Name != rs[j].Name {
			return rs[i].Name < rs[j].Name
		}
		if rs[i].Type != rs[j].Type {
			return rs[i].Type < rs[j].Type
		}
		return rs[i].Target < rs[j].Target
	})
}
