package dnszone

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzParseZone(f *testing.F) {
	f.Add(sampleZone)
	f.Add("$ORIGIN x.\n@ IN SOA a. b. 1 2 3 4 5\n")
	f.Add("$TTL 60\n")
	f.Add("@ IN TXT \"unterminated\n")
	f.Fuzz(func(t *testing.T, zone string) {
		z, err := ParseZone(strings.NewReader(zone))
		if err != nil {
			return
		}
		// Any zone that parses must serialize and re-parse.
		var buf bytes.Buffer
		if _, err := z.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo of parsed zone failed: %v", err)
		}
		z2, err := ParseZone(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, buf.String())
		}
		if z.Origin != z2.Origin {
			t.Fatalf("origin changed: %q vs %q", z.Origin, z2.Origin)
		}
		if len(z.Names()) != len(z2.Names()) {
			t.Fatalf("node count changed: %d vs %d", len(z.Names()), len(z2.Names()))
		}
	})
}
