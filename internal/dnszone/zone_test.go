package dnszone

import (
	"fmt"
	"testing"

	"depscope/internal/dnsmsg"
)

func soa(mname, rname string) dnsmsg.SOAData {
	return dnsmsg.SOAData{MName: mname, RName: rname, Serial: 1, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300}
}

func buildStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()

	site := NewZone("example.com.", soa("ns1.dyn-dns.net.", "hostmaster.example.com."))
	site.MustAdd(dnsmsg.Record{Name: "example.com.", Type: dnsmsg.TypeNS, TTL: 3600, Target: "ns1.dyn-dns.net."})
	site.MustAdd(dnsmsg.Record{Name: "example.com.", Type: dnsmsg.TypeNS, TTL: 3600, Target: "ns2.dyn-dns.net."})
	site.MustAdd(dnsmsg.Record{Name: "example.com.", Type: dnsmsg.TypeA, TTL: 300, IP: []byte{192, 0, 2, 1}})
	site.MustAdd(dnsmsg.Record{Name: "www.example.com.", Type: dnsmsg.TypeCNAME, TTL: 300, Target: "edge-1234.fastcdn.net."})
	site.MustAdd(dnsmsg.Record{Name: "*.img.example.com.", Type: dnsmsg.TypeA, TTL: 300, IP: []byte{192, 0, 2, 9}})
	s.AddZone(site)

	cdn := NewZone("fastcdn.net.", soa("ns1.fastcdn.net.", "ops.fastcdn.net."))
	cdn.MustAdd(dnsmsg.Record{Name: "edge-1234.fastcdn.net.", Type: dnsmsg.TypeA, TTL: 60, IP: []byte{198, 51, 100, 7}})
	s.AddZone(cdn)

	dns := NewZone("dyn-dns.net.", soa("ns1.dyn-dns.net.", "ops.dyn-dns.net."))
	dns.MustAdd(dnsmsg.Record{Name: "ns1.dyn-dns.net.", Type: dnsmsg.TypeA, TTL: 60, IP: []byte{203, 0, 113, 1}})
	s.AddZone(dns)
	return s
}

func TestLookupExactMatch(t *testing.T) {
	s := buildStore(t)
	r := s.Lookup("example.com.", dnsmsg.TypeNS)
	if r.RCode != dnsmsg.RCodeSuccess {
		t.Fatalf("rcode = %v", r.RCode)
	}
	if len(r.Answers) != 2 {
		t.Fatalf("got %d NS answers, want 2", len(r.Answers))
	}
	for _, a := range r.Answers {
		if a.Type != dnsmsg.TypeNS {
			t.Errorf("answer type %v", a.Type)
		}
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	s := buildStore(t)
	r := s.Lookup("EXAMPLE.COM", dnsmsg.TypeA)
	if r.RCode != dnsmsg.RCodeSuccess || len(r.Answers) != 1 {
		t.Fatalf("case-insensitive lookup failed: %+v", r)
	}
}

func TestLookupCNAMEChase(t *testing.T) {
	s := buildStore(t)
	r := s.Lookup("www.example.com.", dnsmsg.TypeA)
	if r.RCode != dnsmsg.RCodeSuccess {
		t.Fatalf("rcode = %v", r.RCode)
	}
	if len(r.Answers) != 2 {
		t.Fatalf("got %d answers, want CNAME+A: %+v", len(r.Answers), r.Answers)
	}
	if r.Answers[0].Type != dnsmsg.TypeCNAME || r.Answers[0].Target != "edge-1234.fastcdn.net." {
		t.Errorf("first answer: %+v", r.Answers[0])
	}
	if r.Answers[1].Type != dnsmsg.TypeA || r.Answers[1].Name != "edge-1234.fastcdn.net." {
		t.Errorf("second answer: %+v", r.Answers[1])
	}
}

func TestLookupCNAMEQueryNotChased(t *testing.T) {
	s := buildStore(t)
	r := s.Lookup("www.example.com.", dnsmsg.TypeCNAME)
	if len(r.Answers) != 1 || r.Answers[0].Type != dnsmsg.TypeCNAME {
		t.Fatalf("CNAME query: %+v", r.Answers)
	}
}

func TestLookupNXDOMAIN(t *testing.T) {
	s := buildStore(t)
	r := s.Lookup("nope.example.com.", dnsmsg.TypeA)
	if r.RCode != dnsmsg.RCodeNameError {
		t.Fatalf("rcode = %v, want NXDOMAIN", r.RCode)
	}
	if len(r.Authority) != 1 || r.Authority[0].Type != dnsmsg.TypeSOA {
		t.Fatalf("authority should carry SOA: %+v", r.Authority)
	}
	if r.Authority[0].SOA.MName != "ns1.dyn-dns.net." {
		t.Errorf("SOA MName = %q", r.Authority[0].SOA.MName)
	}
}

func TestLookupNODATA(t *testing.T) {
	s := buildStore(t)
	r := s.Lookup("example.com.", dnsmsg.TypeTXT)
	if r.RCode != dnsmsg.RCodeSuccess || len(r.Answers) != 0 {
		t.Fatalf("NODATA: rcode=%v answers=%d", r.RCode, len(r.Answers))
	}
	if len(r.Authority) != 1 || r.Authority[0].Type != dnsmsg.TypeSOA {
		t.Fatalf("NODATA should carry SOA authority: %+v", r.Authority)
	}
}

func TestLookupRefusedOutsideAuthority(t *testing.T) {
	s := buildStore(t)
	r := s.Lookup("elsewhere.org.", dnsmsg.TypeA)
	if r.RCode != dnsmsg.RCodeRefused {
		t.Fatalf("rcode = %v, want REFUSED", r.RCode)
	}
}

func TestWildcardSynthesis(t *testing.T) {
	s := buildStore(t)
	r := s.Lookup("a.img.example.com.", dnsmsg.TypeA)
	if r.RCode != dnsmsg.RCodeSuccess || len(r.Answers) != 1 {
		t.Fatalf("wildcard lookup: %+v", r)
	}
	if r.Answers[0].Name != "a.img.example.com." {
		t.Errorf("wildcard answer name = %q, want qname", r.Answers[0].Name)
	}
	// The wildcard node itself must not shadow NXDOMAIN for other subtrees.
	if r := s.Lookup("b.video.example.com.", dnsmsg.TypeA); r.RCode != dnsmsg.RCodeNameError {
		t.Errorf("non-wildcard subtree rcode = %v", r.RCode)
	}
}

func TestLookupANY(t *testing.T) {
	s := buildStore(t)
	r := s.Lookup("example.com.", dnsmsg.TypeANY)
	if r.RCode != dnsmsg.RCodeSuccess {
		t.Fatalf("rcode = %v", r.RCode)
	}
	var haveA, haveNS, haveSOA bool
	for _, a := range r.Answers {
		switch a.Type {
		case dnsmsg.TypeA:
			haveA = true
		case dnsmsg.TypeNS:
			haveNS = true
		case dnsmsg.TypeSOA:
			haveSOA = true
		}
	}
	if !haveA || !haveNS || !haveSOA {
		t.Errorf("ANY missing types: A=%v NS=%v SOA=%v", haveA, haveNS, haveSOA)
	}
}

func TestCNAMELoopTerminates(t *testing.T) {
	s := NewStore()
	z := NewZone("loop.test.", soa("ns.loop.test.", "ops.loop.test."))
	z.MustAdd(dnsmsg.Record{Name: "a.loop.test.", Type: dnsmsg.TypeCNAME, TTL: 1, Target: "b.loop.test."})
	z.MustAdd(dnsmsg.Record{Name: "b.loop.test.", Type: dnsmsg.TypeCNAME, TTL: 1, Target: "a.loop.test."})
	s.AddZone(z)
	r := s.Lookup("a.loop.test.", dnsmsg.TypeA)
	if r.RCode != dnsmsg.RCodeServerFailure {
		t.Fatalf("loop rcode = %v, want SERVFAIL", r.RCode)
	}
}

func TestCNAMEChaseOutOfAuthority(t *testing.T) {
	s := buildStore(t)
	z := s.Zone("example.com.")
	z.MustAdd(dnsmsg.Record{Name: "ext.example.com.", Type: dnsmsg.TypeCNAME, TTL: 1, Target: "cdn.elsewhere.org."})
	r := s.Lookup("ext.example.com.", dnsmsg.TypeA)
	if r.RCode != dnsmsg.RCodeSuccess || len(r.Answers) != 1 || r.Answers[0].Type != dnsmsg.TypeCNAME {
		t.Fatalf("out-of-authority chase: %+v", r)
	}
}

func TestAddRejectsOutOfBailiwick(t *testing.T) {
	z := NewZone("example.com.", soa("ns.example.com.", "ops.example.com."))
	err := z.Add(dnsmsg.Record{Name: "other.org.", Type: dnsmsg.TypeA, IP: []byte{1, 2, 3, 4}})
	if err == nil {
		t.Fatal("Add accepted out-of-bailiwick record")
	}
	// Suffix match must be on label boundaries.
	err = z.Add(dnsmsg.Record{Name: "notexample.com.", Type: dnsmsg.TypeA, IP: []byte{1, 2, 3, 4}})
	if err == nil {
		t.Fatal("Add accepted notexample.com into example.com zone")
	}
}

func TestFindZoneClosestEnclosing(t *testing.T) {
	s := NewStore()
	s.AddZone(NewZone("com.", soa("a.gtld.net.", "nstld.com.")))
	s.AddZone(NewZone("example.com.", soa("ns.example.com.", "ops.example.com.")))
	if z := s.FindZone("deep.www.example.com."); z == nil || z.Origin != "example.com." {
		t.Errorf("FindZone deep: %+v", z)
	}
	if z := s.FindZone("other.com."); z == nil || z.Origin != "com." {
		t.Errorf("FindZone sibling: %+v", z)
	}
	if z := s.FindZone("other.net."); z != nil {
		t.Errorf("FindZone unrelated should be nil, got %s", z.Origin)
	}
	s.AddZone(NewZone(".", soa("a.root.net.", "nstld.root.")))
	if z := s.FindZone("other.net."); z == nil || z.Origin != "." {
		t.Errorf("root zone fallback: %+v", z)
	}
}

func TestHandleQuery(t *testing.T) {
	s := buildStore(t)
	q := dnsmsg.NewQuery(5, "example.com.", dnsmsg.TypeSOA)
	resp := s.HandleQuery(q)
	if !resp.Header.Authoritative || !resp.Header.Response || resp.Header.ID != 5 {
		t.Fatalf("header: %+v", resp.Header)
	}
	if len(resp.Answers) != 1 || resp.Answers[0].Type != dnsmsg.TypeSOA {
		t.Fatalf("answers: %+v", resp.Answers)
	}

	multi := &dnsmsg.Message{Header: dnsmsg.Header{ID: 6}, Questions: []dnsmsg.Question{
		{Name: "a.com.", Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN},
		{Name: "b.com.", Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN},
	}}
	if resp := s.HandleQuery(multi); resp.Header.RCode != dnsmsg.RCodeNotImplemented {
		t.Errorf("multi-question rcode = %v", resp.Header.RCode)
	}

	chaos := &dnsmsg.Message{Header: dnsmsg.Header{ID: 7}, Questions: []dnsmsg.Question{
		{Name: "version.bind.", Type: dnsmsg.TypeTXT, Class: dnsmsg.Class(3)},
	}}
	if resp := s.HandleQuery(chaos); resp.Header.RCode != dnsmsg.RCodeRefused {
		t.Errorf("chaos-class rcode = %v", resp.Header.RCode)
	}
}

func TestZoneNamesSorted(t *testing.T) {
	z := NewZone("x.test.", soa("ns.x.test.", "ops.x.test."))
	z.MustAdd(dnsmsg.Record{Name: "b.x.test.", Type: dnsmsg.TypeA, IP: []byte{1, 1, 1, 1}})
	z.MustAdd(dnsmsg.Record{Name: "a.x.test.", Type: dnsmsg.TypeA, IP: []byte{1, 1, 1, 2}})
	names := z.Names()
	if len(names) != 3 { // apex + two nodes
		t.Fatalf("names: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("names unsorted: %v", names)
		}
	}
}

func TestConcurrentLookupAndAdd(t *testing.T) {
	s := buildStore(t)
	z := s.Zone("example.com.")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			z.MustAdd(dnsmsg.Record{
				Name: fmt.Sprintf("h%d.example.com.", i),
				Type: dnsmsg.TypeA, TTL: 1, IP: []byte{10, 0, byte(i >> 8), byte(i)},
			})
		}
	}()
	for i := 0; i < 500; i++ {
		s.Lookup("example.com.", dnsmsg.TypeNS)
		s.Lookup("www.example.com.", dnsmsg.TypeA)
	}
	<-done
}

func BenchmarkStoreLookup(b *testing.B) {
	s := NewStore()
	for i := 0; i < 1000; i++ {
		origin := fmt.Sprintf("site%d.com.", i)
		z := NewZone(origin, soa("ns."+origin, "ops."+origin))
		z.MustAdd(dnsmsg.Record{Name: origin, Type: dnsmsg.TypeNS, TTL: 1, Target: "ns." + origin})
		s.AddZone(z)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Lookup(fmt.Sprintf("site%d.com.", i%1000), dnsmsg.TypeNS)
	}
}
