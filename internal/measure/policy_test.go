package measure

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"depscope/internal/conc"
	"depscope/internal/core"
	"depscope/internal/dnsmsg"
	"depscope/internal/ecosystem"
	"depscope/internal/resolver"
)

// failingTransport fails every query whose name falls under a poisoned
// domain, simulating dead domains on a live resolver.
type failingTransport struct {
	inner resolver.Transport
	bad   map[string]bool // canonical domains whose queries fail
}

var errInjected = errors.New("injected resolver failure")

func (f failingTransport) Exchange(ctx context.Context, q *dnsmsg.Message) (*dnsmsg.Message, error) {
	if f.bad[dnsmsg.CanonicalName(q.Questions[0].Name)] {
		return nil, errInjected
	}
	return f.inner.Exchange(ctx, q)
}

// TestRunCollectToleratesInjectedFailures exercises the acceptance criterion
// for conc.Collect: a run with injected resolver failures completes, marks
// the affected sites uncharacterized, and reports per-stage error counts in
// Results.Diagnostics.
func TestRunCollectToleratesInjectedFailures(t *testing.T) {
	u, err := ecosystem.Generate(ecosystem.Options{Scale: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	w := ecosystem.Materialize(u, ecosystem.Y2020)
	bad := map[string]bool{}
	var badSites []string
	for i := 0; i < len(w.Sites); i += 25 {
		bad[dnsmsg.CanonicalName(w.Sites[i])] = true
		badSites = append(badSites, w.Sites[i])
	}
	cfg := Config{
		Resolver:    resolver.New(failingTransport{inner: resolver.ZoneDirect{Store: w.Zones}, bad: bad}),
		Certs:       w.Certs,
		Pages:       w,
		CDNMap:      CDNMap(w.CNAMEToCDN),
		Workers:     4,
		ErrorPolicy: conc.Collect,
	}
	res, err := Run(context.Background(), w.Sites, cfg)
	if err != nil {
		t.Fatalf("Collect run failed outright: %v", err)
	}
	if len(res.Sites) != len(w.Sites) {
		t.Fatalf("measured %d sites, want %d", len(res.Sites), len(w.Sites))
	}

	// Affected sites come back uncharacterized, the rest fully classified.
	unknown := 0
	for _, site := range badSites {
		for i := range res.Sites {
			if res.Sites[i].Site == site {
				if res.Sites[i].DNS.Class != core.ClassUnknown {
					t.Errorf("dead site %s DNS class = %v, want unknown", site, res.Sites[i].DNS.Class)
				}
				unknown++
			}
		}
	}
	if unknown != len(badSites) {
		t.Fatalf("found %d of %d dead sites in results", unknown, len(badSites))
	}
	classified := 0
	for i := range res.Sites {
		if res.Sites[i].DNS.Class != core.ClassUnknown {
			classified++
		}
	}
	if classified == 0 {
		t.Error("no healthy site was classified")
	}

	// Per-stage error accounting: the resolve stage saw every NS failure.
	byStage := map[string]StageDiag{}
	for _, sd := range res.Diagnostics.Stages {
		byStage[sd.Stage] = sd
	}
	if got := byStage["resolve"].Errors; got != len(badSites) {
		t.Errorf("resolve stage errors = %d, want %d", got, len(badSites))
	}
	if byStage["resolve"].Sites != len(w.Sites) {
		t.Errorf("resolve stage processed %d, want %d", byStage["resolve"].Sites, len(w.Sites))
	}
	// Dead HTTPS sites also fail their CA/CDN stage lookups.
	if byStage["ca"].Errors+byStage["cdn"].Errors == 0 {
		t.Error("no ca/cdn stage errors recorded for dead sites")
	}
	if res.Diagnostics.TotalErrors() == 0 {
		t.Error("TotalErrors = 0")
	}
	if len(res.Diagnostics.Errors) == 0 {
		t.Fatal("no per-site errors recorded")
	}
	for i, e := range res.Diagnostics.Errors {
		if e.Site == "" || e.Stage == "" || e.Err == "" {
			t.Fatalf("malformed recorded error %+v", e)
		}
		if i > 0 {
			prev := res.Diagnostics.Errors[i-1]
			if e.Site < prev.Site || (e.Site == prev.Site && e.Stage < prev.Stage) {
				t.Fatal("recorded errors not sorted by site then stage")
			}
		}
	}
	if res.Diagnostics.Resolver.Queries == 0 {
		t.Error("resolver stats missing from diagnostics")
	}

	// The same world under FailFast must abort instead.
	ff := cfg
	ff.Resolver = resolver.New(failingTransport{inner: resolver.ZoneDirect{Store: w.Zones}, bad: bad})
	ff.ErrorPolicy = conc.FailFast
	if _, err := Run(context.Background(), w.Sites, ff); !errors.Is(err, errInjected) {
		t.Errorf("FailFast error = %v, want the injected failure", err)
	}
}

// TestRunDiagnosticsHealthy checks the diagnostics of a clean FailFast run:
// every stage processed every site, nothing errored, and the resolver cache
// absorbed a meaningful share of the lookups.
func TestRunDiagnosticsHealthy(t *testing.T) {
	f := getFixture(t, ecosystem.Y2020)
	d := f.res.Diagnostics
	wantOrder := []string{"resolve", "dns", "ca", "cdn", "interservice"}
	if len(d.Stages) != len(wantOrder) {
		t.Fatalf("stages = %+v, want %v", d.Stages, wantOrder)
	}
	for i, sd := range d.Stages {
		if sd.Stage != wantOrder[i] {
			t.Fatalf("stage[%d] = %q, want %q", i, sd.Stage, wantOrder[i])
		}
		if sd.Errors != 0 {
			t.Errorf("stage %s errors = %d on a healthy run", sd.Stage, sd.Errors)
		}
	}
	for _, name := range wantOrder[:4] {
		for _, sd := range d.Stages {
			if sd.Stage == name && sd.Sites != testScale {
				t.Errorf("stage %s processed %d sites, want %d", name, sd.Sites, testScale)
			}
		}
	}
	if len(d.Errors) != 0 || d.ErrorsTruncated != 0 {
		t.Errorf("healthy run recorded errors: %+v", d.Errors)
	}
	if d.Resolver.Queries == 0 || d.Resolver.Hits == 0 {
		t.Fatalf("resolver stats = %+v", d.Resolver)
	}
	if rate := d.Resolver.HitRate(); rate <= 0 || rate >= 1 {
		t.Errorf("hit rate = %v, want within (0,1)", rate)
	}
}

// slowCancelTransport delays every exchange and triggers the cancel func
// once enough queries have flowed, guaranteeing cancellation lands mid-run.
type slowCancelTransport struct {
	inner   resolver.Transport
	delay   time.Duration
	n       atomic.Int64
	after   int64
	cancel  context.CancelFunc
	stopped atomic.Bool
}

func (s *slowCancelTransport) Exchange(ctx context.Context, q *dnsmsg.Message) (*dnsmsg.Message, error) {
	if s.n.Add(1) == s.after {
		s.cancel()
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(s.delay):
	}
	return s.inner.Exchange(ctx, q)
}

// TestRunCancellationPromptNoLeaks cancels a 1K-site run mid-flight and
// requires Run to return ctx.Err() quickly, without leaking pool goroutines.
// The Makefile race target runs this under -race.
func TestRunCancellationPromptNoLeaks(t *testing.T) {
	u, err := ecosystem.Generate(ecosystem.Options{Scale: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	w := ecosystem.Materialize(u, ecosystem.Y2020)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := &slowCancelTransport{
		inner:  resolver.ZoneDirect{Store: w.Zones},
		delay:  200 * time.Microsecond,
		after:  64,
		cancel: cancel,
	}
	before := runtime.NumGoroutine()
	start := time.Now()
	_, err = Run(ctx, w.Sites, Config{
		Resolver: resolver.New(tr),
		Certs:    w.Certs,
		Pages:    w,
		CDNMap:   CDNMap(w.CNAMEToCDN),
		Workers:  8,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run after cancel = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Run took %v to honor cancellation", elapsed)
	}
	// The pool goroutines must all have exited; give the runtime a moment.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: before=%d now=%d", before, runtime.NumGoroutine())
}

// BenchmarkMeasureRun benchmarks the full staged pipeline (all three passes)
// at scale 10K against the in-process world, with a cold resolver cache per
// iteration. docs/bench.sh appends its numbers to BENCH_pipeline.json.
func BenchmarkMeasureRun(b *testing.B) {
	u, err := ecosystem.Generate(ecosystem.Options{Scale: 10000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	w := ecosystem.Materialize(u, ecosystem.Y2020)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), w.Sites, Config{
			Resolver: w.NewResolver(),
			Certs:    w.Certs,
			Pages:    w,
			CDNMap:   CDNMap(w.CNAMEToCDN),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Sites) != len(w.Sites) {
			b.Fatal("short run")
		}
	}
}

// BenchmarkTelemetryOverhead is the same workload as BenchmarkMeasureRun and
// exists as a separately-named series: compare its ns/op against the
// BENCH_pipeline.json entry recorded before the pipeline was instrumented
// (docs/bench.sh appends both). The telemetry layer's budget is a ≤3% ns/op
// regression; everything it records in this run (per-stage histograms,
// resolver counters, conc pool accounting) is on by default, so this IS the
// instrumented number — there is no off switch to toggle.
func BenchmarkTelemetryOverhead(b *testing.B) {
	u, err := ecosystem.Generate(ecosystem.Options{Scale: 10000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	w := ecosystem.Materialize(u, ecosystem.Y2020)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), w.Sites, Config{
			Resolver: w.NewResolver(),
			Certs:    w.Certs,
			Pages:    w,
			CDNMap:   CDNMap(w.CNAMEToCDN),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Sites) != len(w.Sites) {
			b.Fatal("short run")
		}
	}
}
